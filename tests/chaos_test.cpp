// Chaos lane: deterministic fault injection on the wall-clock transport,
// crash-restart recovery through retried state transfer, and the cluster
// liveness watchdog.  The FaultInjector/ChaosRecovery/LivenessWatchdog
// suites run under TSan in CI — crash/restart/injector toggles race against
// live event loops by design.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "tolerance/consensus/minbft_client.hpp"
#include "tolerance/consensus/minbft_runtime.hpp"
#include "tolerance/consensus/watchdog.hpp"
#include "tolerance/net/fault_injector.hpp"
#include "tolerance/net/profiles.hpp"

namespace tolerance {
namespace {

using namespace std::chrono_literals;

template <class Cond>
bool eventually(Cond&& cond, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

// ---------------------------------------------------------------------------
// FaultInjector
// ---------------------------------------------------------------------------

TEST(FaultInjector, VerdictsAreDeterministicPerSeed) {
  net::FaultInjector a(42), b(42), c(43);
  for (auto* fi : {&a, &b, &c}) {
    fi->set_drop(1, net::FaultEvent::kAllPeers, 0.5);
    fi->set_corrupt(2, 0.5);
  }
  std::vector<int> va, vb, vc;
  for (int i = 0; i < 200; ++i) {
    const net::NodeId from = i % 2 == 0 ? 1 : 2;
    va.push_back(static_cast<int>(a.on_bundle(from, 3)));
    vb.push_back(static_cast<int>(b.on_bundle(from, 3)));
    vc.push_back(static_cast<int>(c.on_bundle(from, 3)));
  }
  EXPECT_EQ(va, vb);   // same seed, same plan -> same verdict sequence
  EXPECT_NE(va, vc);   // a different seed genuinely reshuffles
}

TEST(FaultInjector, DirectedPairRuleBeatsWildcardAndClears) {
  net::FaultInjector fi(7);
  fi.set_drop(1, net::FaultEvent::kAllPeers, 1.0);
  EXPECT_EQ(fi.on_bundle(1, 2), net::FaultInjector::Action::kDrop);
  EXPECT_EQ(fi.on_bundle(1, 9), net::FaultInjector::Action::kDrop);
  EXPECT_EQ(fi.on_bundle(2, 1), net::FaultInjector::Action::kDeliver);
  // An exact pair entry is consulted before the wildcard.
  fi.set_drop(1, 2, 1e-12);  // effectively never drops
  EXPECT_EQ(fi.on_bundle(1, 2), net::FaultInjector::Action::kDeliver);
  EXPECT_EQ(fi.on_bundle(1, 9), net::FaultInjector::Action::kDrop);
  EXPECT_EQ(fi.active_rules(), 2u);
  fi.set_drop(1, 2, 0.0);
  fi.set_drop(1, net::FaultEvent::kAllPeers, -1.0);
  EXPECT_EQ(fi.active_rules(), 0u);
  EXPECT_EQ(fi.on_bundle(1, 9), net::FaultInjector::Action::kDeliver);
  EXPECT_GT(fi.injected_drops(), 0u);
}

TEST(FaultInjector, DropRuleWinsOverCorruption) {
  net::FaultInjector fi(11);
  fi.set_drop(4, 5, 1.0);
  fi.set_corrupt(4, 1.0);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(fi.on_bundle(4, 5), net::FaultInjector::Action::kDrop);
  }
  EXPECT_EQ(fi.injected_corruptions(), 0u);
  EXPECT_EQ(fi.on_bundle(4, 6), net::FaultInjector::Action::kCorrupt);
  EXPECT_EQ(fi.injected_corruptions(), 1u);
}

TEST(FaultInjector, CorruptFlipsBetweenOneAndFourBits) {
  net::FaultInjector fi(13);
  for (int round = 0; round < 100; ++round) {
    net::FaultInjector::Bytes bytes(64, 0x00);
    fi.corrupt(bytes);
    ASSERT_EQ(bytes.size(), 64u);  // corruption never resizes
    int flipped = 0;
    for (const std::uint8_t b : bytes) {
      for (int bit = 0; bit < 8; ++bit) flipped += (b >> bit) & 1;
    }
    // 1-4 draws, possibly hitting the same bit twice (an even re-flip).
    EXPECT_GE(flipped, 0);
    EXPECT_LE(flipped, 4);
    if (flipped == 0) continue;  // rare double-flip of one bit
  }
  net::FaultInjector::Bytes empty;
  fi.corrupt(empty);  // must be a no-op, not UB
  EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------------------
// LivenessWatchdog
// ---------------------------------------------------------------------------

consensus::ReplicaDiag diag(net::NodeId id, std::uint64_t committed,
                            bool alive = true) {
  consensus::ReplicaDiag d;
  d.replica = id;
  d.alive = alive;
  d.committed_ops = committed;
  return d;
}

TEST(LivenessWatchdog, SteadyProgressNeverFlags) {
  consensus::LivenessWatchdog wd(0.5);
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(wd.sample(0.2 * i, {diag(0, 10ull * (i + 1)),
                                     diag(1, 10ull * (i + 1))}));
  }
  EXPECT_TRUE(wd.reports().empty());
  EXPECT_EQ(wd.max_committed(), 200u);
  EXPECT_LT(wd.longest_gap(), 0.5);
}

TEST(LivenessWatchdog, FlagsStallOncePerWindowAndRecovers) {
  consensus::LivenessWatchdog wd(1.0);
  EXPECT_FALSE(wd.sample(0.0, {diag(0, 50)}));  // primes the baseline
  EXPECT_FALSE(wd.sample(0.5, {diag(0, 50)}));  // stalled 0.5 < window
  EXPECT_TRUE(wd.sample(1.1, {diag(0, 50)}));   // first full window
  EXPECT_FALSE(wd.sample(1.6, {diag(0, 50)}));  // within the re-arm window
  EXPECT_TRUE(wd.sample(2.2, {diag(0, 50)}));   // second window, second flag
  ASSERT_EQ(wd.reports().size(), 2u);
  EXPECT_GE(wd.reports()[0].stalled_for, 1.0);
  // Progress resets the clock: no flag until another full window passes.
  EXPECT_FALSE(wd.sample(2.5, {diag(0, 51)}));
  EXPECT_FALSE(wd.sample(3.0, {diag(0, 51)}));
  EXPECT_TRUE(wd.sample(3.6, {diag(0, 51)}));
  EXPECT_GE(wd.longest_gap(), 2.2);
}

TEST(LivenessWatchdog, ReportNamesCrashedReplicaAndTransfers) {
  consensus::LivenessWatchdog wd(0.2);
  wd.sample(0.0, {diag(0, 9), diag(1, 9)});
  auto dead = diag(1, 9, /*alive=*/false);
  dead.st_attempts = 3;
  dead.st_giveups = 1;
  ASSERT_TRUE(wd.sample(0.5, {diag(0, 9), dead}));
  const auto& report = wd.reports().front();
  ASSERT_EQ(report.replicas.size(), 2u);
  EXPECT_EQ(report.max_committed, 9u);
  const std::string text = report.describe();
  EXPECT_NE(text.find("CRASHED"), std::string::npos);
  EXPECT_NE(text.find("giveups=1"), std::string::npos);
}

// ---------------------------------------------------------------------------
// ChaosRecovery (wall-clock cluster)
// ---------------------------------------------------------------------------

consensus::MinBftConfig chaos_config(int st_max_attempts) {
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  cfg.checkpoint_period = 10;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  cfg.batch_timeout = 0.005;
  cfg.state_transfer_timeout = 0.15;
  cfg.state_transfer_backoff = 1.5;
  cfg.state_transfer_max_attempts = st_max_attempts;
  return cfg;
}

/// Drive `n` sequential requests through an auxiliary client wired onto the
/// cluster's runtime; returns once all completed (committed on a quorum).
/// Manual-phase tests need this because run_closed_loop owns the whole
/// lifecycle (it quiesces the transport on return).
class ManualLoad {
 public:
  explicit ManualLoad(consensus::MinBftRuntimeCluster& cluster,
                      std::vector<consensus::ReplicaId> replicas)
      : cluster_(cluster),
        client_(20000, 1, std::move(replicas), cluster.runtime(),
                cluster.registry(), 0xfeedu, /*retry_timeout=*/1.0) {
    cluster_.runtime().register_host(
        20000, [this](net::NodeId from, const consensus::MinBftMsg& m) {
          client_.on_message(from, m);
        });
  }

  ~ManualLoad() {
    // The client object dies with this wrapper; nothing may dispatch into
    // it afterwards.
    cluster_.runtime().detach_host(20000);
  }

  bool run(int n) {
    remaining_.store(n, std::memory_order_relaxed);
    cluster_.runtime().post(20000, [this]() { submit_next(); });
    return eventually(
        [&]() { return remaining_.load(std::memory_order_relaxed) == 0; },
        10000ms);
  }

 private:
  void submit_next() {  // runs on the client's serial loop
    if (remaining_.load(std::memory_order_relaxed) <= 0) return;
    client_.submit("w:20000:" + std::to_string(serial_++),
                   [this](std::uint64_t, const std::string&, double) {
                     if (remaining_.fetch_sub(1, std::memory_order_relaxed) >
                         1) {
                       submit_next();
                     }
                   });
  }

  consensus::MinBftRuntimeCluster& cluster_;
  consensus::MinBftClient client_;
  std::uint64_t serial_ = 0;
  std::atomic<int> remaining_{0};
};

std::uint64_t committed_ops(consensus::MinBftRuntimeCluster& cluster,
                            consensus::ReplicaId id) {
  return cluster.replica(id).progress().committed_ops.load(
      std::memory_order_relaxed);
}

// THE regression pinning down why retries exist: with the pre-hardening
// behaviour (a single state-request broadcast, never re-sent), a replica
// whose one request is lost rejoins NOTHING when no checkpoint traffic
// arrives to re-trigger recovery — it is stranded forever.  The retried
// path in the next test recovers from the identical fault.
TEST(ChaosRecovery, OneShotStateTransferStrandsAcrossOutage) {
  const int kOps = 30;
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(/*attempts=*/1),
                                          907, net::NetworkProfile::lan(), 4);
  {
    ManualLoad load(cluster, {0, 1, 2});
    ASSERT_TRUE(load.run(kOps));
  }
  ASSERT_TRUE(eventually([&]() {
    return committed_ops(cluster, 0) >= kOps &&
           committed_ops(cluster, 1) >= kOps &&
           committed_ops(cluster, 2) >= kOps;
  }));

  cluster.crash_replica(2);
  EXPECT_TRUE(cluster.is_crashed(2));
  // Blackhole the recovering node's outbound: its one and only state
  // request dies on the wire.
  cluster.injector().set_drop(2, net::FaultEvent::kAllPeers, 1.0);
  cluster.restart_replica(2);
  ASSERT_TRUE(eventually([&]() {
    return cluster.replica(2).progress().st_giveups.load(
               std::memory_order_relaxed) >= 1;
  }));
  // Lift the outage.  Nothing re-triggers recovery (no traffic, hence no
  // checkpoint quorums to observe) — the replica stays empty.
  cluster.injector().set_drop(2, net::FaultEvent::kAllPeers, 0.0);
  std::this_thread::sleep_for(500ms);
  EXPECT_EQ(committed_ops(cluster, 2), 0u);
  EXPECT_EQ(cluster.replica(2).progress().st_completions.load(
                std::memory_order_relaxed),
            0u);
  cluster.stop();
}

TEST(ChaosRecovery, RetriedStateTransferRecoversAcrossOutage) {
  const int kOps = 30;
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(/*attempts=*/6),
                                          907, net::NetworkProfile::lan(), 4);
  {
    ManualLoad load(cluster, {0, 1, 2});
    ASSERT_TRUE(load.run(kOps));
  }
  ASSERT_TRUE(eventually([&]() {
    return committed_ops(cluster, 0) >= kOps &&
           committed_ops(cluster, 1) >= kOps &&
           committed_ops(cluster, 2) >= kOps;
  }));

  cluster.crash_replica(2);
  cluster.injector().set_drop(2, net::FaultEvent::kAllPeers, 1.0);
  cluster.restart_replica(2);
  // Let the outage eat at least one retry, then heal: a later attempt of
  // the SAME cycle must get through and install.
  ASSERT_TRUE(eventually([&]() {
    return cluster.replica(2).progress().st_attempts.load(
               std::memory_order_relaxed) >= 2;
  }));
  cluster.injector().set_drop(2, net::FaultEvent::kAllPeers, 0.0);
  ASSERT_TRUE(eventually([&]() {
    return committed_ops(cluster, 2) >= kOps;
  }));
  EXPECT_GE(cluster.replica(2).progress().st_completions.load(
                std::memory_order_relaxed),
            1u);
  cluster.stop();
  // Quiesced: loop-confined telemetry is safe to read.  The install must
  // have pruned every vote and stored response (the unbounded-growth fix).
  EXPECT_GE(cluster.replica(2).state_transfer_retries(), 1u);
  EXPECT_FALSE(cluster.replica(2).state_transfer_active());
  EXPECT_EQ(cluster.replica(2).state_vote_count(), 0u);
  EXPECT_EQ(cluster.replica(2).pending_state_count(), 0u);
  EXPECT_EQ(cluster.runtime().decode_errors(), 0u);
  EXPECT_EQ(cluster.runtime().handler_errors(), 0u);
}

TEST(ChaosRecovery, PlannedCrashRestartRecoversUnderLoad) {
  consensus::ChaosOptions chaos;
  chaos.plan.seed = 31;
  chaos.plan.events = {
      {0.4, net::FaultKind::kCrash, 2},
      {0.8, net::FaultKind::kRestart, 2},
  };
  chaos.watchdog_window = 5.0;  // must not fire on a recovering run
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(6), 77,
                                          net::NetworkProfile::lan(), 4);
  cluster.set_chaos(chaos);
  const auto stats = cluster.run_closed_loop(6, 2.5);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.crashes, 1u);
  EXPECT_EQ(stats.restarts, 1u);
  EXPECT_GE(stats.st_completions, 1u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.handler_errors, 0u);
  EXPECT_EQ(stats.stall_reports, 0u);
  ASSERT_FALSE(stats.recovery_seconds.empty());
  EXPECT_LT(stats.recovery_seconds.front(), 2.0);
  // The rejoined replica converged onto the same committed history.
  const auto live = cluster.live_replicas();
  ASSERT_EQ(live.size(), 3u);
  std::vector<std::vector<std::string>> logs;
  for (const auto id : live) {
    auto& r = cluster.replica(id);
    const auto& full = r.service().log();
    logs.emplace_back(full.begin(),
                      full.begin() + static_cast<std::ptrdiff_t>(std::min(
                                         r.committed_log_size(), full.size())));
  }
  for (std::size_t a = 0; a < logs.size(); ++a) {
    for (std::size_t b = a + 1; b < logs.size(); ++b) {
      const auto& s = logs[a].size() <= logs[b].size() ? logs[a] : logs[b];
      const auto& l = logs[a].size() <= logs[b].size() ? logs[b] : logs[a];
      EXPECT_TRUE(std::equal(s.begin(), s.end(), l.begin()))
          << "live replicas diverged after recovery";
    }
  }
}

TEST(ChaosRecovery, CorruptionStormDiesInAuthLayerOnly) {
  consensus::ChaosOptions chaos;
  chaos.plan.seed = 99;
  net::FaultEvent storm;
  storm.at = 0.2;
  storm.kind = net::FaultKind::kCorruptFrames;
  storm.node = 0;  // the view-0 leader: every PREPARE lane is exposed
  storm.rate = 0.25;
  storm.duration = 0.8;
  chaos.plan.events = {storm};
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(6), 5150,
                                          net::NetworkProfile::lan(), 4);
  cluster.set_chaos(chaos);
  const auto stats = cluster.run_closed_loop(6, 1.5);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_GT(stats.injected_corruptions, 0u);
  // The load-bearing chaos property: every flipped bundle died in the HMAC
  // check — none reached a codec or a protocol handler.
  EXPECT_GE(stats.auth_failures, stats.injected_corruptions);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.handler_errors, 0u);
}

TEST(ChaosRecovery, WatchdogFlagsQuorumLossWithDiagnostics) {
  consensus::ChaosOptions chaos;
  chaos.plan.seed = 17;
  chaos.plan.events = {
      {0.3, net::FaultKind::kCrash, 1},
      {0.3, net::FaultKind::kCrash, 2},
  };
  chaos.watchdog_window = 0.4;
  consensus::MinBftRuntimeCluster cluster(3, chaos_config(6), 4242,
                                          net::NetworkProfile::lan(), 4);
  cluster.set_chaos(chaos);
  const auto stats = cluster.run_closed_loop(4, 1.6);
  EXPECT_EQ(stats.crashes, 2u);
  EXPECT_GE(stats.stall_reports, 1u);
  EXPECT_GE(stats.longest_commit_gap, 0.4);
  ASSERT_NE(cluster.watchdog(), nullptr);
  ASSERT_FALSE(cluster.watchdog()->reports().empty());
  const auto& report = cluster.watchdog()->reports().front();
  int crashed_in_report = 0;
  for (const auto& d : report.replicas) {
    if (!d.alive) ++crashed_in_report;
  }
  EXPECT_EQ(crashed_in_report, 2);
  EXPECT_NE(report.describe().find("CRASHED"), std::string::npos);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.handler_errors, 0u);
}

}  // namespace
}  // namespace tolerance
