#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/emulation/attacker.hpp"
#include "tolerance/emulation/background.hpp"
#include "tolerance/emulation/estimation.hpp"
#include "tolerance/emulation/ids.hpp"
#include "tolerance/emulation/profiles.hpp"
#include "tolerance/emulation/testbed.hpp"
#include "tolerance/stats/empirical.hpp"

namespace tolerance::emulation {
namespace {

TEST(Profiles, CatalogMatchesTableFour) {
  const auto& catalog = container_catalog();
  ASSERT_EQ(catalog.size(), 10u);  // Table 4 lists 10 containers
  // Spot-check a few rows of Tables 4-6.
  EXPECT_EQ(catalog[0].os, "UBUNTU 14");
  EXPECT_EQ(catalog[0].vulnerabilities[0], "FTP weak password");
  EXPECT_EQ(catalog[3].vulnerabilities[0], "CVE-2017-7494");
  EXPECT_EQ(catalog[4].vulnerabilities[0], "CVE-2014-6271");
  // Every container has background services (Table 5) and intrusion steps
  // (Table 6) that end with an exploit or brute-force action.
  for (const auto& profile : catalog) {
    EXPECT_FALSE(profile.background_services.empty()) << profile.replica_id;
    EXPECT_GE(profile.intrusion_steps.size(), 2u) << profile.replica_id;
    EXPECT_NE(profile.intrusion_steps[0].name.find("scan"),
              std::string::npos);
  }
  // Containers 9 and 10 have three intrusion steps (scan, brute force, CVE).
  EXPECT_EQ(catalog[8].intrusion_steps.size(), 3u);
  EXPECT_EQ(catalog[9].intrusion_steps.size(), 3u);
}

TEST(Profiles, LookupByIdIsOneBased) {
  EXPECT_EQ(container(1).replica_id, 1);
  EXPECT_EQ(container(10).replica_id, 10);
  EXPECT_THROW(container(0), std::invalid_argument);
  EXPECT_THROW(container(11), std::invalid_argument);
}

TEST(Ids, IntrusionRaisesAlerts) {
  const auto& profile = container(2);  // SSH brute force
  const IdsModel ids(profile);
  Rng rng(1);
  double base = 0.0, attack = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    base += ids.sample(nullptr, false, 8.0, rng).alerts_weighted;
    attack += ids.sample(&profile.intrusion_steps[1], false, 8.0, rng)
                  .alerts_weighted;
  }
  EXPECT_GT(attack / n, 10.0 * (base / n));
}

TEST(Ids, CompromisedNodeKeepsElevatedAlerts) {
  const auto& profile = container(4);
  const IdsModel ids(profile);
  Rng rng(2);
  double base = 0.0, comp = 0.0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    base += ids.sample(nullptr, false, 8.0, rng).alerts_weighted;
    comp += ids.sample(nullptr, true, 8.0, rng).alerts_weighted;
  }
  EXPECT_GT(comp / n, 3.0 * (base / n));
}

TEST(Ids, MetricValueAccessor) {
  MetricSample s;
  s.alerts_weighted = 1;
  s.blocks_read = 6;
  EXPECT_DOUBLE_EQ(metric_value(s, 0), 1.0);
  EXPECT_DOUBLE_EQ(metric_value(s, 5), 6.0);
  EXPECT_THROW(metric_value(s, 6), std::invalid_argument);
}

TEST(Ids, MetricKlOrderingMatchesFigEighteen) {
  // Appendix H: alerts carry by far the most signal; blocks read carry none.
  const auto& profile = container(2);
  const IdsModel ids(profile);
  Rng rng(3);
  const int n = 20000;
  std::vector<std::vector<double>> h(kNumMetrics), c(kNumMetrics);
  for (int i = 0; i < n; ++i) {
    const auto sh = ids.sample(nullptr, false, 8.0, rng);
    const bool during = rng.bernoulli(0.5);
    const auto sc = ids.sample(
        during ? &profile.intrusion_steps[1] : nullptr, !during, 8.0, rng);
    for (int m = 0; m < kNumMetrics; ++m) {
      h[static_cast<std::size_t>(m)].push_back(metric_value(sh, m));
      c[static_cast<std::size_t>(m)].push_back(metric_value(sc, m));
    }
  }
  auto kl = [&](int m) {
    std::vector<double> pooled = h[static_cast<std::size_t>(m)];
    pooled.insert(pooled.end(), c[static_cast<std::size_t>(m)].begin(),
                  c[static_cast<std::size_t>(m)].end());
    const auto binner = stats::QuantileBinner::fit(pooled, 20);
    std::vector<int> hb, cb;
    for (double v : h[static_cast<std::size_t>(m)]) hb.push_back(binner.bin(v));
    for (double v : c[static_cast<std::size_t>(m)]) cb.push_back(binner.bin(v));
    const auto ph = stats::EmpiricalPmf::from_samples(hb, binner.num_bins(), 0.5);
    const auto pc = stats::EmpiricalPmf::from_samples(cb, binner.num_bins(), 0.5);
    return stats::kl_divergence(ph, pc);
  };
  const double kl_alerts = kl(0);
  const double kl_logins = kl(1);
  const double kl_blocks_read = kl(5);
  EXPECT_GT(kl_alerts, kl_logins);
  EXPECT_GT(kl_alerts, 10.0 * std::max(kl_blocks_read, 1e-6));
  EXPECT_LT(kl_blocks_read, 0.05);
}

TEST(Background, LoadHoversAroundLittlesLaw) {
  BackgroundWorkload load(20.0, 4.0);
  Rng rng(4);
  double total = 0.0;
  const int steps = 2000;
  for (int t = 0; t < steps; ++t) total += load.step(rng);
  const double avg = total / steps;
  // Sessions occupy whole time-steps, so the discrete-time Little's law uses
  // E[ceil(X)] = 1 / (1 - e^{-1/mu}) for X ~ Exp(mean mu):
  const double expected = 20.0 / (1.0 - std::exp(-1.0 / 4.0));  // ~90.4
  EXPECT_NEAR(avg, expected, 6.0);
  // The continuous-time value is a lower bound.
  EXPECT_GT(avg, load.expected_load());
}

TEST(Attacker, ExecutesStepsThenCompromises) {
  Attacker attacker({1.0});  // always engages
  Rng rng(5);
  ASSERT_TRUE(attacker.maybe_engage(0, rng));
  EXPECT_TRUE(attacker.attacking(0));
  const auto& profile = container(1);  // 2 steps
  EXPECT_NE(attacker.current_step(profile), nullptr);
  EXPECT_FALSE(attacker.advance(profile));  // step 1 done
  EXPECT_TRUE(attacker.advance(profile));   // final step => compromised
  attacker.on_compromised();
  EXPECT_FALSE(attacker.attacking(0));
}

TEST(Attacker, OneIntrusionAtATime) {
  Attacker attacker({1.0});
  Rng rng(6);
  ASSERT_TRUE(attacker.maybe_engage(0, rng));
  EXPECT_FALSE(attacker.maybe_engage(1, rng));
}

TEST(Attacker, AbortOnRecovery) {
  Attacker attacker({1.0});
  Rng rng(7);
  ASSERT_TRUE(attacker.maybe_engage(3, rng));
  attacker.abort(3);
  EXPECT_FALSE(attacker.attacking(3));
  EXPECT_TRUE(attacker.maybe_engage(1, rng));  // free to re-target
}

TEST(Attacker, BehaviorChoicesCoverAllThree) {
  Rng rng(8);
  bool a = false, b = false, c = false;
  for (int i = 0; i < 200; ++i) {
    switch (Attacker::choose_behavior(rng)) {
      case CompromisedBehavior::Participate: a = true; break;
      case CompromisedBehavior::Silent: b = true; break;
      case CompromisedBehavior::RandomMessages: c = true; break;
    }
  }
  EXPECT_TRUE(a && b && c);
}

TEST(Testbed, NodesEventuallyCompromisedWithoutDefense) {
  TestbedConfig config;
  config.initial_nodes = 3;
  config.attacker.start_probability = 0.2;
  Testbed testbed(config, 42);
  for (int t = 0; t < 400; ++t) testbed.step();
  EXPECT_GT(testbed.failed_count(), 0);
}

TEST(Testbed, RecoveryRestoresHealth) {
  TestbedConfig config;
  config.initial_nodes = 3;
  config.attacker.start_probability = 0.5;
  Testbed testbed(config, 43);
  // Run until a node is compromised.
  int compromised = -1;
  for (int t = 0; t < 500 && compromised < 0; ++t) {
    testbed.step();
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      if (testbed.nodes()[static_cast<std::size_t>(i)].state ==
          pomdp::NodeState::Compromised) {
        compromised = i;
        break;
      }
    }
  }
  ASSERT_GE(compromised, 0);
  testbed.recover(compromised);
  EXPECT_EQ(testbed.nodes()[static_cast<std::size_t>(compromised)].state,
            pomdp::NodeState::Healthy);
}

TEST(Testbed, EvictAndAddChangeClusterSize) {
  TestbedConfig config;
  config.initial_nodes = 3;
  config.max_nodes = 4;
  Testbed testbed(config, 44);
  testbed.step();
  EXPECT_EQ(testbed.num_nodes(), 3);
  ASSERT_TRUE(testbed.add_node().has_value());
  EXPECT_EQ(testbed.num_nodes(), 4);
  EXPECT_FALSE(testbed.add_node().has_value());  // pool exhausted (Table 3)
  testbed.evict(0);
  EXPECT_EQ(testbed.num_nodes(), 3);
}

TEST(Testbed, CrashedNodesEmitNoMetrics) {
  TestbedConfig config;
  config.initial_nodes = 2;
  config.p_crash_healthy = 1.0;  // everything crashes immediately
  config.attacker.start_probability = 0.0;
  Testbed testbed(config, 45);
  testbed.step();
  for (const auto& node : testbed.nodes()) {
    EXPECT_EQ(node.state, pomdp::NodeState::Crashed);
    EXPECT_DOUBLE_EQ(node.last_metrics.alerts_weighted, 0.0);
  }
}

TEST(Estimation, FittedDetectorSeparatesStates) {
  Rng rng(46);
  const auto detector = fit_detector(container(2), 5000, 11, 80.0, rng);
  EXPECT_GT(detector.kl_healthy_compromised, 0.5);
  EXPECT_TRUE(detector.model->all_positive());  // assumption D via smoothing
  // Large raw alert counts map to high observation symbols.
  EXPECT_GT(detector.observe(50000.0), detector.observe(10.0));
}

TEST(Estimation, PooledDetectorCoversCatalog) {
  Rng rng(47);
  const auto detector = fit_pooled_detector(1000, 11, 80.0, rng);
  EXPECT_GT(detector.kl_healthy_compromised, 0.3);
  EXPECT_EQ(detector.model->num_observations(), detector.binner.num_bins());
}

TEST(Estimation, MoreSamplesTightenTheEstimate) {
  // Glivenko-Cantelli in practice: KL between two independently fitted
  // detectors shrinks with the sample budget.
  Rng rng1(48), rng2(49), rng3(50), rng4(51);
  const auto small_a = fit_detector(container(5), 300, 11, 80.0, rng1);
  const auto small_b = fit_detector(container(5), 300, 11, 80.0, rng2);
  const auto large_a = fit_detector(container(5), 20000, 11, 80.0, rng3);
  const auto large_b = fit_detector(container(5), 20000, 11, 80.0, rng4);
  const double disagreement_small = std::fabs(
      small_a.kl_healthy_compromised - small_b.kl_healthy_compromised);
  const double disagreement_large = std::fabs(
      large_a.kl_healthy_compromised - large_b.kl_healthy_compromised);
  EXPECT_LT(disagreement_large, disagreement_small + 0.05);
}

}  // namespace
}  // namespace tolerance::emulation
