// Admission-control battery: the service-boundary valve from the unit level
// (pressure filter, hysteresis mode machine, token budgets) up through a
// live MinBFT cluster (typed Overloaded rejections, client backoff, and the
// Byzantine fake-pressure defense).  All suites are named Admission* so the
// TSan CI lane picks them up.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "tolerance/consensus/admission.hpp"
#include "tolerance/consensus/minbft_cluster.hpp"

namespace tolerance::consensus {
namespace {

MinBftConfig fast_config(int f) {
  MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 10;
  cfg.log_watermark = 100;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  return cfg;
}

net::LinkConfig fast_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 0.0;
  return link;
}

/// A valve that rejects everything from the first request on: any pressure
/// enters SOFT, and both budgets are zero.
AdmissionConfig reject_all_config() {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.soft_enter = 0.0;
  cfg.soft_exit = -1.0;  // never leaves SOFT
  cfg.soft_rate = 0.0;
  cfg.soft_burst = 0.0;
  cfg.hard_rate = 0.0;
  cfg.hard_burst = 0.0;
  cfg.retry_after_soft_ms = 100;
  return cfg;
}

// ---------------------------------------------------------------------------
// Pressure filter: EWMA attack, wall-clock release
// ---------------------------------------------------------------------------

TEST(AdmissionFilter, AttackConvergesOnSustainedPressure) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  AdmissionController c(cfg);
  // Saturated queue, saturated latency, all-retry window: raw pressure 1.0.
  // The first sample seeds the filter outright; the rest are a fixed point.
  for (int i = 0; i < 10; ++i) {
    c.observe_request(/*retry=*/true);
    c.update(/*now=*/static_cast<double>(i), /*queue_depth=*/1000.0,
             /*oldest_wait_seconds=*/100.0);
  }
  EXPECT_DOUBLE_EQ(c.pressure(), 1.0);
  EXPECT_EQ(c.mode(), AdmissionMode::kHard);

  // Partial pressure converges to the raw blend, never overshooting it:
  // queue at half capacity and nothing else contributes 0.5 * w_queue.
  AdmissionController half(cfg);
  for (int i = 0; i < 200; ++i) {
    half.observe_request(/*retry=*/false);
    half.update(static_cast<double>(i), cfg.queue_capacity / 2.0, 0.0);
  }
  EXPECT_NEAR(half.pressure(), cfg.w_queue * 0.5, 1e-9);
}

TEST(AdmissionFilter, ReleaseDecaysOnTheClockNotPerSample) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.release_tau = 10.0;
  AdmissionController c(cfg);
  c.observe_request(/*retry=*/true);  // err* = 1 so the raw blend is 1.0
  c.update(/*now=*/0.0, /*queue_depth=*/1e9, /*oldest_wait=*/1e9);
  ASSERT_DOUBLE_EQ(c.pressure(), 1.0);
  // A burst of calm samples at the SAME instant decays nothing: release is
  // a function of elapsed time, so a saturated replica's momentary queue
  // troughs (hundreds of arrivals at one busy-window boundary) cannot
  // reopen the valve between serving bursts.
  for (int i = 0; i < 1000; ++i) c.update(0.0, 0.0, 0.0);
  EXPECT_DOUBLE_EQ(c.pressure(), 1.0);
  // One time constant later the decay is the textbook 1 - 1/e.
  c.update(/*now=*/cfg.release_tau, 0.0, 0.0);
  EXPECT_NEAR(c.pressure(), std::exp(-1.0), 1e-9);
  // Rising samples still take the fast per-observation path.
  c.observe_request(/*retry=*/true);
  c.update(cfg.release_tau, 1e9, 1e9);
  EXPECT_GT(c.pressure(), 0.5);
}

// ---------------------------------------------------------------------------
// Mode machine: hysteresis and stepwise recovery
// ---------------------------------------------------------------------------

TEST(AdmissionModes, SquareWavePressureDoesNotFlapTheValve) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  AdmissionController c(cfg);
  // Raw pressure square-waving across soft_enter (0.55): 0.65 on even
  // samples (queue saturated + 1 s wait), 0.45 on odd ones (queue at 60%).
  // The filter plus the [soft_exit, soft_enter] hysteresis band must absorb
  // the oscillation — the valve closes once and stays closed.
  const double hi_queue = cfg.queue_capacity;        // queue* = 1.0 -> 0.50
  const double lo_queue = cfg.queue_capacity * 0.6;  // queue* = 0.6 -> 0.30
  for (int i = 0; i < 400; ++i) {
    c.observe_request(/*retry=*/false);
    c.update(static_cast<double>(i) * 0.1,
             i % 2 == 0 ? hi_queue : lo_queue,
             /*oldest_wait=*/1.0);  // lat* = 0.5 -> a constant 0.15
  }
  EXPECT_EQ(c.mode(), AdmissionMode::kSoft);
  EXPECT_EQ(c.mode_changes(), 1u)
      << "a square wave around the threshold must not flap the mode";
}

TEST(AdmissionModes, EscalationIsImmediateButRecoveryStepsDown) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.release_tau = 1.0;
  AdmissionController c(cfg);
  // A 100x spike saturates every signal at once: NORMAL -> HARD in one
  // update, no SOFT dwell on the way up.
  c.observe_request(true);
  c.update(0.0, 1e9, 1e9);
  EXPECT_EQ(c.mode(), AdmissionMode::kHard);
  EXPECT_EQ(c.mode_changes(), 1u);
  // Recovery is stepwise: as pressure decays on the release clock the valve
  // passes through SOFT before reopening, never HARD -> NORMAL directly.
  std::vector<AdmissionMode> seen{c.mode()};
  for (int i = 1; i <= 40; ++i) {
    c.update(static_cast<double>(i), 0.0, 0.0);
    if (seen.back() != c.mode()) seen.push_back(c.mode());
  }
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], AdmissionMode::kHard);
  EXPECT_EQ(seen[1], AdmissionMode::kSoft);
  EXPECT_EQ(seen[2], AdmissionMode::kNormal);
  EXPECT_EQ(c.mode_changes(), 3u);
}

// ---------------------------------------------------------------------------
// Token budgets
// ---------------------------------------------------------------------------

TEST(AdmissionTokens, BudgetExhaustsAndRefillsDeterministically) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.soft_enter = 0.0;  // first sample closes the valve
  cfg.soft_rate = 2.0;
  cfg.soft_burst = 4.0;
  AdmissionController c(cfg);
  c.update(0.0, cfg.queue_capacity, 0.0);
  ASSERT_EQ(c.mode(), AdmissionMode::kSoft);
  // The burst is granted on closing; then the bucket runs dry.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.try_admit(0.0)) << i;
  EXPECT_FALSE(c.try_admit(0.0));
  EXPECT_EQ(c.admitted(), 4u);
  EXPECT_EQ(c.rejected(), 1u);
  // Elapsed time refills at soft_rate: one second buys exactly two tokens.
  EXPECT_TRUE(c.try_admit(1.0));
  EXPECT_TRUE(c.try_admit(1.0));
  EXPECT_FALSE(c.try_admit(1.0));
  // The bucket clamps at the burst, no matter how long the lull.
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(c.try_admit(1000.0)) << i;
  EXPECT_FALSE(c.try_admit(1000.0));
}

TEST(AdmissionTokens, BandEdgeFlappingCannotMintTokens) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.soft_enter = 0.0;
  cfg.soft_rate = 0.0;  // no refill: any admission below is minted
  cfg.soft_burst = 3.0;
  cfg.hard_rate = 0.0;
  cfg.hard_burst = 2.0;
  cfg.release_tau = 1e9;  // pressure moves only via the attack path here
  AdmissionController c(cfg);
  c.update(0.0, cfg.queue_capacity * 0.5, 0.0);  // close into SOFT
  ASSERT_EQ(c.mode(), AdmissionMode::kSoft);
  while (c.try_admit(0.0)) {
  }
  EXPECT_EQ(c.admitted(), 3u);
  // Slam the pressure across the HARD band and (via a fresh controller
  // update at low raw... not possible with infinite tau) back: SOFT -> HARD
  // carries min(balance, burst) = 0 — the transition grants nothing.
  for (int i = 0; i < 50; ++i) {
    c.observe_request(true);
    c.update(static_cast<double>(i), 1e9, 1e9);  // SOFT -> HARD (once)
    EXPECT_FALSE(c.try_admit(static_cast<double>(i)));
  }
  EXPECT_EQ(c.admitted(), 3u) << "mode churn must never mint admissions";
  EXPECT_EQ(c.mode(), AdmissionMode::kHard);
}

// ---------------------------------------------------------------------------
// Determinism: the controller is a pure function of its input sequence, so
// eight threads replaying the same tape must agree bit-for-bit with a
// serial run (this is what makes the sim-lane traces reproducible).
// ---------------------------------------------------------------------------

TEST(AdmissionParallel, IdenticalTapesAgreeAcrossThreads) {
  AdmissionConfig cfg;
  cfg.enabled = true;
  cfg.soft_enter = 0.3;
  const auto replay = [&cfg]() {
    AdmissionController c(cfg);
    std::uint64_t admits = 0;
    // A deterministic tape mixing bursts, lulls, and retry storms.
    for (int i = 0; i < 5000; ++i) {
      const double now = static_cast<double>(i) * 0.01;
      c.observe_request(/*retry=*/(i * 7) % 3 == 0);
      const double queue = ((i / 100) % 2 == 0) ? (i % 97) : (i % 11);
      c.update(now, queue, (i % 13) * 0.3);
      if (c.try_admit(now)) ++admits;
    }
    return std::tuple<double, AdmissionMode, std::uint64_t, std::uint64_t,
                      std::uint64_t>{c.pressure(), c.mode(), admits,
                                     c.rejected(), c.mode_changes()};
  };
  const auto serial = replay();
  std::vector<std::remove_const_t<decltype(serial)>> results(8);
  {
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (auto& slot : results) {
      threads.emplace_back([&slot, &replay]() { slot = replay(); });
    }
    for (auto& t : threads) t.join();
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], serial) << "thread " << i;
  }
}

// ---------------------------------------------------------------------------
// End-to-end through a live cluster: typed rejections, client backoff, and
// the fault-injection battery.
// ---------------------------------------------------------------------------

TEST(AdmissionEndToEnd, RejectionQuorumTriggersVerifiedBackoff) {
  MinBftConfig cfg = fast_config(1);
  cfg.admission = reject_all_config();
  MinBftCluster cluster(3, cfg, 11, fast_link());
  auto& client = cluster.add_client();
  bool completed = false;
  client.submit("write:x=1", [&](std::uint64_t, const std::string&, double) {
    completed = true;
  });
  cluster.run_for(5.0);
  // Every replica rejects, so the f+1 quorum forms and the client backs
  // off instead of completing.  overloaded_replies counts only rejections
  // whose signature verified — the typed reply is authenticated end to end.
  EXPECT_FALSE(completed);
  EXPECT_GE(client.overloaded_replies(), 2u);
  EXPECT_GE(client.overload_backoffs(), 1u);
  EXPECT_EQ(client.shed_pending_count(), 1u);
  EXPECT_GT(client.last_backoff_delay(), 0.0);
  // Reopen the valve cluster-wide: the backed-off client's next re-probe
  // must complete the request — shedding is a delay, never a black hole.
  for (ReplicaId id : cluster.replica_ids()) {
    cluster.replica(id).set_admission_config(AdmissionConfig{});  // disabled
  }
  cluster.run_for(30.0);
  EXPECT_TRUE(completed);
  EXPECT_EQ(client.shed_pending_count(), 0u);
}

TEST(AdmissionEndToEnd, ByzantineFakeOverloadCannotStarveClients) {
  // Replica 2 (a follower) lies: it claims HARD overload and rejects every
  // request while the rest of the cluster is idle.  A single rejecter is
  // below the f+1 quorum, so the client must NOT back off — and the honest
  // quorum serves the request at full speed.
  MinBftCluster cluster(3, fast_config(1), 13, fast_link());
  AdmissionConfig liar = reject_all_config();
  liar.retry_after_soft_ms = 60000;  // a huge hint, hoping to stall clients
  cluster.replica(2).set_admission_config(liar);
  auto& client = cluster.add_client();
  const auto result = cluster.submit_and_run(client, "write:x=1");
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(client.overloaded_replies(), 1u) << "the lie was delivered";
  EXPECT_EQ(client.overload_backoffs(), 0u)
      << "a sub-quorum rejection must never trigger backoff";
  EXPECT_EQ(client.shed_pending_count(), 0u);
  // The liar keeps rejecting but the cluster keeps serving.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(
        cluster.submit_and_run(client, "op" + std::to_string(i)).has_value())
        << i;
  }
  EXPECT_EQ(client.overload_backoffs(), 0u);
}

TEST(AdmissionEndToEnd, RetryStormOfFiveHundredClientsConverges) {
  MinBftConfig cfg = fast_config(1);
  cfg.admission.enabled = true;
  cfg.admission.soft_enter = 0.2;
  cfg.admission.queue_capacity = 32.0;
  cfg.admission.soft_rate = 40.0;
  cfg.admission.soft_burst = 20.0;
  cfg.admission.hard_rate = 10.0;
  cfg.admission.hard_burst = 5.0;
  cfg.admission.retry_after_soft_ms = 500;
  cfg.admission.retry_after_hard_ms = 2000;
  MinBftCluster cluster(3, cfg, 17, fast_link());
  std::vector<MinBftClient*> clients;
  clients.reserve(500);
  int completed = 0;
  // Aggressive 0.5 s retransmission timers: without backoff these 500
  // clients re-send three messages each every half second forever.
  for (int i = 0; i < 500; ++i) {
    clients.push_back(&cluster.add_client(/*retry_timeout=*/0.5));
  }
  for (MinBftClient* c : clients) {
    c->submit("op", [&](std::uint64_t, const std::string&, double) {
      ++completed;
    });
  }
  cluster.run_for(120.0);
  EXPECT_EQ(completed, 500) << "the storm must drain, not starve";
  std::uint64_t backoffs = 0;
  std::set<double> delays;
  for (const MinBftClient* c : clients) {
    backoffs += c->overload_backoffs();
    if (c->overload_backoffs() > 0) delays.insert(c->last_backoff_delay());
    EXPECT_EQ(c->pending_count(), 0u);
  }
  EXPECT_GT(backoffs, 100u) << "the valve must have shed the initial wave";
  // Jitter must desynchronize the storm: clients draw from per-client Rng
  // streams, so their chosen delays are (essentially) all distinct — a
  // shared stream would re-synchronize the retry wave and defeat backoff.
  EXPECT_GE(delays.size(), 50u)
      << "backoff delays collide: jitter streams are not per-client";
}

}  // namespace
}  // namespace tolerance::consensus
