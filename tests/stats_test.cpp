#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "tolerance/stats/distributions.hpp"
#include "tolerance/stats/empirical.hpp"
#include "tolerance/stats/special.hpp"
#include "tolerance/stats/summary.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::stats {
namespace {

TEST(Special, NormCdfKnownValues) {
  EXPECT_NEAR(norm_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(norm_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(norm_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(Special, NormQuantileInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(norm_cdf(norm_quantile(p)), p, 1e-9) << "p=" << p;
  }
}

TEST(Special, IncompleteBetaBoundaries) {
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(regularized_incomplete_beta(2.0, 3.0, 1.0), 1.0);
  // I_x(1,1) = x (uniform CDF).
  EXPECT_NEAR(regularized_incomplete_beta(1.0, 1.0, 0.3), 0.3, 1e-12);
}

TEST(Special, TCdfMatchesTables) {
  // t_{0.975, 10} = 2.228.
  EXPECT_NEAR(t_cdf(2.228, 10.0), 0.975, 1e-3);
  // Symmetric around 0.
  EXPECT_NEAR(t_cdf(0.0, 5.0), 0.5, 1e-12);
  EXPECT_NEAR(t_cdf(-1.5, 7.0) + t_cdf(1.5, 7.0), 1.0, 1e-10);
}

TEST(Special, TQuantileMatchesTables) {
  EXPECT_NEAR(t_quantile(0.975, 10.0), 2.228, 2e-3);
  EXPECT_NEAR(t_quantile(0.975, 19.0), 2.093, 2e-3);
  // Approaches the normal quantile for large df.
  EXPECT_NEAR(t_quantile(0.975, 1e6), 1.95996, 1e-3);
}

TEST(Special, LogChoose) {
  EXPECT_NEAR(std::exp(log_choose(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_choose(10, 10)), 1.0, 1e-9);
}

TEST(Special, LogGammaMatchesLibm) {
  // The reentrant Lanczos log_gamma (thread-safe, unlike glibc's lgamma
  // which writes the global signgam) must agree with libm to ~1 ulp across
  // the ranges the beta-binomial and Poisson pmfs use.
  for (double x : {0.1, 0.3, 0.5, 0.7, 1.0, 1.5, 2.0, 3.7, 10.0, 25.5,
                   101.0, 1000.0}) {
    const double expected = std::lgamma(x);
    EXPECT_NEAR(log_gamma(x), expected,
                1e-12 * std::max(1.0, std::fabs(expected)))
        << "x=" << x;
  }
  EXPECT_THROW(log_gamma(0.0), std::exception);
  EXPECT_THROW(log_gamma(-1.5), std::exception);
}

TEST(BetaBinomial, PmfSumsToOne) {
  const BetaBinomial z(10, 0.7, 3.0);
  const auto p = z.pmf_vector();
  const double total = std::accumulate(p.begin(), p.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(BetaBinomial, MeanMatchesFormula) {
  const BetaBinomial z(10, 1.0, 0.7);
  EXPECT_NEAR(z.mean(), 10.0 * 1.0 / 1.7, 1e-12);
}

TEST(BetaBinomial, PaperObservationModelsAreSeparated) {
  // Table 8: Z(.|H) = BetaBin(10, 0.7, 3), Z(.|C) = BetaBin(10, 1, 0.7).
  const BetaBinomial healthy(10, 0.7, 3.0);
  const BetaBinomial compromised(10, 1.0, 0.7);
  EXPECT_LT(healthy.mean(), compromised.mean());
  const double kl =
      kl_divergence(healthy.pmf_vector(), compromised.pmf_vector());
  EXPECT_GT(kl, 0.5);
}

TEST(BetaBinomial, SampleMeanConverges) {
  const BetaBinomial z(10, 2.0, 2.0);
  Rng rng(123);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += z.sample(rng);
  EXPECT_NEAR(total / n, z.mean(), 0.1);
}

TEST(Poisson, PmfSumsToNearlyOne) {
  const PoissonDist p(20.0);
  double total = 0.0;
  for (int k = 0; k < 200; ++k) total += p.pmf(k);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Geometric, MatchesNodeFailureModel) {
  // Under kernel (2) with no recoveries, failure time ~ Geometric(p_fail)
  // where p_fail = 1 - (1-pA)(1-pC1) (§V-A, Fig. 5).
  const double pa = 0.1;
  const double pc1 = 1e-5;
  const double p_fail = 1.0 - (1.0 - pa) * (1.0 - pc1);
  const GeometricDist g(p_fail);
  EXPECT_NEAR(g.cdf(10), 1.0 - std::pow(1.0 - p_fail, 10), 1e-12);
  Rng rng(7);
  double total = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) total += g.sample(rng);
  EXPECT_NEAR(total / n, g.mean(), 0.25);
}

TEST(Binomial, PmfMatchesClosedForm) {
  const BinomialDist b(4, 0.5);
  EXPECT_NEAR(b.pmf(2), 6.0 / 16.0, 1e-12);
  const auto v = b.pmf_vector();
  EXPECT_NEAR(std::accumulate(v.begin(), v.end(), 0.0), 1.0, 1e-12);
}

TEST(Binomial, DegenerateCases) {
  EXPECT_DOUBLE_EQ(BinomialDist(3, 0.0).pmf(0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialDist(3, 1.0).pmf(3), 1.0);
}

TEST(Summary, MeanVariance) {
  std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(sample_variance(xs), 5.0 / 3.0, 1e-12);
}

TEST(Summary, MeanCiShrinksWithSamples) {
  Rng rng(42);
  std::vector<double> small, large;
  for (int i = 0; i < 10; ++i) small.push_back(rng.normal(5.0, 1.0));
  for (int i = 0; i < 1000; ++i) large.push_back(rng.normal(5.0, 1.0));
  const auto ci_small = mean_ci(small);
  const auto ci_large = mean_ci(large);
  EXPECT_GT(ci_small.half_width, ci_large.half_width);
  EXPECT_NEAR(ci_large.mean, 5.0, 0.2);
  EXPECT_LT(ci_large.lo(), ci_large.mean);
  EXPECT_GT(ci_large.hi(), ci_large.mean);
}

TEST(Summary, CiCoversTrueMeanAtNominalRate) {
  // Property: ~95% of Student-t CIs should cover the true mean.
  Rng rng(7);
  int covered = 0;
  const int trials = 400;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    for (int i = 0; i < 15; ++i) xs.push_back(rng.normal(1.0, 2.0));
    const auto ci = mean_ci(xs, 0.95);
    if (ci.lo() <= 1.0 && 1.0 <= ci.hi()) ++covered;
  }
  EXPECT_NEAR(covered / static_cast<double>(trials), 0.95, 0.05);
}

TEST(Summary, Quantile) {
  std::vector<double> xs{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
}

TEST(EmpiricalPmf, FromCountsNormalizes) {
  const auto p = EmpiricalPmf::from_counts({2, 6, 2}, 0.0);
  EXPECT_NEAR(p.prob(0), 0.2, 1e-12);
  EXPECT_NEAR(p.prob(1), 0.6, 1e-12);
  EXPECT_NEAR(p.mean(), 0.2 * 0 + 0.6 * 1 + 0.2 * 2, 1e-12);
}

TEST(EmpiricalPmf, SmoothingAvoidsZeros) {
  const auto p = EmpiricalPmf::from_counts({0, 10}, 1.0);
  EXPECT_GT(p.prob(0), 0.0);
}

TEST(EmpiricalPmf, FromSamplesClampsOutOfRange) {
  const auto p = EmpiricalPmf::from_samples({0, 1, 99, -5}, 3);
  EXPECT_NEAR(p.prob(0), 0.5, 1e-12);  // 0 and -5 clamp to 0
  EXPECT_NEAR(p.prob(2), 0.25, 1e-12);
}

TEST(EmpiricalPmf, GlivenkoCantelliConvergence) {
  // §VIII-A: the empirical estimate converges a.s. to the truth.
  const BetaBinomial truth(10, 1.0, 0.7);
  Rng rng(77);
  std::vector<int> samples;
  for (int i = 0; i < 25000; ++i) samples.push_back(truth.sample(rng));
  const auto est = EmpiricalPmf::from_samples(samples, 11, 0.5);
  const double kl = kl_divergence(truth.pmf_vector(), est.probs());
  EXPECT_LT(kl, 5e-3);
}

TEST(Kl, BasicProperties) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{0.9, 0.1};
  EXPECT_DOUBLE_EQ(kl_divergence(p, p), 0.0);
  EXPECT_GT(kl_divergence(p, q), 0.0);
  // Asymmetry.
  EXPECT_NE(kl_divergence(p, q), kl_divergence(q, p));
}

TEST(Kl, InfiniteWhenSupportMismatch) {
  std::vector<double> p{0.5, 0.5};
  std::vector<double> q{1.0, 0.0};
  EXPECT_TRUE(std::isinf(kl_divergence(p, q)));
}

TEST(QuantileBinner, UniformBinsOnLinearData) {
  std::vector<double> samples;
  for (int i = 0; i < 1000; ++i) samples.push_back(static_cast<double>(i));
  const auto binner = QuantileBinner::fit(samples, 4);
  EXPECT_EQ(binner.num_bins(), 4);
  EXPECT_EQ(binner.bin(-100.0), 0);
  EXPECT_EQ(binner.bin(1e9), 3);
  EXPECT_LT(binner.bin(100.0), binner.bin(900.0));
}

TEST(QuantileBinner, DegenerateDataCollapsesBins) {
  std::vector<double> samples(100, 5.0);
  const auto binner = QuantileBinner::fit(samples, 10);
  // All edges equal => most bins collapse, but binning still works.
  EXPECT_GE(binner.num_bins(), 2);
  EXPECT_EQ(binner.bin(4.9), 0);
}

}  // namespace
}  // namespace tolerance::stats
