#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/markov/chain.hpp"

namespace tolerance::markov {
namespace {

la::Matrix two_state(double p01, double p10) {
  la::Matrix p(2, 2);
  p(0, 0) = 1.0 - p01;
  p(0, 1) = p01;
  p(1, 0) = p10;
  p(1, 1) = 1.0 - p10;
  return p;
}

TEST(MarkovChain, RejectsNonStochastic) {
  la::Matrix p(2, 2, 0.3);
  EXPECT_THROW(MarkovChain{p}, std::invalid_argument);
}

TEST(MarkovChain, HittingTimeGeometric) {
  // From state 0, absorb into state 1 with prob q per step: E[T] = 1/q.
  for (double q : {0.5, 0.1, 0.01}) {
    la::Matrix p(2, 2, 0.0);
    p(0, 0) = 1.0 - q;
    p(0, 1) = q;
    p(1, 1) = 1.0;
    MarkovChain chain(p);
    const auto h = chain.mean_hitting_times({false, true});
    EXPECT_NEAR(h[0], 1.0 / q, 1e-9) << "q=" << q;
    EXPECT_DOUBLE_EQ(h[1], 0.0);
  }
}

TEST(MarkovChain, HittingTimeBirthDeath) {
  // 3-state chain 0 -> 1 -> 2 with prob 1 steps: hitting time of {2} from 0
  // is exactly 2.
  la::Matrix p(3, 3, 0.0);
  p(0, 1) = 1.0;
  p(1, 2) = 1.0;
  p(2, 2) = 1.0;
  MarkovChain chain(p);
  const auto h = chain.mean_hitting_times({false, false, true});
  EXPECT_NEAR(h[0], 2.0, 1e-12);
  EXPECT_NEAR(h[1], 1.0, 1e-12);
}

TEST(MarkovChain, UnreachableTargetIsInfinite) {
  // State 0 is absorbing; target {1} unreachable from 0.
  la::Matrix p(2, 2, 0.0);
  p(0, 0) = 1.0;
  p(1, 1) = 1.0;
  MarkovChain chain(p);
  const auto h = chain.mean_hitting_times({false, true});
  EXPECT_TRUE(std::isinf(h[0]));
  EXPECT_DOUBLE_EQ(h[1], 0.0);
}

TEST(MarkovChain, LeakToAbsorbingNonTargetIsInfinite) {
  // From 0: either to target 2 (prob 0.5) or absorbing trap 1 (prob 0.5);
  // mean hitting time of {2} is infinite.
  la::Matrix p(3, 3, 0.0);
  p(0, 1) = 0.5;
  p(0, 2) = 0.5;
  p(1, 1) = 1.0;
  p(2, 2) = 1.0;
  MarkovChain chain(p);
  const auto h = chain.mean_hitting_times({false, false, true});
  EXPECT_TRUE(std::isinf(h[0]));
}

TEST(MarkovChain, DistributionEvolution) {
  MarkovChain chain(two_state(0.3, 0.2));
  const auto d1 = chain.distribution_after({1.0, 0.0}, 1);
  EXPECT_NEAR(d1[0], 0.7, 1e-12);
  EXPECT_NEAR(d1[1], 0.3, 1e-12);
  const auto d100 = chain.distribution_after({1.0, 0.0}, 200);
  // Stationary distribution of this chain: (0.4, 0.6).
  EXPECT_NEAR(d100[0], 0.4, 1e-6);
  EXPECT_NEAR(d100[1], 0.6, 1e-6);
}

TEST(MarkovChain, StationaryDistributionMatchesClosedForm) {
  MarkovChain chain(two_state(0.3, 0.2));
  const auto pi = chain.stationary_distribution();
  EXPECT_NEAR(pi[0], 0.4, 1e-8);
  EXPECT_NEAR(pi[1], 0.6, 1e-8);
}

TEST(MarkovChain, ReliabilityCurveGeometric) {
  // Failure hazard q per step: R(t) = (1-q)^t.
  const double q = 0.2;
  la::Matrix p(2, 2, 0.0);
  p(0, 0) = 1.0 - q;
  p(0, 1) = q;
  p(1, 1) = 1.0;
  MarkovChain chain(p);
  const auto r = chain.reliability_curve({1.0, 0.0}, {false, true}, 10);
  ASSERT_EQ(r.size(), 11u);
  for (int t = 0; t <= 10; ++t) {
    EXPECT_NEAR(r[static_cast<std::size_t>(t)], std::pow(1.0 - q, t), 1e-12);
  }
}

TEST(MarkovChain, ReliabilityIsMonotoneNonIncreasing) {
  MarkovChain chain = binomial_survival_chain(10, 0.9);
  std::vector<double> init(11, 0.0);
  init[10] = 1.0;
  std::vector<bool> failed(11, false);
  for (int s = 0; s <= 3; ++s) failed[static_cast<std::size_t>(s)] = true;
  const auto r = chain.reliability_curve(init, failed, 50);
  for (std::size_t t = 1; t < r.size(); ++t) {
    EXPECT_LE(r[t], r[t - 1] + 1e-12);
  }
  EXPECT_NEAR(r[0], 1.0, 1e-12);
}

TEST(BinomialSurvivalChain, RowsAreBinomialPmfs) {
  const auto chain = binomial_survival_chain(5, 0.8);
  EXPECT_EQ(chain.num_states(), 6u);
  EXPECT_TRUE(chain.transition().is_row_stochastic(1e-9));
  // From state 5, P[next = 5] = 0.8^5.
  EXPECT_NEAR(chain.transition()(5, 5), std::pow(0.8, 5), 1e-12);
  // State 0 is absorbing.
  EXPECT_NEAR(chain.transition()(0, 0), 1.0, 1e-12);
}

TEST(BinomialSurvivalChain, MttfDecreasesWithFailureRate) {
  // MTTF (hitting {s <= f}) should decrease as survival prob decreases.
  std::vector<bool> failed(11, false);
  for (int s = 0; s <= 3; ++s) failed[static_cast<std::size_t>(s)] = true;
  const auto h_good = binomial_survival_chain(10, 0.99).mean_hitting_times(failed);
  const auto h_bad = binomial_survival_chain(10, 0.90).mean_hitting_times(failed);
  EXPECT_GT(h_good[10], h_bad[10]);
  EXPECT_GT(h_bad[10], 1.0);
}

TEST(BinomialSurvivalChain, MttfIncreasesWithInitialNodes) {
  // The Fig. 6a shape: more initial nodes => longer time to failure.
  const auto chain = binomial_survival_chain(50, 0.95);
  std::vector<bool> failed(51, false);
  for (int s = 0; s <= 7; ++s) failed[static_cast<std::size_t>(s)] = true;
  const auto h = chain.mean_hitting_times(failed);
  EXPECT_GT(h[50], h[20]);
  EXPECT_GT(h[20], h[10]);
}

TEST(MarkovChain, SimulatedStepsFollowKernel) {
  MarkovChain chain(two_state(0.3, 0.0));
  Rng rng(5);
  int transitions = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) {
    if (chain.step(0, rng) == 1) ++transitions;
  }
  EXPECT_NEAR(transitions / static_cast<double>(trials), 0.3, 0.02);
}

}  // namespace
}  // namespace tolerance::markov
