// Cross-module integration tests: the TOLERANCE control loop driving the
// MinBFT consensus layer (the full Fig. 2 architecture), and the system
// controller running on a crash-tolerant Raft substrate (§IV).
#include <gtest/gtest.h>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/emulation/ids.hpp"
#include "tolerance/consensus/raft.hpp"
#include "tolerance/core/node_controller.hpp"
#include "tolerance/emulation/estimation.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"

namespace tolerance {
namespace {

consensus::MinBftConfig fast_config(int f) {
  consensus::MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 10;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  return cfg;
}

net::LinkConfig fast_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 0.0;
  return link;
}

// The full loop of Fig. 2: IDS alerts -> belief -> recovery decision ->
// container replacement on the consensus cluster, while clients keep getting
// correct service.
TEST(Integration, FeedbackRecoveryKeepsServiceCorrect) {
  Rng rng(1);
  const auto detector = emulation::fit_pooled_detector(1500, 11, 80.0, rng);
  pomdp::NodeParams params;
  params.p_attack = 0.1;
  params.p_update = 2e-2;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);

  consensus::MinBftCluster cluster(3, fast_config(1), 9, fast_link());
  auto& client = cluster.add_client();

  // One controller per replica.
  std::vector<core::NodeController> controllers(
      3, core::NodeController(model, detector,
                              solvers::ThresholdPolicy::constant(0.76)));

  // Replica 1 is compromised and behaves Byzantine; its IDS stream shows
  // the residual intrusion noise.
  cluster.replica(1).set_mode(consensus::ByzantineMode::Random);
  const emulation::IdsModel ids(emulation::container(2));

  int recovered_at = -1;
  for (int t = 1; t <= 30; ++t) {
    // Service keeps working through the compromise (f = 1 tolerance).
    const auto result =
        cluster.submit_and_run(client, "op" + std::to_string(t));
    ASSERT_TRUE(result.has_value()) << "t=" << t;
    EXPECT_NE(*result, "garbage");
    // Controllers observe per-replica IDS output.
    for (int i = 0; i < 3; ++i) {
      const bool compromised =
          cluster.has_replica(static_cast<consensus::ReplicaId>(i)) &&
          cluster.replica(static_cast<consensus::ReplicaId>(i)).mode() !=
              consensus::ByzantineMode::Honest;
      const auto sample = ids.sample(nullptr, compromised, 27.0, rng);
      const auto idx = static_cast<std::size_t>(i);
      controllers[idx].observe(sample.alerts_weighted);
      if (controllers[idx].decide() == pomdp::NodeAction::Recover) {
        controllers[idx].commit(pomdp::NodeAction::Recover);
        cluster.recover_replica(static_cast<consensus::ReplicaId>(i));
        if (i == 1 && recovered_at < 0) recovered_at = t;
      } else {
        controllers[idx].commit(pomdp::NodeAction::Wait);
      }
    }
    if (recovered_at > 0) break;
  }
  ASSERT_GT(recovered_at, 0) << "the compromised replica was never recovered";
  EXPECT_LE(recovered_at, 10) << "feedback detection should be fast";
  EXPECT_EQ(cluster.replica(1).mode(), consensus::ByzantineMode::Honest);
  // Post-recovery, the service is intact and the recovered replica serves.
  const auto result = cluster.submit_and_run(client, "final");
  ASSERT_TRUE(result.has_value());
  cluster.run_for(1.0);
  EXPECT_EQ(cluster.replica(1).service().log().back(), "final");
}

// The system controller's decisions replicated through Raft: the controller
// survives crashes of its own substrate (the §IV deployment assumption).
TEST(Integration, SystemControllerDecisionsSurviveRaftLeaderCrash) {
  consensus::raft::RaftCluster raft_cluster(3, consensus::raft::RaftConfig{},
                                            31, fast_link());
  auto leader = raft_cluster.await_leader();
  ASSERT_TRUE(leader.has_value());

  // Compute a replication decision and commit it through Raft.
  const auto cmdp = pomdp::SystemCmdp::parametric(10, 3, 0.9, 0.85, 0.02);
  const auto sol = solvers::solve_replication_lp(cmdp);
  ASSERT_EQ(sol.status, lp::LpStatus::Optimal);
  ASSERT_GE(sol.beta2, 0);
  const std::string decision =
      "add-node-when-s<=" + std::to_string(sol.beta2);
  ASSERT_TRUE(raft_cluster.node(*leader).propose(decision).has_value());
  raft_cluster.run_for(1.0);

  // Crash the leader; the decision must survive on the new leader.
  raft_cluster.node(*leader).crash();
  const auto new_leader = raft_cluster.await_leader();
  ASSERT_TRUE(new_leader.has_value());
  ASSERT_GE(raft_cluster.node(*new_leader).log().size(), 1u);
  EXPECT_EQ(raft_cluster.node(*new_leader).log()[0].command, decision);
  EXPECT_GE(raft_cluster.node(*new_leader).commit_index(), 1u);
}

// Propagating the tolerance threshold f through Prop. 1: with N = 2f+1+k
// replicas, k recoveries and f Byzantine failures can overlap while the
// service stays correct.
TEST(Integration, PropositionOneBudget) {
  const int f = 1, k = 1;
  const int n = 2 * f + 1 + k;  // 4
  consensus::MinBftCluster cluster(n, fast_config(f), 17, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "baseline"));
  // One Byzantine replica AND one replica under recovery simultaneously.
  cluster.replica(2).set_mode(consensus::ByzantineMode::Silent);
  cluster.recover_replica(3);  // k = 1 recovery in flight
  const auto result = cluster.submit_and_run(client, "under-stress");
  ASSERT_TRUE(result.has_value());
  cluster.run_for(1.0);
  // The two honest, non-recovering replicas agree.
  EXPECT_EQ(cluster.replica(0).service().log(),
            cluster.replica(1).service().log());
}

}  // namespace
}  // namespace tolerance
