#include <gtest/gtest.h>

#include "tolerance/core/baselines.hpp"
#include "tolerance/core/node_controller.hpp"
#include "tolerance/core/system_controller.hpp"
#include "tolerance/core/tolerance_system.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"

namespace tolerance::core {
namespace {

emulation::FittedDetector make_detector(std::uint64_t seed = 100) {
  Rng rng(seed);
  return emulation::fit_pooled_detector(2000, 11, 80.0, rng);
}

pomdp::NodeParams paper_params() {
  pomdp::NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

TEST(Baselines, Names) {
  EXPECT_EQ(to_string(StrategyKind::Tolerance), "TOLERANCE");
  EXPECT_EQ(to_string(StrategyKind::NoRecovery), "NO-RECOVERY");
  EXPECT_EQ(to_string(StrategyKind::Periodic), "PERIODIC");
  EXPECT_EQ(to_string(StrategyKind::PeriodicAdaptive), "PERIODIC-ADAPTIVE");
}

TEST(Baselines, PeriodicScheduleHonorsDeltaR) {
  // Node 0 with DeltaR = 5 recovers at t = 5, 10, ... (phase 0).
  int recoveries = 0;
  for (int t = 1; t <= 20; ++t) {
    if (periodic_recovery_due(0, t, 5, 3)) ++recoveries;
  }
  EXPECT_EQ(recoveries, 4);
  // DeltaR = infinity: never due.
  for (int t = 1; t <= 100; ++t) {
    EXPECT_FALSE(periodic_recovery_due(0, t, 0, 3));
  }
}

TEST(Baselines, StaggeringSpreadsNodes) {
  // With 3 nodes and DeltaR = 15, recoveries of different nodes should not
  // all coincide on the same step.
  int same_step = 0;
  for (int t = 1; t <= 15; ++t) {
    int due = 0;
    for (int i = 0; i < 3; ++i) {
      if (periodic_recovery_due(i, t, 15, 3)) ++due;
    }
    if (due > 1) ++same_step;
  }
  EXPECT_EQ(same_step, 0);
}

TEST(NodeController, BeliefRisesUnderAlertStorm) {
  const auto detector = make_detector();
  NodeController controller(
      pomdp::NodeModel(paper_params()), detector,
      solvers::ThresholdPolicy::constant(0.99));
  // Quiet period: belief stays low.
  for (int t = 0; t < 10; ++t) controller.step(100.0);
  const double quiet_belief = controller.pre_decision_belief();
  EXPECT_LT(quiet_belief, 0.3);
  // Alert storm (brute-force magnitude): the filtered belief climbs fast
  // (it may then trigger a recovery, which resets belief() to pA —
  // pre_decision_belief() shows the value the decision was based on).
  for (int t = 0; t < 3; ++t) controller.step(30000.0);
  EXPECT_GT(controller.pre_decision_belief(), quiet_belief);
  EXPECT_GT(controller.pre_decision_belief(), 0.5);
}

TEST(NodeController, RecoversWhenThresholdCrossed) {
  const auto detector = make_detector();
  NodeController controller(
      pomdp::NodeModel(paper_params()), detector,
      solvers::ThresholdPolicy::constant(0.7));
  pomdp::NodeAction last = pomdp::NodeAction::Wait;
  for (int t = 0; t < 20 && last != pomdp::NodeAction::Recover; ++t) {
    last = controller.step(30000.0);
  }
  EXPECT_EQ(last, pomdp::NodeAction::Recover);
  // Belief resets to pA after recovery.
  EXPECT_NEAR(controller.belief(), 0.1, 1e-9);
  EXPECT_EQ(controller.steps_since_recovery(), 0);
}

TEST(NodeController, BtrConstraintForcesRecovery) {
  const auto detector = make_detector();
  const int delta_r = 5;
  NodeController controller(
      pomdp::NodeModel(paper_params()), detector,
      solvers::ThresholdPolicy(
          std::vector<double>(
              static_cast<std::size_t>(
                  solvers::ThresholdPolicy::dimension(delta_r)),
              1.0),
          delta_r));
  // With thresholds at 1.0 only the BTR constraint triggers recoveries.
  int recoveries = 0;
  for (int t = 0; t < 20; ++t) {
    if (controller.step(10.0) == pomdp::NodeAction::Recover) ++recoveries;
  }
  EXPECT_EQ(recoveries, 4);  // every 5 steps
}

TEST(SystemController, EvictsSilentNodes) {
  SystemController controller(std::nullopt, 10, 7);
  const auto decision =
      controller.step({0.1, 0.2, 0.9}, {true, false, true});
  ASSERT_EQ(decision.evict.size(), 1u);
  EXPECT_EQ(decision.evict[0], 1);
  EXPECT_FALSE(decision.add_node);  // static replication
}

TEST(SystemController, StateAggregatesBeliefs) {
  SystemController controller(std::nullopt, 10, 8);
  // Expected healthy = (1-0.1) + (1-0.5) + (1-0.9) = 1.5 => floor = 1. (8)
  const auto decision = controller.step({0.1, 0.5, 0.9}, {true, true, true});
  EXPECT_EQ(decision.state, 1);
}

TEST(SystemController, AddsNodesWhenHealthyCountLow) {
  // A decaying kernel (weak local recovery, q_recover = 0.02) cannot hold
  // the availability constraint without additions, so the LP strategy must
  // add aggressively at low s.
  const auto cmdp = pomdp::SystemCmdp::parametric(10, 3, 0.9, 0.85, 0.02);
  auto solution = solvers::solve_replication_lp(cmdp);
  ASSERT_EQ(solution.status, lp::LpStatus::Optimal);
  ASSERT_GE(solution.beta2, 0) << "strategy never adds — test premise broken";
  SystemController controller(solution, 10, 9);
  int adds_low = 0, adds_high = 0;
  for (int trial = 0; trial < 200; ++trial) {
    if (controller.step({0.9, 0.9, 0.9}, {true, true, true}).add_node) {
      ++adds_low;  // s = 0
    }
    if (controller
            .step({0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01, 0.01},
                  std::vector<bool>(9, true))
            .add_node) {
      ++adds_high;  // s = 8
    }
  }
  EXPECT_GT(adds_low, adds_high);
}

// ---------------------------------------------------------------------------
// End-to-end evaluation (the Table 7 machinery, scaled down)
// ---------------------------------------------------------------------------

EvaluationConfig base_config(StrategyKind strategy, int delta_r) {
  EvaluationConfig config;
  config.strategy = strategy;
  config.initial_nodes = 3;
  config.delta_r = delta_r;
  config.horizon = 400;
  config.f = 1;
  config.max_nodes = 13;
  config.recovery_threshold = 0.76;
  config.node_params = paper_params();
  config.testbed.attacker.start_probability = 0.1;
  // The paper's testbed has no spontaneous healing: Table 7 reports
  // T(R) = 10^3 exactly for NO-RECOVERY, i.e. compromises persist until the
  // horizon.  (The belief model still assumes pU = 2e-2 — a realistic,
  // harmless model mismatch.)
  config.testbed.p_update = 0.0;
  return config;
}

TEST(Evaluator, ToleranceBeatsNoRecovery) {
  const auto detector = make_detector();
  const auto cmdp = pomdp::SystemCmdp::parametric(13, 1, 0.9, 0.95, 0.3);
  const auto replication = solvers::solve_replication_lp(cmdp);
  ASSERT_EQ(replication.status, lp::LpStatus::Optimal);

  const Evaluator tol(base_config(StrategyKind::Tolerance, 0), detector,
                      replication);
  const Evaluator none(base_config(StrategyKind::NoRecovery, 0), detector,
                       std::nullopt);
  const auto r_tol = tol.run(1);
  const auto r_none = none.run(1);
  EXPECT_GT(r_tol.availability, 0.85);
  EXPECT_LT(r_none.availability, 0.5);
  EXPECT_LT(r_tol.time_to_recovery, 10.0);
  // NO-RECOVERY: unresolved compromises report T(R) = horizon.
  EXPECT_GT(r_none.time_to_recovery, 100.0);
  EXPECT_EQ(r_none.recoveries, 0);
}

TEST(Evaluator, PeriodicBetweenExtremes) {
  const auto detector = make_detector();
  const Evaluator periodic(base_config(StrategyKind::Periodic, 15), detector,
                           std::nullopt);
  const Evaluator none(base_config(StrategyKind::NoRecovery, 15), detector,
                       std::nullopt);
  const auto r_periodic = periodic.run(2);
  const auto r_none = none.run(2);
  EXPECT_GT(r_periodic.availability, r_none.availability);
  EXPECT_GT(r_periodic.recoveries, 0);
  // Periodic recovery frequency ~ 1/DeltaR per node-step.
  EXPECT_NEAR(r_periodic.recovery_frequency, 1.0 / 15.0, 0.04);
}

TEST(Evaluator, ToleranceFasterRecoveryThanPeriodic) {
  const auto detector = make_detector();
  const Evaluator tol(base_config(StrategyKind::Tolerance, 25), detector,
                      std::nullopt);
  const Evaluator periodic(base_config(StrategyKind::Periodic, 25), detector,
                           std::nullopt);
  double tol_ttr = 0.0, periodic_ttr = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    tol_ttr += tol.run(seed).time_to_recovery;
    periodic_ttr += periodic.run(seed).time_to_recovery;
  }
  EXPECT_LT(tol_ttr, periodic_ttr);
}

TEST(Evaluator, PeriodicDegradesToNoRecoveryAtInfiniteDeltaR) {
  const auto detector = make_detector();
  const Evaluator periodic(base_config(StrategyKind::Periodic, 0), detector,
                           std::nullopt);
  const auto r = periodic.run(3);
  EXPECT_EQ(r.recoveries, 0);  // the Fig. 12 DeltaR = inf column
}

TEST(Evaluator, AdaptiveReplicationAddsNodes) {
  const auto detector = make_detector();
  auto config = base_config(StrategyKind::PeriodicAdaptive, 15);
  const Evaluator adaptive(config, detector, std::nullopt);
  const auto r = adaptive.run(4);
  EXPECT_GT(r.additions, 0);
  EXPECT_GT(r.avg_nodes, 3.0);
}

TEST(Evaluator, DeterministicPerSeed) {
  const auto detector = make_detector();
  const Evaluator tol(base_config(StrategyKind::Tolerance, 0), detector,
                      std::nullopt);
  const auto a = tol.run(7);
  const auto b = tol.run(7);
  EXPECT_DOUBLE_EQ(a.availability, b.availability);
  EXPECT_EQ(a.recoveries, b.recoveries);
}

}  // namespace
}  // namespace tolerance::core
