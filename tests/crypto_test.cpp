#include <gtest/gtest.h>

#include "tolerance/crypto/hmac.hpp"
#include "tolerance/crypto/keys.hpp"
#include "tolerance/crypto/sha256.hpp"
#include "tolerance/crypto/usig.hpp"

namespace tolerance::crypto {
namespace {

// FIPS 180-4 / NIST test vectors.
TEST(Sha256, KnownVectors) {
  EXPECT_EQ(to_hex(Sha256::hash("")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  EXPECT_EQ(to_hex(Sha256::hash("abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
  EXPECT_EQ(
      to_hex(Sha256::hash("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")),
      "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, LongInputCrossesBlockBoundaries) {
  // One million 'a' characters (standard vector).
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(chunk);
  EXPECT_EQ(to_hex(h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  Sha256 h;
  h.update("hello ");
  h.update("world");
  EXPECT_EQ(to_hex(h.finalize()), to_hex(Sha256::hash("hello world")));
}

TEST(Sha256, DigestEqualConstantTimeSemantics) {
  const Digest a = Sha256::hash("x");
  const Digest b = Sha256::hash("x");
  const Digest c = Sha256::hash("y");
  EXPECT_TRUE(digest_equal(a, b));
  EXPECT_FALSE(digest_equal(a, c));
}

// RFC 4231 test vectors.
TEST(Hmac, Rfc4231Vectors) {
  const std::string key1(20, '\x0b');
  EXPECT_EQ(to_hex(hmac_sha256(key1, "Hi There")),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
  EXPECT_EQ(to_hex(hmac_sha256("Jefe", "what do ya want for nothing?")),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashedFirst) {
  // RFC 4231 test case 6: 131-byte key.
  const std::string key(131, '\xaa');
  EXPECT_EQ(to_hex(hmac_sha256(key,
                               "Test Using Larger Than Block-Size Key - Hash "
                               "Key First")),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54");
}

TEST(Hmac, VerifyAcceptsAndRejects) {
  const Digest tag = hmac_sha256("key", "msg");
  EXPECT_TRUE(hmac_verify("key", "msg", tag));
  EXPECT_FALSE(hmac_verify("key", "other", tag));
  EXPECT_FALSE(hmac_verify("wrong", "msg", tag));
}

TEST(KeyRegistry, SignatureRoundTrip) {
  KeyRegistry registry;
  const std::string secret = registry.register_principal(7, 42);
  const Signer signer(7, secret);
  const Signature sig = signer.sign("service request");
  EXPECT_TRUE(registry.verify("service request", sig));
  EXPECT_FALSE(registry.verify("tampered request", sig));
}

TEST(KeyRegistry, UnknownSignerRejected) {
  KeyRegistry registry;
  registry.register_principal(1, 42);
  const Signer impostor(2, "made-up-secret");
  const Signature sig = impostor.sign("msg");
  EXPECT_FALSE(registry.verify("msg", sig));
}

TEST(KeyRegistry, ForgeryWithoutKeyFails) {
  // Prop. 1(a): the attacker cannot forge signatures.  A signature produced
  // under a different key must not verify for the claimed principal.
  KeyRegistry registry;
  registry.register_principal(1, 42);
  Signature forged;
  forged.signer = 1;
  forged.tag = hmac_sha256("attacker-guess", "msg");
  EXPECT_FALSE(registry.verify("msg", forged));
}

TEST(KeyRegistry, KeyRotation) {
  KeyRegistry registry;
  const std::string old_secret = registry.register_principal(3, 1);
  const Signer old_signer(3, old_secret);
  const Signature old_sig = old_signer.sign("m");
  registry.register_principal(3, 2);  // rotate
  EXPECT_FALSE(registry.verify("m", old_sig));
}

TEST(Sha256, EmptyMessageKnownVector) {
  // The one-shot empty digest is covered by KnownVectors; the incremental
  // interface with zero update() calls and with an explicit zero-length
  // update must both produce the same empty-message digest.
  Sha256 h1;
  EXPECT_EQ(to_hex(h1.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
  Sha256 h2;
  h2.update("");
  EXPECT_EQ(to_hex(h2.finalize()),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Hmac, EmptyKeyAndMessageKnownVectors) {
  // HMAC-SHA256("", "") — standard cross-implementation vector.
  EXPECT_EQ(
      to_hex(hmac_sha256("", "")),
      "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
  // Empty message under a non-empty key.
  EXPECT_EQ(
      to_hex(hmac_sha256("key", "")),
      "5d5d139563c95b5967b9bd9a8c9b233a9dedb45072794cd232dc1b74832607d0");
  EXPECT_TRUE(hmac_verify("", "", hmac_sha256("", "")));
  EXPECT_FALSE(hmac_verify("key", "", hmac_sha256("", "")));
}

TEST(Usig, CountersAreStrictlyMonotonic) {
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  const UniqueIdentifier u1 = usig.create(d);
  const UniqueIdentifier u2 = usig.create(d);
  EXPECT_EQ(u1.counter + 1, u2.counter);
  EXPECT_EQ(usig.last_counter(), u2.counter);
}

TEST(Usig, VerifyBindsCounterAndMessage) {
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  UniqueIdentifier ui = usig.create(d);
  EXPECT_TRUE(Usig::verify(*registry, d, ui));
  // Different message with the same UI must fail (no equivocation).
  EXPECT_FALSE(Usig::verify(*registry, Sha256::hash("other-op"), ui));
  // Tampering with the counter must fail.
  UniqueIdentifier tampered = ui;
  tampered.counter += 1;
  EXPECT_FALSE(Usig::verify(*registry, d, tampered));
}

TEST(Usig, CannotAssignSameCounterToTwoMessages) {
  // The equivocation-prevention property: after certifying message A at
  // counter k, there is no API to certify message B at counter k; the next
  // certificate necessarily uses counter k+1.
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const UniqueIdentifier ua = usig.create(Sha256::hash("A"));
  const UniqueIdentifier ub = usig.create(Sha256::hash("B"));
  EXPECT_NE(ua.counter, ub.counter);
  // And a hand-crafted certificate for B at A's counter fails verification.
  UniqueIdentifier forged = ua;
  EXPECT_FALSE(Usig::verify(*registry, Sha256::hash("B"), forged));
}

TEST(UsigVerifyCache, CachesVerdictsAndCountsHits) {
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  const UniqueIdentifier ui = usig.create(d);

  UsigVerifyCache cache;
  EXPECT_FALSE(cache.lookup(ui, d).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  cache.insert(ui, d, Usig::verify(*registry, d, ui));
  const auto hit = cache.lookup(ui, d);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(*hit);
  EXPECT_EQ(cache.hits(), 1u);
}

TEST(UsigVerifyCache, DifferentContentOrCertificateNeverHits) {
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  const UniqueIdentifier ui = usig.create(d);
  UsigVerifyCache cache;
  cache.insert(ui, d, true);
  // Same counter, different message digest: a replay with new content must
  // go through full verification (and fail there), never ride the cache.
  EXPECT_FALSE(cache.lookup(ui, Sha256::hash("other")).has_value());
  // Same counter and digest but a doctored certificate: also a miss.
  UniqueIdentifier forged = ui;
  forged.certificate[0] ^= 0xff;
  EXPECT_FALSE(cache.lookup(forged, d).has_value());
}

TEST(UsigVerifyCache, LaterVerificationReplacesStaleEntry) {
  // If a forged (digest, certificate) pairing for a counter is verified (and
  // cached as a failure) before the legitimate message arrives, the later
  // successful verification must replace the stale entry — otherwise every
  // retransmit of the real message re-pays the full HMAC check.
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  const UniqueIdentifier ui = usig.create(d);
  UniqueIdentifier forged = ui;
  forged.certificate[0] ^= 0xff;

  UsigVerifyCache cache;
  cache.insert(forged, d, Usig::verify(*registry, d, forged));  // false
  cache.insert(ui, d, Usig::verify(*registry, d, ui));          // true
  const auto hit = cache.lookup(ui, d);
  ASSERT_TRUE(hit.has_value()) << "legitimate verdict was never cached";
  EXPECT_TRUE(*hit);
  // The forged pairing no longer matches the stored entry: a replay of it
  // misses and goes back through full (failing) verification.
  EXPECT_FALSE(cache.lookup(forged, d).has_value());
  // ...but that failing re-verification must not evict the canonical true
  // verdict either (else alternating forged replays would defeat the cache
  // in the other direction: last-writer-wins instead of first-writer-wins).
  cache.insert(forged, d, false);
  const auto still = cache.lookup(ui, d);
  ASSERT_TRUE(still.has_value()) << "forged replay evicted the true verdict";
  EXPECT_TRUE(*still);
}

TEST(UsigVerifyCache, EvictsOldestBeyondCapacity) {
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(5 + kUsigPrincipalOffset, 9);
  Usig usig(5, secret);
  const Digest d = Sha256::hash("op");
  UsigVerifyCache cache(4);
  std::vector<UniqueIdentifier> uis;
  for (int i = 0; i < 6; ++i) {
    uis.push_back(usig.create(d));
    cache.insert(uis.back(), d, true);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_FALSE(cache.lookup(uis[0], d).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(uis[5], d).has_value());   // retained
}

TEST(Sha256, InvocationCounterTracksDigestComputations) {
  const std::uint64_t before = Sha256::invocations();
  (void)Sha256::hash("abc");
  (void)Sha256::hash("def");
  EXPECT_EQ(Sha256::invocations(), before + 2);
}

TEST(Usig, CounterMonotoneUnderRepeatedSigning) {
  // Even on a compromised replica the USIG keeps assigning strictly
  // contiguous counters; sign many messages and check every certificate.
  auto registry = std::make_shared<KeyRegistry>();
  const std::string secret =
      registry->register_principal(7 + kUsigPrincipalOffset, 123);
  Usig usig(7, secret);
  std::uint64_t prev = usig.last_counter();
  for (int i = 0; i < 1000; ++i) {
    const Digest d = Sha256::hash("op-" + std::to_string(i % 17));
    const UniqueIdentifier ui = usig.create(d);
    EXPECT_EQ(ui.counter, prev + 1) << "counter skipped or repeated at " << i;
    EXPECT_EQ(ui.replica, 7u);
    EXPECT_TRUE(Usig::verify(*registry, d, ui)) << "certificate " << i;
    prev = ui.counter;
  }
  EXPECT_EQ(usig.last_counter(), prev);
}

}  // namespace
}  // namespace tolerance::crypto
