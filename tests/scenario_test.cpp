// End-to-end system-controller scenario battery (`-L scenario` in ctest).
//
// Exercises the second feedback level closed-loop: ScenarioRunner drives the
// CMDP policy's recover/evict/add decisions against the emulated testbed AND
// a live MinBFT cluster, for every scenario in the catalog, with
// bit-identical results at any thread count.  Also pins the consensus-layer
// membership invariants the loop depends on: the 2f+1 floor, rejected USIG
// counters from evicted replicas, and restored voting rights (fresh USIG
// epoch) after a recovery.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/core/system_controller.hpp"
#include "tolerance/emulation/scenario_runner.hpp"
#include "tolerance/emulation/scenarios.hpp"

namespace {

using namespace tolerance;
using emulation::Scenario;
using emulation::ScenarioResult;
using emulation::ScenarioRunner;

const std::vector<std::uint64_t> kBatterySeeds{7, 21};

ScenarioRunner runner_for(const std::string& name) {
  return emulation::make_scenario_runner(emulation::find_scenario(name), 42);
}

int scenario_floor(const Scenario& s) { return 2 * s.f + 1; }

// ---------------------------------------------------------------------------
// Catalog shape
// ---------------------------------------------------------------------------

TEST(ScenarioCatalog, HasTheDocumentedScenarios) {
  const auto names = emulation::scenario_names();
  ASSERT_GE(names.size(), 8u);
  const std::set<std::string> set(names.begin(), names.end());
  for (const char* expected :
       {"baseline-intrusion", "staggered-intrusions", "false-positive-storms",
        "correlated-burst-exceeds-f", "silent-saboteurs", "slow-loris",
        "crash-wave", "aggressive-attacker", "golden-small",
        "load-spike-100x", "retry-storm", "slow-loris-flood",
        "controller-crash-mid-intrusion", "controller-gc-pause",
        "controller-solver-failures", "controller-slow-solve-churn"}) {
    EXPECT_EQ(set.count(expected), 1u) << expected;
  }
  EXPECT_EQ(set.size(), names.size()) << "duplicate scenario names";
}

TEST(ScenarioCatalog, LookupFindsEveryEntryAndRejectsUnknownNames) {
  for (const auto& s : emulation::scenario_catalog()) {
    EXPECT_EQ(emulation::find_scenario(s.name).name, s.name);
    EXPECT_GE(s.initial_nodes, 2 * s.f + 1) << s.name;
    EXPECT_FALSE(s.description.empty()) << s.name;
  }
  EXPECT_THROW(emulation::find_scenario("no-such-scenario"),
               std::invalid_argument);
}

TEST(ScenarioCatalog, RunnerRejectsMalformedScenarios) {
  Rng rng(1);
  const auto detector = emulation::fit_pooled_detector(20, 11, 80.0, rng);
  Scenario s = emulation::find_scenario("golden-small");
  s.initial_nodes = 2;  // < 2f + 1
  EXPECT_THROW(ScenarioRunner(s, detector, std::nullopt),
               std::invalid_argument);
  Scenario late = emulation::find_scenario("golden-small");
  late.events[0].step = late.horizon + 5;
  EXPECT_THROW(ScenarioRunner(late, detector, std::nullopt),
               std::invalid_argument);
  Scenario pool = emulation::find_scenario("golden-small");
  pool.max_nodes = pool.initial_nodes - 1;
  EXPECT_THROW(ScenarioRunner(pool, detector, std::nullopt),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// The battery: every named scenario runs green at threads=1 and threads=8
// with identical episode stats, and never lets the membership drop below
// the 2f+1 quorum floor.
// ---------------------------------------------------------------------------

class ScenarioBattery : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioBattery, GreenAndThreadCountInvariant) {
  const auto runner = runner_for(GetParam());
  const Scenario& s = runner.scenario();
  const auto serial = runner.run_many(kBatterySeeds, /*threads=*/1);
  const auto parallel = runner.run_many(kBatterySeeds, /*threads=*/8);
  ASSERT_EQ(serial.size(), kBatterySeeds.size());
  ASSERT_EQ(parallel.size(), kBatterySeeds.size());
  for (std::size_t i = 0; i < kBatterySeeds.size(); ++i) {
    EXPECT_TRUE(emulation::identical(serial[i], parallel[i]))
        << s.name << " episode " << i << " differs between thread counts";
    const ScenarioResult& r = serial[i];
    // The §III-C metrics are well-formed.
    EXPECT_GE(r.availability, 0.0);
    EXPECT_LE(r.availability, 1.0);
    EXPECT_GE(r.service_availability, 0.0);
    EXPECT_LE(r.service_availability, 1.0);
    EXPECT_GE(r.time_to_recovery, 0.0);
    EXPECT_GE(r.avg_nodes, static_cast<double>(scenario_floor(s)));
    // Quorum never silently drops below 2f + 1.
    EXPECT_GE(r.min_membership, scenario_floor(s)) << s.name;
    EXPECT_LE(r.max_membership, s.max_nodes) << s.name;
    // The decision trace covers every control cycle.
    ASSERT_EQ(r.trace.size(), static_cast<std::size_t>(s.horizon));
    for (int t = 0; t < s.horizon; ++t) {
      EXPECT_EQ(r.trace[static_cast<std::size_t>(t)].rfind(
                    "t=" + std::to_string(t + 1) + " ", 0),
                0u)
          << s.name << " trace line " << t;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ScenarioBattery,
    ::testing::ValuesIn(emulation::scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Consensus batching equivalence: the scenario workload is sequential (one
// probe / membership op at a time), so the batched cluster must reproduce
// the unbatched episode bit-for-bit — across the whole catalog, at 1 and 8
// threads.  (Named *Parallel* so the TSan lane picks it up.)
// ---------------------------------------------------------------------------

class ScenarioBatchParallel : public ::testing::TestWithParam<std::string> {};

TEST_P(ScenarioBatchParallel, BatchedMatchesUnbatchedAtAnyThreadCount) {
  const Scenario s = emulation::find_scenario(GetParam());
  ScenarioRunner::Options batched;  // defaults: batch_size 16, depth 4
  ScenarioRunner::Options unbatched;
  unbatched.consensus_batch_size = 1;
  unbatched.consensus_pipeline_depth =
      consensus::MinBftConfig::kUnboundedPipeline;
  const auto batched_runner =
      emulation::make_scenario_runner(s, 42, 60, batched);
  const std::vector<std::uint64_t> seeds{7};
  const auto b1 = batched_runner.run_many(seeds, /*threads=*/1);
  const auto b8 = batched_runner.run_many(seeds, /*threads=*/8);
  ASSERT_EQ(b1.size(), 1u);
  EXPECT_TRUE(emulation::identical(b1[0], b8[0]))
      << s.name << ": batched episode differs between thread counts";
  // Scripted crashes kill leaders mid-flight: the view-change reproposal
  // backlog then engages the bounded pipeline window (unbatched runs with
  // an unbounded one), so the episodes legitimately drift apart in time —
  // safety for those runs is covered by the battery and the outcome pins,
  // and the unbatched episode is not worth simulating at all.  Every other
  // scenario is a sequential workload the batched cluster must reproduce
  // bit-for-bit.
  const bool has_scripted_crash = std::any_of(
      s.events.begin(), s.events.end(), [](const emulation::ScenarioEvent& e) {
        return e.kind == emulation::ScenarioEvent::Kind::ForceCrash;
      });
  // Flood scenarios are likewise exempt from the unbatched comparison:
  // hundreds of concurrent flood clients keep the request queues full, so
  // batch sealing genuinely changes execution timing (that is the point of
  // batching) and the two episodes drift apart legitimately.
  const bool exempt = has_scripted_crash || emulation::has_flood_events(s);
  if (!exempt) {
    const auto unbatched_runner =
        emulation::make_scenario_runner(s, 42, 60, unbatched);
    const auto u1 = unbatched_runner.run_many(seeds, /*threads=*/1);
    EXPECT_TRUE(emulation::identical(b1[0], u1[0]))
        << s.name << ": batching changed the sequential-workload episode";
  } else {
    // The batched run must still hold the structural invariants.
    EXPECT_GE(b1[0].min_membership, 2 * s.f + 1);
    EXPECT_EQ(b1[0].trace.size(), static_cast<std::size_t>(s.horizon));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Catalog, ScenarioBatchParallel,
    ::testing::ValuesIn(emulation::scenario_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Per-scenario expectations (calibrated on the battery seeds; episodes are
// deterministic, so these are regressions, not statistical tests).
// ---------------------------------------------------------------------------

TEST(ScenarioOutcomes, BaselineKeepsServiceUp) {
  const auto r = runner_for("baseline-intrusion").run(7);
  EXPECT_GE(r.availability, 0.95);
  EXPECT_GE(r.service_availability, 0.95);
  EXPECT_GT(r.recoveries, 0);
}

TEST(ScenarioOutcomes, StaggeredIntrusionsAreAllCaught) {
  const auto r = runner_for("staggered-intrusions").run(7);
  // Three forced compromises plus whatever the stochastic attacker lands.
  EXPECT_GE(r.compromises, 3);
  EXPECT_GT(r.time_to_recovery, 0.0);
  EXPECT_GE(r.availability, 0.9);
}

TEST(ScenarioOutcomes, FalsePositiveStormsDoNotCompromiseAnything) {
  const auto r = runner_for("false-positive-storms").run(7);
  // Attacker is off: every recovery is storm-induced, no compromise exists.
  EXPECT_EQ(r.compromises, 0);
  EXPECT_EQ(r.time_to_recovery, 0.0);
  EXPECT_GT(r.recoveries, 0) << "storms should trip some recoveries";
  EXPECT_GE(r.availability, 0.99) << "storms must not take the system down";
  EXPECT_GE(r.service_availability, 0.99);
}

TEST(ScenarioOutcomes, CorrelatedBurstIsRecoveredWithinSlots) {
  const auto r = runner_for("correlated-burst-exceeds-f").run(21);
  EXPECT_GE(r.compromises, 3) << "the scripted 2f+1 burst must register";
  EXPECT_GT(r.time_to_recovery, 0.0);
  // The burst exceeds the per-cycle recovery slots, so full recovery takes
  // more than one cycle — but the loop must win quickly.
  EXPECT_GE(r.availability, 0.95);
}

TEST(ScenarioOutcomes, SlowLorisRaisesLoadWithoutTakingServiceDown) {
  const auto r = runner_for("slow-loris").run(7);
  EXPECT_GE(r.service_availability, 0.95);
  EXPECT_GE(r.availability, 0.95);
}

TEST(ScenarioOutcomes, CrashWaveChurnsMembershipAndHoldsTheFloor) {
  const auto runner = runner_for("crash-wave");
  const auto r = runner.run(7);
  const int floor = scenario_floor(runner.scenario());
  EXPECT_GT(r.evictions, 0) << "crashes must be evicted through consensus";
  EXPECT_GT(r.additions, 0) << "the pool has capacity; adds must land";
  EXPECT_EQ(r.min_membership, floor)
      << "the wave should pin the cluster at the floor, never below";
  EXPECT_GT(r.final_view, 0u) << "crashed leaders force view changes";
  EXPECT_LT(r.service_availability, 1.0)
      << "a crash wave without service impact would be suspicious";
  EXPECT_GT(r.service_availability, 0.3);
}

TEST(ScenarioOutcomes, AggressiveAttackerDrivesRecoveryChurn) {
  const auto r = runner_for("aggressive-attacker").run(7);
  EXPECT_GE(r.recoveries, 15) << "4x attack rate must drive recovery churn";
  EXPECT_GE(r.availability, 0.9);
}

// ---------------------------------------------------------------------------
// Overload battery: the admission valve's contract under floods.  Each gate
// is paired with a valve-off baseline run of the same scenario, so the test
// demonstrates the valve EARNS its keep: the baseline measurably violates
// the same bounds the valve holds.
// ---------------------------------------------------------------------------

ScenarioResult run_without_admission(const std::string& name) {
  Scenario s = emulation::find_scenario(name);
  s.admission_control = false;
  return emulation::make_scenario_runner(s, 42).run(7);
}

TEST(ScenarioOverload, LoadSpikeServesOrShedsEverythingWithBoundedQueues) {
  const auto on = runner_for("load-spike-100x").run(7);
  // Every admitted request completes; shed requests are the valve's doing
  // and excluded from the denominator by definition.
  EXPECT_GE(on.admitted_availability, 0.95);
  EXPECT_LE(on.max_queue_depth, 512) << "queues must stay bounded";
  EXPECT_EQ(on.final_view, 0u) << "overload must not masquerade as leader "
                                  "failure and trigger failover";
  EXPECT_GT(on.flood_rejections, 0u) << "the valve must actually shed";
  EXPECT_GT(on.flood_backoffs, 0u) << "clients must actually back off";
  const auto off = run_without_admission("load-spike-100x");
  EXPECT_LT(off.admitted_availability, 0.6)
      << "baseline must melt or the scenario is not an overload";
  EXPECT_GT(off.max_queue_depth, 100000)
      << "baseline queues must grow without bound";
}

TEST(ScenarioOverload, RetryStormConvergesUnderBackoff) {
  const auto on = runner_for("retry-storm").run(7);
  EXPECT_GE(on.admitted_availability, 0.95);
  EXPECT_LE(on.max_queue_depth, 512);
  EXPECT_GT(on.flood_backoffs, 0u);
  EXPECT_EQ(on.final_view, 0u);
  const auto off = run_without_admission("retry-storm");
  EXPECT_GT(off.max_queue_depth, 2000)
      << "1 s retransmissions must swamp the baseline's queues";
}

TEST(ScenarioOverload, SlowLorisFloodIsShedAndQueuesStayBounded) {
  const auto on = runner_for("slow-loris-flood").run(7);
  // Loris requests linger by design (their clients never retransmit and
  // never complete), so the gate here is purely structural: bounded queues
  // and an alive trickle, while the baseline drowns.
  EXPECT_LE(on.max_queue_depth, 512);
  EXPECT_GT(on.flood_rejections, 0u);
  EXPECT_GE(on.service_availability, 0.2)
      << "the HARD trickle must keep some probes alive";
  const auto off = run_without_admission("slow-loris-flood");
  EXPECT_GT(off.max_queue_depth, 2000);
}

// ---------------------------------------------------------------------------
// Controller-fault battery: the asynchronous level-2 controller's staleness
// failsafe vs. the inline/no-failsafe baseline on the same scenarios.  Each
// gate pairs the failsafe run (FALLBACK engages, zero frozen cycles, service
// holds) with an inline baseline run whose controller-fault windows freeze
// the whole level-2 step — demonstrating the ladder earns its keep.
// ---------------------------------------------------------------------------

ScenarioResult run_controller(const std::string& name, std::uint64_t seed,
                              bool async) {
  ScenarioRunner::Options opt;
  opt.async_controller = async;
  return emulation::make_scenario_runner(emulation::find_scenario(name), 42,
                                         60, opt)
      .run(seed);
}

TEST(ScenarioController, CrashFailsafeBeatsFrozenBaseline) {
  for (std::uint64_t seed : kBatterySeeds) {
    const auto on = run_controller("controller-crash-mid-intrusion", seed,
                                   /*async=*/true);
    // Failsafe ON: the ladder degrades through HOLD into FALLBACK while the
    // re-solver is down, keeps evicting/adding on the threshold policy, and
    // recovers to FRESH once the cold restart's first flip lands.
    EXPECT_EQ(on.controller_frozen_cycles, 0) << "seed " << seed;
    EXPECT_GT(on.controller_fallback_cycles, 0) << "seed " << seed;
    EXPECT_GT(on.controller_hold_cycles, 0) << "seed " << seed;
    EXPECT_GE(on.policy_epoch, 2u) << "no flip landed after the restart";
    EXPECT_EQ(on.controller_mode, "fresh") << "seed " << seed;
    EXPECT_GE(std::min(on.availability, on.service_availability), 0.95)
        << "seed " << seed;
    // Failsafe OFF: the crash window freezes the level-2 step outright.
    const auto off = run_controller("controller-crash-mid-intrusion", seed,
                                    /*async=*/false);
    EXPECT_EQ(off.controller_frozen_cycles, 30) << "seed " << seed;
    EXPECT_EQ(off.policy_epoch, 0u);
    EXPECT_LE(std::min(off.availability, off.service_availability), 0.87)
        << "baseline must measurably degrade, or the scenario is toothless "
           "(seed "
        << seed << ")";
  }
}

TEST(ScenarioController, GcPauseFailsafeHoldsService) {
  double worst_inline_availability = 1.0;
  for (std::uint64_t seed : kBatterySeeds) {
    const auto on = run_controller("controller-gc-pause", seed, true);
    EXPECT_EQ(on.controller_frozen_cycles, 0) << "seed " << seed;
    EXPECT_GT(on.controller_fallback_cycles, 0) << "seed " << seed;
    EXPECT_EQ(on.controller_mode, "fresh") << "seed " << seed;
    EXPECT_GE(on.availability, 0.999) << "seed " << seed;
    EXPECT_GE(on.service_availability, 0.999) << "seed " << seed;
    // The stall parks the in-flight solve rather than losing it: once the
    // pause lifts, the harvest publishes without a cold restart.
    EXPECT_GE(on.controller_resolves, 5L) << "seed " << seed;
    const auto off = run_controller("controller-gc-pause", seed, false);
    EXPECT_EQ(off.controller_frozen_cycles, 24) << "seed " << seed;
    worst_inline_availability =
        std::min(worst_inline_availability,
                 std::min(off.availability, off.service_availability));
  }
  EXPECT_LT(worst_inline_availability, 1.0)
      << "the frozen baseline must drop probes for at least one seed";
}

TEST(ScenarioController, SolverFailuresAreRejectedAndRecovered) {
  for (std::uint64_t seed : kBatterySeeds) {
    const auto on = run_controller("controller-solver-failures", seed, true);
    // Exactly the five scripted poisoned solves are rejected; the guard
    // never flips one in, and the jittered retries eventually land a good
    // re-solve that returns the ladder to FRESH.
    EXPECT_EQ(on.controller_rejected, 5L) << "seed " << seed;
    EXPECT_GE(on.controller_resolves, 5L) << "seed " << seed;
    EXPECT_GE(on.policy_epoch, 6u) << "seed " << seed;
    EXPECT_EQ(on.controller_mode, "fresh") << "seed " << seed;
    EXPECT_GT(on.controller_fallback_cycles, 0L) << "seed " << seed;
    EXPECT_EQ(on.controller_frozen_cycles, 0L) << "seed " << seed;
    EXPECT_GE(on.availability, 0.999) << "seed " << seed;
    EXPECT_GE(on.service_availability, 0.999) << "seed " << seed;
    const auto off = run_controller("controller-solver-failures", seed, false);
    EXPECT_EQ(off.controller_frozen_cycles, 25) << "seed " << seed;
    EXPECT_EQ(off.controller_rejected, 0L) << "seed " << seed;
  }
}

TEST(ScenarioController, SlowSolveChurnHoldsWithoutFallback) {
  const Scenario& s = emulation::find_scenario("controller-slow-solve-churn");
  for (std::uint64_t seed : kBatterySeeds) {
    const auto on = run_controller("controller-slow-solve-churn", seed, true);
    // Staleness rides above the (deliberately tight) budget while each slow
    // solve is in flight, but never reaches the fallback deadline: the
    // ladder oscillates FRESH <-> HOLD and the failsafe stays sheathed.
    EXPECT_GT(on.controller_hold_cycles, 0L) << "seed " << seed;
    EXPECT_EQ(on.controller_fallback_cycles, 0L) << "seed " << seed;
    EXPECT_LE(on.controller_max_staleness, s.controller.fallback_deadline)
        << "seed " << seed;
    EXPECT_GT(on.controller_max_staleness, s.controller.staleness_budget)
        << "seed " << seed;
    // No controller fault is scripted, so in FRESH/HOLD the async controller
    // consumes the decision RNG exactly like the inline solve: the episode
    // outcomes must be identical, telemetry aside.
    const auto off = run_controller("controller-slow-solve-churn", seed, false);
    EXPECT_EQ(on.availability, off.availability) << "seed " << seed;
    EXPECT_EQ(on.service_availability, off.service_availability)
        << "seed " << seed;
    EXPECT_EQ(on.evictions, off.evictions) << "seed " << seed;
    EXPECT_EQ(on.additions, off.additions) << "seed " << seed;
    EXPECT_EQ(on.recoveries, off.recoveries) << "seed " << seed;
  }
}

TEST(ScenarioController, AsyncNoFaultMatchesInlineOnLegacyCatalog) {
  // Forcing the async controller onto a legacy (fault-free) scenario must
  // not change a single decision: scalars are equal and each async trace
  // line is the inline line plus the controller-telemetry suffix.
  const auto on = run_controller("golden-small", 2024, true);
  const auto off = run_controller("golden-small", 2024, false);
  EXPECT_EQ(on.availability, off.availability);
  EXPECT_EQ(on.service_availability, off.service_availability);
  EXPECT_EQ(on.avg_nodes, off.avg_nodes);
  EXPECT_EQ(on.recoveries, off.recoveries);
  EXPECT_EQ(on.evictions, off.evictions);
  EXPECT_EQ(on.additions, off.additions);
  EXPECT_EQ(on.compromises, off.compromises);
  EXPECT_EQ(on.final_view, off.final_view);
  EXPECT_GE(on.policy_epoch, 1u);
  EXPECT_EQ(off.policy_epoch, 0u);
  ASSERT_EQ(on.trace.size(), off.trace.size());
  for (std::size_t i = 0; i < on.trace.size(); ++i) {
    EXPECT_EQ(on.trace[i].rfind(off.trace[i], 0), 0u)
        << "async trace line " << i
        << " does not extend the inline line:\n  inline: " << off.trace[i]
        << "\n  async:  " << on.trace[i];
    EXPECT_NE(on.trace[i].find(" ep="), std::string::npos) << "line " << i;
  }
}

// ---------------------------------------------------------------------------
// Runner mechanics
// ---------------------------------------------------------------------------

TEST(ScenarioRunnerApi, RunManyMatchesIndividualRuns) {
  const auto runner = runner_for("golden-small");
  const std::vector<std::uint64_t> seeds{3, 9, 27};
  const auto many = runner.run_many(seeds, 4);
  ASSERT_EQ(many.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(emulation::identical(many[i], runner.run(seeds[i]))) << i;
  }
}

TEST(ScenarioRunnerApi, TraceRecordingCanBeDisabled) {
  const Scenario s = emulation::find_scenario("golden-small");
  Rng rng(5);
  const auto detector = emulation::fit_pooled_detector(30, 11, 80.0, rng);
  ScenarioRunner::Options options;
  options.record_trace = false;
  const ScenarioRunner quiet(s, detector, std::nullopt, options);
  const auto r = quiet.run(7);
  EXPECT_TRUE(r.trace.empty());
  EXPECT_GT(r.avg_nodes, 0.0);
}

TEST(ScenarioRunnerApi, StaticReplicationNeverAddsNodes) {
  const Scenario s = emulation::find_scenario("crash-wave");
  Rng rng(5);
  const auto detector = emulation::fit_pooled_detector(30, 11, 80.0, rng);
  const ScenarioRunner fixed(s, detector, std::nullopt);
  const auto r = fixed.run(7);
  EXPECT_EQ(r.additions, 0);
  EXPECT_GE(r.min_membership, scenario_floor(s));
}

// ---------------------------------------------------------------------------
// Golden-trace regression: the full decision/membership trace of the fixed
// golden-small episode is pinned against a committed file, so solver or
// estimator drift is caught by ctest rather than by eyeballing benches.
// Regenerate with TOLERANCE_REGEN_GOLDEN=1 after an intentional change.
// ---------------------------------------------------------------------------

TEST(ScenarioGolden, TraceMatchesCommittedFile) {
  const std::string path =
      std::string(TOLERANCE_GOLDEN_DIR) + "/scenario_golden_trace.txt";
  const auto result = runner_for("golden-small").run(2024);
  if (std::getenv("TOLERANCE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    for (const std::string& line : result.trace) out << line << '\n';
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing golden file " << path;
  std::vector<std::string> expected;
  for (std::string line; std::getline(in, line);) expected.push_back(line);
  ASSERT_EQ(result.trace.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(result.trace[i], expected[i]) << "trace line " << i + 1;
  }
}

// ---------------------------------------------------------------------------
// SystemController limits (the clamps the harness relies on)
// ---------------------------------------------------------------------------

TEST(SystemLimits, EvictionsAreClampedToFPerCycle) {
  core::SystemLimits limits;
  limits.f = 2;
  limits.min_nodes = 0;
  core::SystemController controller(std::nullopt, 10, 1, limits);
  // Six nodes, all silent: only f = 2 may go this cycle.
  const auto decision = controller.step(std::vector<double>(6, 1.0),
                                        std::vector<bool>(6, false));
  EXPECT_EQ(decision.evict.size(), 2u);
  EXPECT_EQ(decision.deferred_evictions, 4);
  EXPECT_EQ(decision.evict[0], 0);
  EXPECT_EQ(decision.evict[1], 1);
}

TEST(SystemLimits, MembershipFloorDefersEvictionsAndForcesAdd) {
  core::SystemLimits limits;
  limits.f = 1;
  limits.min_nodes = 3;
  // A CMDP solution that would never add on its own.
  solvers::CmdpSolution never_add;
  never_add.status = lp::LpStatus::Optimal;
  never_add.add_probability = std::vector<double>(11, 0.0);
  core::SystemController controller(never_add, 10, 1, limits);
  const auto decision = controller.step({0.1, 0.1, 1.0},
                                        {true, true, false});
  EXPECT_TRUE(decision.evict.empty()) << "eviction would break 2f+1";
  EXPECT_EQ(decision.deferred_evictions, 1);
  EXPECT_TRUE(decision.add_node) << "floor repair must not wait on the policy";
}

TEST(SystemLimits, DisabledLimitsPreserveLegacyBehaviour) {
  core::SystemController controller(std::nullopt, 10, 7);
  const auto decision = controller.step(std::vector<double>(4, 1.0),
                                        std::vector<bool>(4, false));
  EXPECT_EQ(decision.evict.size(), 4u);
  EXPECT_EQ(decision.deferred_evictions, 0);
}

TEST(SystemLimits, CmdpPolicyQueryClampsOutOfRangeStates) {
  solvers::CmdpSolution sol;
  sol.status = lp::LpStatus::Optimal;
  sol.add_probability = {1.0, 0.5, 0.0};
  EXPECT_EQ(sol.add_probability_at(-5), 1.0);
  EXPECT_EQ(sol.add_probability_at(0), 1.0);
  EXPECT_EQ(sol.add_probability_at(1), 0.5);
  EXPECT_EQ(sol.add_probability_at(99), 0.0);
  Rng rng(3);
  EXPECT_EQ(sol.act_clamped(-5, rng), 1);
  EXPECT_EQ(sol.act_clamped(99, rng), 0);
}

// ---------------------------------------------------------------------------
// Testbed scenario hooks
// ---------------------------------------------------------------------------

TEST(TestbedHooks, ForceCompromiseAndCrashChangeStateInstantly) {
  emulation::TestbedConfig config;
  config.initial_nodes = 3;
  emulation::Testbed testbed(config, 11);
  testbed.force_compromise(0, emulation::CompromisedBehavior::Silent);
  EXPECT_EQ(testbed.nodes()[0].state, pomdp::NodeState::Compromised);
  EXPECT_EQ(testbed.nodes()[0].behavior,
            emulation::CompromisedBehavior::Silent);
  EXPECT_EQ(testbed.failed_count(), 1);
  testbed.force_crash(0);
  EXPECT_EQ(testbed.nodes()[0].state, pomdp::NodeState::Crashed);
  // A crashed node cannot be compromised (it is dark).
  EXPECT_THROW(
      testbed.force_compromise(0, emulation::CompromisedBehavior::Participate),
      std::invalid_argument);
}

TEST(TestbedHooks, ExtraLoadIsStickyUntilCleared) {
  emulation::TestbedConfig config;
  config.initial_nodes = 3;
  emulation::Testbed testbed(config, 11);
  EXPECT_EQ(testbed.extra_load(), 0);
  testbed.set_extra_load(200);
  EXPECT_EQ(testbed.extra_load(), 200);
  testbed.step();
  EXPECT_EQ(testbed.extra_load(), 200);
  testbed.set_extra_load(0);
  EXPECT_EQ(testbed.extra_load(), 0);
  EXPECT_THROW(testbed.set_extra_load(-1), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Consensus membership invariants under churn
// ---------------------------------------------------------------------------

consensus::MinBftConfig quiet_config() {
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  cfg.checkpoint_period = 100;
  cfg.view_change_timeout = 1000.0;  // keep views stable for these tests
  cfg.request_retry_timeout = 1.0;
  return cfg;
}

net::LinkConfig lossless() {
  net::LinkConfig link;
  link.loss = 0.0;
  return link;
}

TEST(MembershipInvariants, ClusterExposesMembershipAndQuorumFloor) {
  consensus::MinBftCluster cluster(3, quiet_config(), 77, lossless());
  EXPECT_EQ(cluster.membership(), (std::vector<consensus::ReplicaId>{0, 1, 2}));
  EXPECT_EQ(cluster.quorum_floor(), 3);
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "op").has_value());
}

TEST(MembershipInvariants, EvictedReplicasUsigCounterIsNeverAcceptedAgain) {
  consensus::MinBftCluster cluster(3, quiet_config(), 99, lossless());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "op1").has_value());

  // Evict replica 2 through consensus but keep the object alive and wired
  // to the network: an attacker-controlled machine that was excluded from
  // the protocol but not powered off.  Its USIG still certifies fresh,
  // strictly-monotonic counters.
  auto zombie = cluster.evict_and_detach(2);
  ASSERT_NE(zombie, nullptr);
  EXPECT_EQ(cluster.membership(),
            (std::vector<consensus::ReplicaId>{0, 1}));

  // Silence replica 1 and wiretap its host: every PREPARE the leader sends
  // it is forwarded to the zombie, which will answer with a fresh-counter
  // COMMIT.  The leader then holds its own commit plus the zombie's — a
  // quorum of f+1 = 2 if evicted counters were accepted.
  consensus::MinBftReplica* zombie_raw = zombie.get();
  cluster.network().register_host(
      1, [zombie_raw](net::NodeId from, const consensus::MinBftMsg& m) {
        if (std::holds_alternative<consensus::Prepare>(m)) {
          zombie_raw->on_message(from, m);
        }
      });

  const std::size_t executed_before = cluster.replica(0).executed_count();
  const std::uint64_t zombie_counter_before = zombie_raw->usig_counter();
  const auto result = cluster.submit_and_run(client, "op2", 40000);
  EXPECT_FALSE(result.has_value())
      << "op2 executed — an evicted replica's USIG counter was accepted";
  EXPECT_EQ(cluster.replica(0).executed_count(), executed_before);
  EXPECT_GT(zombie_raw->usig_counter(), zombie_counter_before)
      << "the zombie never voted — the wiretap did not fire";
}

TEST(MembershipInvariants, RecoveredReplicaRegainsVotingRightsViaFreshEpoch) {
  consensus::MinBftCluster cluster(3, quiet_config(), 123, lossless());
  auto& client = cluster.add_client();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(
        cluster.submit_and_run(client, "op" + std::to_string(i)).has_value());
  }
  // Recover replica 1: fresh container, USIG counter restarts at zero under
  // a bumped epoch.  Then crash replica 2, so the next request can only
  // reach quorum if the recovered replica's votes are accepted again.
  cluster.recover_replica(1);
  EXPECT_EQ(cluster.replica(1).executed_count(), 3u)
      << "state transfer should have caught the recovered replica up";
  cluster.crash_replica(2);
  const auto result = cluster.submit_and_run(client, "after-recovery", 60000);
  ASSERT_TRUE(result.has_value())
      << "recovered replica's restarted counters were rejected — the epoch "
         "bump is not working";
  EXPECT_EQ(cluster.replica(1).service().log().back(), "after-recovery");
}

TEST(MembershipInvariants, ClientCancelAbandonsPendingProbes) {
  consensus::MinBftCluster cluster(3, quiet_config(), 55, lossless());
  for (const auto id : cluster.replica_ids()) {
    cluster.replica(id).set_mode(consensus::ByzantineMode::Silent);
  }
  auto& client = cluster.add_client();
  bool completed = false;
  const auto rid = client.submit(
      "probe", [&completed](std::uint64_t, const std::string&, double) {
        completed = true;
      });
  cluster.network().run(20000);
  EXPECT_FALSE(completed);
  EXPECT_EQ(client.pending_count(), 1u);
  client.cancel(rid);
  EXPECT_EQ(client.pending_count(), 0u);
  cluster.network().run(20000);
  EXPECT_FALSE(completed) << "a cancelled probe must never complete";
}

TEST(MembershipInvariants, TryJoinAndTryEvictSucceedWithHealthyQuorum) {
  consensus::MinBftCluster cluster(3, quiet_config(), 31, lossless());
  const auto joined = cluster.try_join_new_replica();
  ASSERT_TRUE(joined.has_value());
  EXPECT_EQ(cluster.membership().size(), 4u);
  EXPECT_TRUE(cluster.has_replica(*joined));
  ASSERT_TRUE(cluster.try_evict_replica(*joined));
  EXPECT_EQ(cluster.membership().size(), 3u);
  EXPECT_FALSE(cluster.has_replica(*joined));
}

TEST(MembershipInvariants, TryOpsFailGracefullyWithoutQuorum) {
  consensus::MinBftCluster cluster(3, quiet_config(), 13, lossless());
  // Silence 2 > f replicas: nothing can be ordered.
  cluster.replica(1).set_mode(consensus::ByzantineMode::Silent);
  cluster.replica(2).set_mode(consensus::ByzantineMode::Silent);
  EXPECT_FALSE(cluster.try_evict_replica(2, 30000));
  EXPECT_EQ(cluster.membership().size(), 3u);
  EXPECT_TRUE(cluster.has_replica(2));
  EXPECT_FALSE(cluster.try_join_new_replica(30000).has_value());
  EXPECT_EQ(cluster.membership().size(), 3u)
      << "failed join must roll the speculative replica back";
}

}  // namespace
