#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tolerance/net/sim_network.hpp"

namespace tolerance::net {
namespace {

using TestNet = SimNetwork<std::string>;

LinkConfig lossless() {
  LinkConfig cfg;
  cfg.base_delay = 1e-3;
  cfg.jitter = 0.0;
  cfg.loss = 0.0;
  return cfg;
}

TEST(SimNetwork, DeliversMessagesWithDelay) {
  TestNet net(1, lossless());
  std::vector<std::string> received;
  double delivery_time = -1.0;
  net.register_host(2, [&](NodeId from, const std::string& m) {
    EXPECT_EQ(from, 1u);
    received.push_back(m);
    delivery_time = net.now();
  });
  net.send(1, 2, "hello");
  net.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_NEAR(delivery_time, 1e-3, 1e-9);
}

TEST(SimNetwork, LossDropsExpectedFraction) {
  LinkConfig lossy = lossless();
  lossy.loss = 0.3;
  TestNet net(7, lossy);
  int received = 0;
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  const int sent = 10000;
  for (int i = 0; i < sent; ++i) net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(received / static_cast<double>(sent), 0.7, 0.03);
  EXPECT_EQ(net.dropped_messages() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sent));
}

TEST(SimNetwork, PartitionBlocksTraffic) {
  TestNet net(1, lossless());
  int received = 0;
  net.register_host(1, [&](NodeId, const std::string&) { ++received; });
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  net.register_host(3, [&](NodeId, const std::string&) { ++received; });
  net.partition({{1, 2}, {3}});
  net.send(1, 3, "blocked");
  net.send(1, 2, "allowed");
  net.run();
  EXPECT_EQ(received, 1);
  net.heal_partition();
  net.send(1, 3, "now allowed");
  net.run();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, TimersFireInOrderAndCancel) {
  TestNet net(1, lossless());
  std::vector<int> fired;
  net.schedule(0.3, [&]() { fired.push_back(3); });
  net.schedule(0.1, [&]() { fired.push_back(1); });
  const auto cancelled = net.schedule(0.2, [&]() { fired.push_back(2); });
  net.cancel(cancelled);
  net.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 3);
  EXPECT_NEAR(net.now(), 0.3, 1e-9);
}

TEST(SimNetwork, RunUntilAdvancesClockNoFurther) {
  TestNet net(1, lossless());
  int fired = 0;
  net.schedule(1.0, [&]() { ++fired; });
  net.schedule(5.0, [&]() { ++fired; });
  net.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(net.now(), 2.0, 1e-9);
  net.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimNetwork, CpuBusyDelaysProcessing) {
  TestNet net(1, lossless());
  double delivered_at = -1.0;
  net.register_host(2, [&](NodeId, const std::string&) {
    delivered_at = net.now();
  });
  // Node 2 is busy for 10 ms; a message arriving at 1 ms is served at 10 ms.
  net.consume_cpu(2, 0.010);
  net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(delivered_at, 0.010, 1e-9);
}

TEST(SimNetwork, SenderBusyDelaysDeparture) {
  TestNet net(1, lossless());
  double delivered_at = -1.0;
  net.register_host(2, [&](NodeId, const std::string&) {
    delivered_at = net.now();
  });
  net.consume_cpu(1, 0.005);  // e.g. signing cost before the send
  net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(delivered_at, 0.005 + 1e-3, 1e-9);
}

TEST(SimNetwork, UnregisteredHostDropsSilently) {
  TestNet net(1, lossless());
  net.send(1, 99, "void");
  net.run();  // must not crash
  EXPECT_EQ(net.pending(), 0u);
}

TEST(SimNetwork, BroadcastSkipsSelf) {
  TestNet net(1, lossless());
  int self = 0, others = 0;
  net.register_host(1, [&](NodeId, const std::string&) { ++self; });
  net.register_host(2, [&](NodeId, const std::string&) { ++others; });
  net.register_host(3, [&](NodeId, const std::string&) { ++others; });
  net.broadcast(1, {1, 2, 3}, "hi");
  net.run();
  EXPECT_EQ(self, 0);
  EXPECT_EQ(others, 2);
}

TEST(SimNetwork, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    LinkConfig cfg;
    cfg.base_delay = 1e-3;
    cfg.jitter = 1e-3;
    cfg.loss = 0.1;
    TestNet net(seed, cfg);
    std::vector<double> times;
    net.register_host(2, [&](NodeId, const std::string&) {
      times.push_back(net.now());
    });
    for (int i = 0; i < 100; ++i) net.send(1, 2, "m");
    net.run();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace tolerance::net
