#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tolerance/net/sim_network.hpp"

namespace tolerance::net {
namespace {

using TestNet = SimNetwork<std::string>;

LinkConfig lossless() {
  LinkConfig cfg;
  cfg.base_delay = 1e-3;
  cfg.jitter = 0.0;
  cfg.loss = 0.0;
  return cfg;
}

TEST(SimNetwork, DeliversMessagesWithDelay) {
  TestNet net(1, lossless());
  std::vector<std::string> received;
  double delivery_time = -1.0;
  net.register_host(2, [&](NodeId from, const std::string& m) {
    EXPECT_EQ(from, 1u);
    received.push_back(m);
    delivery_time = net.now();
  });
  net.send(1, 2, "hello");
  net.run();
  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0], "hello");
  EXPECT_NEAR(delivery_time, 1e-3, 1e-9);
}

TEST(SimNetwork, LossDropsExpectedFraction) {
  LinkConfig lossy = lossless();
  lossy.loss = 0.3;
  TestNet net(7, lossy);
  int received = 0;
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  const int sent = 10000;
  for (int i = 0; i < sent; ++i) net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(received / static_cast<double>(sent), 0.7, 0.03);
  EXPECT_EQ(net.dropped_messages() + static_cast<std::uint64_t>(received),
            static_cast<std::uint64_t>(sent));
}

TEST(SimNetwork, PartitionBlocksTraffic) {
  TestNet net(1, lossless());
  int received = 0;
  net.register_host(1, [&](NodeId, const std::string&) { ++received; });
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  net.register_host(3, [&](NodeId, const std::string&) { ++received; });
  net.partition({{1, 2}, {3}});
  net.send(1, 3, "blocked");
  net.send(1, 2, "allowed");
  net.run();
  EXPECT_EQ(received, 1);
  net.heal_partition();
  net.send(1, 3, "now allowed");
  net.run();
  EXPECT_EQ(received, 2);
}

TEST(SimNetwork, TimersFireInOrderAndCancel) {
  TestNet net(1, lossless());
  std::vector<int> fired;
  net.schedule(0.3, [&]() { fired.push_back(3); });
  net.schedule(0.1, [&]() { fired.push_back(1); });
  const auto cancelled = net.schedule(0.2, [&]() { fired.push_back(2); });
  net.cancel(cancelled);
  net.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_EQ(fired[0], 1);
  EXPECT_EQ(fired[1], 3);
  EXPECT_NEAR(net.now(), 0.3, 1e-9);
}

TEST(SimNetwork, RunUntilAdvancesClockNoFurther) {
  TestNet net(1, lossless());
  int fired = 0;
  net.schedule(1.0, [&]() { ++fired; });
  net.schedule(5.0, [&]() { ++fired; });
  net.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_NEAR(net.now(), 2.0, 1e-9);
  net.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(SimNetwork, CpuBusyDelaysProcessing) {
  TestNet net(1, lossless());
  double delivered_at = -1.0;
  net.register_host(2, [&](NodeId, const std::string&) {
    delivered_at = net.now();
  });
  // Node 2 is busy for 10 ms; a message arriving at 1 ms is served at 10 ms.
  net.consume_cpu(2, 0.010);
  net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(delivered_at, 0.010, 1e-9);
}

TEST(SimNetwork, SenderBusyDelaysDeparture) {
  TestNet net(1, lossless());
  double delivered_at = -1.0;
  net.register_host(2, [&](NodeId, const std::string&) {
    delivered_at = net.now();
  });
  net.consume_cpu(1, 0.005);  // e.g. signing cost before the send
  net.send(1, 2, "m");
  net.run();
  EXPECT_NEAR(delivered_at, 0.005 + 1e-3, 1e-9);
}

TEST(SimNetwork, UnregisteredHostDropsSilently) {
  TestNet net(1, lossless());
  net.send(1, 99, "void");
  net.run();  // must not crash
  EXPECT_EQ(net.pending(), 0u);
}

TEST(SimNetwork, BroadcastSkipsSelf) {
  TestNet net(1, lossless());
  int self = 0, others = 0;
  net.register_host(1, [&](NodeId, const std::string&) { ++self; });
  net.register_host(2, [&](NodeId, const std::string&) { ++others; });
  net.register_host(3, [&](NodeId, const std::string&) { ++others; });
  net.broadcast(1, {1, 2, 3}, "hi");
  net.run();
  EXPECT_EQ(self, 0);
  EXPECT_EQ(others, 2);
}

// Regression: a delivery deferred behind the receiver's busy window must
// re-check the window when the deferred event fires — the receiver may have
// consumed more CPU in between (another handler, a timer), and delivering
// mid-busy undercounts the crypto serialization the model exists for.
TEST(SimNetwork, DeferredDeliveryRechecksBusyWindow) {
  TestNet net(1, lossless());
  double delivered_at = -1.0;
  net.register_host(2, [&](NodeId, const std::string&) {
    delivered_at = net.now();
  });
  net.consume_cpu(2, 0.010);  // busy until 10 ms
  net.send(1, 2, "m");        // arrives at 1 ms, deferred to 10 ms
  // At 5 ms the receiver picks up MORE work: busy extends to 30 ms.  The
  // deferred delivery must wait for the extended window, not the stale one.
  net.schedule(0.005, [&]() { net.consume_cpu(2, 0.020); });
  net.run();
  EXPECT_NEAR(delivered_at, 0.030, 1e-9);
}

// Regression: deferral moves the receiver's whole inbound queue, never an
// individual message — per-sender arrival order is preserved even when the
// busy window shifts between deferrals (a same-sender inversion permanently
// stalls counter-freshness protocols like MinBFT).
TEST(SimNetwork, DeferredDeliveriesKeepArrivalOrder) {
  TestNet net(1, lossless());
  std::vector<std::string> received;
  net.register_host(2, [&](NodeId, const std::string& m) {
    received.push_back(m);
    net.consume_cpu(2, 0.004);  // each delivery extends the busy window
  });
  net.consume_cpu(2, 0.010);
  net.send(1, 2, "a");  // arrives 1 ms
  net.schedule(0.002, [&]() { net.send(1, 2, "b"); });  // arrives 3 ms
  net.schedule(0.004, [&]() { net.send(1, 2, "c"); });  // arrives 5 ms
  net.run();
  EXPECT_EQ(received, (std::vector<std::string>{"a", "b", "c"}));
}

// Regression: cancelling a timer id that never existed (or already fired)
// must be a no-op.  Pre-fix, the id was inserted into the cancelled set
// unconditionally — unbounded growth, and a *future* timer that happened to
// be assigned the same id was silently swallowed.
TEST(SimNetwork, CancelOfUnissuedIdDoesNotPoisonFutureTimer) {
  TestNet net(1, lossless());
  net.cancel(3);  // ids are issued from 1; 3 does not exist yet
  std::vector<int> fired;
  net.schedule(0.1, [&]() { fired.push_back(1); });
  net.schedule(0.2, [&]() { fired.push_back(2); });
  net.schedule(0.3, [&]() { fired.push_back(3); });  // gets id 3
  net.run();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(net.cancelled_pending(), 0u);
}

TEST(SimNetwork, CancelOfFiredTimerLeavesNoResidue) {
  TestNet net(1, lossless());
  int fired = 0;
  const auto id = net.schedule(0.1, [&]() { ++fired; });
  net.run();
  EXPECT_EQ(fired, 1);
  net.cancel(id);  // already fired: must not grow the cancelled set
  net.cancel(id);
  EXPECT_EQ(net.cancelled_pending(), 0u);
  EXPECT_EQ(net.live_timer_count(), 0u);
}

// Regression: a repartition wholesale-replaces the previous grouping.  A
// node absent from the new groups must not stay blocked against pairs from
// the old one (pre-fix, stale blocked pairs accumulated forever).
TEST(SimNetwork, RepartitionClearsStaleBlockedPairs) {
  TestNet net(1, lossless());
  int to3 = 0, between12 = 0;
  net.register_host(1, [&](NodeId, const std::string&) { ++between12; });
  net.register_host(2, [&](NodeId, const std::string&) { ++between12; });
  net.register_host(3, [&](NodeId, const std::string&) { ++to3; });
  net.partition({{1, 2}, {3}});  // 3 isolated
  net.partition({{1}, {2}});     // new grouping: 3 not mentioned
  net.send(1, 3, "a");           // must flow: old 1|3 block is stale
  net.send(2, 3, "b");           // must flow: old 2|3 block is stale
  net.send(1, 2, "c");           // blocked by the new grouping
  net.run();
  EXPECT_EQ(to3, 2);
  EXPECT_EQ(between12, 0);
}

TEST(SimNetwork, ManualBlocksSurviveRepartition) {
  TestNet net(1, lossless());
  int received = 0;
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  net.set_blocked(1, 2, true);
  net.partition({{1, 2}, {3}});
  net.heal_partition();
  net.send(1, 2, "still blocked");
  net.run();
  EXPECT_EQ(received, 0);
  net.set_blocked(1, 2, false);
  net.send(1, 2, "open");
  net.run();
  EXPECT_EQ(received, 1);
}

TEST(SimNetwork, ReorderKnobDelaysSelectedMessages) {
  LinkConfig cfg = lossless();
  cfg.reorder = 0.5;
  cfg.reorder_delay = 0.05;
  TestNet net(11, cfg);
  int received = 0;
  net.register_host(2, [&](NodeId, const std::string&) { ++received; });
  for (int i = 0; i < 200; ++i) net.send(1, 2, "m");
  net.run();
  EXPECT_EQ(received, 200);  // reordering delays, never drops
  EXPECT_NEAR(net.reordered_messages() / 200.0, 0.5, 0.1);
}

TEST(SimNetwork, DeterministicGivenSeed) {
  auto run_once = [](std::uint64_t seed) {
    LinkConfig cfg;
    cfg.base_delay = 1e-3;
    cfg.jitter = 1e-3;
    cfg.loss = 0.1;
    TestNet net(seed, cfg);
    std::vector<double> times;
    net.register_host(2, [&](NodeId, const std::string&) {
      times.push_back(net.now());
    });
    for (int i = 0; i < 100; ++i) net.send(1, 2, "m");
    net.run();
    return times;
  };
  EXPECT_EQ(run_once(5), run_once(5));
  EXPECT_NE(run_once(5), run_once(6));
}

}  // namespace
}  // namespace tolerance::net
