#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/lp/simplex.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::lp {
namespace {

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x0 + x1 s.t. x0 + 2 x1 <= 4, x0 <= 3  => x = (3, 0.5), obj = 3.5.
  LinearProgram lp(2);
  lp.objective = {-1.0, -1.0};
  lp.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::LessEq, 4.0);
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 3.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -3.5, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.5, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x0 + 2 x1 s.t. x0 + x1 = 1  => x = (1, 0), obj = 1.
  LinearProgram lp(2);
  lp.objective = {1.0, 2.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2 x0 + 3 x1 s.t. x0 + x1 >= 4, x0 - x1 <= 2.
  // Optimum at x = (4, 0)? check: x0 - x1 = 4 > 2 violates. So x0 = 3, x1 = 1,
  // obj = 9.
  LinearProgram lp(2);
  lp.objective = {2.0, 3.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 4.0);
  lp.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::LessEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.objective = {1.0};
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::GreaterEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp(1);
  lp.objective = {-1.0};  // maximize x, no upper bound
  lp.add_constraint({{0, 1.0}}, Relation::GreaterEq, 0.0);
  const auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x0 s.t. -x0 <= -2  (i.e. x0 >= 2).
  LinearProgram lp(1);
  lp.objective = {1.0};
  lp.add_constraint({{0, -1.0}}, Relation::LessEq, -2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateLpStillTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LinearProgram lp(2);
  lp.objective = {-1.0, -1.0};
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 0.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{1, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::LessEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, ProbabilitySimplexProjection) {
  // min c^T x over the probability simplex picks the smallest coefficient.
  LinearProgram lp(4);
  lp.objective = {3.0, 1.0, 2.0, 5.0};
  std::vector<std::pair<int, double>> all;
  for (int j = 0; j < 4; ++j) all.push_back({j, 1.0});
  lp.add_constraint(all, Relation::Eq, 1.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

TEST(Simplex, RandomLpsSatisfyConstraints) {
  // Property test: on random feasible-by-construction LPs the returned point
  // satisfies every constraint.
  tolerance::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + rng.uniform_int(4);
    const int m = 2 + rng.uniform_int(4);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(-1.0, 1.0);
    // Constraints a^T x <= b with a >= 0 and b > 0 keep the origin feasible
    // and the feasible set bounded via a final sum constraint.
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(0.0, 1.0)});
      lp.add_constraint(std::move(terms), Relation::LessEq,
                        rng.uniform(0.5, 2.0));
    }
    std::vector<std::pair<int, double>> sum_terms;
    for (int j = 0; j < n; ++j) sum_terms.push_back({j, 1.0});
    lp.add_constraint(std::move(sum_terms), Relation::LessEq, 10.0);

    const auto sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
    for (const auto& con : lp.constraints) {
      double lhs = 0.0;
      for (const auto& [v, c] : con.terms) lhs += c * sol.x[v];
      EXPECT_LE(lhs, con.rhs + 1e-7);
    }
    for (double xv : sol.x) EXPECT_GE(xv, -1e-9);
  }
}

// ---------------------------------------------------------------------------
// Differential suite: sparse revised simplex vs dense tableau
// ---------------------------------------------------------------------------

SimplexSolver dense_solver() {
  SimplexSolver::Options o;
  o.dense_fallback = true;
  return SimplexSolver(o);
}

/// Solve with both cores and cross-check: identical status, and on Optimal
/// identical objectives (1e-8), a feasible point, and a warm re-solve from
/// the revised core's own basis reproducing the optimum.
void differential_check(const LinearProgram& lp, const char* tag, int trial) {
  const auto revised = SimplexSolver().solve(lp);
  const auto dense = dense_solver().solve(lp);
  ASSERT_EQ(revised.status, dense.status) << tag << " trial " << trial;
  if (revised.status != LpStatus::Optimal) return;
  const double scale = 1.0 + std::fabs(dense.objective);
  EXPECT_NEAR(revised.objective, dense.objective, 1e-8 * scale)
      << tag << " trial " << trial;
  for (const auto& con : lp.constraints) {
    double lhs = 0.0;
    for (const auto& [v, c] : con.terms) {
      lhs += c * revised.x[static_cast<std::size_t>(v)];
    }
    switch (con.relation) {
      case Relation::LessEq: EXPECT_LE(lhs, con.rhs + 1e-6) << tag; break;
      case Relation::GreaterEq: EXPECT_GE(lhs, con.rhs - 1e-6) << tag; break;
      case Relation::Eq: EXPECT_NEAR(lhs, con.rhs, 1e-6) << tag; break;
    }
  }
  for (double xv : revised.x) EXPECT_GE(xv, -1e-9) << tag;
  // Warm start from the optimal basis must reproduce the optimum (and skip
  // phase 1: observed as a handful of pivots at most).
  ASSERT_FALSE(revised.basis.empty()) << tag;
  const auto warm = SimplexSolver().solve(lp, revised.basis);
  ASSERT_EQ(warm.status, LpStatus::Optimal) << tag << " trial " << trial;
  EXPECT_NEAR(warm.objective, dense.objective, 1e-8 * scale) << tag;
  EXPECT_NE(warm.warm_start, WarmStart::None) << tag;
  EXPECT_LE(warm.iterations, 3) << tag << " trial " << trial;
}

TEST(SimplexDifferential, RandomFeasibleBoundedLps) {
  tolerance::Rng rng(7101);
  for (int trial = 0; trial < 80; ++trial) {
    const int n = 2 + rng.uniform_int(6);
    const int m = 1 + rng.uniform_int(6);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(-2.0, 2.0);
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) {
        if (rng.bernoulli(0.7)) terms.push_back({j, rng.uniform(0.0, 1.0)});
      }
      if (terms.empty()) terms.push_back({rng.uniform_int(n), 1.0});
      lp.add_constraint(std::move(terms), Relation::LessEq,
                        rng.uniform(0.2, 3.0));
    }
    // Bound the feasible set so negative objectives stay bounded.
    std::vector<std::pair<int, double>> box;
    for (int j = 0; j < n; ++j) box.push_back({j, 1.0});
    lp.add_constraint(std::move(box), Relation::LessEq, 10.0);
    differential_check(lp, "feasible", trial);
  }
}

TEST(SimplexDifferential, RandomEqualityFlowLps) {
  // Equality-heavy instances in the shape of the occupancy LP: probability
  // mass balance plus coupling rows, including rhs-0 rows (the degenerate
  // family that historically cycles).
  tolerance::Rng rng(7102);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 4 + rng.uniform_int(6);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(0.0, 3.0);
    std::vector<std::pair<int, double>> norm;
    for (int j = 0; j < n; ++j) norm.push_back({j, 1.0});
    lp.add_constraint(std::move(norm), Relation::Eq, 1.0);
    const int pairs = 1 + rng.uniform_int(3);
    for (int k = 0; k < pairs; ++k) {
      const int a = rng.uniform_int(n);
      int b = rng.uniform_int(n);
      if (b == a) b = (b + 1) % n;
      lp.add_constraint({{a, 1.0}, {b, -rng.uniform(0.5, 2.0)}}, Relation::Eq,
                        0.0);
    }
    differential_check(lp, "equality-flow", trial);
  }
}

TEST(SimplexDifferential, RandomInfeasibleLps) {
  tolerance::Rng rng(7103);
  for (int trial = 0; trial < 40; ++trial) {
    const int n = 1 + rng.uniform_int(5);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(-1.0, 1.0);
    // Macroscopically contradictory pair on a random variable, plus noise.
    const int v = rng.uniform_int(n);
    const double c = rng.uniform(0.5, 2.0);
    lp.add_constraint({{v, 1.0}}, Relation::LessEq, c);
    lp.add_constraint({{v, 1.0}}, Relation::GreaterEq, c + 1.0 + rng.uniform());
    const int extra = rng.uniform_int(3);
    for (int i = 0; i < extra; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(0.0, 1.0)});
      lp.add_constraint(std::move(terms), Relation::LessEq,
                        rng.uniform(1.0, 5.0));
    }
    differential_check(lp, "infeasible", trial);
  }
}

TEST(SimplexDifferential, RandomUnboundedLps) {
  tolerance::Rng rng(7104);
  for (int trial = 0; trial < 30; ++trial) {
    const int n = 2 + rng.uniform_int(4);
    LinearProgram lp(n);
    // Variable `free` has negative cost and appears in no <= row: the
    // objective is unbounded below.
    const int free = rng.uniform_int(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(0.1, 1.0);
    lp.objective[free] = -rng.uniform(0.1, 1.0);
    for (int j = 0; j < n; ++j) {
      if (j == free) continue;
      lp.add_constraint({{j, 1.0}}, Relation::LessEq, rng.uniform(0.5, 2.0));
    }
    lp.add_constraint({{free, 1.0}}, Relation::GreaterEq, rng.uniform(0.0, 1.0));
    differential_check(lp, "unbounded", trial);
  }
}

TEST(SimplexWarmStart, PerturbedRhsReoptimizesViaDualSimplex) {
  // Shrinking a bound after the optimum leaned on it forces a genuine
  // dual-simplex repair (the old basis stays dual feasible, loses primal
  // feasibility); the reoptimized solution must match a cold solve.
  tolerance::Rng rng(7105);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 2 + rng.uniform_int(4);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(-2.0, -0.1);
    for (int j = 0; j < n; ++j) {
      lp.add_constraint({{j, 1.0}}, Relation::LessEq, rng.uniform(1.0, 2.0));
    }
    std::vector<std::pair<int, double>> sum;
    for (int j = 0; j < n; ++j) sum.push_back({j, 1.0});
    lp.add_constraint(std::move(sum), Relation::LessEq, rng.uniform(1.0, 3.0));
    const auto first = SimplexSolver().solve(lp);
    ASSERT_EQ(first.status, LpStatus::Optimal);
    // Tighten every bound: the old optimal vertex becomes infeasible.
    LinearProgram tightened = lp;
    for (auto& con : tightened.constraints) con.rhs *= 0.8;
    const auto warm = SimplexSolver().solve(tightened, first.basis);
    const auto cold = dense_solver().solve(tightened);
    ASSERT_EQ(warm.status, cold.status) << "trial " << trial;
    ASSERT_EQ(warm.status, LpStatus::Optimal);
    EXPECT_NEAR(warm.objective, cold.objective,
                1e-8 * (1.0 + std::fabs(cold.objective)))
        << "trial " << trial;
  }
}

TEST(SimplexWarmStart, ArtificialCarryingMassRejectedWhenRowBecomesBinding) {
  // Regression: a basis exported from an LP with a redundant row keeps that
  // row's artificial basic (at zero).  Warm-starting a same-shaped LP where
  // the row now binds must NOT trust the basis — the artificial would
  // silently absorb the constraint violation and the "optimum" would be
  // infeasible.
  LinearProgram duplicated(2);
  duplicated.objective = {1.0, 0.0};
  duplicated.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  duplicated.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  const auto first = SimplexSolver().solve(duplicated);
  ASSERT_EQ(first.status, LpStatus::Optimal);
  EXPECT_NEAR(first.objective, 0.0, 1e-9);

  LinearProgram binding(2);
  binding.objective = {1.0, 0.0};
  binding.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  binding.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::Eq, 0.5);
  const auto warm = SimplexSolver().solve(binding, first.basis);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_NEAR(warm.objective, 0.75, 1e-8);
  EXPECT_NEAR(warm.x[0], 0.75, 1e-8);
  EXPECT_NEAR(warm.x[1], 0.25, 1e-8);
}

TEST(SimplexWarmStart, GarbageBasisDegradesToColdSolve) {
  LinearProgram lp(2);
  lp.objective = {1.0, 2.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  SimplexBasis garbage;
  garbage.basic = {99};  // out of range
  const auto sol = SimplexSolver().solve(lp, garbage);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_EQ(sol.warm_start, WarmStart::Rejected);
  SimplexBasis duplicate;
  duplicate.basic = {0};
  duplicate.basic.push_back(0);  // duplicated column, wrong size too
  const auto sol2 = SimplexSolver().solve(lp, duplicate);
  ASSERT_EQ(sol2.status, LpStatus::Optimal);
  EXPECT_EQ(sol2.warm_start, WarmStart::Rejected);
}

TEST(SimplexWarmStart, DenseBasisExportSeedsRevisedCore) {
  // The dense core exports the shape-stable encoding: its basis must be
  // directly consumable as a revised-core warm start.
  LinearProgram lp(3);
  lp.objective = {2.0, 3.0, 1.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 4.0);
  lp.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::LessEq, 2.0);
  lp.add_constraint({{2, 1.0}, {0, 0.5}}, Relation::Eq, 3.0);
  const auto dense = dense_solver().solve(lp);
  ASSERT_EQ(dense.status, LpStatus::Optimal);
  ASSERT_FALSE(dense.basis.empty());
  const auto warm = SimplexSolver().solve(lp, dense.basis);
  ASSERT_EQ(warm.status, LpStatus::Optimal);
  EXPECT_NEAR(warm.objective, dense.objective, 1e-9);
  EXPECT_NE(warm.warm_start, WarmStart::Rejected);
}

TEST(SimplexOptions, BlandStallThresholdIsConfigurable) {
  // A tiny threshold forces Bland's rule almost immediately; the degenerate
  // LP must still solve to the same optimum.
  SimplexSolver::Options o;
  o.bland_stall_threshold = 1;
  LinearProgram lp(2);
  lp.objective = {-1.0, -1.0};
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 0.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{1, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::LessEq, 2.0);
  for (bool dense : {false, true}) {
    o.dense_fallback = dense;
    const auto sol = SimplexSolver(o).solve(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "dense=" << dense;
    EXPECT_NEAR(sol.objective, -2.0, 1e-9) << "dense=" << dense;
  }
}

TEST(Simplex, MediumSizedStructuredLp) {
  // Transportation-like LP with equality structure, 40 vars.
  const int k = 20;
  LinearProgram lp(2 * k);
  for (int j = 0; j < 2 * k; ++j) lp.objective[j] = (j % 3) + 1.0;
  std::vector<std::pair<int, double>> norm;
  for (int j = 0; j < 2 * k; ++j) norm.push_back({j, 1.0});
  lp.add_constraint(norm, Relation::Eq, 1.0);
  for (int i = 0; i < k; ++i) {
    lp.add_constraint({{2 * i, 1.0}, {2 * i + 1, -1.0}}, Relation::Eq, 0.0);
  }
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  double total = 0.0;
  for (double xv : sol.x) total += xv;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

}  // namespace
}  // namespace tolerance::lp
