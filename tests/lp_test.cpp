#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/lp/simplex.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::lp {
namespace {

TEST(Simplex, SimpleMaximizationAsMinimization) {
  // max x0 + x1 s.t. x0 + 2 x1 <= 4, x0 <= 3  => x = (3, 0.5), obj = 3.5.
  LinearProgram lp(2);
  lp.objective = {-1.0, -1.0};
  lp.add_constraint({{0, 1.0}, {1, 2.0}}, Relation::LessEq, 4.0);
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 3.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -3.5, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 0.5, 1e-9);
}

TEST(Simplex, EqualityConstraints) {
  // min x0 + 2 x1 s.t. x0 + x1 = 1  => x = (1, 0), obj = 1.
  LinearProgram lp(2);
  lp.objective = {1.0, 2.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::Eq, 1.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 1.0, 1e-9);
}

TEST(Simplex, GreaterEqualConstraints) {
  // min 2 x0 + 3 x1 s.t. x0 + x1 >= 4, x0 - x1 <= 2.
  // Optimum at x = (4, 0)? check: x0 - x1 = 4 > 2 violates. So x0 = 3, x1 = 1,
  // obj = 9.
  LinearProgram lp(2);
  lp.objective = {2.0, 3.0};
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::GreaterEq, 4.0);
  lp.add_constraint({{0, 1.0}, {1, -1.0}}, Relation::LessEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 9.0, 1e-9);
  EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  LinearProgram lp(1);
  lp.objective = {1.0};
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}}, Relation::GreaterEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded) {
  LinearProgram lp(1);
  lp.objective = {-1.0};  // maximize x, no upper bound
  lp.add_constraint({{0, 1.0}}, Relation::GreaterEq, 0.0);
  const auto sol = SimplexSolver().solve(lp);
  EXPECT_EQ(sol.status, LpStatus::Unbounded);
}

TEST(Simplex, NegativeRhsNormalization) {
  // min x0 s.t. -x0 <= -2  (i.e. x0 >= 2).
  LinearProgram lp(1);
  lp.objective = {1.0};
  lp.add_constraint({{0, -1.0}}, Relation::LessEq, -2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-9);
}

TEST(Simplex, DegenerateLpStillTerminates) {
  // Classic degenerate LP (multiple constraints active at the optimum).
  LinearProgram lp(2);
  lp.objective = {-1.0, -1.0};
  lp.add_constraint({{0, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 0.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{1, 1.0}}, Relation::LessEq, 1.0);
  lp.add_constraint({{0, 1.0}, {1, 1.0}}, Relation::LessEq, 2.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-9);
}

TEST(Simplex, ProbabilitySimplexProjection) {
  // min c^T x over the probability simplex picks the smallest coefficient.
  LinearProgram lp(4);
  lp.objective = {3.0, 1.0, 2.0, 5.0};
  std::vector<std::pair<int, double>> all;
  for (int j = 0; j < 4; ++j) all.push_back({j, 1.0});
  lp.add_constraint(all, Relation::Eq, 1.0);
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  EXPECT_NEAR(sol.objective, 1.0, 1e-9);
  EXPECT_NEAR(sol.x[1], 1.0, 1e-9);
}

TEST(Simplex, RandomLpsSatisfyConstraints) {
  // Property test: on random feasible-by-construction LPs the returned point
  // satisfies every constraint.
  tolerance::Rng rng(2024);
  for (int trial = 0; trial < 25; ++trial) {
    const int n = 3 + rng.uniform_int(4);
    const int m = 2 + rng.uniform_int(4);
    LinearProgram lp(n);
    for (int j = 0; j < n; ++j) lp.objective[j] = rng.uniform(-1.0, 1.0);
    // Constraints a^T x <= b with a >= 0 and b > 0 keep the origin feasible
    // and the feasible set bounded via a final sum constraint.
    for (int i = 0; i < m; ++i) {
      std::vector<std::pair<int, double>> terms;
      for (int j = 0; j < n; ++j) terms.push_back({j, rng.uniform(0.0, 1.0)});
      lp.add_constraint(std::move(terms), Relation::LessEq,
                        rng.uniform(0.5, 2.0));
    }
    std::vector<std::pair<int, double>> sum_terms;
    for (int j = 0; j < n; ++j) sum_terms.push_back({j, 1.0});
    lp.add_constraint(std::move(sum_terms), Relation::LessEq, 10.0);

    const auto sol = SimplexSolver().solve(lp);
    ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
    for (const auto& con : lp.constraints) {
      double lhs = 0.0;
      for (const auto& [v, c] : con.terms) lhs += c * sol.x[v];
      EXPECT_LE(lhs, con.rhs + 1e-7);
    }
    for (double xv : sol.x) EXPECT_GE(xv, -1e-9);
  }
}

TEST(Simplex, MediumSizedStructuredLp) {
  // Transportation-like LP with equality structure, 40 vars.
  const int k = 20;
  LinearProgram lp(2 * k);
  for (int j = 0; j < 2 * k; ++j) lp.objective[j] = (j % 3) + 1.0;
  std::vector<std::pair<int, double>> norm;
  for (int j = 0; j < 2 * k; ++j) norm.push_back({j, 1.0});
  lp.add_constraint(norm, Relation::Eq, 1.0);
  for (int i = 0; i < k; ++i) {
    lp.add_constraint({{2 * i, 1.0}, {2 * i + 1, -1.0}}, Relation::Eq, 0.0);
  }
  const auto sol = SimplexSolver().solve(lp);
  ASSERT_EQ(sol.status, LpStatus::Optimal);
  double total = 0.0;
  for (double xv : sol.x) total += xv;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

}  // namespace
}  // namespace tolerance::lp
