// Parallel simulation engine: ThreadPool, ParallelRunner, Rng::stream
// splitting, and the determinism/reduction guarantees of the parallel
// run_many paths.  This suite is the one the CI TSan lane runs — keep every
// test meaningful under -fsanitize=thread.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <numeric>
#include <set>
#include <thread>

#include "tolerance/core/tolerance_system.hpp"
#include "tolerance/emulation/scenario_runner.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/solvers/threshold_policy.hpp"
#include "tolerance/stats/summary.hpp"
#include "tolerance/util/parallel.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace {

using namespace tolerance;

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPool, ExecutesSubmittedTasks) {
  util::ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, ShutdownDrainsPendingTasks) {
  // Destroying the pool with a backlog must execute every submitted task
  // before joining — the documented "clean shutdown under pending tasks"
  // contract (run under TSan/ASan in CI).
  std::atomic<int> count{0};
  {
    util::ThreadPool pool(2);
    for (int i = 0; i < 200; ++i) {
      pool.submit([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        count.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // No wait_idle(): the destructor races with a mostly-full queue.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, SingleWorkerRunsEverything) {
  util::ThreadPool pool(1);
  std::atomic<long> sum{0};
  for (long i = 1; i <= 50; ++i) {
    pool.submit([&sum, i] { sum.fetch_add(i, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 50 * 51 / 2);
}

TEST(ThreadPool, WaitIdleIsReusable) {
  util::ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
    }
    pool.wait_idle();
    EXPECT_EQ(count.load(), 20 * (round + 1));
  }
}

TEST(ThreadPool, RejectsInvalidConstruction) {
  EXPECT_THROW(util::ThreadPool pool(0), std::exception);
}

// ---------------------------------------------------------------------------
// Thread-count resolution
// ---------------------------------------------------------------------------

TEST(ParallelRunner, ExplicitRequestWinsOverEnvironment) {
  ::setenv("TOLERANCE_THREADS", "3", 1);
  EXPECT_EQ(util::resolve_threads(5), 5);
  EXPECT_EQ(util::resolve_threads(0), 3);
  ::unsetenv("TOLERANCE_THREADS");
}

TEST(ParallelRunner, InvalidEnvironmentFallsBackToHardware) {
  ::setenv("TOLERANCE_THREADS", "not-a-number", 1);
  EXPECT_EQ(util::resolve_threads(0), util::hardware_threads());
  ::setenv("TOLERANCE_THREADS", "-2", 1);
  EXPECT_EQ(util::resolve_threads(0), util::hardware_threads());
  ::unsetenv("TOLERANCE_THREADS");
  EXPECT_GE(util::hardware_threads(), 1);
}

TEST(ParallelRunner, OversizedRequestsClampConsistently) {
  // Both the explicit argument and the env var clamp to the same sanity cap
  // (4096) — a typo'd huge request must not exhaust OS thread limits, and
  // the env path must not silently fall back to hardware concurrency.
  EXPECT_EQ(util::resolve_threads(999999), 4096);
  ::setenv("TOLERANCE_THREADS", "999999", 1);
  EXPECT_EQ(util::resolve_threads(0), 4096);
  ::unsetenv("TOLERANCE_THREADS");
}

// ---------------------------------------------------------------------------
// ParallelRunner
// ---------------------------------------------------------------------------

TEST(ParallelRunner, ForEachCoversEveryIndexExactlyOnce) {
  const util::ParallelRunner runner(4);
  EXPECT_EQ(runner.threads(), 4);
  std::vector<std::atomic<int>> hits(257);
  runner.for_each(257, [&](std::int64_t i) {
    hits[static_cast<std::size_t>(i)].fetch_add(1, std::memory_order_relaxed);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelRunner, MapPreservesIndexOrder) {
  const util::ParallelRunner runner(8);
  const auto out = runner.map<int>(100, [](std::int64_t i) {
    return static_cast<int>(i * i);
  });
  ASSERT_EQ(out.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i * i);
}

TEST(ParallelRunner, SerialAndParallelAgree) {
  const util::ParallelRunner serial(1);
  const util::ParallelRunner parallel(6);
  auto square_sum = [](const util::ParallelRunner& r) {
    const auto v = r.map<long>(1000, [](std::int64_t i) {
      return static_cast<long>(i) * static_cast<long>(i);
    });
    return std::accumulate(v.begin(), v.end(), 0L);
  };
  EXPECT_EQ(square_sum(serial), square_sum(parallel));
}

TEST(ParallelRunner, ZeroCountIsANoOp) {
  const util::ParallelRunner runner(4);
  int calls = 0;
  runner.for_each(0, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelRunner, ExceptionsPropagateToCaller) {
  const util::ParallelRunner runner(4);
  EXPECT_THROW(
      runner.for_each(100,
                      [](std::int64_t i) {
                        if (i == 37) throw std::runtime_error("episode 37");
                      }),
      std::runtime_error);
  // The runner stays usable after a failed batch.
  std::atomic<int> count{0};
  runner.for_each(10, [&](std::int64_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 10);
}

TEST(ParallelRunner, NestedForEachDoesNotDeadlock) {
  // Completion is tracked by finished indices (not helper-task exits) and
  // the caller participates in the work, so a for_each issued from inside
  // a pool task completes even when every pool worker is blocked in a
  // nested wait.  Regression test: the old helper-exit protocol deadlocked
  // here (caught by the suite TIMEOUT in CI).
  const util::ParallelRunner outer(4);
  const util::ParallelRunner inner(4);
  std::atomic<int> count{0};
  outer.for_each(6, [&](std::int64_t) {
    inner.for_each(16, [&](std::int64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(count.load(), 6 * 16);
}

TEST(ParallelRunner, ReusableAcrossManyBatches) {
  const util::ParallelRunner runner(4);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> count{0};
    runner.for_each(50, [&](std::int64_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_EQ(count.load(), 50);
  }
}

// ---------------------------------------------------------------------------
// Rng::stream — the seed-derivation scheme behind split-per-episode
// ---------------------------------------------------------------------------

TEST(RngStream, SameBaseAndIndexReproduces) {
  Rng a = Rng::stream(42, 7);
  Rng b = Rng::stream(42, 7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(RngStream, DistinctIndicesAreDecorrelated) {
  std::set<std::uint64_t> first_draws;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    Rng r = Rng::stream(123, i);
    first_draws.insert(r.engine()());
  }
  // SplitMix64-finalized seeds: no collisions across consecutive indices.
  EXPECT_EQ(first_draws.size(), 1000u);
}

TEST(RngStream, IndependentOfConstructionOrder) {
  Rng late = Rng::stream(9, 500);
  Rng early = Rng::stream(9, 1);
  Rng late2 = Rng::stream(9, 500);
  (void)early;
  EXPECT_EQ(late.uniform(), late2.uniform());
}

// ---------------------------------------------------------------------------
// SummaryAccumulator
// ---------------------------------------------------------------------------

TEST(SummaryAccumulator, MergedShardsMatchSerialExactly) {
  Rng rng(5);
  std::vector<double> xs;
  for (int i = 0; i < 1000; ++i) xs.push_back(rng.normal(3.0, 2.0));

  stats::SummaryAccumulator serial;
  for (double x : xs) serial.add(x);

  // Four contiguous shards accumulated independently, merged in shard
  // order — the parallel reduction shape.  Sample storage makes this
  // bit-exact (no floating-point reassociation).
  std::vector<stats::SummaryAccumulator> shards(4);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    shards[i * 4 / xs.size()].add(xs[i]);
  }
  stats::SummaryAccumulator merged;
  for (const auto& shard : shards) merged.merge(shard);

  ASSERT_EQ(merged.count(), serial.count());
  EXPECT_EQ(merged.mean(), serial.mean());
  EXPECT_EQ(merged.stddev(), serial.stddev());
  EXPECT_EQ(merged.ci().half_width, serial.ci().half_width);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(merged.samples()[i], serial.samples()[i]);
  }
}

TEST(SummaryAccumulator, MatchesFreeFunctions) {
  stats::SummaryAccumulator acc;
  const std::vector<double> xs{1.0, 2.0, 4.0, 8.0, 16.0};
  for (double x : xs) acc.add(x);
  EXPECT_DOUBLE_EQ(acc.mean(), stats::mean(xs));
  EXPECT_DOUBLE_EQ(acc.stddev(), stats::sample_stddev(xs));
  const auto ci = stats::mean_ci(xs);
  EXPECT_DOUBLE_EQ(acc.ci().mean, ci.mean);
  EXPECT_DOUBLE_EQ(acc.ci().half_width, ci.half_width);
}

// ---------------------------------------------------------------------------
// run_many determinism: threads=1 vs threads=8 bit-identical
// ---------------------------------------------------------------------------

pomdp::NodeParams test_params() {
  pomdp::NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

TEST(RunManyParallel, BitIdenticalAcrossThreadCounts) {
  const pomdp::NodeModel model(test_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::NodeSimulator sim(model, obs);
  const auto policy = solvers::ThresholdPolicy::constant(0.76).as_policy();

  // The caller's stream must advance by exactly one draw regardless of
  // thread count: after run_many, every rng below should produce this value.
  Rng ref(17);
  ref.engine()();  // the base-seed draw consumed by run_many
  const std::uint64_t expected_next = ref.engine()();

  Rng rng1(17);
  const auto serial = sim.run_many(policy, 300, 64, rng1, /*threads=*/1);
  EXPECT_EQ(rng1.engine()(), expected_next);
  for (const int threads : {2, 3, 8}) {
    Rng rngN(17);
    const auto parallel = sim.run_many(policy, 300, 64, rngN, threads);
    EXPECT_EQ(parallel.avg_cost, serial.avg_cost) << threads;
    EXPECT_EQ(parallel.avg_time_to_recovery, serial.avg_time_to_recovery)
        << threads;
    EXPECT_EQ(parallel.recovery_frequency, serial.recovery_frequency)
        << threads;
    EXPECT_EQ(parallel.availability, serial.availability) << threads;
    EXPECT_EQ(parallel.steps, serial.steps) << threads;
    EXPECT_EQ(parallel.num_compromises, serial.num_compromises) << threads;
    EXPECT_EQ(parallel.num_recoveries, serial.num_recoveries) << threads;
    EXPECT_EQ(parallel.num_crashes, serial.num_crashes) << threads;
    EXPECT_EQ(rngN.engine()(), expected_next) << threads;
  }
}

TEST(RunManyParallel, ReduceMatchesManualAccumulation) {
  const pomdp::NodeModel model(test_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::NodeSimulator sim(model, obs);
  const auto policy = solvers::ThresholdPolicy::constant(0.5).as_policy();

  // Reproduce run_many by hand from the documented contract: one base draw,
  // Rng::stream(base, e) per episode, NodeRunStats::reduce in episode order.
  Rng rng(91);
  const auto via_run_many = sim.run_many(policy, 200, 16, rng, 4);
  Rng manual_rng(91);
  const std::uint64_t base = manual_rng.engine()();
  std::vector<pomdp::NodeRunStats> per;
  for (int e = 0; e < 16; ++e) {
    Rng child = Rng::stream(base, static_cast<std::uint64_t>(e));
    per.push_back(sim.run(policy, 200, child));
  }
  const auto manual = pomdp::NodeRunStats::reduce(per);
  EXPECT_EQ(via_run_many.avg_cost, manual.avg_cost);
  EXPECT_EQ(via_run_many.availability, manual.availability);
  EXPECT_EQ(via_run_many.num_recoveries, manual.num_recoveries);
  EXPECT_EQ(via_run_many.steps, manual.steps);
}

TEST(RunManyParallel, ReduceOfEmptyVectorIsZero) {
  const auto agg = pomdp::NodeRunStats::reduce({});
  EXPECT_EQ(agg.avg_cost, 0.0);
  EXPECT_EQ(agg.steps, 0);
}

TEST(RunManyParallel, ExceptionInsideAnEpisodePropagates) {
  const pomdp::NodeModel model(test_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::NodeSimulator sim(model, obs);
  // A policy that blows up mid-episode: the exception must surface at the
  // run_many call site, not kill a worker thread.
  const pomdp::NodePolicy faulty = [](double, int t) -> pomdp::NodeAction {
    if (t == 7) throw std::runtime_error("ids backend died");
    return pomdp::NodeAction::Wait;
  };
  Rng rng(3);
  EXPECT_THROW(sim.run_many(faulty, 50, 16, rng, 4), std::runtime_error);
  // The engine stays usable after the failed sweep.
  const auto policy = solvers::ThresholdPolicy::constant(0.76).as_policy();
  Rng rng2(3);
  const auto stats = sim.run_many(policy, 50, 8, rng2, 4);
  EXPECT_EQ(stats.steps, 50 * 8);
}

TEST(RunManyParallel, MoreThreadsThanEpisodesMatchesSerial) {
  const pomdp::NodeModel model(test_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::NodeSimulator sim(model, obs);
  const auto policy = solvers::ThresholdPolicy::constant(0.76).as_policy();
  Rng rng1(29);
  const auto serial = sim.run_many(policy, 100, 3, rng1, /*threads=*/1);
  Rng rng2(29);
  const auto oversub = sim.run_many(policy, 100, 3, rng2, /*threads=*/16);
  EXPECT_EQ(serial.avg_cost, oversub.avg_cost);
  EXPECT_EQ(serial.availability, oversub.availability);
  EXPECT_EQ(serial.num_recoveries, oversub.num_recoveries);
  EXPECT_EQ(serial.steps, oversub.steps);
}

// ---------------------------------------------------------------------------
// Evaluator::run_many — the emulation trace runner
// ---------------------------------------------------------------------------

TEST(EvaluatorParallel, RunManyMatchesSerialRuns) {
  core::EvaluationConfig config;
  config.strategy = core::StrategyKind::Tolerance;
  config.initial_nodes = 3;
  config.delta_r = 0;
  config.horizon = 120;
  config.f = 1;
  config.recovery_threshold = 0.76;
  config.node_params = test_params();
  config.testbed.attacker.start_probability = 0.1;

  Rng fit_rng(3);
  const auto detector = emulation::fit_pooled_detector(40, 11, 80.0, fit_rng);
  const core::Evaluator evaluator(config, detector, std::nullopt);

  const std::vector<std::uint64_t> seeds{1, 2, 3, 4, 5, 6};
  const auto parallel = evaluator.run_many(seeds, 4);
  ASSERT_EQ(parallel.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const auto serial = evaluator.run(seeds[i]);
    EXPECT_EQ(parallel[i].availability, serial.availability) << i;
    EXPECT_EQ(parallel[i].time_to_recovery, serial.time_to_recovery) << i;
    EXPECT_EQ(parallel[i].recovery_frequency, serial.recovery_frequency) << i;
    EXPECT_EQ(parallel[i].recoveries, serial.recoveries) << i;
    EXPECT_EQ(parallel[i].compromises, serial.compromises) << i;
  }
}

TEST(EvaluatorParallel, ExceptionInsideATracePropagates) {
  // initial_nodes exceeding the hardware pool passes the Evaluator's own
  // construction checks but makes the per-episode Testbed constructor throw
  // inside the worker: run_many must rethrow at the call site.
  core::EvaluationConfig config;
  config.strategy = core::StrategyKind::NoRecovery;
  config.initial_nodes = 3;
  config.max_nodes = 2;  // pool smaller than N1
  config.horizon = 50;
  config.node_params = test_params();
  Rng fit_rng(3);
  const auto detector = emulation::fit_pooled_detector(20, 11, 80.0, fit_rng);
  const core::Evaluator evaluator(config, detector, std::nullopt);
  EXPECT_THROW(evaluator.run_many({1, 2, 3, 4}, 4), std::invalid_argument);
}

TEST(EvaluatorParallel, MoreThreadsThanTracesMatchesSerial) {
  core::EvaluationConfig config;
  config.strategy = core::StrategyKind::Tolerance;
  config.initial_nodes = 3;
  config.horizon = 60;
  config.node_params = test_params();
  Rng fit_rng(3);
  const auto detector = emulation::fit_pooled_detector(20, 11, 80.0, fit_rng);
  const core::Evaluator evaluator(config, detector, std::nullopt);
  const std::vector<std::uint64_t> seeds{5, 6};
  const auto serial = evaluator.run_many(seeds, 1);
  const auto oversub = evaluator.run_many(seeds, 16);
  ASSERT_EQ(serial.size(), oversub.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_EQ(serial[i].availability, oversub[i].availability) << i;
    EXPECT_EQ(serial[i].recoveries, oversub[i].recoveries) << i;
    EXPECT_EQ(serial[i].avg_nodes, oversub[i].avg_nodes) << i;
  }
}

// ---------------------------------------------------------------------------
// ScenarioRunner::run_many — the closed-loop scenario engine (TSan lane)
// ---------------------------------------------------------------------------

TEST(ScenarioParallel, EpisodesAreBitIdenticalAcrossThreadCounts) {
  const auto runner = emulation::make_scenario_runner(
      emulation::find_scenario("golden-small"), 42);
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};
  const auto serial = runner.run_many(seeds, 1);
  const auto parallel = runner.run_many(seeds, 4);
  ASSERT_EQ(serial.size(), seeds.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(emulation::identical(serial[i], parallel[i])) << i;
  }
}

TEST(ScenarioParallel, MoreThreadsThanEpisodesMatchesSerial) {
  const auto runner = emulation::make_scenario_runner(
      emulation::find_scenario("baseline-intrusion"), 42);
  const std::vector<std::uint64_t> seeds{11, 12};
  const auto serial = runner.run_many(seeds, 1);
  const auto oversub = runner.run_many(seeds, 16);
  ASSERT_EQ(serial.size(), oversub.size());
  for (std::size_t i = 0; i < seeds.size(); ++i) {
    EXPECT_TRUE(emulation::identical(serial[i], oversub[i])) << i;
  }
}

}  // namespace
