#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/la/matrix.hpp"
#include "tolerance/la/solve.hpp"

namespace tolerance::la {
namespace {

TEST(Matrix, IdentityAndIndexing) {
  const auto id = Matrix::identity(3);
  EXPECT_DOUBLE_EQ(id(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(id(0, 1), 0.0);
  EXPECT_THROW(id(3, 0), std::invalid_argument);
}

TEST(Matrix, Transpose) {
  Matrix m(2, 3);
  m(0, 1) = 5.0;
  m(1, 2) = 7.0;
  const auto t = m.transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 0), 5.0);
  EXPECT_DOUBLE_EQ(t(2, 1), 7.0);
}

TEST(Matrix, RowStochasticCheck) {
  Matrix p(2, 2);
  p(0, 0) = 0.3;
  p(0, 1) = 0.7;
  p(1, 0) = 1.0;
  EXPECT_TRUE(p.is_row_stochastic());
  p(1, 0) = 0.9;
  EXPECT_FALSE(p.is_row_stochastic());
}

TEST(Matrix, MatvecAndVecmat) {
  Matrix m(2, 2);
  m(0, 0) = 1.0;
  m(0, 1) = 2.0;
  m(1, 0) = 3.0;
  m(1, 1) = 4.0;
  const auto y = matvec(m, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const auto z = vecmat({1.0, 1.0}, m);
  EXPECT_DOUBLE_EQ(z[0], 4.0);
  EXPECT_DOUBLE_EQ(z[1], 6.0);
}

TEST(Matrix, Matmul) {
  Matrix a(2, 3, 1.0);
  Matrix b(3, 2, 2.0);
  const auto c = matmul(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);
  EXPECT_DOUBLE_EQ(c(0, 0), 6.0);
}

TEST(Solve, GaussKnownSystem) {
  Matrix a(2, 2);
  a(0, 0) = 2.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 3.0;
  const auto x = gauss_solve(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Solve, GaussRequiresPivoting) {
  // Leading zero forces a row swap.
  Matrix a(2, 2);
  a(0, 0) = 0.0;
  a(0, 1) = 1.0;
  a(1, 0) = 1.0;
  a(1, 1) = 0.0;
  const auto x = gauss_solve(a, {2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(Solve, GaussSingularThrows) {
  Matrix a(2, 2, 1.0);
  EXPECT_THROW(gauss_solve(a, {1.0, 2.0}), std::invalid_argument);
}

TEST(Solve, InvertRoundTrip) {
  Matrix a(3, 3);
  a(0, 0) = 4.0; a(0, 1) = 1.0; a(0, 2) = 0.0;
  a(1, 0) = 1.0; a(1, 1) = 3.0; a(1, 2) = 1.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 2.0;
  const auto inv = invert(a);
  const auto prod = matmul(a, inv);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-10);
    }
  }
}

TEST(Solve, CholeskyOfSpdMatrix) {
  Matrix a(2, 2);
  a(0, 0) = 4.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 3.0;
  const auto l = cholesky(a);
  EXPECT_NEAR(l(0, 0), 2.0, 1e-12);
  EXPECT_NEAR(l(1, 0), 1.0, 1e-12);
  EXPECT_NEAR(l(1, 1), std::sqrt(2.0), 1e-12);
  // Solve A x = b through the factor.
  const auto x = cholesky_solve(l, {8.0, 7.0});
  EXPECT_NEAR(4.0 * x[0] + 2.0 * x[1], 8.0, 1e-10);
  EXPECT_NEAR(2.0 * x[0] + 3.0 * x[1], 7.0, 1e-10);
}

TEST(Solve, CholeskyRejectsIndefinite) {
  Matrix a(2, 2);
  a(0, 0) = 1.0; a(0, 1) = 2.0;
  a(1, 0) = 2.0; a(1, 1) = 1.0;  // eigenvalues 3, -1
  EXPECT_THROW(cholesky(a), std::invalid_argument);
}

}  // namespace
}  // namespace tolerance::la
