// Asynchronous level-2 controller suites: the PolicyBuffer atomic flip, the
// FRESH/HOLD/FALLBACK staleness ladder, the poison-policy guard, warm-start
// reuse across background re-solves, and the Theorem 1 / Theorem 2 structure
// of the threshold fallback.  PolicyBuffer* / AsyncController* /
// ControllerFallback* run in the CI TSan lane (the torture and stalled-solver
// tests are the reason).
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "tolerance/core/async_controller.hpp"
#include "tolerance/core/policy_buffer.hpp"
#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/pomdp/system_model.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

namespace tolerance::core {
namespace {

using solvers::CmdpSolution;
using solvers::SystemThresholdPolicy;

// A small but real replication CMDP (the scenario harness's parametric
// route) so solves exercise the genuine LP + warm-start machinery.  These
// parameters produce a non-degenerate Thm. 2 mixture (beta1=4, beta2=5,
// kappa ~ 0.74, one randomized state) — the structure the fallback tests
// need to say anything.
pomdp::SystemCmdp test_cmdp() {
  return pomdp::SystemCmdp::parametric(/*max_nodes=*/10, /*f=*/3,
                                       /*epsilon_a=*/0.9, /*q_healthy=*/0.85,
                                       /*q_recover=*/0.02);
}

CmdpSolution solved() {
  CmdpSolution s = solvers::solve_replication_lp(test_cmdp());
  EXPECT_TRUE(s.valid_policy());
  return s;
}

CmdpSolution poisoned() {
  CmdpSolution s = solved();
  s.status = lp::LpStatus::Infeasible;
  return s;
}

AsyncControllerConfig fast_config() {
  AsyncControllerConfig cfg;
  cfg.resolve_period = 3;
  cfg.solve_latency_cycles = 1;
  cfg.staleness_budget = 4;
  cfg.fallback_deadline = 8;
  cfg.retry_backoff_cycles = 1;
  cfg.max_retry_backoff_cycles = 4;
  cfg.verify_warm_optimum = false;  // individual tests opt back in
  return cfg;
}

// ---------------------------------------------------------------------------
// PolicyBuffer: the atomic epoch flip
// ---------------------------------------------------------------------------

PolicyBuffer::Table table_for_epoch(std::uint64_t epoch) {
  // Every cell is a pure function of the epoch, so a torn snapshot (cells
  // from two different publishes) is detectable by construction.
  PolicyBuffer::Table t;
  t.epoch = epoch;
  const double fill = static_cast<double>(epoch % 97) / 97.0;
  t.add_probability.assign(16, fill);
  t.beta1 = static_cast<int>(epoch % 5);
  t.beta2 = t.beta1 + 2;
  t.kappa = fill;
  t.average_cost = 3.0 * fill;
  return t;
}

bool consistent(const PolicyBuffer::Table& t) {
  const double fill = static_cast<double>(t.epoch % 97) / 97.0;
  if (t.add_probability.size() != 16) return false;
  for (double p : t.add_probability) {
    if (p != fill) return false;
  }
  return t.beta1 == static_cast<int>(t.epoch % 5) && t.beta2 == t.beta1 + 2 &&
         t.kappa == fill && t.average_cost == 3.0 * fill;
}

TEST(PolicyBuffer, SnapshotReturnsTheLatestPublish) {
  PolicyBuffer buffer;
  EXPECT_EQ(buffer.epoch(), 0u);
  EXPECT_EQ(buffer.snapshot().epoch, 0u);  // nothing published yet
  buffer.publish(table_for_epoch(1));
  buffer.publish(table_for_epoch(2));
  EXPECT_EQ(buffer.epoch(), 2u);
  const auto t = buffer.snapshot();
  EXPECT_EQ(t.epoch, 2u);
  EXPECT_TRUE(consistent(t));
}

TEST(PolicyBuffer, EpochsMustStrictlyIncrease) {
  PolicyBuffer buffer;
  buffer.publish(table_for_epoch(3));
  EXPECT_THROW(buffer.publish(table_for_epoch(3)), std::invalid_argument);
  EXPECT_THROW(buffer.publish(table_for_epoch(2)), std::invalid_argument);
  buffer.publish(table_for_epoch(4));
  EXPECT_EQ(buffer.epoch(), 4u);
}

// The torture test behind the "atomic policy flip" claim: one writer flips
// epochs as fast as it can while reader threads snapshot in a tight loop.
// Every snapshot must be internally consistent (no torn tables) and every
// reader must observe monotone non-decreasing epochs.
class PolicyBufferTorture : public ::testing::TestWithParam<int> {};

TEST_P(PolicyBufferTorture, ReadersNeverSeeATornTableAtAnyThreadCount) {
  const int num_readers = GetParam();
  constexpr std::uint64_t kEpochs = 2000;
  PolicyBuffer buffer;
  buffer.publish(table_for_epoch(1));

  std::atomic<bool> stop{false};
  std::atomic<long> torn{0};
  std::atomic<long> non_monotone{0};
  std::vector<std::thread> readers;
  readers.reserve(static_cast<std::size_t>(num_readers));
  for (int r = 0; r < num_readers; ++r) {
    readers.emplace_back([&] {
      std::uint64_t last = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const auto t = buffer.snapshot();
        if (!consistent(t)) torn.fetch_add(1, std::memory_order_relaxed);
        if (t.epoch < last) {
          non_monotone.fetch_add(1, std::memory_order_relaxed);
        }
        last = t.epoch;
      }
    });
  }
  for (std::uint64_t e = 2; e <= kEpochs; ++e) {
    buffer.publish(table_for_epoch(e));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn.load(), 0);
  EXPECT_EQ(non_monotone.load(), 0);
  EXPECT_EQ(buffer.epoch(), kEpochs);
}

INSTANTIATE_TEST_SUITE_P(Readers, PolicyBufferTorture,
                         ::testing::Values(1, 8),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "readers_" + std::to_string(info.param);
                         });

// The decision a reader derives from a snapshot is a pure function of the
// snapshot's epoch, so the (epoch -> decision) tape must be bit-identical
// whether 1 or 8 readers race the writer — concurrency may change *which*
// epochs a reader samples, never what any epoch decides.
TEST(PolicyBufferTorture, DecisionTapeIsBitIdenticalAcrossThreadCounts) {
  const auto decide = [](const PolicyBuffer::Table& t) {
    // A stand-in decision kernel: threshold the state against beta2 and mix
    // with the table's kappa — touches every field a real decision reads.
    return (7 <= t.beta2 ? 1.0 : 0.0) + t.kappa +
           t.add_probability[static_cast<std::size_t>(t.beta1)];
  };
  for (int num_readers : {1, 8}) {
    constexpr std::uint64_t kEpochs = 500;
    PolicyBuffer buffer;
    buffer.publish(table_for_epoch(1));
    std::atomic<bool> stop{false};
    std::atomic<long> mismatches{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < num_readers; ++r) {
      readers.emplace_back([&] {
        while (!stop.load(std::memory_order_acquire)) {
          const auto t = buffer.snapshot();
          // Reference tape entry, recomputed from the epoch alone.
          if (decide(t) != decide(table_for_epoch(t.epoch))) {
            mismatches.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (std::uint64_t e = 2; e <= kEpochs; ++e) {
      buffer.publish(table_for_epoch(e));
    }
    stop.store(true, std::memory_order_release);
    for (auto& t : readers) t.join();
    EXPECT_EQ(mismatches.load(), 0) << num_readers << " readers";
  }
}

// ---------------------------------------------------------------------------
// AsyncCmdpController: the staleness ladder
// ---------------------------------------------------------------------------

TEST(AsyncController, LadderDegradesFreshHoldFallbackAndRecovers) {
  const CmdpSolution initial = solved();
  AsyncControllerConfig cfg = fast_config();
  AsyncCmdpController ctrl(
      initial, [](const lp::SimplexBasis* warm) {
        return solvers::solve_replication_lp(test_cmdp(), {}, warm);
      },
      cfg, /*seed=*/17);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh);
  EXPECT_EQ(ctrl.epoch(), 1u);

  // Steady state: re-solves land every resolve_period + latency cycles, so
  // the ladder never leaves FRESH.
  for (long t = 1; t <= 12; ++t) {
    ctrl.begin_cycle(t);
    EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh) << "cycle " << t;
  }
  EXPECT_GT(ctrl.stats().resolves, 1);

  // A GC pause freezes harvest+launch: staleness climbs through HOLD
  // (budget 4) into FALLBACK (deadline 8), then the first post-pause cycle
  // harvests the parked solve and the ladder snaps back to FRESH.
  ctrl.inject_stall(13, 12);
  std::uint64_t saw_hold = 0;
  std::uint64_t saw_fallback = 0;
  for (long t = 13; t <= 24; ++t) {
    ctrl.begin_cycle(t);
    const PolicyQuery q = ctrl.policy_at(3);
    EXPECT_EQ(q.mode, ctrl.mode());
    if (q.mode == ControllerMode::Hold) ++saw_hold;
    if (q.mode == ControllerMode::Fallback) ++saw_fallback;
  }
  EXPECT_GT(saw_hold, 0u);
  EXPECT_GT(saw_fallback, 0u);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fallback);
  // Pause over.  Nothing was in flight when the stall hit (the last flip
  // landed at cycle 12), so cycle 25 relaunches — still FALLBACK — and the
  // flip lands one solve-latency later.
  ctrl.begin_cycle(25);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fallback);
  ctrl.begin_cycle(26);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh);
  const AsyncControllerStats stats = ctrl.stats();
  EXPECT_GT(stats.hold_cycles, 0);
  EXPECT_GT(stats.fallback_cycles, 0);
  EXPECT_GE(stats.max_staleness, cfg.fallback_deadline + 1);
  EXPECT_EQ(stats.rejected, 0);
}

TEST(AsyncController, PoisonedSolveIsNeverFlippedIn) {
  const CmdpSolution initial = solved();
  std::atomic<int> solves{0};
  AsyncCmdpController ctrl(
      initial, [&solves](const lp::SimplexBasis*) {
        solves.fetch_add(1, std::memory_order_relaxed);
        return poisoned();
      },
      fast_config(), /*seed=*/17);
  for (long t = 1; t <= 40; ++t) {
    ctrl.begin_cycle(t);
    const PolicyQuery q = ctrl.policy_at(2);
    // The epoch never advances past the initial table: every poisoned
    // re-solve is rejected before the flip.
    EXPECT_EQ(q.epoch, 1u) << "cycle " << t;
    EXPECT_EQ(q.add_probability, initial.add_probability_at(2));
  }
  const AsyncControllerStats stats = ctrl.stats();
  EXPECT_EQ(stats.resolves, 0);
  EXPECT_GT(stats.rejected, 2);
  EXPECT_EQ(stats.rejected, solves.load());
  EXPECT_EQ(ctrl.epoch(), 1u);
  // With nothing ever published again the ladder must have degraded.
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fallback);
}

TEST(AsyncController, CrashDiscardsInFlightSolveAndRecoversAfterRestart) {
  const CmdpSolution initial = solved();
  AsyncCmdpController ctrl(
      initial, [](const lp::SimplexBasis* warm) {
        return solvers::solve_replication_lp(test_cmdp(), {}, warm);
      },
      fast_config(), /*seed=*/17);
  ctrl.begin_cycle(1);
  ctrl.begin_cycle(2);
  ctrl.begin_cycle(3);  // launches the first re-solve (period 3), due 4
  ctrl.inject_crash(4, 10);  // takes the in-flight solve with it
  for (long t = 4; t <= 13; ++t) {
    ctrl.begin_cycle(t);
    EXPECT_EQ(ctrl.epoch(), 1u) << "no publish may land during the crash";
  }
  // Restart: cycle 14 relaunches cold, the flip lands at 15.
  ctrl.begin_cycle(14);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fallback);
  ctrl.begin_cycle(15);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh);
  EXPECT_GE(ctrl.epoch(), 2u);
}

// The acceptance-criterion test: a solver hung on a condition variable must
// not block the decision path.  Wall-clock lane (deterministic = false), so
// begin_cycle never waits for the solver thread — the cycle loop completes
// while the solve is parked on the CV, and the ladder degrades to FALLBACK.
TEST(AsyncController, StalledSolverNeverBlocksDecisionPath) {
  const CmdpSolution initial = solved();
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  AsyncControllerConfig cfg = fast_config();
  cfg.deterministic = false;
  AsyncCmdpController ctrl(
      initial,
      [&](const lp::SimplexBasis* warm) {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release; });
        return solvers::solve_replication_lp(test_cmdp(), {}, warm);
      },
      cfg, /*seed=*/17);
  long completed = 0;
  for (long t = 1; t <= 30; ++t) {
    ctrl.begin_cycle(t);
    const PolicyQuery q = ctrl.policy_at(3);
    EXPECT_EQ(q.epoch, 1u);
    ++completed;
  }
  EXPECT_EQ(completed, 30) << "the decision path blocked on a hung solve";
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fallback);
  EXPECT_EQ(ctrl.stats().resolves, 0);

  // Un-hang the solver; the wall-clock lane publishes from the solver
  // thread, so poll stats until the flip lands, then the next cycle is
  // FRESH again.  (The release also guarantees the pool can drain at
  // destruction.)
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  for (int i = 0; i < 2000 && ctrl.stats().resolves == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_GT(ctrl.stats().resolves, 0) << "solver never completed";
  ctrl.begin_cycle(31);
  EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh);
  EXPECT_GE(ctrl.epoch(), 2u);
}

// ---------------------------------------------------------------------------
// Warm-start reuse across background re-solves
// ---------------------------------------------------------------------------

TEST(AsyncControllerWarmStart, BasisIsThreadedThroughConsecutiveResolves) {
  const CmdpSolution initial = solved();
  std::atomic<int> warm_calls{0};
  std::atomic<int> cold_calls{0};
  std::atomic<int> not_warm_started{0};
  AsyncControllerConfig cfg = fast_config();
  cfg.verify_warm_optimum = true;  // also exercises the warm==cold ENSURE
  AsyncCmdpController ctrl(
      initial,
      [&](const lp::SimplexBasis* warm) {
        if (warm != nullptr) {
          warm_calls.fetch_add(1, std::memory_order_relaxed);
        } else {
          cold_calls.fetch_add(1, std::memory_order_relaxed);
        }
        CmdpSolution s = solvers::solve_replication_lp(test_cmdp(), {}, warm);
        if (warm != nullptr && s.warm_start == lp::WarmStart::None) {
          not_warm_started.fetch_add(1, std::memory_order_relaxed);
        }
        return s;
      },
      cfg, /*seed=*/17);
  for (long t = 1; t <= 20; ++t) {
    ctrl.begin_cycle(t);
    EXPECT_EQ(ctrl.mode(), ControllerMode::Fresh) << "cycle " << t;
  }
  const AsyncControllerStats stats = ctrl.stats();
  EXPECT_GE(stats.resolves, 4);
  // Every background re-solve received the previous optimal basis; the only
  // cold call is the one-time warm==cold verification solve.
  EXPECT_EQ(warm_calls.load(), static_cast<int>(stats.resolves));
  EXPECT_EQ(cold_calls.load(), 1);
  EXPECT_EQ(not_warm_started.load(), 0)
      << "a supplied basis was not used to warm-start the simplex";
}

// ---------------------------------------------------------------------------
// The threshold fallback's structure (Thm. 1 / Thm. 2)
// ---------------------------------------------------------------------------

TEST(ControllerFallback, Level1ThresholdMatchesIncrementalPruningOnFig4Pin) {
  // The Fig. 4 pin: the exact IP solve of the node POMDP (paper parameters,
  // DeltaR = 100).  Theorem 1 says the optimal strategy is a belief
  // threshold; the fallback ladder leans on exactly that structure, so
  // assert the ThresholdPolicy built from the IP recovery threshold takes
  // the same action as the IP envelope at every belief.
  pomdp::NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  const pomdp::NodeModel model(p);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = solvers::IncrementalPruning::solve_cycle(model, obs, 100);
  const double alpha_star =
      solvers::IncrementalPruning::recovery_threshold(result.value_functions[0]);
  EXPECT_NEAR(alpha_star, 0.278464678, 1e-6);  // the committed pin
  const solvers::ThresholdPolicy fallback =
      solvers::ThresholdPolicy::constant(alpha_star);
  for (int i = 0; i <= 400; ++i) {
    const double b = static_cast<double>(i) / 400.0;
    if (std::abs(b - alpha_star) < 1e-6) continue;  // the switch point itself
    const auto ip_action = solvers::envelope_action(result.value_functions[0], b);
    EXPECT_EQ(fallback.action(b, 1), ip_action) << "belief " << b;
  }
}

TEST(ControllerFallback, DominantThresholdCollapsesTheThm2Mixture) {
  using STP = SystemThresholdPolicy;
  // Majority weight on the randomized band extends to beta2...
  EXPECT_EQ(STP::dominant_threshold(2, 4, 0.7, 1), 4);
  EXPECT_EQ(STP::dominant_threshold(2, 4, 0.5, 1), 4);
  // ...minority weight contracts to beta1.
  EXPECT_EQ(STP::dominant_threshold(2, 4, 0.3, 1), 2);
  // Degenerate decompositions fall through sensibly.
  EXPECT_EQ(STP::dominant_threshold(-1, -1, 1.0, 1), 1);
  EXPECT_EQ(STP::dominant_threshold(3, -1, 1.0, 1), 3);
  EXPECT_EQ(STP::dominant_threshold(-1, 4, 0.8, 1), 4);
  EXPECT_EQ(STP::dominant_threshold(-1, 4, 0.2, 1), 1);
}

TEST(ControllerFallback, SystemThresholdIsMonotoneAndMatchesTheSolvedMixture) {
  const CmdpSolution solution = solved();
  ASSERT_TRUE(solution.valid_policy());
  const SystemThresholdPolicy policy =
      SystemThresholdPolicy::from_solution(solution, /*fallback_beta=*/1);
  // The dominant component is one of the mixture's own thresholds.
  EXPECT_TRUE(policy.beta() == solution.beta1 ||
              policy.beta() == solution.beta2);
  // Thm. 2 structure: add iff s <= beta — monotone, single switch.
  bool seen_reject = false;
  for (int s = 0; s <= 10; ++s) {
    const bool add = policy.add(s);
    EXPECT_EQ(add, s <= policy.beta()) << "state " << s;
    if (!add) seen_reject = true;
    if (seen_reject) {
      EXPECT_FALSE(add) << "non-monotone at state " << s;
    }
  }
  // The deterministic fallback agrees with the randomized table wherever
  // the table is itself deterministic (outside the randomized band).
  for (int s = 0; s <= solution.beta2 + 2; ++s) {
    const double pi = solution.add_probability_at(s);
    if (pi >= 1.0) {
      EXPECT_TRUE(policy.add(s)) << "state " << s;
    }
    if (pi <= 0.0) {
      EXPECT_FALSE(policy.add(s)) << "state " << s;
    }
  }
}

}  // namespace
}  // namespace tolerance::core
