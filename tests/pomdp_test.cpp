#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "tolerance/pomdp/assumptions.hpp"
#include "tolerance/pomdp/belief.hpp"
#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/pomdp/system_model.hpp"

namespace tolerance::pomdp {
namespace {

NodeParams paper_params() {
  NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

TEST(NodeModel, TransitionRowsSumToOne) {
  const NodeModel m(paper_params());
  for (NodeAction a : {NodeAction::Wait, NodeAction::Recover}) {
    const auto t = m.transition_matrix(a);
    EXPECT_TRUE(t.is_row_stochastic(1e-12));
  }
}

TEST(NodeModel, CrashIsAbsorbing) {
  const NodeModel m(paper_params());
  for (NodeAction a : {NodeAction::Wait, NodeAction::Recover}) {
    EXPECT_DOUBLE_EQ(m.transition(NodeState::Crashed, a, NodeState::Crashed),
                     1.0);
    EXPECT_DOUBLE_EQ(m.transition(NodeState::Crashed, a, NodeState::Healthy),
                     0.0);
  }
}

TEST(NodeModel, RecoveryHealsCompromisedNode) {
  const NodeModel m(paper_params());
  // (2f): recovery succeeds unless re-attacked or crashed.
  EXPECT_NEAR(
      m.transition(NodeState::Compromised, NodeAction::Recover,
                   NodeState::Healthy),
      (1.0 - 0.1) * (1.0 - 1e-3), 1e-12);
  // (2g): waiting heals only via software update.
  EXPECT_NEAR(m.transition(NodeState::Compromised, NodeAction::Wait,
                           NodeState::Healthy),
              (1.0 - 1e-3) * 2e-2, 1e-12);
}

TEST(NodeModel, CostMatchesEquationFive) {
  const NodeModel m(paper_params());
  EXPECT_DOUBLE_EQ(m.cost(NodeState::Healthy, NodeAction::Wait), 0.0);
  EXPECT_DOUBLE_EQ(m.cost(NodeState::Healthy, NodeAction::Recover), 1.0);
  EXPECT_DOUBLE_EQ(m.cost(NodeState::Compromised, NodeAction::Wait), 2.0);
  EXPECT_DOUBLE_EQ(m.cost(NodeState::Compromised, NodeAction::Recover), 1.0);
  EXPECT_DOUBLE_EQ(m.cost(NodeState::Crashed, NodeAction::Wait), 0.0);
  EXPECT_NEAR(m.expected_cost(0.25, NodeAction::Wait), 0.5, 1e-12);
  EXPECT_NEAR(m.expected_cost(0.25, NodeAction::Recover), 1.0, 1e-12);
}

TEST(NodeModel, GeometricFailureTime) {
  // §V-A: with no recoveries, failure (C or ∅) time is geometric with rate
  // 1 - (1-pA)(1-pC1).  Verify via the H-row of the kernel.
  const NodeModel m(paper_params());
  const double stay_healthy =
      m.transition(NodeState::Healthy, NodeAction::Wait, NodeState::Healthy);
  EXPECT_NEAR(stay_healthy, (1.0 - 0.1) * (1.0 - 1e-5), 1e-12);
}

TEST(NodeModel, RejectsInvalidParams) {
  NodeParams p = paper_params();
  p.p_attack = 1.5;
  EXPECT_THROW(NodeModel{p}, std::invalid_argument);
  p = paper_params();
  p.eta = 0.5;
  EXPECT_THROW(NodeModel{p}, std::invalid_argument);
}

TEST(ObservationModel, PaperDefaultIsValid) {
  const auto z = BetaBinObservationModel::paper_default();
  EXPECT_EQ(z.num_observations(), 11);
  EXPECT_TRUE(z.all_positive());   // assumption D
  EXPECT_TRUE(z.is_tp2());         // assumption E
  double total_h = 0.0, total_c = 0.0;
  for (int o = 0; o < z.num_observations(); ++o) {
    total_h += z.prob(o, false);
    total_c += z.prob(o, true);
  }
  EXPECT_NEAR(total_h, 1.0, 1e-10);
  EXPECT_NEAR(total_c, 1.0, 1e-10);
}

TEST(ObservationModel, CompromisedShiftsAlertsUp) {
  const auto z = BetaBinObservationModel::paper_default();
  EXPECT_GT(z.compromised().mean(), z.healthy().mean());
  EXPECT_GT(z.kl(false, true), 0.0);
}

TEST(ObservationModel, EmpiricalEstimateMatchesTruth) {
  const auto truth = BetaBinObservationModel::paper_default();
  Rng rng(99);
  std::vector<int> hs, cs;
  for (int i = 0; i < 25000; ++i) {
    hs.push_back(truth.sample(false, rng));
    cs.push_back(truth.sample(true, rng));
  }
  const auto est = EmpiricalObservationModel::estimate(hs, cs, 11, 0.5);
  EXPECT_TRUE(est.all_positive());
  // D_KL between truth and estimate should be tiny (Glivenko-Cantelli).
  EXPECT_LT(stats::kl_divergence(truth.pmf(true), est.pmf(true)), 5e-3);
  EXPECT_LT(stats::kl_divergence(truth.pmf(false), est.pmf(false)), 5e-3);
}

TEST(ObservationModel, Tp2DetectsNonMonotoneChannel) {
  // A channel whose likelihood ratio dips is not TP-2.
  const auto bad = EmpiricalObservationModel(
      stats::EmpiricalPmf::from_counts({10, 10, 10}, 0.0),
      stats::EmpiricalPmf::from_counts({10, 1, 19}, 0.0));
  EXPECT_FALSE(bad.is_tp2());
}

// ---------------------------------------------------------------------------
// Belief recursion: cross-validated against brute-force trajectory filtering.
// ---------------------------------------------------------------------------

// Brute force P[S_t = C | o_1..o_t, a_1..a_{t-1}, no crash observed] by
// enumerating all hidden-state paths in the 2-state conditional chain.
double brute_force_posterior(const NodeModel& m, const ObservationModel& z,
                             double b1, const std::vector<int>& obs,
                             const std::vector<NodeAction>& actions) {
  const std::size_t t = obs.size();
  // Paths over {H=0, C=1}^t.
  double num = 0.0, denom = 0.0;
  const std::size_t paths = std::size_t{1} << t;
  for (std::size_t mask = 0; mask < paths; ++mask) {
    // Prior over the first state uses the prediction from b1 with action a_1.
    double w = 1.0;
    bool prev_c = false;
    for (std::size_t step = 0; step < t; ++step) {
      const bool cur_c = (mask >> step) & 1;
      if (step == 0) {
        const double pc = b1 * m.conditional_transition(true, actions[0], true) +
                          (1.0 - b1) *
                              m.conditional_transition(false, actions[0], true);
        w *= cur_c ? pc : 1.0 - pc;
      } else {
        w *= m.conditional_transition(prev_c, actions[step], cur_c);
      }
      w *= z.prob(obs[step], cur_c);
      prev_c = cur_c;
    }
    denom += w;
    if (prev_c) num += w;
  }
  return num / denom;
}

TEST(Belief, MatchesBruteForceFiltering) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const BeliefUpdater updater(m, z);

  const double b1 = 0.1;
  const std::vector<int> obs{7, 2, 9, 1, 5};
  const std::vector<NodeAction> actions{NodeAction::Wait, NodeAction::Wait,
                                        NodeAction::Recover, NodeAction::Wait,
                                        NodeAction::Wait};
  double b = b1;
  for (std::size_t t = 0; t < obs.size(); ++t) {
    b = updater.update(b, actions[t], obs[t]);
    const double expected = brute_force_posterior(
        m, z,
        b1, std::vector<int>(obs.begin(), obs.begin() + static_cast<long>(t) + 1),
        std::vector<NodeAction>(actions.begin(),
                                actions.begin() + static_cast<long>(t) + 1));
    EXPECT_NEAR(b, expected, 1e-10) << "t=" << t;
  }
}

TEST(Belief, HighAlertsRaiseBelief) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const BeliefUpdater updater(m, z);
  const double up = updater.update(0.2, NodeAction::Wait, 10);
  const double down = updater.update(0.2, NodeAction::Wait, 0);
  EXPECT_GT(up, 0.2);
  EXPECT_LT(down, 0.2);
}

TEST(Belief, RecoveryResetsTowardAttackProbability) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const BeliefUpdater updater(m, z);
  // After recovery the predicted compromise probability is pA regardless of
  // the prior belief (conditional kernel rows are equal under R).
  EXPECT_NEAR(updater.predict(0.9, NodeAction::Recover), 0.1, 1e-12);
  EXPECT_NEAR(updater.predict(0.1, NodeAction::Recover), 0.1, 1e-12);
}

TEST(Belief, MonotoneInPriorBelief) {
  // Property: the posterior is non-decreasing in the prior (TP-2 channel).
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const BeliefUpdater updater(m, z);
  for (int o = 0; o <= 10; ++o) {
    double prev = -1.0;
    for (double b = 0.0; b <= 1.0; b += 0.05) {
      const double post = updater.update(b, NodeAction::Wait, o);
      EXPECT_GE(post, prev - 1e-12) << "o=" << o << " b=" << b;
      prev = post;
    }
  }
}

TEST(NodeSimulator, NoRecoveryPolicyAccumulatesCost) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const NodeSimulator sim(m, z);
  Rng rng(1);
  const auto never = [](double, int) { return NodeAction::Wait; };
  const auto stats = sim.run_many(never, 500, 20, rng);
  EXPECT_EQ(stats.num_recoveries, 0);
  EXPECT_DOUBLE_EQ(stats.recovery_frequency, 0.0);
  // With pA = 0.1 and pU = 0.02 the node spends most time compromised.
  EXPECT_GT(stats.avg_cost, 1.0);
  // With pU = 0.02, an unrecovered compromise resolves only via software
  // update (mean 50 steps) or the horizon; T(R) is a few dozen steps.
  EXPECT_GT(stats.avg_time_to_recovery, 25.0);
  EXPECT_LT(stats.availability, 0.4);
}

TEST(NodeSimulator, AlwaysRecoverPolicyPaysRecoveryCost) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const NodeSimulator sim(m, z);
  Rng rng(2);
  const auto always = [](double, int) { return NodeAction::Recover; };
  const auto stats = sim.run(always, 400, rng);
  EXPECT_NEAR(stats.recovery_frequency, 1.0, 1e-12);
  // Cost ~= 1 per step (every step is a recovery).
  EXPECT_NEAR(stats.avg_cost, 1.0, 0.15);
  EXPECT_GT(stats.availability, 0.8);
}

TEST(NodeSimulator, ThresholdPolicyBeatsExtremes) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const NodeSimulator sim(m, z);
  Rng rng(3);
  const auto never = [](double, int) { return NodeAction::Wait; };
  const auto always = [](double, int) { return NodeAction::Recover; };
  const auto threshold = [](double b, int) {
    return b >= 0.75 ? NodeAction::Recover : NodeAction::Wait;
  };
  const auto s_never = sim.run_many(never, 400, 30, rng);
  const auto s_always = sim.run_many(always, 400, 30, rng);
  const auto s_thresh = sim.run_many(threshold, 400, 30, rng);
  EXPECT_LT(s_thresh.avg_cost, s_never.avg_cost);
  EXPECT_LT(s_thresh.avg_cost, s_always.avg_cost);
}

TEST(NodeSimulator, FeedbackRecoversQuickly) {
  // The headline Table 7 behaviour: belief-threshold recovery has
  // time-to-recovery of a couple of steps.
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const NodeSimulator sim(m, z);
  Rng rng(4);
  const auto threshold = [](double b, int) {
    return b >= 0.75 ? NodeAction::Recover : NodeAction::Wait;
  };
  const auto stats = sim.run_many(threshold, 1000, 20, rng);
  EXPECT_GT(stats.num_compromises, 0);
  EXPECT_LT(stats.avg_time_to_recovery, 6.0);
  EXPECT_GT(stats.availability, 0.75);
}

// ---------------------------------------------------------------------------
// System CMDP
// ---------------------------------------------------------------------------

TEST(SystemCmdp, ParametricKernelIsStochastic) {
  const auto cmdp = SystemCmdp::parametric(10, 3, 0.9, 0.9, 0.6);
  EXPECT_TRUE(cmdp.kernel(0).is_row_stochastic(1e-9));
  EXPECT_TRUE(cmdp.kernel(1).is_row_stochastic(1e-9));
  EXPECT_EQ(cmdp.num_states(), 11);
}

TEST(SystemCmdp, AddActionShiftsMassUp) {
  const auto cmdp = SystemCmdp::parametric(10, 3, 0.9, 0.9, 0.3);
  // Expected next state under a=1 exceeds a=0 from every state.
  for (int s = 0; s <= 10; ++s) {
    double e0 = 0.0, e1 = 0.0;
    for (int j = 0; j <= 10; ++j) {
      e0 += j * cmdp.trans(s, 0, j);
      e1 += j * cmdp.trans(s, 1, j);
    }
    EXPECT_GT(e1, e0) << "s=" << s;
  }
}

TEST(SystemCmdp, AvailabilityIndicator) {
  const auto cmdp = SystemCmdp::parametric(10, 3, 0.9, 0.9, 0.3);
  EXPECT_FALSE(cmdp.available(3));
  EXPECT_TRUE(cmdp.available(4));
  EXPECT_DOUBLE_EQ(cmdp.cost(7), 7.0);
}

TEST(SystemCmdp, Theorem2AssumptionsOnParametricKernel) {
  const auto cmdp = SystemCmdp::parametric(8, 2, 0.9, 0.95, 0.4, 1e-4);
  const auto report = check_theorem2(cmdp);
  EXPECT_TRUE(report.b_full_support);   // mix > 0 guarantees this
  EXPECT_TRUE(report.c_monotone);       // binomial survival is FOSD-monotone
}

TEST(SystemCmdp, Theorem2ViolationDetected) {
  // A kernel that moves *down* when s grows violates C.
  la::Matrix k0(3, 3, 1e-6);
  k0(0, 2) = 1.0; k0(1, 1) = 1.0; k0(2, 0) = 1.0;
  for (std::size_t r = 0; r < 3; ++r) {
    double total = 0.0;
    for (std::size_t c = 0; c < 3; ++c) total += k0(r, c);
    for (std::size_t c = 0; c < 3; ++c) k0(r, c) /= total;
  }
  const SystemCmdp cmdp(2, 0, 0.9, k0, k0);
  const auto report = check_theorem2(cmdp);
  EXPECT_FALSE(report.c_monotone);
  EXPECT_FALSE(report.violations().empty());
}

TEST(SystemCmdp, EstimatedKernelFromNodeSimulation) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  Rng rng(5);
  const auto policy = [](double b, int) {
    return b >= 0.75 ? NodeAction::Recover : NodeAction::Wait;
  };
  const auto cmdp = SystemCmdp::estimate_from_node_simulation(
      10, 3, 0.9, m, z, policy, 4, 500, rng);
  EXPECT_TRUE(cmdp.kernel(0).is_row_stochastic(1e-7));
  EXPECT_TRUE(cmdp.kernel(1).is_row_stochastic(1e-7));
  // Under an effective recovery policy, the healthy count concentrates at
  // high values: from s = 10, the most likely next state stays >= 8.
  double mass_high = 0.0;
  for (int j = 8; j <= 10; ++j) mass_high += cmdp.trans(10, 0, j);
  EXPECT_GT(mass_high, 0.5);
}

TEST(SystemCmdp, StepSamplesFromKernel) {
  const auto cmdp = SystemCmdp::parametric(6, 1, 0.9, 0.9, 0.5);
  Rng rng(6);
  double total = 0.0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) total += cmdp.step(6, 0, rng);
  double expected = 0.0;
  for (int j = 0; j <= 6; ++j) expected += j * cmdp.trans(6, 0, j);
  EXPECT_NEAR(total / trials, expected, 0.05);
}

TEST(Theorem1, PaperParametersSatisfyAssumptions) {
  const NodeModel m(paper_params());
  const auto z = BetaBinObservationModel::paper_default();
  const auto report = check_theorem1(m, z);
  EXPECT_TRUE(report.a_probabilities_interior);
  EXPECT_TRUE(report.b_attack_update_bounded);
  EXPECT_TRUE(report.c_crash_gap);
  EXPECT_TRUE(report.d_observations_positive);
  EXPECT_TRUE(report.e_tp2);
  EXPECT_TRUE(report.all());
  EXPECT_TRUE(report.violations().empty());
}

TEST(Theorem1, ViolationsReported) {
  NodeParams p = paper_params();
  p.p_attack = 0.6;
  p.p_update = 0.6;  // violates B
  const NodeModel m(p);
  const auto z = BetaBinObservationModel::paper_default();
  const auto report = check_theorem1(m, z);
  EXPECT_FALSE(report.b_attack_update_bounded);
  EXPECT_FALSE(report.all());
  EXPECT_FALSE(report.violations().empty());
}

}  // namespace
}  // namespace tolerance::pomdp
