#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <limits>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/consensus/minbft_workload.hpp"
#include "tolerance/consensus/raft.hpp"

namespace tolerance::consensus {
namespace {

MinBftConfig fast_config(int f) {
  MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 10;
  cfg.log_watermark = 100;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  return cfg;
}

net::LinkConfig fast_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 0.0;
  return link;
}

// ---------------------------------------------------------------------------
// MinBFT: normal operation
// ---------------------------------------------------------------------------

TEST(MinBft, ExecutesClientRequest) {
  MinBftCluster cluster(3, fast_config(1), 1, fast_link());
  auto& client = cluster.add_client();
  const auto result = cluster.submit_and_run(client, "write:x=1");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "ok:1");
  EXPECT_EQ(client.completed_count(), 1u);
}

TEST(MinBft, SafetyAllReplicasExecuteSameSequence) {
  MinBftCluster cluster(3, fast_config(1), 2, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 20; ++i) {
    const auto r = cluster.submit_and_run(client, "op" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
  }
  cluster.run_for(1.0);
  const auto& log0 = cluster.replica(0).service().log();
  ASSERT_EQ(log0.size(), 20u);
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).service().log(), log0) << "replica " << id;
  }
}

TEST(MinBft, ToleratesSilentByzantineReplica) {
  // N = 3, f = 1 under the hybrid model: one silent replica (behaviour (b)
  // of §VIII-A) must not block progress.
  MinBftCluster cluster(3, fast_config(1), 3, fast_link());
  cluster.replica(2).set_mode(ByzantineMode::Silent);
  auto& client = cluster.add_client();
  for (int i = 0; i < 5; ++i) {
    const auto r = cluster.submit_and_run(client, "w" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
  }
  EXPECT_EQ(cluster.replica(0).service().log().size(), 5u);
}

TEST(MinBft, ToleratesRandomByzantineReplica) {
  // Behaviour (c): garbage messages.  Honest replicas must agree and the
  // client must still obtain f+1 matching (honest) replies.
  MinBftCluster cluster(3, fast_config(1), 4, fast_link());
  cluster.replica(1).set_mode(ByzantineMode::Random);
  auto& client = cluster.add_client();
  for (int i = 0; i < 5; ++i) {
    const auto r = cluster.submit_and_run(client, "w" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
    EXPECT_NE(*r, "garbage");
  }
  EXPECT_EQ(cluster.replica(0).service().log(),
            cluster.replica(2).service().log());
}

TEST(MinBft, ClientNeedsQuorumNotSingleReply) {
  // A single garbage reply must never be accepted: the completed result is
  // backed by f+1 identical replies.
  MinBftCluster cluster(3, fast_config(1), 5, fast_link());
  cluster.replica(0).set_mode(ByzantineMode::Random);  // replica 0 is leader
  auto& client = cluster.add_client();
  const auto r = cluster.submit_and_run(client, "w");
  // Progress may require a view change away from the Byzantine leader; the
  // result, when present, is never the garbage string.
  if (r.has_value()) {
    EXPECT_NE(*r, "garbage");
  }
}

TEST(MinBft, DuplicateRequestsExecuteOnce) {
  MinBftCluster cluster(3, fast_config(1), 6, fast_link());
  auto& client = cluster.add_client();
  const auto r1 = cluster.submit_and_run(client, "same-op");
  ASSERT_TRUE(r1.has_value());
  // Client retransmission path: send the identical request object again.
  cluster.run_for(3.0);  // allow retry timers to fire and drain
  EXPECT_EQ(cluster.replica(0).service().log().size(), 1u);
}

TEST(MinBft, CheckpointsGarbageCollect) {
  MinBftConfig cfg = fast_config(1);
  cfg.checkpoint_period = 5;
  MinBftCluster cluster(3, cfg, 7, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "o" + std::to_string(i)));
  }
  cluster.run_for(1.0);
  // All replicas should have advanced their executed counts.
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).executed_count(), 17u);
  }
}

// ---------------------------------------------------------------------------
// MinBFT: view change
// ---------------------------------------------------------------------------

TEST(MinBft, ViewChangeOnCrashedLeader) {
  MinBftCluster cluster(3, fast_config(1), 8, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "before-crash"));
  cluster.crash_replica(0);  // view-0 leader
  // Submit; the remaining replicas must time out and rotate the view.
  std::optional<std::string> result;
  client.submit("after-crash", [&](std::uint64_t, const std::string& r,
                                   double) { result = r; });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(cluster.replica(1).service().log().size(), 2u);
  EXPECT_GT(cluster.replica(1).view(), 0u);
}

TEST(MinBft, ViewChangePreservesExecutedPrefix) {
  MinBftCluster cluster(5, fast_config(2), 9, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "pre" + std::to_string(i)));
  }
  const auto log_before = cluster.replica(1).service().log();
  cluster.crash_replica(0);
  std::optional<std::string> result;
  client.submit("post", [&](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value());
  const auto& log_after = cluster.replica(1).service().log();
  ASSERT_GE(log_after.size(), log_before.size());
  for (std::size_t i = 0; i < log_before.size(); ++i) {
    EXPECT_EQ(log_after[i], log_before[i]) << "prefix diverged at " << i;
  }
}

// ---------------------------------------------------------------------------
// MinBFT: reconfiguration and recovery (Fig. 17 d-f)
// ---------------------------------------------------------------------------

TEST(MinBft, JoinExtendsMembershipAndTransfersState) {
  MinBftCluster cluster(3, fast_config(1), 10, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "w" + std::to_string(i)));
  }
  const ReplicaId joined = cluster.join_new_replica();
  EXPECT_EQ(cluster.replica(0).membership().size(), 4u);
  // The joiner caught up via state transfer (the join op itself is the 5th).
  EXPECT_GE(cluster.replica(joined).executed_count(), 4u);
  // And participates in new operations.
  ASSERT_TRUE(cluster.submit_and_run(client, "after-join"));
  cluster.run_for(1.0);
  EXPECT_EQ(cluster.replica(joined).service().log().back(), "after-join");
}

TEST(MinBft, EvictShrinksMembership) {
  MinBftCluster cluster(4, fast_config(1), 11, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w0"));
  cluster.evict_replica(3);
  EXPECT_FALSE(cluster.has_replica(3));
  EXPECT_EQ(cluster.replica(0).membership().size(), 3u);
  ASSERT_TRUE(cluster.submit_and_run(client, "w1"));
}

TEST(MinBft, RecoveryReplacesCompromisedReplica) {
  MinBftCluster cluster(3, fast_config(1), 12, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "w" + std::to_string(i)));
  }
  cluster.replica(2).set_mode(ByzantineMode::Random);
  cluster.recover_replica(2);  // fresh container + state transfer (Fig. 17d)
  EXPECT_EQ(cluster.replica(2).mode(), ByzantineMode::Honest);
  EXPECT_GE(cluster.replica(2).executed_count(), 3u);
  ASSERT_TRUE(cluster.submit_and_run(client, "after-recovery"));
  cluster.run_for(1.0);
  EXPECT_EQ(cluster.replica(2).service().log().back(), "after-recovery");
}

TEST(MinBft, ThroughputDecreasesWithClusterSize) {
  // The Fig. 10 shape: more replicas => more crypto+messages per request =>
  // lower throughput.
  auto throughput = [](int n) {
    MinBftCluster cluster(n, fast_config((n - 1) / 2), 13, fast_link());
    auto& client = cluster.add_client();
    const double start = cluster.network().now();
    int completed = 0;
    for (int i = 0; i < 30; ++i) {
      if (cluster.submit_and_run(client, "op" + std::to_string(i))) {
        ++completed;
      }
    }
    const double elapsed = cluster.network().now() - start;
    return completed / elapsed;
  };
  const double t3 = throughput(3);
  const double t9 = throughput(9);
  EXPECT_GT(t3, t9);
}

// ---------------------------------------------------------------------------
// MinBFT: request batching and pipelined USIG signing
// ---------------------------------------------------------------------------

/// The shared tagged-workload driver (also behind the Fig. 10 CI gate),
/// lifted to test expectations: a failed run is a test failure.
TaggedWorkloadResult tagged_workload(const MinBftConfig& cfg, int n,
                                     int clients, int ops_each,
                                     std::uint64_t seed) {
  const auto result =
      run_tagged_workload(cfg, n, clients, ops_each, seed, 4000000);
  EXPECT_EQ(result.error, "");
  return result;
}

TEST(MinBftBatching, BatchesFormUnderLoadAndLogsMatchUnbatched) {
  MinBftConfig cfg = fast_config(1);
  cfg.batch_size = 8;
  cfg.pipeline_depth = 2;
  const int clients = 8, ops = 12;
  const auto batched = tagged_workload(cfg, 3, clients, ops, 5);
  EXPECT_GT(batched.avg_batch, 1.5) << "batches never formed under load";
  const auto unbatched = tagged_workload(cfg.unbatched(), 3, clients, ops, 5);
  ASSERT_EQ(batched.log.size(), static_cast<std::size_t>(clients * ops));
  ASSERT_EQ(unbatched.log.size(), batched.log.size());
  // Identical operation logs, per the shared equivalence definition the CI
  // bench also gates on: same multiset, same per-client order.
  std::string err;
  EXPECT_TRUE(logs_equivalent(batched.log, unbatched.log, clients, &err))
      << err;
}

TEST(MinBftBatching, BatchingMultipliesSimulatedThroughputUnderLoad) {
  // Deterministic (simulated-time) throughput comparison with the paper's
  // crypto costs: batching must clearly beat one-request-per-counter.
  auto throughput = [](const MinBftConfig& cfg) {
    net::LinkConfig link;
    link.base_delay = 1e-3;
    link.jitter = 0.0;
    link.loss = 0.0;
    MinBftCluster cluster(5, cfg, 9, link);
    std::vector<MinBftClient*> cs;
    for (int c = 0; c < 20; ++c) cs.push_back(&cluster.add_client());
    long completed = 0;
    const double horizon = 2.0;
    std::function<void(MinBftClient*)> pump = [&](MinBftClient* client) {
      client->submit("w", [&, client](std::uint64_t, const std::string&,
                                      double) {
        ++completed;
        if (cluster.network().now() < horizon) pump(client);
      });
    };
    for (auto* c : cs) pump(c);
    cluster.network().run_until(horizon);
    return completed;
  };
  MinBftConfig cfg = fast_config(2);
  cfg.crypto_cost_sign = 5e-3;
  cfg.crypto_cost_verify = 2e-4;
  cfg.cpu_cost_per_send = 1e-3;
  cfg.crypto_cost_reply = 1e-4;
  const long batched = throughput(cfg);
  const long unbatched = throughput(cfg.unbatched());
  EXPECT_GE(batched, 2 * unbatched)
      << "batched " << batched << " vs unbatched " << unbatched;
}

TEST(MinBftBatching, ViewChangeWithHalfAcknowledgedBatchInFlight) {
  // Five requests land at the leader: the first seals immediately, the rest
  // accumulate behind a window of one and seal as a second batch.  The
  // leader crashes mid-flight — whatever subset of PREPAREs/COMMITs got out
  // must be recovered by the view change without loss or double execution.
  MinBftConfig cfg = fast_config(2);
  cfg.batch_size = 8;
  cfg.pipeline_depth = 1;
  MinBftCluster cluster(5, cfg, 11, fast_link());
  auto& client = cluster.add_client();
  int completions = 0;
  for (int i = 0; i < 5; ++i) {
    client.submit("op" + std::to_string(i),
                  [&](std::uint64_t, const std::string&, double) {
                    ++completions;
                  });
  }
  // Run just long enough for the second (4-request) batch to be prepared at
  // some followers but not committed everywhere, then kill the leader.
  cluster.run_for(0.006);
  cluster.crash_replica(0);
  cluster.run_for(30.0);
  EXPECT_EQ(completions, 5);
  const auto& log1 = cluster.replica(1).service().log();
  ASSERT_EQ(log1.size(), 5u) << "lost or duplicated requests";
  std::set<std::string> unique(log1.begin(), log1.end());
  EXPECT_EQ(unique.size(), 5u);
  for (ReplicaId id : cluster.replica_ids()) {
    if (id == 0) continue;
    EXPECT_EQ(cluster.replica(id).service().log(), log1) << "replica " << id;
  }
  EXPECT_GT(cluster.replica(1).view(), 0u);
}

TEST(MinBftBatching, RandomLeaderGarbageBatchTriggersViewChange) {
  // Behaviour (c) as leader: a corrupted operation under a valid UI.  The
  // per-request client-signature check catches it, the followers denounce
  // the leader, and the smuggled operation never reaches an honest log.
  MinBftCluster cluster(3, fast_config(1), 13, fast_link());
  cluster.replica(0).set_mode(ByzantineMode::Random);  // view-0 leader
  auto& client = cluster.add_client();
  std::optional<std::string> result;
  client.submit("legit", [&](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value()) << "cluster never recovered from the "
                                     "garbage-batch leader";
  EXPECT_NE(*result, "garbage");
  for (ReplicaId id : {ReplicaId{1}, ReplicaId{2}}) {
    for (const std::string& op : cluster.replica(id).service().log()) {
      EXPECT_EQ(op.find("|garbage"), std::string::npos)
          << "garbage batch executed on replica " << id;
    }
    EXPECT_GT(cluster.replica(id).view(), 0u);
  }
}

// Forging kit for view-change attack tests: USIG secrets derive
// deterministically from (principal, seed) exactly as MinBftCluster derives
// them, so a test can mint certificates that verify at honest replicas —
// standing in for a compromised member's ability to emit well-formed
// protocol messages with arbitrary content.
crypto::Usig forged_usig(std::uint64_t cluster_seed, ReplicaId id) {
  crypto::KeyRegistry scratch;
  return crypto::Usig(
      id, scratch.register_principal(
              static_cast<crypto::PrincipalId>(id) +
                  crypto::kUsigPrincipalOffset,
              (cluster_seed ^ id) ^ 0x5a5au));
}

ViewChange forged_view_change(std::uint64_t cluster_seed, ReplicaId id,
                              View to_view,
                              const std::vector<Prepare>& prepared,
                              SeqNum stable_seq = 0) {
  ViewChange vc;
  vc.replica = id;
  vc.to_view = to_view;
  vc.stable_seq = stable_seq;
  for (const Prepare& p : prepared) vc.prepared.push_back(PreparedProof{p});
  crypto::Usig usig = forged_usig(cluster_seed, id);
  vc.ui = usig.create(vc.body_digest());
  return vc;
}

Request unverifiable_request(const std::string& op) {
  Request evil;
  evil.client = 77777;  // unregistered principal: signature cannot verify
  evil.request_id = 1;
  evil.operation = op;
  evil.signature.signer = evil.client;
  return evil;
}

/// A prepare certified by `leader`'s (forged) USIG — reproposal candidates
/// must carry their claimed view's leader UI to survive selection.
Prepare forged_prepare(std::uint64_t cluster_seed, ReplicaId leader,
                       View view, SeqNum seq, std::vector<Request> requests) {
  Prepare p;
  p.view = view;
  p.seq = seq;
  p.requests = std::move(requests);
  crypto::Usig usig = forged_usig(cluster_seed, leader);
  p.ui = usig.create(p.body_digest());
  return p;
}

/// A genuinely-signed request from a cluster client's (deterministically
/// derived) key — what a compromised replica can replay into forged proofs.
Request forged_client_request(std::uint64_t cluster_seed, ClientId client,
                              std::uint64_t request_id,
                              const std::string& op) {
  Request r;
  r.client = client;
  r.request_id = request_id;
  r.operation = op;
  crypto::KeyRegistry scratch;
  crypto::Signer signer(
      client, scratch.register_principal(client, cluster_seed ^ client));
  r.signature = signer.sign(r.payload());
  return r;
}

/// Submit `op` through `client` while wiretapping replica 0's deliveries,
/// and return the genuinely client-signed Request captured off the wire.
std::optional<Request> submit_and_capture(MinBftCluster& cluster,
                                          MinBftClient& client,
                                          const std::string& op) {
  auto captured = std::make_shared<std::optional<Request>>();
  auto& r0 = cluster.replica(0);
  cluster.network().register_host(
      0, [captured, &r0](net::NodeId from, const MinBftMsg& m) {
        if (const auto* req = std::get_if<Request>(&m)) {
          if (!captured->has_value()) *captured = *req;
        }
        r0.on_message(from, m);
      });
  if (!cluster.submit_and_run(client, op).has_value()) return std::nullopt;
  return *captured;
}

TEST(MinBftBatching, GarbageProofInViewChangeIsReplacedByNullBatch) {
  // The liveness half of the garbage-batch defence: a compromised ex-leader
  // can land its unverifiable batch in one of the f+1 view-change proofs,
  // where a later view number wins the highest-view-per-seq selection over
  // an honest prepare.  The new leader must not simply drop that seq —
  // try_execute only advances contiguously and seal_one_batch only assigns
  // fresh seqs above the highest logged one, so a hole below a reproposed
  // batch could never be filled or passed and the cluster would stall
  // forever.  It re-prepares a null batch in its place instead.
  const std::uint64_t kSeed = 29;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();

  // Capture a genuinely signed client request off the wire so the forged
  // proof can also carry a *verifiable* batch above the garbage one.
  const auto captured = submit_and_capture(cluster, client, "w1");  // seq 1
  ASSERT_TRUE(captured.has_value());

  // Later-view garbage under a perfectly valid leader UI (view 3's leader is
  // replica 0, the compromised one): it wins the per-seq view ordering and
  // only the client-signature check can reject it.
  const Prepare garbage =
      forged_prepare(kSeed, 0, 3, 2, {unverifiable_request("evil-op")});
  // A verifiable batch *above* the garbage seq, certified by view 0's leader.
  const Prepare real = forged_prepare(kSeed, 0, 0, 3, {*captured});

  auto& r1 = cluster.replica(1);  // leader of view 1
  r1.on_message(0, MinBftMsg{forged_view_change(kSeed, 0, 1, {garbage, real})});
  r1.on_message(2, MinBftMsg{forged_view_change(kSeed, 2, 1, {garbage, real})});
  EXPECT_EQ(r1.view(), 1u) << "f+1 proofs must assemble the new view";

  // The cluster must stay live: the garbage seq is filled by a null batch,
  // the log stays contiguous, and fresh requests keep committing.
  const auto result = cluster.submit_and_run(client, "w2");
  ASSERT_TRUE(result.has_value()) << "cluster stalled on a sequence hole";
  cluster.run_for(1.0);
  const auto& log1 = r1.service().log();
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w1"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w2"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "evil-op"), 0);
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).service().log(), log1) << "replica " << id;
  }
}

TEST(MinBftBatching, ForgedProofSeqCannotBloatTheNullBatchFill) {
  // The contiguous null-batch fill is clamped to the live-path watermark: a
  // forged proof smuggling an absurd seq must not make the new leader sign
  // and log tens of millions of null batches (and a seq near UINT64_MAX
  // must not wrap the fill loop).  The fill stops at the watermark,
  // checkpoints advance the stable point over the no-ops, and fresh
  // requests keep committing.
  const std::uint64_t kSeed = 31;
  MinBftConfig cfg = fast_config(1);  // log_watermark = 100
  MinBftCluster cluster(3, cfg, kSeed, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w1").has_value());

  const Prepare absurd = forged_prepare(kSeed, 0, 3, 50'000'000,
                                        {unverifiable_request("evil-op")});
  auto& r1 = cluster.replica(1);  // leader of view 1
  r1.on_message(0, MinBftMsg{forged_view_change(kSeed, 0, 1, {absurd})});
  r1.on_message(2, MinBftMsg{forged_view_change(kSeed, 2, 1, {absurd})});
  EXPECT_EQ(r1.view(), 1u) << "f+1 proofs must assemble the new view";

  const auto result = cluster.submit_and_run(client, "w2");
  ASSERT_TRUE(result.has_value()) << "cluster stalled after the clamped fill";
  cluster.run_for(1.0);
  const auto& log1 = r1.service().log();
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w1"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w2"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "evil-op"), 0);
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).service().log(), log1) << "replica " << id;
  }
}

TEST(MinBftBatching, ForgedStableSeqCannotWrapTheFill) {
  // A forged proof claiming stable_seq = UINT64_MAX must not wrap the
  // contiguous fill (max_stable + 1 == 0 with a never-false loop bound):
  // uncertified stable claims are ignored, and even certified ones are
  // saturated.  Pre-fix, assembly hung signing null batches forever.
  const std::uint64_t kSeed = 37;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w1").has_value());
  constexpr SeqNum kHuge = std::numeric_limits<SeqNum>::max();
  auto& r1 = cluster.replica(1);  // leader of view 1
  r1.on_message(0, MinBftMsg{forged_view_change(kSeed, 0, 1, {}, kHuge)});
  r1.on_message(2, MinBftMsg{forged_view_change(kSeed, 2, 1, {}, kHuge)});
  EXPECT_EQ(r1.view(), 1u) << "f+1 proofs must assemble the new view";
  const auto result = cluster.submit_and_run(client, "w2");
  ASSERT_TRUE(result.has_value()) << "cluster stalled after forged stable";
  cluster.run_for(1.0);
  const auto& log1 = r1.service().log();
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w1"), 1);
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w2"), 1);
}

TEST(MinBftBatching, NewViewWithLeadingHoleIsRejected) {
  // A Byzantine new leader sends a contiguous reproposed run floating above
  // an unfillable gap (seqs 51..60 over proofs whose stable is 0).  The
  // adjacent-pair contiguity check alone would accept it and the follower
  // would sit stalled behind seq 51 until the next view-change timeout; the
  // range must anchor at the proofs' stable checkpoint + 1.
  const std::uint64_t kSeed = 41;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w1").has_value());
  NewView nv;
  nv.leader = 1;  // the genuine leader of view 1
  nv.view = 1;
  nv.proofs.push_back(forged_view_change(kSeed, 0, 1, {}));
  nv.proofs.push_back(forged_view_change(kSeed, 2, 1, {}));
  for (SeqNum seq = 51; seq <= 60; ++seq) {
    Prepare null_batch;
    null_batch.view = 1;
    null_batch.seq = seq;
    nv.reproposed.push_back(std::move(null_batch));
  }
  crypto::Usig leader_usig = forged_usig(kSeed, 1);
  nv.ui = leader_usig.create(nv.body_digest());
  auto& r0 = cluster.replica(0);
  r0.on_message(1, MinBftMsg{nv});
  EXPECT_EQ(r0.view(), 0u) << "holed NEW-VIEW must not install";
  // The cluster is undisturbed and stays live under the view-0 leader.
  ASSERT_TRUE(cluster.submit_and_run(client, "w2").has_value());
}

TEST(MinBftBatching, NewViewCannotNullOutAPreparedBatch) {
  // Followers recompute the reproposal selection from the NEW-VIEW's own
  // proofs: a Byzantine new leader whose proofs evidence a verifiable
  // prepared batch cannot replace it with a null batch (which honest
  // replicas would execute as a no-op, silently diverging from any replica
  // that already executed the real batch).
  const std::uint64_t kSeed = 43;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  const auto captured = submit_and_capture(cluster, client, "w1");
  ASSERT_TRUE(captured.has_value());

  const Prepare real = forged_prepare(kSeed, 0, 0, 2, {*captured});
  NewView nv;
  nv.leader = 1;  // the genuine leader of view 1, presumed compromised
  nv.view = 1;
  nv.proofs.push_back(forged_view_change(kSeed, 0, 1, {real}));
  nv.proofs.push_back(forged_view_change(kSeed, 2, 1, {real}));
  // The fill honest replicas derive is [null@1, real@2]; the Byzantine
  // leader deviates only at the contested seq, nulling out `real`.
  for (SeqNum seq = 1; seq <= 2; ++seq) {
    Prepare null_batch;
    null_batch.view = 1;
    null_batch.seq = seq;
    nv.reproposed.push_back(std::move(null_batch));
  }
  crypto::Usig leader_usig = forged_usig(kSeed, 1);
  nv.ui = leader_usig.create(nv.body_digest());
  auto& r2 = cluster.replica(2);
  r2.on_message(1, MinBftMsg{nv});
  EXPECT_EQ(r2.view(), 0u) << "nulled-out NEW-VIEW must not install";
  ASSERT_TRUE(cluster.submit_and_run(client, "w2").has_value());
}

TEST(MinBftBatching, TamperedProofContentsBreakTheProofCertificate) {
  // The sneakier variant of the null-out attack: instead of deviating from
  // the deterministic reproposal selection, a Byzantine new leader corrupts
  // a candidate *inside* a relayed honest proof (here its UI certificate) so
  // that every honest replica's own recomputation derives the null batch
  // "legitimately".  The VIEW-CHANGE digest binds the prepare's view, UI,
  // and signature-bound request digests, so the tampering breaks the proof
  // sender's USIG certificate and the NEW-VIEW is rejected.
  const std::uint64_t kSeed = 47;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  const auto captured = submit_and_capture(cluster, client, "w1");
  ASSERT_TRUE(captured.has_value());

  const Prepare real = forged_prepare(kSeed, 0, 0, 2, {*captured});
  NewView nv;
  nv.leader = 1;
  nv.view = 1;
  for (const ReplicaId sender : {ReplicaId{0}, ReplicaId{2}}) {
    ViewChange tampered = forged_view_change(kSeed, sender, 1, {real});
    tampered.prepared[0].prepare.ui.certificate[0] ^= 0xff;  // in-flight flip
    tampered.invalidate_digests();
    nv.proofs.push_back(std::move(tampered));
  }
  // The reproposals the tampering would "justify": with every copy of the
  // candidate corrupted, honest recomputation derives [null@1, null@2].
  for (SeqNum seq = 1; seq <= 2; ++seq) {
    Prepare null_batch;
    null_batch.view = 1;
    null_batch.seq = seq;
    nv.reproposed.push_back(std::move(null_batch));
  }
  crypto::Usig leader_usig = forged_usig(kSeed, 1);
  nv.ui = leader_usig.create(nv.body_digest());
  auto& r2 = cluster.replica(2);
  r2.on_message(1, MinBftMsg{nv});
  EXPECT_EQ(r2.view(), 0u) << "tampered-proof NEW-VIEW must not install";
  ASSERT_TRUE(cluster.submit_and_run(client, "w2").has_value());
}

TEST(MinBftBatching, UncertifiedStableClaimCannotDisplacePreparedSuffix) {
  // A single compromised member inflating its claimed stable checkpoint
  // (without the f+1 checkpoint certificate that makes one stable) must not
  // start the reproposal fill above the genuinely prepared suffix — that
  // would deterministically discard a prepared (possibly committed) batch
  // at every honest replica at once.  Uncertified claims are ignored.
  const std::uint64_t kSeed = 53;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w1").has_value());  // seq 1
  const Request displaced =
      forged_client_request(kSeed, 10000, 999, "w-displaced");
  const Prepare prepared = forged_prepare(kSeed, 0, 0, 2, {displaced});
  auto& r1 = cluster.replica(1);  // leader of view 1
  for (const ReplicaId sender : {ReplicaId{0}, ReplicaId{2}}) {
    r1.on_message(sender, MinBftMsg{forged_view_change(
                              kSeed, sender, 1, {prepared}, /*stable=*/50)});
  }
  EXPECT_EQ(r1.view(), 1u) << "f+1 proofs must assemble the new view";
  cluster.run_for(5.0);
  const auto& log1 = r1.service().log();
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "w-displaced"), 1)
      << "prepared batch displaced by an uncertified stable claim";
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).service().log(), log1) << "replica " << id;
  }
}

TEST(MinBftBatching, NewViewReproposalsRequireLeaderCertification) {
  // A NEW-VIEW whose reproposed suffix matches the deterministic selection
  // but carries garbage UIs must still be rejected: installing it would
  // poison the entries honest replicas log and later carry as view-change
  // candidates themselves (whose failed UI check would null them out in the
  // next reassembly).
  const std::uint64_t kSeed = 59;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  const auto captured = submit_and_capture(cluster, client, "w1");
  ASSERT_TRUE(captured.has_value());

  const Prepare real = forged_prepare(kSeed, 0, 0, 2, {*captured});
  NewView nv;
  nv.leader = 1;
  nv.view = 1;
  nv.proofs.push_back(forged_view_change(kSeed, 0, 1, {real}));
  nv.proofs.push_back(forged_view_change(kSeed, 2, 1, {real}));
  // Byte-exact match for the expected selection [null@1, real@2] — but the
  // prepares carry default (unverifiable) UIs instead of the leader's.
  Prepare null_batch;
  null_batch.view = 1;
  null_batch.seq = 1;
  nv.reproposed.push_back(std::move(null_batch));
  Prepare unsigned_real;
  unsigned_real.view = 1;
  unsigned_real.seq = 2;
  unsigned_real.requests = {*captured};
  nv.reproposed.push_back(std::move(unsigned_real));
  crypto::Usig leader_usig = forged_usig(kSeed, 1);
  nv.ui = leader_usig.create(nv.body_digest());
  auto& r2 = cluster.replica(2);
  r2.on_message(1, MinBftMsg{nv});
  EXPECT_EQ(r2.view(), 0u) << "uncertified reproposals must not install";
  ASSERT_TRUE(cluster.submit_and_run(client, "w2").has_value());
}

TEST(MinBftBatching, SpoofedSelfProofIsRejected) {
  // A VIEW-CHANGE spoofing the prospective leader's own id with a garbage
  // UI must be verified like any other proof (the genuine local self-proof
  // is USIG-signed): stored unverified it would both count toward the f+1
  // quorum and suppress the leader's real self-proof, poisoning the
  // NEW-VIEW for every follower.
  const std::uint64_t kSeed = 61;
  MinBftCluster cluster(3, fast_config(1), kSeed, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w1").has_value());
  auto& r1 = cluster.replica(1);  // leader of view 1
  ViewChange spoof;
  spoof.replica = 1;  // "from" r1 itself, with an unverifiable UI
  spoof.to_view = 1;
  spoof.ui.replica = 1;
  r1.on_message(0, MinBftMsg{spoof});
  r1.on_message(0, MinBftMsg{forged_view_change(kSeed, 0, 1, {})});
  EXPECT_EQ(r1.view(), 0u) << "spoofed self-proof counted toward the quorum";
  r1.on_message(2, MinBftMsg{forged_view_change(kSeed, 2, 1, {})});
  EXPECT_EQ(r1.view(), 1u);
  ASSERT_TRUE(cluster.submit_and_run(client, "w2").has_value());
}

TEST(MinBftBatching, EvictedReplicasBatchIsRejected) {
  // An evicted ex-leader that never saw its own eviction still believes it
  // leads view 0: fed a genuine signed request, it seals a batch with a
  // fresh USIG counter and broadcasts it.  Live members must reject the
  // batch (they moved on; the sender is not their leader and not a member).
  MinBftConfig cfg = fast_config(1);
  MinBftCluster cluster(4, cfg, 17, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w0").has_value());
  cluster.replica(0).set_mode(ByzantineMode::Silent);
  // The silent leader forces a view change; then its eviction is ordered
  // among the live members.  The zombie never executes "evict:0", so its
  // membership still contains itself.
  auto zombie = cluster.evict_and_detach(0);
  ASSERT_NE(zombie, nullptr);
  zombie->set_mode(ByzantineMode::Honest);
  EXPECT_TRUE(zombie->is_leader()) << "zombie should still believe in view 0";

  // Route a fresh client request to the zombie as well (its host slot is
  // free after eviction) so it leads a batch for it.
  consensus::MinBftReplica* zombie_raw = zombie.get();
  cluster.network().register_host(
      0, [zombie_raw](net::NodeId from, const consensus::MinBftMsg& m) {
        zombie_raw->on_message(from, m);
      });
  const std::uint64_t counter_before = zombie_raw->usig_counter();
  const auto executed_before = cluster.replica(1).executed_count();
  const auto result = cluster.submit_and_run(client, "after-evict");
  ASSERT_TRUE(result.has_value());
  cluster.run_for(5.0);
  EXPECT_GT(zombie_raw->usig_counter(), counter_before)
      << "the zombie never sealed its batch — the test exercised nothing";
  // The live cluster executed the request exactly once, via its own leader;
  // the zombie's batch bought it nothing.
  const auto& log1 = cluster.replica(1).service().log();
  EXPECT_EQ(std::count(log1.begin(), log1.end(), "after-evict"), 1);
  EXPECT_EQ(cluster.replica(1).executed_count(), executed_before + 1);
}

TEST(MinBftBatching, RetransmittedCommitHitsUsigCacheAndStaysRejected) {
  // A network-level duplicate of a COMMIT must not pay a second HMAC
  // verification (the verdict is cached per counter) and must still be
  // rejected by counter freshness.
  MinBftCluster cluster(3, fast_config(1), 19, fast_link());
  auto& client = cluster.add_client();

  // Wiretap replica 1's deliveries so we can replay a commit at replica 0.
  std::optional<consensus::Commit> captured;
  auto& r1 = cluster.replica(1);
  cluster.network().register_host(
      1, [&](net::NodeId from, const consensus::MinBftMsg& m) {
        if (const auto* c = std::get_if<consensus::Commit>(&m)) {
          if (!captured.has_value() && c->replica == 2) captured = *c;
        }
        r1.on_message(from, m);
      });
  ASSERT_TRUE(cluster.submit_and_run(client, "w").has_value());
  ASSERT_TRUE(captured.has_value());

  auto& r0 = cluster.replica(0);
  const auto executed = r0.executed_count();
  const auto misses_before = r0.usig_cache_misses();
  const auto hits_before = r0.usig_cache_hits();
  r0.on_message(2, consensus::MinBftMsg{*captured});  // the retransmit
  EXPECT_EQ(r0.usig_cache_hits(), hits_before + 1)
      << "duplicate commit re-verified instead of hitting the cache";
  EXPECT_EQ(r0.usig_cache_misses(), misses_before);
  EXPECT_EQ(r0.executed_count(), executed) << "stale counter was accepted";
}

TEST(MinBftBatching, PipelineKeepsMultipleBatchesInFlight) {
  // With a deep window and many clients the leader assigns several counter
  // values before the first batch executes — the pipelining half of the
  // scale-up.  Cheap crypto + slow links make in-flight overlap certain.
  MinBftConfig cfg = fast_config(1);
  cfg.batch_size = 1;  // forces every request onto its own counter
  cfg.pipeline_depth = 8;
  net::LinkConfig slow;
  slow.base_delay = 5e-2;
  slow.jitter = 0.0;
  slow.loss = 0.0;
  MinBftCluster cluster(3, cfg, 23, slow);
  std::vector<MinBftClient*> cs;
  for (int c = 0; c < 6; ++c) cs.push_back(&cluster.add_client());
  int completions = 0;
  for (auto* c : cs) {
    c->submit("op", [&](std::uint64_t, const std::string&, double) {
      ++completions;
    });
  }
  // All six requests reach the leader within ~one link delay and must all
  // be assigned counters (sealed) before the first COMMIT round trips.
  cluster.run_for(0.08);
  EXPECT_GE(cluster.replica(0).batches_proposed(), 6u);
  EXPECT_EQ(completions, 0) << "nothing should have round-tripped yet";
  cluster.run_for(5.0);
  EXPECT_EQ(completions, 6);
}

TEST(MinBftBatching, BodyDigestsAreMemoizedAndInvalidatable) {
  Prepare p;
  p.view = 1;
  p.seq = 2;
  for (int i = 0; i < 4; ++i) {
    Request r;
    r.client = 10000;
    r.request_id = static_cast<std::uint64_t>(i);
    r.operation = "w" + std::to_string(i);
    p.requests.push_back(std::move(r));
  }
  const auto first = p.body_digest();
  const std::uint64_t sha_after_first = crypto::Sha256::invocations();
  const auto stats_after_first = digest_memo_stats();
  // Repeated digest requests (what sign + N verifies + conflict checks do)
  // run zero SHA-256 compressions and count as memo saves.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(crypto::digest_equal(p.body_digest(), first));
  }
  EXPECT_EQ(crypto::Sha256::invocations(), sha_after_first);
  EXPECT_GE(digest_memo_stats().saved, stats_after_first.saved + 10);
  // Mutation + invalidation recomputes — and changes the digest.
  p.requests[0].operation += "|garbage";
  p.invalidate_digests();
  EXPECT_FALSE(crypto::digest_equal(p.body_digest(), first));
  EXPECT_GT(crypto::Sha256::invocations(), sha_after_first);
}

// ---------------------------------------------------------------------------
// MinBFT: speculative execution (the wall-clock fast path, sim-lane checked)
// ---------------------------------------------------------------------------

MinBftConfig speculative_config(int f) {
  MinBftConfig cfg = fast_config(f);
  cfg.speculative = true;
  return cfg;
}

TEST(MinBftSpeculative, AllNMatchingTentativeRepliesCompleteTheFastPath) {
  // Every replica speculates at PREPARE and replies tentatively; the client
  // commits on n-of-n matching speculative replies without waiting for the
  // commit round.  (With cfg.speculative = false this test fails: no
  // tentative replies ever go out and the speculative counters stay zero.)
  MinBftCluster cluster(3, speculative_config(1), 31, fast_link());
  auto& client = cluster.add_client();
  const auto result = cluster.submit_and_run(client, "spec-w");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "ok:1");
  EXPECT_EQ(client.completed_speculative_count(), 1u);
  cluster.run_for(1.0);
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_GE(cluster.replica(id).spec_executions(), 1u) << "replica " << id;
    EXPECT_EQ(cluster.replica(id).spec_rollbacks(), 0u) << "replica " << id;
    // The commit round caught up and finalized the tentative execution.
    EXPECT_EQ(cluster.replica(id).committed_log_size(), 1u) << "replica " << id;
  }
}

TEST(MinBftSpeculative, ViewChangeMidSpeculationRollsBackWithoutDoubleApply) {
  // Wedge a cluster mid-speculation: with follower<->follower links blocked
  // at n=5 (f=2), a follower receiving the PREPARE holds 2 of the f+1 = 3
  // required commit votes (leader + self) forever — it speculates, replies
  // tentatively, and cannot commit.  The client still completes on the
  // all-n speculative quorum.  Crashing the leader then forces a view
  // change: followers must roll the tentative execution back to the
  // committed prefix (empty) and re-execute the entry once it is reproposed
  // at the same sequence number — the client-visible result survives and no
  // replica applies the operation twice.  (With cfg.speculative = false the
  // speculative assertions below fail: nothing completes before the view
  // change and no rollback ever happens.)
  MinBftCluster cluster(5, speculative_config(2), 33, fast_link());
  for (ReplicaId a = 1; a <= 4; ++a) {
    for (ReplicaId b = static_cast<ReplicaId>(a + 1); b <= 4; ++b) {
      cluster.network().set_blocked(a, b, true);
    }
  }
  auto& client = cluster.add_client();
  int completions = 0;
  std::string result;
  client.submit("spec-w", [&](std::uint64_t, const std::string& r, double) {
    ++completions;
    result = r;
  });
  cluster.run_for(1.0);
  // Speculative completion happened; followers are executed-ahead-of-commit.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(result, "ok:1");
  EXPECT_EQ(client.completed_speculative_count(), 1u);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(cluster.replica(id).spec_executions(), 1u) << "replica " << id;
    EXPECT_EQ(cluster.replica(id).service().log().size(), 1u);
    EXPECT_EQ(cluster.replica(id).committed_log_size(), 0u)
        << "replica " << id << " committed without a quorum";
  }
  // Kill the leader mid-speculation and let the survivors talk again.
  cluster.crash_replica(0);
  for (ReplicaId a = 1; a <= 4; ++a) {
    for (ReplicaId b = static_cast<ReplicaId>(a + 1); b <= 4; ++b) {
      cluster.network().set_blocked(a, b, false);
    }
  }
  cluster.run_for(30.0);
  // The view change rolled the tentative execution back, reproposed the
  // prepared entry, and committed it: exactly one application survives.
  for (ReplicaId id = 1; id <= 4; ++id) {
    auto& replica = cluster.replica(id);
    EXPECT_GT(replica.view(), 0u) << "replica " << id;
    EXPECT_GE(replica.spec_rollbacks(), 1u) << "replica " << id;
    ASSERT_EQ(replica.service().log().size(), 1u)
        << "replica " << id << " lost or double-applied the operation";
    EXPECT_EQ(replica.service().log().front(), "spec-w");
    EXPECT_EQ(replica.committed_log_size(), 1u) << "replica " << id;
  }
  // The client never saw a second completion and its result still matches
  // the committed execution.
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(result, "ok:1");
}

TEST(MinBftCommitRepair, LostCommitVotesHealInPlaceWithoutViewChange) {
  // Same wedge as the rollback test above — follower<->follower links
  // blocked at n=5 leave every follower 2 of the f+1 = 3 required commit
  // votes — but here the leader STAYS UP and the commit-repair clock is
  // turned on.  Once the links heal, each follower's repair nudge
  // re-broadcasts its own (re-signed) vote; the other followers count the
  // fresh vote and the wedge closes in view 0.  No crash, no view change:
  // the repair path is the only healer.  (With commit_repair_timeout = 0 —
  // the sim-lane default — the followers stay wedged forever and the
  // committed_log_size assertions below fail.)
  MinBftConfig cfg = fast_config(2);
  cfg.commit_repair_timeout = 0.2;
  MinBftCluster cluster(5, cfg, 37, fast_link());
  for (ReplicaId a = 1; a <= 4; ++a) {
    for (ReplicaId b = static_cast<ReplicaId>(a + 1); b <= 4; ++b) {
      cluster.network().set_blocked(a, b, true);
    }
  }
  auto& client = cluster.add_client();
  client.submit("repair-w", [](std::uint64_t, const std::string&, double) {});
  cluster.run_for(1.0);
  for (ReplicaId id = 1; id <= 4; ++id) {
    EXPECT_EQ(cluster.replica(id).committed_log_size(), 0u)
        << "replica " << id << " committed through blocked links";
  }
  for (ReplicaId a = 1; a <= 4; ++a) {
    for (ReplicaId b = static_cast<ReplicaId>(a + 1); b <= 4; ++b) {
      cluster.network().set_blocked(a, b, false);
    }
  }
  cluster.run_for(1.0);
  for (ReplicaId id = 0; id <= 4; ++id) {
    auto& replica = cluster.replica(id);
    EXPECT_EQ(replica.view(), 0u) << "replica " << id;
    EXPECT_EQ(replica.committed_log_size(), 1u) << "replica " << id;
    EXPECT_EQ(replica.service().log().front(), "repair-w");
  }
}

TEST(MinBftSpeculative, ByzantineLeaderDivergingBatchIsDenouncedNotSpeculated) {
  // Behaviour (c) as leader under the fast path: the corrupted batch fails
  // the per-request client-signature check at honest followers *before* any
  // tentative execution, so nothing has to roll back — the followers
  // denounce the leader and the operation commits in the next view.  The
  // client cannot complete speculatively (the compromised replica's reply
  // diverges, and the all-n quorum requires every replica to match), so it
  // falls back to f+1 matching FINAL replies served from the reply caches
  // on retransmission.
  MinBftCluster cluster(3, speculative_config(1), 35, fast_link());
  cluster.replica(0).set_mode(ByzantineMode::Random);  // view-0 leader
  auto& client = cluster.add_client();
  std::optional<std::string> result;
  client.submit("legit", [&](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value()) << "cluster never recovered from the "
                                     "diverging speculative leader";
  EXPECT_NE(*result, "garbage");
  EXPECT_EQ(client.completed_speculative_count(), 0u)
      << "a diverging batch must never complete on the speculative quorum";
  for (ReplicaId id : {ReplicaId{1}, ReplicaId{2}}) {
    for (const std::string& op : cluster.replica(id).service().log()) {
      EXPECT_EQ(op.find("|garbage"), std::string::npos)
          << "diverging batch executed tentatively on replica " << id;
    }
    EXPECT_GT(cluster.replica(id).view(), 0u);
  }
}

TEST(MinBftSpeculative, SpeculativeAndBatchedLogsMatchBaseline) {
  // The sim-lane half of the CI bench gate, as a unit test: under the same
  // deterministic workload, speculation and MAC batching are pure latency
  // levers — the committed operation logs stay equivalent to the plain
  // configuration (same multiset, same per-client order).
  MinBftConfig cfg = fast_config(1);
  const int clients = 6, ops = 10;
  const auto baseline = tagged_workload(cfg, 3, clients, ops, 37);
  MinBftConfig spec = cfg;
  spec.speculative = true;
  const auto speculated = tagged_workload(spec, 3, clients, ops, 37);
  MinBftConfig mac = cfg;
  mac.mac_flush_window = 0.002;
  const auto batched = tagged_workload(mac, 3, clients, ops, 37);
  ASSERT_EQ(baseline.log.size(), static_cast<std::size_t>(clients * ops));
  std::string err;
  EXPECT_TRUE(logs_equivalent(speculated.log, baseline.log, clients, &err))
      << err;
  EXPECT_TRUE(logs_equivalent(batched.log, baseline.log, clients, &err))
      << err;
}

// ---------------------------------------------------------------------------
// Raft
// ---------------------------------------------------------------------------

raft::RaftConfig raft_config() {
  raft::RaftConfig cfg;
  cfg.election_timeout_min = 0.15;
  cfg.election_timeout_max = 0.30;
  cfg.heartbeat_interval = 0.05;
  return cfg;
}

TEST(Raft, ElectsSingleLeader) {
  raft::RaftCluster cluster(5, raft_config(), 21, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  int leaders = 0;
  for (auto id : cluster.node_ids()) {
    if (cluster.node(id).role() == raft::Role::Leader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, ReplicatesAndCommits) {
  raft::RaftCluster cluster(3, raft_config(), 22, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  std::vector<std::string> applied;
  cluster.node(*leader).set_apply_handler(
      [&](raft::Index, const std::string& cmd) { applied.push_back(cmd); });
  ASSERT_TRUE(cluster.node(*leader).propose("set-replication=5").has_value());
  ASSERT_TRUE(cluster.node(*leader).propose("add-node=7").has_value());
  cluster.run_for(1.0);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], "set-replication=5");
  // Followers hold identical committed prefixes.
  for (auto id : cluster.node_ids()) {
    EXPECT_GE(cluster.node(id).commit_index(), 2u);
    EXPECT_EQ(cluster.node(id).log()[0].command, "set-replication=5");
  }
}

TEST(Raft, FollowerRejectsProposals) {
  raft::RaftCluster cluster(3, raft_config(), 23, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  for (auto id : cluster.node_ids()) {
    if (id != *leader) {
      EXPECT_FALSE(cluster.node(id).propose("nope").has_value());
    }
  }
}

TEST(Raft, SurvivesLeaderCrash) {
  raft::RaftCluster cluster(5, raft_config(), 24, fast_link());
  const auto first = cluster.await_leader();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(cluster.node(*first).propose("before").has_value());
  cluster.run_for(1.0);
  cluster.node(*first).crash();
  const auto second = cluster.await_leader();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
  ASSERT_TRUE(cluster.node(*second).propose("after").has_value());
  cluster.run_for(1.0);
  // The new leader's log contains both entries.
  const auto& log = cluster.node(*second).log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[0].command, "before");
  EXPECT_EQ(log[1].command, "after");
}

TEST(Raft, MinorityPartitionCannotCommit) {
  raft::RaftCluster cluster(5, raft_config(), 25, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  // Isolate the leader with one follower (minority).
  std::vector<raft::NodeId> minority{*leader};
  std::vector<raft::NodeId> majority;
  for (auto id : cluster.node_ids()) {
    if (id == *leader) continue;
    if (minority.size() < 2) {
      minority.push_back(id);
    } else {
      majority.push_back(id);
    }
  }
  cluster.network().partition(
      {{minority.begin(), minority.end()}, {majority.begin(), majority.end()}});
  const auto old_commit = cluster.node(*leader).commit_index();
  cluster.node(*leader).propose("stale");
  cluster.run_for(2.0);
  EXPECT_EQ(cluster.node(*leader).commit_index(), old_commit)
      << "minority leader must not commit";
  // The majority elects a fresh leader that can commit.
  std::optional<raft::NodeId> new_leader;
  for (auto id : majority) {
    if (cluster.node(id).role() == raft::Role::Leader) new_leader = id;
  }
  ASSERT_TRUE(new_leader.has_value());
  ASSERT_TRUE(cluster.node(*new_leader).propose("fresh").has_value());
  cluster.run_for(2.0);
  EXPECT_GT(cluster.node(*new_leader).commit_index(), old_commit);
}

TEST(Raft, RestartedNodeRejoins) {
  raft::RaftCluster cluster(3, raft_config(), 26, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  // Crash a follower, commit entries, restart it, verify catch-up.
  raft::NodeId follower = 0;
  for (auto id : cluster.node_ids()) {
    if (id != *leader) {
      follower = id;
      break;
    }
  }
  cluster.node(follower).crash();
  ASSERT_TRUE(cluster.node(*leader).propose("while-down").has_value());
  cluster.run_for(1.0);
  cluster.node(follower).restart();
  cluster.run_for(2.0);
  ASSERT_GE(cluster.node(follower).log().size(), 1u);
  EXPECT_EQ(cluster.node(follower).log()[0].command, "while-down");
  EXPECT_GE(cluster.node(follower).commit_index(), 1u);
}

}  // namespace
}  // namespace tolerance::consensus
