#include <gtest/gtest.h>

#include <algorithm>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/consensus/raft.hpp"

namespace tolerance::consensus {
namespace {

MinBftConfig fast_config(int f) {
  MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 10;
  cfg.log_watermark = 100;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  return cfg;
}

net::LinkConfig fast_link() {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 2e-4;
  link.loss = 0.0;
  return link;
}

// ---------------------------------------------------------------------------
// MinBFT: normal operation
// ---------------------------------------------------------------------------

TEST(MinBft, ExecutesClientRequest) {
  MinBftCluster cluster(3, fast_config(1), 1, fast_link());
  auto& client = cluster.add_client();
  const auto result = cluster.submit_and_run(client, "write:x=1");
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "ok:1");
  EXPECT_EQ(client.completed_count(), 1u);
}

TEST(MinBft, SafetyAllReplicasExecuteSameSequence) {
  MinBftCluster cluster(3, fast_config(1), 2, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 20; ++i) {
    const auto r = cluster.submit_and_run(client, "op" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
  }
  cluster.run_for(1.0);
  const auto& log0 = cluster.replica(0).service().log();
  ASSERT_EQ(log0.size(), 20u);
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).service().log(), log0) << "replica " << id;
  }
}

TEST(MinBft, ToleratesSilentByzantineReplica) {
  // N = 3, f = 1 under the hybrid model: one silent replica (behaviour (b)
  // of §VIII-A) must not block progress.
  MinBftCluster cluster(3, fast_config(1), 3, fast_link());
  cluster.replica(2).set_mode(ByzantineMode::Silent);
  auto& client = cluster.add_client();
  for (int i = 0; i < 5; ++i) {
    const auto r = cluster.submit_and_run(client, "w" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
  }
  EXPECT_EQ(cluster.replica(0).service().log().size(), 5u);
}

TEST(MinBft, ToleratesRandomByzantineReplica) {
  // Behaviour (c): garbage messages.  Honest replicas must agree and the
  // client must still obtain f+1 matching (honest) replies.
  MinBftCluster cluster(3, fast_config(1), 4, fast_link());
  cluster.replica(1).set_mode(ByzantineMode::Random);
  auto& client = cluster.add_client();
  for (int i = 0; i < 5; ++i) {
    const auto r = cluster.submit_and_run(client, "w" + std::to_string(i));
    ASSERT_TRUE(r.has_value()) << "request " << i;
    EXPECT_NE(*r, "garbage");
  }
  EXPECT_EQ(cluster.replica(0).service().log(),
            cluster.replica(2).service().log());
}

TEST(MinBft, ClientNeedsQuorumNotSingleReply) {
  // A single garbage reply must never be accepted: the completed result is
  // backed by f+1 identical replies.
  MinBftCluster cluster(3, fast_config(1), 5, fast_link());
  cluster.replica(0).set_mode(ByzantineMode::Random);  // replica 0 is leader
  auto& client = cluster.add_client();
  const auto r = cluster.submit_and_run(client, "w");
  // Progress may require a view change away from the Byzantine leader; the
  // result, when present, is never the garbage string.
  if (r.has_value()) {
    EXPECT_NE(*r, "garbage");
  }
}

TEST(MinBft, DuplicateRequestsExecuteOnce) {
  MinBftCluster cluster(3, fast_config(1), 6, fast_link());
  auto& client = cluster.add_client();
  const auto r1 = cluster.submit_and_run(client, "same-op");
  ASSERT_TRUE(r1.has_value());
  // Client retransmission path: send the identical request object again.
  cluster.run_for(3.0);  // allow retry timers to fire and drain
  EXPECT_EQ(cluster.replica(0).service().log().size(), 1u);
}

TEST(MinBft, CheckpointsGarbageCollect) {
  MinBftConfig cfg = fast_config(1);
  cfg.checkpoint_period = 5;
  MinBftCluster cluster(3, cfg, 7, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 17; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "o" + std::to_string(i)));
  }
  cluster.run_for(1.0);
  // All replicas should have advanced their executed counts.
  for (ReplicaId id : cluster.replica_ids()) {
    EXPECT_EQ(cluster.replica(id).executed_count(), 17u);
  }
}

// ---------------------------------------------------------------------------
// MinBFT: view change
// ---------------------------------------------------------------------------

TEST(MinBft, ViewChangeOnCrashedLeader) {
  MinBftCluster cluster(3, fast_config(1), 8, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "before-crash"));
  cluster.crash_replica(0);  // view-0 leader
  // Submit; the remaining replicas must time out and rotate the view.
  std::optional<std::string> result;
  client.submit("after-crash", [&](std::uint64_t, const std::string& r,
                                   double) { result = r; });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(cluster.replica(1).service().log().size(), 2u);
  EXPECT_GT(cluster.replica(1).view(), 0u);
}

TEST(MinBft, ViewChangePreservesExecutedPrefix) {
  MinBftCluster cluster(5, fast_config(2), 9, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "pre" + std::to_string(i)));
  }
  const auto log_before = cluster.replica(1).service().log();
  cluster.crash_replica(0);
  std::optional<std::string> result;
  client.submit("post", [&](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  cluster.run_for(30.0);
  ASSERT_TRUE(result.has_value());
  const auto& log_after = cluster.replica(1).service().log();
  ASSERT_GE(log_after.size(), log_before.size());
  for (std::size_t i = 0; i < log_before.size(); ++i) {
    EXPECT_EQ(log_after[i], log_before[i]) << "prefix diverged at " << i;
  }
}

// ---------------------------------------------------------------------------
// MinBFT: reconfiguration and recovery (Fig. 17 d-f)
// ---------------------------------------------------------------------------

TEST(MinBft, JoinExtendsMembershipAndTransfersState) {
  MinBftCluster cluster(3, fast_config(1), 10, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "w" + std::to_string(i)));
  }
  const ReplicaId joined = cluster.join_new_replica();
  EXPECT_EQ(cluster.replica(0).membership().size(), 4u);
  // The joiner caught up via state transfer (the join op itself is the 5th).
  EXPECT_GE(cluster.replica(joined).executed_count(), 4u);
  // And participates in new operations.
  ASSERT_TRUE(cluster.submit_and_run(client, "after-join"));
  cluster.run_for(1.0);
  EXPECT_EQ(cluster.replica(joined).service().log().back(), "after-join");
}

TEST(MinBft, EvictShrinksMembership) {
  MinBftCluster cluster(4, fast_config(1), 11, fast_link());
  auto& client = cluster.add_client();
  ASSERT_TRUE(cluster.submit_and_run(client, "w0"));
  cluster.evict_replica(3);
  EXPECT_FALSE(cluster.has_replica(3));
  EXPECT_EQ(cluster.replica(0).membership().size(), 3u);
  ASSERT_TRUE(cluster.submit_and_run(client, "w1"));
}

TEST(MinBft, RecoveryReplacesCompromisedReplica) {
  MinBftCluster cluster(3, fast_config(1), 12, fast_link());
  auto& client = cluster.add_client();
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(cluster.submit_and_run(client, "w" + std::to_string(i)));
  }
  cluster.replica(2).set_mode(ByzantineMode::Random);
  cluster.recover_replica(2);  // fresh container + state transfer (Fig. 17d)
  EXPECT_EQ(cluster.replica(2).mode(), ByzantineMode::Honest);
  EXPECT_GE(cluster.replica(2).executed_count(), 3u);
  ASSERT_TRUE(cluster.submit_and_run(client, "after-recovery"));
  cluster.run_for(1.0);
  EXPECT_EQ(cluster.replica(2).service().log().back(), "after-recovery");
}

TEST(MinBft, ThroughputDecreasesWithClusterSize) {
  // The Fig. 10 shape: more replicas => more crypto+messages per request =>
  // lower throughput.
  auto throughput = [](int n) {
    MinBftCluster cluster(n, fast_config((n - 1) / 2), 13, fast_link());
    auto& client = cluster.add_client();
    const double start = cluster.network().now();
    int completed = 0;
    for (int i = 0; i < 30; ++i) {
      if (cluster.submit_and_run(client, "op" + std::to_string(i))) {
        ++completed;
      }
    }
    const double elapsed = cluster.network().now() - start;
    return completed / elapsed;
  };
  const double t3 = throughput(3);
  const double t9 = throughput(9);
  EXPECT_GT(t3, t9);
}

// ---------------------------------------------------------------------------
// Raft
// ---------------------------------------------------------------------------

raft::RaftConfig raft_config() {
  raft::RaftConfig cfg;
  cfg.election_timeout_min = 0.15;
  cfg.election_timeout_max = 0.30;
  cfg.heartbeat_interval = 0.05;
  return cfg;
}

TEST(Raft, ElectsSingleLeader) {
  raft::RaftCluster cluster(5, raft_config(), 21, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  int leaders = 0;
  for (auto id : cluster.node_ids()) {
    if (cluster.node(id).role() == raft::Role::Leader) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
}

TEST(Raft, ReplicatesAndCommits) {
  raft::RaftCluster cluster(3, raft_config(), 22, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  std::vector<std::string> applied;
  cluster.node(*leader).set_apply_handler(
      [&](raft::Index, const std::string& cmd) { applied.push_back(cmd); });
  ASSERT_TRUE(cluster.node(*leader).propose("set-replication=5").has_value());
  ASSERT_TRUE(cluster.node(*leader).propose("add-node=7").has_value());
  cluster.run_for(1.0);
  ASSERT_EQ(applied.size(), 2u);
  EXPECT_EQ(applied[0], "set-replication=5");
  // Followers hold identical committed prefixes.
  for (auto id : cluster.node_ids()) {
    EXPECT_GE(cluster.node(id).commit_index(), 2u);
    EXPECT_EQ(cluster.node(id).log()[0].command, "set-replication=5");
  }
}

TEST(Raft, FollowerRejectsProposals) {
  raft::RaftCluster cluster(3, raft_config(), 23, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  for (auto id : cluster.node_ids()) {
    if (id != *leader) {
      EXPECT_FALSE(cluster.node(id).propose("nope").has_value());
    }
  }
}

TEST(Raft, SurvivesLeaderCrash) {
  raft::RaftCluster cluster(5, raft_config(), 24, fast_link());
  const auto first = cluster.await_leader();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(cluster.node(*first).propose("before").has_value());
  cluster.run_for(1.0);
  cluster.node(*first).crash();
  const auto second = cluster.await_leader();
  ASSERT_TRUE(second.has_value());
  EXPECT_NE(*second, *first);
  ASSERT_TRUE(cluster.node(*second).propose("after").has_value());
  cluster.run_for(1.0);
  // The new leader's log contains both entries.
  const auto& log = cluster.node(*second).log();
  ASSERT_GE(log.size(), 2u);
  EXPECT_EQ(log[0].command, "before");
  EXPECT_EQ(log[1].command, "after");
}

TEST(Raft, MinorityPartitionCannotCommit) {
  raft::RaftCluster cluster(5, raft_config(), 25, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  // Isolate the leader with one follower (minority).
  std::vector<raft::NodeId> minority{*leader};
  std::vector<raft::NodeId> majority;
  for (auto id : cluster.node_ids()) {
    if (id == *leader) continue;
    if (minority.size() < 2) {
      minority.push_back(id);
    } else {
      majority.push_back(id);
    }
  }
  cluster.network().partition(
      {{minority.begin(), minority.end()}, {majority.begin(), majority.end()}});
  const auto old_commit = cluster.node(*leader).commit_index();
  cluster.node(*leader).propose("stale");
  cluster.run_for(2.0);
  EXPECT_EQ(cluster.node(*leader).commit_index(), old_commit)
      << "minority leader must not commit";
  // The majority elects a fresh leader that can commit.
  std::optional<raft::NodeId> new_leader;
  for (auto id : majority) {
    if (cluster.node(id).role() == raft::Role::Leader) new_leader = id;
  }
  ASSERT_TRUE(new_leader.has_value());
  ASSERT_TRUE(cluster.node(*new_leader).propose("fresh").has_value());
  cluster.run_for(2.0);
  EXPECT_GT(cluster.node(*new_leader).commit_index(), old_commit);
}

TEST(Raft, RestartedNodeRejoins) {
  raft::RaftCluster cluster(3, raft_config(), 26, fast_link());
  const auto leader = cluster.await_leader();
  ASSERT_TRUE(leader.has_value());
  // Crash a follower, commit entries, restart it, verify catch-up.
  raft::NodeId follower = 0;
  for (auto id : cluster.node_ids()) {
    if (id != *leader) {
      follower = id;
      break;
    }
  }
  cluster.node(follower).crash();
  ASSERT_TRUE(cluster.node(*leader).propose("while-down").has_value());
  cluster.run_for(1.0);
  cluster.node(follower).restart();
  cluster.run_for(2.0);
  ASSERT_GE(cluster.node(follower).log().size(), 1u);
  EXPECT_EQ(cluster.node(follower).log()[0].command, "while-down");
  EXPECT_GE(cluster.node(follower).commit_index(), 1u);
}

}  // namespace
}  // namespace tolerance::consensus
