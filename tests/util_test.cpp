#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/rng.hpp"
#include "tolerance/util/stopwatch.hpp"
#include "tolerance/util/table.hpp"

namespace tolerance {
namespace {

TEST(Ensure, ThrowsWithContext) {
  try {
    TOL_ENSURE(1 == 2, "one is not two");
    FAIL() << "expected throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("one is not two"), std::string::npos);
  }
}

TEST(Ensure, PassesSilently) { TOL_ENSURE(true, "never"); }

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(2.0, 3.0);
    EXPECT_GE(u, 2.0);
    EXPECT_LT(u, 3.0);
  }
}

TEST(Rng, UniformIntCoversRange) {
  Rng rng(7);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(5));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(3);
  EXPECT_FALSE(rng.bernoulli(0.0));
  EXPECT_TRUE(rng.bernoulli(1.0));
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.bernoulli(0.25);
  EXPECT_NEAR(hits / 10000.0, 0.25, 0.02);
}

TEST(Rng, BinomialMean) {
  Rng rng(11);
  double total = 0;
  for (int i = 0; i < 5000; ++i) total += rng.binomial(10, 0.3);
  EXPECT_NEAR(total / 5000.0, 3.0, 0.1);
}

TEST(Rng, BetaInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const double b = rng.beta(0.7, 3.0);
    EXPECT_GT(b, 0.0);
    EXPECT_LT(b, 1.0);
  }
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(9);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.categorical(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(counts[2] / 20000.0, 0.75, 0.02);
}

TEST(Rng, CategoricalRejectsDegenerate) {
  Rng rng(1);
  std::vector<double> zero{0.0, 0.0};
  EXPECT_THROW(rng.categorical(zero), std::invalid_argument);
  std::vector<double> neg{1.0, -0.5};
  EXPECT_THROW(rng.categorical(neg), std::invalid_argument);
}

TEST(Rng, SplitProducesIndependentStreams) {
  Rng parent(42);
  Rng child = parent.split();
  // Child stream differs from the (advanced) parent stream.
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) {
    if (parent.uniform() != child.uniform()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  double sink = 0.0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  EXPECT_GT(sink, 0.0);
  const double s = sw.elapsed_seconds();
  EXPECT_GE(s, 0.0);
  EXPECT_GE(sw.elapsed_minutes(), s / 60.0);  // monotone clock
  sw.reset();
  EXPECT_LE(sw.elapsed_seconds(), s + 1.0);
}

TEST(ConsoleTable, PrintsAlignedRows) {
  ConsoleTable t({"a", "bb"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("333"), std::string::npos);
  EXPECT_NE(out.find("bb"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(ConsoleTable, RejectsWrongArity) {
  ConsoleTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), std::invalid_argument);
}

TEST(ConsoleTable, Formatters) {
  EXPECT_EQ(ConsoleTable::num(1.23456, 2), "1.23");
  EXPECT_EQ(ConsoleTable::mean_pm(0.99, 0.01), "0.99 ±0.01");
}

}  // namespace
}  // namespace tolerance
