#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/pomdp/assumptions.hpp"
#include "tolerance/solvers/bayesopt.hpp"
#include "tolerance/solvers/cem.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/de.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/solvers/objective.hpp"
#include "tolerance/solvers/spsa.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

namespace tolerance::solvers {
namespace {

using pomdp::NodeAction;
using pomdp::NodeModel;
using pomdp::NodeParams;

NodeParams paper_params() {
  NodeParams p;
  p.p_attack = 0.1;
  p.p_crash_healthy = 1e-5;
  p.p_crash_compromised = 1e-3;
  p.p_update = 2e-2;
  p.eta = 2.0;
  return p;
}

// ---------------------------------------------------------------------------
// Threshold policies (Alg. 1)
// ---------------------------------------------------------------------------

TEST(ThresholdPolicy, DimensionMatchesAlgorithmOne) {
  EXPECT_EQ(ThresholdPolicy::dimension(kNoBtr), 1);
  EXPECT_EQ(ThresholdPolicy::dimension(5), 4);
  EXPECT_EQ(ThresholdPolicy::dimension(25), 24);
  EXPECT_EQ(ThresholdPolicy::dimension(1), 1);
}

TEST(ThresholdPolicy, BtrForcesRecoveryAtCycleBoundary) {
  const ThresholdPolicy policy({1.0, 1.0, 1.0, 1.0}, 5);
  // Thresholds of 1.0 mean "never recover voluntarily", so only the BTR
  // constraint (6b) fires: at t = 5, 10, 15, ...
  for (int t = 1; t <= 20; ++t) {
    const auto a = policy.action(0.5, t);
    if (t % 5 == 0) {
      EXPECT_EQ(a, NodeAction::Recover) << "t=" << t;
    } else {
      EXPECT_EQ(a, NodeAction::Wait) << "t=" << t;
    }
  }
}

TEST(ThresholdPolicy, ThresholdRule) {
  const ThresholdPolicy policy = ThresholdPolicy::constant(0.7);
  EXPECT_EQ(policy.action(0.69, 1), NodeAction::Wait);
  EXPECT_EQ(policy.action(0.70, 1), NodeAction::Recover);
  EXPECT_EQ(policy.action(0.71, 100), NodeAction::Recover);
}

TEST(ThresholdPolicy, PerStepThresholdsWithinCycle) {
  const ThresholdPolicy policy({0.2, 0.9}, 3);
  // Cycle position 1 uses theta_1 = 0.2; position 2 uses theta_2 = 0.9;
  // position 3 is forced.
  EXPECT_EQ(policy.action(0.5, 1), NodeAction::Recover);
  EXPECT_EQ(policy.action(0.5, 2), NodeAction::Wait);
  EXPECT_EQ(policy.action(0.5, 3), NodeAction::Recover);
  EXPECT_EQ(policy.action(0.5, 4), NodeAction::Recover);  // next cycle pos 1
}

TEST(ThresholdPolicy, RejectsWrongDimension) {
  EXPECT_THROW(ThresholdPolicy({0.5, 0.5}, 5), std::invalid_argument);
  EXPECT_THROW(ThresholdPolicy({1.5}, kNoBtr), std::invalid_argument);
}

TEST(RecoveryObjective, ExtremesAreCostly) {
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  RecoveryObjective::Options opts;
  opts.episodes = 30;
  opts.horizon = 200;
  const RecoveryObjective objective(model, obs, kNoBtr, opts);
  const double never = objective({1.0});
  const double always = objective({0.0});
  const double sensible = objective({0.8});
  EXPECT_LT(sensible, never);
  EXPECT_LT(sensible, always);
}

TEST(RecoveryObjective, DeterministicUnderCommonRandomNumbers) {
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const RecoveryObjective objective(model, obs, 15, {});
  const std::vector<double> theta(ThresholdPolicy::dimension(15), 0.7);
  EXPECT_DOUBLE_EQ(objective(theta), objective(theta));
}

// ---------------------------------------------------------------------------
// Black-box optimizers on analytic test functions
// ---------------------------------------------------------------------------

double sphere(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) s += (v - 0.3) * (v - 0.3);
  return s;
}

double rastrigin_like(const std::vector<double>& x) {
  double s = 0.0;
  for (double v : x) {
    const double z = (v - 0.6) * 6.0;
    s += z * z - 3.0 * std::cos(2.0 * M_PI * z) + 3.0;
  }
  return s;
}

TEST(Cem, FindsSphereMinimum) {
  Rng rng(1);
  const auto res = CrossEntropyMethod().optimize(sphere, 4, 3000, rng);
  EXPECT_LT(res.best_value, 1e-3);
  for (double v : res.best_x) EXPECT_NEAR(v, 0.3, 0.05);
  EXPECT_LE(res.evaluations, 3000);
  EXPECT_FALSE(res.history.empty());
}

TEST(De, FindsSphereMinimum) {
  // The Table 8 configuration (K=10, F=0.2, CR=0.7) converges steadily but
  // not fast; test it on a low-dimensional sphere where it is reliable.
  Rng rng(2);
  const auto res = DifferentialEvolution().optimize(sphere, 2, 4000, rng);
  EXPECT_LT(res.best_value, 1e-2);
  for (double v : res.best_x) EXPECT_NEAR(v, 0.3, 0.1);
}

TEST(De, HandlesMultimodalObjective) {
  Rng rng(3);
  const auto res = DifferentialEvolution().optimize(rastrigin_like, 3, 6000, rng);
  EXPECT_LT(res.best_value, 0.5);
}

TEST(Cem, HistoryIsMonotoneNonIncreasing) {
  Rng rng(4);
  const auto res = CrossEntropyMethod().optimize(sphere, 5, 2000, rng);
  for (std::size_t i = 1; i < res.history.size(); ++i) {
    EXPECT_LE(res.history[i].best_value, res.history[i - 1].best_value);
  }
}

TEST(Spsa, PaperHyperparametersStruggle) {
  // Table 8's c = 10 perturbation is far too large for the unit cube; the
  // paper reports SPSA failing to converge.  Verify it underperforms CEM on
  // the same budget (this is a reproduction of a negative result).
  Rng rng_a(5);
  Rng rng_b(5);
  const auto spsa = Spsa().optimize(rastrigin_like, 4, 2000, rng_a);
  const auto cem = CrossEntropyMethod().optimize(rastrigin_like, 4, 2000, rng_b);
  EXPECT_GE(spsa.best_value, cem.best_value - 1e-9);
}

TEST(Spsa, SaneGainsConverge) {
  Spsa::Options opts;
  opts.c = 0.1;
  opts.a = 0.2;
  opts.big_a = 10.0;
  Rng rng(6);
  const auto res = Spsa(opts).optimize(sphere, 3, 4000, rng);
  EXPECT_LT(res.best_value, 0.05);
}

TEST(BayesOpt, FindsSphereMinimumWithFewEvaluations) {
  Rng rng(7);
  BayesianOptimization::Options opts;
  const auto res = BayesianOptimization(opts).optimize(sphere, 2, 60, rng);
  EXPECT_LT(res.best_value, 0.02);
  EXPECT_LE(res.evaluations, 60);
}

TEST(AllOptimizers, RespectEvaluationBudget) {
  Rng rng(8);
  for (const ParametricOptimizer* opt :
       std::initializer_list<const ParametricOptimizer*>{}) {
    (void)opt;
  }
  const CrossEntropyMethod cem;
  const DifferentialEvolution de;
  const Spsa spsa;
  const BayesianOptimization bo;
  const std::vector<const ParametricOptimizer*> all{&cem, &de, &spsa, &bo};
  for (const auto* opt : all) {
    long count = 0;
    const ObjectiveFn counted = [&count](const std::vector<double>& x) {
      ++count;
      return sphere(x);
    };
    const auto res = opt->optimize(counted, 3, 50, rng);
    EXPECT_LE(count, 51) << opt->name();
    EXPECT_EQ(res.evaluations, count) << opt->name();
  }
}

// ---------------------------------------------------------------------------
// Incremental pruning
// ---------------------------------------------------------------------------

TEST(Prune, KeepsOnlyLowerEnvelope) {
  std::vector<AlphaVector> alphas{
      {0.0, 1.0, NodeAction::Wait},   // line b
      {1.0, 0.0, NodeAction::Recover},// line 1-b
      {2.0, 2.0, NodeAction::Wait},   // dominated everywhere
      {0.5, 0.5, NodeAction::Wait},   // useful in the middle
  };
  const auto kept = prune(alphas);
  // The constant 0.5 line touches the envelope only at the single point
  // b = 0.5, so 2 or 3 survivors are both valid; the dominated line is gone.
  EXPECT_GE(kept.size(), 2u);
  EXPECT_LE(kept.size(), 3u);
  for (const auto& a : kept) {
    EXPECT_FALSE(a.v_healthy == 2.0 && a.v_compromised == 2.0);
  }
  // Envelope values must be unchanged by pruning.
  for (double b = 0.0; b <= 1.0; b += 0.01) {
    EXPECT_NEAR(envelope_value(kept, b), envelope_value(alphas, b), 1e-12);
  }
}

TEST(Prune, ParallelLinesKeepLowest) {
  std::vector<AlphaVector> alphas{
      {1.0, 2.0, NodeAction::Wait},
      {0.5, 1.5, NodeAction::Recover},  // same slope, lower
  };
  const auto kept = prune(alphas);
  ASSERT_EQ(kept.size(), 1u);
  EXPECT_DOUBLE_EQ(kept[0].v_healthy, 0.5);
}

TEST(Prune, LpDominationAgreesWithHullSweep) {
  // Cross-check mode: Lark's LP-domination pruning (running on the sparse
  // revised simplex) must keep exactly the hull sweep's survivors.
  Rng rng(515);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<AlphaVector> alphas;
    const int n = 3 + rng.uniform_int(10);
    for (int i = 0; i < n; ++i) {
      alphas.push_back({rng.uniform(0.0, 2.0), rng.uniform(0.0, 2.0),
                        rng.bernoulli(0.5) ? NodeAction::Wait
                                           : NodeAction::Recover});
    }
    const auto sweep = prune(alphas);
    const auto lark = prune_lp(alphas);
    ASSERT_EQ(sweep.size(), lark.size()) << "trial " << trial;
    // Same envelope either way.
    for (int g = 0; g <= 100; ++g) {
      const double b = g / 100.0;
      EXPECT_NEAR(envelope_value(sweep, b), envelope_value(lark, b), 1e-9)
          << "trial " << trial << " b=" << b;
    }
  }
}

TEST(Prune, MaxAlphaCapIsConfigurable) {
  // A dense fan of tangent lines to a smooth convex function: every line is
  // on the envelope, so pruning keeps all n until the cap bites.
  std::vector<AlphaVector> alphas;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    // Tangent of the concave f(b) = -(b - 1/2)^2 at t = i/(n-1): every
    // tangent attains the lower envelope on its own segment, so all n
    // survive exact pruning and only the cap shrinks the set.
    const double t = static_cast<double>(i) / (n - 1);
    const double ft = -(t - 0.5) * (t - 0.5);
    const double dft = -2.0 * (t - 0.5);
    alphas.push_back({ft - dft * t, ft + dft * (1.0 - t), NodeAction::Wait});
  }
  const auto def = prune(alphas);
  EXPECT_LE(def.size(), 2u * 64u + 1u);
  const auto small = prune(alphas, 1e-12, 8);
  EXPECT_LE(small.size(), 2u * 8u + 1u);
  EXPECT_LT(small.size(), def.size());
  // The capped set still tracks the envelope to bounded error.
  for (int g = 0; g <= 100; ++g) {
    const double b = g / 100.0;
    EXPECT_NEAR(envelope_value(small, b), envelope_value(alphas, b), 0.05);
  }
}

TEST(IncrementalPruning, MergeBackupMatchesReferenceBackup) {
  // The breakpoint-merge cross-sum must reproduce the pre-overhaul
  // enumerate-and-prune backup: identical envelopes (the Fig. 4 alpha-set
  // regression) at every stage of the cycle solve.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  IpOptions reference;
  reference.reference_backup = true;
  const auto ref = IncrementalPruning::solve_cycle(model, obs, 40, reference);
  const auto fast = IncrementalPruning::solve_cycle(model, obs, 40);
  ASSERT_EQ(ref.value_functions.size(), fast.value_functions.size());
  EXPECT_NEAR(ref.average_cost, fast.average_cost, 1e-12);
  for (std::size_t t = 0; t < ref.value_functions.size(); ++t) {
    ASSERT_EQ(ref.value_functions[t].size(), fast.value_functions[t].size())
        << "stage " << t;
    for (int g = 0; g <= 256; ++g) {
      const double b = g / 256.0;
      EXPECT_NEAR(envelope_value(ref.value_functions[t], b),
                  envelope_value(fast.value_functions[t], b), 1e-12)
          << "stage " << t << " b=" << b;
    }
  }
}

TEST(IncrementalPruning, Fig4AlphaSetRegressionPin) {
  // Pins the Fig. 4 solve (paper parameters, DeltaR = 100) across solver
  // rewrites: cycle-average cost, recovery threshold and alpha-set size.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = IncrementalPruning::solve_cycle(model, obs, 100);
  EXPECT_NEAR(result.average_cost, 0.294624995, 1e-6);
  EXPECT_NEAR(IncrementalPruning::recovery_threshold(result.value_functions[0]),
              0.278464678, 1e-6);
  EXPECT_EQ(result.value_functions[0].size(), 38u);
}

TEST(IpParallelRunner, BackupsBitIdenticalAcrossThreadCounts) {
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  IpOptions serial;
  serial.threads = 1;
  IpOptions parallel;
  parallel.threads = 4;
  const auto a = IncrementalPruning::solve_cycle(model, obs, 30, serial);
  const auto b = IncrementalPruning::solve_cycle(model, obs, 30, parallel);
  ASSERT_EQ(a.value_functions.size(), b.value_functions.size());
  for (std::size_t t = 0; t < a.value_functions.size(); ++t) {
    ASSERT_EQ(a.value_functions[t].size(), b.value_functions[t].size());
    for (std::size_t i = 0; i < a.value_functions[t].size(); ++i) {
      EXPECT_EQ(a.value_functions[t][i].v_healthy,
                b.value_functions[t][i].v_healthy);
      EXPECT_EQ(a.value_functions[t][i].v_compromised,
                b.value_functions[t][i].v_compromised);
      EXPECT_EQ(static_cast<int>(a.value_functions[t][i].action),
                static_cast<int>(b.value_functions[t][i].action));
    }
  }
}

TEST(IncrementalPruning, RecoveryThresholdMatchesGridScanOracle) {
  // The hull-breakpoint threshold must agree with the old grid-scan +
  // bisection oracle on solved value functions.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = IncrementalPruning::solve_cycle(model, obs, 15);
  for (const auto& v : result.value_functions) {
    const double fast = IncrementalPruning::recovery_threshold(v);
    // Oracle: coarse scan for the first Recover point, bisection refine.
    const int grid = 4096;
    double lo = -1.0;
    for (int g = 0; g <= grid; ++g) {
      const double b = static_cast<double>(g) / grid;
      if (envelope_action(v, b) == NodeAction::Recover) {
        lo = b;
        break;
      }
    }
    double oracle = 1.0;
    if (lo == 0.0) {
      oracle = 0.0;
    } else if (lo > 0.0) {
      double left = lo - 1.0 / grid;
      double right = lo;
      for (int i = 0; i < 50; ++i) {
        const double mid = 0.5 * (left + right);
        (envelope_action(v, mid) == NodeAction::Recover ? right : left) = mid;
      }
      oracle = right;
    }
    EXPECT_NEAR(fast, oracle, 1e-6);
  }
}

TEST(IncrementalPruning, ValueFunctionIsConcaveEnvelope) {
  // For a minimization POMDP the value function (lower envelope of lines) is
  // concave; check midpoint concavity on the first-stage value (Fig. 4).
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = IncrementalPruning::solve_cycle(model, obs, 10);
  const auto& v1 = result.value_functions[0];
  EXPECT_FALSE(v1.empty());
  for (double b = 0.1; b <= 0.9; b += 0.1) {
    const double mid = envelope_value(v1, b);
    const double avg = 0.5 * (envelope_value(v1, b - 0.1) +
                              envelope_value(v1, b + 0.1));
    EXPECT_GE(mid, avg - 1e-9) << "b=" << b;
  }
}

TEST(IncrementalPruning, OptimalPolicyHasThresholdStructure) {
  // Theorem 1: for every stage the action is Wait below a threshold and
  // Recover above it.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = IncrementalPruning::solve_cycle(model, obs, 15);
  for (std::size_t t = 0; t + 1 < result.value_functions.size(); ++t) {
    const auto& v = result.value_functions[t];
    bool seen_recover = false;
    for (int g = 0; g <= 200; ++g) {
      const double b = g / 200.0;
      const bool recover = envelope_action(v, b) == NodeAction::Recover;
      if (seen_recover) {
        EXPECT_TRUE(recover) << "t=" << t << " b=" << b
                             << ": Wait region above Recover region";
      }
      seen_recover = seen_recover || recover;
    }
  }
}

TEST(IncrementalPruning, ThresholdsNonDecreasingWithinCycle) {
  // Corollary 1: alpha*_{t+1} >= alpha*_t within a recovery cycle.  The
  // tolerance absorbs the bounded-error pruning noise (~1e-5); the
  // structural claim is that thresholds never drop materially and rise
  // sharply towards the forced recovery at the end of the cycle.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result = IncrementalPruning::solve_cycle(model, obs, 20);
  double prev = 0.0;
  double first = -1.0, last = -1.0;
  for (std::size_t t = 0; t + 1 < result.value_functions.size(); ++t) {
    const double th =
        IncrementalPruning::recovery_threshold(result.value_functions[t]);
    if (first < 0.0) first = th;
    last = th;
    EXPECT_GE(th, prev - 1e-3) << "t=" << t;
    prev = th;
  }
  EXPECT_GT(last, first + 0.05) << "thresholds must rise within the cycle";
}

TEST(IncrementalPruning, DiscountedSolveConverges) {
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto result =
      IncrementalPruning::solve_discounted(model, obs, 0.95, 1e-7, 5000);
  EXPECT_TRUE(result.converged);
  const double th =
      IncrementalPruning::recovery_threshold(result.value_functions[0]);
  EXPECT_GT(th, 0.05);
  EXPECT_LT(th, 1.0);
}

TEST(IncrementalPruning, MatchesBestThresholdPolicy) {
  // The DP value at b1 should not exceed (up to MC noise) the cost of the
  // best constant-threshold policy found by grid search: IP is optimal.
  const NodeModel model(paper_params());
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const int delta_r = 8;
  const auto ip = IncrementalPruning::solve_cycle(model, obs, delta_r);

  RecoveryObjective::Options opts;
  opts.episodes = 200;
  opts.horizon = 200;
  const RecoveryObjective objective(model, obs, delta_r, opts);
  double best = std::numeric_limits<double>::infinity();
  for (double th = 0.0; th <= 1.0; th += 0.1) {
    best = std::min(best,
                    objective(std::vector<double>(
                        ThresholdPolicy::dimension(delta_r), th)));
  }
  EXPECT_LT(ip.average_cost, best + 0.05);
}

// ---------------------------------------------------------------------------
// CMDP LP (Alg. 2)
// ---------------------------------------------------------------------------

TEST(CmdpLp, WarmStartReusesPreviousBasis) {
  const auto cmdp = pomdp::SystemCmdp::parametric(24, 3, 0.9, 0.95, 0.3);
  const auto cold = solve_replication_lp(cmdp);
  ASSERT_EQ(cold.status, lp::LpStatus::Optimal);
  ASSERT_FALSE(cold.basis.empty());
  // Re-solve the same CMDP from the optimal basis: no pivots needed.
  const auto warm = solve_replication_lp(cmdp, {}, &cold.basis);
  ASSERT_EQ(warm.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(warm.average_cost, cold.average_cost, 1e-9);
  EXPECT_NEAR(warm.availability, cold.availability, 1e-9);
  EXPECT_LE(warm.lp_iterations, 3);
  EXPECT_NE(warm.warm_start, lp::WarmStart::None);
  // Epsilon_A sweep re-solve from the same basis must equal a cold solve.
  const auto cmdp2 = pomdp::SystemCmdp::parametric(24, 3, 0.93, 0.95, 0.3);
  const auto swept = solve_replication_lp(cmdp2, {}, &cold.basis);
  const auto swept_cold = solve_replication_lp(cmdp2);
  ASSERT_EQ(swept.status, lp::LpStatus::Optimal);
  EXPECT_NEAR(swept.average_cost, swept_cold.average_cost, 1e-7);
  EXPECT_GE(swept.availability, 0.93 - 1e-6);
}

TEST(CmdpLp, DenseFallbackAgreesWithRevisedCore) {
  for (const int smax : {8, 13, 24}) {
    const auto cmdp = pomdp::SystemCmdp::parametric(smax, 3, 0.9, 0.95, 0.3);
    lp::SimplexSolver::Options dense;
    dense.dense_fallback = true;
    const auto a = solve_replication_lp(cmdp, dense);
    const auto b = solve_replication_lp(cmdp);
    ASSERT_EQ(a.status, lp::LpStatus::Optimal) << "smax=" << smax;
    ASSERT_EQ(b.status, lp::LpStatus::Optimal) << "smax=" << smax;
    EXPECT_NEAR(a.average_cost, b.average_cost, 1e-8 * (1.0 + a.average_cost))
        << "smax=" << smax;
    EXPECT_NEAR(a.availability, b.availability, 1e-6) << "smax=" << smax;
  }
}

TEST(CmdpLp, SolvesPaperScaleInstance) {
  // smax = 13, f = 3 style instance (Appendix E Fig. 9 parameters scaled).
  const auto cmdp = pomdp::SystemCmdp::parametric(13, 3, 0.9, 0.95, 0.3);
  const auto sol = solve_replication_lp(cmdp);
  ASSERT_EQ(sol.status, lp::LpStatus::Optimal);
  EXPECT_GE(sol.availability, 0.9 - 1e-6);  // (14e)
  EXPECT_GT(sol.average_cost, 0.0);
  // Occupancy sums to one.
  double total = 0.0;
  for (const auto& rho : sol.occupancy) total += rho[0] + rho[1];
  EXPECT_NEAR(total, 1.0, 1e-6);
}

TEST(CmdpLp, OccupancySatisfiesFlowBalance) {
  const auto cmdp = pomdp::SystemCmdp::parametric(8, 2, 0.85, 0.9, 0.4);
  const auto sol = solve_replication_lp(cmdp);
  ASSERT_EQ(sol.status, lp::LpStatus::Optimal);
  for (int s = 0; s < cmdp.num_states(); ++s) {
    double lhs = sol.occupancy[static_cast<std::size_t>(s)][0] +
                 sol.occupancy[static_cast<std::size_t>(s)][1];
    double rhs = 0.0;
    for (int sp = 0; sp < cmdp.num_states(); ++sp) {
      for (int a = 0; a < 2; ++a) {
        rhs += sol.occupancy[static_cast<std::size_t>(sp)]
                            [static_cast<std::size_t>(a)] *
               cmdp.trans(sp, a, s);
      }
    }
    EXPECT_NEAR(lhs, rhs, 1e-6) << "s=" << s;
  }
}

TEST(CmdpLp, PolicyHasThresholdMixtureStructure) {
  // Theorem 2: at most one randomized state; add-probability non-increasing
  // in s (more healthy nodes => less need to add).
  const auto cmdp = pomdp::SystemCmdp::parametric(13, 3, 0.9, 0.95, 0.3);
  const auto sol = solve_replication_lp(cmdp);
  ASSERT_EQ(sol.status, lp::LpStatus::Optimal);
  EXPECT_LE(sol.num_randomized_states, 1);
  for (std::size_t s = 1; s < sol.add_probability.size(); ++s) {
    EXPECT_LE(sol.add_probability[s], sol.add_probability[s - 1] + 1e-6)
        << "s=" << s;
  }
  EXPECT_LE(sol.beta1, sol.beta2);
}

TEST(CmdpLp, InfeasibleWhenAvailabilityTargetImpossible) {
  // A kernel that decays to 0 healthy nodes cannot hit 99.9% availability
  // with f + 1 = 6 healthy required.
  const auto cmdp = pomdp::SystemCmdp::parametric(6, 5, 0.999, 0.05, 0.0, 0.0);
  const auto sol = solve_replication_lp(cmdp);
  EXPECT_EQ(sol.status, lp::LpStatus::Infeasible);
}

TEST(CmdpLp, TighterAvailabilityCostsMore) {
  const auto loose = solve_replication_lp(
      pomdp::SystemCmdp::parametric(10, 3, 0.5, 0.9, 0.3));
  const auto tight = solve_replication_lp(
      pomdp::SystemCmdp::parametric(10, 3, 0.99, 0.9, 0.3));
  ASSERT_EQ(loose.status, lp::LpStatus::Optimal);
  ASSERT_EQ(tight.status, lp::LpStatus::Optimal);
  EXPECT_GE(tight.average_cost, loose.average_cost - 1e-7);
}

TEST(CmdpLp, SimulatedPolicyMeetsConstraintLongRun) {
  // Property: rolling out pi* on the CMDP approximately achieves the
  // LP-predicted availability and cost.
  const auto cmdp = pomdp::SystemCmdp::parametric(10, 3, 0.9, 0.92, 0.35);
  const auto sol = solve_replication_lp(cmdp);
  ASSERT_EQ(sol.status, lp::LpStatus::Optimal);
  Rng rng(11);
  int s = 10;
  const int horizon = 200000;
  long available = 0;
  double cost = 0.0;
  for (int t = 0; t < horizon; ++t) {
    if (cmdp.available(s)) ++available;
    cost += cmdp.cost(s);
    const int a = sol.act(s, rng);
    s = cmdp.step(s, a, rng);
  }
  EXPECT_NEAR(available / static_cast<double>(horizon), sol.availability,
              0.02);
  EXPECT_NEAR(cost / horizon, sol.average_cost, 0.15);
}

}  // namespace
}  // namespace tolerance::solvers
