#include <gtest/gtest.h>

#include <cmath>

#include "tolerance/solvers/nn.hpp"
#include "tolerance/solvers/ppo.hpp"
#include "tolerance/solvers/threshold_policy.hpp"

namespace tolerance::solvers {
namespace {

TEST(Softmax, NormalizesAndOrdersByLogit) {
  const auto p = softmax({1.0, 3.0, 2.0});
  EXPECT_NEAR(p[0] + p[1] + p[2], 1.0, 1e-12);
  EXPECT_GT(p[1], p[2]);
  EXPECT_GT(p[2], p[0]);
}

TEST(Softmax, NumericallyStableForLargeLogits) {
  const auto p = softmax({1000.0, 1000.0});
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_FALSE(std::isnan(p[0]));
}

TEST(Mlp, ForwardShapesAndDeterminism) {
  Rng rng(1);
  Mlp net({3, 8, 2}, rng);
  EXPECT_EQ(net.num_inputs(), 3);
  EXPECT_EQ(net.num_outputs(), 2);
  EXPECT_EQ(net.num_parameters(), 3u * 8u + 8u + 8u * 2u + 2u);
  const auto a = net.forward({0.1, 0.2, 0.3});
  const auto b = net.forward({0.1, 0.2, 0.3});
  EXPECT_EQ(a, b);
}

TEST(Mlp, PredictMatchesForward) {
  // The const inference path (used by thread-safe policies) must agree with
  // the training forward pass exactly.
  Rng rng(7);
  Mlp net({4, 16, 16, 3}, rng);
  Rng input_rng(8);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<double> x;
    for (int i = 0; i < 4; ++i) x.push_back(input_rng.normal());
    EXPECT_EQ(net.predict(x), net.forward(x));
  }
}

TEST(Mlp, GradientMatchesFiniteDifferences) {
  // Loss = 0.5 * ||f(x)||^2; dLoss/dOutput = f(x).  Compare the analytic
  // weight gradient of layer 0 against central finite differences.
  Rng rng(2);
  Mlp net({2, 4, 1}, rng);
  const std::vector<double> x{0.7, -0.3};

  auto loss = [&]() {
    const auto out = net.forward(x);
    return 0.5 * out[0] * out[0];
  };

  net.zero_gradients();
  const auto out = net.forward(x);
  net.backward({out[0]});

  const double eps = 1e-6;
  for (std::size_t idx : {std::size_t{0}, std::size_t{3}, std::size_t{5}}) {
    double& w = net.weights(0)[idx];
    const double orig = w;
    w = orig + eps;
    const double up = loss();
    w = orig - eps;
    const double down = loss();
    w = orig;
    const double numeric = (up - down) / (2 * eps);
    EXPECT_NEAR(net.gradients(0)[idx], numeric, 1e-5)
        << "weight index " << idx;
  }
}

TEST(Mlp, AdamLearnsLinearRegression) {
  // y = 2 x0 - x1 + 0.5; a 1-hidden-layer net should fit it quickly.
  Rng rng(3);
  Mlp net({2, 16, 1}, rng);
  Rng data_rng(4);
  double final_loss = 1e9;
  for (int epoch = 0; epoch < 400; ++epoch) {
    net.zero_gradients();
    double total = 0.0;
    const int batch = 32;
    for (int i = 0; i < batch; ++i) {
      const double x0 = data_rng.uniform(-1.0, 1.0);
      const double x1 = data_rng.uniform(-1.0, 1.0);
      const double target = 2.0 * x0 - x1 + 0.5;
      const auto out = net.forward({x0, x1});
      const double err = out[0] - target;
      total += 0.5 * err * err;
      net.backward({err});
    }
    net.adam_step(1e-2, 1.0 / batch);
    final_loss = total / batch;
  }
  EXPECT_LT(final_loss, 1e-2);
}

TEST(Ppo, ImprovesOverInitialPolicyOnNodeEnv) {
  pomdp::NodeParams params;
  params.p_attack = 0.1;
  params.p_update = 2e-2;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  PpoSolver::Options opts;
  opts.iterations = 10;
  opts.batch_steps = 2000;
  opts.learning_rate = 3e-4;
  PpoSolver ppo(model, obs, kNoBtr, opts);
  Rng rng(5);
  const auto result = ppo.train(rng);
  EXPECT_FALSE(result.history.empty());
  // Best observed batch cost must beat the first-iteration cost (learning)
  // and the no-recovery long-run cost (~ eta * P[C] ~= 1.5).
  EXPECT_LE(result.best_cost, result.history.front().best_value + 1e-9);
  EXPECT_LT(result.best_cost, 1.2);
  // The greedy policy is runnable.
  pomdp::NodeSimulator sim(model, obs);
  Rng eval_rng(6);
  const auto stats = sim.run_many(ppo.policy(), 200, 10, eval_rng);
  EXPECT_LT(stats.avg_cost, 1.6);
}

}  // namespace
}  // namespace tolerance::solvers
