// Parameterized property tests (TEST_P sweeps) over the model/solver
// parameter space: the structural theorems and protocol invariants must hold
// across the grid, not just at the paper's default operating point.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/core/node_controller.hpp"
#include "tolerance/core/system_controller.hpp"
#include "tolerance/markov/chain.hpp"
#include "tolerance/pomdp/assumptions.hpp"
#include "tolerance/pomdp/belief.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/solvers/incremental_pruning.hpp"
#include "tolerance/stats/distributions.hpp"
#include "tolerance/solvers/threshold_policy.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance {
namespace {

// Draw NodeParams uniformly from the admissible box (probabilities kept
// away from the degenerate endpoints so the belief recursion is defined).
pomdp::NodeParams random_node_params(Rng& rng) {
  pomdp::NodeParams params;
  params.p_attack = rng.uniform(1e-4, 0.9);
  params.p_update = rng.uniform(1e-4, 0.5);
  params.p_crash_healthy = rng.uniform(0.0, 0.05);
  params.p_crash_compromised = rng.uniform(0.0, 0.2);
  params.eta = rng.uniform(1.0, 10.0);  // eq. (5) requires eta >= 1
  return params;
}

// ---------------------------------------------------------------------------
// Node model invariants across the (pA, pU) grid
// ---------------------------------------------------------------------------

class NodeModelGrid
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(NodeModelGrid, KernelRowsAreStochasticAndBeliefIsNormalized) {
  const auto [p_attack, p_update] = GetParam();
  pomdp::NodeParams params;
  params.p_attack = p_attack;
  params.p_update = p_update;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);
  for (auto a : {pomdp::NodeAction::Wait, pomdp::NodeAction::Recover}) {
    EXPECT_TRUE(model.transition_matrix(a).is_row_stochastic(1e-12));
  }
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::BeliefUpdater updater(model, obs);
  for (double b : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    for (int o = 0; o <= 10; ++o) {
      for (auto a : {pomdp::NodeAction::Wait, pomdp::NodeAction::Recover}) {
        const double post = updater.update(b, a, o);
        EXPECT_GE(post, 0.0);
        EXPECT_LE(post, 1.0);
      }
    }
  }
}

TEST_P(NodeModelGrid, OptimalCyclePolicyHasThresholdStructure) {
  // Theorem 1 across the grid: for every stage, the exact-DP policy is
  // Wait below some belief and Recover above it (a single switch).
  const auto [p_attack, p_update] = GetParam();
  pomdp::NodeParams params;
  params.p_attack = p_attack;
  params.p_update = p_update;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const auto report = pomdp::check_theorem1(model, obs);
  EXPECT_TRUE(report.d_observations_positive);
  EXPECT_TRUE(report.e_tp2);
  const auto result = solvers::IncrementalPruning::solve_cycle(model, obs, 8);
  for (std::size_t t = 0; t + 1 < result.value_functions.size(); ++t) {
    const auto& v = result.value_functions[t];
    int switches = 0;
    bool prev_recover =
        solvers::envelope_action(v, 0.0) == pomdp::NodeAction::Recover;
    for (int g = 1; g <= 100; ++g) {
      const bool recover =
          solvers::envelope_action(v, g / 100.0) == pomdp::NodeAction::Recover;
      if (recover != prev_recover) ++switches;
      prev_recover = recover;
    }
    EXPECT_LE(switches, 1) << "pA=" << p_attack << " pU=" << p_update
                           << " t=" << t;
    EXPECT_TRUE(prev_recover || switches == 0)
        << "if there is a switch it must end in the Recover region";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AttackUpdateGrid, NodeModelGrid,
    ::testing::Combine(::testing::Values(0.01, 0.05, 0.1, 0.3),
                       ::testing::Values(0.005, 0.02, 0.1)));

// ---------------------------------------------------------------------------
// Belief monotonicity in the observation (TP-2 channel) across priors
// ---------------------------------------------------------------------------

class BeliefPrior : public ::testing::TestWithParam<double> {};

TEST_P(BeliefPrior, PosteriorMonotoneInObservation) {
  const double prior = GetParam();
  pomdp::NodeParams params;
  params.p_attack = 0.1;
  params.p_update = 2e-2;
  params.p_crash_healthy = 1e-5;
  params.p_crash_compromised = 1e-3;
  const pomdp::NodeModel model(params);
  const auto obs = pomdp::BetaBinObservationModel::paper_default();
  const pomdp::BeliefUpdater updater(model, obs);
  double prev = -1.0;
  for (int o = 0; o <= 10; ++o) {
    const double post = updater.update(prior, pomdp::NodeAction::Wait, o);
    EXPECT_GE(post, prev - 1e-12) << "o=" << o << " prior=" << prior;
    prev = post;
  }
}

INSTANTIATE_TEST_SUITE_P(Priors, BeliefPrior,
                         ::testing::Values(0.05, 0.2, 0.5, 0.8, 0.95));

// ---------------------------------------------------------------------------
// CMDP LP across the (smax, f, epsilon_A) grid (Thm. 2 structure)
// ---------------------------------------------------------------------------

class CmdpGrid
    : public ::testing::TestWithParam<std::tuple<int, int, double>> {};

TEST_P(CmdpGrid, SolutionSatisfiesConstraintsAndMixtureStructure) {
  const auto [smax, f, eps_a] = GetParam();
  // Crash-heavy regime so additions matter.
  const auto cmdp = pomdp::SystemCmdp::parametric(smax, f, eps_a, 0.88, 0.05);
  const auto sol = solvers::solve_replication_lp(cmdp);
  if (sol.status != lp::LpStatus::Optimal) {
    // Availability target genuinely unreachable for this (smax, f).
    GTEST_SKIP() << "infeasible instance";
  }
  // (14c): occupancy sums to one.
  double total = 0.0;
  for (const auto& rho : sol.occupancy) total += rho[0] + rho[1];
  EXPECT_NEAR(total, 1.0, 1e-6);
  // (14e): availability constraint.
  EXPECT_GE(sol.availability, eps_a - 1e-6);
  // Basic optimal solutions of a CMDP LP with a single side constraint have
  // at most one randomized state — this holds regardless of Thm. 2.
  EXPECT_LE(sol.num_randomized_states, 1);
  // The threshold (monotone) structure itself is guaranteed only under the
  // Thm. 2 assumptions; check it exactly when they hold.
  if (pomdp::check_theorem2(cmdp).all()) {
    for (std::size_t s = 1; s < sol.add_probability.size(); ++s) {
      EXPECT_LE(sol.add_probability[s], sol.add_probability[s - 1] + 1e-6);
    }
  }
  // (14d): flow balance.
  for (int s = 0; s < cmdp.num_states(); ++s) {
    double lhs = sol.occupancy[static_cast<std::size_t>(s)][0] +
                 sol.occupancy[static_cast<std::size_t>(s)][1];
    double rhs = 0.0;
    for (int sp = 0; sp < cmdp.num_states(); ++sp) {
      for (int a = 0; a < 2; ++a) {
        rhs += sol.occupancy[static_cast<std::size_t>(sp)]
                            [static_cast<std::size_t>(a)] *
               cmdp.trans(sp, a, s);
      }
    }
    EXPECT_NEAR(lhs, rhs, 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SystemGrid, CmdpGrid,
    ::testing::Combine(::testing::Values(6, 10, 16),
                       ::testing::Values(1, 2, 3),
                       ::testing::Values(0.5, 0.9, 0.99)));

// ---------------------------------------------------------------------------
// Threshold-policy BTR compliance across DeltaR
// ---------------------------------------------------------------------------

class BtrGrid : public ::testing::TestWithParam<int> {};

TEST_P(BtrGrid, ForcedRecoveryEveryDeltaRSteps) {
  const int delta_r = GetParam();
  const solvers::ThresholdPolicy policy(
      std::vector<double>(
          static_cast<std::size_t>(solvers::ThresholdPolicy::dimension(delta_r)),
          1.0),
      delta_r);
  int recoveries = 0;
  const int horizon = 10 * delta_r;
  for (int t = 1; t <= horizon; ++t) {
    if (policy.action(0.0, t) == pomdp::NodeAction::Recover) ++recoveries;
  }
  EXPECT_EQ(recoveries, horizon / delta_r) << "(6b) violated";
}

INSTANTIATE_TEST_SUITE_P(DeltaRs, BtrGrid,
                         ::testing::Values(2, 3, 5, 15, 25, 100));

// ---------------------------------------------------------------------------
// MinBFT safety across cluster sizes and Byzantine behaviours
// ---------------------------------------------------------------------------

class MinBftGrid
    : public ::testing::TestWithParam<std::tuple<int, consensus::ByzantineMode>> {};

TEST_P(MinBftGrid, SafetyWithFByzantineReplicas) {
  const auto [n, mode] = GetParam();
  const int f = (n - 1) / 2;
  consensus::MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 10;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  net::LinkConfig link;
  link.loss = 0.0;
  consensus::MinBftCluster cluster(n, cfg, 1234 + n, link);
  // Compromise f replicas (never the view-0 leader, so this tests the
  // steady-state path; leader failure is covered by the view-change tests).
  for (int i = 0; i < f; ++i) {
    cluster.replica(static_cast<consensus::ReplicaId>(n - 1 - i))
        .set_mode(mode);
  }
  auto& client = cluster.add_client();
  for (int r = 0; r < 8; ++r) {
    const auto result =
        cluster.submit_and_run(client, "op" + std::to_string(r));
    ASSERT_TRUE(result.has_value()) << "n=" << n << " request " << r;
    EXPECT_NE(*result, "garbage");
  }
  cluster.run_for(1.0);
  // All honest replicas hold identical logs.
  const auto& reference = cluster.replica(0).service().log();
  EXPECT_EQ(reference.size(), 8u);
  for (int i = 1; i < n - f; ++i) {
    EXPECT_EQ(cluster.replica(static_cast<consensus::ReplicaId>(i))
                  .service()
                  .log(),
              reference)
        << "replica " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ClusterSizes, MinBftGrid,
    ::testing::Combine(::testing::Values(3, 5, 7),
                       ::testing::Values(consensus::ByzantineMode::Silent,
                                         consensus::ByzantineMode::Random)));

// ---------------------------------------------------------------------------
// Reliability function properties across pool sizes (Appendix F)
// ---------------------------------------------------------------------------

class ReliabilityGrid : public ::testing::TestWithParam<int> {};

TEST_P(ReliabilityGrid, MonotoneAndOrderedByPoolSize) {
  const int n1 = GetParam();
  const double p_survive = 0.97;
  const auto chain = markov::binomial_survival_chain(n1, p_survive);
  std::vector<bool> failed(static_cast<std::size_t>(n1) + 1, false);
  for (int s = 0; s <= std::min(3, n1); ++s) {
    failed[static_cast<std::size_t>(s)] = true;
  }
  std::vector<double> init(static_cast<std::size_t>(n1) + 1, 0.0);
  init[static_cast<std::size_t>(n1)] = 1.0;
  const auto r = chain.reliability_curve(init, failed, 60);
  for (std::size_t t = 1; t < r.size(); ++t) {
    EXPECT_LE(r[t], r[t - 1] + 1e-12);
    EXPECT_GE(r[t], -1e-12);
    EXPECT_LE(r[t], 1.0 + 1e-9);  // vecmat rounding can exceed 1 by ulps
  }
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, ReliabilityGrid,
                         ::testing::Values(5, 10, 25, 50));

// ---------------------------------------------------------------------------
// Randomized invariants: the structural properties above must hold not only
// on the hand-picked grid but at random points of the parameter space.
// ---------------------------------------------------------------------------

class RandomizedSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomizedSeed, TransitionMatricesRowStochasticUnderRandomParams) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const pomdp::NodeModel model(random_node_params(rng));
    for (auto a : {pomdp::NodeAction::Wait, pomdp::NodeAction::Recover}) {
      const auto m = model.transition_matrix(a);
      EXPECT_TRUE(m.is_row_stochastic(1e-12)) << "trial " << trial;
      for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
          EXPECT_GE(m(r, c), 0.0) << "trial " << trial;
          EXPECT_LE(m(r, c), 1.0) << "trial " << trial;
        }
      }
    }
  }
}

TEST_P(RandomizedSeed, BeliefUpdatesStayNormalizedAndNonNegative) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const pomdp::NodeModel model(random_node_params(rng));
    const auto obs = pomdp::BetaBinObservationModel::paper_default();
    const pomdp::BeliefUpdater updater(model, obs);
    for (int step = 0; step < 50; ++step) {
      const double b = rng.uniform();
      const auto a = rng.bernoulli(0.5) ? pomdp::NodeAction::Recover
                                        : pomdp::NodeAction::Wait;
      const int o = rng.uniform_int(obs.num_observations());
      const double post = updater.update(b, a, o);
      // The scalar belief is P[C]; normalization of the full posterior over
      // {H, C} is exactly "post lies in [0, 1]" with no NaN leakage.
      EXPECT_TRUE(std::isfinite(post)) << "b=" << b << " o=" << o;
      EXPECT_GE(post, 0.0) << "b=" << b << " o=" << o;
      EXPECT_LE(post, 1.0) << "b=" << b << " o=" << o;
    }
  }
}

TEST_P(RandomizedSeed, ThresholdPolicyMonotoneInBelief) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    const int delta_r = rng.bernoulli(0.3)
                            ? solvers::kNoBtr
                            : rng.uniform_int(2, 30);
    std::vector<double> thetas(
        static_cast<std::size_t>(solvers::ThresholdPolicy::dimension(delta_r)));
    for (auto& theta : thetas) theta = rng.uniform();
    const solvers::ThresholdPolicy policy(thetas, delta_r);
    for (int t = 1; t <= 40; ++t) {
      // Once the policy recovers at some belief it must keep recovering for
      // every larger belief (threshold structure, Theorem 1).
      bool seen_recover = false;
      for (int g = 0; g <= 100; ++g) {
        const bool recover =
            policy.action(g / 100.0, t) == pomdp::NodeAction::Recover;
        if (seen_recover) {
          EXPECT_TRUE(recover) << "trial " << trial << " t=" << t
                               << " belief=" << g / 100.0;
        }
        seen_recover = seen_recover || recover;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSeed,
                         ::testing::Values(1u, 17u, 4242u, 99991u));

// ---------------------------------------------------------------------------
// System-controller invariants under randomized churn (the clamps the
// scenario harness relies on to keep the BFT quorum intact)
// ---------------------------------------------------------------------------

class ChurnSeed : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSeed, RandomChurnNeverEvictsMoreThanFPerCycleNorBelowFloor) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 20; ++trial) {
    const int f = rng.uniform_int(1, 3);
    const int floor = 2 * f + 1;
    const int max_nodes = floor + rng.uniform_int(2, 8);
    int n = rng.uniform_int(floor, max_nodes);
    core::SystemLimits limits;
    limits.f = f;
    limits.min_nodes = floor;
    core::SystemController controller(std::nullopt, max_nodes,
                                      GetParam() ^ static_cast<std::uint64_t>(trial),
                                      limits);
    for (int cycle = 0; cycle < 50; ++cycle) {
      std::vector<double> beliefs;
      std::vector<bool> reported;
      for (int i = 0; i < n; ++i) {
        const bool alive = rng.bernoulli(0.7);
        reported.push_back(alive);
        beliefs.push_back(alive ? rng.uniform() : 1.0);
      }
      const auto decision = controller.step(beliefs, reported);
      // Invariant 1: at most f evictions per cycle.
      EXPECT_LE(decision.evict.size(), static_cast<std::size_t>(f))
          << "f=" << f << " cycle=" << cycle;
      // Invariant 2: the membership never drops below 2f + 1, and every
      // eviction targets a node that actually failed to report.
      for (const int idx : decision.evict) {
        ASSERT_GE(idx, 0);
        ASSERT_LT(idx, n);
        EXPECT_FALSE(reported[static_cast<std::size_t>(idx)]);
      }
      n -= static_cast<int>(decision.evict.size());
      EXPECT_GE(n, floor) << "f=" << f << " cycle=" << cycle;
      // Deferred evictions are exactly the unreported remainder.
      int silent = 0;
      for (const bool r : reported) silent += r ? 0 : 1;
      EXPECT_EQ(decision.deferred_evictions,
                silent - static_cast<int>(decision.evict.size()));
      if (decision.add_node && n < max_nodes) ++n;
    }
  }
}

TEST_P(ChurnSeed, BeliefsStayNormalizedThroughMembershipChanges) {
  Rng rng(GetParam());
  const pomdp::NodeParams params = random_node_params(rng);
  const pomdp::NodeModel model(params);
  Rng fit_rng(GetParam() ^ 0xfee1);
  const auto detector = emulation::fit_pooled_detector(20, 11, 80.0, fit_rng);
  const auto policy = solvers::ThresholdPolicy::constant(0.76);
  std::vector<core::NodeController> controllers;
  for (int i = 0; i < 5; ++i) controllers.emplace_back(model, detector, policy);
  for (int cycle = 0; cycle < 60; ++cycle) {
    // Random membership churn: evictions erase controllers mid-vector,
    // additions append fresh ones — exactly what the scenario loop does.
    if (controllers.size() > 3 && rng.bernoulli(0.2)) {
      controllers.erase(controllers.begin() +
                        rng.uniform_int(static_cast<int>(controllers.size())));
    }
    if (controllers.size() < 9 && rng.bernoulli(0.2)) {
      controllers.emplace_back(model, detector, policy);
      // A fresh node starts at the initial distribution b_1 = pA.
      EXPECT_DOUBLE_EQ(controllers.back().belief(), params.p_attack);
    }
    for (auto& controller : controllers) {
      const double belief = controller.observe(rng.uniform(0.0, 3000.0));
      EXPECT_TRUE(std::isfinite(belief));
      EXPECT_GE(belief, 0.0);
      EXPECT_LE(belief, 1.0);
      controller.commit(rng.bernoulli(0.1) ? pomdp::NodeAction::Recover
                                           : pomdp::NodeAction::Wait);
      EXPECT_GE(controller.belief(), 0.0);
      EXPECT_LE(controller.belief(), 1.0);
    }
  }
}

TEST_P(ChurnSeed, RecoveryResetsBeliefToTheInitialState) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    const pomdp::NodeParams params = random_node_params(rng);
    const pomdp::NodeModel model(params);
    Rng fit_rng(GetParam() ^ static_cast<std::uint64_t>(trial));
    const auto detector =
        emulation::fit_pooled_detector(20, 11, 80.0, fit_rng);
    core::NodeController controller(
        model, detector, solvers::ThresholdPolicy::constant(0.76));
    // Feed heavy alert volumes, then recover: the belief must return to the
    // fresh-node prior b_1 = pA regardless of how high it climbed.
    for (int step = 0; step < 10; ++step) {
      controller.observe(rng.uniform(2000.0, 6000.0));
      controller.commit(pomdp::NodeAction::Wait);
    }
    controller.commit(pomdp::NodeAction::Recover);
    EXPECT_DOUBLE_EQ(controller.belief(), params.p_attack) << "trial " << trial;
    controller.reset();  // the global-level replacement path
    EXPECT_DOUBLE_EQ(controller.belief(), params.p_attack) << "trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSeed,
                         ::testing::Values(3u, 71u, 5555u));

// ---------------------------------------------------------------------------
// Poisson sampler equivalence: PTRS (mean > 10) against the exact pmf
// ---------------------------------------------------------------------------

class PoissonMean : public ::testing::TestWithParam<double> {};

TEST_P(PoissonMean, SamplerMatchesExactPmfByChiSquare) {
  // Distribution-equivalence property for the Rng::poisson dispatch (Knuth
  // product sampler at small means, PTRS rejection above 10): binned
  // chi-square against the exact pmf plus moment checks.  Deterministic
  // seeds — no flake budget.
  const double mean = GetParam();
  const stats::PoissonDist exact(mean);
  Rng rng(0xB0B0 + static_cast<std::uint64_t>(mean * 16.0));
  const int samples = 200000;
  const double sd = std::sqrt(mean);
  const int lo = std::max(0, static_cast<int>(mean - 6.0 * sd));
  const int hi = static_cast<int>(mean + 6.0 * sd) + 1;
  std::vector<double> observed(static_cast<std::size_t>(hi - lo + 2), 0.0);
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < samples; ++i) {
    const int k = rng.poisson(mean);
    ASSERT_GE(k, 0);
    sum += k;
    sum_sq += static_cast<double>(k) * k;
    const int bin = k < lo ? 0 : (k > hi ? hi - lo + 1 : k - lo + 1);
    observed[static_cast<std::size_t>(bin)] += 1.0;
  }
  // Moments: sample mean and variance within 5 standard errors.
  const double m1 = sum / samples;
  const double var = sum_sq / samples - m1 * m1;
  EXPECT_NEAR(m1, mean, 5.0 * sd / std::sqrt(static_cast<double>(samples)));
  EXPECT_NEAR(var, mean, 5.0 * mean * std::sqrt(2.0 / samples) + 0.05 * mean);
  // Chi-square over the central bins plus two merged tails, bins with
  // expected count >= 5 only.
  double chi2 = 0.0;
  int dof = 0;
  double tail_lo_p = 0.0;
  for (int k = 0; k < lo; ++k) tail_lo_p += exact.pmf(k);
  double tail_hi_p = 1.0 - tail_lo_p;
  for (int k = lo; k <= hi; ++k) tail_hi_p -= exact.pmf(k);
  const auto add_bin = [&](double obs, double p) {
    const double expected = p * samples;
    if (expected < 5.0) return;
    chi2 += (obs - expected) * (obs - expected) / expected;
    ++dof;
  };
  add_bin(observed.front(), tail_lo_p);
  for (int k = lo; k <= hi; ++k) {
    add_bin(observed[static_cast<std::size_t>(k - lo + 1)], exact.pmf(k));
  }
  add_bin(observed.back(), std::max(0.0, tail_hi_p));
  // 99.99th percentile of chi2 with ~dof degrees of freedom, generously:
  // dof + 4 * sqrt(2 * dof) + 10.
  EXPECT_LT(chi2, dof + 4.0 * std::sqrt(2.0 * dof) + 10.0)
      << "mean=" << mean << " dof=" << dof;
}

INSTANTIATE_TEST_SUITE_P(Means, PoissonMean,
                         ::testing::Values(4.0, 9.5, 10.5, 25.0, 120.0));

TEST(PoissonSampler, DeterministicGivenSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    const double mean = 0.5 + 3.0 * i;  // crosses the PTRS dispatch at 10
    EXPECT_EQ(a.poisson(mean), b.poisson(mean)) << "i=" << i;
  }
}

}  // namespace
}  // namespace tolerance
