// The wall-clock transport lane: wire codec totality, AsyncRuntime event
// loops (these suites run under TSan in CI), the runtime MinBFT harness,
// and sim-lane determinism of the NetworkProfile catalog under concurrency.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <optional>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "tolerance/consensus/minbft_runtime.hpp"
#include "tolerance/consensus/minbft_workload.hpp"
#include "tolerance/net/async_runtime.hpp"
#include "tolerance/net/profiles.hpp"
#include "tolerance/net/wire.hpp"
#include "tolerance/util/rng.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace tolerance {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// Wire codec
// ---------------------------------------------------------------------------

crypto::Digest test_digest(std::uint8_t fill) {
  crypto::Digest d{};
  d.fill(fill);
  return d;
}

crypto::Signature test_signature(std::uint32_t signer, std::uint8_t fill) {
  crypto::Signature s;
  s.signer = signer;
  s.tag = test_digest(fill);
  return s;
}

crypto::UniqueIdentifier test_ui(std::uint32_t replica, std::uint64_t counter) {
  crypto::UniqueIdentifier ui;
  ui.replica = replica;
  ui.epoch = 2;
  ui.counter = counter;
  ui.certificate = test_digest(static_cast<std::uint8_t>(counter));
  return ui;
}

consensus::Request test_request(std::uint32_t client, std::uint64_t id) {
  consensus::Request r;
  r.client = client;
  r.request_id = id;
  r.operation = "op-" + std::to_string(id);
  r.signature = test_signature(client, 0x11);
  return r;
}

consensus::Prepare test_prepare() {
  consensus::Prepare p;
  p.view = 3;
  p.seq = 17;
  p.requests = {test_request(10001, 5), test_request(10002, 9)};
  p.ui = test_ui(0, 17);
  return p;
}

consensus::Checkpoint test_checkpoint(std::uint32_t replica) {
  consensus::Checkpoint c;
  c.replica = replica;
  c.last_executed = 40;
  c.state_digest = test_digest(0x77);
  c.ui = test_ui(replica, 41);
  return c;
}

consensus::ViewChange test_view_change(std::uint32_t replica) {
  consensus::ViewChange vc;
  vc.replica = replica;
  vc.to_view = 4;
  vc.stable_seq = 40;
  vc.checkpoint_cert = {test_checkpoint(0), test_checkpoint(1)};
  vc.prepared = {consensus::PreparedProof{test_prepare()}};
  vc.ui = test_ui(replica, 50);
  return vc;
}

std::vector<consensus::MinBftMsg> all_message_kinds() {
  std::vector<consensus::MinBftMsg> msgs;
  msgs.emplace_back(test_request(10007, 3));
  msgs.emplace_back(test_prepare());
  consensus::Commit c;
  c.view = 3;
  c.seq = 17;
  c.replica = 2;
  c.batch_digest = test_digest(0x42);
  c.leader_ui = test_ui(0, 17);
  c.ui = test_ui(2, 9);
  msgs.emplace_back(c);
  consensus::Reply rep;
  rep.replica = 1;
  rep.client = 10001;
  rep.request_id = 5;
  rep.result = "ok:5";
  rep.speculative = true;  // exercise the fast-path flag in every sweep
  rep.signature = test_signature(1, 0x23);
  msgs.emplace_back(rep);
  msgs.emplace_back(test_checkpoint(2));
  consensus::ReqViewChange rvc;
  rvc.replica = 1;
  rvc.from_view = 3;
  rvc.to_view = 4;
  rvc.signature = test_signature(1, 0x31);
  msgs.emplace_back(rvc);
  msgs.emplace_back(test_view_change(1));
  consensus::NewView nv;
  nv.leader = 1;
  nv.view = 4;
  nv.proofs = {test_view_change(1), test_view_change(2)};
  nv.reproposed = {test_prepare()};
  nv.ui = test_ui(1, 51);
  msgs.emplace_back(nv);
  consensus::StateRequest sr;
  sr.replica = 5;
  sr.ops_executed = 37;  // suffix-capped transfer: nonzero must round-trip
  msgs.emplace_back(sr);
  consensus::StateResponse resp;
  resp.replica = 2;
  resp.last_executed = 40;
  resp.prefix_ops = 37;  // the committed prefix NOT shipped
  resp.log = {"a", "b", "c"};
  resp.state_digest = test_digest(0x55);
  resp.anchor_seq = 39;
  resp.anchor_ops = 38;
  resp.anchor_digest = test_digest(0x56);
  resp.anchor_cert = {test_checkpoint(1), test_checkpoint(3)};
  resp.signature = test_signature(2, 0x66);
  msgs.emplace_back(resp);
  consensus::FetchPrepare fp;
  fp.seq = 17;
  fp.requester = 4;
  msgs.emplace_back(fp);
  msgs.emplace_back(consensus::RelayedPrepare{test_prepare()});
  consensus::Overloaded ov;
  ov.replica = 2;
  ov.client = 10001;
  ov.request_id = 5;
  ov.retry_after_ms = 250;
  ov.mode = 2;  // hard
  ov.signature = test_signature(2, 0x49);
  msgs.emplace_back(ov);
  return msgs;
}

// Messages carry no operator==; a round trip is verified by re-encoding —
// equal bytes mean every field survived (the codec reads all it writes).
TEST(WireCodec, RoundTripsEveryMessageKind) {
  const auto msgs = all_message_kinds();
  EXPECT_EQ(msgs.size(),
            std::variant_size_v<consensus::MinBftMsg>);  // coverage
  for (const auto& msg : msgs) {
    const auto bytes = net::MinBftCodec::encode(msg);
    const auto decoded = net::MinBftCodec::decode(bytes);
    ASSERT_TRUE(decoded.has_value()) << "variant index " << msg.index();
    EXPECT_EQ(decoded->index(), msg.index());
    EXPECT_EQ(net::MinBftCodec::encode(*decoded), bytes);
  }
}

// Decoding must be total: every truncation of a valid buffer, trailing
// garbage, and an unknown tag yield nullopt, never UB or a throw.
TEST(WireCodec, MalformedBuffersReturnNullopt) {
  for (const auto& msg : all_message_kinds()) {
    const auto bytes = net::MinBftCodec::encode(msg);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_FALSE(net::MinBftCodec::decode(bytes.data(), len).has_value())
          << "truncation to " << len << " of " << bytes.size() << " decoded";
    }
    auto trailing = bytes;
    trailing.push_back(0x00);
    EXPECT_FALSE(net::MinBftCodec::decode(trailing).has_value());
  }
  const net::wire::Bytes bad_tag{0xff, 0x00, 0x00};
  EXPECT_FALSE(net::MinBftCodec::decode(bad_tag).has_value());
  EXPECT_FALSE(net::MinBftCodec::decode(nullptr, 0).has_value());
}

// Seeded bit-flip sweep over every message kind: a corrupted buffer either
// fails to decode or decodes to a value the codec itself stands behind
// (re-encodes and re-decodes cleanly) — never UB, never a throw.  In the
// deployed path HMAC rejects flipped bundles before the codec ever runs;
// this guards the codec itself so that property is defence in depth, not a
// load-bearing single layer.
TEST(WireCodec, SeededBitFlipsNeverBreakDecode) {
  Rng rng(0xb17f11b5u);
  for (const auto& msg : all_message_kinds()) {
    const auto bytes = net::MinBftCodec::encode(msg);
    for (int round = 0; round < 200; ++round) {
      auto flipped = bytes;
      const int flips = rng.uniform_int(1, 3);
      for (int i = 0; i < flips; ++i) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(static_cast<int>(flipped.size())));
        flipped[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(8));
      }
      const auto decoded = net::MinBftCodec::decode(flipped);
      if (!decoded.has_value()) continue;
      const auto reencoded = net::MinBftCodec::encode(*decoded);
      const auto redecoded = net::MinBftCodec::decode(reencoded);
      ASSERT_TRUE(redecoded.has_value())
          << "accepted a corruption of variant " << msg.index()
          << " that does not re-decode";
      EXPECT_EQ(net::MinBftCodec::encode(*redecoded), reencoded);
    }
  }
}

// The speculative flag on a Reply is a strict boolean on the wire: both
// values round-trip, the two encodings differ in exactly the flag byte, and
// any other value at that position is rejected (a compromised replica must
// not be able to smuggle out-of-domain bytes past the codec).
TEST(WireCodec, SpeculativeReplyFlagRoundTripsAndRejectsBadByte) {
  consensus::Reply rep;
  rep.replica = 1;
  rep.client = 10001;
  rep.request_id = 5;
  rep.result = "ok:5";
  rep.signature = test_signature(1, 0x23);
  rep.speculative = false;
  const auto plain = net::MinBftCodec::encode(consensus::MinBftMsg{rep});
  rep.speculative = true;
  const auto tentative = net::MinBftCodec::encode(consensus::MinBftMsg{rep});
  for (const bool spec : {false, true}) {
    const auto decoded =
        net::MinBftCodec::decode(spec ? tentative : plain);
    ASSERT_TRUE(decoded.has_value());
    const auto* r = std::get_if<consensus::Reply>(&*decoded);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->speculative, spec);
  }
  ASSERT_EQ(plain.size(), tentative.size());
  std::size_t flag_at = plain.size();
  for (std::size_t i = 0; i < plain.size(); ++i) {
    if (plain[i] != tentative[i]) {
      ASSERT_EQ(flag_at, plain.size()) << "flag must occupy exactly one byte";
      flag_at = i;
    }
  }
  ASSERT_LT(flag_at, plain.size());
  auto forged = tentative;
  forged[flag_at] = 2;  // out of the boolean domain
  EXPECT_FALSE(net::MinBftCodec::decode(forged).has_value());
}

// The Overloaded mode byte is a strict enum on the wire: soft (1) and hard
// (2) round-trip, and any other value is rejected — a compromised replica
// must not be able to smuggle a fake "mode" (e.g. NORMAL, which is never
// sent, or garbage) past the codec and into client backoff decisions.
TEST(WireCodec, OverloadedModeByteRoundTripsAndRejectsBadByte) {
  consensus::Overloaded ov;
  ov.replica = 2;
  ov.client = 10001;
  ov.request_id = 5;
  ov.retry_after_ms = 250;
  ov.signature = test_signature(2, 0x49);
  ov.mode = 1;
  const auto soft = net::MinBftCodec::encode(consensus::MinBftMsg{ov});
  ov.mode = 2;
  const auto hard = net::MinBftCodec::encode(consensus::MinBftMsg{ov});
  for (const std::uint8_t mode : {std::uint8_t{1}, std::uint8_t{2}}) {
    const auto decoded = net::MinBftCodec::decode(mode == 1 ? soft : hard);
    ASSERT_TRUE(decoded.has_value());
    const auto* o = std::get_if<consensus::Overloaded>(&*decoded);
    ASSERT_NE(o, nullptr);
    EXPECT_EQ(o->mode, mode);
    EXPECT_EQ(o->retry_after_ms, 250u);
  }
  ASSERT_EQ(soft.size(), hard.size());
  std::size_t mode_at = soft.size();
  for (std::size_t i = 0; i < soft.size(); ++i) {
    if (soft[i] != hard[i]) {
      ASSERT_EQ(mode_at, soft.size()) << "mode must occupy exactly one byte";
      mode_at = i;
    }
  }
  ASSERT_LT(mode_at, soft.size());
  for (const std::uint8_t bad : {std::uint8_t{0}, std::uint8_t{3},
                                 std::uint8_t{0xff}}) {
    auto forged = hard;
    forged[mode_at] = bad;
    EXPECT_FALSE(net::MinBftCodec::decode(forged).has_value())
        << "mode byte " << static_cast<int>(bad) << " decoded";
  }
}

// A forged length prefix must not trigger a huge allocation: counts are
// checked against the bytes actually remaining.
TEST(WireCodec, ForgedCountIsRejectedWithoutAllocating) {
  net::wire::Writer w;
  w.u8(1);  // Prepare tag
  w.varint(3);  // view
  w.varint(17);  // seq
  w.varint(0xffffffffff);  // request count: absurd
  const auto bytes = w.take();
  EXPECT_FALSE(net::MinBftCodec::decode(bytes).has_value());
}

// ---------------------------------------------------------------------------
// AsyncRuntime
// ---------------------------------------------------------------------------

struct StringCodec {
  static net::wire::Bytes encode(const std::string& s) {
    net::wire::Writer w;
    w.str(s);
    return w.take();
  }
  static std::optional<std::string> decode(const std::uint8_t* data,
                                           std::size_t len) {
    net::wire::Reader r(data, len);
    auto s = r.str();
    if (!s || !r.done()) return std::nullopt;
    return s;
  }
};

using StringRuntime = net::AsyncRuntime<std::string, StringCodec>;

net::LinkConfig instant_link() {
  net::LinkConfig cfg;
  cfg.base_delay = 0.0;
  cfg.jitter = 0.0;
  cfg.loss = 0.0;
  return cfg;
}

StringRuntime::Options instant_options() {
  StringRuntime::Options o;
  o.replica_link = instant_link();
  o.client_link = instant_link();
  return o;
}

/// Spin-wait (bounded) until `cond` holds — the runtime delivers on pool
/// threads, so tests wait rather than step a clock.
template <class Cond>
bool eventually(Cond&& cond, std::chrono::milliseconds budget = 5000ms) {
  const auto deadline = std::chrono::steady_clock::now() + budget;
  while (std::chrono::steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(1ms);
  }
  return cond();
}

TEST(AsyncRuntime, DeliversAcrossEventLoops) {
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  std::atomic<int> pongs{0};
  rt.register_host(1, [&](net::NodeId from, const std::string& m) {
    if (m == "ping") rt.send(1, from, "pong");
  });
  rt.register_host(2, [&](net::NodeId, const std::string& m) {
    if (m == "pong") pongs.fetch_add(1);
  });
  for (int i = 0; i < 100; ++i) rt.send(2, 1, "ping");
  EXPECT_TRUE(eventually([&]() { return pongs.load() == 100; }));
  rt.stop();
  EXPECT_EQ(rt.decode_errors(), 0u);
  EXPECT_EQ(rt.handler_errors(), 0u);
}

TEST(AsyncRuntime, PerChannelFifoSurvivesJitter) {
  util::ThreadPool pool(4);
  StringRuntime::Options o = instant_options();
  o.replica_link.base_delay = 1e-3;
  o.replica_link.jitter = 5e-3;   // jitter >> base delay: reorder pressure
  o.replica_link.reorder = 0.3;
  o.replica_link.reorder_delay = 5e-3;
  StringRuntime rt(pool, o);
  std::vector<int> received;  // only touched by host 2's serial loop
  std::atomic<int> count{0};
  rt.register_host(2, [&](net::NodeId, const std::string& m) {
    received.push_back(std::stoi(m));
    count.fetch_add(1);
  });
  const int kMessages = 200;
  for (int i = 0; i < kMessages; ++i) rt.send(1, 2, std::to_string(i));
  ASSERT_TRUE(eventually([&]() { return count.load() == kMessages; }));
  rt.stop();
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], i);
}

TEST(AsyncRuntime, TimersFireOnOwnersLoopAndCancel) {
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  std::atomic<int> fired{0};
  rt.register_host(1, [](net::NodeId, const std::string&) {});
  rt.schedule(1, 0.01, [&]() { fired.fetch_add(1); });
  const auto cancelled = rt.schedule(1, 0.02, [&]() { fired.fetch_add(100); });
  rt.cancel(cancelled);
  rt.cancel(999999);  // never issued: must be a no-op, not poison
  EXPECT_TRUE(eventually([&]() { return fired.load() == 1; }));
  std::this_thread::sleep_for(50ms);  // give the cancelled timer its slot
  rt.stop();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(rt.cancelled_pending(), 0u);
  EXPECT_EQ(rt.live_timer_count(), 0u);
}

TEST(AsyncRuntime, BoundedInboxDropsOldest) {
  util::ThreadPool pool(2);
  StringRuntime::Options o = instant_options();
  o.inbound_capacity = 8;
  StringRuntime rt(pool, o);
  std::atomic<bool> gate{false};
  std::vector<std::string> received;
  std::atomic<int> count{0};
  rt.register_host(2, [&](net::NodeId, const std::string& m) {
    while (!gate.load()) std::this_thread::sleep_for(1ms);
    received.push_back(m);
    count.fetch_add(1);
  });
  // An early frame parks the loop on the gate; the rest pile into the
  // bounded inbox and the oldest spill over.
  for (int i = 0; i < 100; ++i) rt.send(1, 2, std::to_string(i));
  EXPECT_TRUE(eventually([&]() { return rt.overflow_dropped(2) > 0; }));
  gate.store(true);
  // Every frame is accounted exactly once: delivered or evicted.
  EXPECT_TRUE(eventually([&]() {
    return count.load() + static_cast<int>(rt.overflow_dropped()) == 100;
  }));
  rt.stop();
  // Drop-oldest: the newest send always survives.
  ASSERT_FALSE(received.empty());
  EXPECT_EQ(received.back(), "99");
  EXPECT_EQ(rt.overflow_dropped(), rt.overflow_dropped(2));
  EXPECT_GT(rt.overflow_dropped(), 0u);
}

TEST(AsyncRuntime, PartitionBlocksAndRepartitionClearsStalePairs) {
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  std::atomic<int> at3{0}, at2{0};
  rt.register_host(1, [](net::NodeId, const std::string&) {});
  rt.register_host(2, [&](net::NodeId, const std::string&) { at2.fetch_add(1); });
  rt.register_host(3, [&](net::NodeId, const std::string&) { at3.fetch_add(1); });
  rt.partition({{1, 2}, {3}});
  rt.send(1, 3, "blocked");
  rt.send(1, 2, "allowed");
  EXPECT_TRUE(eventually([&]() { return at2.load() == 1; }));
  EXPECT_EQ(at3.load(), 0);
  rt.partition({{1}, {2}});  // 3 absent: stale 1|3 block must clear
  rt.send(1, 3, "now allowed");
  rt.send(1, 2, "now blocked");
  EXPECT_TRUE(eventually([&]() { return at3.load() == 1; }));
  EXPECT_EQ(at2.load(), 1);
  rt.heal_partition();
  rt.send(1, 2, "open again");
  EXPECT_TRUE(eventually([&]() { return at2.load() == 2; }));
  rt.stop();
}

TEST(AsyncRuntime, HandlerExceptionIsContainedAndCounted) {
  util::ThreadPool pool(2);
  StringRuntime rt(pool, instant_options());
  std::atomic<int> ok{0};
  rt.register_host(1, [&](net::NodeId, const std::string& m) {
    if (m == "boom") throw std::runtime_error("boom");
    ok.fetch_add(1);
  });
  rt.send(2, 1, "boom");
  rt.send(2, 1, "fine");
  EXPECT_TRUE(eventually([&]() { return ok.load() == 1; }));
  rt.stop();
  EXPECT_EQ(rt.handler_errors(), 1u);
}

TEST(AsyncRuntime, StopQuiescesUnderCrossTraffic) {
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  // Each delivery triggers another send: a traffic loop that only drains
  // because stop() fences transmission.
  std::atomic<std::uint64_t> hops{0};
  for (net::NodeId id = 1; id <= 4; ++id) {
    rt.register_host(id, [&, id](net::NodeId, const std::string& m) {
      hops.fetch_add(1);
      rt.send(id, (id % 4) + 1, m);
    });
  }
  rt.send(4, 1, "token");
  EXPECT_TRUE(eventually([&]() { return hops.load() > 1000; }));
  rt.stop();  // must terminate: fences sends, drains loops
  SUCCEED();
}

// ---------------------------------------------------------------------------
// AuthBatching: per-destination authenticator coalescing on the wire
// ---------------------------------------------------------------------------

/// LEB128, matching the bundle header layout (frame count + per-frame len).
void put_varint(net::wire::Bytes& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

TEST(AuthBatching, FlushWindowCoalescesABurstBehindFewAuthenticators) {
  util::ThreadPool pool(4);
  StringRuntime::Options o = instant_options();
  o.flush_window = 0.05;  // generous: the burst below fits well inside
  StringRuntime rt(pool, o);
  std::vector<std::string> received;  // host 2's serial loop only
  std::atomic<int> got{0};
  rt.register_host(2, [&](net::NodeId, const std::string& m) {
    received.push_back(m);
    got.fetch_add(1);
  });
  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) rt.send(1, 2, std::to_string(i));
  ASSERT_TRUE(eventually([&]() { return got.load() == kMessages; }));
  rt.stop();
  // Every frame arrived, in order, under ONE tag per bundle: far fewer
  // HMACs than messages (a quiet-channel head may ship alone, the rest
  // ride the flush timer).
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], std::to_string(i));
  EXPECT_EQ(rt.bundled_frames(), static_cast<std::uint64_t>(kMessages));
  EXPECT_LT(rt.macs_computed(), static_cast<std::uint64_t>(kMessages) / 2);
  EXPECT_GE(rt.macs_computed(), 1u);
  EXPECT_EQ(rt.auth_failures(), 0u);
  EXPECT_EQ(rt.decode_errors(), 0u);
}

TEST(AuthBatching, ZeroWindowShipsOneAuthenticatorPerMessage) {
  // flush_window = 0 is the unbatched baseline: bundle == frame, and the
  // delivered stream is identical to the coalesced one above.
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  std::vector<std::string> received;
  std::atomic<int> got{0};
  rt.register_host(2, [&](net::NodeId, const std::string& m) {
    received.push_back(m);
    got.fetch_add(1);
  });
  const int kMessages = 100;
  for (int i = 0; i < kMessages; ++i) rt.send(1, 2, std::to_string(i));
  ASSERT_TRUE(eventually([&]() { return got.load() == kMessages; }));
  rt.stop();
  ASSERT_EQ(received.size(), static_cast<std::size_t>(kMessages));
  for (int i = 0; i < kMessages; ++i) EXPECT_EQ(received[i], std::to_string(i));
  EXPECT_EQ(rt.macs_computed(), static_cast<std::uint64_t>(kMessages));
  EXPECT_EQ(rt.bundled_frames(), static_cast<std::uint64_t>(kMessages));
}

TEST(AuthBatching, ForgedOrMalformedBundlesAreRejectedWithoutDelivery) {
  util::ThreadPool pool(4);
  StringRuntime rt(pool, instant_options());
  std::atomic<int> got{0};
  rt.register_host(2, [&](net::NodeId, const std::string&) {
    got.fetch_add(1);
  });
  // Structurally valid single-frame bundle whose 32-byte tag is wrong: the
  // authenticator check must drop the whole bundle before any frame decode.
  const auto payload = StringCodec::encode("evil");
  net::wire::Bytes forged;
  put_varint(forged, 1);
  put_varint(forged, payload.size());
  forged.insert(forged.end(), payload.begin(), payload.end());
  forged.insert(forged.end(), 32, std::uint8_t{0});
  rt.inject_frame(1, 2, forged);
  // Garbage that is not even a bundle: a decode error, not an auth failure.
  rt.inject_frame(1, 2, net::wire::Bytes{0xff, 0xff, 0xff});
  // A legitimate message must still get through on the same channel.
  rt.send(1, 2, "legit");
  ASSERT_TRUE(eventually([&]() { return got.load() == 1; }));
  rt.stop();
  EXPECT_EQ(got.load(), 1);
  EXPECT_EQ(rt.auth_failures(), 1u);
  EXPECT_GE(rt.decode_errors(), 1u);
}

// ---------------------------------------------------------------------------
// Runtime MinBFT cluster
// ---------------------------------------------------------------------------

consensus::MinBftConfig runtime_config(int f) {
  consensus::MinBftConfig cfg;
  cfg.f = f;
  cfg.checkpoint_period = 50;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  cfg.batch_timeout = 0.005;
  return cfg;
}

TEST(MinBftRuntime, ClosedLoopClientsCommitOnRealThreads) {
  consensus::MinBftRuntimeCluster cluster(3, runtime_config(1), 7,
                                          net::NetworkProfile::lan(), 4);
  const auto stats = cluster.run_closed_loop(8, 0.5);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.handler_errors, 0u);
  EXPECT_GT(stats.p50_latency, 0.0);
  // Each completed request was executed by a reply quorum, so some replica's
  // log covers every completion (logs are prefixes of one committed history).
  std::size_t longest = 0;
  for (int id = 0; id < cluster.replica_count(); ++id) {
    longest = std::max(
        longest,
        cluster.replica(static_cast<consensus::ReplicaId>(id)).service().log().size());
  }
  EXPECT_GE(longest, stats.completed);
}

TEST(MinBftRuntime, SurvivesWanShapingWithReordering) {
  net::NetworkProfile wan = net::NetworkProfile::wan();
  // Compress WAN latency so a sub-second test still commits plenty.
  wan.replica_link.base_delay = 2e-3;
  wan.client_link.base_delay = 2e-3;
  consensus::MinBftRuntimeCluster cluster(3, runtime_config(1), 11, wan, 4);
  const auto stats = cluster.run_closed_loop(8, 0.5);
  EXPECT_GT(stats.completed, 0u);
  EXPECT_EQ(stats.decode_errors, 0u);
  EXPECT_EQ(stats.handler_errors, 0u);
}

// ---------------------------------------------------------------------------
// NetworkProfile catalog + sim-lane determinism
// ---------------------------------------------------------------------------

TEST(NetworkProfile, CatalogNamesAreStableAndLookupWorks) {
  const auto& catalog = net::NetworkProfile::catalog();
  ASSERT_EQ(catalog.size(), 4u);
  EXPECT_EQ(catalog[0].name, "LAN");
  EXPECT_EQ(catalog[1].name, "WAN");
  EXPECT_EQ(catalog[2].name, "LOSSY_MULTIHOP");
  EXPECT_EQ(catalog[3].name, "PARTITION_FLAP");
  for (const auto& p : catalog) {
    const auto found = net::NetworkProfile::by_name(p.name);
    ASSERT_TRUE(found.has_value());
    EXPECT_EQ(found->name, p.name);
  }
  EXPECT_FALSE(net::NetworkProfile::by_name("DIALUP").has_value());
  EXPECT_GT(catalog[3].flap_interval, 0.0);  // PARTITION_FLAP really flaps
}

/// One deterministic sim-lane run under a profile: five replicas and one
/// client exchange timed bursts over the profile's two link classes (plus a
/// partition flap when the profile flaps), and the artifact is the full
/// delivery trace — every (sender, receiver, arrival time, payload) plus the
/// loss/reorder counters, formatted to full double precision so any
/// divergence, however small, flips the comparison.
std::vector<std::string> sim_profile_trace(const net::NetworkProfile& profile) {
  net::SimNetwork<std::string> sim(101, profile.replica_link);
  const std::vector<net::NodeId> replicas = {1, 2, 3, 4, 5};
  constexpr net::NodeId kClient = 99;
  std::vector<std::string> trace;
  const auto record = [&](net::NodeId to) {
    return [&, to](net::NodeId from, const std::string& m) {
      char at[32];
      std::snprintf(at, sizeof(at), "%.17g", sim.now());
      trace.push_back(std::to_string(from) + ">" + std::to_string(to) + "@" +
                      at + ":" + m);
    };
  };
  for (const auto id : replicas) {
    sim.register_host(id, record(id));
    sim.set_link(id, kClient, profile.client_link);
    sim.set_link(kClient, id, profile.client_link);
  }
  sim.register_host(kClient, record(kClient));
  for (int round = 0; round < 20; ++round) {
    sim.schedule(0.01 * round, [&, round]() {
      const std::string tag = "r" + std::to_string(round);
      for (const auto a : replicas) {
        for (const auto b : replicas) {
          if (a != b) sim.send(a, b, tag);
        }
      }
      sim.send(kClient, replicas[static_cast<std::size_t>(round) %
                                 replicas.size()],
               "req" + std::to_string(round));
      sim.send(replicas.front(), kClient, "rep" + std::to_string(round));
    });
  }
  if (profile.flap_interval > 0.0) {
    sim.schedule(0.05, [&]() { sim.partition({{1, 2, 3}, {4, 5}}); });
    sim.schedule(0.12, [&]() { sim.heal_partition(); });
  }
  sim.run();
  trace.push_back("dropped=" + std::to_string(sim.dropped_messages()));
  trace.push_back("reordered=" + std::to_string(sim.reordered_messages()));
  return trace;
}

// The deterministic lane must stay deterministic no matter how many threads
// run OTHER work concurrently: profile sweeps executed on a contended pool
// are bit-identical to serial execution at any worker count.
TEST(NetworkProfile, SimSweepsAreBitIdenticalAtAnyThreadCount) {
  std::vector<std::vector<std::string>> serial;
  for (const auto& profile : net::NetworkProfile::catalog()) {
    serial.push_back(sim_profile_trace(profile));
    EXPECT_GT(serial.back().size(), 100u) << profile.name;
  }
  for (const int threads : {1, 8}) {
    util::ThreadPool pool(threads);
    const auto& catalog = net::NetworkProfile::catalog();
    std::vector<std::vector<std::string>> parallel(catalog.size());
    std::atomic<int> done{0};
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      pool.submit([&, i]() {
        parallel[i] = sim_profile_trace(catalog[i]);
        done.fetch_add(1);
      });
    }
    pool.wait_idle();
    ASSERT_EQ(done.load(), static_cast<int>(catalog.size()));
    for (std::size_t i = 0; i < catalog.size(); ++i) {
      EXPECT_EQ(parallel[i], serial[i])
          << catalog[i].name << " diverged at " << threads << " threads";
    }
  }
}

// End-to-end flavour of the same guarantee: a full MinBFT workload over the
// LAN profile's replica link commits the identical log whether the sweep
// runs serially or on a contended pool.  (The lossier catalog entries are
// covered by the trace sweep above — the paper's protocol gives no liveness
// bound under sustained loss, so a bounded unit test cannot wait on them.)
TEST(NetworkProfile, LanWorkloadLogIsThreadCountInvariant) {
  consensus::MinBftConfig cfg;
  cfg.f = 1;
  cfg.checkpoint_period = 10;
  cfg.log_watermark = 100;
  cfg.view_change_timeout = 2.0;
  cfg.request_retry_timeout = 1.0;
  const auto run_once = [&]() {
    return consensus::run_tagged_workload_link(
        cfg, 3, 4, 6, 21, net::NetworkProfile::lan().replica_link);
  };
  const auto serial = run_once();
  ASSERT_EQ(serial.error, "");
  ASSERT_FALSE(serial.log.empty());
  util::ThreadPool pool(8);
  std::vector<consensus::TaggedWorkloadResult> results(4);
  for (std::size_t i = 0; i < results.size(); ++i) {
    pool.submit([&, i]() { results[i] = run_once(); });
  }
  pool.wait_idle();
  for (const auto& r : results) {
    EXPECT_EQ(r.error, "");
    EXPECT_EQ(r.log, serial.log);
  }
}

}  // namespace
}  // namespace tolerance
