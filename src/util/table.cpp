#include "tolerance/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "tolerance/util/ensure.hpp"

namespace tolerance {

ConsoleTable::ConsoleTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  TOL_ENSURE(!headers_.empty(), "table requires at least one column");
}

void ConsoleTable::add_row(std::vector<std::string> cells) {
  TOL_ENSURE(cells.size() == headers_.size(),
             "row arity must match header arity");
  rows_.push_back(std::move(cells));
}

void ConsoleTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string ConsoleTable::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string ConsoleTable::mean_pm(double mean, double half_width,
                                  int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << mean << " ±"
     << half_width;
  return os.str();
}

}  // namespace tolerance
