#include "tolerance/util/parallel.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>

#include "tolerance/util/ensure.hpp"

namespace tolerance::util {

/// Upper bound on any resolved thread count — explicit requests and the env
/// var alike.  Far above useful parallelism, low enough that a typo'd
/// `--threads 1000000` cannot exhaust OS thread limits.
constexpr int kMaxThreads = 4096;

int hardware_threads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

int resolve_threads(int requested) {
  if (requested > 0) return std::min(requested, kMaxThreads);
  if (const char* env = std::getenv("TOLERANCE_THREADS")) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != env && *end == '\0' && v > 0) {
      // Same clamp as an explicit request — an oversized cap must not
      // silently fall back to hardware concurrency.
      return static_cast<int>(std::min<long>(v, kMaxThreads));
    }
  }
  return hardware_threads();
}

ParallelRunner::ParallelRunner(int threads)
    : threads_(resolve_threads(threads)) {}

namespace {

/// One process-wide helper pool shared by every ParallelRunner, created on
/// first parallel for_each and lazily grown to the largest helper count
/// actually requested — a process that only ever asks for --threads 2
/// never spawns a worker per core.  Growth is capped at the hardware
/// (helper tasks beyond it would only contend), with a floor of 2 so
/// parallel paths exercise real concurrency even on single-core machines.
/// Sharing is safe because batches carry their own completion state and
/// helpers pull work from the batch, never block on other batches.
ThreadPool& helper_pool(int min_workers) {
  static ThreadPool pool(1);
  pool.ensure_workers(
      std::min(min_workers, std::max(2, hardware_threads() - 1)));
  return pool;
}

/// Per-call state shared between the caller and its helper tasks.  Helpers
/// hold a shared_ptr, so the batch outlives the call even if a helper task
/// only gets scheduled after the caller has already returned.
///
/// Completion is tracked by WORK, not by helper-task exits: the batch is
/// done when every index has been claimed and none is still executing.
/// The caller can therefore finish the whole batch alone, which makes
/// nested for_each calls from inside pool tasks deadlock-free — stranded
/// helper tasks that run later find no indices left and no-op.
struct Batch {
  std::int64_t next = 0;   ///< first unclaimed index (guarded by mu)
  std::int64_t count = 0;
  std::int64_t in_flight = 0;  ///< indices currently executing
  const std::function<void(std::int64_t)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable done_cv;
  std::exception_ptr error;

  bool done() const { return next >= count && in_flight == 0; }
};

void drain(Batch& batch) {
  for (;;) {
    std::int64_t i;
    {
      std::lock_guard<std::mutex> lock(batch.mu);
      if (batch.next >= batch.count) return;
      i = batch.next++;
      ++batch.in_flight;
    }
    bool failed = false;
    std::exception_ptr error;
    try {
      (*batch.fn)(i);
    } catch (...) {
      failed = true;
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(batch.mu);
      --batch.in_flight;
      if (failed) {
        if (!batch.error) batch.error = error;
        // Park the counter so no further indices are claimed.
        batch.next = batch.count;
      }
      if (batch.done()) batch.done_cv.notify_all();
      if (failed) return;
    }
  }
}

}  // namespace

void ParallelRunner::for_each(
    std::int64_t count, const std::function<void(std::int64_t)>& fn) const {
  TOL_ENSURE(count >= 0, "for_each count must be non-negative");
  if (count == 0) return;
  int helpers = static_cast<int>(
      std::min<std::int64_t>(threads_ - 1, count - 1));
  if (helpers <= 0) {
    for (std::int64_t i = 0; i < count; ++i) fn(i);
    return;
  }
  ThreadPool& pool = helper_pool(helpers);
  // Helpers beyond the pool's hardware cap would only queue — don't
  // submit them.
  helpers = std::min(helpers, pool.size());

  auto batch = std::make_shared<Batch>();
  batch->count = count;
  // fn is only dereferenced by a successfully-claimed index, which cannot
  // happen once the batch is done — so the reference never outlives this
  // call even when a stranded helper task runs after we return.
  batch->fn = &fn;

  for (int h = 0; h < helpers; ++h) {
    pool.submit([batch] { drain(*batch); });
  }
  // The calling thread is a full worker too: even if every pool worker is
  // busy (or blocked inside a nested for_each), this call completes on
  // its own.
  drain(*batch);
  std::unique_lock<std::mutex> lock(batch->mu);
  batch->done_cv.wait(lock, [&] { return batch->done(); });
  if (batch->error) std::rethrow_exception(batch->error);
}

}  // namespace tolerance::util
