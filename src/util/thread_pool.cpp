#include "tolerance/util/thread_pool.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::util {

ThreadPool::ThreadPool(int num_threads) {
  TOL_ENSURE(num_threads > 0, "thread pool needs at least one worker");
  ensure_workers(num_threads);
}

int ThreadPool::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::ensure_workers(int num_threads) {
  std::lock_guard<std::mutex> lock(mu_);
  TOL_ENSURE(!stop_, "cannot grow after shutdown began");
  while (static_cast<int>(workers_.size()) < num_threads) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  TOL_ENSURE(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard<std::mutex> lock(mu_);
    TOL_ENSURE(!stop_, "cannot submit after shutdown began");
    queue_.push_back(std::move(task));
  }
  task_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::wait_idle_for(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_for(lock, timeout, [this] {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      // Drain semantics: exit only once the queue is empty, even when
      // stop_ was raised with tasks still pending.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
      if (queue_.empty() && active_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace tolerance::util
