#include "tolerance/util/rng.hpp"

#include <cmath>

#include "tolerance/stats/special.hpp"

namespace tolerance {

// PTRS — "Poisson Transformed Rejection with Squeeze" [Hörmann 1993,
// "The transformed rejection method for generating Poisson random
// variables"].  Valid for mean >= 10: O(1) expected uniform draws versus
// the Knuth product sampler's O(mean), which is what the IDS
// alert-intensity sweeps hit once background loads push burst means into
// the hundreds.  Uses the reentrant stats::log_gamma for log k! — glibc's
// lgamma writes the `signgam` global and is a data race on the parallel
// episode workers.
int Rng::poisson_ptrs(double mean) {
  const double b = 0.931 + 2.53 * std::sqrt(mean);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  const double log_mean = std::log(mean);
  while (true) {
    double u = uniform() - 0.5;
    double v = uniform();
    const double us = 0.5 - std::fabs(u);
    const double kf = std::floor((2.0 * a / us + b) * u + mean + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<int>(kf);
    if (kf < 0.0 || (us < 0.013 && v > us)) continue;
    const double k = kf;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * log_mean - mean - stats::log_gamma(k + 1.0)) {
      return static_cast<int>(kf);
    }
  }
}

}  // namespace tolerance
