// Sparse revised simplex with an eta-file (product-form) basis factorization
// and warm starting.  See simplex.hpp for the design overview.
//
// Standard form used internally (identical to the dense core's, so bases are
// interchangeable): rows are normalized to rhs >= 0, every variable is
// non-negative, and the column space is
//   [0, n)            structural variables,
//   [n, n + m)        per-row auxiliary: slack (LessEq, +1),
//                     surplus (GreaterEq, -1), artificial (Eq, +1),
//   [n + m, n + 2m)   phase-1 artificial of GreaterEq rows (+1).
// Artificial columns never *enter* the basis; they only leave (or stay
// pinned at zero on redundant rows, guarded by the ratio test).
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <vector>

#include "tolerance/lp/simplex.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::lp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class ColKind : unsigned char { Structural, Slack, Surplus, Artificial };

// One product-form eta: the transformed entering column w = B^{-1} a_q with
// pivot row r.  Applying the eta to x (FTRAN direction):
//   t = x[r] / w[r];  x[i] -= w[i] * t (i != r);  x[r] = t.
// BTRAN direction: y[r] = (y[r] - sum_{i != r} y[i] w[i]) / w[r].
struct Eta {
  int row = 0;
  double pivot = 0.0;                          // w[row]
  std::vector<std::pair<int, double>> terms;   // (i, w[i]) for i != row
};

// One step of the elimination-form (LU) base factorization.  Unlike the
// Gauss-Jordan eta above — whose file densifies toward nnz(B^{-1}) ~ m^2/2
// on the near-banded occupancy bases no matter how columns are ordered —
// the elimination form stores the LU factors themselves, so a good
// (Markowitz) pivot order keeps the file near nnz(B).
//   FTRAN x := B^{-1} x:
//     forward  (L): t = x[row];          x[i] -= m_i * t        (lower)
//     backward (U): z = x[row] / pivot;  x[r_j] -= u_j * z;  x[row] = z
//   BTRAN y := B^{-T} y:
//     forward  (U^T): y[row] = (y[row] - sum u_j y[r_j]) / pivot
//     backward (L^T): y[row] -= sum m_i y[i]
struct LuStep {
  int row = 0;        // pivot row of this step
  double pivot = 0.0;
  std::vector<std::pair<int, double>> lower;  // (i, multiplier), unpivoted i
  std::vector<std::pair<int, double>> upper;  // (r_j, value), earlier pivots
};

struct Problem {
  std::size_t m = 0;  // rows
  std::size_t n = 0;  // structural columns
  // Structural columns, CSC with row-sign normalization applied.  Duplicate
  // (row, col) entries are allowed — every consumer accumulates.
  std::vector<std::size_t> cptr;
  std::vector<int> crow;
  std::vector<double> cval;
  std::vector<double> rhs;       // >= 0 after normalization
  /// rhs with a deterministic, row-indexed micro-perturbation.  The LP
  /// family behind Algorithm 2 is massively degenerate (every flow-balance
  /// row has rhs 0), and pure Dantzig/Bland pivoting cycles on it once
  /// reduced costs carry any factorization noise.  Perturbing the rhs makes
  /// ratio-test ties vanish so every pivot strictly improves, which is the
  /// standard anti-degeneracy device of production codes.  Optimality of a
  /// basis (reduced costs >= 0) does not depend on the rhs, so the final
  /// basis is re-evaluated against the true rhs — and dual-simplex repaired
  /// in the rare case the perturbation was load-bearing for feasibility.
  std::vector<double> rhs_pert;
  std::vector<Relation> rel;     // normalized relations
  std::vector<double> objective; // structural objective

  std::size_t num_cols() const { return n + 2 * m; }

  ColKind kind(std::size_t j) const {
    if (j < n) return ColKind::Structural;
    if (j < n + m) {
      switch (rel[j - n]) {
        case Relation::LessEq: return ColKind::Slack;
        case Relation::GreaterEq: return ColKind::Surplus;
        case Relation::Eq: return ColKind::Artificial;
      }
    }
    return ColKind::Artificial;
  }

  bool is_artificial(std::size_t j) const {
    return kind(j) == ColKind::Artificial;
  }

  /// Row of the single +-1 entry of an auxiliary/artificial column.
  std::size_t aux_row(std::size_t j) const {
    return j < n + m ? j - n : j - n - m;
  }

  /// Does column j exist in this LP?  (n + m + i only for GreaterEq rows.)
  bool col_exists(std::size_t j) const {
    if (j < n + m) return true;
    return j < n + 2 * m && rel[j - n - m] == Relation::GreaterEq;
  }

  /// Accumulate column j into a dense work vector: work += scale * a_j.
  void scatter(std::size_t j, double scale, std::vector<double>& work) const {
    if (j < n) {
      for (std::size_t k = cptr[j]; k < cptr[j + 1]; ++k) {
        work[static_cast<std::size_t>(crow[k])] += scale * cval[k];
      }
    } else {
      const double sign = kind(j) == ColKind::Surplus ? -1.0 : 1.0;
      work[aux_row(j)] += scale * sign;
    }
  }

  /// Dense-vector / column dot product y^T a_j.
  double dot(const std::vector<double>& y, std::size_t j) const {
    if (j < n) {
      double acc = 0.0;
      for (std::size_t k = cptr[j]; k < cptr[j + 1]; ++k) {
        acc += y[static_cast<std::size_t>(crow[k])] * cval[k];
      }
      return acc;
    }
    const double sign = kind(j) == ColKind::Surplus ? -1.0 : 1.0;
    return y[aux_row(j)] * sign;
  }

  std::size_t col_nnz(std::size_t j) const {
    return j < n ? cptr[j + 1] - cptr[j] : 1;
  }

  double cost(std::size_t j, bool phase1) const {
    if (phase1) return is_artificial(j) ? 1.0 : 0.0;
    return j < n ? objective[j] : 0.0;
  }
};

Problem build_problem(const LinearProgram& lp) {
  Problem p;
  p.m = lp.constraints.size();
  p.n = static_cast<std::size_t>(lp.num_vars);
  p.objective = lp.objective;
  p.rhs.resize(p.m);
  p.rel.resize(p.m);

  std::vector<double> sign(p.m, 1.0);
  for (std::size_t i = 0; i < p.m; ++i) {
    p.rel[i] = lp.constraints[i].relation;
    p.rhs[i] = lp.constraints[i].rhs;
    if (p.rhs[i] < 0.0) {
      sign[i] = -1.0;
      p.rhs[i] = -p.rhs[i];
      if (p.rel[i] == Relation::LessEq) {
        p.rel[i] = Relation::GreaterEq;
      } else if (p.rel[i] == Relation::GreaterEq) {
        p.rel[i] = Relation::LessEq;
      }
    }
  }

  // CSC transpose of the row-wise constraint storage.
  std::vector<std::size_t> count(p.n, 0);
  for (const auto& con : lp.constraints) {
    for (const auto& [var, coeff] : con.terms) {
      TOL_ENSURE(var >= 0 && var < lp.num_vars, "constraint variable index");
      (void)coeff;
      ++count[static_cast<std::size_t>(var)];
    }
  }
  p.cptr.assign(p.n + 1, 0);
  for (std::size_t j = 0; j < p.n; ++j) p.cptr[j + 1] = p.cptr[j] + count[j];
  p.crow.resize(p.cptr[p.n]);
  p.cval.resize(p.cptr[p.n]);
  std::vector<std::size_t> fill = std::vector<std::size_t>(p.cptr.begin(),
                                                           p.cptr.end() - 1);
  for (std::size_t i = 0; i < p.m; ++i) {
    for (const auto& [var, coeff] : lp.constraints[i].terms) {
      const auto j = static_cast<std::size_t>(var);
      p.crow[fill[j]] = static_cast<int>(i);
      p.cval[fill[j]] = sign[i] * coeff;
      ++fill[j];
    }
  }
  p.rhs_pert.resize(p.m);
  for (std::size_t i = 0; i < p.m; ++i) {
    p.rhs_pert[i] = p.rhs[i] + 1e-9 * (1.0 + p.rhs[i]) *
                                   (static_cast<double>(i + 1) /
                                    static_cast<double>(p.m));
  }
  return p;
}

class RevisedCore {
 public:
  RevisedCore(const Problem& p, const SimplexSolver::Options& opt)
      : p_(p), opt_(opt), basis_(p.m, -1), pos_(p.num_cols(), -1),
        banned_(p.num_cols(), 0), xb_(p.m, 0.0), work_(p.m, 0.0) {}

  // --- basis bookkeeping ---------------------------------------------------

  void set_basis(const std::vector<int>& basic) {
    std::fill(pos_.begin(), pos_.end(), -1);
    basis_ = basic;
    for (std::size_t r = 0; r < p_.m; ++r) {
      pos_[static_cast<std::size_t>(basis_[r])] = static_cast<int>(r);
    }
  }

  const std::vector<int>& basis() const { return basis_; }
  long iterations() const { return iterations_; }
  std::size_t eta_nnz() const { return eta_nnz_; }

  // --- factorization -------------------------------------------------------

  /// Rebuild the base factorization from the current basis.  Two modes:
  ///
  ///  * Markowitz elimination form (default): a sparse LU with dynamic
  ///    nnz-minimizing pivot ordering.  The next column is the one with the
  ///    fewest nonzeros in still-unpivoted rows; its pivot row is the
  ///    numerically acceptable (threshold-pivoted) row shared with the
  ///    fewest remaining columns.  A permuted-triangular basis factors with
  ///    zero fill under this order, and the occupancy LP's bases — a sparse
  ///    kernel bump over near-banded flow rows — stay close to that, so the
  ///    file stays near nnz(B) instead of the ~m^2/2 a Gauss-Jordan
  ///    product-form inverse accumulates (the fill that kept the cold
  ///    Fig. 9 smax=2048 solve at dense-tableau parity).
  ///  * Static Gauss-Jordan (Options::markowitz_reinversion = false): the
  ///    pre-Markowitz product-form reinversion — ascending original column
  ///    nnz, pure partial pivoting — kept for differential testing and as
  ///    the before/after baseline of the bench.
  ///
  /// Returns false on a (numerically) singular basis.  On success the
  /// row <-> basic-column assignment may be permuted, which is fine: a
  /// basis is a column set, the row map is bookkeeping.
  bool factorize() {
    return opt_.markowitz_reinversion ? factorize_markowitz()
                                      : factorize_static();
  }

  bool factorize_static() {
    std::vector<Eta> fresh;
    fresh.reserve(p_.m);
    std::size_t fresh_nnz = 0;
    // Unit columns first (they generate no fill), then structural columns
    // by ascending nonzero count.
    std::vector<int> cols = basis_;
    std::stable_sort(cols.begin(), cols.end(), [&](int a, int b) {
      return p_.col_nnz(static_cast<std::size_t>(a)) <
             p_.col_nnz(static_cast<std::size_t>(b));
    });
    std::vector<char> row_done(p_.m, 0);
    std::vector<int> new_basis(p_.m, -1);
    for (const int cj : cols) {
      const auto j = static_cast<std::size_t>(cj);
      std::fill(work_.begin(), work_.end(), 0.0);
      p_.scatter(j, 1.0, work_);
      for (const Eta& e : fresh) apply_one_ftran(e, work_);
      std::size_t best_row = p_.m;
      double best_abs = 0.0;
      for (std::size_t i = 0; i < p_.m; ++i) {
        if (!row_done[i] && std::fabs(work_[i]) > best_abs) {
          best_abs = std::fabs(work_[i]);
          best_row = i;
        }
      }
      // Partial pivoting: anything comfortably above the noise floor works.
      // A basis reached through > eps ratio-test pivots can still present
      // small reinversion pivots, so this threshold is deliberately looser
      // than the pricing tolerance.
      if (best_row == p_.m || best_abs <= 1e-12) {
        if (std::getenv("TOLERANCE_LP_DEBUG") != nullptr) {
          std::fprintf(stderr,
                       "[lp] factorize singular at col %d best_abs=%g\n", cj,
                       best_abs);
        }
        factor_ok_ = false;
        return false;  // singular
      }
      Eta e;
      e.row = static_cast<int>(best_row);
      e.pivot = work_[best_row];
      for (std::size_t i = 0; i < p_.m; ++i) {
        if (i != best_row && work_[i] != 0.0) {
          e.terms.push_back({static_cast<int>(i), work_[i]});
        }
      }
      fresh_nnz += e.terms.size() + 1;
      fresh.push_back(std::move(e));
      row_done[best_row] = 1;
      new_basis[best_row] = cj;
    }
    lu_.clear();
    etas_ = std::move(fresh);
    eta_nnz_ = fresh_nnz;
    set_basis(new_basis);
    pivots_since_factor_ = 0;
    factor_ok_ = true;
    return true;
  }

  bool factorize_markowitz() {
    std::vector<LuStep> fresh;
    fresh.reserve(p_.m);
    std::size_t fresh_nnz = 0;
    std::vector<char> row_done(p_.m, 0);
    std::vector<int> new_basis(p_.m, -1);

    // Apply the L-part of the steps so far to work_, emit the next step
    // with pivot row `row` (entries in pivoted rows become the U column,
    // entries in unpivoted rows the L multipliers).
    const auto transform = [&](int cj) {
      std::fill(work_.begin(), work_.end(), 0.0);
      p_.scatter(static_cast<std::size_t>(cj), 1.0, work_);
      for (const LuStep& s : fresh) {
        const double t = work_[static_cast<std::size_t>(s.row)];
        if (t != 0.0) {
          for (const auto& [i, m] : s.lower) {
            work_[static_cast<std::size_t>(i)] -= m * t;
          }
        }
      }
    };
    const auto eliminate = [&](int cj, std::size_t row) {
      LuStep s;
      s.row = static_cast<int>(row);
      s.pivot = work_[row];
      for (std::size_t i = 0; i < p_.m; ++i) {
        if (i == row || work_[i] == 0.0) continue;
        if (row_done[i]) {
          s.upper.push_back({static_cast<int>(i), work_[i]});
        } else {
          s.lower.push_back({static_cast<int>(i), work_[i] / s.pivot});
        }
      }
      fresh_nnz += s.lower.size() + s.upper.size() + 1;
      fresh.push_back(std::move(s));
      row_done[row] = 1;
      new_basis[row] = cj;
    };
    const auto report_singular = [&](int cj, double best_abs) {
      if (std::getenv("TOLERANCE_LP_DEBUG") != nullptr) {
        std::fprintf(stderr,
                     "[lp] factorize singular at col %d best_abs=%g\n", cj,
                     best_abs);
      }
      factor_ok_ = false;
    };

    // Unit (aux/artificial) columns first: single ±1 entry, fixed row, no
    // fill.  Two unit columns sharing a row (slack + artificial of one
    // constraint) make the basis singular and are caught here.
    std::vector<int> structural;
    for (const int cj : basis_) {
      const auto j = static_cast<std::size_t>(cj);
      if (j < p_.n) {
        structural.push_back(cj);
        continue;
      }
      const std::size_t row = p_.aux_row(j);
      if (row_done[row]) {
        report_singular(cj, 0.0);
        return false;
      }
      transform(cj);
      if (std::fabs(work_[row]) <= 1e-12) {
        report_singular(cj, std::fabs(work_[row]));
        return false;
      }
      eliminate(cj, row);
    }
    std::sort(structural.begin(), structural.end());

    // Markowitz bookkeeping on the *original* patterns (fill rows created
    // by earlier steps still qualify as pivot rows; they just do not drive
    // the ordering).
    const std::size_t k = structural.size();
    std::vector<std::size_t> active(k, 0);     // unpivoted pattern rows
    std::vector<std::size_t> degree(p_.m, 0);  // remaining cols per row
    std::vector<std::vector<std::size_t>> cols_of_row(p_.m);
    for (std::size_t c = 0; c < k; ++c) {
      const auto j = static_cast<std::size_t>(structural[c]);
      for (std::size_t t = p_.cptr[j]; t < p_.cptr[j + 1]; ++t) {
        const auto r = static_cast<std::size_t>(p_.crow[t]);
        if (row_done[r]) continue;  // taken by a unit column
        ++active[c];
        ++degree[r];
        cols_of_row[r].push_back(c);
      }
    }
    std::vector<char> col_done(k, 0);
    for (std::size_t step = 0; step < k; ++step) {
      // Next column: fewest unpivoted pattern rows; ties go to the lower
      // column index (deterministic).
      std::size_t best_c = k;
      for (std::size_t c = 0; c < k; ++c) {
        if (col_done[c]) continue;
        if (best_c == k || active[c] < active[best_c]) best_c = c;
      }
      const int cj = structural[best_c];
      transform(cj);
      double vmax = 0.0;
      for (std::size_t i = 0; i < p_.m; ++i) {
        if (!row_done[i]) vmax = std::max(vmax, std::fabs(work_[i]));
      }
      if (vmax <= 1e-12) {
        report_singular(cj, vmax);
        return false;
      }
      // Threshold pivoting: among rows within markowitz_threshold of the
      // largest transformed entry, take the one shared with the fewest
      // remaining columns (least prospective fill), breaking ties toward
      // the larger magnitude.  The threshold is clamped to 1 so the
      // largest entry always qualifies.
      const double floor = std::max(
          1e-12, std::min(opt_.markowitz_threshold, 1.0) * vmax);
      std::size_t best_row = p_.m;
      for (std::size_t i = 0; i < p_.m; ++i) {
        if (row_done[i] || std::fabs(work_[i]) < floor) continue;
        if (best_row == p_.m || degree[i] < degree[best_row] ||
            (degree[i] == degree[best_row] &&
             std::fabs(work_[i]) > std::fabs(work_[best_row]))) {
          best_row = i;
        }
      }
      if (best_row == p_.m) {  // defensive: cannot happen with the clamp
        report_singular(cj, vmax);
        return false;
      }
      eliminate(cj, best_row);
      col_done[best_c] = 1;
      // The chosen column's pattern rows lose one prospective column; the
      // chosen row's columns lose one unpivoted row.
      {
        const auto j = static_cast<std::size_t>(cj);
        for (std::size_t t = p_.cptr[j]; t < p_.cptr[j + 1]; ++t) {
          const auto r = static_cast<std::size_t>(p_.crow[t]);
          if (degree[r] > 0) --degree[r];
        }
      }
      for (const std::size_t c : cols_of_row[best_row]) {
        if (!col_done[c] && active[c] > 0) --active[c];
      }
    }
    lu_ = std::move(fresh);
    etas_.clear();
    eta_nnz_ = fresh_nnz;
    if (std::getenv("TOLERANCE_LP_DEBUG") != nullptr) {
      std::fprintf(stderr, "[lp] LU reinversion: steps=%zu nnz=%zu\n",
                   lu_.size(), eta_nnz_);
    }
    set_basis(new_basis);
    pivots_since_factor_ = 0;
    factor_ok_ = true;
    return true;
  }

  /// x_B = B^{-1} rhs, recomputed from the factorization.  Reads whichever
  /// rhs mode is active (set_perturbed): cold phase 1 runs against the
  /// perturbed rhs (see Problem::rhs_pert); phase 2, warm starts and the
  /// terminal extraction use the true rhs.
  void compute_xb() {
    const auto& b = use_perturbed_ ? p_.rhs_pert : p_.rhs;
    std::copy(b.begin(), b.end(), xb_.begin());
    apply_etas_ftran(xb_);
  }

  void set_perturbed(bool on) { use_perturbed_ = on; }

  double min_xb() const {
    double lo = 0.0;
    for (double v : xb_) lo = std::min(lo, v);
    return lo;
  }

  // --- FTRAN / BTRAN -------------------------------------------------------

  static void apply_one_ftran(const Eta& e, std::vector<double>& x) {
    const auto r = static_cast<std::size_t>(e.row);
    const double t = x[r] / e.pivot;
    if (t != 0.0) {
      for (const auto& [i, w] : e.terms) {
        x[static_cast<std::size_t>(i)] -= w * t;
      }
    }
    x[r] = t;
  }

  /// x := B^{-1} x through the base factorization (LU steps when the
  /// Markowitz reinversion built one, Gauss-Jordan etas otherwise) followed
  /// by the incremental update etas pushed since.
  void apply_etas_ftran(std::vector<double>& x) const {
    for (const LuStep& s : lu_) {  // L forward
      const double t = x[static_cast<std::size_t>(s.row)];
      if (t != 0.0) {
        for (const auto& [i, m] : s.lower) {
          x[static_cast<std::size_t>(i)] -= m * t;
        }
      }
    }
    for (auto it = lu_.rbegin(); it != lu_.rend(); ++it) {  // U backward
      const auto r = static_cast<std::size_t>(it->row);
      const double z = x[r] / it->pivot;
      x[r] = z;
      if (z != 0.0) {
        for (const auto& [j, u] : it->upper) {
          x[static_cast<std::size_t>(j)] -= u * z;
        }
      }
    }
    for (const Eta& e : etas_) apply_one_ftran(e, x);
  }

  /// y := B^{-T} y — the exact transpose of apply_etas_ftran, applied in
  /// reverse: update etas backward, then U^T forward, then L^T backward.
  void apply_etas_btran(std::vector<double>& y) const {
    for (auto it = etas_.rbegin(); it != etas_.rend(); ++it) {
      const auto r = static_cast<std::size_t>(it->row);
      double acc = y[r];
      for (const auto& [i, w] : it->terms) {
        acc -= y[static_cast<std::size_t>(i)] * w;
      }
      y[r] = acc / it->pivot;
    }
    for (const LuStep& s : lu_) {  // U^T forward
      const auto r = static_cast<std::size_t>(s.row);
      double acc = y[r];
      for (const auto& [j, u] : s.upper) {
        acc -= y[static_cast<std::size_t>(j)] * u;
      }
      y[r] = acc / s.pivot;
    }
    for (auto it = lu_.rbegin(); it != lu_.rend(); ++it) {  // L^T backward
      const auto r = static_cast<std::size_t>(it->row);
      double acc = y[r];
      for (const auto& [i, m] : it->lower) {
        acc -= y[static_cast<std::size_t>(i)] * m;
      }
      y[r] = acc;
    }
  }

  /// y^T = c_B^T B^{-1} for the given phase's objective.
  void compute_duals(bool phase1, std::vector<double>& y) const {
    y.assign(p_.m, 0.0);
    for (std::size_t r = 0; r < p_.m; ++r) {
      y[r] = p_.cost(static_cast<std::size_t>(basis_[r]), phase1);
    }
    apply_etas_btran(y);
  }

  // --- primal simplex ------------------------------------------------------

  /// Run primal iterations on the current (primal-feasible) basis.  Returns
  /// Optimal, Unbounded or IterationLimit.
  LpStatus primal(bool phase1) {
    long stall = 0;
    std::vector<double> y;
    bool verified = false;  // optimality re-checked on a fresh factorization
    int failed_certifications = 0;
    const bool debug = std::getenv("TOLERANCE_LP_DEBUG") != nullptr;
    while (true) {
      if (iterations_ >= opt_.max_iterations) return LpStatus::IterationLimit;
      maybe_refactor();
      if (debug && iterations_ % 500 == 0) {
        std::fprintf(
            stderr,
            "[lp] phase%d iter=%ld etas=%zu eta_nnz=%zu stall=%ld p1obj=%g\n",
            phase1 ? 1 : 2, iterations_, etas_.size(), eta_nnz_, stall,
            phase1_objective());
      }
      compute_duals(phase1, y);
      const bool bland = stall > opt_.bland_stall_threshold;
      const std::size_t enter = price(phase1, y, bland);
      if (enter == kNoCol) {
        // A full pricing pass found no candidate.  Guard against a stale
        // eta file (or columns parked by pivot rejection) declaring a false
        // optimum: refactorize once, clear the parked set, and re-check.
        if ((verified || factorization_fresh()) && !banned_dirty_) {
          if (debug) {
            std::fprintf(stderr,
                         "[lp] phase%d optimal at iter=%ld p1obj=%g minxb=%g\n",
                         phase1 ? 1 : 2, iterations_, phase1_objective(),
                         min_xb());
          }
          return LpStatus::Optimal;
        }
        refactor_now();
        clear_banned();
        // Only a *successful* reinversion certifies the terminal verdict;
        // a basis that cannot be refactorized leaves dubious numerics, and
        // after a bounded number of attempts the honest answer is
        // IterationLimit rather than a drifted "Optimal".
        verified = factor_ok();
        if (!verified && ++failed_certifications >= 2) {
          return LpStatus::IterationLimit;
        }
        continue;
      }

      std::fill(work_.begin(), work_.end(), 0.0);
      p_.scatter(enter, 1.0, work_);
      apply_etas_ftran(work_);

      const std::size_t leave = ratio_test(work_, phase1, bland);
      if (leave == kNoRow) {
        if (!verified && !factorization_fresh()) {  // numerical guard
          refactor_now();
          verified = factor_ok();
          if (!verified && ++failed_certifications >= 2) {
            return LpStatus::IterationLimit;
          }
          continue;
        }
        if (debug) {
          double wmax = 0.0;
          for (double v : work_) wmax = std::max(wmax, v);
          std::fprintf(stderr,
                       "[lp] unbounded: phase%d iter=%ld enter=%zu wmax=%g\n",
                       phase1 ? 1 : 2, iterations_, enter, wmax);
        }
        return LpStatus::Unbounded;
      }
      // Pivot-size discipline: a tiny pivot element means the entering
      // column is numerically almost inside span(B); admitting it wrecks
      // the basis conditioning (reinversion then reports singularity).
      // Park the column and re-price.  Right after a fresh factorization
      // the transformed column is as accurate as it gets, so accept then —
      // genuinely ill-conditioned optimal bases remain reachable.
      if (!bland && !verified && std::fabs(work_[leave]) < 1e-7) {
        ban(enter);
        continue;
      }
      verified = false;
      const double theta = work_[leave] > opt_.eps
                               ? std::max(0.0, xb_[leave]) / work_[leave]
                               : 0.0;  // pinned artificial, either sign
      stall = theta <= 1e-12 ? stall + 1 : 0;
      pivot(enter, leave, theta);
      clear_banned();
    }
  }

  /// Dual-simplex repair: restore primal feasibility of a dual-feasible
  /// basis (after an rhs change) without re-running phase 1.  Returns
  /// Optimal when x_B >= -tol, Infeasible when a row proves the LP has no
  /// feasible point, IterationLimit when the repair budget runs out.
  LpStatus dual_repair() {
    std::vector<double> y, row(p_.m, 0.0);
    for (int it = 0; it < opt_.dual_repair_limit; ++it) {
      std::size_t leave = kNoRow;
      double most_neg = -1e-7;
      for (std::size_t r = 0; r < p_.m; ++r) {
        if (xb_[r] < most_neg) {
          most_neg = xb_[r];
          leave = r;
        }
      }
      if (leave == kNoRow) return LpStatus::Optimal;

      compute_duals(/*phase1=*/false, y);
      // Pivot row: alpha_j = (B^{-T} e_r)^T a_j over the nonbasic columns.
      std::fill(row.begin(), row.end(), 0.0);
      row[leave] = 1.0;
      apply_etas_btran(row);

      std::size_t enter = kNoCol;
      double best_ratio = kInf;
      for (std::size_t j = 0; j < p_.n + p_.m; ++j) {
        if (pos_[j] >= 0 || p_.is_artificial(j)) continue;
        const double alpha = p_.dot(row, j);
        if (alpha < -opt_.eps) {
          const double d = p_.cost(j, false) - p_.dot(y, j);
          const double ratio = std::max(d, 0.0) / -alpha;
          if (ratio < best_ratio - 1e-12 ||
              (ratio < best_ratio + 1e-12 &&
               (enter == kNoCol || j < enter))) {
            best_ratio = ratio;
            enter = j;
          }
        }
      }
      if (enter == kNoCol) return LpStatus::Infeasible;  // dual unbounded

      std::fill(work_.begin(), work_.end(), 0.0);
      p_.scatter(enter, 1.0, work_);
      apply_etas_ftran(work_);
      if (std::fabs(work_[leave]) <= opt_.eps) {
        return LpStatus::IterationLimit;  // numerically stuck; caller falls back
      }
      const double theta = xb_[leave] / work_[leave];
      pivot(enter, leave, theta);
      maybe_refactor();
    }
    return LpStatus::IterationLimit;
  }

  double phase1_objective() const {
    double total = 0.0;
    for (std::size_t r = 0; r < p_.m; ++r) {
      if (p_.is_artificial(static_cast<std::size_t>(basis_[r]))) {
        total += std::max(0.0, xb_[r]);
      }
    }
    return total;
  }

  bool has_basic_artificial() const {
    for (int b : basis_) {
      if (p_.is_artificial(static_cast<std::size_t>(b))) return true;
    }
    return false;
  }

  /// Refresh the factorization (and x_B) from the current basis.  A
  /// reinversion that fails on near-singularity keeps the incremental eta
  /// file — slightly drifted numerics beat aborting the solve — and backs
  /// off before retrying.
  void refactor_now() {
    // On failure keep the incremental eta file (slightly drifted numerics
    // beat aborting) but remember that this is NOT a fresh factorization:
    // terminal optimality/unboundedness checks must not trust it.
    factor_ok_ = factorize();
    if (!factor_ok_) pivots_since_factor_ = 0;
    compute_xb();  // always: picks up rhs-mode switches and heals drift
  }

  bool factorization_fresh() const {
    return factor_ok_ && pivots_since_factor_ == 0;
  }

  bool factor_ok() const { return factor_ok_; }

  /// Refresh only when pivots happened since the last factorization; a
  /// fresh factorization's x_B is already exact, and at large m one
  /// reinversion is the dominant cost of a warm re-solve.
  void refresh_if_stale() {
    if (pivots_since_factor_ > 0) refactor_now();
  }

 private:
  static constexpr std::size_t kNoCol =
      std::numeric_limits<std::size_t>::max();
  static constexpr std::size_t kNoRow =
      std::numeric_limits<std::size_t>::max();

  void maybe_refactor() {
    // The Gauss-Jordan reinversion costs O(fill * m), so the static mode
    // spreads it out on big instances even though the eta file (and
    // FTRAN/BTRAN sweeps) grow meanwhile.  The Markowitz LU reinversion is
    // cheap enough that a fixed cadence wins: it keeps the dense-ish update
    // etas from dominating the sweeps.
    const long interval =
        opt_.markowitz_reinversion
            ? opt_.refactor_interval
            : std::max<long>(opt_.refactor_interval,
                             static_cast<long>(p_.m) / 4);
    if (pivots_since_factor_ >= interval) refactor_now();
  }

  void ban(std::size_t j) {
    banned_[j] = 1;
    banned_dirty_ = true;
  }

  void clear_banned() {
    if (banned_dirty_) {
      std::fill(banned_.begin(), banned_.end(), 0);
      banned_dirty_ = false;
    }
  }

  void push_eta(std::size_t row, const std::vector<double>& w) {
    Eta e;
    e.row = static_cast<int>(row);
    e.pivot = w[row];
    for (std::size_t i = 0; i < p_.m; ++i) {
      if (i != row && w[i] != 0.0) {
        e.terms.push_back({static_cast<int>(i), w[i]});
      }
    }
    eta_nnz_ += e.terms.size() + 1;
    etas_.push_back(std::move(e));
  }

  /// Partial pricing: scan eligible columns in a rotating window starting at
  /// the cursor, keep the best Dantzig candidate of the first window that
  /// has one; a full wrap with no candidate means optimal.  Bland mode scans
  /// from column 0 and takes the first eligible column.
  std::size_t price(bool phase1, const std::vector<double>& y, bool bland) {
    const std::size_t scan_end = p_.n + p_.m;  // artificials never enter
    std::size_t best = kNoCol;
    double best_d = -opt_.eps;
    std::size_t scanned = 0;
    std::size_t j = bland ? 0 : cursor_ % scan_end;
    int window_left = opt_.price_window;
    while (scanned < scan_end) {
      if (pos_[j] < 0 && !banned_[j] && !p_.is_artificial(j)) {
        const double d = p_.cost(j, phase1) - p_.dot(y, j);
        if (d < -opt_.eps) {
          if (bland) return j;
          if (d < best_d) {
            best_d = d;
            best = j;
          }
        }
      }
      ++scanned;
      j = j + 1 == scan_end ? 0 : j + 1;
      if (!bland && --window_left == 0) {
        if (best != kNoCol) break;
        window_left = opt_.price_window;
      }
    }
    if (best != kNoCol) cursor_ = j;
    return best;
  }

  /// Min-ratio test with two refinements over the dense core's:
  ///  * In phase 2, a row whose basic variable is a zero-valued artificial
  ///    (a redundant row left over from phase 1) joins as a ratio-0
  ///    candidate on *either* pivot sign, so an artificial can never grow
  ///    back above zero and silently leave the original feasible region.
  ///  * Ties within a small ratio window are resolved by the largest pivot
  ///    element (Harris-style): this LP family has heavily degenerate
  ///    bases, and always pivoting on the biggest eligible element both
  ///    keeps the basis well-conditioned and breaks the tie patterns that
  ///    make Dantzig cycle.  Under Bland's rule the tie-break reverts to
  ///    the smallest basic column index, preserving its termination proof.
  std::size_t ratio_test(const std::vector<double>& w, bool phase1,
                         bool bland) const {
    std::size_t leave = kNoRow;
    double best_ratio = kInf;
    double best_pivot = 0.0;
    for (std::size_t r = 0; r < p_.m; ++r) {
      const double a = w[r];
      // Artificials carrying only tolerance-level mass (phase 1 ends within
      // the perturbation noise of zero) count as pinned-at-zero.
      const bool art_pin =
          !phase1 && std::fabs(a) > opt_.eps && xb_[r] <= 1e-6 &&
          p_.is_artificial(static_cast<std::size_t>(basis_[r]));
      if (a <= opt_.eps && !art_pin) continue;
      const double ratio = art_pin ? 0.0 : std::max(0.0, xb_[r]) / a;
      if (ratio < best_ratio - 1e-12) {
        best_ratio = ratio;
        best_pivot = std::fabs(a);
        leave = r;
      } else if (ratio <= best_ratio + 1e-12) {
        best_ratio = std::min(best_ratio, ratio);
        const bool better =
            bland ? (leave != kNoRow && basis_[r] < basis_[leave])
                  : std::fabs(a) > best_pivot;
        if (better) {
          best_pivot = std::fabs(a);
          leave = r;
        }
      }
    }
    return leave;
  }

  void pivot(std::size_t enter, std::size_t leave, double theta) {
    if (theta != 0.0) {
      for (std::size_t i = 0; i < p_.m; ++i) xb_[i] -= theta * work_[i];
    }
    xb_[leave] = theta;
    push_eta(leave, work_);
    pos_[static_cast<std::size_t>(basis_[leave])] = -1;
    basis_[leave] = static_cast<int>(enter);
    pos_[enter] = static_cast<int>(leave);
    ++iterations_;
    ++pivots_since_factor_;
  }

  const Problem& p_;
  const SimplexSolver::Options& opt_;
  std::vector<int> basis_;
  std::vector<int> pos_;       // column -> basis row, -1 if nonbasic
  std::vector<char> banned_;   // columns parked by pivot-size rejection
  bool banned_dirty_ = false;
  bool factor_ok_ = true;      // last factorize() attempt succeeded
  bool use_perturbed_ = true;
  std::vector<double> xb_;
  std::vector<double> work_;   // FTRAN scratch (also the last pivot column)
  std::vector<LuStep> lu_;     // base factorization (Markowitz reinversion)
  std::vector<Eta> etas_;      // GJ base (static mode) + incremental updates
  std::size_t eta_nnz_ = 0;
  std::size_t cursor_ = 0;     // partial-pricing rotation state
  long iterations_ = 0;
  int pivots_since_factor_ = 0;
};

bool valid_warm_basis(const Problem& p, const SimplexBasis& warm) {
  if (warm.basic.size() != p.m) return false;
  std::vector<char> seen(p.num_cols(), 0);
  for (int b : warm.basic) {
    if (b < 0 || static_cast<std::size_t>(b) >= p.num_cols()) return false;
    const auto j = static_cast<std::size_t>(b);
    if (!p.col_exists(j) || seen[j]) return false;
    seen[j] = 1;
  }
  return true;
}

}  // namespace

LpSolution SimplexSolver::solve_revised(const LinearProgram& lp,
                                        const SimplexBasis* warm) const {
  TOL_ENSURE(lp.num_vars > 0, "LP must have at least one variable");
  TOL_ENSURE(static_cast<int>(lp.objective.size()) == lp.num_vars,
             "objective size mismatch");
  const bool debug = std::getenv("TOLERANCE_LP_DEBUG") != nullptr;
  if (debug) std::fprintf(stderr, "[lp] building problem\n");
  const Problem p = build_problem(lp);
  if (debug) std::fprintf(stderr, "[lp] problem built m=%zu n=%zu\n", p.m, p.n);
  RevisedCore core(p, options_);
  LpSolution sol;

  // --- warm-start attempt --------------------------------------------------
  bool warm_ready = false;  // basis factorized and primal feasible
  if (warm != nullptr && !warm->empty()) {
    sol.warm_start = WarmStart::Rejected;
    core.set_perturbed(false);  // warm bases are judged against the true rhs
    if (valid_warm_basis(p, *warm)) {
      core.set_basis(warm->basic);
      if (core.factorize()) {
        core.compute_xb();
        // A usable warm basis needs x_B >= 0 AND any basic artificials at
        // (near) zero: an artificial absorbing real mass means the basis
        // does not actually satisfy its constraint row — e.g. a basis from
        // an LP where that row was redundant, warm-started on one where it
        // binds — and trusting it would return an infeasible "optimum".
        if (core.min_xb() >= -1e-7 && core.phase1_objective() <= 1e-6) {
          sol.warm_start = WarmStart::PrimalReuse;
          warm_ready = true;
        } else if (core.min_xb() < -1e-7 &&
                   core.phase1_objective() <= 1e-6) {
          const LpStatus st = core.dual_repair();
          if (st == LpStatus::Optimal && core.phase1_objective() <= 1e-6) {
            sol.warm_start = WarmStart::DualRepair;
            warm_ready = true;
          } else if (st == LpStatus::Infeasible) {
            // Dual unboundedness proves primal infeasibility outright.
            sol.status = LpStatus::Infeasible;
            sol.warm_start = WarmStart::DualRepair;
            sol.iterations = core.iterations();
            return sol;
          }
          // IterationLimit: repair budget exhausted — cold solve below.
        }
      }
    }
  }

  // --- cold start: slack/artificial crash basis + phase 1 ------------------
  if (!warm_ready) {
    std::vector<int> crash(p.m);
    for (std::size_t i = 0; i < p.m; ++i) {
      crash[i] = static_cast<int>(p.rel[i] == Relation::GreaterEq
                                      ? p.n + p.m + i   // artificial
                                      : p.n + i);       // slack or artificial
    }
    core.set_basis(crash);
    TOL_ENSURE(core.factorize(), "crash basis must be nonsingular");
    if (core.has_basic_artificial()) {
      // Phase 1 runs against the perturbed rhs: the all-zero flow rows of
      // the occupancy LP make every ratio test tie otherwise, and Dantzig
      // (or even Bland, once factorization noise enters the reduced costs)
      // cycles through degenerate pivots forever.
      core.set_perturbed(true);
      core.compute_xb();
      if (debug) std::fprintf(stderr, "[lp] crash basis factorized\n");
      const LpStatus st = core.primal(/*phase1=*/true);
      if (st != LpStatus::Optimal) {
        // Phase 1 is bounded below by 0; Unbounded here is numerical noise.
        sol.status = st == LpStatus::Unbounded ? LpStatus::IterationLimit : st;
        sol.iterations = core.iterations();
        return sol;
      }
      // Judge feasibility — and run phase 2 — against the true rhs.
      core.set_perturbed(false);
      core.refresh_if_stale();
      core.compute_xb();
      if (debug) {
        std::fprintf(stderr, "[lp] true-rhs p1obj=%g minxb=%g\n",
                     core.phase1_objective(), core.min_xb());
      }
      // Slightly looser than the dense core's 1e-7: the perturbed phase 1
      // can park tolerance-level mass (~ the injected perturbation, 1e-7
      // sized) on an artificial of a feasible LP; genuinely infeasible
      // LPs overshoot this by orders of magnitude.
      if (core.phase1_objective() > 1e-6) {
        sol.status = LpStatus::Infeasible;
        sol.iterations = core.iterations();
        return sol;
      }
      // Remaining basic artificials sit at zero on redundant rows; the
      // ratio-test guard pins them there through phase 2.
    } else {
      core.set_perturbed(false);
      core.compute_xb();
    }
  }

  const LpStatus st = core.primal(/*phase1=*/false);
  sol.status = st;
  sol.iterations = core.iterations();
  sol.eta_nnz = core.eta_nnz();
  if (st != LpStatus::Optimal) return sol;

  core.refresh_if_stale();  // crisp x_B for extraction
  sol.eta_nnz = core.eta_nnz();
  sol.x.assign(p.n, 0.0);
  const std::vector<int>& basis = core.basis();
  {
    // Recompute x_B once more on the fresh factorization.
    std::vector<double> xb = p.rhs;
    core.apply_etas_ftran(xb);
    for (std::size_t r = 0; r < p.m; ++r) {
      const auto j = static_cast<std::size_t>(basis[r]);
      if (j < p.n) sol.x[j] = std::max(0.0, xb[r]);
    }
  }
  sol.objective = 0.0;
  for (std::size_t j = 0; j < p.n; ++j) {
    sol.objective += p.objective[j] * sol.x[j];
  }
  sol.basis.basic = basis;
  return sol;
}

}  // namespace tolerance::lp
