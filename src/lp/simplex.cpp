// SimplexSolver dispatch + the legacy dense two-phase tableau core.
//
// The dense core is kept behind Options::dense_fallback for differential
// testing against the sparse revised simplex (revised_simplex.cpp).  It
// exports its optimal basis in the same shape-stable encoding, so a dense
// solve can seed a warm-started revised solve.
#include "tolerance/lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tolerance/util/ensure.hpp"

namespace tolerance::lp {
namespace {

// Dense tableau with rows = constraints, plus one cost row.  Column layout:
// [original vars | slack/surplus | artificials | rhs].
struct Tableau {
  std::size_t rows = 0;    // number of constraints
  std::size_t cols = 0;    // total columns including rhs
  std::size_t active = 0;  // pivots update columns [0, active) + rhs only
  std::vector<double> t;   // (rows + 1) x cols, cost row last
  std::vector<int> basis;  // basis variable per row

  double& at(std::size_t r, std::size_t c) { return t[r * cols + c]; }
  double at(std::size_t r, std::size_t c) const { return t[r * cols + c]; }
  double* row(std::size_t r) { return t.data() + r * cols; }

  std::size_t cost_row() const { return rows; }
  std::size_t rhs_col() const { return cols - 1; }

  // Once phase 1 retires the artificial block, `active` shrinks so pivots
  // stop sweeping those dead columns (they are never read again: phase-2
  // pricing, ratio tests and extraction all stay below `active`).
  void pivot(std::size_t prow, std::size_t pcol) {
    double* pr = row(prow);
    const double inv = 1.0 / pr[pcol];
    for (std::size_t c = 0; c < active; ++c) pr[c] *= inv;
    pr[rhs_col()] *= inv;
    pr[pcol] = 1.0;  // kill round-off on the pivot element
    for (std::size_t r = 0; r <= rows; ++r) {
      if (r == prow) continue;
      double* rr = row(r);
      const double factor = rr[pcol];
      if (factor == 0.0) continue;
      for (std::size_t c = 0; c < active; ++c) rr[c] -= factor * pr[c];
      rr[rhs_col()] -= factor * pr[rhs_col()];
      rr[pcol] = 0.0;
    }
    basis[prow] = static_cast<int>(pcol);
  }
};

}  // namespace

LpSolution SimplexSolver::solve(const LinearProgram& lp) const {
  return options_.dense_fallback ? solve_dense(lp)
                                 : solve_revised(lp, nullptr);
}

LpSolution SimplexSolver::solve(const LinearProgram& lp,
                                const SimplexBasis& warm) const {
  // The dense core has no warm-start path; it silently solves cold.
  return options_.dense_fallback ? solve_dense(lp)
                                 : solve_revised(lp, &warm);
}

LpSolution SimplexSolver::solve_dense(const LinearProgram& lp) const {
  TOL_ENSURE(lp.num_vars > 0, "LP must have at least one variable");
  TOL_ENSURE(static_cast<int>(lp.objective.size()) == lp.num_vars,
             "objective size mismatch");
  const double eps = options_.eps;
  const std::size_t m = lp.constraints.size();
  const std::size_t n = static_cast<std::size_t>(lp.num_vars);

  // Count auxiliary columns.  Rows are normalized to have rhs >= 0 first.
  std::size_t num_slack = 0;
  std::size_t num_artificial = 0;
  std::vector<int> sign(m, 1);  // +1 keep, -1 negate row
  std::vector<Relation> rel(m);
  for (std::size_t i = 0; i < m; ++i) {
    rel[i] = lp.constraints[i].relation;
    if (lp.constraints[i].rhs < 0.0) {
      sign[i] = -1;
      if (rel[i] == Relation::LessEq) {
        rel[i] = Relation::GreaterEq;
      } else if (rel[i] == Relation::GreaterEq) {
        rel[i] = Relation::LessEq;
      }
    }
    if (rel[i] != Relation::Eq) ++num_slack;
    if (rel[i] != Relation::LessEq) ++num_artificial;
  }

  Tableau tab;
  tab.rows = m;
  tab.cols = n + num_slack + num_artificial + 1;
  tab.active = tab.cols - 1;
  tab.t.assign((m + 1) * tab.cols, 0.0);
  tab.basis.assign(m, -1);

  const std::size_t slack_base = n;
  const std::size_t art_base = n + num_slack;
  std::size_t next_slack = 0;
  std::size_t next_art = 0;
  // Internal (packed) auxiliary column -> constraint row, for the
  // shape-stable basis export.
  std::vector<std::size_t> col_row(tab.cols, 0);

  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = lp.constraints[i];
    double* r = tab.row(i);
    for (const auto& [var, coeff] : con.terms) {
      TOL_ENSURE(var >= 0 && var < lp.num_vars, "constraint variable index");
      r[static_cast<std::size_t>(var)] += sign[i] * coeff;
    }
    r[tab.rhs_col()] = sign[i] * con.rhs;
    switch (rel[i]) {
      case Relation::LessEq: {
        const std::size_t sc = slack_base + next_slack++;
        r[sc] = 1.0;
        col_row[sc] = i;
        tab.basis[i] = static_cast<int>(sc);
        break;
      }
      case Relation::GreaterEq: {
        const std::size_t sc = slack_base + next_slack++;
        r[sc] = -1.0;  // surplus
        col_row[sc] = i;
        const std::size_t ac = art_base + next_art++;
        r[ac] = 1.0;
        col_row[ac] = i;
        tab.basis[i] = static_cast<int>(ac);
        break;
      }
      case Relation::Eq: {
        const std::size_t ac = art_base + next_art++;
        r[ac] = 1.0;
        col_row[ac] = i;
        tab.basis[i] = static_cast<int>(ac);
        break;
      }
    }
  }

  LpSolution sol;
  long iterations = 0;

  auto run_simplex = [&](std::size_t num_cols_active) -> LpStatus {
    long stall = 0;
    while (true) {
      if (iterations >= options_.max_iterations) {
        return LpStatus::IterationLimit;
      }
      const double* cost = tab.row(tab.cost_row());
      // Entering column: Dantzig rule, or Bland's rule when stalling.
      std::size_t enter = num_cols_active;
      const bool bland = stall > options_.bland_stall_threshold;
      double best = -eps;
      for (std::size_t c = 0; c < num_cols_active; ++c) {
        if (cost[c] < -eps) {
          if (bland) {
            enter = c;
            break;
          }
          if (cost[c] < best) {
            best = cost[c];
            enter = c;
          }
        }
      }
      if (enter == num_cols_active) return LpStatus::Optimal;
      // Ratio test.
      std::size_t leave = m;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t r = 0; r < m; ++r) {
        const double a = tab.at(r, enter);
        if (a > eps) {
          const double ratio = tab.at(r, tab.rhs_col()) / a;
          if (ratio < best_ratio - 1e-12 ||
              (std::fabs(ratio - best_ratio) <= 1e-12 && leave < m &&
               tab.basis[r] < tab.basis[leave])) {
            best_ratio = ratio;
            leave = r;
          }
        }
      }
      if (leave == m) return LpStatus::Unbounded;
      if (best_ratio <= 1e-12) {
        ++stall;  // degenerate pivot
      } else {
        stall = 0;
      }
      tab.pivot(leave, enter);
      ++iterations;
    }
  };

  // Phase 1: minimize the sum of artificial variables.
  if (num_artificial > 0) {
    double* cost = tab.row(tab.cost_row());
    for (std::size_t c = art_base; c < art_base + num_artificial; ++c) {
      cost[c] = 1.0;
    }
    // Make the cost row consistent with the (artificial) basis.
    for (std::size_t r = 0; r < m; ++r) {
      const int b = tab.basis[r];
      if (b >= static_cast<int>(art_base)) {
        const double* rr = tab.row(r);
        for (std::size_t c = 0; c < tab.cols; ++c) cost[c] -= rr[c];
      }
    }
    const LpStatus st = run_simplex(tab.cols - 1);
    if (st != LpStatus::Optimal) {
      sol.status = st;
      sol.iterations = iterations;
      return sol;
    }
    const double phase1 = -tab.at(tab.cost_row(), tab.rhs_col());
    if (phase1 > 1e-7) {
      sol.status = LpStatus::Infeasible;
      sol.iterations = iterations;
      return sol;
    }
    // The artificial block is dead from here on: phase-2 pricing stays
    // below art_base, so shrink the pivots' active width instead of
    // zeroing the columns (the old code paid O(m * num_artificial) per
    // phase-2 pivot re-sweeping them).
    tab.active = art_base;
    // Drive remaining artificials out of the basis where possible.
    for (std::size_t r = 0; r < m; ++r) {
      if (tab.basis[r] >= static_cast<int>(art_base)) {
        std::size_t enter = art_base;
        for (std::size_t c = 0; c < art_base; ++c) {
          if (std::fabs(tab.at(r, c)) > eps) {
            enter = c;
            break;
          }
        }
        if (enter < art_base) {
          tab.pivot(r, enter);
          ++iterations;
        }
        // Otherwise the row is redundant; the artificial stays basic at 0.
      }
    }
  }

  // Phase 2: restore the real objective expressed in the current basis.
  {
    double* cost = tab.row(tab.cost_row());
    std::fill(cost, cost + tab.cols, 0.0);
    for (std::size_t c = 0; c < n; ++c) cost[c] = lp.objective[c];
    for (std::size_t r = 0; r < m; ++r) {
      const int b = tab.basis[r];
      if (b >= 0 && b < static_cast<int>(n)) {
        const double cb = lp.objective[static_cast<std::size_t>(b)];
        if (cb == 0.0) continue;
        const double* rr = tab.row(r);
        for (std::size_t c = 0; c < tab.active; ++c) cost[c] -= cb * rr[c];
        cost[tab.rhs_col()] -= cb * rr[tab.rhs_col()];
      }
    }
    const LpStatus st = run_simplex(art_base);  // artificials excluded
    sol.status = st;
    sol.iterations = iterations;
    if (st != LpStatus::Optimal) return sol;
  }

  sol.x.assign(n, 0.0);
  for (std::size_t r = 0; r < m; ++r) {
    const int b = tab.basis[r];
    if (b >= 0 && b < static_cast<int>(n)) {
      sol.x[static_cast<std::size_t>(b)] = tab.at(r, tab.rhs_col());
    }
  }
  sol.objective = 0.0;
  for (std::size_t c = 0; c < n; ++c) sol.objective += lp.objective[c] * sol.x[c];
  // Export the basis in the shape-stable encoding shared with the revised
  // core: structural as-is, slack/surplus -> n + row, artificial -> n + row
  // for Eq rows (their only auxiliary) or n + 2m... see SimplexBasis.
  sol.basis.basic.resize(m);
  for (std::size_t r = 0; r < m; ++r) {
    const auto b = static_cast<std::size_t>(tab.basis[r]);
    if (b < n) {
      sol.basis.basic[r] = static_cast<int>(b);
    } else if (b < art_base) {
      sol.basis.basic[r] = static_cast<int>(n + col_row[b]);
    } else {
      const std::size_t row = col_row[b];
      sol.basis.basic[r] = static_cast<int>(
          rel[row] == Relation::Eq ? n + row : n + m + row);
    }
  }
  return sol;
}

}  // namespace tolerance::lp
