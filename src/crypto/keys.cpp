#include "tolerance/crypto/keys.hpp"

#include <sstream>

namespace tolerance::crypto {

std::string KeyRegistry::register_principal(PrincipalId id,
                                            std::uint64_t seed) {
  // Derive a secret deterministically from (id, seed) through the hash; the
  // attacker model never has access to the registry, so predictability across
  // runs is a feature (reproducible tests), not a weakness.
  std::ostringstream material;
  material << "tolerance-key|" << id << '|' << seed;
  const Digest d = Sha256::hash(material.str());
  std::string secret(reinterpret_cast<const char*>(d.data()), d.size());
  secrets_[id] = secret;
  return secret;
}

bool KeyRegistry::known(PrincipalId id) const {
  return secrets_.find(id) != secrets_.end();
}

bool KeyRegistry::verify(std::string_view message,
                         const Signature& sig) const {
  const auto it = secrets_.find(sig.signer);
  if (it == secrets_.end()) return false;
  return hmac_verify(it->second, message, sig.tag);
}

}  // namespace tolerance::crypto
