#include "tolerance/crypto/keys.hpp"

#include <sstream>

namespace tolerance::crypto {

std::string KeyRegistry::register_principal(PrincipalId id,
                                            std::uint64_t seed) {
  // Derive a secret deterministically from (id, seed) through the hash; the
  // attacker model never has access to the registry, so predictability across
  // runs is a feature (reproducible tests), not a weakness.
  std::ostringstream material;
  material << "tolerance-key|" << id << '|' << seed;
  const Digest d = Sha256::hash(material.str());
  std::string secret(reinterpret_cast<const char*>(d.data()), d.size());
  // Same (id, seed) => same key: return without touching the map.  This is
  // what makes a crash-restart's re-registration safe in the wall-clock
  // lane, where other nodes' event loops read this entry concurrently —
  // an identical re-assignment would still be a data race.
  const auto it = secrets_.find(id);
  if (it != secrets_.end() && it->second == secret) return secret;
  secrets_[id] = secret;
  return secret;
}

bool KeyRegistry::known(PrincipalId id) const {
  return secrets_.find(id) != secrets_.end();
}

bool KeyRegistry::verify(std::string_view message,
                         const Signature& sig) const {
  const auto it = secrets_.find(sig.signer);
  if (it == secrets_.end()) return false;
  return hmac_verify(it->second, message, sig.tag);
}

}  // namespace tolerance::crypto
