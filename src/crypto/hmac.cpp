#include "tolerance/crypto/hmac.hpp"

#include <array>

namespace tolerance::crypto {

Digest hmac_sha256(std::string_view key, std::string_view message) {
  constexpr std::size_t kBlock = 64;
  std::array<std::uint8_t, kBlock> k{};
  if (key.size() > kBlock) {
    const Digest kd = Sha256::hash(key);
    std::copy(kd.begin(), kd.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  std::array<std::uint8_t, kBlock> ipad{}, opad{};
  for (std::size_t i = 0; i < kBlock; ++i) {
    ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
  }
  Sha256 inner;
  inner.update(ipad.data(), ipad.size());
  inner.update(message);
  const Digest inner_digest = inner.finalize();
  Sha256 outer;
  outer.update(opad.data(), opad.size());
  outer.update(inner_digest.data(), inner_digest.size());
  return outer.finalize();
}

bool hmac_verify(std::string_view key, std::string_view message,
                 const Digest& tag) {
  return digest_equal(hmac_sha256(key, message), tag);
}

}  // namespace tolerance::crypto
