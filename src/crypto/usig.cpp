#include "tolerance/crypto/usig.hpp"

#include <sstream>

namespace tolerance::crypto {

std::string Usig::certificate_payload(PrincipalId replica,
                                      std::uint64_t epoch,
                                      std::uint64_t counter,
                                      const Digest& digest) {
  std::ostringstream os;
  os << "usig|" << replica << '|' << epoch << '|' << counter << '|'
     << to_hex(digest);
  return os.str();
}

UniqueIdentifier Usig::create(const Digest& message_digest) {
  // The counter is strictly monotonic and never reused — the tamperproof
  // property that prevents equivocation.
  ++counter_;
  UniqueIdentifier ui;
  ui.replica = replica_;
  ui.epoch = epoch_;
  ui.counter = counter_;
  ui.certificate = hmac_sha256(
      secret_,
      certificate_payload(replica_, epoch_, counter_, message_digest));
  return ui;
}

bool Usig::verify(const KeyRegistry& registry, const Digest& message_digest,
                  const UniqueIdentifier& ui) {
  // The registry models the trusted verification path of the USIG service:
  // certificates are HMACs under the issuing replica's USIG secret, which is
  // registered in its own key namespace.
  const Signature sig{ui.replica + kUsigPrincipalOffset, ui.certificate};
  return registry.verify(
      certificate_payload(ui.replica, ui.epoch, ui.counter, message_digest),
      sig);
}

}  // namespace tolerance::crypto
