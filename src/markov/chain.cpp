#include "tolerance/markov/chain.hpp"

#include <cmath>
#include <limits>

#include "tolerance/la/solve.hpp"
#include "tolerance/stats/distributions.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::markov {

MarkovChain::MarkovChain(la::Matrix transition) : p_(std::move(transition)) {
  TOL_ENSURE(p_.rows() == p_.cols(), "transition matrix must be square");
  TOL_ENSURE(p_.is_row_stochastic(1e-8),
             "transition matrix must be row-stochastic");
}

std::vector<double> MarkovChain::mean_hitting_times(
    const std::vector<bool>& target) const {
  const std::size_t n = num_states();
  TOL_ENSURE(target.size() == n, "target mask size mismatch");

  // Identify states that can reach the target (backward reachability);
  // unreachable states have infinite hitting time and are excluded from the
  // linear system to keep it non-singular.
  std::vector<bool> can_reach = target;
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      if (can_reach[i]) continue;
      for (std::size_t j = 0; j < n; ++j) {
        if (p_(i, j) > 0.0 && can_reach[j]) {
          can_reach[i] = true;
          changed = true;
          break;
        }
      }
    }
  }

  // Transient (non-target, reachable) states form the linear system
  // (I - Q) h = 1.
  std::vector<std::size_t> transient;
  std::vector<int> index(n, -1);
  for (std::size_t i = 0; i < n; ++i) {
    if (!target[i] && can_reach[i]) {
      index[i] = static_cast<int>(transient.size());
      transient.push_back(i);
    }
  }
  std::vector<double> h(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    if (!can_reach[i]) h[i] = std::numeric_limits<double>::infinity();
  }
  if (transient.empty()) return h;

  const std::size_t m = transient.size();
  la::Matrix a(m, m, 0.0);
  std::vector<double> b(m, 1.0);
  for (std::size_t r = 0; r < m; ++r) {
    const std::size_t i = transient[r];
    for (std::size_t j = 0; j < n; ++j) {
      const double pij = p_(i, j);
      if (pij == 0.0) continue;
      if (index[j] >= 0) {
        a(r, static_cast<std::size_t>(index[j])) -= pij;
      }
      // Mass flowing to unreachable states would make the hitting time
      // infinite; in that case this row's solution is meaningless, flag below.
      if (!can_reach[j]) {
        b[r] = std::numeric_limits<double>::infinity();
      }
    }
    a(r, r) += 1.0;
  }
  // If any rhs is infinite the state can avoid the target forever with
  // positive probability => infinite mean hitting time.
  bool any_inf = false;
  for (double v : b) {
    if (std::isinf(v)) any_inf = true;
  }
  if (any_inf) {
    // Mean hitting time is infinite for every state that can leak to an
    // unreachable state (directly or transitively).  Conservatively mark all
    // states that reach a leaking state as infinite via forward propagation.
    std::vector<bool> leaks(n, false);
    for (std::size_t r = 0; r < m; ++r) {
      if (std::isinf(b[r])) leaks[transient[r]] = true;
    }
    bool ch = true;
    while (ch) {
      ch = false;
      for (std::size_t r = 0; r < m; ++r) {
        const std::size_t i = transient[r];
        if (leaks[i]) continue;
        for (std::size_t j = 0; j < n; ++j) {
          if (p_(i, j) > 0.0 && leaks[j]) {
            leaks[i] = true;
            ch = true;
            break;
          }
        }
      }
    }
    for (std::size_t i = 0; i < n; ++i) {
      if (leaks[i]) h[i] = std::numeric_limits<double>::infinity();
    }
    // Solve the reduced system over the non-leaking transient states.
    std::vector<std::size_t> keep;
    std::vector<int> kidx(n, -1);
    for (std::size_t i : transient) {
      if (!leaks[i]) {
        kidx[i] = static_cast<int>(keep.size());
        keep.push_back(i);
      }
    }
    if (keep.empty()) return h;
    la::Matrix a2(keep.size(), keep.size(), 0.0);
    std::vector<double> b2(keep.size(), 1.0);
    for (std::size_t r = 0; r < keep.size(); ++r) {
      const std::size_t i = keep[r];
      for (std::size_t j = 0; j < n; ++j) {
        const double pij = p_(i, j);
        if (pij != 0.0 && kidx[j] >= 0) {
          a2(r, static_cast<std::size_t>(kidx[j])) -= pij;
        }
      }
      a2(r, r) += 1.0;
    }
    const auto sol = la::gauss_solve(a2, b2);
    for (std::size_t r = 0; r < keep.size(); ++r) h[keep[r]] = sol[r];
    return h;
  }

  const auto sol = la::gauss_solve(a, b);
  for (std::size_t r = 0; r < m; ++r) h[transient[r]] = sol[r];
  return h;
}

std::vector<double> MarkovChain::distribution_after(std::vector<double> init,
                                                    int t) const {
  TOL_ENSURE(init.size() == num_states(), "initial distribution size");
  TOL_ENSURE(t >= 0, "horizon must be non-negative");
  for (int step = 0; step < t; ++step) init = la::vecmat(init, p_);
  return init;
}

std::vector<double> MarkovChain::reliability_curve(
    const std::vector<double>& init, const std::vector<bool>& failed,
    int horizon) const {
  const std::size_t n = num_states();
  TOL_ENSURE(init.size() == n, "initial distribution size");
  TOL_ENSURE(failed.size() == n, "failed mask size");
  TOL_ENSURE(horizon >= 0, "horizon must be non-negative");
  // Make failure states absorbing so that mass in non-failed states at time t
  // equals P[T_f > t] (eq. (18)).
  la::Matrix q = p_;
  for (std::size_t i = 0; i < n; ++i) {
    if (!failed[i]) continue;
    for (std::size_t j = 0; j < n; ++j) q(i, j) = 0.0;
    q(i, i) = 1.0;
  }
  std::vector<double> dist = init;
  std::vector<double> curve;
  curve.reserve(static_cast<std::size_t>(horizon) + 1);
  auto survive_mass = [&]() {
    double s = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!failed[i]) s += dist[i];
    }
    return s;
  };
  curve.push_back(survive_mass());
  for (int t = 1; t <= horizon; ++t) {
    dist = la::vecmat(dist, q);
    curve.push_back(survive_mass());
  }
  return curve;
}

std::vector<double> MarkovChain::stationary_distribution(int max_iters,
                                                         double tol) const {
  const std::size_t n = num_states();
  std::vector<double> dist(n, 1.0 / static_cast<double>(n));
  for (int it = 0; it < max_iters; ++it) {
    auto next = la::vecmat(dist, p_);
    double delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) delta += std::fabs(next[i] - dist[i]);
    dist = std::move(next);
    if (delta < tol) break;
  }
  return dist;
}

int MarkovChain::step(int state, Rng& rng) const {
  TOL_ENSURE(state >= 0 && static_cast<std::size_t>(state) < num_states(),
             "state out of range");
  double u = rng.uniform();
  const double* row = p_.row(static_cast<std::size_t>(state));
  for (std::size_t j = 0; j + 1 < num_states(); ++j) {
    u -= row[j];
    if (u < 0.0) return static_cast<int>(j);
  }
  return static_cast<int>(num_states() - 1);
}

MarkovChain binomial_survival_chain(int n, double p_survive) {
  TOL_ENSURE(n >= 0, "node count must be non-negative");
  TOL_ENSURE(p_survive >= 0.0 && p_survive <= 1.0,
             "survival probability in [0,1]");
  la::Matrix p(static_cast<std::size_t>(n) + 1, static_cast<std::size_t>(n) + 1,
               0.0);
  for (int s = 0; s <= n; ++s) {
    const stats::BinomialDist bin(s, p_survive);
    for (int k = 0; k <= s; ++k) {
      p(static_cast<std::size_t>(s), static_cast<std::size_t>(k)) = bin.pmf(k);
    }
  }
  return MarkovChain(std::move(p));
}

}  // namespace tolerance::markov
