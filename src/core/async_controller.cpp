#include "tolerance/core/async_controller.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "tolerance/solvers/threshold_policy.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::core {

const char* to_string(ControllerMode mode) {
  switch (mode) {
    case ControllerMode::Inline:
      return "inline";
    case ControllerMode::Fresh:
      return "fresh";
    case ControllerMode::Hold:
      return "hold";
    case ControllerMode::Fallback:
      return "fallback";
  }
  return "?";
}

char mode_letter(ControllerMode mode) {
  switch (mode) {
    case ControllerMode::Inline:
      return 'I';
    case ControllerMode::Fresh:
      return 'F';
    case ControllerMode::Hold:
      return 'H';
    case ControllerMode::Fallback:
      return 'B';
  }
  return '?';
}

AsyncCmdpController::AsyncCmdpController(const solvers::CmdpSolution& initial,
                                         SolveFn solve,
                                         AsyncControllerConfig config,
                                         std::uint64_t seed)
    : config_(config), solve_(std::move(solve)), retry_rng_(seed) {
  TOL_ENSURE(initial.valid_policy(),
             "initial policy must pass the poison guard");
  TOL_ENSURE(solve_ != nullptr, "solve callback required");
  TOL_ENSURE(config_.resolve_period >= 1 && config_.solve_latency_cycles >= 0,
             "resolve cadence must be positive");
  TOL_ENSURE(config_.staleness_budget >= 0 &&
                 config_.fallback_deadline >= config_.staleness_budget,
             "ladder boundaries must be ordered");
  basis_ = initial.basis;
  have_basis_ = initial.status == lp::LpStatus::Optimal;
  epoch_counter_ = 1;
  buffer_.publish(make_table(initial, epoch_counter_));
  stats_.policy_epoch = epoch_counter_;
  backoff_ = config_.retry_backoff_cycles;
  next_resolve_cycle_ = config_.resolve_period;
}

AsyncCmdpController::~AsyncCmdpController() = default;

PolicyBuffer::Table AsyncCmdpController::make_table(
    const solvers::CmdpSolution& solution, std::uint64_t epoch) {
  PolicyBuffer::Table table;
  table.epoch = epoch;
  table.add_probability = solution.add_probability;
  table.beta1 = solution.beta1;
  table.beta2 = solution.beta2;
  table.kappa = solution.kappa;
  table.average_cost = solution.average_cost;
  return table;
}

void AsyncCmdpController::launch_locked(long cycle) {
  TOL_ENSURE(!pending_, "single in-flight re-solve by construction");
  const std::uint64_t id = ++request_seq_;
  pending_ = Pending{id, cycle + config_.solve_latency_cycles};
  std::optional<lp::SimplexBasis> warm;
  if (have_basis_) warm = basis_;
  bool verify = false;
  if (config_.verify_warm_optimum && warm && !warm_verified_) {
    verify = true;
    warm_verified_ = true;
  }
  pool_.submit([this, id, warm = std::move(warm), verify]() {
    solvers::CmdpSolution result = solve_(warm ? &*warm : nullptr);
    if (verify && result.valid_policy() &&
        result.warm_start != lp::WarmStart::None) {
      // Warm==cold optimum invariant: a warm-started simplex may take a
      // different path but must land on the same optimal cost.
      const solvers::CmdpSolution cold = solve_(nullptr);
      TOL_ENSURE(cold.valid_policy() &&
                     std::abs(cold.average_cost - result.average_cost) <=
                         config_.warm_optimum_tolerance,
                 "warm-started re-solve must reach the cold optimum");
    }
    std::unique_lock<std::mutex> lock(mu_);
    if (!pending_ || pending_->id != id) return;  // orphaned by a crash
    if (fail_next_ > 0) {
      // Scripted solver failure: the result reaches the controller poisoned
      // and must be caught by the valid_policy() guard downstream.
      --fail_next_;
      result.status = lp::LpStatus::Infeasible;
    }
    if (config_.deterministic) {
      parked_.emplace(id, std::move(result));
      harvest_cv_.notify_all();
    } else {
      handle_result_locked(std::move(result), cycle_);
    }
  });
}

void AsyncCmdpController::handle_result_locked(solvers::CmdpSolution result,
                                               long cycle) {
  pending_.reset();
  if (result.valid_policy()) {
    ++epoch_counter_;
    ++stats_.resolves;
    basis_ = result.basis;
    have_basis_ = true;
    last_publish_cycle_ = cycle;
    backoff_ = config_.retry_backoff_cycles;
    next_resolve_cycle_ = cycle + config_.resolve_period;
    buffer_.publish(make_table(result, epoch_counter_));
    stats_.policy_epoch = epoch_counter_;
  } else {
    // Poison guard: never flip a bad table in; retry with jittered
    // exponential backoff so repeated failures do not busy-solve.
    ++stats_.rejected;
    const int jitter = backoff_ > 0 ? retry_rng_.uniform_int(0, backoff_) : 0;
    next_resolve_cycle_ = cycle + std::max(1, backoff_ + jitter);
    backoff_ = std::min(std::max(1, backoff_ * 2),
                        config_.max_retry_backoff_cycles);
  }
}

void AsyncCmdpController::begin_cycle(long cycle) {
  std::unique_lock<std::mutex> lock(mu_);
  TOL_ENSURE(cycle >= cycle_, "control cycles must be non-decreasing");
  cycle_ = cycle;
  const bool crashed = cycle < crashed_until_;
  const bool stalled = cycle < stalled_until_;
  if (!crashed && !stalled) {
    if (config_.deterministic && pending_ && cycle >= pending_->due_cycle) {
      // Deterministic lane: the solve was launched cycles ago on the worker;
      // its simulated completion time is now, so join it here.  This wait is
      // for a task that is already running (or queued on a one-worker pool
      // with nothing ahead of it) — it models solve latency in simulated
      // cycles, it does not run the LP on this thread.
      const std::uint64_t id = pending_->id;
      harvest_cv_.wait(lock, [&] {
        return parked_.count(id) != 0 || !pending_ || pending_->id != id;
      });
      auto it = parked_.find(id);
      if (it != parked_.end() && pending_ && pending_->id == id) {
        solvers::CmdpSolution result = std::move(it->second);
        parked_.erase(it);
        handle_result_locked(std::move(result), cycle);
      }
    }
    if (!pending_ && cycle >= next_resolve_cycle_) launch_locked(cycle);
  }
  // Re-grade the staleness ladder after any harvest so a flip that landed
  // this cycle counts as fresh immediately.
  const long staleness = cycle - last_publish_cycle_;
  ControllerMode mode = ControllerMode::Fresh;
  if (staleness > static_cast<long>(config_.fallback_deadline)) {
    mode = ControllerMode::Fallback;
    ++stats_.fallback_cycles;
  } else if (staleness > static_cast<long>(config_.staleness_budget)) {
    mode = ControllerMode::Hold;
    ++stats_.hold_cycles;
  }
  stats_.max_staleness =
      std::max(stats_.max_staleness, static_cast<int>(staleness));
  mode_atomic_.store(static_cast<int>(mode), std::memory_order_release);
  staleness_atomic_.store(static_cast<int>(staleness),
                          std::memory_order_release);
}

PolicyQuery AsyncCmdpController::policy_at(int s) const {
  PolicyQuery query;
  query.mode = mode();
  query.staleness = staleness_atomic_.load(std::memory_order_acquire);
  const PolicyBuffer::Table table = buffer_.snapshot();
  query.epoch = table.epoch;
  if (!table.add_probability.empty()) {
    const int hi = static_cast<int>(table.add_probability.size()) - 1;
    const int clamped = std::min(std::max(s, 0), hi);
    query.add_probability =
        table.add_probability[static_cast<std::size_t>(clamped)];
  }
  query.fallback_add =
      solvers::SystemThresholdPolicy(
          solvers::SystemThresholdPolicy::dominant_threshold(
              table.beta1, table.beta2, table.kappa,
              config_.fallback_add_threshold))
          .add(s);
  return query;
}

AsyncControllerStats AsyncCmdpController::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

void AsyncCmdpController::inject_crash(long cycle, long duration) {
  std::unique_lock<std::mutex> lock(mu_);
  crashed_until_ = std::max(crashed_until_, cycle + std::max<long>(1, duration));
  // The crash takes the in-flight solve with it: orphan it (the worker drops
  // the result when it sees the pending id is gone) and restart cold — a
  // restarted controller has no in-memory basis to warm from.
  pending_.reset();
  parked_.clear();
  have_basis_ = false;
  backoff_ = config_.retry_backoff_cycles;
  next_resolve_cycle_ = crashed_until_;  // restart re-solves immediately
  harvest_cv_.notify_all();
}

void AsyncCmdpController::inject_stall(long cycle, long duration) {
  std::unique_lock<std::mutex> lock(mu_);
  stalled_until_ = std::max(stalled_until_, cycle + std::max<long>(1, duration));
}

void AsyncCmdpController::inject_solver_failure(int count) {
  std::unique_lock<std::mutex> lock(mu_);
  TOL_ENSURE(count >= 0, "failure count must be non-negative");
  fail_next_ += count;
}

}  // namespace tolerance::core
