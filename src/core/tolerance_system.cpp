#include "tolerance/core/tolerance_system.hpp"

#include <algorithm>
#include <map>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/parallel.hpp"

namespace tolerance::core {

using emulation::EmulatedNode;
using emulation::Testbed;
using pomdp::NodeState;

Evaluator::Evaluator(EvaluationConfig config,
                     emulation::FittedDetector detector,
                     std::optional<solvers::CmdpSolution> replication)
    : config_(std::move(config)), detector_(std::move(detector)),
      replication_(std::move(replication)) {
  TOL_ENSURE(config_.horizon > 0, "horizon must be positive");
  TOL_ENSURE(config_.initial_nodes >= 1, "need at least one node");
}

EvaluationResult Evaluator::run(std::uint64_t seed) const {
  emulation::TestbedConfig tb_config = config_.testbed;
  tb_config.initial_nodes = config_.initial_nodes;
  tb_config.max_nodes = config_.max_nodes;
  Testbed testbed(tb_config, seed);
  Rng rng(seed ^ 0xc0ffee);

  const pomdp::NodeModel model(config_.node_params);
  const int dim = solvers::ThresholdPolicy::dimension(config_.delta_r);
  const solvers::ThresholdPolicy policy(
      std::vector<double>(static_cast<std::size_t>(dim),
                          config_.recovery_threshold),
      config_.delta_r);

  const bool uses_beliefs = config_.strategy == StrategyKind::Tolerance;
  std::vector<NodeController> controllers;
  if (uses_beliefs) {
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      controllers.emplace_back(model, detector_, policy);
    }
  }
  SystemController system(
      config_.strategy == StrategyKind::Tolerance ? replication_
                                                  : std::nullopt,
      config_.max_nodes, seed ^ 0xabcd);

  EvaluationResult result;
  // T(R) bookkeeping: per node id, the step its current compromise started.
  std::map<int, int> open_compromise;
  double total_ttr = 0.0;
  int ttr_samples = 0;
  long node_steps = 0;
  long available_steps = 0;
  double node_sum = 0.0;
  // PERIODIC-ADAPTIVE's alert-mean estimate (adds a node when the alert
  // volume exceeds 2 E[O], §VIII-B).
  double alert_mean = 0.0;
  long alert_count = 0;

  auto close_compromise = [&](int node_id, int now) {
    const auto it = open_compromise.find(node_id);
    if (it == open_compromise.end()) return;
    total_ttr += now - it->second;
    ++ttr_samples;
    ++result.compromises;
    open_compromise.erase(it);
  };

  for (int t = 1; t <= config_.horizon; ++t) {
    testbed.step();

    // --- Track compromises / crashes from the environment. ---
    for (const EmulatedNode& node : testbed.nodes()) {
      if (node.state == NodeState::Compromised) {
        open_compromise.emplace(node.id, node.compromised_since);
      } else if (open_compromise.count(node.id) > 0) {
        // Healed by software update or crashed this step.
        close_compromise(node.id, t);
      }
    }

    // --- Local level: recovery decisions.  Prop. 1 allows k simultaneous
    // recoveries with N >= 2f + 1 + k; grant up to k = max(1, N - 2f - 1)
    // slots per step, BTR-forced recoveries first, then by belief urgency.
    const int k_slots =
        std::max(1, testbed.num_nodes() - 2 * config_.f - 1);
    std::vector<std::pair<double, int>> candidates;  // (priority, index)
    switch (config_.strategy) {
      case StrategyKind::Tolerance: {
        for (int i = 0; i < testbed.num_nodes(); ++i) {
          const auto idx = static_cast<std::size_t>(i);
          const EmulatedNode& node = testbed.nodes()[idx];
          if (node.state == NodeState::Crashed) continue;
          controllers[idx].observe(node.last_metrics.alerts_weighted);
          if (controllers[idx].decide() == pomdp::NodeAction::Recover) {
            candidates.push_back(
                {controllers[idx].btr_due() ? 2.0 : controllers[idx].belief(),
                 i});
          }
        }
        break;
      }
      case StrategyKind::NoRecovery:
        break;
      case StrategyKind::Periodic:
      case StrategyKind::PeriodicAdaptive: {
        for (int i = 0; i < testbed.num_nodes(); ++i) {
          const EmulatedNode& node =
              testbed.nodes()[static_cast<std::size_t>(i)];
          if (node.state == NodeState::Crashed) continue;
          if (periodic_recovery_due(i, t, config_.delta_r,
                                    testbed.num_nodes())) {
            candidates.push_back({1.0, i});
          }
        }
        break;
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    if (static_cast<int>(candidates.size()) > k_slots) {
      candidates.resize(static_cast<std::size_t>(k_slots));
    }
    std::vector<bool> granted(static_cast<std::size_t>(testbed.num_nodes()),
                              false);
    for (const auto& [priority, i] : candidates) {
      (void)priority;
      granted[static_cast<std::size_t>(i)] = true;
    }
    if (config_.strategy == StrategyKind::Tolerance) {
      for (int i = 0; i < testbed.num_nodes(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        if (testbed.nodes()[idx].state == NodeState::Crashed) continue;
        controllers[idx].commit(granted[idx] ? pomdp::NodeAction::Recover
                                             : pomdp::NodeAction::Wait);
      }
    }
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      if (!granted[static_cast<std::size_t>(i)]) continue;
      const EmulatedNode& node = testbed.nodes()[static_cast<std::size_t>(i)];
      close_compromise(node.id, t);
      testbed.recover(i);
      ++result.recoveries;
    }

    // --- Global level. ---
    if (config_.strategy == StrategyKind::Tolerance) {
      std::vector<double> beliefs;
      std::vector<bool> reported;
      for (int i = 0; i < testbed.num_nodes(); ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const bool alive =
            testbed.nodes()[idx].state != NodeState::Crashed;
        reported.push_back(alive);
        beliefs.push_back(alive ? controllers[idx].belief() : 1.0);
      }
      const SystemDecision decision = system.step(beliefs, reported);
      // Evict from the back so indices stay valid.
      for (auto it = decision.evict.rbegin(); it != decision.evict.rend();
           ++it) {
        const EmulatedNode& node =
            testbed.nodes()[static_cast<std::size_t>(*it)];
        close_compromise(node.id, t);
        testbed.evict(*it);
        controllers.erase(controllers.begin() + *it);
        ++result.evictions;
        ++result.crashes;
      }
      if (decision.add_node && testbed.add_node().has_value()) {
        controllers.emplace_back(model, detector_, policy);
        ++result.additions;
      }
    } else if (config_.strategy == StrategyKind::PeriodicAdaptive) {
      // Heuristic replication: add when the alert volume spikes.
      bool spike = false;
      for (const EmulatedNode& node : testbed.nodes()) {
        const double o = node.last_metrics.alerts_weighted;
        ++alert_count;
        alert_mean += (o - alert_mean) / static_cast<double>(alert_count);
        if (alert_count > 20 && o >= 2.0 * alert_mean) spike = true;
      }
      if (spike && testbed.add_node().has_value()) ++result.additions;
    }

    // --- Metrics. ---
    node_steps += testbed.num_nodes();
    node_sum += testbed.num_nodes();
    if (testbed.failed_count() <= config_.f) ++available_steps;
  }

  // Unresolved compromises at the horizon count as T(R) = horizon (the
  // Table 7 convention giving NO-RECOVERY exactly 10^3).
  for (const auto& [node_id, since] : open_compromise) {
    (void)node_id;
    (void)since;
    total_ttr += config_.horizon;
    ++ttr_samples;
    ++result.compromises;
  }

  result.availability =
      static_cast<double>(available_steps) / config_.horizon;
  result.time_to_recovery =
      ttr_samples > 0 ? total_ttr / ttr_samples : 0.0;
  result.recovery_frequency =
      node_steps > 0 ? static_cast<double>(result.recoveries) /
                           static_cast<double>(node_steps)
                     : 0.0;
  result.avg_nodes = node_sum / config_.horizon;
  return result;
}

std::vector<EvaluationResult> Evaluator::run_many(
    const std::vector<std::uint64_t>& seeds, int threads) const {
  std::vector<EvaluationResult> results(seeds.size());
  const util::ParallelRunner runner(threads);
  runner.for_each(static_cast<std::int64_t>(seeds.size()),
                  [&](std::int64_t i) {
                    const auto idx = static_cast<std::size_t>(i);
                    results[idx] = run(seeds[idx]);
                  });
  return results;
}

}  // namespace tolerance::core
