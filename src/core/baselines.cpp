#include "tolerance/core/baselines.hpp"

#include <algorithm>

namespace tolerance::core {

std::string to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::Tolerance: return "TOLERANCE";
    case StrategyKind::NoRecovery: return "NO-RECOVERY";
    case StrategyKind::Periodic: return "PERIODIC";
    case StrategyKind::PeriodicAdaptive: return "PERIODIC-ADAPTIVE";
  }
  return "?";
}

bool periodic_recovery_due(int node_slot, int t, int delta_r, int num_nodes) {
  if (delta_r <= 0) return false;  // DeltaR = infinity: no periodic recovery
  const int stagger = std::max(1, delta_r / std::max(1, num_nodes));
  const int phase = (t - node_slot * stagger) % delta_r;
  return phase == 0 && t >= 1;
}

}  // namespace tolerance::core
