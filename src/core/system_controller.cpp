#include "tolerance/core/system_controller.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/util/ensure.hpp"

namespace tolerance::core {

SystemController::SystemController(
    std::optional<solvers::CmdpSolution> strategy, int max_nodes,
    std::uint64_t seed, SystemLimits limits)
    : strategy_(std::move(strategy)), max_nodes_(max_nodes), limits_(limits),
      rng_(seed) {
  TOL_ENSURE(max_nodes >= 1, "max_nodes must be positive");
}

SystemDecision SystemController::step(const std::vector<double>& beliefs,
                                      const std::vector<bool>& reported) {
  TOL_ENSURE(beliefs.size() == reported.size(),
             "beliefs/reported size mismatch");
  SystemDecision decision;
  // Evict silent nodes (considered crashed, §V-B).
  double expected_healthy = 0.0;
  int live = 0;
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    if (!reported[i]) {
      decision.evict.push_back(static_cast<int>(i));
      continue;
    }
    ++live;
    expected_healthy += 1.0 - beliefs[i];
  }
  // Clamp the eviction batch to the SystemLimits: at most f per cycle, and
  // never below the membership floor.  Deferred nodes are still silent next
  // cycle, so they re-enter the batch then (lowest indices first keeps the
  // clamp deterministic).
  const int num_nodes = static_cast<int>(beliefs.size());
  const int requested = static_cast<int>(decision.evict.size());
  int allowed = requested;
  if (limits_.f > 0) allowed = std::min(allowed, limits_.f);
  bool floor_bound = false;
  if (limits_.min_nodes > 0) {
    // The floor "binds" only when it cuts deeper than the f cap already
    // did — that is when the cluster is genuinely pinned at min_nodes.
    const int floor_allowed = std::max(0, num_nodes - limits_.min_nodes);
    floor_bound = floor_allowed < allowed;
    allowed = std::min(allowed, floor_allowed);
  }
  if (allowed < requested) {
    decision.deferred_evictions = requested - allowed;
    decision.evict.resize(static_cast<std::size_t>(allowed));
  }
  decision.state = static_cast<int>(std::floor(expected_healthy));  // (8)
  if (adaptive() && live < max_nodes_) {
    if (async_ != nullptr) {
      const PolicyQuery query = async_->policy_at(decision.state);
      decision.mode = query.mode;
      decision.policy_epoch = query.epoch;
      decision.staleness_cycles = query.staleness;
      if (query.mode == ControllerMode::Fallback) {
        // Degraded mode: deterministic Thm. 2 threshold action; no draw is
        // consumed (the failsafe must not depend on controller RNG state).
        decision.add_node = query.fallback_add;
      } else {
        // Same draw the inline path takes (act_clamped), so a fault-free
        // async episode is decision-identical to the inline one.
        decision.add_node = rng_.bernoulli(query.add_probability);
      }
    } else {
      decision.add_node = strategy_->act_clamped(decision.state, rng_) == 1;
    }
    // A deferral caused by the membership floor (not the per-cycle f cap)
    // means the cluster is pinned at 2f + 1 with dead weight aboard:
    // repair the floor deterministically instead of waiting for the
    // stochastic policy to roll an addition.  Static-replication baselines
    // (no strategy) keep their contract of never adding nodes.
    if (floor_bound) decision.add_node = true;
  }
  return decision;
}

}  // namespace tolerance::core
