#include "tolerance/core/system_controller.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/util/ensure.hpp"

namespace tolerance::core {

SystemController::SystemController(
    std::optional<solvers::CmdpSolution> strategy, int max_nodes,
    std::uint64_t seed)
    : strategy_(std::move(strategy)), max_nodes_(max_nodes), rng_(seed) {
  TOL_ENSURE(max_nodes >= 1, "max_nodes must be positive");
}

SystemDecision SystemController::step(const std::vector<double>& beliefs,
                                      const std::vector<bool>& reported) {
  TOL_ENSURE(beliefs.size() == reported.size(),
             "beliefs/reported size mismatch");
  SystemDecision decision;
  // Evict silent nodes (considered crashed, §V-B).
  double expected_healthy = 0.0;
  int live = 0;
  for (std::size_t i = 0; i < beliefs.size(); ++i) {
    if (!reported[i]) {
      decision.evict.push_back(static_cast<int>(i));
      continue;
    }
    ++live;
    expected_healthy += 1.0 - beliefs[i];
  }
  decision.state = static_cast<int>(std::floor(expected_healthy));  // (8)
  if (strategy_.has_value() && live < max_nodes_) {
    const int s = std::min(decision.state,
                           static_cast<int>(strategy_->add_probability.size()) - 1);
    decision.add_node = strategy_->act(std::max(0, s), rng_) == 1;
  }
  return decision;
}

}  // namespace tolerance::core
