#include "tolerance/core/policy_buffer.hpp"

#include <thread>

#include "tolerance/util/ensure.hpp"

namespace tolerance::core {

void PolicyBuffer::publish(Table table) {
  TOL_ENSURE(table.epoch > epoch_.load(std::memory_order_acquire),
             "published epochs must be strictly increasing");
  const int back = 1 - active_.load(std::memory_order_acquire);
  // Wait for stragglers: a reader that loaded the old active index but has
  // not yet re-checked it may still pin this slot.  Readers hold a slot only
  // for one table copy, so this spin is bounded and short; the *decision*
  // path never spins (readers never wait for the writer).
  while (readers_[static_cast<std::size_t>(back)].load(
             std::memory_order_acquire) != 0) {
    std::this_thread::yield();
  }
  slots_[static_cast<std::size_t>(back)] = std::move(table);
  const std::uint64_t epoch = slots_[static_cast<std::size_t>(back)].epoch;
  // The flip: readers that acquire the new index also see the slot contents
  // written above (release/acquire on active_).
  active_.store(back, std::memory_order_release);
  epoch_.store(epoch, std::memory_order_release);
}

PolicyBuffer::Table PolicyBuffer::snapshot() const {
  for (;;) {
    const int idx = active_.load(std::memory_order_acquire);
    readers_[static_cast<std::size_t>(idx)].fetch_add(
        1, std::memory_order_acq_rel);
    if (active_.load(std::memory_order_acquire) == idx) {
      Table copy = slots_[static_cast<std::size_t>(idx)];
      readers_[static_cast<std::size_t>(idx)].fetch_sub(
          1, std::memory_order_release);
      return copy;
    }
    // Lost the race with a flip between the index load and the pin: the
    // writer may already be rewriting this slot.  Unpin and retry on the
    // new active slot (at most one extra iteration per concurrent flip).
    readers_[static_cast<std::size_t>(idx)].fetch_sub(
        1, std::memory_order_release);
  }
}

}  // namespace tolerance::core
