#include "tolerance/core/node_controller.hpp"

namespace tolerance::core {

NodeController::NodeController(pomdp::NodeModel model,
                               emulation::FittedDetector detector,
                               solvers::ThresholdPolicy policy)
    : model_(model), detector_(std::move(detector)), policy_(std::move(policy)),
      belief_(model_.params().p_attack),
      pre_decision_belief_(model_.params().p_attack) {}

double NodeController::observe(double raw_alerts) {
  // Filter: fold this step's observation into the belief, conditioning on
  // the action that was actually applied last step (Appendix A).
  const int observation = detector_.observe(raw_alerts);
  const pomdp::BeliefUpdater updater(model_, *detector_.model);
  belief_ = updater.update(belief_, last_applied_, observation);
  pre_decision_belief_ = belief_;
  return belief_;
}

pomdp::NodeAction NodeController::decide() const {
  // The ThresholdPolicy indexes thresholds by the position within the
  // recovery cycle, anchored at the last committed recovery.
  return policy_.action(belief_, steps_since_recovery_ + 1);
}

bool NodeController::btr_due() const {
  const int delta_r = policy_.delta_r();
  if (delta_r <= 0) return false;
  return ((steps_since_recovery_) % delta_r) + 1 == delta_r;
}

void NodeController::commit(pomdp::NodeAction applied) {
  last_applied_ = applied;
  if (applied == pomdp::NodeAction::Recover) {
    belief_ = model_.params().p_attack;  // fresh node, b_1 = pA (§V-A)
    steps_since_recovery_ = 0;
  } else {
    ++steps_since_recovery_;
  }
}

pomdp::NodeAction NodeController::step(double raw_alerts) {
  observe(raw_alerts);
  const pomdp::NodeAction action = decide();
  commit(action);
  return action;
}

void NodeController::reset() {
  belief_ = model_.params().p_attack;
  steps_since_recovery_ = 0;
  last_applied_ = pomdp::NodeAction::Recover;
}

}  // namespace tolerance::core
