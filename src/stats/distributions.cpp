#include "tolerance/stats/distributions.hpp"

#include <cmath>

#include "tolerance/stats/special.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::stats {

BetaBinomial::BetaBinomial(int n, double alpha, double beta)
    : n_(n), alpha_(alpha), beta_(beta) {
  TOL_ENSURE(n >= 0, "BetaBinomial requires n >= 0");
  TOL_ENSURE(alpha > 0.0 && beta > 0.0,
             "BetaBinomial requires positive shape parameters");
}

double BetaBinomial::log_pmf(int k) const {
  TOL_ENSURE(k >= 0 && k <= n_, "BetaBinomial pmf argument out of support");
  return log_choose(n_, k) + log_beta(k + alpha_, n_ - k + beta_) -
         log_beta(alpha_, beta_);
}

double BetaBinomial::pmf(int k) const { return std::exp(log_pmf(k)); }

double BetaBinomial::mean() const { return n_ * alpha_ / (alpha_ + beta_); }

std::vector<double> BetaBinomial::pmf_vector() const {
  std::vector<double> p(n_ + 1);
  for (int k = 0; k <= n_; ++k) p[k] = pmf(k);
  return p;
}

int BetaBinomial::sample(Rng& rng) const {
  const double p = rng.beta(alpha_, beta_);
  return rng.binomial(n_, p);
}

PoissonDist::PoissonDist(double mean) : mean_(mean) {
  TOL_ENSURE(mean >= 0.0, "Poisson mean must be non-negative");
}

double PoissonDist::pmf(int k) const {
  TOL_ENSURE(k >= 0, "Poisson pmf argument must be non-negative");
  if (mean_ == 0.0) return k == 0 ? 1.0 : 0.0;
  return std::exp(k * std::log(mean_) - mean_ - log_gamma(k + 1.0));
}

int PoissonDist::sample(Rng& rng) const { return rng.poisson(mean_); }

GeometricDist::GeometricDist(double p) : p_(p) {
  TOL_ENSURE(p > 0.0 && p <= 1.0, "Geometric requires p in (0,1]");
}

double GeometricDist::pmf(int k) const {
  TOL_ENSURE(k >= 1, "Geometric support starts at 1");
  return std::pow(1.0 - p_, k - 1) * p_;
}

double GeometricDist::cdf(int k) const {
  if (k < 1) return 0.0;
  return 1.0 - std::pow(1.0 - p_, k);
}

int GeometricDist::sample(Rng& rng) const {
  // Inversion; guards against log(0).
  const double u = std::max(rng.uniform(), 1e-300);
  if (p_ >= 1.0) return 1;
  return 1 + static_cast<int>(std::floor(std::log(u) / std::log1p(-p_)));
}

BinomialDist::BinomialDist(int n, double p) : n_(n), p_(p) {
  TOL_ENSURE(n >= 0, "Binomial requires n >= 0");
  TOL_ENSURE(p >= 0.0 && p <= 1.0, "Binomial requires p in [0,1]");
}

double BinomialDist::pmf(int k) const {
  TOL_ENSURE(k >= 0 && k <= n_, "Binomial pmf argument out of support");
  if (p_ == 0.0) return k == 0 ? 1.0 : 0.0;
  if (p_ == 1.0) return k == n_ ? 1.0 : 0.0;
  return std::exp(log_choose(n_, k) + k * std::log(p_) +
                  (n_ - k) * std::log1p(-p_));
}

std::vector<double> BinomialDist::pmf_vector() const {
  std::vector<double> p(n_ + 1);
  for (int k = 0; k <= n_; ++k) p[k] = pmf(k);
  return p;
}

int BinomialDist::sample(Rng& rng) const { return rng.binomial(n_, p_); }

}  // namespace tolerance::stats
