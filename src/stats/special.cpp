#include "tolerance/stats/special.hpp"

#include <cmath>
#include <numbers>

#include "tolerance/util/ensure.hpp"

namespace tolerance::stats {
namespace {

// Continued-fraction evaluation for the incomplete beta function
// (modified Lentz's method).
double beta_continued_fraction(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3e-14;
  constexpr double kTiny = 1e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double log_gamma(double x) {
  TOL_ENSURE(x > 0.0, "log_gamma requires x > 0");
  // Lanczos approximation, g = 7, 9 coefficients (~1 ulp for x >= 0.5).
  constexpr double kCoeff[] = {
      0.99999999999980993,    676.5203681218851,     -1259.1392167224028,
      771.32342877765313,     -176.61502916214059,   12.507343278686905,
      -0.13857109526572012,   9.9843695780195716e-6, 1.5056327351493116e-7};
  constexpr double kPi = std::numbers::pi;
  if (x < 0.5) {
    // Reflection Gamma(x) Gamma(1-x) = pi / sin(pi x); sin(pi x) > 0 here.
    return std::log(kPi / std::sin(kPi * x)) - log_gamma(1.0 - x);
  }
  const double z = x - 1.0;
  double series = kCoeff[0];
  for (int i = 1; i < 9; ++i) series += kCoeff[i] / (z + i);
  const double t = z + 7.5;
  return 0.5 * std::log(2.0 * kPi) + (z + 0.5) * std::log(t) - t +
         std::log(series);
}

double log_beta(double a, double b) {
  TOL_ENSURE(a > 0.0 && b > 0.0, "log_beta requires positive arguments");
  return log_gamma(a) + log_gamma(b) - log_gamma(a + b);
}

double regularized_incomplete_beta(double a, double b, double x) {
  TOL_ENSURE(a > 0.0 && b > 0.0, "incomplete beta requires positive a, b");
  TOL_ENSURE(x >= 0.0 && x <= 1.0, "incomplete beta requires x in [0,1]");
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double log_bt =
      a * std::log(x) + b * std::log1p(-x) - log_beta(a, b);
  const double bt = std::exp(log_bt);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return bt * beta_continued_fraction(a, b, x) / a;
  }
  return 1.0 - bt * beta_continued_fraction(b, a, 1.0 - x) / b;
}

double norm_cdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

double norm_quantile(double p) {
  TOL_ENSURE(p > 0.0 && p < 1.0, "norm_quantile requires p in (0,1)");
  // Acklam's rational approximation, refined with one Halley step.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double p_low = 0.02425;
  double x;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  // One Halley refinement step using the exact CDF.
  const double e = norm_cdf(x) - p;
  const double u = e * std::sqrt(2.0 * M_PI) * std::exp(x * x / 2.0);
  x = x - u / (1.0 + x * u / 2.0);
  return x;
}

double t_cdf(double x, double df) {
  TOL_ENSURE(df > 0.0, "t_cdf requires positive degrees of freedom");
  const double z = df / (df + x * x);
  const double tail = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, z);
  return x > 0.0 ? 1.0 - tail : tail;
}

double t_quantile(double p, double df) {
  TOL_ENSURE(p > 0.0 && p < 1.0, "t_quantile requires p in (0,1)");
  TOL_ENSURE(df > 0.0, "t_quantile requires positive degrees of freedom");
  // Bisection on the CDF; bounds comfortably cover practical quantiles.
  double lo = -1e3;
  double hi = 1e3;
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = 0.5 * (lo + hi);
    if (t_cdf(mid, df) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12) break;
  }
  return 0.5 * (lo + hi);
}

double log_choose(int n, int k) {
  TOL_ENSURE(n >= 0 && k >= 0 && k <= n, "log_choose requires 0 <= k <= n");
  return log_gamma(n + 1.0) - log_gamma(k + 1.0) - log_gamma(n - k + 1.0);
}

}  // namespace tolerance::stats
