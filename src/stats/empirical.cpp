#include "tolerance/stats/empirical.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tolerance/util/ensure.hpp"

namespace tolerance::stats {

EmpiricalPmf::EmpiricalPmf(int support_size)
    : p_(static_cast<std::size_t>(support_size),
         support_size > 0 ? 1.0 / support_size : 0.0) {
  TOL_ENSURE(support_size > 0, "support size must be positive");
}

EmpiricalPmf::EmpiricalPmf(std::vector<double> p) : p_(std::move(p)) {}

EmpiricalPmf EmpiricalPmf::from_counts(const std::vector<std::int64_t>& counts,
                                       double smoothing) {
  TOL_ENSURE(!counts.empty(), "counts must be non-empty");
  TOL_ENSURE(smoothing >= 0.0, "smoothing must be non-negative");
  double total = 0.0;
  for (auto c : counts) {
    TOL_ENSURE(c >= 0, "counts must be non-negative");
    total += static_cast<double>(c) + smoothing;
  }
  TOL_ENSURE(total > 0.0, "at least one count or positive smoothing required");
  std::vector<double> p(counts.size());
  for (std::size_t k = 0; k < counts.size(); ++k) {
    p[k] = (static_cast<double>(counts[k]) + smoothing) / total;
  }
  return EmpiricalPmf(std::move(p));
}

EmpiricalPmf EmpiricalPmf::from_samples(const std::vector<int>& samples,
                                        int support_size, double smoothing) {
  TOL_ENSURE(support_size > 0, "support size must be positive");
  std::vector<std::int64_t> counts(static_cast<std::size_t>(support_size), 0);
  for (int s : samples) {
    const int k = std::clamp(s, 0, support_size - 1);
    ++counts[static_cast<std::size_t>(k)];
  }
  return from_counts(counts, smoothing);
}

double EmpiricalPmf::prob(int k) const {
  TOL_ENSURE(k >= 0 && k < support_size(), "pmf argument out of support");
  return p_[static_cast<std::size_t>(k)];
}

double EmpiricalPmf::mean() const {
  double m = 0.0;
  for (std::size_t k = 0; k < p_.size(); ++k) m += static_cast<double>(k) * p_[k];
  return m;
}

int EmpiricalPmf::sample(Rng& rng) const {
  return rng.categorical(p_);
}

double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q) {
  TOL_ENSURE(p.size() == q.size(), "KL divergence requires equal supports");
  double kl = 0.0;
  for (std::size_t k = 0; k < p.size(); ++k) {
    if (p[k] <= 0.0) continue;
    if (q[k] <= 0.0) return std::numeric_limits<double>::infinity();
    kl += p[k] * std::log(p[k] / q[k]);
  }
  return kl;
}

double kl_divergence(const EmpiricalPmf& p, const EmpiricalPmf& q) {
  return kl_divergence(p.probs(), q.probs());
}

QuantileBinner::QuantileBinner(std::vector<double> edges)
    : edges_(std::move(edges)) {}

QuantileBinner QuantileBinner::fit(std::vector<double> samples, int bins) {
  TOL_ENSURE(bins >= 2, "need at least two bins");
  TOL_ENSURE(!samples.empty(), "need samples to fit bins");
  std::sort(samples.begin(), samples.end());
  std::vector<double> edges;
  edges.reserve(static_cast<std::size_t>(bins) - 1);
  const auto n = samples.size();
  for (int b = 1; b < bins; ++b) {
    const double q = static_cast<double>(b) / bins;
    const auto idx = std::min<std::size_t>(
        n - 1, static_cast<std::size_t>(q * static_cast<double>(n)));
    const double edge = samples[idx];
    // Keep edges strictly increasing so every bin is reachable.
    if (edges.empty() || edge > edges.back()) {
      edges.push_back(edge);
    }
  }
  return QuantileBinner(std::move(edges));
}

int QuantileBinner::bin(double value) const {
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), value);
  return static_cast<int>(it - edges_.begin());
}

}  // namespace tolerance::stats
