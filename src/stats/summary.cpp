#include "tolerance/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/stats/special.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::stats {

double mean(const std::vector<double>& xs) {
  TOL_ENSURE(!xs.empty(), "mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double sample_variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return ss / static_cast<double>(xs.size() - 1);
}

double sample_stddev(const std::vector<double>& xs) {
  return std::sqrt(sample_variance(xs));
}

MeanCi mean_ci(const std::vector<double>& xs, double confidence) {
  TOL_ENSURE(!xs.empty(), "mean_ci of empty sample");
  TOL_ENSURE(confidence > 0.0 && confidence < 1.0,
             "confidence must be in (0,1)");
  MeanCi out;
  out.mean = mean(xs);
  if (xs.size() < 2) {
    out.half_width = 0.0;
    return out;
  }
  const double df = static_cast<double>(xs.size() - 1);
  const double t = t_quantile(1.0 - (1.0 - confidence) / 2.0, df);
  out.half_width =
      t * sample_stddev(xs) / std::sqrt(static_cast<double>(xs.size()));
  return out;
}

double quantile(std::vector<double> xs, double q) {
  TOL_ENSURE(!xs.empty(), "quantile of empty sample");
  TOL_ENSURE(q >= 0.0 && q <= 1.0, "quantile level must be in [0,1]");
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double SummaryAccumulator::mean() const { return stats::mean(xs_); }

double SummaryAccumulator::stddev() const { return sample_stddev(xs_); }

MeanCi SummaryAccumulator::ci(double confidence) const {
  return mean_ci(xs_, confidence);
}

}  // namespace tolerance::stats
