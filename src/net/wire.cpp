#include "tolerance/net/wire.hpp"

namespace tolerance::net {
namespace {

using namespace tolerance::consensus;
using wire::Reader;
using wire::Writer;

// Tag byte per MinBftMsg alternative (fixed wire contract: append-only).
enum Tag : std::uint8_t {
  kRequest = 0,
  kPrepare = 1,
  kCommit = 2,
  kReply = 3,
  kCheckpoint = 4,
  kReqViewChange = 5,
  kViewChange = 6,
  kNewView = 7,
  kStateRequest = 8,
  kStateResponse = 9,
  kFetchPrepare = 10,
  kRelayedPrepare = 11,
  kOverloaded = 12,
};

// --- field-group encoders ---------------------------------------------------

void put_signature(Writer& w, const crypto::Signature& s) {
  w.varint(s.signer);
  w.digest(s.tag);
}

void put_ui(Writer& w, const crypto::UniqueIdentifier& ui) {
  w.varint(ui.replica);
  w.varint(ui.epoch);
  w.varint(ui.counter);
  w.digest(ui.certificate);
}

void put_request(Writer& w, const Request& r) {
  w.varint(r.client);
  w.varint(r.request_id);
  w.str(r.operation);
  put_signature(w, r.signature);
}

void put_prepare(Writer& w, const Prepare& p) {
  w.varint(p.view);
  w.varint(p.seq);
  w.varint(p.requests.size());
  for (const Request& r : p.requests) put_request(w, r);
  put_ui(w, p.ui);
}

void put_checkpoint(Writer& w, const Checkpoint& c) {
  w.varint(c.replica);
  w.varint(c.last_executed);
  w.digest(c.state_digest);
  put_ui(w, c.ui);
}

void put_view_change(Writer& w, const ViewChange& vc) {
  w.varint(vc.replica);
  w.varint(vc.to_view);
  w.varint(vc.stable_seq);
  w.varint(vc.checkpoint_cert.size());
  for (const Checkpoint& c : vc.checkpoint_cert) put_checkpoint(w, c);
  w.varint(vc.prepared.size());
  for (const PreparedProof& p : vc.prepared) put_prepare(w, p.prepare);
  put_ui(w, vc.ui);
}

// --- field-group decoders ---------------------------------------------------
//
// Each returns nullopt on the first malformed field; callers propagate.
// Vector counts are sanity-capped by the bytes actually remaining (every
// element costs at least one byte), so a forged huge count cannot trigger a
// pathological allocation before the truncation is noticed.

bool count_plausible(const Reader& r, std::uint64_t count) {
  return count <= r.remaining();
}

std::optional<crypto::Signature> get_signature(Reader& r) {
  const auto signer = r.varint();
  const auto tag = r.digest();
  if (!signer || !tag) return std::nullopt;
  crypto::Signature s;
  s.signer = static_cast<crypto::PrincipalId>(*signer);
  s.tag = *tag;
  return s;
}

std::optional<crypto::UniqueIdentifier> get_ui(Reader& r) {
  const auto replica = r.varint();
  const auto epoch = r.varint();
  const auto counter = r.varint();
  const auto cert = r.digest();
  if (!replica || !epoch || !counter || !cert) return std::nullopt;
  crypto::UniqueIdentifier ui;
  ui.replica = static_cast<crypto::PrincipalId>(*replica);
  ui.epoch = *epoch;
  ui.counter = *counter;
  ui.certificate = *cert;
  return ui;
}

std::optional<Request> get_request(Reader& r) {
  const auto client = r.varint();
  const auto request_id = r.varint();
  auto operation = r.str();
  if (!client || !request_id || !operation) return std::nullopt;
  const auto sig = get_signature(r);
  if (!sig) return std::nullopt;
  Request req;
  req.client = static_cast<ClientId>(*client);
  req.request_id = *request_id;
  req.operation = std::move(*operation);
  req.signature = *sig;
  return req;
}

std::optional<Prepare> get_prepare(Reader& r) {
  const auto view = r.varint();
  const auto seq = r.varint();
  const auto count = r.varint();
  if (!view || !seq || !count || !count_plausible(r, *count)) {
    return std::nullopt;
  }
  Prepare p;
  p.view = *view;
  p.seq = *seq;
  p.requests.reserve(static_cast<std::size_t>(*count));
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto req = get_request(r);
    if (!req) return std::nullopt;
    p.requests.push_back(std::move(*req));
  }
  const auto ui = get_ui(r);
  if (!ui) return std::nullopt;
  p.ui = *ui;
  return p;
}

std::optional<Checkpoint> get_checkpoint(Reader& r) {
  const auto replica = r.varint();
  const auto last_executed = r.varint();
  const auto state = r.digest();
  if (!replica || !last_executed || !state) return std::nullopt;
  const auto ui = get_ui(r);
  if (!ui) return std::nullopt;
  Checkpoint c;
  c.replica = static_cast<ReplicaId>(*replica);
  c.last_executed = *last_executed;
  c.state_digest = *state;
  c.ui = *ui;
  return c;
}

std::optional<ViewChange> get_view_change(Reader& r) {
  const auto replica = r.varint();
  const auto to_view = r.varint();
  const auto stable_seq = r.varint();
  if (!replica || !to_view || !stable_seq) return std::nullopt;
  ViewChange vc;
  vc.replica = static_cast<ReplicaId>(*replica);
  vc.to_view = *to_view;
  vc.stable_seq = *stable_seq;
  const auto cert_count = r.varint();
  if (!cert_count || !count_plausible(r, *cert_count)) return std::nullopt;
  for (std::uint64_t i = 0; i < *cert_count; ++i) {
    auto c = get_checkpoint(r);
    if (!c) return std::nullopt;
    vc.checkpoint_cert.push_back(std::move(*c));
  }
  const auto prep_count = r.varint();
  if (!prep_count || !count_plausible(r, *prep_count)) return std::nullopt;
  for (std::uint64_t i = 0; i < *prep_count; ++i) {
    auto p = get_prepare(r);
    if (!p) return std::nullopt;
    vc.prepared.push_back(PreparedProof{std::move(*p)});
  }
  const auto ui = get_ui(r);
  if (!ui) return std::nullopt;
  vc.ui = *ui;
  return vc;
}

}  // namespace

wire::Bytes MinBftCodec::encode(const MinBftMsg& msg) {
  Writer w;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          w.u8(kRequest);
          put_request(w, m);
        } else if constexpr (std::is_same_v<T, Prepare>) {
          w.u8(kPrepare);
          put_prepare(w, m);
        } else if constexpr (std::is_same_v<T, Commit>) {
          w.u8(kCommit);
          w.varint(m.view);
          w.varint(m.seq);
          w.varint(m.replica);
          w.digest(m.batch_digest);
          put_ui(w, m.leader_ui);
          put_ui(w, m.ui);
        } else if constexpr (std::is_same_v<T, Reply>) {
          w.u8(kReply);
          w.varint(m.replica);
          w.varint(m.client);
          w.varint(m.request_id);
          w.str(m.result);
          w.u8(m.speculative ? 1 : 0);
          put_signature(w, m.signature);
        } else if constexpr (std::is_same_v<T, Checkpoint>) {
          w.u8(kCheckpoint);
          put_checkpoint(w, m);
        } else if constexpr (std::is_same_v<T, ReqViewChange>) {
          w.u8(kReqViewChange);
          w.varint(m.replica);
          w.varint(m.from_view);
          w.varint(m.to_view);
          put_signature(w, m.signature);
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          w.u8(kViewChange);
          put_view_change(w, m);
        } else if constexpr (std::is_same_v<T, NewView>) {
          w.u8(kNewView);
          w.varint(m.leader);
          w.varint(m.view);
          w.varint(m.proofs.size());
          for (const ViewChange& vc : m.proofs) put_view_change(w, vc);
          w.varint(m.reproposed.size());
          for (const Prepare& p : m.reproposed) put_prepare(w, p);
          put_ui(w, m.ui);
        } else if constexpr (std::is_same_v<T, StateRequest>) {
          w.u8(kStateRequest);
          w.varint(m.replica);
          w.varint(m.ops_executed);
        } else if constexpr (std::is_same_v<T, FetchPrepare>) {
          w.u8(kFetchPrepare);
          w.varint(m.seq);
          w.varint(m.requester);
        } else if constexpr (std::is_same_v<T, RelayedPrepare>) {
          w.u8(kRelayedPrepare);
          put_prepare(w, m.prepare);
        } else if constexpr (std::is_same_v<T, Overloaded>) {
          w.u8(kOverloaded);
          w.varint(m.replica);
          w.varint(m.client);
          w.varint(m.request_id);
          w.varint(m.retry_after_ms);
          w.u8(m.mode);
          put_signature(w, m.signature);
        } else {
          static_assert(std::is_same_v<T, StateResponse>,
                        "unhandled message type");
          w.u8(kStateResponse);
          w.varint(m.replica);
          w.varint(m.last_executed);
          w.varint(m.prefix_ops);
          w.varint(m.log.size());
          for (const std::string& op : m.log) w.str(op);
          w.digest(m.state_digest);
          w.varint(m.anchor_seq);
          w.varint(m.anchor_ops);
          w.digest(m.anchor_digest);
          w.varint(m.anchor_cert.size());
          for (const Checkpoint& c : m.anchor_cert) put_checkpoint(w, c);
          put_signature(w, m.signature);
        }
      },
      msg);
  return w.take();
}

std::optional<MinBftMsg> MinBftCodec::decode(const std::uint8_t* data,
                                             std::size_t len) {
  Reader r(data, len);
  const auto tag = r.u8();
  if (!tag) return std::nullopt;
  std::optional<MinBftMsg> out;
  switch (*tag) {
    case kRequest: {
      auto m = get_request(r);
      if (m) out = std::move(*m);
      break;
    }
    case kPrepare: {
      auto m = get_prepare(r);
      if (m) out = std::move(*m);
      break;
    }
    case kCommit: {
      const auto view = r.varint();
      const auto seq = r.varint();
      const auto replica = r.varint();
      const auto batch = r.digest();
      if (!view || !seq || !replica || !batch) break;
      const auto leader_ui = get_ui(r);
      const auto ui = get_ui(r);
      if (!leader_ui || !ui) break;
      Commit c;
      c.view = *view;
      c.seq = *seq;
      c.replica = static_cast<ReplicaId>(*replica);
      c.batch_digest = *batch;
      c.leader_ui = *leader_ui;
      c.ui = *ui;
      out = std::move(c);
      break;
    }
    case kReply: {
      const auto replica = r.varint();
      const auto client = r.varint();
      const auto request_id = r.varint();
      auto result = r.str();
      const auto speculative = r.u8();
      if (!replica || !client || !request_id || !result || !speculative ||
          *speculative > 1) {
        break;
      }
      const auto sig = get_signature(r);
      if (!sig) break;
      Reply rep;
      rep.replica = static_cast<ReplicaId>(*replica);
      rep.client = static_cast<ClientId>(*client);
      rep.request_id = *request_id;
      rep.result = std::move(*result);
      rep.speculative = (*speculative == 1);
      rep.signature = *sig;
      out = std::move(rep);
      break;
    }
    case kCheckpoint: {
      auto m = get_checkpoint(r);
      if (m) out = std::move(*m);
      break;
    }
    case kReqViewChange: {
      const auto replica = r.varint();
      const auto from_view = r.varint();
      const auto to_view = r.varint();
      if (!replica || !from_view || !to_view) break;
      const auto sig = get_signature(r);
      if (!sig) break;
      ReqViewChange rvc;
      rvc.replica = static_cast<ReplicaId>(*replica);
      rvc.from_view = *from_view;
      rvc.to_view = *to_view;
      rvc.signature = *sig;
      out = std::move(rvc);
      break;
    }
    case kViewChange: {
      auto m = get_view_change(r);
      if (m) out = std::move(*m);
      break;
    }
    case kNewView: {
      const auto leader = r.varint();
      const auto view = r.varint();
      if (!leader || !view) break;
      NewView nv;
      nv.leader = static_cast<ReplicaId>(*leader);
      nv.view = *view;
      const auto proof_count = r.varint();
      if (!proof_count || !count_plausible(r, *proof_count)) break;
      bool ok = true;
      for (std::uint64_t i = 0; i < *proof_count; ++i) {
        auto vc = get_view_change(r);
        if (!vc) {
          ok = false;
          break;
        }
        nv.proofs.push_back(std::move(*vc));
      }
      if (!ok) break;
      const auto prep_count = r.varint();
      if (!prep_count || !count_plausible(r, *prep_count)) break;
      for (std::uint64_t i = 0; i < *prep_count; ++i) {
        auto p = get_prepare(r);
        if (!p) {
          ok = false;
          break;
        }
        nv.reproposed.push_back(std::move(*p));
      }
      if (!ok) break;
      const auto ui = get_ui(r);
      if (!ui) break;
      nv.ui = *ui;
      out = std::move(nv);
      break;
    }
    case kStateRequest: {
      const auto replica = r.varint();
      const auto ops_executed = r.varint();
      if (!replica || !ops_executed) break;
      out = StateRequest{static_cast<ReplicaId>(*replica), *ops_executed};
      break;
    }
    case kFetchPrepare: {
      const auto seq = r.varint();
      const auto requester = r.varint();
      if (!seq || !requester) break;
      out = FetchPrepare{*seq, static_cast<ReplicaId>(*requester)};
      break;
    }
    case kRelayedPrepare: {
      auto p = get_prepare(r);
      if (p) out = RelayedPrepare{std::move(*p)};
      break;
    }
    case kStateResponse: {
      const auto replica = r.varint();
      const auto last_executed = r.varint();
      const auto prefix_ops = r.varint();
      const auto count = r.varint();
      if (!replica || !last_executed || !prefix_ops || !count ||
          !count_plausible(r, *count)) {
        break;
      }
      StateResponse resp;
      resp.replica = static_cast<ReplicaId>(*replica);
      resp.last_executed = *last_executed;
      resp.prefix_ops = *prefix_ops;
      bool ok = true;
      for (std::uint64_t i = 0; i < *count; ++i) {
        auto op = r.str();
        if (!op) {
          ok = false;
          break;
        }
        resp.log.push_back(std::move(*op));
      }
      if (!ok) break;
      const auto state = r.digest();
      if (!state) break;
      const auto anchor_seq = r.varint();
      const auto anchor_ops = r.varint();
      const auto anchor_digest = r.digest();
      const auto cert_count = r.varint();
      if (!anchor_seq || !anchor_ops || !anchor_digest || !cert_count ||
          !count_plausible(r, *cert_count)) {
        break;
      }
      resp.anchor_seq = *anchor_seq;
      resp.anchor_ops = *anchor_ops;
      resp.anchor_digest = *anchor_digest;
      for (std::uint64_t i = 0; i < *cert_count; ++i) {
        auto c = get_checkpoint(r);
        if (!c) {
          ok = false;
          break;
        }
        resp.anchor_cert.push_back(std::move(*c));
      }
      if (!ok) break;
      const auto sig = get_signature(r);
      if (!sig) break;
      resp.state_digest = *state;
      resp.signature = *sig;
      out = std::move(resp);
      break;
    }
    case kOverloaded: {
      const auto replica = r.varint();
      const auto client = r.varint();
      const auto request_id = r.varint();
      const auto retry_after = r.varint();
      const auto mode = r.u8();
      // Strict byte domain: the only modes that reject requests are soft (1)
      // and hard (2); a normal-mode (0) or out-of-range byte is a forgery.
      if (!replica || !client || !request_id || !retry_after || !mode ||
          *mode < 1 || *mode > 2) {
        break;
      }
      const auto sig = get_signature(r);
      if (!sig) break;
      Overloaded ov;
      ov.replica = static_cast<ReplicaId>(*replica);
      ov.client = static_cast<ClientId>(*client);
      ov.request_id = *request_id;
      ov.retry_after_ms = *retry_after;
      ov.mode = *mode;
      ov.signature = *sig;
      out = std::move(ov);
      break;
    }
    default:
      return std::nullopt;
  }
  // Trailing bytes mean the frame was not produced by this codec.
  if (out && !r.done()) return std::nullopt;
  return out;
}

}  // namespace tolerance::net
