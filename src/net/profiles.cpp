#include "tolerance/net/profiles.hpp"

namespace tolerance::net {

NetworkProfile NetworkProfile::lan() {
  NetworkProfile p;
  p.name = "LAN";
  // The paper's testbed (§VII-A): Gbit/s switched Ethernet between replicas
  // (NETEM 0.05% loss), 100 Mbit/s with 0.1% loss towards clients.
  p.replica_link.base_delay = 1e-3;
  p.replica_link.jitter = 2e-4;
  p.replica_link.loss = 5e-4;
  p.client_link.base_delay = 2e-3;
  p.client_link.jitter = 5e-4;
  p.client_link.loss = 1e-3;
  return p;
}

NetworkProfile NetworkProfile::wan() {
  NetworkProfile p;
  p.name = "WAN";
  // Inter-region replica placement: ~35 ms one-way, a few ms of jitter,
  // light loss, and ~1% of packets held back long enough to reorder.
  p.replica_link.base_delay = 35e-3;
  p.replica_link.jitter = 5e-3;
  p.replica_link.loss = 1e-3;
  p.replica_link.reorder = 0.01;
  p.replica_link.reorder_delay = 10e-3;
  p.client_link.base_delay = 20e-3;
  p.client_link.jitter = 5e-3;
  p.client_link.loss = 2e-3;
  p.client_link.reorder = 0.01;
  p.client_link.reorder_delay = 10e-3;
  return p;
}

NetworkProfile NetworkProfile::lossy_multihop() {
  NetworkProfile p;
  p.name = "LOSSY_MULTIHOP";
  // Low-power wireless mesh (Mager et al., arXiv 1804.08986): each message
  // traverses several hops, so delay and jitter are large, loss is
  // percent-level and reordering is routine.
  p.replica_link.base_delay = 15e-3;
  p.replica_link.jitter = 20e-3;
  p.replica_link.loss = 0.03;
  p.replica_link.reorder = 0.05;
  p.replica_link.reorder_delay = 30e-3;
  p.client_link.base_delay = 25e-3;
  p.client_link.jitter = 25e-3;
  p.client_link.loss = 0.05;
  p.client_link.reorder = 0.05;
  p.client_link.reorder_delay = 30e-3;
  return p;
}

NetworkProfile NetworkProfile::partition_flap() {
  NetworkProfile p = lan();
  p.name = "PARTITION_FLAP";
  p.flap_interval = 5.0;
  p.flap_duration = 1.0;
  return p;
}

const std::vector<NetworkProfile>& NetworkProfile::catalog() {
  static const std::vector<NetworkProfile> profiles{
      lan(), wan(), lossy_multihop(), partition_flap()};
  return profiles;
}

std::optional<NetworkProfile> NetworkProfile::by_name(std::string_view name) {
  for (const NetworkProfile& p : catalog()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

}  // namespace tolerance::net
