#include "tolerance/net/fault_injector.hpp"

#include <algorithm>

namespace tolerance::net {

FaultPlan& FaultPlan::normalize() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     return a.at < b.at;
                   });
  return *this;
}

void FaultInjector::set_drop(NodeId from, NodeId to, double rate) {
  std::lock_guard<std::mutex> lk(mu_);
  if (rate <= 0.0) {
    drop_rates_.erase({from, to});
  } else {
    drop_rates_[{from, to}] = std::min(rate, 1.0);
  }
}

void FaultInjector::set_corrupt(NodeId from, double rate) {
  std::lock_guard<std::mutex> lk(mu_);
  if (rate <= 0.0) {
    corrupt_rates_.erase(from);
  } else {
    corrupt_rates_[from] = std::min(rate, 1.0);
  }
}

void FaultInjector::clear_all() {
  std::lock_guard<std::mutex> lk(mu_);
  drop_rates_.clear();
  corrupt_rates_.clear();
}

FaultInjector::Action FaultInjector::on_bundle(NodeId from, NodeId to) {
  std::lock_guard<std::mutex> lk(mu_);
  if (!drop_rates_.empty()) {
    auto it = drop_rates_.find({from, to});
    if (it == drop_rates_.end()) {
      it = drop_rates_.find({from, FaultEvent::kAllPeers});
    }
    if (it != drop_rates_.end() && rng_.bernoulli(it->second)) {
      ++drops_;
      return Action::kDrop;
    }
  }
  if (!corrupt_rates_.empty()) {
    const auto it = corrupt_rates_.find(from);
    if (it != corrupt_rates_.end() && rng_.bernoulli(it->second)) {
      ++corruptions_;
      return Action::kCorrupt;
    }
  }
  return Action::kDeliver;
}

void FaultInjector::corrupt(Bytes& bytes) {
  if (bytes.empty()) return;
  std::lock_guard<std::mutex> lk(mu_);
  const int flips = rng_.uniform_int(1, 4);
  for (int i = 0; i < flips; ++i) {
    const auto at = static_cast<std::size_t>(
        rng_.uniform_int(static_cast<int>(bytes.size())));
    bytes[at] ^= static_cast<std::uint8_t>(1u << rng_.uniform_int(8));
  }
}

std::uint64_t FaultInjector::injected_drops() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drops_;
}

std::uint64_t FaultInjector::injected_corruptions() const {
  std::lock_guard<std::mutex> lk(mu_);
  return corruptions_;
}

std::size_t FaultInjector::active_rules() const {
  std::lock_guard<std::mutex> lk(mu_);
  return drop_rates_.size() + corrupt_rates_.size();
}

}  // namespace tolerance::net
