#include "tolerance/solvers/bayesopt.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tolerance/la/matrix.hpp"
#include "tolerance/la/solve.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace tolerance::solvers {
namespace {

double matern52(const std::vector<double>& a, const std::vector<double>& b,
                double length_scale, double signal_var) {
  double sq = 0.0;
  for (std::size_t d = 0; d < a.size(); ++d) {
    const double diff = a[d] - b[d];
    sq += diff * diff;
  }
  const double r = std::sqrt(sq) / length_scale;
  const double s5r = std::sqrt(5.0) * r;
  return signal_var * (1.0 + s5r + 5.0 * sq / (3.0 * length_scale * length_scale)) *
         std::exp(-s5r);
}

}  // namespace

OptResult BayesianOptimization::optimize(const ObjectiveFn& f, int dim,
                                         long max_evaluations,
                                         Rng& rng) const {
  TOL_ENSURE(dim > 0, "dimension must be positive");
  const Stopwatch clock;
  OptResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  std::vector<std::vector<double>> xs;
  std::vector<double> ys;

  auto record = [&](const std::vector<double>& x, double y) {
    xs.push_back(x);
    ys.push_back(y);
    ++result.evaluations;
    if (y < result.best_value) {
      result.best_value = y;
      result.best_x = x;
    }
    result.history.push_back(
        {clock.elapsed_seconds(), result.best_value, result.evaluations});
  };

  // Initial space-filling random design.
  const long n_init = std::min<long>(options_.initial_random, max_evaluations);
  for (long i = 0; i < n_init; ++i) {
    std::vector<double> x(static_cast<std::size_t>(dim));
    for (auto& v : x) v = rng.uniform();
    record(x, f(x));
  }

  while (result.evaluations < max_evaluations) {
    // Fit GP on (a window of) the data.
    const std::size_t n_all = xs.size();
    const std::size_t n =
        std::min<std::size_t>(n_all, static_cast<std::size_t>(options_.max_gp_points));
    const std::size_t offset = n_all - n;

    // Normalize targets for a stable prior.
    double y_mean = 0.0;
    for (std::size_t i = 0; i < n; ++i) y_mean += ys[offset + i];
    y_mean /= static_cast<double>(n);
    double y_var = 1e-6;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = ys[offset + i] - y_mean;
      y_var += d * d;
    }
    y_var /= static_cast<double>(n);

    la::Matrix gram(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j <= i; ++j) {
        const double k =
            matern52(xs[offset + i], xs[offset + j], options_.length_scale, y_var);
        gram(i, j) = k;
        gram(j, i) = k;
      }
      gram(i, i) += options_.noise + 1e-8;
    }
    la::Matrix chol_factor;
    try {
      chol_factor = la::cholesky(gram);
    } catch (const std::invalid_argument&) {
      // Numerical trouble: fall back to a random probe.
      std::vector<double> x(static_cast<std::size_t>(dim));
      for (auto& v : x) v = rng.uniform();
      record(x, f(x));
      continue;
    }
    std::vector<double> centered(n);
    for (std::size_t i = 0; i < n; ++i) centered[i] = ys[offset + i] - y_mean;
    const std::vector<double> alpha = la::cholesky_solve(chol_factor, centered);

    auto posterior = [&](const std::vector<double>& x, double& mu,
                         double& var) {
      std::vector<double> kvec(n);
      for (std::size_t i = 0; i < n; ++i) {
        kvec[i] = matern52(x, xs[offset + i], options_.length_scale, y_var);
      }
      mu = y_mean;
      for (std::size_t i = 0; i < n; ++i) mu += kvec[i] * alpha[i];
      // var = k(x,x) - k^T K^-1 k via the Cholesky solve.
      const std::vector<double> v = la::cholesky_solve(chol_factor, kvec);
      double reduction = 0.0;
      for (std::size_t i = 0; i < n; ++i) reduction += kvec[i] * v[i];
      var = std::max(1e-12, y_var - reduction);
    };

    // Acquisition: minimize LCB = mu - beta * sigma over random candidates
    // plus perturbations of the incumbent.
    std::vector<double> best_cand;
    double best_acq = std::numeric_limits<double>::infinity();
    for (int c = 0; c < options_.candidates; ++c) {
      std::vector<double> x(static_cast<std::size_t>(dim));
      if (c % 4 == 0 && !result.best_x.empty()) {
        for (int d = 0; d < dim; ++d) {
          x[static_cast<std::size_t>(d)] = std::clamp(
              result.best_x[static_cast<std::size_t>(d)] + rng.normal(0.0, 0.1),
              0.0, 1.0);
        }
      } else {
        for (auto& v : x) v = rng.uniform();
      }
      double mu, var;
      posterior(x, mu, var);
      const double acq = mu - options_.beta * std::sqrt(var);
      if (acq < best_acq) {
        best_acq = acq;
        best_cand = std::move(x);
      }
    }
    record(best_cand, f(best_cand));
  }
  return result;
}

}  // namespace tolerance::solvers
