#include "tolerance/solvers/objective.hpp"

#include <algorithm>

#include "tolerance/util/ensure.hpp"

namespace tolerance::solvers {

RecoveryObjective::RecoveryObjective(const pomdp::NodeModel& model,
                                     const pomdp::ObservationModel& obs,
                                     int delta_r, Options options)
    : simulator_(model, obs), delta_r_(std::max(delta_r, 0)),
      options_(options) {
  TOL_ENSURE(options.episodes > 0, "episodes must be positive");
  TOL_ENSURE(options.horizon > 0, "horizon must be positive");
}

double RecoveryObjective::operator()(const std::vector<double>& theta) const {
  return evaluate(theta).avg_cost;
}

pomdp::NodeRunStats RecoveryObjective::evaluate(
    const std::vector<double>& theta) const {
  std::vector<double> clipped = theta;
  for (double& v : clipped) v = std::clamp(v, 0.0, 1.0);
  const ThresholdPolicy policy(clipped, delta_r_);
  Rng rng(options_.seed);  // common random numbers across evaluations
  return simulator_.run_many(policy.as_policy(), options_.horizon,
                             options_.episodes, rng, options_.threads);
}

}  // namespace tolerance::solvers
