#include "tolerance/solvers/cem.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace tolerance::solvers {

OptResult CrossEntropyMethod::optimize(const ObjectiveFn& f, int dim,
                                       long max_evaluations, Rng& rng) const {
  TOL_ENSURE(dim > 0, "dimension must be positive");
  TOL_ENSURE(max_evaluations > 0, "evaluation budget must be positive");
  const Stopwatch clock;
  OptResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  std::vector<double> mean(static_cast<std::size_t>(dim), options_.init_mean);
  std::vector<double> stddev(static_cast<std::size_t>(dim),
                             options_.init_stddev);
  const int elites = std::max(
      1, static_cast<int>(options_.population * options_.elite_fraction));

  std::vector<std::vector<double>> population(
      static_cast<std::size_t>(options_.population));
  std::vector<double> values(static_cast<std::size_t>(options_.population));
  std::vector<int> order(static_cast<std::size_t>(options_.population));

  while (result.evaluations < max_evaluations) {
    const int batch = static_cast<int>(
        std::min<long>(options_.population, max_evaluations - result.evaluations));
    for (int i = 0; i < batch; ++i) {
      auto& x = population[static_cast<std::size_t>(i)];
      x.assign(static_cast<std::size_t>(dim), 0.0);
      for (int d = 0; d < dim; ++d) {
        const auto di = static_cast<std::size_t>(d);
        x[di] = std::clamp(rng.normal(mean[di], stddev[di]), 0.0, 1.0);
      }
      values[static_cast<std::size_t>(i)] = f(x);
      ++result.evaluations;
      if (values[static_cast<std::size_t>(i)] < result.best_value) {
        result.best_value = values[static_cast<std::size_t>(i)];
        result.best_x = x;
      }
    }
    result.history.push_back(
        {clock.elapsed_seconds(), result.best_value, result.evaluations});
    if (batch < elites) break;  // not enough samples left to refit

    std::iota(order.begin(), order.begin() + batch, 0);
    std::partial_sort(order.begin(), order.begin() + elites,
                      order.begin() + batch, [&](int a, int b) {
                        return values[static_cast<std::size_t>(a)] <
                               values[static_cast<std::size_t>(b)];
                      });
    for (int d = 0; d < dim; ++d) {
      const auto di = static_cast<std::size_t>(d);
      double m = 0.0;
      for (int e = 0; e < elites; ++e) {
        m += population[static_cast<std::size_t>(order[static_cast<std::size_t>(e)])][di];
      }
      m /= elites;
      double var = 0.0;
      for (int e = 0; e < elites; ++e) {
        const double v =
            population[static_cast<std::size_t>(order[static_cast<std::size_t>(e)])][di] - m;
        var += v * v;
      }
      var /= elites;
      mean[di] = m;
      stddev[di] = std::max(options_.min_stddev, std::sqrt(var));
    }
  }
  return result;
}

}  // namespace tolerance::solvers
