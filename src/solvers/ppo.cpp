#include "tolerance/solvers/ppo.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/pomdp/belief.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace tolerance::solvers {

using pomdp::NodeAction;
using pomdp::NodeState;

PpoSolver::PpoSolver(const pomdp::NodeModel& model,
                     const pomdp::ObservationModel& obs, int delta_r,
                     Options options)
    : model_(model), obs_(&obs), delta_r_(std::max(delta_r, 0)),
      options_(options) {
  TOL_ENSURE(options.batch_steps > 0, "batch_steps must be positive");
  TOL_ENSURE(options.iterations > 0, "iterations must be positive");
}

std::vector<double> PpoSolver::features(double belief, int t) const {
  // Cycle position in [0, 1]; 0 when DeltaR = inf (stationary problem).
  double phase = 0.0;
  if (delta_r_ > 0) {
    phase = static_cast<double>(((t - 1) % delta_r_) + 1) / delta_r_;
  }
  return {belief, phase};
}

PpoSolver::Result PpoSolver::train(Rng& rng) {
  const Stopwatch clock;
  Result result;
  std::vector<int> layout{2};
  for (int l = 0; l < options_.hidden_layers; ++l) {
    layout.push_back(options_.hidden_units);
  }
  std::vector<int> actor_layout = layout;
  actor_layout.push_back(2);
  std::vector<int> critic_layout = layout;
  critic_layout.push_back(1);
  actor_ = std::make_shared<Mlp>(actor_layout, rng);
  critic_ = std::make_shared<Mlp>(critic_layout, rng);

  const pomdp::BeliefUpdater updater(model_, *obs_);
  const double p_attack = model_.params().p_attack;

  struct Step {
    std::vector<double> feat;
    int action;
    double log_prob;
    double reward;
    double value;
    double advantage;
    double target;
  };

  result.best_cost = std::numeric_limits<double>::infinity();

  for (int iter = 0; iter < options_.iterations; ++iter) {
    // ---- Collect a batch of on-policy experience. ----
    std::vector<Step> batch;
    batch.reserve(static_cast<std::size_t>(options_.batch_steps));
    double batch_cost = 0.0;
    while (static_cast<int>(batch.size()) < options_.batch_steps) {
      NodeState state = rng.bernoulli(p_attack) ? NodeState::Compromised
                                                : NodeState::Healthy;
      double belief = p_attack;
      std::vector<std::size_t> episode_indices;
      for (int t = 1; t <= options_.episode_length &&
                      static_cast<int>(batch.size()) < options_.batch_steps;
           ++t) {
        Step step;
        step.feat = features(belief, t);
        const auto logits = actor_->forward(step.feat);
        const auto probs = softmax(logits);
        const bool forced =
            delta_r_ > 0 && ((t - 1) % delta_r_) + 1 == delta_r_;
        step.action = forced ? 1 : (rng.uniform() < probs[1] ? 1 : 0);
        step.log_prob =
            std::log(std::max(probs[static_cast<std::size_t>(step.action)], 1e-12));
        step.value = critic_->forward(step.feat)[0];
        const NodeAction a =
            step.action == 1 ? NodeAction::Recover : NodeAction::Wait;
        const double cost = model_.cost(state, a);
        step.reward = -cost;
        batch_cost += cost;
        // Environment transition.
        const double to_crash = model_.transition(state, a, NodeState::Crashed);
        const double to_h = model_.transition(state, a, NodeState::Healthy);
        const double u = rng.uniform();
        if (u < to_crash) {
          state = rng.bernoulli(p_attack) ? NodeState::Compromised
                                          : NodeState::Healthy;
          belief = p_attack;
        } else {
          state = u < to_crash + to_h ? NodeState::Healthy
                                      : NodeState::Compromised;
          const int o = obs_->sample(state == NodeState::Compromised, rng);
          belief = updater.update(belief, a, o);
        }
        episode_indices.push_back(batch.size());
        batch.push_back(std::move(step));
      }
      // ---- GAE for this episode. ----
      double next_value = 0.0;
      double gae = 0.0;
      for (std::size_t i = episode_indices.size(); i-- > 0;) {
        Step& s = batch[episode_indices[i]];
        const double delta =
            s.reward + options_.discount * next_value - s.value;
        gae = delta + options_.discount * options_.gae_lambda * gae;
        s.advantage = gae;
        s.target = s.advantage + s.value;
        next_value = s.value;
      }
    }
    result.evaluations += static_cast<long>(batch.size());

    // Advantage normalization.
    double adv_mean = 0.0;
    for (const Step& s : batch) adv_mean += s.advantage;
    adv_mean /= static_cast<double>(batch.size());
    double adv_var = 1e-8;
    for (const Step& s : batch) {
      adv_var += (s.advantage - adv_mean) * (s.advantage - adv_mean);
    }
    adv_var /= static_cast<double>(batch.size());
    const double adv_std = std::sqrt(adv_var);

    // ---- PPO update epochs. ----
    for (int epoch = 0; epoch < options_.epochs_per_batch; ++epoch) {
      actor_->zero_gradients();
      critic_->zero_gradients();
      for (const Step& s : batch) {
        const double adv = (s.advantage - adv_mean) / adv_std;
        const auto logits = actor_->forward(s.feat);
        const auto probs = softmax(logits);
        const double new_log_prob =
            std::log(std::max(probs[static_cast<std::size_t>(s.action)], 1e-12));
        const double ratio = std::exp(new_log_prob - s.log_prob);
        const double clipped =
            std::clamp(ratio, 1.0 - options_.clip, 1.0 + options_.clip);
        // Maximize min(ratio*adv, clipped*adv) => gradient only flows through
        // the unclipped branch when it is the active minimum.
        const bool use_unclipped = ratio * adv <= clipped * adv;
        // dLoss/dlogits for -surrogate - entropy_coef * H.
        std::vector<double> grad(2, 0.0);
        if (use_unclipped) {
          const double coef = -ratio * adv;  // d(-ratio*adv)/dlogp = -ratio*adv
          for (int j = 0; j < 2; ++j) {
            const double indicator = j == s.action ? 1.0 : 0.0;
            grad[static_cast<std::size_t>(j)] +=
                coef * (indicator - probs[static_cast<std::size_t>(j)]);
          }
        }
        // Entropy bonus gradient: dH/dlogit_j = -p_j (log p_j + H)... use the
        // standard formulation: H = -sum p log p.
        double entropy = 0.0;
        for (int j = 0; j < 2; ++j) {
          entropy -= probs[static_cast<std::size_t>(j)] *
                     std::log(std::max(probs[static_cast<std::size_t>(j)], 1e-12));
        }
        for (int j = 0; j < 2; ++j) {
          const double pj = probs[static_cast<std::size_t>(j)];
          const double dh =
              -pj * (std::log(std::max(pj, 1e-12)) + entropy);
          grad[static_cast<std::size_t>(j)] -= options_.entropy_coef * dh;
        }
        actor_->backward(grad);
        // Critic: 0.5 * (v - target)^2.
        const double v = critic_->forward(s.feat)[0];
        critic_->backward({v - s.target});
      }
      const double scale = 1.0 / static_cast<double>(batch.size());
      actor_->adam_step(options_.learning_rate, scale);
      critic_->adam_step(options_.learning_rate * 10.0, scale);
    }

    const double avg_cost = batch_cost / static_cast<double>(batch.size());
    result.best_cost = std::min(result.best_cost, avg_cost);
    result.history.push_back(
        {clock.elapsed_seconds(), result.best_cost, result.evaluations});
  }
  return result;
}

pomdp::NodePolicy PpoSolver::policy() const {
  TOL_ENSURE(actor_ != nullptr, "train() must be called before policy()");
  auto actor = actor_;
  const int delta_r = delta_r_;
  return [actor, delta_r, this](double belief, int t) {
    if (delta_r > 0 && ((t - 1) % delta_r) + 1 == delta_r) {
      return NodeAction::Recover;  // BTR constraint (6b)
    }
    const auto logits = actor->predict(features(belief, t));
    return logits[1] > logits[0] ? NodeAction::Recover : NodeAction::Wait;
  };
}

}  // namespace tolerance::solvers
