#include "tolerance/solvers/spsa.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace tolerance::solvers {

OptResult Spsa::optimize(const ObjectiveFn& f, int dim, long max_evaluations,
                         Rng& rng) const {
  TOL_ENSURE(dim > 0, "dimension must be positive");
  const Stopwatch clock;
  OptResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  std::vector<double> theta(static_cast<std::size_t>(dim));
  for (auto& v : theta) v = rng.uniform();

  std::vector<double> plus(theta.size());
  std::vector<double> minus(theta.size());
  std::vector<double> delta(theta.size());

  long k = 0;
  while (result.evaluations + 2 <= max_evaluations) {
    const double ak =
        options_.a / std::pow(k + 1 + options_.big_a, options_.alpha);
    const double ck = options_.c / std::pow(k + 1, options_.gamma);
    for (std::size_t d = 0; d < theta.size(); ++d) {
      delta[d] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      plus[d] = std::clamp(theta[d] + ck * delta[d], 0.0, 1.0);
      minus[d] = std::clamp(theta[d] - ck * delta[d], 0.0, 1.0);
    }
    const double y_plus = f(plus);
    const double y_minus = f(minus);
    result.evaluations += 2;
    for (std::size_t d = 0; d < theta.size(); ++d) {
      const double grad = (y_plus - y_minus) / (2.0 * ck * delta[d]);
      theta[d] = std::clamp(theta[d] - ak * grad, 0.0, 1.0);
    }
    // Track the better of the two probes (the iterate itself is not
    // evaluated to preserve the 2-evaluations-per-step budget).
    if (y_plus < result.best_value) {
      result.best_value = y_plus;
      result.best_x = plus;
    }
    if (y_minus < result.best_value) {
      result.best_value = y_minus;
      result.best_x = minus;
    }
    result.history.push_back(
        {clock.elapsed_seconds(), result.best_value, result.evaluations});
    ++k;
  }
  if (result.best_x.empty()) {
    result.best_x = theta;
    result.best_value = f(theta);
    ++result.evaluations;
  }
  return result;
}

}  // namespace tolerance::solvers
