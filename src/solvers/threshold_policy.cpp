#include "tolerance/solvers/threshold_policy.hpp"

#include <algorithm>

#include "tolerance/solvers/cmdp_lp.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::solvers {

ThresholdPolicy::ThresholdPolicy(std::vector<double> thresholds, int delta_r)
    : thresholds_(std::move(thresholds)), delta_r_(std::max(delta_r, 0)) {
  TOL_ENSURE(static_cast<int>(thresholds_.size()) == dimension(delta_r_),
             "threshold count must match dimension(delta_r)");
  for (double th : thresholds_) {
    TOL_ENSURE(th >= 0.0 && th <= 1.0, "thresholds must lie in [0,1]");
  }
}

int ThresholdPolicy::dimension(int delta_r) {
  // Algorithm 1 line 4: d = DeltaR - 1 when finite (the DeltaR-th step is the
  // forced recovery), d = 1 when infinite.
  if (delta_r <= 0) return 1;
  return std::max(1, delta_r - 1);
}

ThresholdPolicy ThresholdPolicy::constant(double threshold) {
  return ThresholdPolicy({threshold}, kNoBtr);
}

pomdp::NodeAction ThresholdPolicy::action(double belief, int t) const {
  TOL_ENSURE(t >= 1, "time steps are 1-based");
  if (delta_r_ > 0) {
    const int cycle_pos = ((t - 1) % delta_r_) + 1;  // 1..DeltaR
    if (cycle_pos == delta_r_) return pomdp::NodeAction::Recover;  // (6b)
    const int k = std::min(cycle_pos, static_cast<int>(thresholds_.size()));
    return belief >= thresholds_[static_cast<std::size_t>(k - 1)]
               ? pomdp::NodeAction::Recover
               : pomdp::NodeAction::Wait;
  }
  return belief >= thresholds_[0] ? pomdp::NodeAction::Recover
                                  : pomdp::NodeAction::Wait;
}

pomdp::NodePolicy ThresholdPolicy::as_policy() const {
  return [policy = *this](double belief, int t) {
    return policy.action(belief, t);
  };
}

int SystemThresholdPolicy::dominant_threshold(int beta1, int beta2,
                                              double kappa, int fallback) {
  // By the extraction convention in cmdp_lp.cpp, kappa is the add
  // probability on the randomized band: pi(1|s) = kappa for
  // beta1 < s <= beta2.  kappa >= 1/2 means the policy adds more often than
  // not on that band, so the dominant deterministic component extends to
  // beta2; below 1/2 it contracts to beta1.
  if (beta1 < 0 && beta2 < 0) return fallback;
  if (beta2 < 0) return beta1;
  if (beta1 < 0) return kappa >= 0.5 ? beta2 : fallback;
  return kappa >= 0.5 ? beta2 : beta1;
}

SystemThresholdPolicy SystemThresholdPolicy::from_solution(
    const CmdpSolution& solution, int fallback_beta) {
  return SystemThresholdPolicy(dominant_threshold(
      solution.beta1, solution.beta2, solution.kappa, fallback_beta));
}

}  // namespace tolerance::solvers
