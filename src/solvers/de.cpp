#include "tolerance/solvers/de.hpp"

#include <algorithm>
#include <limits>

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/stopwatch.hpp"

namespace tolerance::solvers {

OptResult DifferentialEvolution::optimize(const ObjectiveFn& f, int dim,
                                          long max_evaluations,
                                          Rng& rng) const {
  TOL_ENSURE(dim > 0, "dimension must be positive");
  TOL_ENSURE(options_.population >= 4,
             "DE/rand/1 needs a population of at least 4");
  const Stopwatch clock;
  OptResult result;
  result.best_value = std::numeric_limits<double>::infinity();

  const auto k = static_cast<std::size_t>(options_.population);
  std::vector<std::vector<double>> pop(k);
  std::vector<double> value(k);
  for (std::size_t i = 0; i < k && result.evaluations < max_evaluations; ++i) {
    pop[i].assign(static_cast<std::size_t>(dim), 0.0);
    for (auto& v : pop[i]) v = rng.uniform();
    value[i] = f(pop[i]);
    ++result.evaluations;
    if (value[i] < result.best_value) {
      result.best_value = value[i];
      result.best_x = pop[i];
    }
  }
  result.history.push_back(
      {clock.elapsed_seconds(), result.best_value, result.evaluations});

  std::vector<double> trial(static_cast<std::size_t>(dim));
  while (result.evaluations < max_evaluations) {
    for (std::size_t i = 0; i < k && result.evaluations < max_evaluations;
         ++i) {
      // Pick three distinct members a, b, c != i.
      std::size_t a, b, c;
      do { a = static_cast<std::size_t>(rng.uniform_int(options_.population)); } while (a == i);
      do { b = static_cast<std::size_t>(rng.uniform_int(options_.population)); } while (b == i || b == a);
      do { c = static_cast<std::size_t>(rng.uniform_int(options_.population)); } while (c == i || c == a || c == b);
      const int forced = rng.uniform_int(dim);
      for (int d = 0; d < dim; ++d) {
        const auto di = static_cast<std::size_t>(d);
        if (d == forced || rng.bernoulli(options_.recombination)) {
          trial[di] = std::clamp(
              pop[a][di] + options_.mutate_step * (pop[b][di] - pop[c][di]),
              0.0, 1.0);
        } else {
          trial[di] = pop[i][di];
        }
      }
      const double tv = f(trial);
      ++result.evaluations;
      if (tv <= value[i]) {
        pop[i] = trial;
        value[i] = tv;
      }
      if (tv < result.best_value) {
        result.best_value = tv;
        result.best_x = trial;
      }
    }
    result.history.push_back(
        {clock.elapsed_seconds(), result.best_value, result.evaluations});
  }
  return result;
}

}  // namespace tolerance::solvers
