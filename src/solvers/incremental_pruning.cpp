#include "tolerance/solvers/incremental_pruning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "tolerance/lp/simplex.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/parallel.hpp"

namespace tolerance::solvers {
namespace {

using pomdp::NodeAction;
using pomdp::NodeModel;
using pomdp::NodeState;
using pomdp::ObservationModel;

double slope(const AlphaVector& a) { return a.v_compromised - a.v_healthy; }

/// A pruned alpha set together with its envelope breakpoints: lines[i] is
/// the envelope's argmin exactly on [start[i], start[i+1]) (start[0] == 0).
/// Lines are sorted by slope descending — the order the minimum envelope
/// activates them as the belief grows.
struct Hull {
  std::vector<AlphaVector> lines;
  std::vector<double> start;

  void clear() {
    lines.clear();
    start.clear();
  }
};

/// Sort by slope descending (ties: lowest intercept first) and drop
/// eps-parallel duplicates, keeping the lowest.
void sort_dedup(std::vector<AlphaVector>& alphas, double eps) {
  std::sort(alphas.begin(), alphas.end(),
            [](const AlphaVector& x, const AlphaVector& y) {
              const double sx = slope(x);
              const double sy = slope(y);
              if (sx != sy) return sx > sy;
              return x.v_healthy < y.v_healthy;
            });
  std::size_t out = 0;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    if (out > 0 && std::fabs(slope(alphas[out - 1]) - slope(alphas[i])) <= eps) {
      continue;
    }
    alphas[out++] = alphas[i];
  }
  alphas.resize(out);
}

/// Lower-envelope sweep over lines already sorted by slope descending and
/// deduplicated; fills `hull` with the surviving lines and their activation
/// breakpoints.
void sweep(const std::vector<AlphaVector>& sorted, double eps, Hull& hull) {
  hull.clear();
  for (const AlphaVector& line : sorted) {
    double x_start = 0.0;
    while (!hull.lines.empty()) {
      const AlphaVector& top = hull.lines.back();
      // s_top > s_new after the descending sort; the new line is lower for
      // all b greater than the intersection point.
      const double x =
          (line.v_healthy - top.v_healthy) / (slope(top) - slope(line));
      if (x <= hull.start.back() + eps) {
        hull.lines.pop_back();
        hull.start.pop_back();
        continue;
      }
      x_start = x;
      break;
    }
    if (hull.lines.empty()) {
      x_start = 0.0;
    } else if (x_start >= 1.0 - eps) {
      continue;  // active only beyond the belief simplex
    }
    hull.lines.push_back(line);
    hull.start.push_back(x_start);
  }
}

void hull_prune(std::vector<AlphaVector> alphas, double eps, Hull& hull) {
  sort_dedup(alphas, eps);
  sweep(alphas, eps, hull);
}

/// Bounded-error cap: keep the envelope's argmin line at each of
/// 2 * max_alpha + 1 grid points.  The pre-overhaul code recomputed the
/// argmin by scanning every hull line per grid point (O(grid * n)); the
/// sweep already hands us the breakpoints, so walk them in lockstep with
/// the grid instead (O(grid + n)).  At a grid point that lands exactly on a
/// breakpoint both neighbours attain the minimum and the old scan kept the
/// earlier line (strict <), so the walk advances only while start < b.
void cap_hull(Hull& hull, int max_alpha, double eps,
              std::vector<AlphaVector>& kept) {
  if (hull.lines.size() <= static_cast<std::size_t>(max_alpha)) return;
  kept.clear();
  const int grid = 2 * max_alpha;
  std::size_t active = 0;
  std::size_t last = hull.lines.size();  // sentinel
  for (int g = 0; g <= grid; ++g) {
    const double b = static_cast<double>(g) / grid;
    while (active + 1 < hull.lines.size() && hull.start[active + 1] < b) {
      ++active;
    }
    if (active != last) {
      kept.push_back(hull.lines[active]);
      last = active;
    }
  }
  // The kept subset still forms its own envelope in sorted order; re-sweep
  // (no sort needed) to refresh the breakpoints.
  sweep(kept, eps, hull);
}

// ---------------------------------------------------------------------------
// Backup
// ---------------------------------------------------------------------------

/// Scratch buffers for one action's backup, reused across observations and
/// stages so the hot loop performs no steady-state allocation.
struct BackupWorkspace {
  std::vector<AlphaVector> proj;
  std::vector<AlphaVector> capped;
  Hull gamma;
  Hull acc;
  Hull next;
};

/// Pruned cross-sum of two pruned hulls by breakpoint merge: the envelope
/// of {u + v} over independent choices is env(A)(b) + env(B)(b), so the
/// surviving sums are exactly the pairs whose active segments overlap.
void cross_sum_merge(const Hull& a, const Hull& b, NodeAction action,
                     Hull& out) {
  out.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  double at = 0.0;
  while (true) {
    out.lines.push_back({a.lines[i].v_healthy + b.lines[j].v_healthy,
                         a.lines[i].v_compromised + b.lines[j].v_compromised,
                         action});
    out.start.push_back(at);
    const double next_a =
        i + 1 < a.lines.size() ? a.start[i + 1]
                               : std::numeric_limits<double>::infinity();
    const double next_b =
        j + 1 < b.lines.size() ? b.start[j + 1]
                               : std::numeric_limits<double>::infinity();
    const double next = std::min(next_a, next_b);
    if (next >= 1.0 || next == std::numeric_limits<double>::infinity()) break;
    if (next_a <= next) ++i;
    if (next_b <= next) ++j;
    at = next;
  }
}

/// Project the next-stage alpha set through (action, observation):
///   g(s) = discount * sum_{s' in {H,C}} f(s'|s,a) Z(o|s') alpha(s').
/// The crash branch contributes 0 (value of a crashed node is 0).
void project(const NodeModel& model, const ObservationModel& obs,
             const std::vector<AlphaVector>& next, NodeAction a, int o,
             double discount, std::vector<AlphaVector>& out) {
  const double f_hh = model.transition(NodeState::Healthy, a, NodeState::Healthy);
  const double f_hc = model.transition(NodeState::Healthy, a, NodeState::Compromised);
  const double f_ch = model.transition(NodeState::Compromised, a, NodeState::Healthy);
  const double f_cc = model.transition(NodeState::Compromised, a, NodeState::Compromised);
  const double z_h = obs.prob(o, false);
  const double z_c = obs.prob(o, true);
  out.clear();
  out.reserve(next.size());
  for (const AlphaVector& alpha : next) {
    AlphaVector g;
    g.action = a;
    g.v_healthy = discount * (f_hh * z_h * alpha.v_healthy +
                              f_hc * z_c * alpha.v_compromised);
    g.v_compromised = discount * (f_ch * z_h * alpha.v_healthy +
                                  f_cc * z_c * alpha.v_compromised);
    out.push_back(g);
  }
}

constexpr double kPruneEps = 1e-12;

/// One action's backup via breakpoint-merge cross-sums (the fast path).
void backup_action(const NodeModel& model, const ObservationModel& obs,
                   const std::vector<AlphaVector>& next, NodeAction a,
                   double discount, const IpOptions& opt,
                   BackupWorkspace& ws, std::vector<AlphaVector>& result) {
  const int num_obs = obs.num_observations();
  ws.acc.lines.assign(1, {model.cost(NodeState::Healthy, a),
                          model.cost(NodeState::Compromised, a), a});
  ws.acc.start.assign(1, 0.0);
  for (int o = 0; o < num_obs; ++o) {
    project(model, obs, next, a, o, discount, ws.proj);
    hull_prune(std::move(ws.proj), kPruneEps, ws.gamma);
    ws.proj.clear();
    cap_hull(ws.gamma, opt.max_alpha, kPruneEps, ws.capped);
    cross_sum_merge(ws.acc, ws.gamma, a, ws.next);
    std::swap(ws.acc, ws.next);
    cap_hull(ws.acc, opt.max_alpha, kPruneEps, ws.capped);
  }
  result = ws.acc.lines;
}

/// One action's backup via the pre-overhaul enumeration path (kept as the
/// reference for the regression suite and the Fig. 8 speedup bench); with
/// opt.lp_prune_crosscheck the pruning runs through prune_lp instead of the
/// hull sweep.
void backup_action_reference(const NodeModel& model,
                             const ObservationModel& obs,
                             const std::vector<AlphaVector>& next,
                             NodeAction a, double discount,
                             const IpOptions& opt,
                             std::vector<AlphaVector>& result) {
  const auto prune_via = [&](std::vector<AlphaVector> v) {
    return opt.lp_prune_crosscheck
               ? prune_lp(std::move(v))
               : prune(std::move(v), kPruneEps, opt.max_alpha);
  };
  const int num_obs = obs.num_observations();
  std::vector<std::vector<AlphaVector>> gamma(
      static_cast<std::size_t>(num_obs));
  for (int o = 0; o < num_obs; ++o) {
    auto& set = gamma[static_cast<std::size_t>(o)];
    project(model, obs, next, a, o, discount, set);
    set = prune_via(std::move(set));
  }
  std::vector<AlphaVector> acc{{model.cost(NodeState::Healthy, a),
                                model.cost(NodeState::Compromised, a), a}};
  for (int o = 0; o < num_obs; ++o) {
    const auto& set = gamma[static_cast<std::size_t>(o)];
    std::vector<AlphaVector> cross;
    cross.reserve(acc.size() * set.size());
    for (const AlphaVector& u : acc) {
      for (const AlphaVector& v : set) {
        cross.push_back(
            {u.v_healthy + v.v_healthy, u.v_compromised + v.v_compromised, a});
      }
    }
    acc = prune_via(std::move(cross));
  }
  result = std::move(acc);
}

/// One DP backup over the allowed actions.  Per-action backups run on the
/// shared worker pool; the merge concatenates in action order, so results
/// are bit-identical at any thread count.
std::vector<AlphaVector> backup(const NodeModel& model,
                                const ObservationModel& obs,
                                const std::vector<AlphaVector>& next,
                                const std::vector<NodeAction>& actions,
                                double discount, const IpOptions& opt,
                                std::vector<BackupWorkspace>& workspaces,
                                std::vector<std::vector<AlphaVector>>& slots) {
  workspaces.resize(actions.size());
  slots.resize(actions.size());
  const auto run_one = [&](std::int64_t i) {
    const auto idx = static_cast<std::size_t>(i);
    if (opt.reference_backup || opt.lp_prune_crosscheck) {
      backup_action_reference(model, obs, next, actions[idx], discount, opt,
                              slots[idx]);
    } else {
      backup_action(model, obs, next, actions[idx], discount, opt,
                    workspaces[idx], slots[idx]);
    }
  };
  if (actions.size() > 1 && util::resolve_threads(opt.threads) > 1) {
    util::ParallelRunner(opt.threads)
        .for_each(static_cast<std::int64_t>(actions.size()), run_one);
  } else {
    for (std::size_t i = 0; i < actions.size(); ++i) {
      run_one(static_cast<std::int64_t>(i));
    }
  }
  std::vector<AlphaVector> out;
  for (const auto& slot : slots) out.insert(out.end(), slot.begin(), slot.end());
  if (opt.lp_prune_crosscheck) return prune_lp(std::move(out));
  return prune(std::move(out), kPruneEps, opt.max_alpha);
}

}  // namespace

double envelope_value(const std::vector<AlphaVector>& alphas, double belief) {
  TOL_ENSURE(!alphas.empty(), "empty alpha set");
  double best = std::numeric_limits<double>::infinity();
  for (const AlphaVector& a : alphas) best = std::min(best, a.value(belief));
  return best;
}

NodeAction envelope_action(const std::vector<AlphaVector>& alphas,
                           double belief) {
  TOL_ENSURE(!alphas.empty(), "empty alpha set");
  double best = std::numeric_limits<double>::infinity();
  NodeAction action = NodeAction::Wait;
  for (const AlphaVector& a : alphas) {
    const double v = a.value(belief);
    if (v < best) {
      best = v;
      action = a.action;
    }
  }
  return action;
}

std::vector<AlphaVector> prune(std::vector<AlphaVector> alphas, double eps,
                               int max_alpha) {
  TOL_ENSURE(max_alpha >= 1, "max_alpha must be >= 1");
  if (alphas.size() <= 1) return alphas;
  Hull hull;
  hull_prune(std::move(alphas), eps, hull);
  std::vector<AlphaVector> kept;
  cap_hull(hull, max_alpha, eps, kept);
  return std::move(hull.lines);
}

std::vector<AlphaVector> prune_lp(std::vector<AlphaVector> alphas,
                                  double eps) {
  if (alphas.size() <= 1) return alphas;
  // Same parallel-line dedup as the sweep, so ties cannot keep both copies.
  sort_dedup(alphas, 1e-12);
  // Witness LP per candidate i over variables (b, d+, d-):
  //   maximize d   s.t.  b <= 1,  and for every j != i
  //   (s_i - s_j) b + d <= h_j - h_i            (d := d+ - d-)
  // i.e. alpha_i(b) + d <= alpha_j(b).  Keep i iff the optimal witness gap
  // d* exceeds eps: somewhere on [0, 1] the line sits strictly below every
  // other, exactly the sweep's survival criterion (lines touching the
  // envelope at a single point are dropped by both).
  const lp::SimplexSolver solver;
  std::vector<AlphaVector> kept;
  for (std::size_t i = 0; i < alphas.size(); ++i) {
    lp::LinearProgram witness(3);
    witness.objective = {0.0, -1.0, 1.0};
    witness.add_constraint({{0, 1.0}}, lp::Relation::LessEq, 1.0);
    for (std::size_t j = 0; j < alphas.size(); ++j) {
      if (j == i) continue;
      witness.add_constraint(
          {{0, slope(alphas[i]) - slope(alphas[j])}, {1, 1.0}, {2, -1.0}},
          lp::Relation::LessEq,
          alphas[j].v_healthy - alphas[i].v_healthy);
    }
    const auto sol = solver.solve(witness);
    const bool keep =
        sol.status != lp::LpStatus::Optimal || -sol.objective > eps;
    if (keep) kept.push_back(alphas[i]);
  }
  return kept;
}

IncrementalPruning::Result IncrementalPruning::solve_cycle(
    const NodeModel& model, const ObservationModel& obs, int delta_r,
    const IpOptions& options) {
  TOL_ENSURE(delta_r >= 1, "cycle solve needs DeltaR >= 1");
  TOL_ENSURE(options.max_alpha >= 1, "max_alpha must be >= 1");
  Result result;
  result.value_functions.assign(static_cast<std::size_t>(delta_r), {});
  // Terminal stage t = DeltaR: forced recovery, no continuation (the next
  // cycle is identical and handled by the cycle-average argument (16)).
  result.value_functions[static_cast<std::size_t>(delta_r - 1)] = {
      {model.cost(NodeState::Healthy, NodeAction::Recover),
       model.cost(NodeState::Compromised, NodeAction::Recover),
       NodeAction::Recover}};
  const std::vector<NodeAction> both{NodeAction::Wait, NodeAction::Recover};
  std::vector<BackupWorkspace> workspaces;
  std::vector<std::vector<AlphaVector>> slots;
  for (int t = delta_r - 2; t >= 0; --t) {
    result.value_functions[static_cast<std::size_t>(t)] =
        backup(model, obs, result.value_functions[static_cast<std::size_t>(t + 1)],
               both, 1.0, options, workspaces, slots);
    result.iterations++;
  }
  const double p_attack = model.params().p_attack;
  result.average_cost =
      envelope_value(result.value_functions[0], p_attack) / delta_r;
  return result;
}

IncrementalPruning::Result IncrementalPruning::solve_discounted(
    const NodeModel& model, const ObservationModel& obs, double discount,
    double tol, int max_iterations, const IpOptions& options) {
  TOL_ENSURE(discount > 0.0 && discount < 1.0, "discount in (0,1)");
  TOL_ENSURE(options.max_alpha >= 1, "max_alpha must be >= 1");
  Result result;
  std::vector<AlphaVector> value{{0.0, 0.0, NodeAction::Wait}};
  const std::vector<NodeAction> both{NodeAction::Wait, NodeAction::Recover};
  std::vector<BackupWorkspace> workspaces;
  std::vector<std::vector<AlphaVector>> slots;
  result.converged = false;
  for (int it = 0; it < max_iterations; ++it) {
    const std::vector<AlphaVector> next =
        backup(model, obs, value, both, discount, options, workspaces, slots);
    ++result.iterations;
    // Convergence: max envelope change over a belief grid.
    double delta = 0.0;
    for (int g = 0; g <= 64; ++g) {
      const double b = g / 64.0;
      delta = std::max(delta, std::fabs(envelope_value(next, b) -
                                        envelope_value(value, b)));
    }
    value = next;
    if (delta < tol) {
      result.converged = true;
      break;
    }
  }
  result.value_functions.push_back(value);
  const double p_attack = model.params().p_attack;
  result.average_cost =
      (1.0 - discount) * envelope_value(value, p_attack);
  return result;
}

double IncrementalPruning::recovery_threshold(
    const std::vector<AlphaVector>& alphas) {
  TOL_ENSURE(!alphas.empty(), "empty alpha set");
  // The switch point is an envelope breakpoint: read it off the hull sweep
  // directly (the old implementation scanned a 4096-point grid and then
  // bisected onto the same breakpoint).
  Hull hull;
  hull_prune(alphas, 1e-12, hull);
  for (std::size_t i = 0; i < hull.lines.size(); ++i) {
    if (hull.lines[i].action == NodeAction::Recover) return hull.start[i];
  }
  return 1.0;
}

}  // namespace tolerance::solvers
