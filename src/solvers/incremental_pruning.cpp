#include "tolerance/solvers/incremental_pruning.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "tolerance/util/ensure.hpp"

namespace tolerance::solvers {
namespace {

using pomdp::NodeAction;
using pomdp::NodeModel;
using pomdp::NodeState;
using pomdp::ObservationModel;

// One DP backup: V_next given as alpha set; returns pruned alpha set for the
// current stage over the allowed actions.
std::vector<AlphaVector> backup(const NodeModel& model,
                                const ObservationModel& obs,
                                const std::vector<AlphaVector>& next,
                                const std::vector<NodeAction>& actions,
                                double discount) {
  const int num_obs = obs.num_observations();
  std::vector<AlphaVector> out;
  for (const NodeAction a : actions) {
    // Per-observation projected sets Gamma_{a,o}:
    //   g(s) = discount * sum_{s' in {H,C}} f(s'|s,a) Z(o|s') alpha(s').
    // The crash branch contributes 0 (value of a crashed node is 0).
    std::vector<std::vector<AlphaVector>> gamma(
        static_cast<std::size_t>(num_obs));
    const double f_hh = model.transition(NodeState::Healthy, a, NodeState::Healthy);
    const double f_hc = model.transition(NodeState::Healthy, a, NodeState::Compromised);
    const double f_ch = model.transition(NodeState::Compromised, a, NodeState::Healthy);
    const double f_cc = model.transition(NodeState::Compromised, a, NodeState::Compromised);
    for (int o = 0; o < num_obs; ++o) {
      const double z_h = obs.prob(o, false);
      const double z_c = obs.prob(o, true);
      auto& set = gamma[static_cast<std::size_t>(o)];
      set.reserve(next.size());
      for (const AlphaVector& alpha : next) {
        AlphaVector g;
        g.action = a;
        g.v_healthy = discount * (f_hh * z_h * alpha.v_healthy +
                                  f_hc * z_c * alpha.v_compromised);
        g.v_compromised = discount * (f_ch * z_h * alpha.v_healthy +
                                      f_cc * z_c * alpha.v_compromised);
        set.push_back(g);
      }
      set = prune(std::move(set));
    }
    // Incremental cross-sum with pruning after each observation.
    std::vector<AlphaVector> acc{{model.cost(NodeState::Healthy, a),
                                  model.cost(NodeState::Compromised, a), a}};
    for (int o = 0; o < num_obs; ++o) {
      const auto& set = gamma[static_cast<std::size_t>(o)];
      std::vector<AlphaVector> cross;
      cross.reserve(acc.size() * set.size());
      for (const AlphaVector& u : acc) {
        for (const AlphaVector& v : set) {
          cross.push_back(
              {u.v_healthy + v.v_healthy, u.v_compromised + v.v_compromised, a});
        }
      }
      acc = prune(std::move(cross));
    }
    out.insert(out.end(), acc.begin(), acc.end());
  }
  return prune(std::move(out));
}

}  // namespace

double envelope_value(const std::vector<AlphaVector>& alphas, double belief) {
  TOL_ENSURE(!alphas.empty(), "empty alpha set");
  double best = std::numeric_limits<double>::infinity();
  for (const AlphaVector& a : alphas) best = std::min(best, a.value(belief));
  return best;
}

NodeAction envelope_action(const std::vector<AlphaVector>& alphas,
                           double belief) {
  TOL_ENSURE(!alphas.empty(), "empty alpha set");
  double best = std::numeric_limits<double>::infinity();
  NodeAction action = NodeAction::Wait;
  for (const AlphaVector& a : alphas) {
    const double v = a.value(belief);
    if (v < best) {
      best = v;
      action = a.action;
    }
  }
  return action;
}

std::vector<AlphaVector> prune(std::vector<AlphaVector> alphas, double eps) {
  if (alphas.size() <= 1) return alphas;
  // A line is useful iff it attains the lower envelope somewhere on [0,1].
  // Treat each alpha as the line v(b) = v_H + (v_C - v_H) * b.  For the
  // *minimum* envelope, as b increases the active line's slope decreases, so
  // sort by slope descending (ties: lowest intercept first) and sweep.
  std::sort(alphas.begin(), alphas.end(), [](const AlphaVector& x,
                                             const AlphaVector& y) {
    const double sx = x.v_compromised - x.v_healthy;
    const double sy = y.v_compromised - y.v_healthy;
    if (sx != sy) return sx > sy;
    return x.v_healthy < y.v_healthy;
  });
  // Deduplicate parallel lines (keep the lowest intercept, i.e. first).
  std::vector<AlphaVector> unique;
  for (const AlphaVector& a : alphas) {
    if (!unique.empty()) {
      const double s_prev =
          unique.back().v_compromised - unique.back().v_healthy;
      const double s_cur = a.v_compromised - a.v_healthy;
      if (std::fabs(s_prev - s_cur) <= eps) continue;
    }
    unique.push_back(a);
  }
  // Sweep: keep lines forming the lower envelope restricted to b in [0,1].
  std::vector<AlphaVector> hull;
  std::vector<double> start;  // belief where each hull line becomes active
  for (const AlphaVector& line : unique) {
    double x_start = 0.0;
    while (!hull.empty()) {
      const AlphaVector& top = hull.back();
      const double s_top = top.v_compromised - top.v_healthy;
      const double s_new = line.v_compromised - line.v_healthy;
      // s_top > s_new after the descending sort; the new line is lower for
      // all b greater than the intersection point.
      const double x = (line.v_healthy - top.v_healthy) / (s_top - s_new);
      if (x <= start.back() + eps) {
        hull.pop_back();
        start.pop_back();
        continue;
      }
      x_start = x;
      break;
    }
    if (hull.empty()) {
      x_start = 0.0;
    } else if (x_start >= 1.0 - eps) {
      continue;  // active only beyond the belief simplex
    }
    hull.push_back(line);
    start.push_back(x_start);
  }
  // The exact envelope can accumulate many micro-segments whose contribution
  // is below solver noise; cap the set with grid-based pruning (keep the
  // argmin line at each grid point).  This is the standard bounded-error
  // refinement used by practical POMDP solvers.
  constexpr std::size_t kMaxAlpha = 64;
  if (hull.size() > kMaxAlpha) {
    std::vector<AlphaVector> kept;
    std::size_t last = hull.size();  // sentinel
    const int grid = 2 * static_cast<int>(kMaxAlpha);
    for (int g = 0; g <= grid; ++g) {
      const double b = static_cast<double>(g) / grid;
      std::size_t best = 0;
      double best_v = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < hull.size(); ++i) {
        const double v = hull[i].value(b);
        if (v < best_v) {
          best_v = v;
          best = i;
        }
      }
      if (best != last) {
        kept.push_back(hull[best]);
        last = best;
      }
    }
    return kept;
  }
  return hull;
}

IncrementalPruning::Result IncrementalPruning::solve_cycle(
    const NodeModel& model, const ObservationModel& obs, int delta_r) {
  TOL_ENSURE(delta_r >= 1, "cycle solve needs DeltaR >= 1");
  Result result;
  result.value_functions.assign(static_cast<std::size_t>(delta_r), {});
  // Terminal stage t = DeltaR: forced recovery, no continuation (the next
  // cycle is identical and handled by the cycle-average argument (16)).
  result.value_functions[static_cast<std::size_t>(delta_r - 1)] = {
      {model.cost(NodeState::Healthy, NodeAction::Recover),
       model.cost(NodeState::Compromised, NodeAction::Recover),
       NodeAction::Recover}};
  const std::vector<NodeAction> both{NodeAction::Wait, NodeAction::Recover};
  for (int t = delta_r - 2; t >= 0; --t) {
    result.value_functions[static_cast<std::size_t>(t)] =
        backup(model, obs, result.value_functions[static_cast<std::size_t>(t + 1)],
               both, 1.0);
    result.iterations++;
  }
  const double p_attack = model.params().p_attack;
  result.average_cost =
      envelope_value(result.value_functions[0], p_attack) / delta_r;
  return result;
}

IncrementalPruning::Result IncrementalPruning::solve_discounted(
    const NodeModel& model, const ObservationModel& obs, double discount,
    double tol, int max_iterations) {
  TOL_ENSURE(discount > 0.0 && discount < 1.0, "discount in (0,1)");
  Result result;
  std::vector<AlphaVector> value{{0.0, 0.0, NodeAction::Wait}};
  const std::vector<NodeAction> both{NodeAction::Wait, NodeAction::Recover};
  result.converged = false;
  for (int it = 0; it < max_iterations; ++it) {
    const std::vector<AlphaVector> next = backup(model, obs, value, both,
                                                 discount);
    ++result.iterations;
    // Convergence: max envelope change over a belief grid.
    double delta = 0.0;
    for (int g = 0; g <= 64; ++g) {
      const double b = g / 64.0;
      delta = std::max(delta, std::fabs(envelope_value(next, b) -
                                        envelope_value(value, b)));
    }
    value = next;
    if (delta < tol) {
      result.converged = true;
      break;
    }
  }
  result.value_functions.push_back(value);
  const double p_attack = model.params().p_attack;
  result.average_cost =
      (1.0 - discount) * envelope_value(value, p_attack);
  return result;
}

double IncrementalPruning::recovery_threshold(
    const std::vector<AlphaVector>& alphas, int grid) {
  TOL_ENSURE(grid >= 2, "grid too small");
  // Coarse scan for the first Recover point, then bisection refine.
  double lo = -1.0;
  for (int g = 0; g <= grid; ++g) {
    const double b = static_cast<double>(g) / grid;
    if (envelope_action(alphas, b) == NodeAction::Recover) {
      lo = b;
      break;
    }
  }
  if (lo < 0.0) return 1.0;
  if (lo == 0.0) return 0.0;
  double left = lo - 1.0 / grid;
  double right = lo;
  for (int i = 0; i < 50; ++i) {
    const double mid = 0.5 * (left + right);
    if (envelope_action(alphas, mid) == NodeAction::Recover) {
      right = mid;
    } else {
      left = mid;
    }
  }
  return right;
}

}  // namespace tolerance::solvers
