#include "tolerance/solvers/nn.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/util/ensure.hpp"

namespace tolerance::solvers {

Mlp::Mlp(std::vector<int> layer_sizes, Rng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
  TOL_ENSURE(layer_sizes_.size() >= 2, "need at least input and output layers");
  const std::size_t layers = layer_sizes_.size() - 1;
  w_.resize(layers);
  b_.resize(layers);
  gw_.resize(layers);
  gb_.resize(layers);
  mw_.resize(layers);
  vw_.resize(layers);
  mb_.resize(layers);
  vb_.resize(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    TOL_ENSURE(in > 0 && out > 0, "layer sizes must be positive");
    const double scale = std::sqrt(2.0 / in);  // He initialization for ReLU
    w_[l].resize(static_cast<std::size_t>(in) * out);
    for (auto& v : w_[l]) v = rng.normal(0.0, scale);
    b_[l].assign(static_cast<std::size_t>(out), 0.0);
    gw_[l].assign(w_[l].size(), 0.0);
    gb_[l].assign(b_[l].size(), 0.0);
    mw_[l].assign(w_[l].size(), 0.0);
    vw_[l].assign(w_[l].size(), 0.0);
    mb_[l].assign(b_[l].size(), 0.0);
    vb_[l].assign(b_[l].size(), 0.0);
  }
  act_.resize(layers + 1);
  pre_.resize(layers);
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (std::size_t l = 0; l < w_.size(); ++l) n += w_[l].size() + b_[l].size();
  return n;
}

std::vector<double> Mlp::forward(const std::vector<double>& input) {
  TOL_ENSURE(static_cast<int>(input.size()) == layer_sizes_.front(),
             "input size mismatch");
  act_[0] = input;
  const std::size_t layers = w_.size();
  for (std::size_t l = 0; l < layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    pre_[l].assign(static_cast<std::size_t>(out), 0.0);
    for (int o = 0; o < out; ++o) {
      double s = b_[l][static_cast<std::size_t>(o)];
      const double* row = w_[l].data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) s += row[i] * act_[l][static_cast<std::size_t>(i)];
      pre_[l][static_cast<std::size_t>(o)] = s;
    }
    act_[l + 1] = pre_[l];
    if (l + 1 < layers) {  // ReLU on hidden layers only
      for (auto& v : act_[l + 1]) v = std::max(0.0, v);
    }
  }
  return act_[layers];
}

std::vector<double> Mlp::predict(const std::vector<double>& input) const {
  TOL_ENSURE(static_cast<int>(input.size()) == layer_sizes_.front(),
             "input size mismatch");
  const std::size_t layers = w_.size();
  std::vector<double> cur = input;
  std::vector<double> next;
  for (std::size_t l = 0; l < layers; ++l) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    next.assign(static_cast<std::size_t>(out), 0.0);
    for (int o = 0; o < out; ++o) {
      double s = b_[l][static_cast<std::size_t>(o)];
      const double* row = w_[l].data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) {
        s += row[i] * cur[static_cast<std::size_t>(i)];
      }
      next[static_cast<std::size_t>(o)] = s;
    }
    if (l + 1 < layers) {  // ReLU on hidden layers only
      for (double& v : next) v = std::max(0.0, v);
    }
    cur.swap(next);
  }
  return cur;
}

void Mlp::backward(const std::vector<double>& grad_output) {
  const std::size_t layers = w_.size();
  TOL_ENSURE(grad_output.size() == act_[layers].size(),
             "gradient size mismatch");
  std::vector<double> delta = grad_output;
  for (std::size_t l = layers; l-- > 0;) {
    const int in = layer_sizes_[l];
    const int out = layer_sizes_[l + 1];
    if (l + 1 < layers) {  // ReLU derivative of this layer's activation
      for (int o = 0; o < out; ++o) {
        if (pre_[l][static_cast<std::size_t>(o)] <= 0.0) {
          delta[static_cast<std::size_t>(o)] = 0.0;
        }
      }
    }
    for (int o = 0; o < out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      if (d == 0.0) continue;
      double* grow = gw_[l].data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) {
        grow[i] += d * act_[l][static_cast<std::size_t>(i)];
      }
      gb_[l][static_cast<std::size_t>(o)] += d;
    }
    if (l == 0) break;
    std::vector<double> prev(static_cast<std::size_t>(in), 0.0);
    for (int o = 0; o < out; ++o) {
      const double d = delta[static_cast<std::size_t>(o)];
      if (d == 0.0) continue;
      const double* row = w_[l].data() + static_cast<std::size_t>(o) * in;
      for (int i = 0; i < in; ++i) prev[static_cast<std::size_t>(i)] += d * row[i];
    }
    delta = std::move(prev);
  }
}

void Mlp::zero_gradients() {
  for (std::size_t l = 0; l < w_.size(); ++l) {
    std::fill(gw_[l].begin(), gw_[l].end(), 0.0);
    std::fill(gb_[l].begin(), gb_[l].end(), 0.0);
  }
}

void Mlp::adam_step(double lr, double batch_scale) {
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;
  ++adam_t_;
  const double bc1 = 1.0 - std::pow(kBeta1, adam_t_);
  const double bc2 = 1.0 - std::pow(kBeta2, adam_t_);
  auto update = [&](std::vector<double>& param, std::vector<double>& grad,
                    std::vector<double>& m, std::vector<double>& v) {
    for (std::size_t i = 0; i < param.size(); ++i) {
      const double g = grad[i] * batch_scale;
      m[i] = kBeta1 * m[i] + (1.0 - kBeta1) * g;
      v[i] = kBeta2 * v[i] + (1.0 - kBeta2) * g * g;
      param[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + kEps);
    }
  };
  for (std::size_t l = 0; l < w_.size(); ++l) {
    update(w_[l], gw_[l], mw_[l], vw_[l]);
    update(b_[l], gb_[l], mb_[l], vb_[l]);
  }
}

std::vector<double> softmax(const std::vector<double>& logits) {
  TOL_ENSURE(!logits.empty(), "softmax of empty vector");
  const double mx = *std::max_element(logits.begin(), logits.end());
  std::vector<double> p(logits.size());
  double total = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    p[i] = std::exp(logits[i] - mx);
    total += p[i];
  }
  for (auto& v : p) v /= total;
  return p;
}

}  // namespace tolerance::solvers
