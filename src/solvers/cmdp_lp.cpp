#include "tolerance/solvers/cmdp_lp.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/util/ensure.hpp"

namespace tolerance::solvers {
namespace {

constexpr double kRandomizedEps = 1e-6;

}  // namespace

int CmdpSolution::act(int s, Rng& rng) const {
  TOL_ENSURE(s >= 0 && s < static_cast<int>(add_probability.size()),
             "state out of range");
  return rng.bernoulli(add_probability[static_cast<std::size_t>(s)]) ? 1 : 0;
}

double CmdpSolution::add_probability_at(int s) const {
  TOL_ENSURE(!add_probability.empty(), "solution has no policy");
  const int hi = static_cast<int>(add_probability.size()) - 1;
  const int clamped = std::min(std::max(s, 0), hi);
  return add_probability[static_cast<std::size_t>(clamped)];
}

int CmdpSolution::act_clamped(int s, Rng& rng) const {
  return rng.bernoulli(add_probability_at(s)) ? 1 : 0;
}

bool CmdpSolution::valid_policy() const {
  if (status != lp::LpStatus::Optimal) return false;
  if (add_probability.empty()) return false;
  if (!std::isfinite(average_cost)) return false;
  for (const double p : add_probability) {
    if (!std::isfinite(p) || p < 0.0 || p > 1.0) return false;
  }
  return true;
}

CmdpSolution solve_replication_lp(const pomdp::SystemCmdp& cmdp,
                                  lp::SimplexSolver::Options lp_options,
                                  const lp::SimplexBasis* warm) {
  const int n = cmdp.num_states();
  // Variable layout: rho(s, a) at index 2*s + a, plus one aggregate z at
  // index 2n (see below).
  //
  // The raw flow-balance columns are dense: every kernel row carries a
  // small uniform floor (the `mix` mass of the parametric kernel, the
  // Laplace smoothing of the estimated one), so f(s | s', a) is nonzero for
  // every s.  Split each kernel row into that floor plus a sparse "bump":
  //   f(s | s', a) = bump(s | s', a) + u(s', a),   u(s', a) = min_s f(...),
  // and aggregate the floor through a single auxiliary variable
  //   z = sum_{s',a} u(s', a) rho(s', a)   (one defining Eq row),
  // so each flow row reads
  //   sum_a rho(s,a) - sum_{s',a} bump(s|s',a) rho(s',a) - z = 0.
  // This is an exact reformulation (any row-constant split is), but the
  // occupancy columns now hold only their bump entries, which is what makes
  // the sparse revised simplex pay off.  Bump entries below kDropTol —
  // far beneath the solver's own feasibility tolerances — are dropped.
  constexpr double kDropTol = 1e-12;
  const int z_var = 2 * n;
  lp::LinearProgram program(2 * n + 1);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < 2; ++a) {
      program.objective[static_cast<std::size_t>(2 * s + a)] = cmdp.cost(s);
    }
  }
  program.objective[static_cast<std::size_t>(z_var)] = 0.0;
  std::vector<std::array<double, 2>> floor_u(static_cast<std::size_t>(n));
  for (int sp = 0; sp < n; ++sp) {
    for (int a = 0; a < 2; ++a) {
      double lo = cmdp.trans(sp, a, 0);
      for (int s = 1; s < n; ++s) lo = std::min(lo, cmdp.trans(sp, a, s));
      floor_u[static_cast<std::size_t>(sp)][static_cast<std::size_t>(a)] = lo;
    }
  }
  // Normalization (14c).
  {
    std::vector<std::pair<int, double>> terms;
    terms.reserve(static_cast<std::size_t>(2 * n));
    for (int j = 0; j < 2 * n; ++j) terms.push_back({j, 1.0});
    program.add_constraint(std::move(terms), lp::Relation::Eq, 1.0);
  }
  // Flow balance (14d): sum_a rho(s,a) - sum_{s',a} rho(s',a) f(s|s',a) = 0,
  // with f split as above.  One of these rows is linearly dependent given
  // (14c); the two-phase simplex handles the redundancy.
  for (int s = 0; s < n; ++s) {
    std::vector<std::pair<int, double>> terms;
    for (int a = 0; a < 2; ++a) {
      terms.push_back({2 * s + a, 1.0});
    }
    for (int sp = 0; sp < n; ++sp) {
      for (int a = 0; a < 2; ++a) {
        const double bump =
            cmdp.trans(sp, a, s) -
            floor_u[static_cast<std::size_t>(sp)][static_cast<std::size_t>(a)];
        if (bump > kDropTol) {
          // Merge with the diagonal term if sp == s.
          terms.push_back({2 * sp + a, -bump});
        }
      }
    }
    terms.push_back({z_var, -1.0});
    program.add_constraint(std::move(terms), lp::Relation::Eq, 0.0);
  }
  // Availability (14e).
  {
    std::vector<std::pair<int, double>> terms;
    for (int s = 0; s < n; ++s) {
      if (!cmdp.available(s)) continue;
      for (int a = 0; a < 2; ++a) terms.push_back({2 * s + a, 1.0});
    }
    program.add_constraint(std::move(terms), lp::Relation::GreaterEq,
                           cmdp.epsilon_a());
  }
  // Defining row of the floor aggregate z.
  {
    std::vector<std::pair<int, double>> terms;
    for (int sp = 0; sp < n; ++sp) {
      for (int a = 0; a < 2; ++a) {
        const double u =
            floor_u[static_cast<std::size_t>(sp)][static_cast<std::size_t>(a)];
        if (u > 0.0) terms.push_back({2 * sp + a, u});
      }
    }
    terms.push_back({z_var, -1.0});
    program.add_constraint(std::move(terms), lp::Relation::Eq, 0.0);
  }

  const lp::SimplexSolver solver(lp_options);
  // Starting basis: the caller's warm basis if given, else a policy crash
  // basis — the occupancy columns rho(s, 1) of the always-add policy (one
  // per state), the availability surplus, and a zero artificial parking the
  // one redundant flow row (flow + normalization rows are rank-deficient by
  // one).  If the crash turns out infeasible or singular the solver falls
  // back to a from-scratch phase 1 on its own.
  lp::SimplexBasis crash;
  if (warm == nullptr && !lp_options.dense_fallback) {
    crash.basic.reserve(static_cast<std::size_t>(n + 3));
    for (int s = 0; s < n; ++s) crash.basic.push_back(2 * s + 1);
    crash.basic.push_back(z_var);               // floor aggregate
    const int num_vars = 2 * n + 1;
    crash.basic.push_back(num_vars + 1);        // artificial, flow row of s=0
    crash.basic.push_back(num_vars + (n + 1));  // availability surplus
    warm = &crash;
  }
  const lp::LpSolution lp_solution =
      warm != nullptr ? solver.solve(program, *warm) : solver.solve(program);

  CmdpSolution out;
  out.status = lp_solution.status;
  out.lp_iterations = lp_solution.iterations;
  out.lp_eta_nnz = lp_solution.eta_nnz;
  out.basis = lp_solution.basis;
  out.warm_start = lp_solution.warm_start;
  if (lp_solution.status != lp::LpStatus::Optimal) return out;

  out.occupancy.assign(static_cast<std::size_t>(n), {0.0, 0.0});
  out.add_probability.assign(static_cast<std::size_t>(n), 0.0);
  for (int s = 0; s < n; ++s) {
    for (int a = 0; a < 2; ++a) {
      out.occupancy[static_cast<std::size_t>(s)][static_cast<std::size_t>(a)] =
          std::max(0.0, lp_solution.x[static_cast<std::size_t>(2 * s + a)]);
    }
  }
  out.average_cost = lp_solution.objective;
  for (int s = 0; s < n; ++s) {
    const auto& rho = out.occupancy[static_cast<std::size_t>(s)];
    if (cmdp.available(s)) out.availability += rho[0] + rho[1];
  }

  // Policy extraction (Algorithm 2, line 4).
  std::vector<bool> visited(static_cast<std::size_t>(n), false);
  for (int s = 0; s < n; ++s) {
    const auto& rho = out.occupancy[static_cast<std::size_t>(s)];
    const double total = rho[0] + rho[1];
    if (total > kRandomizedEps) {
      visited[static_cast<std::size_t>(s)] = true;
      out.add_probability[static_cast<std::size_t>(s)] = rho[1] / total;
    }
  }
  // Threshold decomposition over visited states (Thm. 2 structure).
  int beta2 = -1;  // largest s with pi(1|s) > 0
  int beta1 = -1;  // largest s with pi(1|s) ~= 1
  double kappa_mix = 0.0;
  for (int s = 0; s < n; ++s) {
    if (!visited[static_cast<std::size_t>(s)]) continue;
    const double p = out.add_probability[static_cast<std::size_t>(s)];
    if (p > kRandomizedEps) beta2 = std::max(beta2, s);
    if (p >= 1.0 - kRandomizedEps) beta1 = std::max(beta1, s);
    if (p > kRandomizedEps && p < 1.0 - kRandomizedEps) {
      ++out.num_randomized_states;
      kappa_mix = p;
    }
  }
  out.beta1 = beta1;
  out.beta2 = beta2;
  out.kappa = out.num_randomized_states > 0 ? kappa_mix : 1.0;
  // Fill unvisited states consistently with the threshold structure: add
  // below beta1 (or below beta2 with prob kappa), never above beta2.
  for (int s = 0; s < n; ++s) {
    if (visited[static_cast<std::size_t>(s)]) continue;
    double p = 0.0;
    if (beta1 >= 0 && s <= beta1) {
      p = 1.0;
    } else if (beta2 >= 0 && s <= beta2) {
      p = out.num_randomized_states > 0 ? out.kappa : 1.0;
    }
    out.add_probability[static_cast<std::size_t>(s)] = p;
  }
  return out;
}

}  // namespace tolerance::solvers
