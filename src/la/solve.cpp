#include "tolerance/la/solve.hpp"

#include <cmath>
#include <stdexcept>

namespace tolerance::la {

std::vector<double> gauss_solve(Matrix a, std::vector<double> b) {
  TOL_ENSURE(a.rows() == a.cols(), "gauss_solve requires a square matrix");
  TOL_ENSURE(a.rows() == b.size(), "gauss_solve dimension mismatch");
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  for (std::size_t i = 0; i < n; ++i) perm[i] = i;

  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    std::size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-13) {
      throw std::invalid_argument("gauss_solve: singular matrix");
    }
    if (pivot != col) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double inv_p = 1.0 / a(col, col);
    for (std::size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) * inv_p;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (std::size_t j = col + 1; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  std::vector<double> x(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

Matrix invert(const Matrix& a) {
  TOL_ENSURE(a.rows() == a.cols(), "invert requires a square matrix");
  const std::size_t n = a.rows();
  // Gauss-Jordan on [A | I].
  Matrix aug(n, 2 * n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) aug(i, j) = a(i, j);
    aug(i, n + i) = 1.0;
  }
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    double best = std::fabs(aug(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(aug(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-13) throw std::invalid_argument("invert: singular matrix");
    if (pivot != col) {
      for (std::size_t j = 0; j < 2 * n; ++j) std::swap(aug(col, j), aug(pivot, j));
    }
    const double inv_p = 1.0 / aug(col, col);
    for (std::size_t j = 0; j < 2 * n; ++j) aug(col, j) *= inv_p;
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const double factor = aug(r, col);
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < 2 * n; ++j) aug(r, j) -= factor * aug(col, j);
    }
  }
  Matrix inv(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) inv(i, j) = aug(i, n + j);
  }
  return inv;
}

Matrix cholesky(const Matrix& a) {
  TOL_ENSURE(a.rows() == a.cols(), "cholesky requires a square matrix");
  const std::size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          throw std::invalid_argument("cholesky: matrix not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b) {
  TOL_ENSURE(l.rows() == l.cols(), "cholesky_solve requires square factor");
  TOL_ENSURE(l.rows() == b.size(), "cholesky_solve dimension mismatch");
  const std::size_t n = l.rows();
  // Forward: L y = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l(i, k) * b[k];
    b[i] = s / l(i, i);
  }
  // Backward: L^T x = y.
  for (std::size_t i = n; i-- > 0;) {
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l(k, i) * b[k];
    b[i] = s / l(i, i);
  }
  return b;
}

}  // namespace tolerance::la
