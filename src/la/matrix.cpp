#include "tolerance/la/matrix.hpp"

#include <cmath>

namespace tolerance::la {

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::transpose() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) {
      t(j, i) = (*this)(i, j);
    }
  }
  return t;
}

bool Matrix::is_row_stochastic(double tol) const {
  for (std::size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < cols_; ++j) {
      const double v = (*this)(i, j);
      if (v < -tol || v > 1.0 + tol) return false;
      s += v;
    }
    if (std::fabs(s - 1.0) > tol) return false;
  }
  return true;
}

std::vector<double> matvec(const Matrix& m, const std::vector<double>& x) {
  TOL_ENSURE(m.cols() == x.size(), "matvec dimension mismatch");
  std::vector<double> y(m.rows(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row(i);
    double s = 0.0;
    for (std::size_t j = 0; j < m.cols(); ++j) s += r[j] * x[j];
    y[i] = s;
  }
  return y;
}

std::vector<double> vecmat(const std::vector<double>& x, const Matrix& m) {
  TOL_ENSURE(m.rows() == x.size(), "vecmat dimension mismatch");
  std::vector<double> y(m.cols(), 0.0);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    const double* r = m.row(i);
    const double xi = x[i];
    if (xi == 0.0) continue;
    for (std::size_t j = 0; j < m.cols(); ++j) y[j] += xi * r[j];
  }
  return y;
}

Matrix matmul(const Matrix& a, const Matrix& b) {
  TOL_ENSURE(a.cols() == b.rows(), "matmul dimension mismatch");
  Matrix c(a.rows(), b.cols(), 0.0);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      const double* brow = b.row(k);
      double* crow = c.row(i);
      for (std::size_t j = 0; j < b.cols(); ++j) crow[j] += aik * brow[j];
    }
  }
  return c;
}

double dot(const std::vector<double>& a, const std::vector<double>& b) {
  TOL_ENSURE(a.size() == b.size(), "dot dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

}  // namespace tolerance::la
