#include "tolerance/pomdp/node_model.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::pomdp {

NodeModel::NodeModel(NodeParams params) : params_(params) {
  TOL_ENSURE(params.p_attack >= 0.0 && params.p_attack <= 1.0,
             "pA must be a probability");
  TOL_ENSURE(params.p_crash_healthy >= 0.0 && params.p_crash_healthy <= 1.0,
             "pC1 must be a probability");
  TOL_ENSURE(
      params.p_crash_compromised >= 0.0 && params.p_crash_compromised <= 1.0,
      "pC2 must be a probability");
  TOL_ENSURE(params.p_update >= 0.0 && params.p_update <= 1.0,
             "pU must be a probability");
  TOL_ENSURE(params.eta >= 1.0, "eta must be >= 1 (eq. (5))");
}

double NodeModel::transition(NodeState s, NodeAction a, NodeState next) const {
  const double pa = params_.p_attack;
  const double pc1 = params_.p_crash_healthy;
  const double pc2 = params_.p_crash_compromised;
  const double pu = params_.p_update;
  switch (s) {
    case NodeState::Crashed:  // (2a): absorbing
      return next == NodeState::Crashed ? 1.0 : 0.0;
    case NodeState::Healthy:
      switch (next) {
        case NodeState::Crashed:  // (2b)
          return pc1;
        case NodeState::Healthy:  // (2d)-(2e)
          return (1.0 - pa) * (1.0 - pc1);
        case NodeState::Compromised:  // (2h)
          return (1.0 - pc1) * pa;
      }
      break;
    case NodeState::Compromised:
      switch (next) {
        case NodeState::Crashed:  // (2c)
          return pc2;
        case NodeState::Healthy:  // (2f)-(2g)
          return a == NodeAction::Recover ? (1.0 - pa) * (1.0 - pc2)
                                          : (1.0 - pc2) * pu;
        case NodeState::Compromised:  // (2i)-(2j)
          return a == NodeAction::Recover ? (1.0 - pc2) * pa
                                          : (1.0 - pc2) * (1.0 - pu);
      }
      break;
  }
  return 0.0;
}

la::Matrix NodeModel::transition_matrix(NodeAction a) const {
  la::Matrix m(3, 3, 0.0);
  const NodeState states[] = {NodeState::Healthy, NodeState::Compromised,
                              NodeState::Crashed};
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 3; ++j) {
      m(static_cast<std::size_t>(i), static_cast<std::size_t>(j)) =
          transition(states[i], a, states[j]);
    }
  }
  return m;
}

double NodeModel::crash_prob(NodeState s) const {
  switch (s) {
    case NodeState::Healthy:
      return params_.p_crash_healthy;
    case NodeState::Compromised:
      return params_.p_crash_compromised;
    case NodeState::Crashed:
      return 1.0;
  }
  return 0.0;
}

double NodeModel::conditional_transition(bool from_compromised, NodeAction a,
                                         bool to_compromised) const {
  const double pa = params_.p_attack;
  const double pu = params_.p_update;
  double to_c;
  if (!from_compromised) {
    // (2d)/(2h) conditioned on not crashing: H -> C with pA.
    to_c = pa;
  } else if (a == NodeAction::Recover) {
    // (2f)/(2i) conditioned on not crashing: recovery resets to healthy,
    // then the attacker may strike again within the same step.
    to_c = pa;
  } else {
    // (2g)/(2j) conditioned on not crashing: only a software update heals.
    to_c = 1.0 - pu;
  }
  return to_compromised ? to_c : 1.0 - to_c;
}

double NodeModel::cost(NodeState s, NodeAction a) const {
  if (s == NodeState::Crashed) return 0.0;
  const double sv = s == NodeState::Compromised ? 1.0 : 0.0;
  const double av = a == NodeAction::Recover ? 1.0 : 0.0;
  // Eq. (5): eta*s - a*eta*s + a.
  return params_.eta * sv - av * params_.eta * sv + av;
}

double NodeModel::expected_cost(double belief, NodeAction a) const {
  TOL_ENSURE(belief >= 0.0 && belief <= 1.0, "belief must be in [0,1]");
  return belief * cost(NodeState::Compromised, a) +
         (1.0 - belief) * cost(NodeState::Healthy, a);
}

}  // namespace tolerance::pomdp
