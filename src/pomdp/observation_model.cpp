#include "tolerance/pomdp/observation_model.hpp"

#include <limits>

#include "tolerance/util/ensure.hpp"

namespace tolerance::pomdp {

bool ObservationModel::all_positive() const {
  for (int o = 0; o < num_observations(); ++o) {
    if (prob(o, false) <= 0.0 || prob(o, true) <= 0.0) return false;
  }
  return true;
}

bool ObservationModel::is_tp2(double tol) const {
  // TP-2 for a 2-row channel == monotone likelihood ratio in o.
  double prev_ratio = -1.0;
  for (int o = 0; o < num_observations(); ++o) {
    const double h = prob(o, false);
    const double c = prob(o, true);
    if (h <= 0.0) {
      // Ratio jumps to +inf; remaining entries must keep it there.
      prev_ratio = std::numeric_limits<double>::infinity();
      continue;
    }
    const double ratio = c / h;
    if (ratio < prev_ratio - tol) return false;
    prev_ratio = std::max(prev_ratio, ratio);
  }
  return true;
}

double ObservationModel::kl(bool from_compromised, bool to_compromised) const {
  return stats::kl_divergence(pmf(from_compromised), pmf(to_compromised));
}

std::vector<double> ObservationModel::pmf(bool compromised) const {
  std::vector<double> p(static_cast<std::size_t>(num_observations()));
  for (int o = 0; o < num_observations(); ++o) {
    p[static_cast<std::size_t>(o)] = prob(o, compromised);
  }
  return p;
}

BetaBinObservationModel::BetaBinObservationModel(
    stats::BetaBinomial healthy, stats::BetaBinomial compromised)
    : healthy_(healthy), compromised_(compromised) {
  TOL_ENSURE(healthy.n() == compromised.n(),
             "observation supports must match");
}

BetaBinObservationModel BetaBinObservationModel::paper_default(int n) {
  return BetaBinObservationModel(stats::BetaBinomial(n, 0.7, 3.0),
                                 stats::BetaBinomial(n, 1.0, 0.7));
}

int BetaBinObservationModel::num_observations() const {
  return healthy_.n() + 1;
}

double BetaBinObservationModel::prob(int observation, bool compromised) const {
  return compromised ? compromised_.pmf(observation)
                     : healthy_.pmf(observation);
}

int BetaBinObservationModel::sample(bool compromised, Rng& rng) const {
  return compromised ? compromised_.sample(rng) : healthy_.sample(rng);
}

EmpiricalObservationModel::EmpiricalObservationModel(
    stats::EmpiricalPmf healthy, stats::EmpiricalPmf compromised)
    : healthy_(std::move(healthy)), compromised_(std::move(compromised)) {
  TOL_ENSURE(healthy_.support_size() == compromised_.support_size(),
             "observation supports must match");
}

EmpiricalObservationModel EmpiricalObservationModel::estimate(
    const std::vector<int>& healthy_samples,
    const std::vector<int>& compromised_samples, int support_size,
    double smoothing) {
  return EmpiricalObservationModel(
      stats::EmpiricalPmf::from_samples(healthy_samples, support_size,
                                        smoothing),
      stats::EmpiricalPmf::from_samples(compromised_samples, support_size,
                                        smoothing));
}

int EmpiricalObservationModel::num_observations() const {
  return healthy_.support_size();
}

double EmpiricalObservationModel::prob(int observation,
                                       bool compromised) const {
  return compromised ? compromised_.prob(observation)
                     : healthy_.prob(observation);
}

int EmpiricalObservationModel::sample(bool compromised, Rng& rng) const {
  return compromised ? compromised_.sample(rng) : healthy_.sample(rng);
}

}  // namespace tolerance::pomdp
