#include "tolerance/pomdp/assumptions.hpp"

namespace tolerance::pomdp {

std::vector<std::string> Theorem1Report::violations() const {
  std::vector<std::string> v;
  if (!a_probabilities_interior) v.push_back("A: parameters not in (0,1)");
  if (!b_attack_update_bounded) v.push_back("B: pA + pU > 1");
  if (!c_crash_gap) v.push_back("C: crash-probability gap too small");
  if (!d_observations_positive) v.push_back("D: Z has zero entries");
  if (!e_tp2) v.push_back("E: Z is not TP-2");
  return v;
}

Theorem1Report check_theorem1(const NodeModel& model,
                              const ObservationModel& obs) {
  const NodeParams& p = model.params();
  Theorem1Report r;
  auto interior = [](double x) { return x > 0.0 && x < 1.0; };
  r.a_probabilities_interior = interior(p.p_attack) && interior(p.p_update) &&
                               interior(p.p_crash_healthy) &&
                               interior(p.p_crash_compromised);
  r.b_attack_update_bounded = p.p_attack + p.p_update <= 1.0;
  // Assumption C:
  //   pC1 (pU - 1) / (pA (pC1 - 1) + pC1 (pU - 1)) <= pC2.
  const double numerator = p.p_crash_healthy * (p.p_update - 1.0);
  const double denominator = p.p_attack * (p.p_crash_healthy - 1.0) +
                             p.p_crash_healthy * (p.p_update - 1.0);
  r.c_crash_gap =
      denominator != 0.0 && numerator / denominator <= p.p_crash_compromised;
  r.d_observations_positive = obs.all_positive();
  r.e_tp2 = obs.is_tp2();
  return r;
}

std::vector<std::string> Theorem2Report::violations() const {
  std::vector<std::string> v;
  if (!b_full_support) v.push_back("B: kernel has zero entries");
  if (!c_monotone) v.push_back("C: kernel not FOSD-monotone in s");
  if (!d_tail_supermodular) v.push_back("D: tail sums not supermodular");
  return v;
}

Theorem2Report check_theorem2(const SystemCmdp& cmdp, double tol) {
  Theorem2Report r;
  const int n = cmdp.num_states();

  r.b_full_support = true;
  for (int a = 0; a <= 1 && r.b_full_support; ++a) {
    for (int s = 0; s < n && r.b_full_support; ++s) {
      for (int next = 0; next < n; ++next) {
        if (cmdp.trans(s, a, next) <= 0.0) {
          r.b_full_support = false;
          break;
        }
      }
    }
  }

  // Tail sums T(s, shat, a) = sum_{s' >= s} f(s' | shat, a).
  auto tail = [&](int s, int shat, int a) {
    double t = 0.0;
    for (int next = s; next < n; ++next) t += cmdp.trans(shat, a, next);
    return t;
  };

  // C: tail(s, shat+1, a) >= tail(s, shat, a) for all s, shat, a.
  r.c_monotone = true;
  for (int a = 0; a <= 1 && r.c_monotone; ++a) {
    for (int shat = 0; shat + 1 < n && r.c_monotone; ++shat) {
      for (int s = 0; s < n; ++s) {
        if (tail(s, shat + 1, a) + tol < tail(s, shat, a)) {
          r.c_monotone = false;
          break;
        }
      }
    }
  }

  // D (tail-sum supermodularity, [63, eq. 9.6]): for every tail start s the
  // advantage tail(s, shat, 1) - tail(s, shat, 0) is non-decreasing in shat.
  r.d_tail_supermodular = true;
  for (int s = 0; s < n && r.d_tail_supermodular; ++s) {
    double prev = tail(s, 0, 1) - tail(s, 0, 0);
    for (int shat = 1; shat < n; ++shat) {
      const double cur = tail(s, shat, 1) - tail(s, shat, 0);
      if (cur + tol < prev) {
        r.d_tail_supermodular = false;
        break;
      }
      prev = cur;
    }
  }
  return r;
}

}  // namespace tolerance::pomdp
