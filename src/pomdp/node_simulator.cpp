#include "tolerance/pomdp/node_simulator.hpp"

#include "tolerance/util/ensure.hpp"
#include "tolerance/util/parallel.hpp"

namespace tolerance::pomdp {
namespace {

NodeState sample_transition(const NodeModel& m, NodeState s, NodeAction a,
                            Rng& rng) {
  const double to_crash = m.transition(s, a, NodeState::Crashed);
  const double to_healthy = m.transition(s, a, NodeState::Healthy);
  const double u = rng.uniform();
  if (u < to_crash) return NodeState::Crashed;
  if (u < to_crash + to_healthy) return NodeState::Healthy;
  return NodeState::Compromised;
}

}  // namespace

NodeRunStats NodeSimulator::run(const NodePolicy& policy, int horizon,
                                Rng& rng) const {
  TOL_ENSURE(horizon > 0, "horizon must be positive");
  NodeRunStats stats;
  stats.steps = horizon;

  const double p_attack = model_.params().p_attack;
  // Initial distribution b_1 = pA (Prob. 1, eq. (6a)).
  NodeState state = rng.bernoulli(p_attack) ? NodeState::Compromised
                                            : NodeState::Healthy;
  double belief = p_attack;
  // Time at which the current (undetected) compromise started; -1 if none.
  int compromise_start = state == NodeState::Compromised ? 0 : -1;
  double total_cost = 0.0;
  double total_ttr = 0.0;
  int healthy_steps = 0;

  for (int t = 0; t < horizon; ++t) {
    if (state == NodeState::Healthy) ++healthy_steps;
    const NodeAction action = policy(belief, t + 1);
    total_cost += model_.cost(state, action);

    if (action == NodeAction::Recover) {
      ++stats.num_recoveries;
      if (compromise_start >= 0) {
        total_ttr += t - compromise_start;
        ++stats.num_compromises;
        compromise_start = -1;
      }
    }

    const NodeState prev = state;
    state = sample_transition(model_, prev, action, rng);

    if (state == NodeState::Crashed) {
      ++stats.num_crashes;
      // An unrecovered compromise ends with the crash; the time until the
      // crash counts as time-to-recovery (the node is gone afterwards).
      if (compromise_start >= 0) {
        total_ttr += (t + 1) - compromise_start;
        ++stats.num_compromises;
        compromise_start = -1;
      }
      // Replacement node, fresh initial distribution.
      state = rng.bernoulli(p_attack) ? NodeState::Compromised
                                      : NodeState::Healthy;
      belief = p_attack;
      if (state == NodeState::Compromised) compromise_start = t + 1;
      continue;
    }

    if (prev != NodeState::Compromised && state == NodeState::Compromised &&
        compromise_start < 0) {
      compromise_start = t + 1;
    }
    if (state == NodeState::Healthy && compromise_start >= 0) {
      // Healed without an explicit recovery (software update (2g)); the
      // compromise episode ends here.
      total_ttr += (t + 1) - compromise_start;
      ++stats.num_compromises;
      compromise_start = -1;
    }

    const int observation = obs_->sample(state == NodeState::Compromised, rng);
    belief = updater_.update(belief, action, observation);
  }

  // Open compromise at the horizon: count the full remaining time, so a
  // policy that never recovers reports T(R) ~= horizon.
  if (compromise_start >= 0) {
    total_ttr += horizon - compromise_start;
    ++stats.num_compromises;
  }

  stats.avg_cost = total_cost / horizon;
  stats.recovery_frequency =
      static_cast<double>(stats.num_recoveries) / horizon;
  stats.avg_time_to_recovery =
      stats.num_compromises > 0
          ? total_ttr / stats.num_compromises
          : 0.0;
  stats.availability = static_cast<double>(healthy_steps) / horizon;
  return stats;
}

NodeRunStats NodeRunStats::reduce(const std::vector<NodeRunStats>& per_episode) {
  NodeRunStats agg;
  for (const NodeRunStats& s : per_episode) {
    agg.avg_cost += s.avg_cost;
    agg.avg_time_to_recovery += s.avg_time_to_recovery;
    agg.recovery_frequency += s.recovery_frequency;
    agg.availability += s.availability;
    agg.num_compromises += s.num_compromises;
    agg.num_recoveries += s.num_recoveries;
    agg.num_crashes += s.num_crashes;
    agg.steps += s.steps;
  }
  if (per_episode.empty()) return agg;
  const auto n = static_cast<double>(per_episode.size());
  agg.avg_cost /= n;
  agg.avg_time_to_recovery /= n;
  agg.recovery_frequency /= n;
  agg.availability /= n;
  return agg;
}

NodeRunStats NodeSimulator::run_many(const NodePolicy& policy, int horizon,
                                     int episodes, Rng& rng,
                                     int threads) const {
  TOL_ENSURE(episodes > 0, "episodes must be positive");
  // Advance the caller's stream exactly once regardless of episode count or
  // thread count, then derive one independent child stream per episode.
  const std::uint64_t base = rng.engine()();
  std::vector<NodeRunStats> per_episode(static_cast<std::size_t>(episodes));
  const util::ParallelRunner runner(threads);
  runner.for_each(episodes, [&](std::int64_t e) {
    Rng child = Rng::stream(base, static_cast<std::uint64_t>(e));
    per_episode[static_cast<std::size_t>(e)] = run(policy, horizon, child);
  });
  return NodeRunStats::reduce(per_episode);
}

}  // namespace tolerance::pomdp
