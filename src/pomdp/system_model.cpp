#include "tolerance/pomdp/system_model.hpp"

#include <algorithm>
#include <vector>

#include "tolerance/stats/distributions.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::pomdp {
namespace {

void normalize_row(la::Matrix& m, std::size_t row) {
  double total = 0.0;
  for (std::size_t j = 0; j < m.cols(); ++j) total += m(row, j);
  TOL_ENSURE(total > 0.0, "kernel row must have positive mass");
  for (std::size_t j = 0; j < m.cols(); ++j) m(row, j) /= total;
}

}  // namespace

SystemCmdp::SystemCmdp(int smax, int f, double epsilon_a,
                       la::Matrix kernel_wait, la::Matrix kernel_add)
    : smax_(smax), f_(f), epsilon_a_(epsilon_a) {
  TOL_ENSURE(smax >= 1, "smax must be >= 1");
  TOL_ENSURE(f >= 0 && f < smax, "need 0 <= f < smax");
  TOL_ENSURE(epsilon_a >= 0.0 && epsilon_a <= 1.0,
             "epsilon_A must be in [0,1]");
  const auto n = static_cast<std::size_t>(smax + 1);
  TOL_ENSURE(kernel_wait.rows() == n && kernel_wait.cols() == n,
             "kernel_wait has wrong shape");
  TOL_ENSURE(kernel_add.rows() == n && kernel_add.cols() == n,
             "kernel_add has wrong shape");
  TOL_ENSURE(kernel_wait.is_row_stochastic(1e-7),
             "kernel_wait must be row-stochastic");
  TOL_ENSURE(kernel_add.is_row_stochastic(1e-7),
             "kernel_add must be row-stochastic");
  kernel_[0] = std::move(kernel_wait);
  kernel_[1] = std::move(kernel_add);
}

SystemCmdp SystemCmdp::parametric(int smax, int f, double epsilon_a,
                                  double q_healthy, double q_recover,
                                  double mix) {
  TOL_ENSURE(q_healthy >= 0.0 && q_healthy <= 1.0, "q_healthy in [0,1]");
  TOL_ENSURE(q_recover >= 0.0 && q_recover <= 1.0, "q_recover in [0,1]");
  TOL_ENSURE(mix >= 0.0 && mix < 1.0, "mix in [0,1)");
  const int n = smax + 1;
  la::Matrix k0(static_cast<std::size_t>(n), static_cast<std::size_t>(n), 0.0);
  la::Matrix k1 = k0;
  for (int s = 0; s <= smax; ++s) {
    const stats::BinomialDist survive(s, q_healthy);
    const stats::BinomialDist recover(smax - s, q_recover);
    const auto ps = survive.pmf_vector();
    const auto pr = recover.pmf_vector();
    for (int a = 0; a <= 1; ++a) {
      la::Matrix& k = a == 0 ? k0 : k1;
      for (int i = 0; i <= s; ++i) {
        for (int j = 0; j <= smax - s; ++j) {
          const int next = std::min(smax, i + j + a);
          k(static_cast<std::size_t>(s), static_cast<std::size_t>(next)) +=
              ps[static_cast<std::size_t>(i)] * pr[static_cast<std::size_t>(j)];
        }
      }
      if (mix > 0.0) {
        for (int next = 0; next <= smax; ++next) {
          auto& cell =
              k(static_cast<std::size_t>(s), static_cast<std::size_t>(next));
          cell = (1.0 - mix) * cell + mix / n;
        }
      }
      normalize_row(k, static_cast<std::size_t>(s));
    }
  }
  return SystemCmdp(smax, f, epsilon_a, std::move(k0), std::move(k1));
}

SystemCmdp SystemCmdp::estimate_from_node_simulation(
    int smax, int f, double epsilon_a, const NodeModel& model,
    const ObservationModel& obs, const NodePolicy& policy, int episodes,
    int horizon, Rng& rng, double smoothing) {
  TOL_ENSURE(episodes > 0 && horizon > 1, "need at least one transition");
  const int n = smax + 1;
  la::Matrix counts(static_cast<std::size_t>(n), static_cast<std::size_t>(n),
                    smoothing);

  const BeliefUpdater updater(model, obs);
  const double p_attack = model.params().p_attack;

  for (int e = 0; e < episodes; ++e) {
    // Population of smax nodes evolving under the local-level policy.
    std::vector<NodeState> state(static_cast<std::size_t>(smax));
    std::vector<double> belief(static_cast<std::size_t>(smax), p_attack);
    for (auto& s : state) {
      s = rng.bernoulli(p_attack) ? NodeState::Compromised
                                  : NodeState::Healthy;
    }
    auto healthy_count = [&]() {
      int c = 0;
      for (const auto& s : state) c += s == NodeState::Healthy ? 1 : 0;
      return c;
    };
    int prev = healthy_count();
    for (int t = 0; t < horizon; ++t) {
      for (int i = 0; i < smax; ++i) {
        const auto idx = static_cast<std::size_t>(i);
        const NodeAction a = policy(belief[idx], t + 1);
        // Sample next state.
        const double to_crash = model.transition(state[idx], a, NodeState::Crashed);
        const double to_h = model.transition(state[idx], a, NodeState::Healthy);
        const double u = rng.uniform();
        if (u < to_crash) {
          // Replacement node (the global level keeps the pool full here;
          // the action effect is modeled by the +a shift below).
          state[idx] = rng.bernoulli(p_attack) ? NodeState::Compromised
                                               : NodeState::Healthy;
          belief[idx] = p_attack;
          continue;
        }
        state[idx] =
            u < to_crash + to_h ? NodeState::Healthy : NodeState::Compromised;
        const int o = obs.sample(state[idx] == NodeState::Compromised, rng);
        belief[idx] = updater.update(belief[idx], a, o);
      }
      const int cur = healthy_count();
      counts(static_cast<std::size_t>(prev), static_cast<std::size_t>(cur)) +=
          1.0;
      prev = cur;
    }
  }

  la::Matrix k0(static_cast<std::size_t>(n), static_cast<std::size_t>(n), 0.0);
  la::Matrix k1 = k0;
  for (int s = 0; s <= smax; ++s) {
    double total = 0.0;
    for (int j = 0; j <= smax; ++j) {
      total += counts(static_cast<std::size_t>(s), static_cast<std::size_t>(j));
    }
    for (int j = 0; j <= smax; ++j) {
      const double p =
          counts(static_cast<std::size_t>(s), static_cast<std::size_t>(j)) /
          total;
      k0(static_cast<std::size_t>(s), static_cast<std::size_t>(j)) = p;
      // a = 1 shifts the outcome by one added node, clamped at smax.
      const int shifted = std::min(smax, j + 1);
      k1(static_cast<std::size_t>(s), static_cast<std::size_t>(shifted)) += p;
    }
  }
  return SystemCmdp(smax, f, epsilon_a, std::move(k0), std::move(k1));
}

double SystemCmdp::trans(int s, int a, int next) const {
  TOL_ENSURE(s >= 0 && s <= smax_, "state out of range");
  TOL_ENSURE(next >= 0 && next <= smax_, "next state out of range");
  TOL_ENSURE(a == 0 || a == 1, "action must be 0 or 1");
  return kernel_[a](static_cast<std::size_t>(s), static_cast<std::size_t>(next));
}

const la::Matrix& SystemCmdp::kernel(int a) const {
  TOL_ENSURE(a == 0 || a == 1, "action must be 0 or 1");
  return kernel_[a];
}

int SystemCmdp::step(int s, int a, Rng& rng) const {
  TOL_ENSURE(s >= 0 && s <= smax_, "state out of range");
  TOL_ENSURE(a == 0 || a == 1, "action must be 0 or 1");
  double u = rng.uniform();
  const la::Matrix& k = kernel_[a];
  for (int j = 0; j < smax_; ++j) {
    u -= k(static_cast<std::size_t>(s), static_cast<std::size_t>(j));
    if (u < 0.0) return j;
  }
  return smax_;
}

}  // namespace tolerance::pomdp
