#include "tolerance/pomdp/belief.hpp"

#include <algorithm>

#include "tolerance/util/ensure.hpp"

namespace tolerance::pomdp {

double BeliefUpdater::predict(double belief, NodeAction a) const {
  TOL_ENSURE(belief >= 0.0 && belief <= 1.0, "belief must be in [0,1]");
  const double from_c = model_->conditional_transition(true, a, true);
  const double from_h = model_->conditional_transition(false, a, true);
  return belief * from_c + (1.0 - belief) * from_h;
}

double BeliefUpdater::update(double belief, NodeAction a,
                             int observation) const {
  const double m_c = predict(belief, a);
  const double m_h = 1.0 - m_c;
  const double z_c = obs_->prob(observation, true);
  const double z_h = obs_->prob(observation, false);
  const double denom = z_c * m_c + z_h * m_h;
  if (denom <= 0.0) {
    // Observation impossible under the model (assumption D violated); keep
    // the prediction rather than dividing by zero.
    return std::clamp(m_c, 0.0, 1.0);
  }
  return std::clamp(z_c * m_c / denom, 0.0, 1.0);
}

}  // namespace tolerance::pomdp
