#include "tolerance/consensus/admission.hpp"

#include <cmath>

namespace tolerance::consensus {
namespace {

double clip01(double v) { return std::clamp(v, 0.0, 1.0); }

}  // namespace

const char* to_string(AdmissionMode mode) {
  switch (mode) {
    case AdmissionMode::kNormal:
      return "normal";
    case AdmissionMode::kSoft:
      return "soft";
    case AdmissionMode::kHard:
      return "hard";
  }
  return "?";
}

AdmissionController::AdmissionController(const AdmissionConfig& config)
    : config_(config) {}

void AdmissionController::observe_request(bool retry) {
  ++window_requests_;
  if (retry) ++window_retries_;
}

void AdmissionController::update(double now, double queue_depth,
                                 double oldest_wait_seconds) {
  const double queue_norm =
      clip01(queue_depth / std::max(config_.queue_capacity, 1.0));
  const double lat_norm =
      clip01(oldest_wait_seconds / std::max(config_.latency_ref, 1e-9));
  const double err_norm =
      window_requests_ == 0
          ? 0.0
          : clip01(static_cast<double>(window_retries_) /
                   static_cast<double>(window_requests_));
  window_requests_ = 0;
  window_retries_ = 0;

  const double raw = clip01(config_.w_queue * queue_norm +
                            config_.w_latency * lat_norm +
                            config_.w_error * err_norm);
  if (!seeded_) {
    pressure_ = raw;
    seeded_ = true;
  } else if (raw >= pressure_) {
    // Attack: per-observation EWMA so a spike closes the valve fast.
    const double a = std::clamp(config_.ewma_alpha, 0.0, 1.0);
    pressure_ = a * raw + (1.0 - a) * pressure_;
  } else {
    // Release: exponential decay toward the sample on the CLOCK, so the
    // momentary queue troughs of a saturated replica (drain, serve, refill)
    // cannot reopen the valve between bursts.  dt ~ 0 for back-to-back
    // arrivals in one burst, so a burst of low samples decays nothing.
    const double dt = std::max(0.0, now - last_update_);
    const double tau = std::max(config_.release_tau, 1e-9);
    const double k = 1.0 - std::exp(-dt / tau);
    pressure_ += k * (raw - pressure_);
  }
  last_update_ = now;

  // One mode level per update: escalation NORMAL -> HARD is allowed in one
  // step (a 100x spike must clamp immediately) but recovery always steps
  // down through SOFT, so a brief dip below hard_exit cannot reopen the
  // valve all the way at once.
  switch (mode_) {
    case AdmissionMode::kNormal:
      if (pressure_ >= config_.hard_enter) {
        enter(AdmissionMode::kHard, now);
      } else if (pressure_ >= config_.soft_enter) {
        enter(AdmissionMode::kSoft, now);
      }
      break;
    case AdmissionMode::kSoft:
      if (pressure_ >= config_.hard_enter) {
        enter(AdmissionMode::kHard, now);
      } else if (pressure_ < config_.soft_exit) {
        enter(AdmissionMode::kNormal, now);
      }
      break;
    case AdmissionMode::kHard:
      if (pressure_ < config_.hard_exit) {
        enter(AdmissionMode::kSoft, now);
      }
      break;
  }
}

bool AdmissionController::try_admit(double now) {
  if (mode_ == AdmissionMode::kNormal) {
    ++admitted_;
    return true;
  }
  refill(now);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    ++admitted_;
    return true;
  }
  ++rejected_;
  return false;
}

std::uint64_t AdmissionController::retry_after_ms() const {
  switch (mode_) {
    case AdmissionMode::kNormal:
      return 0;
    case AdmissionMode::kSoft:
      return config_.retry_after_soft_ms;
    case AdmissionMode::kHard:
      return config_.retry_after_hard_ms;
  }
  return 0;
}

void AdmissionController::enter(AdmissionMode next, double now) {
  if (next == mode_) return;
  const bool closing = mode_ == AdmissionMode::kNormal;
  mode_ = next;
  ++mode_changes_;
  // Closing the valve (NORMAL -> SOFT/HARD) starts with the full burst so
  // the very request that tripped the threshold is not rejected.  Moving
  // between SOFT and HARD carries the current balance, clamped to the new
  // burst: granting a fresh burst on every transition would let pressure
  // flapping around a band edge mint tokens far beyond either budget's
  // rate — stepping HARD -> SOFT widens the trickle through the higher
  // refill rate alone.
  tokens_ = closing ? burst() : std::min(tokens_, burst());
  last_refill_ = now;
}

void AdmissionController::refill(double now) {
  const double elapsed = now - last_refill_;
  if (elapsed <= 0.0) return;
  tokens_ = std::min(burst(), tokens_ + elapsed * rate());
  last_refill_ = now;
}

double AdmissionController::rate() const {
  return mode_ == AdmissionMode::kHard ? config_.hard_rate
                                       : config_.soft_rate;
}

double AdmissionController::burst() const {
  return mode_ == AdmissionMode::kHard ? config_.hard_burst
                                       : config_.soft_burst;
}

}  // namespace tolerance::consensus
