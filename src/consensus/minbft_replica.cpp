#include "tolerance/consensus/minbft_replica.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {


namespace {

/// Cap on the verified-request digest cache; cleared wholesale (determinism
/// beats LRU bookkeeping at this scale) when exceeded.
constexpr std::size_t kVerifiedRequestCap = 8192;
/// Cap on the valve's rejected-request memory (err* retry detection); same
/// clear-wholesale policy — a brief signal loss, not a correctness issue.
constexpr std::size_t kRejectedKeyCap = 16384;
/// View-change timeout multiplier while this replica's own valve is closed
/// (SOFT/HARD).  Admission decisions are per-replica, so under overload a
/// follower may admit a request the leader shed — "my admitted request is
/// not executing" is then evidence of load, not of a faulty leader, and a
/// failover (the most expensive thing a saturated cluster can do) would
/// make the overload strictly worse.  The timer stretches rather than
/// disarms: a genuinely dead leader is still denounced, just patiently.
constexpr double kOverloadViewChangeStretch = 8.0;

}  // namespace

// ---------------------------------------------------------------------------
// ReplicatedService
// ---------------------------------------------------------------------------

std::string ReplicatedService::execute(const std::string& operation) {
  log_.push_back(operation);
  // Chained digest: digest' = H(digest || op).
  crypto::Sha256 h;
  h.update(reinterpret_cast<const std::uint8_t*>(digest_.data()),
           digest_.size());
  h.update(operation);
  digest_ = h.finalize();
  // Result of the paper's web service: reads return state size, writes ack.
  std::ostringstream os;
  os << "ok:" << log_.size();
  return os.str();
}

void ReplicatedService::install(std::vector<std::string> log,
                                crypto::Digest digest) {
  log_ = std::move(log);
  digest_ = digest;
}

crypto::Digest ReplicatedService::chain_digest(
    const std::vector<std::string>& log) {
  crypto::Digest digest{};
  for (const std::string& operation : log) {
    crypto::Sha256 h;
    h.update(reinterpret_cast<const std::uint8_t*>(digest.data()),
             digest.size());
    h.update(operation);
    digest = h.finalize();
  }
  return digest;
}

// ---------------------------------------------------------------------------
// MinBftReplica
// ---------------------------------------------------------------------------

MinBftReplica::MinBftReplica(ReplicaId id, std::vector<ReplicaId> membership,
                             MinBftConfig config, MinBftTransport& net,
                             std::shared_ptr<crypto::KeyRegistry> registry,
                             std::uint64_t key_seed, std::uint64_t usig_epoch)
    : id_(id), membership_(std::move(membership)), config_(config), net_(&net),
      registry_(std::move(registry)),
      signer_(id, registry_->register_principal(id, key_seed)),
      usig_(id, registry_->register_principal(id + crypto::kUsigPrincipalOffset,
                                              key_seed ^ 0x5a5au),
            usig_epoch),
      admission_(config.admission), st_rng_(key_seed ^ 0x57a7eull),
      usig_cache_(config.usig_cache_capacity) {
  TOL_ENSURE(!membership_.empty(), "membership must be non-empty");
  TOL_ENSURE(config_.batch_size >= 1, "batch_size must be >= 1");
  TOL_ENSURE(config_.pipeline_depth >= 1, "pipeline_depth must be >= 1");
  std::sort(membership_.begin(), membership_.end());
  TOL_ENSURE(std::find(membership_.begin(), membership_.end(), id_) !=
                 membership_.end(),
             "replica must be part of the membership");
  // A bumped USIG epoch marks a recovery restart: volatile state (including
  // every vote this replica ever cast) is gone, so start passive until a
  // state transfer rebuilds a committed prefix to stand on (opt-in; see
  // MinBftConfig::passive_recovery).
  recovering_ = config_.passive_recovery && usig_epoch > 0;
}

MinBftReplica::~MinBftReplica() {
  disarm_view_change_timer();
  disarm_batch_timer();
  disarm_state_transfer_timer();
}

ReplicaId MinBftReplica::current_leader() const {
  return membership_[static_cast<std::size_t>(view_ % membership_.size())];
}

void MinBftReplica::broadcast(const MinBftMsg& msg) {
  if (config_.cpu_cost_per_send > 0.0 && membership_.size() > 1) {
    if (config_.mac_flush_window <= 0.0) {
      net_->consume_cpu(id_, config_.cpu_cost_per_send *
                                 static_cast<double>(membership_.size() - 1));
    } else {
      // Authenticator batching (sim-lane model): one MAC covers every
      // message flushed to a destination within the window, so the
      // per-send cost is charged per destination at most once per window.
      const double now = net_->now();
      int charged = 0;
      for (const ReplicaId peer : membership_) {
        if (peer == id_) continue;
        const auto it = last_mac_charge_.find(peer);
        if (it == last_mac_charge_.end() ||
            now - it->second >= config_.mac_flush_window) {
          last_mac_charge_[peer] = now;
          ++charged;
        }
      }
      if (charged > 0) {
        net_->consume_cpu(id_, config_.cpu_cost_per_send *
                                   static_cast<double>(charged));
      }
    }
  }
  net_->broadcast(id_, membership_, msg);
}

bool MinBftReplica::verify_request(const Request& req) {
  // The signature must be the claimed client's own — any registered
  // principal can produce *a* valid tag, but only over its own identity.
  if (req.signature.signer != req.client) return false;
  const crypto::Digest d = req.digest();
  if (verified_requests_.count(d) > 0) return true;  // cached verdict
  net_->consume_cpu(id_, config_.crypto_cost_verify);
  if (!registry_->verify(req.payload(), req.signature)) return false;
  if (verified_requests_.size() >= kVerifiedRequestCap) {
    verified_requests_.clear();
  }
  verified_requests_.insert(d);
  return true;
}

bool MinBftReplica::verify_ui(const crypto::Digest& digest,
                              const crypto::UniqueIdentifier& ui) {
  if (const auto cached = usig_cache_.lookup(ui, digest)) return *cached;
  net_->consume_cpu(id_, config_.crypto_cost_verify);
  const bool ok = crypto::Usig::verify(*registry_, digest, ui);
  usig_cache_.insert(ui, digest, ok);
  return ok;
}

bool MinBftReplica::is_member(ReplicaId replica) const {
  return std::find(membership_.begin(), membership_.end(), replica) !=
         membership_.end();
}

bool MinBftReplica::accept_counter(const crypto::UniqueIdentifier& ui) {
  auto& last = last_counter_[ui.replica];
  const auto incoming = std::make_pair(ui.epoch, ui.counter);
  if (incoming <= last) return false;
  last = incoming;
  return true;
}

void MinBftReplica::on_message(net::NodeId from, const MinBftMsg& msg) {
  if (mode_ == ByzantineMode::Silent) return;  // behaviour (b) of §VIII-A
  // A recovering replica is PASSIVE until its first state install: a restart
  // wiped the votes it cast before crashing, so letting it vote again (or
  // contribute an empty prepared-set to a view change) would let a commit
  // quorum it belonged to be contradicted — a fork, observed as divergent
  // committed logs among live replicas.  With it passive, a view change
  // needs every non-crashed replica's proof, and any commit quorum contains
  // at least one of those.  It still processes checkpoints (to learn the
  // stable boundary and trigger/retarget its transfer) and state responses
  // (to finish recovering); everything else is dropped on the floor.
  if (recovering_) {
    std::visit(
        [&](const auto& m) {
          using T = std::decay_t<decltype(m)>;
          if constexpr (std::is_same_v<T, Checkpoint>) {
            handle_checkpoint(m);
          } else if constexpr (std::is_same_v<T, StateResponse>) {
            handle_state_response(m);
          }
        },
        msg);
    publish_progress();
    return;
  }
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, Request>) {
          handle_request(m);
        } else if constexpr (std::is_same_v<T, Prepare>) {
          handle_prepare(m);
        } else if constexpr (std::is_same_v<T, Commit>) {
          handle_commit(m);
        } else if constexpr (std::is_same_v<T, Checkpoint>) {
          handle_checkpoint(m);
        } else if constexpr (std::is_same_v<T, ReqViewChange>) {
          handle_req_view_change(m);
        } else if constexpr (std::is_same_v<T, ViewChange>) {
          handle_view_change(m);
        } else if constexpr (std::is_same_v<T, NewView>) {
          handle_new_view(m);
        } else if constexpr (std::is_same_v<T, StateRequest>) {
          handle_state_request(from, m);
        } else if constexpr (std::is_same_v<T, StateResponse>) {
          handle_state_response(m);
        } else if constexpr (std::is_same_v<T, FetchPrepare>) {
          handle_fetch_prepare(m);
        } else if constexpr (std::is_same_v<T, RelayedPrepare>) {
          handle_prepare(m.prepare, /*relayed=*/true);
        } else {
          static_assert(std::is_same_v<T, Reply> ||
                            std::is_same_v<T, Overloaded>,
                        "unhandled message type");
          // Replies and Overloaded rejections are client-side; replicas
          // ignore them.
        }
      },
      msg);
  // Any message may have freed pipeline room (commits executing a batch, a
  // checkpoint advancing the watermark) — flush pending requests.
  try_seal_batches();
  // If execution is now parked on a self-voted entry short of quorum, start
  // the repair clock (idempotent while armed).
  maybe_arm_commit_repair();
  // Every protocol mutation flows through here (timers re-enter via their
  // own broadcasts), so one epilogue publish keeps the watchdog current.
  publish_progress();
}

void MinBftReplica::handle_request(const Request& req) {
  if (executed_requests_.count({req.client, req.request_id}) > 0) {
    // Already applied: the client must have lost our reply (or is probing
    // after a speculative stall) — answer from the cache with the CURRENT
    // status, so a request that has since committed earns a final reply.
    const auto it = reply_cache_.find(req.client);
    if (it != reply_cache_.end() && it->second.request_id == req.request_id &&
        verify_request(req)) {
      CachedReply& cached = it->second;
      const bool spec_now = !cached.committed;
      if (cached.reply.speculative != spec_now) {
        // The entry committed since the tentative reply went out: re-sign
        // once with the FINAL flag and keep the fresh signature cached.
        cached.reply.speculative = spec_now;
        net_->consume_cpu(id_, reply_cost());
        cached.reply.signature = signer_.sign(cached.reply.payload());
      }
      net_->send(id_, req.client, MinBftMsg{cached.reply});
    }
    return;
  }
  // The admission valve sits before the signature check on purpose: under a
  // 10-100x spike the whole point is to shed load *cheaper* than serving it,
  // and the per-request verify cost is the bulk of the serving cost.  The
  // executed-duplicate path above stays in front of the valve, so a client
  // that only lost a reply is never told to back off.
  if (admit_request(req) != AdmissionOutcome::kAdmit) return;
  if (!verify_request(req)) return;
  if (is_leader() && !in_view_change_) {
    enqueue_request(req);
  } else {
    // Follower: watch for progress; if the request is not executed within
    // Tvc the leader is suspected (Fig. 17b).
    arm_view_change_timer();
  }
}

// ---------------------------------------------------------------------------
// Admission control: the service-boundary feedback loop
// ---------------------------------------------------------------------------

double MinBftReplica::queue_signal() const {
  std::size_t in_flight = 0;
  for (auto it = log_.upper_bound(last_executed_); it != log_.end(); ++it) {
    in_flight += it->second.prepare.requests.size();
  }
  return static_cast<double>(pending_requests_.size() + in_flight +
                             net_->queue_depth(id_));
}

MinBftReplica::AdmissionOutcome MinBftReplica::admit_request(
    const Request& req) {
  if (!config_.admission.enabled) return AdmissionOutcome::kAdmit;
  const double now = net_->now();
  // A retransmission is the client-side timeout made visible — the err*
  // component of the pressure metric.  Two distinguishable cases: the
  // request is carried here (backlogged or in flight), or it was rejected
  // earlier and the client is probing again.  Both are retries for err*,
  // but only a carried request is dropped silently — a previously rejected
  // one must either win a token now or draw a fresh rejection, or the
  // client's backoff loop would starve waiting for a quorum that never
  // re-forms.
  const auto key = std::make_pair(req.client, req.request_id);
  bool carried = pending_keys_.count(key) > 0;
  for (auto it = log_.upper_bound(last_executed_);
       !carried && it != log_.end(); ++it) {
    for (const Request& r : it->second.prepare.requests) {
      if (r.client == req.client && r.request_id == req.request_id) {
        carried = true;
        break;
      }
    }
  }
  const bool retry = carried || rejected_keys_.count(key) > 0;
  admission_.observe_request(retry);
  const double oldest_wait =
      pending_requests_.empty() ? 0.0 : now - backlog_since_;
  admission_.update(now, queue_signal(), oldest_wait);
  if (carried) return AdmissionOutcome::kDuplicate;
  if (admission_.try_admit(now)) {
    rejected_keys_.erase(key);
    return AdmissionOutcome::kAdmit;
  }
  if (rejected_keys_.size() >= kRejectedKeyCap) rejected_keys_.clear();
  rejected_keys_.insert(key);
  send_overloaded(req);
  return AdmissionOutcome::kReject;
}

void MinBftReplica::send_overloaded(const Request& req) {
  Overloaded ov;
  ov.replica = id_;
  ov.client = req.client;
  ov.request_id = req.request_id;
  ov.retry_after_ms = admission_.retry_after_ms();
  ov.mode = static_cast<std::uint8_t>(admission_.mode());
  // Rejections are authenticated (clients only count signed Overloaded
  // messages toward their f+1 backoff quorum, so a spoofed rejection is
  // discarded at verification) but priced at the session-MAC constant, far
  // below a full reply even under a heavyweight signature cost model: a
  // valve whose rejections cost as much as serving would melt under the
  // very storm it exists to shed.
  net_->consume_cpu(id_, crypto::KeyRegistry::kVerifyCost);
  ov.signature = signer_.sign(ov.payload());
  net_->send(id_, req.client, MinBftMsg{ov});
}

// ---------------------------------------------------------------------------
// Batching: accumulate, seal, pipeline
// ---------------------------------------------------------------------------

void MinBftReplica::enqueue_request(const Request& req) {
  const auto key = std::make_pair(req.client, req.request_id);
  if (pending_keys_.count(key) > 0) return;
  // Deduplicate against batches already in flight (executed ones are caught
  // by the executed_requests_ check upstream).
  for (auto it = log_.upper_bound(last_executed_); it != log_.end(); ++it) {
    for (const Request& r : it->second.prepare.requests) {
      if (r.client == req.client && r.request_id == req.request_id) return;
    }
  }
  if (pending_requests_.empty()) backlog_since_ = net_->now();
  pending_requests_.push_back(req);
  pending_keys_.insert(key);
}

SeqNum MinBftReplica::in_flight_batches() const {
  return highest_assigned_ > last_executed_
             ? highest_assigned_ - last_executed_
             : 0;
}

void MinBftReplica::try_seal_batches() {
  if (!is_leader() || in_view_change_) return;
  while (true) {
    bool sealed = false;
    while (!pending_requests_.empty() &&
           in_flight_batches() <
               static_cast<SeqNum>(config_.pipeline_depth)) {
      if (!seal_one_batch()) break;
      sealed = true;
    }
    if (pending_requests_.empty()) {
      disarm_batch_timer();
    } else {
      arm_batch_timer();
    }
    if (!sealed) return;
    // A sealed batch can only execute immediately when f = 0; if it did,
    // the window has room again.
    const SeqNum before = last_executed_;
    try_execute();
    if (last_executed_ == before) return;
  }
}

bool MinBftReplica::seal_one_batch() {
  const SeqNum highest_logged = log_.empty() ? 0 : log_.rbegin()->first;
  const SeqNum seq = std::max(last_executed_, highest_logged) + 1;
  if (seq > stable_checkpoint_ + config_.log_watermark) {
    return false;  // outside the high watermark; client will retransmit
  }
  Prepare p;
  p.view = view_;
  p.seq = seq;
  const std::size_t take = std::min<std::size_t>(
      static_cast<std::size_t>(config_.batch_size), pending_requests_.size());
  for (std::size_t i = 0; i < take; ++i) {
    Request& front = pending_requests_.front();
    pending_keys_.erase({front.client, front.request_id});
    p.requests.push_back(std::move(front));
    pending_requests_.pop_front();
  }
  if (mode_ == ByzantineMode::Random) {
    // Behaviour (c) as leader: smuggle a corrupted operation into the batch
    // under a perfectly valid UI.  The USIG cannot be bypassed, but it signs
    // whatever the (compromised) replica hands it; honest followers catch
    // the forgery via the per-request client-signature check.
    p.requests[0].operation += "|garbage";
    p.invalidate_digests();
  }
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  p.ui = usig_.create(p.body_digest());
  ++batches_proposed_;
  requests_proposed_ += take;
  max_batch_ = std::max(max_batch_, take);
  PendingEntry entry;
  entry.prepare = p;
  entry.commits.insert(id_);  // the leader's PREPARE doubles as its COMMIT
  log_[seq] = std::move(entry);
  highest_assigned_ = std::max(highest_assigned_, seq);
  broadcast(p);
  try_speculate();  // the leader's own batch is speculable immediately
  return true;
}

void MinBftReplica::arm_batch_timer() {
  if (batch_timer_armed_) return;
  batch_timer_armed_ = true;
  batch_timer_ = net_->schedule(id_, config_.batch_timeout, [this]() {
    batch_timer_armed_ = false;
    if (mode_ == ByzantineMode::Silent) return;
    // The timeout half of the seal rule: a partial batch does not wait on
    // the pipeline window forever — at most one batch per timeout period
    // may overshoot the depth, which bounds pending-request latency while
    // keeping the window meaningful under load.  (The watermark still
    // applies inside seal_one_batch.)
    if (!pending_requests_.empty() && is_leader() && !in_view_change_ &&
        in_flight_batches() >=
            static_cast<SeqNum>(config_.pipeline_depth)) {
      if (seal_one_batch()) try_execute();
    }
    try_seal_batches();
    if (!pending_requests_.empty()) arm_batch_timer();
  });
}

void MinBftReplica::disarm_batch_timer() {
  if (!batch_timer_armed_) return;
  net_->cancel(batch_timer_);
  batch_timer_armed_ = false;
}

void MinBftReplica::drop_pending_requests() {
  pending_requests_.clear();
  pending_keys_.clear();
  disarm_batch_timer();
}

void MinBftReplica::resync_assignment_watermark() {
  const SeqNum highest_logged = log_.empty() ? 0 : log_.rbegin()->first;
  highest_assigned_ = std::max(last_executed_, highest_logged);
}

// ---------------------------------------------------------------------------
// Agreement
// ---------------------------------------------------------------------------

void MinBftReplica::handle_prepare(const Prepare& p, bool relayed) {
  if (p.view != view_ || in_view_change_) return;
  const ReplicaId leader =
      membership_[static_cast<std::size_t>(p.view % membership_.size())];
  if (p.ui.replica != leader || leader == id_) return;
  if (p.requests.empty()) return;  // malformed; honest leaders never send it
  if (!verify_ui(p.body_digest(), p.ui)) return;
  // Monotonic counters prevent replay; the USIG guarantees uniqueness.  A
  // relayed prepare (answering our FetchPrepare) carries a counter that is
  // old by definition — the leader's original broadcast already advanced
  // our window past it — so only the UI itself vouches there.  Replay of a
  // UI-bound prepare is idempotent: the log and checkpoint guards below
  // dedup it.
  if (!relayed && !accept_counter(p.ui)) return;
  if (p.seq <= stable_checkpoint_) return;
  // Every request in the batch must carry its client's own signature — a
  // compromised leader can bind garbage to a valid UI, but it cannot forge
  // client signatures (Prop. 1).  Requests that arrived via their REQUEST
  // broadcast hit the verified-digest cache and cost nothing to re-check.
  for (const Request& r : p.requests) {
    if (!verify_request(r)) {
      denounce_leader();
      return;
    }
  }
  const auto it = log_.find(p.seq);
  if (it != log_.end()) {
    const bool same = crypto::digest_equal(
        it->second.prepare.batch_digest(), p.batch_digest());
    if (!same) {
      // A leader proposing two different batches at one sequence number is
      // faulty: demand a view change.
      denounce_leader();
      return;
    }
    it->second.commits.insert(leader);
  } else {
    PendingEntry entry;
    entry.prepare = p;
    entry.commits.insert(leader);
    log_[p.seq] = std::move(entry);
  }
  // Fold in any COMMIT votes that overtook this prepare (only those that
  // endorse this batch — a stale or corrupt digest never counts).
  const auto early = early_commits_.find(p.seq);
  if (early != early_commits_.end()) {
    PendingEntry& entry = log_[p.seq];
    const crypto::Digest batch = entry.prepare.batch_digest();
    for (const auto& [voter, digest] : early->second) {
      if (crypto::digest_equal(batch, digest)) entry.commits.insert(voter);
    }
    early_commits_.erase(early);
  }
  fetched_.erase(p.seq);
  send_commit(p);
  arm_view_change_timer();
  try_speculate();
  try_execute();
}

void MinBftReplica::denounce_leader() {
  if (vc_quarantined()) return;
  const ReqViewChange rvc = make_req_view_change(view_ + 1);
  broadcast(rvc);
  handle_req_view_change(rvc);  // count our own vote
}

void MinBftReplica::send_commit(const Prepare& p) {
  Commit c;
  c.view = p.view;
  c.seq = p.seq;
  c.replica = id_;
  c.batch_digest = p.batch_digest();
  if (mode_ == ByzantineMode::Random) {
    // Behaviour (c): participate with garbage — corrupt the digest.  The UI
    // is still well-formed (the USIG cannot be bypassed).
    c.batch_digest[0] ^= 0xff;
  }
  c.leader_ui = p.ui;
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  c.ui = usig_.create(c.body_digest());
  log_[p.seq].commits.insert(id_);
  broadcast(c);
}

void MinBftReplica::resend_commit(SeqNum seq, std::optional<ReplicaId> to) {
  const auto it = log_.find(seq);
  if (it == log_.end()) return;
  const PendingEntry& entry = it->second;
  // Only a vote we genuinely cast, for the current view's prepare, can be
  // re-signed: a fresh UI over anything else would be a fabricated vote.
  if (entry.commits.count(id_) == 0) return;
  if (entry.prepare.view != view_ || entry.prepare.seq != seq) return;
  Commit c;
  c.view = entry.prepare.view;
  c.seq = seq;
  c.replica = id_;
  c.batch_digest = entry.prepare.batch_digest();
  if (mode_ == ByzantineMode::Random) c.batch_digest[0] ^= 0xff;
  c.leader_ui = entry.prepare.ui;
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  c.ui = usig_.create(c.body_digest());
  if (to.has_value()) {
    net_->send(id_, *to, MinBftMsg{c});
  } else {
    broadcast(c);
  }
}

void MinBftReplica::maybe_arm_commit_repair() {
  if (config_.commit_repair_timeout <= 0.0) return;  // disabled (sim lane)
  if (repair_timer_armed_ || in_view_change_) return;
  const SeqNum next = last_executed_ + 1;
  const auto it = log_.find(next);
  if (it != log_.end()) {
    // Entry present: repairable once we voted and the quorum stalled.
    const PendingEntry& e = it->second;
    if (e.commits.count(id_) == 0) return;
    if (static_cast<int>(e.commits.size()) >= config_.f + 1) return;
  } else {
    // Entry absent: repairable only if something proves the cluster moved
    // past us — a stashed commit vote for it, or a logged later prepare.
    // (Neither present is the ordinary quiescent state: nothing to do.)
    if (early_commits_.count(next) == 0 && log_.upper_bound(next) == log_.end())
      return;
  }
  repair_timer_armed_ = true;
  repair_snapshot_ = last_executed_;
  repair_timer_ =
      net_->schedule(id_, config_.commit_repair_timeout, [this]() {
        repair_timer_armed_ = false;
        on_commit_repair();
      });
}

void MinBftReplica::on_commit_repair() {
  if (in_view_change_) return;
  // Any execution progress during the window means the pipeline is moving,
  // just slowly (overload, deep queues) — stay quiet and keep watching.
  // Resending into a merely-slow cluster adds crypto load it cannot spare.
  if (last_executed_ != repair_snapshot_) {
    maybe_arm_commit_repair();
    return;
  }
  const SeqNum next = last_executed_ + 1;
  if (next <= stable_checkpoint_) return;  // state transfer owns this gap
  // Repair the whole stalled frontier in one round, not just the next
  // seq: under loss each replica accumulates a multi-entry gap, and
  // healing one seq per window lets the cluster drift apart faster than
  // the repair closes holes.  The frontier is bounded by the highest
  // evidence we hold (logged prepare or stashed vote), capped to keep a
  // pathological gap from bursting the transport.
  SeqNum high = next;
  if (!log_.empty()) high = std::max(high, log_.rbegin()->first);
  if (!early_commits_.empty())
    high = std::max(high, early_commits_.rbegin()->first);
  high = std::min(high, next + 63);
  for (SeqNum s = next; s <= high; ++s) {
    const auto it = log_.find(s);
    if (it != log_.end()) {
      const PendingEntry& e = it->second;
      if (e.commits.count(id_) != 0 &&
          static_cast<int>(e.commits.size()) < config_.f + 1) {
        // A fully-prepared, self-voted entry sat a whole repair window
        // short of quorum: the missing commits were lost in transit (they
        // are never retransmitted on their own).  Re-broadcast our vote;
        // any peer that already counted it answers the duplicate by
        // echoing its own vote back (handle_commit), closing the hole
        // from either side.
        resend_commit(s, std::nullopt);
      }
    } else {
      // The prepare itself is missing.  The eager fetch path waits for
      // f+1 distinct commit voters, which a single crash can make
      // unreachable (n = 2f+1); here any single stashed vote — or a later
      // logged prepare — is evidence enough to ask for a relay.  Ask
      // everyone: a targeted peer can itself have lost the entry (its log
      // cleared by a state install), and re-asking one dead end forever
      // wedges us.  Peers without the entry ignore the fetch.
      if (early_commits_.count(s) != 0 ||
          log_.upper_bound(s) != log_.end()) {
        broadcast(MinBftMsg{FetchPrepare{s, id_}});
      }
    }
  }
  maybe_arm_commit_repair();
}

void MinBftReplica::handle_commit(const Commit& c) {
  if (c.view != view_ || in_view_change_) return;
  if (c.replica == id_) return;
  // Only current members vote: an evicted replica's USIG may still certify
  // fresh counters, but its identifiers are never accepted after the evict
  // operation executed (§VII-C).
  if (!is_member(c.replica) || c.replica != c.ui.replica) return;
  if (!verify_ui(c.body_digest(), c.ui)) return;
  if (!accept_counter(c.ui)) return;
  if (c.seq <= stable_checkpoint_) return;
  const auto it = log_.find(c.seq);
  if (it == log_.end()) {
    // Commit precedes prepare: either plain reordering (the prepare is a
    // moment away) or the prepare was dropped.  Stash the verified vote —
    // its counter is consumed, the committer will not resend it — and once
    // a full f+1 quorum piles up with still no prepare, stop waiting and
    // fetch a relay of the prepare from this committer.  Without the fetch
    // a lost PREPARE stalls execution (and speculation) at the gap until
    // the next stable checkpoint triggers state transfer.
    if (c.seq > stable_checkpoint_ + config_.log_watermark) return;
    auto& votes = early_commits_[c.seq];
    votes[c.replica] = c.batch_digest;
    if (static_cast<int>(votes.size()) >= config_.f + 1 &&
        fetched_.insert(c.seq).second) {
      // After a grace period: commit-before-prepare is usually reordering
      // (the prepare sits in a flush window) and fetching eagerly would
      // relay full batches for prepares that were a moment away.
      const View v = view_;
      const SeqNum seq = c.seq;
      const ReplicaId committer = c.replica;
      net_->schedule(id_, config_.prepare_fetch_grace,
                     [this, v, seq, committer]() {
                       if (view_ != v || in_view_change_) return;
                       if (seq <= stable_checkpoint_ ||
                           log_.count(seq) != 0) {
                         return;  // resolved itself
                       }
                       net_->send(id_, committer,
                                  MinBftMsg{FetchPrepare{seq, id_}});
                     });
    }
    return;
  }
  // Votes only count when they endorse the prepared batch.
  if (!crypto::digest_equal(it->second.prepare.batch_digest(),
                            c.batch_digest)) {
    return;
  }
  if (!it->second.commits.insert(c.replica).second) {
    // A vote we already counted can only arrive re-signed (replays fail the
    // USIG counter check above): it is a repair nudge from a peer whose
    // quorum never completed.  Echo our own vote back so it can close the
    // hole — commits are otherwise never retransmitted.  At most one echo
    // per repair window per entry: our echo is itself a duplicate at a
    // peer that already counted us, and unthrottled mutual echoes become a
    // message storm.
    const double now = net_->now();
    if (now - it->second.last_echo >= config_.commit_repair_timeout) {
      it->second.last_echo = now;
      resend_commit(c.seq, c.replica);
    }
    return;
  }
  try_execute();
}

void MinBftReplica::try_execute() {
  bool progressed = false;
  while (true) {
    const auto it = log_.find(last_executed_ + 1);
    if (it == log_.end()) break;
    if (static_cast<int>(it->second.commits.size()) < config_.f + 1) break;
    if (!it->second.executed) {
      if (it->second.spec_executed) {
        // The state change already happened tentatively; the commit quorum
        // only finalizes it (recorded results, no re-execution).
        confirm_entry(it->second);
      } else {
        execute_entry(it->second);
      }
      it->second.executed = true;
      progressed = true;
    }
    ++last_executed_;
    if (last_speculated_ < last_executed_) last_speculated_ = last_executed_;
    // The committed snapshot advances with the quorum, not with speculative
    // application: checkpoints digest it, rollbacks truncate to it.
    committed_log_size_ = it->second.post_log_size;
    committed_digest_ = it->second.post_digest;
    if (last_executed_ % config_.checkpoint_period == 0) emit_checkpoint();
  }
  if (progressed) {
    // Progress observed: the leader is alive.
    disarm_view_change_timer();
  }
}

bool MinBftReplica::has_reconfiguration(const Prepare& p) {
  for (const Request& r : p.requests) {
    if (r.operation.rfind("join:", 0) == 0 ||
        r.operation.rfind("evict:", 0) == 0) {
      return true;
    }
  }
  return false;
}

void MinBftReplica::send_reply(const Request& req, std::string result,
                               bool speculative) {
  if (mode_ == ByzantineMode::Random) result = "garbage";
  Reply reply;
  reply.replica = id_;
  reply.client = req.client;
  reply.request_id = req.request_id;
  reply.result = std::move(result);
  reply.speculative = speculative;
  net_->consume_cpu(id_, reply_cost());
  reply.signature = signer_.sign(reply.payload());
  net_->send(id_, req.client, MinBftMsg{reply});
  reply_cache_[req.client] = CachedReply{req.request_id, reply, !speculative};
}

void MinBftReplica::try_speculate() {
  if (!config_.speculative || in_view_change_) return;
  if (last_speculated_ < last_executed_) last_speculated_ = last_executed_;
  while (true) {
    const auto it = log_.find(last_speculated_ + 1);
    if (it == log_.end()) break;
    PendingEntry& entry = it->second;
    if (!entry.executed && !entry.spec_executed) {
      // Membership changes are never applied tentatively: rolling back an
      // evict/join would fork the very membership the quorum rules use.
      if (has_reconfiguration(entry.prepare)) break;
      speculate_entry(entry);
      entry.spec_executed = true;
      ++spec_executions_;
    }
    ++last_speculated_;
  }
}

void MinBftReplica::speculate_entry(PendingEntry& entry) {
  entry.spec_results.clear();
  entry.spec_applied.clear();
  for (const Request& req : entry.prepare.requests) {
    if (!executed_requests_.insert({req.client, req.request_id}).second) {
      entry.spec_results.emplace_back();  // duplicate: skipped, no reply
      continue;
    }
    entry.spec_applied.emplace_back(req.client, req.request_id);
    std::string result = service_.execute(req.operation);
    entry.spec_results.push_back(result);
    send_reply(req, std::move(result), /*speculative=*/true);
  }
  entry.post_log_size = service_.log().size();
  entry.post_digest = service_.state_digest();
}

void MinBftReplica::confirm_entry(PendingEntry& entry) {
  // The speculative reply already went out at PREPARE.  The f+1 lowest-id
  // members (a baseline-sized quorum) follow it with a FINAL reply at the
  // commit quorum, so the client completes at min(all-n tentative vouches,
  // f+1 finals): one replica that missed its PREPARE (and therefore cannot
  // vouch) degrades the request to baseline latency instead of stalling it
  // behind a retransmission timeout.  The remaining members stay quiet —
  // Zyzzyva's replicas reply once — and only flip their cached status so a
  // retransmission is served FINAL.  A quiet designated replica is not a
  // liveness hole: the prepare-fetch path bounds how long any member can
  // lag, and the client's fallback valve re-asks answered replicas.
  const auto rank = static_cast<std::size_t>(
      std::find(membership_.begin(), membership_.end(), id_) -
      membership_.begin());
  const bool designated = rank < static_cast<std::size_t>(config_.f) + 1;
  for (std::size_t i = 0; i < entry.prepare.requests.size(); ++i) {
    if (i >= entry.spec_results.size() || entry.spec_results[i].empty()) {
      continue;  // was a duplicate at speculation time
    }
    const Request& req = entry.prepare.requests[i];
    const auto it = reply_cache_.find(req.client);
    if (it == reply_cache_.end() || it->second.request_id != req.request_id) {
      continue;  // a newer request from this client superseded the slot
    }
    it->second.committed = true;
    if (designated && it->second.reply.speculative) {
      it->second.reply.speculative = false;
      net_->consume_cpu(id_, reply_cost());
      it->second.reply.signature = signer_.sign(it->second.reply.payload());
      net_->send(id_, req.client, MinBftMsg{it->second.reply});
    }
  }
}

void MinBftReplica::rollback_speculation() {
  bool rolled_back = false;
  for (auto it = log_.upper_bound(last_executed_); it != log_.end(); ++it) {
    PendingEntry& entry = it->second;
    if (!entry.spec_executed || entry.executed) continue;
    for (const auto& key : entry.spec_applied) executed_requests_.erase(key);
    entry.spec_executed = false;
    entry.spec_results.clear();
    entry.spec_applied.clear();
    rolled_back = true;
  }
  if (rolled_back) {
    // Truncate the service to the committed prefix; the re-proposed entries
    // re-execute from here (clients that accepted an all-n speculative
    // reply are safe: such an entry survives into any f+1 proof set and is
    // re-proposed at the same sequence number).
    std::vector<std::string> prefix(
        service_.log().begin(),
        service_.log().begin() +
            static_cast<std::ptrdiff_t>(committed_log_size_));
    service_.install(std::move(prefix), committed_digest_);
    ++spec_rollbacks_;
  }
  last_speculated_ = last_executed_;
}

void MinBftReplica::execute_entry(PendingEntry& entry) {
  // Execution and REPLYs fan out per request of the batch.
  for (const Request& req : entry.prepare.requests) {
    if (!executed_requests_.insert({req.client, req.request_id}).second) {
      continue;  // re-proposed across a view change and already executed
    }
    std::string result = service_.execute(req.operation);
    apply_reconfiguration(req.operation);
    send_reply(req, std::move(result), /*speculative=*/false);
  }
  entry.post_log_size = service_.log().size();
  entry.post_digest = service_.state_digest();
}

void MinBftReplica::apply_reconfiguration(const std::string& op) {
  // join:<id> / evict:<id> — ordered through consensus (§VII-C), so every
  // correct replica applies the same membership change at the same sequence
  // number, which is what makes the protocol reconfigurable.
  if (op.rfind("join:", 0) == 0) {
    const ReplicaId node = static_cast<ReplicaId>(std::stoul(op.substr(5)));
    if (std::find(membership_.begin(), membership_.end(), node) ==
        membership_.end()) {
      membership_.push_back(node);
      std::sort(membership_.begin(), membership_.end());
    }
  } else if (op.rfind("evict:", 0) == 0) {
    const ReplicaId node = static_cast<ReplicaId>(std::stoul(op.substr(6)));
    membership_.erase(
        std::remove(membership_.begin(), membership_.end(), node),
        membership_.end());
  }
}

void MinBftReplica::emit_checkpoint() {
  Checkpoint cp;
  cp.replica = id_;
  cp.last_executed = last_executed_;
  // The committed snapshot, never the live service state: with speculation
  // on, the service may be running ahead of the quorum, and a checkpoint
  // must only ever certify state that cannot roll back.
  cp.state_digest = committed_digest_;
  // Remember the exact committed slice behind this boundary: if this
  // checkpoint stabilizes, state responses vouch for it (the digest alone
  // cannot reconstruct which operations it covers).
  checkpoint_anchors_[cp.last_executed] = {committed_log_size_,
                                           committed_digest_};
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  cp.ui = usig_.create(cp.body_digest());
  checkpoint_votes_[cp.last_executed][cp.state_digest][id_] = cp;
  broadcast(cp);
}

void MinBftReplica::handle_checkpoint(const Checkpoint& c) {
  if (c.last_executed <= stable_checkpoint_) return;
  if (!is_member(c.replica) || c.replica != c.ui.replica) return;
  if (!verify_ui(c.body_digest(), c.ui)) return;
  auto& votes = checkpoint_votes_[c.last_executed][c.state_digest];
  votes[c.replica] = c;
  if (static_cast<int>(votes.size()) >= config_.f + 1) {
    // The quorum doubles as the checkpoint certificate future view changes
    // carry to back their stable_seq claim.
    stable_cert_.clear();
    for (const auto& [voter, cp] : votes) {
      (void)voter;
      stable_cert_.push_back(cp);
    }
    garbage_collect(c.last_executed);
  }
}

void MinBftReplica::garbage_collect(SeqNum stable) {
  if (stable <= stable_checkpoint_) return;
  stable_checkpoint_ = stable;
  // Fell behind the cluster: entries about to be erased may hold tentative
  // state — undo it before their bookkeeping disappears (the state transfer
  // below reinstalls the authoritative log).
  if (last_executed_ < stable) rollback_speculation();
  log_.erase(log_.begin(), log_.lower_bound(stable + 1));
  checkpoint_votes_.erase(checkpoint_votes_.begin(),
                          checkpoint_votes_.lower_bound(stable + 1));
  // Keep the stable boundary's own anchor — it is what state responses ship.
  checkpoint_anchors_.erase(checkpoint_anchors_.begin(),
                            checkpoint_anchors_.lower_bound(stable));
  early_commits_.erase(early_commits_.begin(),
                       early_commits_.lower_bound(stable + 1));
  fetched_.erase(fetched_.begin(), fetched_.lower_bound(stable + 1));
  // A replica that fell behind the stable checkpoint catches up via state
  // transfer rather than replay (Fig. 17d).
  if (last_executed_ < stable) request_state_transfer();
}

// ---------------------------------------------------------------------------
// View changes
// ---------------------------------------------------------------------------

ReqViewChange MinBftReplica::make_req_view_change(View to_view) {
  ReqViewChange rvc;
  rvc.replica = id_;
  rvc.from_view = view_;
  rvc.to_view = to_view;
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  rvc.signature = signer_.sign(rvc.payload());
  return rvc;
}

void MinBftReplica::arm_view_change_timer() {
  if (vc_timer_armed_) return;
  vc_timer_armed_ = true;
  double timeout = config_.view_change_timeout;
  if (config_.admission.enabled &&
      admission_.mode() != AdmissionMode::kNormal) {
    timeout *= kOverloadViewChangeStretch;
  }
  vc_timer_ = net_->schedule(id_, timeout, [this]() {
    vc_timer_armed_ = false;
    if (mode_ == ByzantineMode::Silent) return;
    // Overload may have been declared AFTER the timer was armed (a spike's
    // first wave is admitted in NORMAL mode, whose timer is the short flat
    // one).  Re-check at fire time: while the valve is closed, missing
    // progress is load evidence, so re-arm patiently instead of denouncing.
    if (config_.admission.enabled &&
        admission_.mode() != AdmissionMode::kNormal) {
      arm_view_change_timer();
      return;
    }
    // A quarantined replica (fresh state install) casts no view-change
    // votes; re-arm and let the un-wiped majority drive any change.
    if (vc_quarantined()) {
      arm_view_change_timer();
      return;
    }
    // No progress within Tvc: ask everyone to move to the next view.
    const ReqViewChange rvc = make_req_view_change(view_ + 1);
    broadcast(rvc);
    arm_view_change_timer();
    handle_req_view_change(rvc);  // count our own vote
  });
}

void MinBftReplica::disarm_view_change_timer() {
  if (!vc_timer_armed_) return;
  net_->cancel(vc_timer_);
  vc_timer_armed_ = false;
}

void MinBftReplica::handle_req_view_change(const ReqViewChange& r) {
  if (r.to_view <= view_) return;
  // Votes count only from authenticated current members: the claimed sender
  // must be the signer, the signature must verify — unconditionally, so a
  // network-delivered message spoofing the receiver's own id is rejected
  // too (the genuine local self-call is signed by make_req_view_change) —
  // and evicted replicas (whose keys remain valid) are excluded.
  if (!is_member(r.replica) || r.signature.signer != r.replica) return;
  net_->consume_cpu(id_, config_.crypto_cost_verify);
  if (!registry_->verify(r.payload(), r.signature)) return;
  auto& votes = view_change_requests_[r.to_view];
  votes.insert(r.replica);
  if (static_cast<int>(votes.size()) >= config_.f + 1) {
    start_view_change(r.to_view);
  }
}

SeqNum MinBftReplica::certified_stable(const ViewChange& proof) {
  if (proof.stable_seq == 0) return 0;  // genesis needs no certificate
  std::map<crypto::Digest, std::set<ReplicaId>, std::less<crypto::Digest>>
      votes;
  for (const Checkpoint& c : proof.checkpoint_cert) {
    if (c.last_executed != proof.stable_seq) continue;
    if (!is_member(c.replica) || c.replica != c.ui.replica) continue;
    if (!verify_ui(c.body_digest(), c.ui)) continue;
    votes[c.state_digest].insert(c.replica);
  }
  for (const auto& [digest, voters] : votes) {
    (void)digest;
    if (static_cast<int>(voters.size()) >= config_.f + 1) {
      return proof.stable_seq;
    }
  }
  return 0;
}

std::vector<Prepare> MinBftReplica::assemble_reproposals(
    const std::vector<ViewChange>& proofs, View new_view) {
  // Every rule below is a function of the proof set alone — never of local
  // state, which differs between replicas — so the new leader and every
  // follower compute byte-identical reproposals from the same NEW-VIEW.
  // (One caveat: membership_ and f are consensus-ordered state, so replicas
  // mid-reconfiguration can transiently disagree on them and an honest
  // NEW-VIEW may be rejected; the view-change timer retries until the
  // memberships converge, trading a bounded liveness hiccup for the safety
  // of strict validation.)  The rules:
  //
  //  * The fill starts above the highest *certified* stable checkpoint and
  //    is a contiguous range: try_execute only advances over contiguous
  //    seqs and seal_one_batch only assigns above the highest logged one,
  //    so a dropped seq would be a hole no replica could ever fill or pass
  //    — a permanent stall.  A stable_seq claim counts only when its f+1
  //    checkpoint certificate verifies (else a single compromised member
  //    could inflate it and displace the genuinely prepared suffix), it is
  //    saturated so a forged huge value cannot wrap the arithmetic, and the
  //    range is capped at one watermark (honest prepares never exceed it),
  //    so a forged huge prepare seq cannot force millions of null batches
  //    either.
  //  * Per seq the highest-view candidate wins, but only among batches
  //    certified by their own view's leader USIG (a forged later-view
  //    wrapper around replayed requests fails this) whose requests all carry
  //    valid client signatures (a compromised ex-leader's garbage under a
  //    valid UI fails this) — falling back to a verifiable lower-view batch
  //    keeps the real requests the garbage tried to displace.
  //  * A seq with no surviving candidate gets a null batch (PBFT-style null
  //    request): it executes as a no-op and clients retransmit anything it
  //    displaced.
  constexpr SeqNum kClaimCeiling = std::numeric_limits<SeqNum>::max() / 2;
  std::map<SeqNum, std::vector<Prepare>> candidates;
  SeqNum stable = 0;
  for (const ViewChange& proof : proofs) {
    stable = std::max(stable, std::min(certified_stable(proof), kClaimCeiling));
    for (const PreparedProof& p : proof.prepared) {
      candidates[p.prepare.seq].push_back(p.prepare);
    }
  }
  const SeqNum fill_cap = stable + config_.log_watermark;
  SeqNum hi = stable;
  for (auto it = candidates.upper_bound(stable);
       it != candidates.end() && it->first <= fill_cap; ++it) {
    hi = it->first;
  }
  std::vector<Prepare> reproposed;
  for (SeqNum seq = stable + 1; seq <= hi; ++seq) {
    Prepare p;
    p.view = new_view;
    p.seq = seq;
    const auto cand_it = candidates.find(seq);
    if (cand_it != candidates.end()) {
      std::stable_sort(cand_it->second.begin(), cand_it->second.end(),
                       [](const Prepare& a, const Prepare& b) {
                         return a.view > b.view;
                       });
      for (Prepare& cand : cand_it->second) {
        if (cand.requests.empty()) continue;
        const ReplicaId cand_leader = membership_[static_cast<std::size_t>(
            cand.view % membership_.size())];
        if (cand.ui.replica != cand_leader) continue;
        if (!verify_ui(cand.body_digest(), cand.ui)) continue;
        bool batch_ok = true;
        for (const Request& r : cand.requests) {
          if (!verify_request(r)) {
            batch_ok = false;
            break;
          }
        }
        if (!batch_ok) continue;
        p.requests = std::move(cand.requests);
        break;
      }
    }
    reproposed.push_back(std::move(p));
  }
  return reproposed;
}

ViewChange MinBftReplica::make_view_change(View to_view) {
  ViewChange vc;
  vc.replica = id_;
  vc.to_view = to_view;
  vc.stable_seq = stable_checkpoint_;
  vc.checkpoint_cert = stable_cert_;
  for (const auto& [seq, entry] : log_) {
    (void)seq;
    vc.prepared.push_back(PreparedProof{entry.prepare});
  }
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  vc.ui = usig_.create(vc.body_digest());
  return vc;
}

void MinBftReplica::start_view_change(View to_view) {
  if (to_view <= view_) return;
  // Quarantined after a state install: our prepared set is amnesiac, so we
  // contribute no proof.  We keep operating in the current view and adopt
  // the outcome when the new leader's NEW-VIEW arrives (handle_new_view
  // accepts any newer view without a proof from us).
  if (vc_quarantined()) return;
  in_view_change_ = true;
  // Stashed early commits are votes for the dying view; the new view
  // re-proposes undecided entries with fresh prepares and commits.
  early_commits_.clear();
  fetched_.clear();
  disarm_view_change_timer();
  disarm_batch_timer();  // sealing is paused until the new view installs
  const ViewChange vc = make_view_change(to_view);
  const ReplicaId new_leader =
      membership_[static_cast<std::size_t>(to_view % membership_.size())];
  if (new_leader == id_) {
    handle_view_change(vc);
  } else {
    net_->send(id_, new_leader, MinBftMsg{vc});
  }
}

void MinBftReplica::handle_view_change(const ViewChange& vc) {
  if (vc.to_view <= view_) return;
  // A quarantined leader-elect must not assemble the NEW-VIEW: the
  // have_own splice below would inject its amnesiac prepared set into the
  // reproposal derivation.  The change stalls until peers escalate to a
  // view led by an un-wiped replica (a liveness corner only when a crash
  // and a recovery overlap, i.e. beyond the f the quorums tolerate).
  if (vc_quarantined()) return;
  const ReplicaId expected_leader =
      membership_[static_cast<std::size_t>(vc.to_view % membership_.size())];
  if (expected_leader != id_) return;
  // The proof must come from a current member whose own USIG certifies it —
  // a detached replica must not be able to forge proofs "from" live members.
  // Verified unconditionally, like handle_req_view_change: a network message
  // spoofing the leader's own id would otherwise be stored unverified,
  // suppress the genuine self-proof (per-replica dedup + the have_own check
  // below), and poison nv.proofs so every follower rejects the NEW-VIEW.
  // The genuine local self-call is signed by make_view_change and passes.
  if (!is_member(vc.replica) || vc.replica != vc.ui.replica) return;
  if (!verify_ui(vc.body_digest(), vc.ui)) return;
  auto& proofs = view_changes_[vc.to_view];
  for (const ViewChange& existing : proofs) {
    if (existing.replica == vc.replica) return;
  }
  proofs.push_back(vc);
  if (static_cast<int>(proofs.size()) < config_.f + 1) return;

  // The leader's own prepared log joins the proof set when its own view
  // change did not arrive through the quorum path: its entries are
  // reproposal candidates too, and its stable checkpoint is corroborated to
  // followers the same way every other proof's is (the fill below starts
  // above it, and followers bound the reproposed range by the proofs they
  // can see).
  const bool have_own =
      std::any_of(proofs.begin(), proofs.end(),
                  [&](const ViewChange& p) { return p.replica == id_; });
  if (!have_own) proofs.push_back(make_view_change(vc.to_view));

  NewView nv;
  nv.leader = id_;
  nv.view = vc.to_view;
  nv.proofs = proofs;
  view_ = nv.view;
  in_view_change_ = false;
  view_changes_.erase(nv.view);
  view_change_requests_.erase(nv.view);
  // Re-prepare the undecided suffix under the new view with fresh UIs.  The
  // selection is a deterministic function of the proof set (see
  // assemble_reproposals): followers recompute it from nv.proofs and reject
  // any NEW-VIEW that deviates, so even a compromised leader could not
  // tamper with it here.
  nv.reproposed = assemble_reproposals(nv.proofs, nv.view);
  // Uncommitted tentative state does not survive a view change: truncate to
  // the committed prefix, then the reproposals below re-execute from it.
  rollback_speculation();
  log_.clear();
  for (Prepare& p : nv.reproposed) {
    net_->consume_cpu(id_, config_.crypto_cost_sign);
    p.ui = usig_.create(p.body_digest());
    if (p.seq <= stable_checkpoint_) continue;
    PendingEntry entry;
    entry.prepare = p;
    entry.commits.insert(id_);
    log_[p.seq] = std::move(entry);
  }
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  nv.ui = usig_.create(nv.body_digest());
  resync_assignment_watermark();
  broadcast(nv);
  try_speculate();
  try_execute();
  // The new leader drains any requests that queued up during the change.
  try_seal_batches();
}

void MinBftReplica::handle_new_view(const NewView& nv) {
  if (nv.view <= view_ && !(in_view_change_ && nv.view == view_)) return;
  const ReplicaId expected_leader =
      membership_[static_cast<std::size_t>(nv.view % membership_.size())];
  // The NEW-VIEW must be certified by the claimed (and expected) leader's
  // own USIG — a detached replica's valid-but-foreign UI must not install a
  // view on the leader's behalf.
  if (nv.leader != expected_leader || nv.ui.replica != nv.leader) return;
  if (!verify_ui(nv.body_digest(), nv.ui)) return;
  // Each of the f+1 proofs must be a verifiable view change from a distinct
  // current member; fabricated or duplicated proofs do not form a quorum.
  std::set<ReplicaId> proof_senders;
  for (const ViewChange& proof : nv.proofs) {
    if (!is_member(proof.replica) || proof.replica != proof.ui.replica) {
      return;
    }
    // A proof must be *for this view change*: a relayed NEW-VIEW stuffed
    // with genuine-but-stale proofs from other views would otherwise steer
    // the reproposal recomputation below.
    if (proof.to_view != nv.view) return;
    if (!verify_ui(proof.body_digest(), proof.ui)) {
      return;
    }
    proof_senders.insert(proof.replica);
  }
  if (static_cast<int>(proof_senders.size()) < config_.f + 1) return;
  // The reproposed suffix must be exactly what assemble_reproposals derives
  // from the carried proofs: the selection is deterministic, so any
  // deviation — a null batch where a genuinely prepared one exists, a
  // smuggled garbage batch, a hole, a range floating above an unfillable
  // gap, a watermark-busting run of nulls — is a Byzantine leader's
  // fabrication and the NEW-VIEW is not installed.  (Null batches where no
  // candidate survives are legal, unlike live PREPAREs: they execute as
  // no-ops.)
  const std::vector<Prepare> expected =
      assemble_reproposals(nv.proofs, nv.view);
  if (nv.reproposed.size() != expected.size()) return;
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const Prepare& got = nv.reproposed[i];
    if (got.view != nv.view || got.seq != expected[i].seq) return;
    if (!crypto::digest_equal(got.batch_digest(),
                              expected[i].batch_digest())) {
      return;
    }
    // Each reproposal must carry the new leader's own USIG, like a live
    // PREPARE: installing one with a garbage UI would poison the entries we
    // log and later carry as view-change candidates ourselves (their
    // failed UI check would null them out in the next reassembly).
    if (got.ui.replica != nv.leader) return;
    if (!verify_ui(got.body_digest(), got.ui)) return;
  }
  view_ = nv.view;
  in_view_change_ = false;
  disarm_view_change_timer();
  rollback_speculation();
  log_.clear();
  for (const Prepare& p : nv.reproposed) {
    if (p.seq <= stable_checkpoint_) continue;
    PendingEntry entry;
    entry.prepare = p;
    entry.commits.insert(nv.leader);
    log_[p.seq] = std::move(entry);
    send_commit(p);
  }
  resync_assignment_watermark();
  if (!is_leader()) {
    // Requests enqueued while we led an earlier view are the new leader's
    // problem now; clients retransmit them.
    drop_pending_requests();
  }
  try_speculate();
  try_execute();
  try_seal_batches();
}

// ---------------------------------------------------------------------------
// State transfer
// ---------------------------------------------------------------------------

void MinBftReplica::handle_fetch_prepare(const FetchPrepare& m) {
  if (!is_member(m.requester) || m.requester == id_) return;
  const auto it = log_.find(m.seq);
  if (it == log_.end()) return;  // checkpointed away or never seen
  // No signing needed: the prepare's own leader UI authenticates it at the
  // receiver no matter who relays it.
  net_->send(id_, m.requester, MinBftMsg{RelayedPrepare{it->second.prepare}});
}

void MinBftReplica::request_state_transfer() {
  // Idempotent while a cycle runs: garbage_collect fires on every checkpoint
  // quorum observed while behind, and re-broadcasting each time would turn
  // one recovery into a request storm.  The live cycle's deadline timer
  // already guarantees a retry if the outstanding request went nowhere.
  if (st_active_) return;
  st_active_ = true;
  st_attempt_ = 0;
  send_state_request();
}

void MinBftReplica::send_state_request() {
  ++st_attempt_;
  ++st_attempts_;
  if (st_attempt_ > 1) ++st_retries_;
  StateRequest req;
  req.replica = id_;
  req.ops_executed = committed_log_size_;
  if (st_attempt_ == 1) {
    // First shot fans out to everyone: the fastest f+1 honest responders
    // form the digest quorum, exactly the pre-retry behaviour.
    broadcast(MinBftMsg{req});
  } else {
    // Re-request from a rotating window of f+1 peers.  Rotation routes
    // around crashed or Byzantine-silent peers (a fixed window could be all
    // dead); the f+1 width bounds response amplification while still
    // guaranteeing an honest member in every window.
    std::vector<ReplicaId> peers;
    peers.reserve(membership_.size());
    for (const ReplicaId peer : membership_) {
      if (peer != id_) peers.push_back(peer);
    }
    if (!peers.empty()) {
      const std::size_t window =
          std::min(peers.size(), static_cast<std::size_t>(config_.f) + 1);
      for (std::size_t i = 0; i < window; ++i) {
        net_->send(id_, peers[(st_rotation_ + i) % peers.size()],
                   MinBftMsg{req});
      }
      st_rotation_ = (st_rotation_ + window) % peers.size();
    }
  }
  arm_state_transfer_timer();
  publish_progress();
}

void MinBftReplica::arm_state_transfer_timer() {
  disarm_state_transfer_timer();
  double deadline = config_.state_transfer_timeout;
  for (int i = 1; i < st_attempt_; ++i) {
    deadline *= config_.state_transfer_backoff;
  }
  // Private jitter stream: simultaneous recoverers desynchronize without
  // perturbing the transport's seeded loss/reorder draws.
  deadline *= 1.0 + st_rng_.uniform(0.0, 0.25);
  st_timer_armed_ = true;
  st_timer_ = net_->schedule(id_, deadline, [this]() {
    st_timer_armed_ = false;
    on_state_transfer_deadline();
  });
}

void MinBftReplica::disarm_state_transfer_timer() {
  if (!st_timer_armed_) return;
  st_timer_armed_ = false;
  net_->cancel(st_timer_);
}

void MinBftReplica::on_state_transfer_deadline() {
  if (!st_active_) return;
  // Head matching stalled for a whole attempt window.  Before burning a
  // retry (or the cycle), fall back to the best certificate-vouched anchor:
  // it only reaches the checkpoint boundary, not the live head, but under
  // continuous commits the next checkpoint quorum restarts the cycle and
  // each round closes the remaining gap.
  if (try_install_anchor()) return;
  if (st_attempt_ >= config_.state_transfer_max_attempts) {
    // Give up the cycle rather than retry forever: the next checkpoint
    // quorum we observe while still behind restarts it (garbage_collect),
    // so a partitioned replica re-engages once the network heals.
    ++st_giveups_;
    finish_state_transfer(/*installed=*/false);
    return;
  }
  send_state_request();
}

bool MinBftReplica::try_install_anchor() {
  if (!st_anchor_.has_value()) return false;
  const StateResponse cand = std::move(*st_anchor_);
  st_anchor_.reset();
  if (cand.anchor_seq > last_executed_ &&
      cand.prefix_ops <= committed_log_size_ &&
      install_transferred_state(
          cand.prefix_ops, cand.log,
          static_cast<std::size_t>(cand.anchor_ops - cand.prefix_ops),
          cand.anchor_digest, cand.anchor_seq, cand.anchor_cert)) {
    // The anchor only reaches the checkpoint boundary; the responder's
    // head was visibly further (its response had to beat our executed
    // count to be accepted at all).  Chase it now instead of waiting for
    // the next checkpoint quorum — each round either head-matches or
    // installs the next stabilized boundary.
    if (cand.last_executed > last_executed_) request_state_transfer();
    return true;
  }
  return false;
}

void MinBftReplica::finish_state_transfer(bool installed) {
  st_active_ = false;
  st_attempt_ = 0;
  disarm_state_transfer_timer();
  // Prune ALL cycle bookkeeping: votes and stored responses for losing or
  // stale digests must not accumulate across cycles (a slow or equivocating
  // responder could otherwise grow these maps without bound).
  state_votes_.clear();
  pending_state_.clear();
  st_anchor_.reset();
  if (installed) ++st_completions_;
  publish_progress();
}

void MinBftReplica::discard_state_candidate(const crypto::Digest& digest) {
  pending_state_.erase(digest);
  state_votes_.erase(digest);
}

void MinBftReplica::publish_progress() {
  progress_.committed_ops.store(committed_log_size_,
                                std::memory_order_relaxed);
  progress_.view.store(view_, std::memory_order_relaxed);
  progress_.st_attempts.store(st_attempts_, std::memory_order_relaxed);
  progress_.st_completions.store(st_completions_, std::memory_order_relaxed);
  progress_.st_giveups.store(st_giveups_, std::memory_order_relaxed);
}

void MinBftReplica::handle_state_request(net::NodeId from,
                                         const StateRequest& r) {
  StateResponse resp;
  resp.replica = id_;
  resp.last_executed = last_executed_;
  // Ship only the committed suffix above the requester's own committed
  // prefix: tentative speculative state must never be transferred, and a
  // lagging (but not amnesiac) replica must not be mailed history it already
  // holds — full-log responses on a long-lived cluster would churn the
  // drop-oldest inboxes the recovery itself depends on.
  const std::size_t prefix = static_cast<std::size_t>(
      std::min<std::uint64_t>(r.ops_executed, committed_log_size_));
  resp.prefix_ops = prefix;
  resp.log.assign(service_.log().begin() +
                      static_cast<std::ptrdiff_t>(prefix),
                  service_.log().begin() +
                      static_cast<std::ptrdiff_t>(committed_log_size_));
  resp.state_digest = committed_digest_;
  // Vouch for the stable checkpoint too, when we hold both its committed
  // slice and the f+1 certificate that stabilized it.  The head digest
  // above needs f+1 byte-identical responses; under continuous commits no
  // two responders sit at the same head, so the self-certifying anchor is
  // what lets the requester recover off a single response (the deadline
  // path in on_state_transfer_deadline).
  const auto anchor = checkpoint_anchors_.find(stable_checkpoint_);
  if (stable_checkpoint_ > 0 && anchor != checkpoint_anchors_.end() &&
      !stable_cert_.empty() &&
      stable_cert_.front().last_executed == stable_checkpoint_ &&
      anchor->second.first >= prefix) {
    resp.anchor_seq = stable_checkpoint_;
    resp.anchor_ops = anchor->second.first;
    resp.anchor_digest = anchor->second.second;
    resp.anchor_cert = stable_cert_;
  }
  net_->consume_cpu(id_, config_.crypto_cost_sign);
  resp.signature = signer_.sign(resp.payload());
  net_->send(id_, from, MinBftMsg{resp});
}

void MinBftReplica::handle_state_response(const StateResponse& r) {
  // Only the cycle that solicited responses accepts them: unsolicited or
  // post-install stragglers must not accumulate votes (or trigger installs
  // nobody asked for).
  if (!st_active_) return;
  if (r.last_executed <= last_executed_) return;
  // A suffix above a prefix we do not hold cannot be spliced.  An honest
  // responder never sends one — prefix_ops is clamped to OUR reported
  // committed count, which only grows.
  if (r.prefix_ops > committed_log_size_) return;
  // f+1 matching digests are only meaningful if each vote really comes from
  // the member it names.
  if (!is_member(r.replica) || r.signature.signer != r.replica) return;
  net_->consume_cpu(id_, config_.crypto_cost_verify);
  if (!registry_->verify(r.payload(), r.signature)) return;
  // Stash the best certificate-vouched anchor as the deadline fallback
  // (one candidate, overwritten by a higher boundary: bounded by design).
  if (anchor_certified(r) &&
      (!st_anchor_.has_value() || r.anchor_seq > st_anchor_->anchor_seq)) {
    st_anchor_ = r;
  }
  // The first attempt window belongs to head matching (two lockstep
  // responders recover us to the live head in one shot).  Once a full
  // window has passed without a match, waiting out each backed-off
  // deadline just lets the cluster race further ahead — install the
  // certified boundary the moment we hold it and chase from there.
  if (st_attempt_ >= 2 && try_install_anchor()) return;
  // One live vote per member: a replica's newest response supersedes any
  // earlier one, so the vote and response maps stay bounded by the
  // membership size no matter how often a responder re-answers (retries
  // solicit duplicates by design) or equivocates.
  for (auto vit = state_votes_.begin(); vit != state_votes_.end();) {
    vit->second.erase(r.replica);
    if (vit->second.empty()) {
      pending_state_.erase(vit->first);
      vit = state_votes_.erase(vit);
    } else {
      ++vit;
    }
  }
  // The state is installed once f+1 replicas vouch for the same digest
  // (§VII-C: "its state is initialized with the (identical) state from f+1
  // other replicas").
  state_votes_[r.state_digest].insert(r.replica);
  if (static_cast<int>(state_votes_[r.state_digest].size()) <
      config_.f + 1) {
    pending_state_[r.state_digest] = r;
    return;
  }
  const auto it = pending_state_.find(r.state_digest);
  const StateResponse& adopt = it != pending_state_.end() ? it->second : r;
  if (adopt.prefix_ops > committed_log_size_ ||
      !install_transferred_state(adopt.prefix_ops, adopt.log,
                                 adopt.log.size(), adopt.state_digest,
                                 adopt.last_executed, /*cert=*/{})) {
    discard_state_candidate(r.state_digest);
  }
}

bool MinBftReplica::anchor_certified(const StateResponse& r) {
  if (r.anchor_seq == 0 || r.anchor_cert.empty()) return false;
  if (r.anchor_seq <= last_executed_) return false;
  // The anchored slice must be reconstructible from this very response:
  // our first prefix_ops committed operations plus the shipped operations
  // up to the boundary's count.
  if (r.anchor_ops < r.prefix_ops || r.prefix_ops > committed_log_size_)
    return false;
  if (r.anchor_ops - r.prefix_ops > r.log.size()) return false;
  // Same rule as certified_stable: f+1 distinct current members' valid
  // USIG-certified CHECKPOINTs for exactly (anchor_seq, anchor_digest).
  std::set<ReplicaId> voters;
  for (const Checkpoint& c : r.anchor_cert) {
    if (c.last_executed != r.anchor_seq) continue;
    if (!crypto::digest_equal(c.state_digest, r.anchor_digest)) continue;
    if (!is_member(c.replica) || c.replica != c.ui.replica) continue;
    if (!verify_ui(c.body_digest(), c.ui)) continue;
    voters.insert(c.replica);
  }
  return static_cast<int>(voters.size()) >= config_.f + 1;
}

bool MinBftReplica::install_transferred_state(
    std::uint64_t prefix_ops, const std::vector<std::string>& shipped,
    std::size_t count, const crypto::Digest& digest, SeqNum seq,
    std::vector<Checkpoint> cert) {
  // Splice our own committed prefix under the shipped operations, then
  // verify the chain of the WHOLE log against the vouched digest.  The
  // quorum (digest votes or checkpoint certificate) vouches for the digest,
  // not for whichever operations happened to arrive with it: recomputing
  // the chain means a single Byzantine responder cannot smuggle fabricated
  // operations (e.g. forged join:/evict: entries) under an honest digest —
  // and the splice extends that guarantee to truncated responses (a wrong
  // prefix claim simply fails the chain).
  if (count > shipped.size()) return false;
  std::vector<std::string> full;
  full.reserve(static_cast<std::size_t>(prefix_ops) + count);
  full.assign(service_.log().begin(),
              service_.log().begin() + static_cast<std::ptrdiff_t>(prefix_ops));
  full.insert(full.end(), shipped.begin(),
              shipped.begin() + static_cast<std::ptrdiff_t>(count));
  if (!crypto::digest_equal(ReplicatedService::chain_digest(full), digest)) {
    return false;
  }
  // Locally speculated state is superseded by the transferred log; undo its
  // bookkeeping before the install wipes the service underneath it.
  rollback_speculation();
  service_.install(std::move(full), digest);
  last_executed_ = seq;
  last_speculated_ = seq;
  committed_log_size_ = service_.log().size();
  committed_digest_ = digest;
  checkpoint_anchors_.clear();
  // A checkpoint-anchored install lands exactly on a stable boundary and
  // carries the certificate that stabilized it, so our view-change claims
  // stay certified; a head install's stable point is vouched by the
  // state-digest quorum instead, and our claims go uncertified until the
  // next checkpoint (peers ignore them, which is safe — our log above the
  // transfer is empty anyway).  A cert for a boundary older than the stable
  // seq we already learned from a checkpoint quorum must not be adopted: it
  // would mislabel the newer stable point.
  if (seq > stable_checkpoint_) {
    stable_checkpoint_ = seq;
    stable_cert_ = std::move(cert);
  } else if (seq == stable_checkpoint_ && !cert.empty()) {
    stable_cert_ = std::move(cert);
  }
  if (!stable_cert_.empty() && stable_checkpoint_ == seq) {
    checkpoint_anchors_[seq] = {committed_log_size_, committed_digest_};
  }
  for (const std::string& op : service_.log()) apply_reconfiguration(op);
  // Erase only the bookkeeping the install supersedes.  Entries ABOVE the
  // installed point are kept: they hold prepares we already verified and
  // commit votes we and our peers already cast, and wiping them here is
  // what used to wedge clusters — two followers installing a boundary
  // would both forget the suffix the leader had committed with their
  // pre-install votes, leaving nobody able to repair it.
  log_.erase(log_.begin(), log_.upper_bound(seq));
  early_commits_.erase(early_commits_.begin(),
                       early_commits_.upper_bound(seq));
  fetched_.erase(fetched_.begin(), fetched_.upper_bound(seq));
  resync_assignment_watermark();
  if (recovering_) {
    // First install after a recovery restart ends the passive phase: we
    // now stand on a vouched committed prefix and may vote again.  But the
    // votes we cast BEFORE crashing are forgotten forever, so quarantine
    // our view-change participation until the stable checkpoint covers
    // everything we could have voted on (any such vote was bounded by our
    // then-stable + log_watermark <= seq + log_watermark).  Agreement
    // voting resumes immediately — only the amnesiac prepared-set proof is
    // dangerous.  Live (non-restart) installs keep their suffix above and
    // need no quarantine.
    recovering_ = false;
    vc_quarantine_until_ =
        std::max(vc_quarantine_until_, seq + config_.log_watermark);
  }
  finish_state_transfer(/*installed=*/true);
  // Anything the kept suffix already quorate can execute right away on top
  // of the installed state.
  try_execute();
  return true;
}

}  // namespace tolerance::consensus
