#include "tolerance/consensus/minbft_messages.hpp"

#include <sstream>

namespace tolerance::consensus {
namespace {

std::string hex(const crypto::Digest& d) { return crypto::to_hex(d); }

}  // namespace

std::string Request::payload() const {
  std::ostringstream os;
  os << "req|" << client << '|' << request_id << '|' << operation;
  return os.str();
}

crypto::Digest Request::digest() const {
  return crypto::Sha256::hash(payload());
}

crypto::Digest Prepare::body_digest() const {
  std::ostringstream os;
  os << "prepare|" << view << '|' << seq << '|' << hex(request.digest());
  return crypto::Sha256::hash(os.str());
}

crypto::Digest Commit::body_digest() const {
  std::ostringstream os;
  os << "commit|" << view << '|' << seq << '|' << replica << '|'
     << hex(request_digest) << '|' << leader_ui.replica << ':'
     << leader_ui.counter;
  return crypto::Sha256::hash(os.str());
}

std::string Reply::payload() const {
  std::ostringstream os;
  os << "reply|" << replica << '|' << client << '|' << request_id << '|'
     << result;
  return os.str();
}

crypto::Digest Checkpoint::body_digest() const {
  std::ostringstream os;
  os << "checkpoint|" << replica << '|' << last_executed << '|'
     << hex(state_digest);
  return crypto::Sha256::hash(os.str());
}

std::string ReqViewChange::payload() const {
  std::ostringstream os;
  os << "reqviewchange|" << replica << '|' << from_view << '|' << to_view;
  return os.str();
}

std::string StateResponse::payload() const {
  std::ostringstream os;
  os << "stateresponse|" << replica << '|' << last_executed << '|'
     << hex(state_digest);
  return os.str();
}

crypto::Digest ViewChange::body_digest() const {
  std::ostringstream os;
  os << "viewchange|" << replica << '|' << to_view << '|' << stable_seq << '|'
     << prepared.size();
  for (const PreparedProof& p : prepared) {
    os << '|' << p.prepare.seq << ':' << hex(p.prepare.request.digest());
  }
  return crypto::Sha256::hash(os.str());
}

crypto::Digest NewView::body_digest() const {
  std::ostringstream os;
  os << "newview|" << leader << '|' << view << '|' << proofs.size() << '|'
     << reproposed.size();
  for (const Prepare& p : reproposed) {
    os << '|' << p.seq << ':' << hex(p.request.digest());
  }
  return crypto::Sha256::hash(os.str());
}

}  // namespace tolerance::consensus
