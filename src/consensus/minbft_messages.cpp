#include "tolerance/consensus/minbft_messages.hpp"

#include <atomic>
#include <sstream>

namespace tolerance::consensus {
namespace {

std::string hex(const crypto::Digest& d) { return crypto::to_hex(d); }

std::atomic<std::uint64_t> g_memo_computed{0};
std::atomic<std::uint64_t> g_memo_saved{0};

}  // namespace

DigestMemoStats digest_memo_stats() {
  return {g_memo_computed.load(std::memory_order_relaxed),
          g_memo_saved.load(std::memory_order_relaxed)};
}

void reset_digest_memo_stats() {
  g_memo_computed.store(0, std::memory_order_relaxed);
  g_memo_saved.store(0, std::memory_order_relaxed);
}

namespace detail {

void DigestMemo::note_computed() {
  g_memo_computed.fetch_add(1, std::memory_order_relaxed);
}

void DigestMemo::note_saved() {
  g_memo_saved.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::string Request::payload() const {
  std::ostringstream os;
  os << "req|" << client << '|' << request_id << '|' << operation;
  return os.str();
}

crypto::Digest Request::digest() const {
  // Binds the signature too, not just the signed payload: this digest keys
  // the verified-request cache and feeds the batch digest, so two requests
  // with the same payload but different signature bytes (e.g. an in-flight
  // corruption of a view-change proof) must never alias — aliasing would let
  // a cached verdict for the genuine request vouch for the corrupted copy,
  // and replicas with different cache contents would then disagree.
  return memo_.get([this] {
    crypto::Sha256 h;
    h.update(payload());
    std::ostringstream os;
    os << "|sig|" << signature.signer << '|' << hex(signature.tag);
    h.update(os.str());
    return h.finalize();
  });
}

crypto::Digest Prepare::batch_digest() const {
  return batch_memo_.get([this] {
    crypto::Sha256 h;
    h.update("batch|");
    for (const Request& r : requests) {
      const crypto::Digest d = r.digest();
      h.update(d.data(), d.size());
    }
    return h.finalize();
  });
}

crypto::Digest Prepare::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "prepare|" << view << '|' << seq << '|' << requests.size() << '|'
       << hex(batch_digest());
    return crypto::Sha256::hash(os.str());
  });
}

crypto::Digest Commit::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "commit|" << view << '|' << seq << '|' << replica << '|'
       << hex(batch_digest) << '|' << leader_ui.replica << ':'
       << leader_ui.counter;
    return crypto::Sha256::hash(os.str());
  });
}

std::string Reply::payload() const {
  std::ostringstream os;
  os << "reply|" << replica << '|' << client << '|' << request_id << '|'
     << result << '|' << (speculative ? "spec" : "final");
  return os.str();
}

crypto::Digest Checkpoint::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "checkpoint|" << replica << '|' << last_executed << '|'
       << hex(state_digest);
    return crypto::Sha256::hash(os.str());
  });
}

std::string ReqViewChange::payload() const {
  std::ostringstream os;
  os << "reqviewchange|" << replica << '|' << from_view << '|' << to_view;
  return os.str();
}

std::string Overloaded::payload() const {
  std::ostringstream os;
  os << "overloaded|" << replica << '|' << client << '|' << request_id << '|'
     << retry_after_ms << '|' << static_cast<unsigned>(mode);
  return os.str();
}

std::string StateResponse::payload() const {
  std::ostringstream os;
  os << "stateresponse|" << replica << '|' << last_executed << '|'
     << prefix_ops << '|' << hex(state_digest) << '|' << anchor_seq << '|'
     << anchor_ops << '|' << hex(anchor_digest);
  return os.str();
}

crypto::Digest ViewChange::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "viewchange|" << replica << '|' << to_view << '|' << stable_seq
       << '|' << checkpoint_cert.size() << '|' << prepared.size();
    for (const Checkpoint& c : checkpoint_cert) {
      os << '|' << c.replica << ':' << c.last_executed << ':'
         << hex(c.state_digest) << ':' << c.ui.replica << ':' << c.ui.epoch
         << ':' << c.ui.counter << ':' << hex(c.ui.certificate);
    }
    // Bind every field the view-change reproposal selection keys on — the
    // prepare's view, its leader UI, and (through the batch digest, which
    // folds in signature-binding request digests) the full request contents.
    // A relaying Byzantine leader who corrupts any of them in flight breaks
    // the proof sender's USIG certificate instead of steering honest
    // replicas' assemble_reproposals toward a null batch.
    for (const PreparedProof& p : prepared) {
      os << '|' << p.prepare.view << ':' << p.prepare.seq << ':'
         << hex(p.prepare.batch_digest()) << ':' << p.prepare.ui.replica
         << ':' << p.prepare.ui.epoch << ':' << p.prepare.ui.counter << ':'
         << hex(p.prepare.ui.certificate);
    }
    return crypto::Sha256::hash(os.str());
  });
}

crypto::Digest NewView::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "newview|" << leader << '|' << view << '|' << proofs.size() << '|'
       << reproposed.size();
    for (const Prepare& p : reproposed) {
      os << '|' << p.seq << ':' << hex(p.batch_digest());
    }
    return crypto::Sha256::hash(os.str());
  });
}

}  // namespace tolerance::consensus
