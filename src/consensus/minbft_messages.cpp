#include "tolerance/consensus/minbft_messages.hpp"

#include <atomic>
#include <sstream>

namespace tolerance::consensus {
namespace {

std::string hex(const crypto::Digest& d) { return crypto::to_hex(d); }

std::atomic<std::uint64_t> g_memo_computed{0};
std::atomic<std::uint64_t> g_memo_saved{0};

}  // namespace

DigestMemoStats digest_memo_stats() {
  return {g_memo_computed.load(std::memory_order_relaxed),
          g_memo_saved.load(std::memory_order_relaxed)};
}

void reset_digest_memo_stats() {
  g_memo_computed.store(0, std::memory_order_relaxed);
  g_memo_saved.store(0, std::memory_order_relaxed);
}

namespace detail {

void DigestMemo::note_computed() {
  g_memo_computed.fetch_add(1, std::memory_order_relaxed);
}

void DigestMemo::note_saved() {
  g_memo_saved.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace detail

std::string Request::payload() const {
  std::ostringstream os;
  os << "req|" << client << '|' << request_id << '|' << operation;
  return os.str();
}

crypto::Digest Request::digest() const {
  return memo_.get([this] { return crypto::Sha256::hash(payload()); });
}

crypto::Digest Prepare::batch_digest() const {
  return batch_memo_.get([this] {
    crypto::Sha256 h;
    h.update("batch|");
    for (const Request& r : requests) {
      const crypto::Digest d = r.digest();
      h.update(d.data(), d.size());
    }
    return h.finalize();
  });
}

crypto::Digest Prepare::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "prepare|" << view << '|' << seq << '|' << requests.size() << '|'
       << hex(batch_digest());
    return crypto::Sha256::hash(os.str());
  });
}

crypto::Digest Commit::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "commit|" << view << '|' << seq << '|' << replica << '|'
       << hex(batch_digest) << '|' << leader_ui.replica << ':'
       << leader_ui.counter;
    return crypto::Sha256::hash(os.str());
  });
}

std::string Reply::payload() const {
  std::ostringstream os;
  os << "reply|" << replica << '|' << client << '|' << request_id << '|'
     << result;
  return os.str();
}

crypto::Digest Checkpoint::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "checkpoint|" << replica << '|' << last_executed << '|'
       << hex(state_digest);
    return crypto::Sha256::hash(os.str());
  });
}

std::string ReqViewChange::payload() const {
  std::ostringstream os;
  os << "reqviewchange|" << replica << '|' << from_view << '|' << to_view;
  return os.str();
}

std::string StateResponse::payload() const {
  std::ostringstream os;
  os << "stateresponse|" << replica << '|' << last_executed << '|'
     << hex(state_digest);
  return os.str();
}

crypto::Digest ViewChange::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "viewchange|" << replica << '|' << to_view << '|' << stable_seq
       << '|' << prepared.size();
    for (const PreparedProof& p : prepared) {
      os << '|' << p.prepare.seq << ':' << hex(p.prepare.batch_digest());
    }
    return crypto::Sha256::hash(os.str());
  });
}

crypto::Digest NewView::body_digest() const {
  return body_memo_.get([this] {
    std::ostringstream os;
    os << "newview|" << leader << '|' << view << '|' << proofs.size() << '|'
       << reproposed.size();
    for (const Prepare& p : reproposed) {
      os << '|' << p.seq << ':' << hex(p.batch_digest());
    }
    return crypto::Sha256::hash(os.str());
  });
}

}  // namespace tolerance::consensus
