#include "tolerance/consensus/raft.hpp"

#include <algorithm>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus::raft {

RaftNode::RaftNode(NodeId id, std::vector<NodeId> peers, RaftConfig config,
                   RaftNet& net, Rng rng)
    : id_(id), peers_(std::move(peers)), config_(config), net_(&net),
      rng_(rng) {
  peers_.erase(std::remove(peers_.begin(), peers_.end(), id_), peers_.end());
}

void RaftNode::start() { reset_election_timer(); }

void RaftNode::crash() {
  crashed_ = true;
  if (election_timer_armed_) net_->cancel(election_timer_);
  if (heartbeat_timer_armed_) net_->cancel(heartbeat_timer_);
  election_timer_armed_ = false;
  heartbeat_timer_armed_ = false;
}

void RaftNode::restart() {
  TOL_ENSURE(crashed_, "restart requires a crashed node");
  crashed_ = false;
  // Volatile state resets; term/vote/log survive (stable storage).
  role_ = Role::Follower;
  commit_index_ = 0;
  last_applied_ = 0;
  reset_election_timer();
}

void RaftNode::reset_election_timer() {
  if (election_timer_armed_) net_->cancel(election_timer_);
  const double timeout = rng_.uniform(config_.election_timeout_min,
                                      config_.election_timeout_max);
  election_timer_armed_ = true;
  election_timer_ = net_->schedule(timeout, [this]() {
    election_timer_armed_ = false;
    if (crashed_ || role_ == Role::Leader) return;
    become_candidate();
  });
}

void RaftNode::become_follower(Term term) {
  role_ = Role::Follower;
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
  }
  if (heartbeat_timer_armed_) {
    net_->cancel(heartbeat_timer_);
    heartbeat_timer_armed_ = false;
  }
  reset_election_timer();
}

void RaftNode::become_candidate() {
  role_ = Role::Candidate;
  ++term_;
  voted_for_ = id_;
  votes_ = 1;
  reset_election_timer();
  RequestVote rv{term_, id_, last_log_index(), last_log_term()};
  for (NodeId p : peers_) net_->send(id_, p, RaftMsg{rv});
  if (majority() == 1) become_leader();  // single-node cluster
}

void RaftNode::become_leader() {
  role_ = Role::Leader;
  next_index_.clear();
  match_index_.clear();
  for (NodeId p : peers_) {
    next_index_[p] = last_log_index() + 1;
    match_index_[p] = 0;
  }
  if (election_timer_armed_) {
    net_->cancel(election_timer_);
    election_timer_armed_ = false;
  }
  send_heartbeats();
}

void RaftNode::send_heartbeats() {
  if (crashed_ || role_ != Role::Leader) return;
  for (NodeId p : peers_) replicate_to(p);
  heartbeat_timer_armed_ = true;
  heartbeat_timer_ = net_->schedule(config_.heartbeat_interval, [this]() {
    heartbeat_timer_armed_ = false;
    send_heartbeats();
  });
}

void RaftNode::replicate_to(NodeId peer) {
  const Index next = next_index_[peer];
  AppendEntries ae;
  ae.term = term_;
  ae.leader = id_;
  ae.prev_log_index = next - 1;
  ae.prev_log_term =
      ae.prev_log_index == 0 ? 0 : log_[ae.prev_log_index - 1].term;
  for (Index i = next; i <= last_log_index(); ++i) {
    ae.entries.push_back(log_[i - 1]);
  }
  ae.leader_commit = commit_index_;
  net_->send(id_, peer, RaftMsg{ae});
}

std::optional<Index> RaftNode::propose(const std::string& command) {
  if (crashed_ || role_ != Role::Leader) return std::nullopt;
  log_.push_back({term_, command});
  const Index index = last_log_index();
  for (NodeId p : peers_) replicate_to(p);
  if (majority() == 1) {
    advance_commit();
  }
  return index;
}

void RaftNode::on_message(NodeId from, const RaftMsg& msg) {
  if (crashed_) return;
  std::visit(
      [&](const auto& m) {
        using T = std::decay_t<decltype(m)>;
        if constexpr (std::is_same_v<T, RequestVote>) {
          if (m.term > term_) become_follower(m.term);
          VoteReply reply{term_, id_, false};
          const bool log_ok =
              m.last_log_term > last_log_term() ||
              (m.last_log_term == last_log_term() &&
               m.last_log_index >= last_log_index());
          if (m.term == term_ && log_ok &&
              (!voted_for_.has_value() || *voted_for_ == m.candidate)) {
            voted_for_ = m.candidate;
            reply.granted = true;
            reset_election_timer();
          }
          net_->send(id_, from, RaftMsg{reply});
        } else if constexpr (std::is_same_v<T, VoteReply>) {
          if (m.term > term_) {
            become_follower(m.term);
            return;
          }
          if (role_ == Role::Candidate && m.term == term_ && m.granted) {
            if (++votes_ >= majority()) become_leader();
          }
        } else if constexpr (std::is_same_v<T, AppendEntries>) {
          if (m.term > term_ ||
              (m.term == term_ && role_ == Role::Candidate)) {
            become_follower(m.term);
          }
          AppendReply reply{term_, id_, false, 0};
          if (m.term == term_) {
            reset_election_timer();
            const bool prev_ok =
                m.prev_log_index == 0 ||
                (m.prev_log_index <= last_log_index() &&
                 log_[m.prev_log_index - 1].term == m.prev_log_term);
            if (prev_ok) {
              // Append/overwrite entries (log-matching property).
              Index idx = m.prev_log_index;
              for (const LogEntry& e : m.entries) {
                ++idx;
                if (idx <= last_log_index()) {
                  if (log_[idx - 1].term != e.term) {
                    log_.resize(idx - 1);
                    log_.push_back(e);
                  }
                } else {
                  log_.push_back(e);
                }
              }
              reply.success = true;
              reply.match_index = m.prev_log_index + m.entries.size();
              if (m.leader_commit > commit_index_) {
                commit_index_ = std::min<Index>(m.leader_commit,
                                                last_log_index());
                apply_committed();
              }
            }
          }
          net_->send(id_, from, RaftMsg{reply});
        } else {
          static_assert(std::is_same_v<T, AppendReply>, "unhandled message");
          if (m.term > term_) {
            become_follower(m.term);
            return;
          }
          if (role_ != Role::Leader || m.term != term_) return;
          if (m.success) {
            match_index_[m.follower] =
                std::max(match_index_[m.follower], m.match_index);
            next_index_[m.follower] = match_index_[m.follower] + 1;
            advance_commit();
          } else {
            next_index_[m.follower] =
                std::max<Index>(1, next_index_[m.follower] - 1);
            replicate_to(m.follower);
          }
        }
      },
      msg);
}

void RaftNode::advance_commit() {
  // Find the highest index replicated on a majority with an entry from the
  // current term (Raft's commitment rule).
  for (Index n = last_log_index(); n > commit_index_; --n) {
    if (log_[n - 1].term != term_) continue;
    int count = 1;  // self
    for (const auto& [peer, match] : match_index_) {
      (void)peer;
      if (match >= n) ++count;
    }
    if (count >= majority()) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftNode::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    if (apply_) apply_(last_applied_, log_[last_applied_ - 1].command);
  }
}

// ---------------------------------------------------------------------------
// RaftCluster
// ---------------------------------------------------------------------------

RaftCluster::RaftCluster(int num_nodes, RaftConfig config, std::uint64_t seed,
                         net::LinkConfig link)
    : config_(config), net_(seed, link) {
  TOL_ENSURE(num_nodes >= 1, "need at least one node");
  std::vector<NodeId> ids;
  for (int i = 0; i < num_nodes; ++i) ids.push_back(static_cast<NodeId>(i));
  for (NodeId id : ids) {
    auto node = std::make_unique<RaftNode>(id, ids, config_, net_,
                                           Rng(seed ^ (id + 77)));
    RaftNode* raw = node.get();
    nodes_[id] = std::move(node);
    net_.register_host(id, [raw](NodeId from, const RaftMsg& m) {
      raw->on_message(from, m);
    });
  }
  for (auto& [id, node] : nodes_) {
    (void)id;
    node->start();
  }
}

RaftNode& RaftCluster::node(NodeId id) {
  const auto it = nodes_.find(id);
  TOL_ENSURE(it != nodes_.end(), "unknown node id");
  return *it->second;
}

std::vector<NodeId> RaftCluster::node_ids() const {
  std::vector<NodeId> ids;
  for (const auto& [id, node] : nodes_) {
    (void)node;
    ids.push_back(id);
  }
  return ids;
}

std::optional<NodeId> RaftCluster::leader() const {
  std::optional<NodeId> best;
  Term best_term = 0;
  int leaders_in_best_term = 0;
  for (const auto& [id, node] : nodes_) {
    if (node->crashed() || node->role() != Role::Leader) continue;
    if (node->term() > best_term) {
      best_term = node->term();
      best = id;
      leaders_in_best_term = 1;
    } else if (node->term() == best_term) {
      ++leaders_in_best_term;
    }
  }
  if (leaders_in_best_term != 1) return std::nullopt;
  return best;
}

void RaftCluster::run_for(double seconds) {
  net_.run_until(net_.now() + seconds);
}

std::optional<NodeId> RaftCluster::await_leader(double max_seconds) {
  const double deadline = net_.now() + max_seconds;
  while (net_.now() < deadline) {
    run_for(0.1);
    const auto l = leader();
    if (l.has_value()) return l;
  }
  return std::nullopt;
}

}  // namespace tolerance::consensus::raft
