#include "tolerance/consensus/minbft_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

namespace {

int default_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

MinBftRuntime::Options runtime_options(const net::NetworkProfile& profile,
                                       std::uint64_t seed,
                                       double flush_window) {
  MinBftRuntime::Options o;
  o.replica_link = profile.replica_link;
  o.client_link = profile.client_link;
  o.seed = seed;
  // One knob drives both lanes: the sim lane charges the modelled MAC cost
  // once per window, the wall-clock lane actually coalesces frames.
  o.flush_window = flush_window;
  return o;
}

}  // namespace

MinBftRuntimeCluster::MinBftRuntimeCluster(int num_replicas,
                                           MinBftConfig config,
                                           std::uint64_t seed,
                                           const net::NetworkProfile& profile,
                                           int threads)
    : config_(config), seed_(seed), profile_(profile),
      pool_(default_threads(threads)),
      runtime_(pool_, runtime_options(profile, seed, config.mac_flush_window)),
      registry_(std::make_shared<crypto::KeyRegistry>()) {
  TOL_ENSURE(num_replicas >= 2 * config.f + 1,
             "MinBFT requires N >= 2f + 1 (hybrid failure model)");
  for (int i = 0; i < num_replicas; ++i) {
    membership_.push_back(static_cast<ReplicaId>(i));
  }
  // All key material is registered before any traffic flows; after this
  // loop the registry is only read (verify), which is thread-safe.
  for (ReplicaId id : membership_) {
    auto replica = std::make_unique<MinBftReplica>(
        id, membership_, config_, runtime_, registry_, seed_ ^ id);
    MinBftReplica* raw = replica.get();
    replicas_[id] = std::move(replica);
    runtime_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
      raw->on_message(from, m);
    });
  }
}

MinBftRuntimeCluster::~MinBftRuntimeCluster() { stop(); }

void MinBftRuntimeCluster::stop() {
  // Quiesce the transport FIRST: no event loop may touch a replica or
  // client object once their destruction (member teardown) begins.
  runtime_.stop();
}

MinBftReplica& MinBftRuntimeCluster::replica(ReplicaId id) {
  const auto it = replicas_.find(id);
  TOL_ENSURE(it != replicas_.end(), "unknown replica id");
  return *it->second;
}

void MinBftRuntimeCluster::submit_next(ClientSlot* slot) {
  // Runs on the client's serial event loop (initial posts and completion
  // handlers both execute there), so slot state needs no lock.
  if (load_stopped_.load(std::memory_order_relaxed)) return;
  std::ostringstream op;
  op << "w:" << slot->id << ":" << slot->serial++;
  slot->client->submit(
      op.str(), [this, slot](std::uint64_t, const std::string&, double lat) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        slot->latencies.push_back(lat);
        submit_next(slot);
      });
}

RuntimeLoadStats MinBftRuntimeCluster::run_closed_loop(
    int num_clients, double duration_seconds, int in_flight_per_client) {
  TOL_ENSURE(num_clients >= 1, "need at least one client");
  TOL_ENSURE(duration_seconds > 0.0, "duration must be positive");
  TOL_ENSURE(in_flight_per_client >= 1, "need at least one in-flight request");

  for (int c = 0; c < num_clients; ++c) {
    auto slot = std::make_unique<ClientSlot>();
    slot->id = static_cast<ClientId>(10000 + c);
    slot->client = std::make_unique<MinBftClient>(
        slot->id, config_.f, membership_, runtime_, registry_,
        seed_ ^ slot->id, config_.request_retry_timeout,
        config_.spec_fallback_timeout);
    MinBftClient* raw = slot->client.get();
    runtime_.register_host(slot->id,
                           [raw](net::NodeId from, const MinBftMsg& m) {
                             raw->on_message(from, m);
                           });
    clients_.push_back(std::move(slot));
  }

  const auto start = std::chrono::steady_clock::now();
  for (auto& slot : clients_) {
    ClientSlot* raw = slot.get();
    runtime_.post(raw->id, [this, raw, in_flight_per_client]() {
      for (int k = 0; k < in_flight_per_client; ++k) submit_next(raw);
    });
  }

  // Wait out the measurement window on the calling thread, driving the
  // profile's partition flaps if it has any (a rotating minority of f
  // replicas is split off — the cluster keeps its 2f+1 quorum and must
  // ride through on view changes / retransmissions).
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_seconds));
  if (profile_.flap_interval > 0.0 && config_.f > 0) {
    std::size_t flap_round = 0;
    auto next_flap =
        start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(profile_.flap_interval));
    while (std::chrono::steady_clock::now() < deadline) {
      if (std::chrono::steady_clock::now() >= next_flap) {
        std::vector<net::NodeId> minority, majority;
        for (std::size_t i = 0; i < membership_.size(); ++i) {
          const ReplicaId id = membership_[i];
          if ((i + flap_round) % membership_.size() <
              static_cast<std::size_t>(config_.f)) {
            minority.push_back(id);
          } else {
            majority.push_back(id);
          }
        }
        runtime_.partition({majority, minority});
        std::this_thread::sleep_for(
            std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                std::chrono::duration<double>(profile_.flap_duration)));
        runtime_.heal_partition();
        ++flap_round;
        next_flap += std::chrono::duration_cast<
            std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(profile_.flap_interval));
      } else {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }
  } else {
    std::this_thread::sleep_until(deadline);
  }

  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  load_stopped_.store(true, std::memory_order_relaxed);
  runtime_.stop();  // drain loops; latencies vectors are safe to read now

  RuntimeLoadStats stats;
  stats.completed = completed;
  stats.elapsed_seconds = elapsed;
  stats.throughput = elapsed > 0.0 ? static_cast<double>(completed) / elapsed
                                   : 0.0;
  std::vector<double> lat;
  for (const auto& slot : clients_) {
    lat.insert(lat.end(), slot->latencies.begin(), slot->latencies.end());
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0.0;
    for (double v : lat) sum += v;
    stats.mean_latency = sum / static_cast<double>(lat.size());
    stats.p50_latency = lat[lat.size() / 2];
    stats.p99_latency = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  stats.dropped = runtime_.dropped_messages();
  stats.reordered = runtime_.reordered_messages();
  stats.overflow_dropped = runtime_.overflow_dropped();
  stats.decode_errors = runtime_.decode_errors();
  stats.handler_errors = runtime_.handler_errors();
  stats.auth_failures = runtime_.auth_failures();
  stats.macs_computed = runtime_.macs_computed();
  stats.bundled_frames = runtime_.bundled_frames();
  for (const auto& slot : clients_) {
    stats.completed_speculative += slot->client->completed_speculative_count();
  }
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    stats.spec_executions += replica->spec_executions();
    stats.spec_rollbacks += replica->spec_rollbacks();
  }
  return stats;
}

}  // namespace tolerance::consensus
