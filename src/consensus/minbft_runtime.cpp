#include "tolerance/consensus/minbft_runtime.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

namespace {

int default_threads(int requested) {
  if (requested > 0) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return std::max(4, static_cast<int>(hw));
}

MinBftRuntime::Options runtime_options(const net::NetworkProfile& profile,
                                       std::uint64_t seed,
                                       double flush_window) {
  MinBftRuntime::Options o;
  o.replica_link = profile.replica_link;
  o.client_link = profile.client_link;
  o.seed = seed;
  // One knob drives both lanes: the sim lane charges the modelled MAC cost
  // once per window, the wall-clock lane actually coalesces frames.
  o.flush_window = flush_window;
  return o;
}

}  // namespace

MinBftRuntimeCluster::MinBftRuntimeCluster(int num_replicas,
                                           MinBftConfig config,
                                           std::uint64_t seed,
                                           const net::NetworkProfile& profile,
                                           int threads)
    : config_(config), seed_(seed), profile_(profile),
      pool_(default_threads(threads)),
      runtime_(pool_, runtime_options(profile, seed, config.mac_flush_window)),
      registry_(std::make_shared<crypto::KeyRegistry>()) {
  // The wall-clock lane always runs the hardened recovery protocol: a
  // restarted replica stays passive until its first state install (so it
  // cannot contradict votes it cast before the crash), and the commit
  // repair clock runs (frames genuinely vanish on this lane, and a single
  // lost commit otherwise wedges a peer forever).
  config_.passive_recovery = true;
  if (config_.commit_repair_timeout <= 0.0) config_.commit_repair_timeout = 1.0;
  TOL_ENSURE(num_replicas >= 2 * config.f + 1,
             "MinBFT requires N >= 2f + 1 (hybrid failure model)");
  for (int i = 0; i < num_replicas; ++i) {
    membership_.push_back(static_cast<ReplicaId>(i));
  }
  // All key material is registered before any traffic flows; a restart
  // re-registers the same (id, seed)-derived keys, which is idempotent.
  for (ReplicaId id : membership_) wire_replica(id);
}

void MinBftRuntimeCluster::wire_replica(ReplicaId id) {
  auto replica = std::make_unique<MinBftReplica>(
      id, membership_, config_, runtime_, registry_, seed_ ^ id,
      usig_epochs_[id]);
  MinBftReplica* raw = replica.get();
  replicas_[id] = std::move(replica);
  runtime_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
    raw->on_message(from, m);
  });
}

MinBftRuntimeCluster::~MinBftRuntimeCluster() { stop(); }

void MinBftRuntimeCluster::stop() {
  // Quiesce the transport FIRST: no event loop may touch a replica or
  // client object once their destruction (member teardown) begins.
  runtime_.stop();
}

MinBftReplica& MinBftRuntimeCluster::replica(ReplicaId id) {
  std::lock_guard<std::mutex> lk(chaos_mu_);
  const auto it = replicas_.find(id);
  TOL_ENSURE(it != replicas_.end(), "unknown (or crashed) replica id");
  return *it->second;
}

void MinBftRuntimeCluster::set_chaos(ChaosOptions chaos) {
  chaos.plan.normalize();
  std::lock_guard<std::mutex> lk(chaos_mu_);
  chaos_ = std::move(chaos);
  chaos_set_ = true;
  // Re-seed the injector from the plan so a chaos failure is re-runnable
  // from (plan, seed) alone.
  injector_ = std::make_unique<net::FaultInjector>(chaos_.plan.seed);
  runtime_.set_fault_injector(injector_.get());
}

net::FaultInjector& MinBftRuntimeCluster::injector() {
  std::lock_guard<std::mutex> lk(chaos_mu_);
  if (!injector_) {
    injector_ = std::make_unique<net::FaultInjector>(seed_ ^ 0xc4a05ull);
    runtime_.set_fault_injector(injector_.get());
  }
  return *injector_;
}

void MinBftRuntimeCluster::crash_replica(ReplicaId id) {
  std::unique_ptr<MinBftReplica> victim;
  {
    std::lock_guard<std::mutex> lk(chaos_mu_);
    const auto it = replicas_.find(id);
    if (it == replicas_.end()) return;  // already down
    // Preserve the final published counters for watchdog diagnostics.
    const MinBftReplica::ProgressCounters& p = it->second->progress();
    ReplicaDiag& d = last_diag_[id];
    d.replica = id;
    d.alive = false;
    d.committed_ops = p.committed_ops.load(std::memory_order_relaxed);
    d.view = p.view.load(std::memory_order_relaxed);
    d.st_attempts = p.st_attempts.load(std::memory_order_relaxed);
    d.st_completions = p.st_completions.load(std::memory_order_relaxed);
    d.st_giveups = p.st_giveups.load(std::memory_order_relaxed);
    victim = std::move(it->second);
    replicas_.erase(it);
    ++crashes_;
  }
  // Quiesce outside the lock: detach_host waits for any in-flight dispatch
  // burst to park, after which nothing can reach the object again (stray
  // timers post into a host that no longer exists and are dropped).
  runtime_.detach_host(id);
  victim.reset();
}

void MinBftRuntimeCluster::restart_replica(ReplicaId id) {
  MinBftReplica* raw = nullptr;
  {
    std::lock_guard<std::mutex> lk(chaos_mu_);
    if (replicas_.count(id) > 0) return;  // not crashed
    // The bumped epoch orders every post-restart UI after every pre-crash
    // one, so peers' monotonic-counter windows accept the rebooted signer
    // without remembering where its old counter stood.
    ++usig_epochs_[id];
    wire_replica(id);
    raw = replicas_[id].get();
    ++restarts_;
    last_diag_[id].alive = true;
  }
  // Rejoin via state transfer from the replica's own (fresh) event loop —
  // all protocol mutation stays loop-confined.
  runtime_.post(id, [raw]() { raw->request_state_transfer(); });
}

bool MinBftRuntimeCluster::is_crashed(ReplicaId id) const {
  std::lock_guard<std::mutex> lk(chaos_mu_);
  return replicas_.count(id) == 0;
}

std::vector<ReplicaId> MinBftRuntimeCluster::live_replicas() const {
  std::lock_guard<std::mutex> lk(chaos_mu_);
  std::vector<ReplicaId> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, replica] : replicas_) {
    (void)replica;
    ids.push_back(id);
  }
  return ids;
}

std::vector<ReplicaDiag> MinBftRuntimeCluster::sample_diags_locked() {
  std::vector<ReplicaDiag> diags;
  diags.reserve(membership_.size());
  for (const ReplicaId id : membership_) {
    const auto it = replicas_.find(id);
    if (it != replicas_.end()) {
      const MinBftReplica::ProgressCounters& p = it->second->progress();
      ReplicaDiag d;
      d.replica = id;
      d.alive = true;
      d.committed_ops = p.committed_ops.load(std::memory_order_relaxed);
      d.view = p.view.load(std::memory_order_relaxed);
      d.st_attempts = p.st_attempts.load(std::memory_order_relaxed);
      d.st_completions = p.st_completions.load(std::memory_order_relaxed);
      d.st_giveups = p.st_giveups.load(std::memory_order_relaxed);
      last_diag_[id] = d;
      diags.push_back(d);
    } else if (last_diag_.count(id) > 0) {
      diags.push_back(last_diag_[id]);
    }
  }
  return diags;
}

std::uint64_t MinBftRuntimeCluster::high_water_committed_locked() const {
  std::uint64_t high = 0;
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    high = std::max(high, replica->progress().committed_ops.load(
                              std::memory_order_relaxed));
  }
  return high;
}

void MinBftRuntimeCluster::submit_next(ClientSlot* slot) {
  // Runs on the client's serial event loop (initial posts and completion
  // handlers both execute there), so slot state needs no lock.
  if (load_stopped_.load(std::memory_order_relaxed)) return;
  std::ostringstream op;
  op << "w:" << slot->id << ":" << slot->serial++;
  slot->client->submit(
      op.str(), [this, slot](std::uint64_t, const std::string&, double lat) {
        completed_.fetch_add(1, std::memory_order_relaxed);
        slot->latencies.push_back(lat);
        submit_next(slot);
      });
}

RuntimeLoadStats MinBftRuntimeCluster::run_closed_loop(
    int num_clients, double duration_seconds, int in_flight_per_client) {
  TOL_ENSURE(num_clients >= 1, "need at least one client");
  TOL_ENSURE(duration_seconds > 0.0, "duration must be positive");
  TOL_ENSURE(in_flight_per_client >= 1, "need at least one in-flight request");

  for (int c = 0; c < num_clients; ++c) {
    auto slot = std::make_unique<ClientSlot>();
    slot->id = static_cast<ClientId>(10000 + c);
    slot->client = std::make_unique<MinBftClient>(
        slot->id, config_.f, membership_, runtime_, registry_,
        seed_ ^ slot->id, config_.request_retry_timeout,
        config_.spec_fallback_timeout);
    MinBftClient* raw = slot->client.get();
    runtime_.register_host(slot->id,
                           [raw](net::NodeId from, const MinBftMsg& m) {
                             raw->on_message(from, m);
                           });
    clients_.push_back(std::move(slot));
  }

  const auto start = std::chrono::steady_clock::now();
  for (auto& slot : clients_) {
    ClientSlot* raw = slot.get();
    runtime_.post(raw->id, [this, raw, in_flight_per_client]() {
      for (int k = 0; k < in_flight_per_client; ++k) submit_next(raw);
    });
  }

  // One control loop waits out the measurement window, driving everything
  // the run needs a supervisor for: the profile's partition flaps (a
  // rotating minority of f replicas is split off — the cluster keeps its
  // 2f+1 quorum and must ride through), the chaos plan's scheduled faults,
  // timed expiry of injector rules, recovery-time tracking for restarted
  // replicas, and watchdog sampling.
  const auto deadline =
      start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(duration_seconds));
  const double poll =
      chaos_set_ && chaos_.poll_interval > 0.0 ? chaos_.poll_interval : 0.01;
  if (chaos_set_ && chaos_.watchdog_window > 0.0) {
    watchdog_ = std::make_unique<LivenessWatchdog>(chaos_.watchdog_window);
  }
  // Injector rules armed by plan events, keyed by their expiry offset.
  struct PendingUndo {
    double at = 0.0;
    net::FaultEvent event;
  };
  std::vector<PendingUndo> undos;
  std::size_t next_event = 0;
  const bool flapping = profile_.flap_interval > 0.0 && config_.f > 0;
  std::size_t flap_round = 0;
  double next_flap = flapping ? profile_.flap_interval : 0.0;
  double flap_end = -1.0;  ///< < 0: no partition currently applied
  while (std::chrono::steady_clock::now() < deadline) {
    const double t =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    // -- profile flaps (non-blocking: heal is an expiry, not a sleep) ------
    if (flapping && flap_end >= 0.0 && t >= flap_end) {
      runtime_.heal_partition();
      flap_end = -1.0;
    }
    if (flapping && flap_end < 0.0 && t >= next_flap) {
      std::vector<net::NodeId> minority, majority;
      for (std::size_t i = 0; i < membership_.size(); ++i) {
        const ReplicaId id = membership_[i];
        if ((i + flap_round) % membership_.size() <
            static_cast<std::size_t>(config_.f)) {
          minority.push_back(id);
        } else {
          majority.push_back(id);
        }
      }
      runtime_.partition({majority, minority});
      flap_end = t + profile_.flap_duration;
      ++flap_round;
      next_flap += profile_.flap_interval;
    }
    // -- chaos plan events --------------------------------------------------
    while (chaos_set_ && next_event < chaos_.plan.events.size() &&
           chaos_.plan.events[next_event].at <= t) {
      const net::FaultEvent& ev = chaos_.plan.events[next_event++];
      switch (ev.kind) {
        case net::FaultKind::kCrash:
          crash_replica(ev.node);
          break;
        case net::FaultKind::kRestart: {
          restart_replica(ev.node);
          std::lock_guard<std::mutex> lk(chaos_mu_);
          recovering_.push_back({ev.node, t, high_water_committed_locked()});
          break;
        }
        case net::FaultKind::kCorruptFrames:
          injector().set_corrupt(ev.node, ev.rate);
          if (ev.duration > 0.0) undos.push_back({t + ev.duration, ev});
          break;
        case net::FaultKind::kDropPair:
          injector().set_drop(ev.node, ev.peer, ev.rate);
          if (ev.duration > 0.0) undos.push_back({t + ev.duration, ev});
          break;
        case net::FaultKind::kStallLoop: {
          // Occupy the node's serial loop: every message and timer for it
          // queues behind this busy job, exactly a wedged-but-alive node.
          const double stall = ev.duration;
          runtime_.post(ev.node, [stall]() {
            const auto until =
                std::chrono::steady_clock::now() +
                std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(stall));
            while (std::chrono::steady_clock::now() < until) {
            }
          });
          break;
        }
      }
    }
    // -- expire injector rules ---------------------------------------------
    for (std::size_t i = 0; i < undos.size();) {
      if (undos[i].at <= t) {
        const net::FaultEvent& ev = undos[i].event;
        if (ev.kind == net::FaultKind::kCorruptFrames) {
          injector().set_corrupt(ev.node, 0.0);
        } else {
          injector().set_drop(ev.node, ev.peer, 0.0);
        }
        undos[i] = undos.back();
        undos.pop_back();
      } else {
        ++i;
      }
    }
    // -- recovery tracking + watchdog sampling ------------------------------
    {
      std::lock_guard<std::mutex> lk(chaos_mu_);
      for (std::size_t i = 0; i < recovering_.size();) {
        const PendingRecovery& rec = recovering_[i];
        const auto it = replicas_.find(rec.id);
        const bool caught_up =
            it != replicas_.end() &&
            it->second->progress().committed_ops.load(
                std::memory_order_relaxed) >= rec.target;
        if (caught_up) {
          recovery_seconds_.push_back(t - rec.started);
          recovering_[i] = recovering_.back();
          recovering_.pop_back();
        } else {
          ++i;
        }
      }
      if (watchdog_) watchdog_->sample(t, sample_diags_locked());
    }
    std::this_thread::sleep_for(std::chrono::duration_cast<
                                std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(poll)));
  }
  if (flapping && flap_end >= 0.0) runtime_.heal_partition();

  const std::uint64_t completed = completed_.load(std::memory_order_relaxed);
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  load_stopped_.store(true, std::memory_order_relaxed);
  runtime_.stop();  // drain loops; latencies vectors are safe to read now

  RuntimeLoadStats stats;
  stats.completed = completed;
  stats.elapsed_seconds = elapsed;
  stats.throughput = elapsed > 0.0 ? static_cast<double>(completed) / elapsed
                                   : 0.0;
  std::vector<double> lat;
  for (const auto& slot : clients_) {
    lat.insert(lat.end(), slot->latencies.begin(), slot->latencies.end());
  }
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0.0;
    for (double v : lat) sum += v;
    stats.mean_latency = sum / static_cast<double>(lat.size());
    stats.p50_latency = lat[lat.size() / 2];
    stats.p99_latency = lat[std::min(lat.size() - 1, lat.size() * 99 / 100)];
  }
  stats.dropped = runtime_.dropped_messages();
  stats.reordered = runtime_.reordered_messages();
  stats.overflow_dropped = runtime_.overflow_dropped();
  stats.decode_errors = runtime_.decode_errors();
  stats.handler_errors = runtime_.handler_errors();
  stats.auth_failures = runtime_.auth_failures();
  stats.macs_computed = runtime_.macs_computed();
  stats.bundled_frames = runtime_.bundled_frames();
  for (const auto& slot : clients_) {
    stats.completed_speculative += slot->client->completed_speculative_count();
  }
  // The runtime is quiesced: loop-confined replica state is safe to read
  // from here (stop() joined every drain), and the chaos maps are no longer
  // mutated by anyone.
  std::lock_guard<std::mutex> lk(chaos_mu_);
  for (const auto& [id, replica] : replicas_) {
    (void)id;
    stats.spec_executions += replica->spec_executions();
    stats.spec_rollbacks += replica->spec_rollbacks();
    stats.st_attempts += replica->state_transfer_attempts();
    stats.st_retries += replica->state_transfer_retries();
    stats.st_completions += replica->state_transfer_completions();
    stats.st_giveups += replica->state_transfer_giveups();
  }
  // Replicas that died and never came back still contributed transfers.
  for (const auto& [id, diag] : last_diag_) {
    if (replicas_.count(id) > 0) continue;
    stats.st_attempts += diag.st_attempts;
    stats.st_completions += diag.st_completions;
    stats.st_giveups += diag.st_giveups;
  }
  stats.crashes = crashes_;
  stats.restarts = restarts_;
  if (injector_) {
    stats.injected_drops = injector_->injected_drops();
    stats.injected_corruptions = injector_->injected_corruptions();
  }
  if (watchdog_) {
    stats.stall_reports = watchdog_->reports().size();
    stats.longest_commit_gap = watchdog_->longest_gap();
  }
  stats.recovery_seconds = recovery_seconds_;
  return stats;
}

}  // namespace tolerance::consensus
