#include "tolerance/consensus/watchdog.hpp"

#include <algorithm>
#include <sstream>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

std::string StallReport::describe() const {
  std::ostringstream os;
  os << "stall at t=" << at << "s (" << stalled_for
     << "s without commit advance, high-water " << max_committed << "):";
  for (const ReplicaDiag& d : replicas) {
    os << " [r" << d.replica << (d.alive ? "" : " CRASHED")
       << " committed=" << d.committed_ops << " view=" << d.view
       << " st=" << d.st_completions << '/' << d.st_attempts;
    if (d.st_giveups > 0) os << " giveups=" << d.st_giveups;
    os << ']';
  }
  return os.str();
}

LivenessWatchdog::LivenessWatchdog(double window) : window_(window) {
  TOL_ENSURE(window > 0.0, "stall window must be positive");
}

bool LivenessWatchdog::sample(double now,
                              const std::vector<ReplicaDiag>& diags) {
  std::uint64_t high = 0;
  for (const ReplicaDiag& d : diags) {
    // Crashed replicas keep their last published count; including it in the
    // high-water mark is fine (it was genuinely committed), but only a LIVE
    // advance below resets the stall clock.
    high = std::max(high, d.committed_ops);
  }
  if (!primed_) {
    primed_ = true;
    last_advance_ = now;
    next_report_ = window_;
    max_committed_ = high;
    return false;
  }
  if (high > max_committed_) {
    max_committed_ = high;
    longest_gap_ = std::max(longest_gap_, now - last_advance_);
    last_advance_ = now;
    next_report_ = window_;
    return false;
  }
  const double stalled = now - last_advance_;
  longest_gap_ = std::max(longest_gap_, stalled);
  if (stalled < next_report_) return false;
  StallReport r;
  r.at = now;
  r.stalled_for = stalled;
  r.max_committed = max_committed_;
  r.replicas = diags;
  reports_.push_back(std::move(r));
  // Re-arm one window out so a persistent wedge produces a report per
  // window instead of one per 5 ms poll.
  next_report_ = stalled + window_;
  return true;
}

}  // namespace tolerance::consensus
