#include "tolerance/consensus/minbft_client.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

MinBftClient::MinBftClient(ClientId id, int f, std::vector<ReplicaId> replicas,
                           MinBftTransport& net,
                           std::shared_ptr<crypto::KeyRegistry> registry,
                           std::uint64_t key_seed, double retry_timeout)
    : id_(id), f_(f), replicas_(std::move(replicas)), net_(&net),
      registry_(std::move(registry)),
      signer_(id, registry_->register_principal(id, key_seed)),
      retry_timeout_(retry_timeout) {
  TOL_ENSURE(f_ >= 0, "f must be non-negative");
  TOL_ENSURE(!replicas_.empty(), "need at least one replica");
}

void MinBftClient::set_replicas(std::vector<ReplicaId> replicas) {
  TOL_ENSURE(!replicas.empty(), "need at least one replica");
  replicas_ = std::move(replicas);
}

std::uint64_t MinBftClient::submit(const std::string& operation,
                                   CompletionHandler on_complete) {
  Request req;
  req.client = id_;
  req.request_id = ++next_request_id_;
  req.operation = operation;
  net_->consume_cpu(id_, crypto::KeyRegistry::kSignCost);
  req.signature = signer_.sign(req.payload());
  Pending pending;
  pending.request = req;
  pending.on_complete = std::move(on_complete);
  pending.submitted_at = net_->now();
  pending_[req.request_id] = std::move(pending);
  transmit(req);
  arm_retry(req.request_id);
  return req.request_id;
}

void MinBftClient::transmit(const Request& request) {
  for (ReplicaId r : replicas_) {
    net_->send(id_, r, MinBftMsg{request});
  }
}

void MinBftClient::cancel(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  net_->cancel(it->second.retry_timer);
  pending_.erase(it);
}

void MinBftClient::arm_retry(std::uint64_t request_id) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  it->second.retry_timer = net_->schedule(id_, retry_timeout_, [this, request_id]() {
    const auto p = pending_.find(request_id);
    if (p == pending_.end()) return;  // already completed
    transmit(p->second.request);      // Texec retransmission (Table 8)
    arm_retry(request_id);
  });
}

void MinBftClient::on_message(net::NodeId, const MinBftMsg& msg) {
  const Reply* reply = std::get_if<Reply>(&msg);
  if (reply == nullptr || reply->client != id_) return;
  const auto it = pending_.find(reply->request_id);
  if (it == pending_.end()) return;
  net_->consume_cpu(id_, crypto::KeyRegistry::kVerifyCost);
  if (!registry_->verify(reply->payload(), reply->signature)) return;
  auto& votes = it->second.votes[reply->result];
  votes.insert(reply->replica);
  if (static_cast<int>(votes.size()) >= f_ + 1) {
    const double latency = net_->now() - it->second.submitted_at;
    ++completed_;
    net_->cancel(it->second.retry_timer);
    auto handler = std::move(it->second.on_complete);
    const std::string result = reply->result;
    const std::uint64_t rid = reply->request_id;
    pending_.erase(it);
    if (handler) handler(rid, result, latency);
  }
}

}  // namespace tolerance::consensus
