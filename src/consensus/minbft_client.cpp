#include "tolerance/consensus/minbft_client.hpp"

#include <algorithm>
#include <cmath>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {
namespace {

/// Backoff floor when a rejection carries no hint (seconds), and the cap
/// the exponential never exceeds.  The cap scales with the server's hint —
/// a replica advertising an 8 s retry-after is describing sustained
/// overload, and a storm of clients re-probing it every fixed 10 s would
/// keep the pressure loop pinned — but never drops below kBackoffCap so a
/// tiny hint cannot turn the backoff into a busy-wait.
constexpr double kBackoffFloor = 0.1;
constexpr double kBackoffCap = 10.0;
constexpr double kBackoffCapHintFactor = 8.0;
/// Cap, in multiples of the flat retry timeout, on how far a retry-after
/// hint may stretch the plain retransmission timer (sub-quorum rejections
/// and post-backoff re-probes).  Bounded so possibly-Byzantine hints can
/// delay retries but never stop them.
constexpr double kRetryStretchCap = 8.0;
/// Stream salt separating the client's jitter stream from any other
/// consumer of the same key seed.
constexpr std::uint64_t kJitterSalt = 0x6f766c64u;  // "ovld"

}  // namespace

MinBftClient::MinBftClient(ClientId id, int f, std::vector<ReplicaId> replicas,
                           MinBftTransport& net,
                           std::shared_ptr<crypto::KeyRegistry> registry,
                           std::uint64_t key_seed, double retry_timeout,
                           double spec_fallback_timeout)
    : id_(id), f_(f), replicas_(std::move(replicas)), net_(&net),
      registry_(std::move(registry)),
      signer_(id, registry_->register_principal(id, key_seed)),
      retry_timeout_(retry_timeout),
      spec_fallback_timeout_(spec_fallback_timeout),
      rng_(Rng::stream(key_seed ^ kJitterSalt, id)) {
  TOL_ENSURE(f_ >= 0, "f must be non-negative");
  TOL_ENSURE(!replicas_.empty(), "need at least one replica");
}

void MinBftClient::set_replicas(std::vector<ReplicaId> replicas) {
  TOL_ENSURE(!replicas.empty(), "need at least one replica");
  replicas_ = std::move(replicas);
}

std::uint64_t MinBftClient::submit(const std::string& operation,
                                   CompletionHandler on_complete) {
  Request req;
  req.client = id_;
  req.request_id = ++next_request_id_;
  req.operation = operation;
  net_->consume_cpu(id_, crypto::KeyRegistry::kSignCost);
  req.signature = signer_.sign(req.payload());
  Pending pending;
  pending.request = req;
  pending.on_complete = std::move(on_complete);
  pending.submitted_at = net_->now();
  pending_[req.request_id] = std::move(pending);
  transmit(req);
  arm_retry(req.request_id);
  return req.request_id;
}

void MinBftClient::transmit(const Request& request) {
  for (ReplicaId r : replicas_) {
    net_->send(id_, r, MinBftMsg{request});
  }
}

void MinBftClient::cancel(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  net_->cancel(it->second.retry_timer);
  net_->cancel(it->second.spec_fallback_timer);
  pending_.erase(it);
}

void MinBftClient::arm_retry(std::uint64_t request_id, double delay) {
  auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  if (delay < 0.0) delay = retry_timeout_;
  it->second.retry_timer = net_->schedule(id_, delay, [this, request_id]() {
    const auto p = pending_.find(request_id);
    if (p == pending_.end()) return;  // already completed
    transmit(p->second.request);      // Texec retransmission (Table 8)
    arm_retry(request_id);
  });
}

bool MinBftClient::all_n_vouched(const Pending& pending,
                                 const std::string& result) const {
  std::set<ReplicaId> vouched;
  const auto sv = pending.spec_votes.find(result);
  if (sv != pending.spec_votes.end()) {
    vouched.insert(sv->second.begin(), sv->second.end());
  }
  const auto fv = pending.votes.find(result);
  if (fv != pending.votes.end()) {
    vouched.insert(fv->second.begin(), fv->second.end());
  }
  return vouched.size() >= replicas_.size();
}

void MinBftClient::handle_overloaded(const Overloaded& ov) {
  if (ov.client != id_) return;
  const auto it = pending_.find(ov.request_id);
  if (it == pending_.end()) return;
  // Rejections are authenticated like replies: the signer must be the
  // claimed replica and the tag must verify over the payload (which binds
  // mode, hint, and request identity) — a forged or replayed Overloaded
  // never reaches the backoff quorum.
  if (ov.signature.signer != ov.replica) return;
  net_->consume_cpu(id_, crypto::KeyRegistry::kVerifyCost);
  if (!registry_->verify(ov.payload(), ov.signature)) return;
  ++overloaded_replies_;
  Pending& p = it->second;
  p.overloaded_from.insert(ov.replica);
  p.retry_after_hint_ms = std::max(p.retry_after_hint_ms, ov.retry_after_ms);
  // f+1 distinct rejecters guarantee at least one honest replica really is
  // overloaded; fewer may all be Byzantine, so retries must keep flowing —
  // but on the stretched timer below, not the short flat one.  Without the
  // stretch a client whose rejections are slow to arrive (queued behind
  // the very overload they describe) keeps retransmitting on the flat
  // timer, feeding the queue that delays its own rejection quorum.  The
  // stretch is bounded by 8x the base timeout, so sub-quorum (possibly
  // all-Byzantine) evidence can delay retries but never stop them.
  if (static_cast<int>(p.overloaded_from.size()) < f_ + 1) {
    if (!p.backing_off) {
      net_->cancel(p.retry_timer);
      arm_retry(ov.request_id, stretched_retry_delay(p));
    }
    return;
  }
  p.was_shed = true;
  if (p.backing_off) return;
  schedule_backoff(ov.request_id);
}

double MinBftClient::stretched_retry_delay(const Pending& p) const {
  const double hint_s = static_cast<double>(p.retry_after_hint_ms) / 1000.0;
  return std::max(retry_timeout_,
                  std::min(hint_s, kRetryStretchCap * retry_timeout_));
}

void MinBftClient::schedule_backoff(std::uint64_t request_id) {
  const auto it = pending_.find(request_id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  net_->cancel(p.retry_timer);
  p.backing_off = true;
  const double hint = static_cast<double>(p.retry_after_hint_ms) / 1000.0;
  const double base = std::max(hint, kBackoffFloor);
  const double cap = std::max(kBackoffCap, kBackoffCapHintFactor * base);
  const double capped = std::min(base * std::pow(2.0, p.backoff_attempts), cap);
  ++p.backoff_attempts;
  const double delay = capped * rng_.uniform(0.5, 1.5);
  last_backoff_delay_ = delay;
  ++overload_backoffs_;
  p.retry_timer = net_->schedule(id_, delay, [this, request_id]() {
    const auto pit = pending_.find(request_id);
    if (pit == pending_.end()) return;  // completed while backing off
    pit->second.backing_off = false;
    pit->second.overloaded_from.clear();  // a fresh quorum is required
    transmit(pit->second.request);
    // Re-probe on the stretched timer, not the flat one: the cluster just
    // declared overload, so its answer (serve or reject) may be queued
    // behind the very backlog it described, and flat-timer retries here
    // would feed the queue that delays this client's own rejection quorum.
    arm_retry(request_id, stretched_retry_delay(pit->second));
  });
}

void MinBftClient::on_message(net::NodeId, const MinBftMsg& msg) {
  if (const Overloaded* ov = std::get_if<Overloaded>(&msg)) {
    handle_overloaded(*ov);
    return;
  }
  const Reply* reply = std::get_if<Reply>(&msg);
  if (reply == nullptr || reply->client != id_) return;
  const auto it = pending_.find(reply->request_id);
  if (it == pending_.end()) return;
  net_->consume_cpu(id_, crypto::KeyRegistry::kVerifyCost);
  if (!registry_->verify(reply->payload(), reply->signature)) return;
  bool complete = false;
  if (reply->speculative) {
    // Fast path: a tentative result is safe only when every one of the n
    // replicas vouches for it — then any future view-change quorum (f+1
    // proofs) contains at least one honest replica still carrying the
    // prepared entry, so the operation is re-proposed at the same sequence
    // number instead of rolling back for good.  A FINAL reply is a strictly
    // stronger vouch (the entry is committed at that replica), so the all-n
    // count merges both kinds per result.
    auto& votes = it->second.spec_votes[reply->result];
    votes.insert(reply->replica);
    complete = all_n_vouched(it->second, reply->result);
    if (complete) ++completed_speculative_;
    if (!complete && !it->second.spec_fallback_armed &&
        spec_fallback_timeout_ > 0.0) {
      // The quorum is open but not closed; if it does not close quickly,
      // retransmit once — replicas re-reply from cache (FINAL after the
      // commit), so the f+1 rule finishes the request without waiting out
      // the full retry timeout.
      it->second.spec_fallback_armed = true;
      const std::uint64_t rid = reply->request_id;
      it->second.spec_fallback_timer =
          net_->schedule(id_, spec_fallback_timeout_, [this, rid]() {
            const auto p = pending_.find(rid);
            if (p == pending_.end()) return;
            // Two jobs, neither a full broadcast (which would make all n
            // replicas re-serve their caches at the exact moment the
            // cluster is struggling): (a) nudge the replicas that never
            // answered — maybe the reply was lost; (b) re-ask f+1 of the
            // replicas that DID answer, because a straggler that missed
            // its PREPARE cannot answer at all, and with replies
            // suppressed after the tentative send, only a re-ask makes
            // committed replicas come back FINAL so the f+1 rule can
            // finish the request without the all-n quorum.
            std::set<ReplicaId> heard;
            for (const auto& [result, ids] : p->second.spec_votes) {
              heard.insert(ids.begin(), ids.end());
            }
            for (const auto& [result, ids] : p->second.votes) {
              heard.insert(ids.begin(), ids.end());
            }
            for (ReplicaId r : replicas_) {
              if (heard.count(r) == 0) {
                net_->send(id_, r, MinBftMsg{p->second.request});
              }
            }
            int asked = 0;
            for (ReplicaId r : heard) {
              if (asked >= f_ + 1) break;
              net_->send(id_, r, MinBftMsg{p->second.request});
              ++asked;
            }
          });
    }
  } else {
    auto& votes = it->second.votes[reply->result];
    votes.insert(reply->replica);
    complete = static_cast<int>(votes.size()) >= f_ + 1;
    if (!complete && all_n_vouched(it->second, reply->result)) {
      // The final reply closed an all-n tentative quorum that was one
      // vouch short — still the fast path from the client's point of view.
      complete = true;
      ++completed_speculative_;
    }
  }
  if (complete) {
    const double latency = net_->now() - it->second.submitted_at;
    ++completed_;
    net_->cancel(it->second.retry_timer);
    net_->cancel(it->second.spec_fallback_timer);
    auto handler = std::move(it->second.on_complete);
    const std::string result = reply->result;
    const std::uint64_t rid = reply->request_id;
    pending_.erase(it);
    if (handler) handler(rid, result, latency);
  }
}

}  // namespace tolerance::consensus
