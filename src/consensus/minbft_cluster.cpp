#include "tolerance/consensus/minbft_cluster.hpp"

#include <sstream>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

MinBftCluster::MinBftCluster(int num_replicas, MinBftConfig config,
                             std::uint64_t seed, net::LinkConfig link)
    : config_(config), seed_(seed), net_(seed, link),
      registry_(std::make_shared<crypto::KeyRegistry>()) {
  TOL_ENSURE(num_replicas >= 2 * config.f + 1,
             "MinBFT requires N >= 2f + 1 (hybrid failure model)");
  std::vector<ReplicaId> membership;
  for (int i = 0; i < num_replicas; ++i) {
    membership.push_back(static_cast<ReplicaId>(i));
  }
  next_replica_id_ = static_cast<ReplicaId>(num_replicas);
  for (ReplicaId id : membership) wire_replica(id, membership);
  controller_client_ = std::make_unique<MinBftClient>(
      9999, config_.f, membership, net_, registry_, seed ^ 0x9999,
      config_.request_retry_timeout);
  net_.register_host(9999, [this](net::NodeId from, const MinBftMsg& m) {
    controller_client_->on_message(from, m);
  });
}

void MinBftCluster::wire_replica(ReplicaId id,
                                 std::vector<ReplicaId> membership) {
  auto replica = std::make_unique<MinBftReplica>(
      id, std::move(membership), config_, net_, registry_, seed_ ^ id);
  MinBftReplica* raw = replica.get();
  replicas_[id] = std::move(replica);
  net_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
    raw->on_message(from, m);
  });
}

MinBftReplica& MinBftCluster::replica(ReplicaId id) {
  const auto it = replicas_.find(id);
  TOL_ENSURE(it != replicas_.end(), "unknown replica id");
  return *it->second;
}

bool MinBftCluster::has_replica(ReplicaId id) const {
  return replicas_.count(id) > 0;
}

std::vector<ReplicaId> MinBftCluster::replica_ids() const {
  std::vector<ReplicaId> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, r] : replicas_) {
    (void)r;
    ids.push_back(id);
  }
  return ids;
}

std::vector<ReplicaId> MinBftCluster::current_membership() const {
  // Use an arbitrary live replica's view of the membership.
  TOL_ENSURE(!replicas_.empty(), "cluster has no replicas");
  return replicas_.begin()->second->membership();
}

MinBftClient& MinBftCluster::add_client() {
  const ClientId id = next_client_id_++;
  auto client = std::make_unique<MinBftClient>(
      id, config_.f, current_membership(), net_, registry_, seed_ ^ id,
      config_.request_retry_timeout);
  MinBftClient* raw = client.get();
  net_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
    raw->on_message(from, m);
  });
  clients_.push_back(std::move(client));
  return *clients_.back();
}

std::optional<std::string> MinBftCluster::submit_and_run(
    MinBftClient& client, const std::string& op, std::size_t max_events) {
  std::optional<std::string> result;
  client.submit(op, [&result](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  std::size_t events = 0;
  while (!result.has_value() && events < max_events && net_.step()) ++events;
  return result;
}

ReplicaId MinBftCluster::join_new_replica() {
  const ReplicaId id = next_replica_id_++;
  // Spin up the replica with the membership it will have after the join so
  // that it recognises itself as a member.
  std::vector<ReplicaId> membership = current_membership();
  membership.push_back(id);
  wire_replica(id, membership);
  std::ostringstream op;
  op << "join:" << id;
  controller_client_->set_replicas(current_membership());
  const auto res = submit_and_run(*controller_client_, op.str());
  TOL_ENSURE(res.has_value(), "join request did not complete");
  replicas_[id]->request_state_transfer();
  net_.run(200000);
  return id;
}

void MinBftCluster::evict_replica(ReplicaId id) {
  std::ostringstream op;
  op << "evict:" << id;
  controller_client_->set_replicas(current_membership());
  const auto res = submit_and_run(*controller_client_, op.str());
  TOL_ENSURE(res.has_value(), "evict request did not complete");
  net_.unregister_host(id);
  replicas_.erase(id);
}

void MinBftCluster::recover_replica(ReplicaId id) {
  TOL_ENSURE(replicas_.count(id) > 0, "unknown replica id");
  const std::vector<ReplicaId> membership = current_membership();
  net_.unregister_host(id);
  replicas_.erase(id);
  wire_replica(id, membership);
  replicas_[id]->request_state_transfer();
  net_.run(200000);
}

void MinBftCluster::crash_replica(ReplicaId id) {
  net_.unregister_host(id);
}

void MinBftCluster::run_for(double seconds) {
  net_.run_until(net_.now() + seconds);
}

}  // namespace tolerance::consensus
