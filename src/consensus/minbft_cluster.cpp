#include "tolerance/consensus/minbft_cluster.hpp"

#include <sstream>

#include "tolerance/util/ensure.hpp"

namespace tolerance::consensus {

MinBftCluster::MinBftCluster(int num_replicas, MinBftConfig config,
                             std::uint64_t seed, net::LinkConfig link)
    : config_(config), seed_(seed), net_(seed, link),
      registry_(std::make_shared<crypto::KeyRegistry>()) {
  TOL_ENSURE(num_replicas >= 2 * config.f + 1,
             "MinBFT requires N >= 2f + 1 (hybrid failure model)");
  std::vector<ReplicaId> membership;
  for (int i = 0; i < num_replicas; ++i) {
    membership.push_back(static_cast<ReplicaId>(i));
  }
  next_replica_id_ = static_cast<ReplicaId>(num_replicas);
  for (ReplicaId id : membership) wire_replica(id, membership);
  controller_client_ = std::make_unique<MinBftClient>(
      9999, config_.f, membership, net_, registry_, seed ^ 0x9999,
      config_.request_retry_timeout, config_.spec_fallback_timeout);
  net_.register_host(9999, [this](net::NodeId from, const MinBftMsg& m) {
    controller_client_->on_message(from, m);
  });
}

void MinBftCluster::wire_replica(ReplicaId id,
                                 std::vector<ReplicaId> membership) {
  // usig_epochs_[id] default-initializes to 0 on first wiring; recoveries
  // increment it before re-wiring so the fresh USIG supersedes the old one.
  auto replica = std::make_unique<MinBftReplica>(
      id, std::move(membership), config_, net_, registry_, seed_ ^ id,
      usig_epochs_[id]);
  MinBftReplica* raw = replica.get();
  replicas_[id] = std::move(replica);
  net_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
    raw->on_message(from, m);
  });
}

MinBftReplica& MinBftCluster::replica(ReplicaId id) {
  const auto it = replicas_.find(id);
  TOL_ENSURE(it != replicas_.end(), "unknown replica id");
  return *it->second;
}

bool MinBftCluster::has_replica(ReplicaId id) const {
  return replicas_.count(id) > 0;
}

std::vector<ReplicaId> MinBftCluster::replica_ids() const {
  std::vector<ReplicaId> ids;
  ids.reserve(replicas_.size());
  for (const auto& [id, r] : replicas_) {
    (void)r;
    ids.push_back(id);
  }
  return ids;
}

std::vector<ReplicaId> MinBftCluster::current_membership() const {
  // Use the most advanced replica's view of the membership: a silent or
  // recovering replica may not have executed the latest join/evict yet.
  TOL_ENSURE(!replicas_.empty(), "cluster has no replicas");
  const MinBftReplica* best = nullptr;
  for (const auto& [id, r] : replicas_) {
    (void)id;
    if (best == nullptr || r->last_executed() > best->last_executed()) {
      best = r.get();
    }
  }
  return best->membership();
}

MinBftClient& MinBftCluster::add_client() {
  return add_client(config_.request_retry_timeout);
}

MinBftClient& MinBftCluster::add_client(double retry_timeout) {
  const ClientId id = next_client_id_++;
  auto client = std::make_unique<MinBftClient>(
      id, config_.f, current_membership(), net_, registry_, seed_ ^ id,
      retry_timeout, config_.spec_fallback_timeout);
  MinBftClient* raw = client.get();
  net_.register_host(id, [raw](net::NodeId from, const MinBftMsg& m) {
    raw->on_message(from, m);
  });
  clients_.push_back(std::move(client));
  return *clients_.back();
}

std::optional<std::string> MinBftCluster::submit_and_run(
    MinBftClient& client, const std::string& op, std::size_t max_events) {
  std::optional<std::string> result;
  client.submit(op, [&result](std::uint64_t, const std::string& r, double) {
    result = r;
  });
  std::size_t events = 0;
  while (!result.has_value() && events < max_events && net_.step()) ++events;
  return result;
}

ReplicaId MinBftCluster::join_new_replica() {
  const ReplicaId id = next_replica_id_++;
  // Spin up the replica with the membership it will have after the join so
  // that it recognises itself as a member.
  std::vector<ReplicaId> membership = current_membership();
  membership.push_back(id);
  wire_replica(id, membership);
  std::ostringstream op;
  op << "join:" << id;
  controller_client_->set_replicas(current_membership());
  const auto res = submit_and_run(*controller_client_, op.str());
  TOL_ENSURE(res.has_value(), "join request did not complete");
  replicas_[id]->request_state_transfer();
  net_.run(200000);
  return id;
}

void MinBftCluster::evict_replica(ReplicaId id) {
  std::ostringstream op;
  op << "evict:" << id;
  controller_client_->set_replicas(current_membership());
  const auto res = submit_and_run(*controller_client_, op.str());
  TOL_ENSURE(res.has_value(), "evict request did not complete");
  net_.unregister_host(id);
  replicas_.erase(id);
}

bool MinBftCluster::order_with_budget(const std::string& op,
                                      std::size_t max_events) {
  controller_client_->set_replicas(current_membership());
  std::optional<std::string> result;
  const std::uint64_t rid = controller_client_->submit(
      op, [&result](std::uint64_t, const std::string& r, double) {
        result = r;
      });
  // Deadline in simulated time: enough for a leader crash to be resolved
  // (view changes) plus a few client retransmissions.  A stalled quorum
  // keeps re-arming retry timers so the queue never drains on its own — the
  // deadline (with the event budget as a hard backstop) bounds the attempt.
  const double deadline = net_.now() + 2.0 * config_.view_change_timeout +
                          4.0 * config_.request_retry_timeout;
  std::size_t events = 0;
  while (!result.has_value() && events < max_events &&
         net_.now() < deadline && net_.step()) {
    ++events;
  }
  if (!result.has_value()) controller_client_->cancel(rid);
  return result.has_value();
}

std::optional<ReplicaId> MinBftCluster::try_join_new_replica(
    std::size_t max_events) {
  const ReplicaId id = next_replica_id_++;
  std::vector<ReplicaId> membership = current_membership();
  membership.push_back(id);
  wire_replica(id, membership);
  std::ostringstream op;
  op << "join:" << id;
  if (!order_with_budget(op.str(), max_events)) {
    // Roll back the speculative wiring; the id is burned, never reused.
    net_.unregister_host(id);
    replicas_.erase(id);
    return std::nullopt;
  }
  replicas_[id]->request_state_transfer();
  net_.run(max_events);
  return id;
}

bool MinBftCluster::try_evict_replica(ReplicaId id, std::size_t max_events) {
  std::ostringstream op;
  op << "evict:" << id;
  if (!order_with_budget(op.str(), max_events)) return false;
  // No-ops for a ghost id (in the membership but never wired here).
  net_.unregister_host(id);
  replicas_.erase(id);
  return true;
}

void MinBftCluster::finalize_evict(ReplicaId id) {
  net_.unregister_host(id);
  replicas_.erase(id);
}

std::unique_ptr<MinBftReplica> MinBftCluster::evict_and_detach(ReplicaId id) {
  TOL_ENSURE(replicas_.count(id) > 0, "unknown replica id");
  std::ostringstream op;
  op << "evict:" << id;
  controller_client_->set_replicas(current_membership());
  const auto res = submit_and_run(*controller_client_, op.str());
  TOL_ENSURE(res.has_value(), "evict request did not complete");
  // Unregister the host so the network never routes into the detached
  // object once the caller destroys it; the detached replica can still
  // *send* (an attacker-controlled machine that was excluded from the
  // protocol but not powered off), and a test that wants it to receive
  // traffic can register its own forwarding handler.
  net_.unregister_host(id);
  auto detached = std::move(replicas_[id]);
  replicas_.erase(id);
  return detached;
}

void MinBftCluster::recover_replica(ReplicaId id) {
  TOL_ENSURE(replicas_.count(id) > 0, "unknown replica id");
  const std::vector<ReplicaId> membership = current_membership();
  net_.unregister_host(id);
  replicas_.erase(id);
  ++usig_epochs_[id];  // new container, new trusted-component lifetime
  wire_replica(id, membership);
  replicas_[id]->request_state_transfer();
  net_.run(200000);
}

void MinBftCluster::crash_replica(ReplicaId id) {
  net_.unregister_host(id);
}

void MinBftCluster::run_for(double seconds) {
  net_.run_until(net_.now() + seconds);
}

}  // namespace tolerance::consensus
