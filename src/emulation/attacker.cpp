#include "tolerance/emulation/attacker.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {

const IntrusionStep* Attacker::current_step(
    const ContainerProfile& profile) const {
  if (!target_.has_value()) return nullptr;
  if (step_index_ >= profile.intrusion_steps.size()) return nullptr;
  return &profile.intrusion_steps[step_index_];
}

bool Attacker::maybe_engage(int node_index, Rng& rng) {
  if (target_.has_value()) return false;  // one intrusion at a time
  if (!rng.bernoulli(config_.start_probability)) return false;
  target_ = node_index;
  step_index_ = 0;
  return true;
}

bool Attacker::advance(const ContainerProfile& profile) {
  TOL_ENSURE(target_.has_value(), "no intrusion in progress");
  ++step_index_;
  return step_index_ >= profile.intrusion_steps.size();
}

void Attacker::abort(int node_index) {
  if (target_.has_value() && *target_ == node_index) {
    target_.reset();
    step_index_ = 0;
  }
}

void Attacker::on_compromised() {
  target_.reset();
  step_index_ = 0;
}

CompromisedBehavior Attacker::choose_behavior(Rng& rng) {
  switch (rng.uniform_int(3)) {
    case 0: return CompromisedBehavior::Participate;
    case 1: return CompromisedBehavior::Silent;
    default: return CompromisedBehavior::RandomMessages;
  }
}

}  // namespace tolerance::emulation
