#include "tolerance/emulation/background.hpp"

#include <algorithm>

namespace tolerance::emulation {

int BackgroundWorkload::step(Rng& rng) {
  // Sessions age by one step; completed ones leave.
  for (double& r : remaining_) r -= 1.0;
  remaining_.erase(
      std::remove_if(remaining_.begin(), remaining_.end(),
                     [](double r) { return r <= 0.0; }),
      remaining_.end());
  // New arrivals with exponential session lengths.
  const int arrivals = rng.poisson(arrival_rate_);
  for (int i = 0; i < arrivals; ++i) {
    remaining_.push_back(rng.exponential(1.0 / mean_session_));
  }
  return load();
}

}  // namespace tolerance::emulation
