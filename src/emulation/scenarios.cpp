#include "tolerance/emulation/scenarios.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {
namespace {

using Kind = ScenarioEvent::Kind;

Scenario base_scenario(std::string name, std::string description) {
  Scenario s;
  s.name = std::move(name);
  s.description = std::move(description);
  s.horizon = 100;
  s.initial_nodes = 3;
  s.f = 1;
  s.max_nodes = 7;
  s.recovery_threshold = 0.76;
  s.epsilon_a = 0.9;
  // Table 8 defaults for the node model; the testbed mirrors them.
  s.node_params.p_attack = 0.1;
  s.node_params.p_crash_healthy = 1e-5;
  s.node_params.p_crash_compromised = 1e-3;
  s.node_params.p_update = 2e-2;
  s.node_params.eta = 2.0;
  s.testbed.p_crash_healthy = s.node_params.p_crash_healthy;
  s.testbed.p_crash_compromised = s.node_params.p_crash_compromised;
  s.testbed.p_update = s.node_params.p_update;
  s.testbed.attacker.start_probability = 0.1;
  return s;
}

std::vector<Scenario> build_catalog() {
  std::vector<Scenario> catalog;

  // 1. The paper's operating point, no scripted events: the stochastic
  // attacker of Table 6 against the closed loop.
  catalog.push_back(base_scenario(
      "baseline-intrusion",
      "Table 8 operating point; stochastic attacker only, no scripted events"));

  // 2. Three intrusions at staggered times, each against a different node,
  // while the background attacker keeps probing.
  {
    Scenario s = base_scenario(
        "staggered-intrusions",
        "three forced compromises at cycles 15/35/55 on top of the attacker");
    s.initial_nodes = 5;
    s.max_nodes = 9;
    for (int step : {15, 35, 55}) {
      ScenarioEvent e;
      e.step = step;
      e.kind = Kind::ForceCompromise;
      e.count = 1;
      e.behavior = CompromisedBehavior::Participate;
      s.events.push_back(e);
    }
    catalog.push_back(s);
  }

  // 3. Flapping IDS false-positive storms: bursts of alert noise on healthy
  // nodes, attacker off.  Exercises belief robustness — the controller
  // should ride the storms out without recovering the whole fleet.
  {
    Scenario s = base_scenario(
        "false-positive-storms",
        "no attacker; repeated IDS alert storms on healthy nodes");
    s.testbed.attacker.start_probability = 0.0;
    s.node_params.p_attack = 0.02;  // the belief prior still expects attacks
    for (int step : {10, 30, 50, 70}) {
      ScenarioEvent e;
      e.step = step;
      e.kind = Kind::AlertStorm;
      e.duration = 5;
      e.magnitude = 600.0;  // comparable to a real intrusion signature
      s.events.push_back(e);
    }
    catalog.push_back(s);
  }

  // 4. A correlated burst compromising f + 1 nodes in one cycle — beyond
  // the Prop. 1 budget.  Availability must dip and then recover as the
  // local level recovers nodes one slot at a time.
  {
    Scenario s = base_scenario(
        "correlated-burst-exceeds-f",
        "2f + 1 nodes compromised in one cycle — beyond both the Prop. 1 "
        "budget and the per-cycle recovery slots");
    s.initial_nodes = 5;
    s.f = 1;
    s.max_nodes = 9;
    ScenarioEvent e;
    e.step = 20;
    e.kind = Kind::ForceCompromise;
    e.count = 3;  // 2f + 1 > k recovery slots
    e.behavior = CompromisedBehavior::Participate;
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // 5. Silent saboteurs: a burst of compromises that stop participating in
  // consensus (behaviour (b) of §VIII-A) — including, with these node
  // indices, the current leader.  The local level's C2-alert detections
  // must recover them before the service probe degrades for long.
  {
    Scenario s = base_scenario(
        "silent-saboteurs",
        "f + 1 silent compromises incl. the leader; recovery restores "
        "consensus participation");
    s.initial_nodes = 5;
    s.f = 1;
    s.max_nodes = 9;
    s.horizon = 80;
    ScenarioEvent e;
    e.step = 20;
    e.kind = Kind::ForceCompromise;
    e.count = 2;
    e.behavior = CompromisedBehavior::Silent;
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // 6. Slow-loris: a long heavy background-load plateau drives the baseline
  // alert volume up and stresses the detector's load calibration.
  {
    Scenario s = base_scenario(
        "slow-loris",
        "sustained 4x background-load plateau; detector noise floor rises");
    s.horizon = 80;
    ScenarioEvent e;
    e.step = 15;
    e.kind = Kind::LoadSpike;
    e.duration = 40;
    e.magnitude = 240.0;  // ~4x the M/M/inf steady state of 80 sessions
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // 7. Crash wave: scripted crashes on top of elevated crash rates; drives
  // the evict/add churn path and the 2f + 1 membership floor.
  {
    Scenario s = base_scenario(
        "crash-wave",
        "scripted crashes + elevated crash rates; evict/add churn");
    s.initial_nodes = 5;
    s.max_nodes = 9;
    s.testbed.p_crash_healthy = 2e-3;
    s.testbed.p_crash_compromised = 2e-2;
    s.node_params.p_crash_healthy = 2e-3;
    s.node_params.p_crash_compromised = 2e-2;
    for (int step : {20, 21, 50}) {
      ScenarioEvent e;
      e.step = step;
      e.kind = Kind::ForceCrash;
      e.count = 1;
      s.events.push_back(e);
    }
    catalog.push_back(s);
  }

  // 8. Aggressive attacker: 4x intrusion-start rate and random-message
  // behaviour bias via repeated forced Byzantine compromises.
  {
    Scenario s = base_scenario(
        "aggressive-attacker",
        "4x intrusion rate plus scripted random-message compromises");
    s.initial_nodes = 5;
    s.max_nodes = 9;
    s.horizon = 80;
    s.testbed.attacker.start_probability = 0.4;
    s.node_params.p_attack = 0.4;
    for (int step : {25, 55}) {
      ScenarioEvent e;
      e.step = step;
      e.kind = Kind::ForceCompromise;
      e.count = 1;
      e.behavior = CompromisedBehavior::RandomMessages;
      s.events.push_back(e);
    }
    catalog.push_back(s);
  }

  // 9. Golden regression fixture: tiny horizon, fully deterministic-ish
  // mix of one storm and one forced compromise; its full decision trace is
  // pinned by tests/golden/scenario_golden_trace.txt.
  {
    Scenario s = base_scenario(
        "golden-small",
        "small fixed-seed fixture whose full trace is pinned in ctest");
    s.horizon = 40;
    s.initial_nodes = 3;
    s.max_nodes = 5;
    ScenarioEvent compromise;
    compromise.step = 10;
    compromise.kind = Kind::ForceCompromise;
    compromise.count = 1;
    compromise.behavior = CompromisedBehavior::Participate;
    s.events.push_back(compromise);
    ScenarioEvent storm;
    storm.step = 25;
    storm.kind = Kind::AlertStorm;
    storm.duration = 4;
    storm.magnitude = 500.0;
    s.events.push_back(storm);
    catalog.push_back(s);
  }

  // --- Service-boundary overload family (PR 8). --------------------------
  // All three keep the attacker quiet (the stress is client load, not
  // intrusions) and run with the admission valve enabled; the overload
  // bench re-runs them with admission_control cleared as the no-backpressure
  // baseline.  Request volumes are calibrated against the flood scenarios'
  // crypto cost model in ScenarioRunner (a replica sustains roughly 200
  // requests per 60 s cycle), so the 100x spike is genuinely past capacity.

  // 10. 100x request spike: 20 flood clients x 25 requests per cycle vs a
  // baseline probe load of ~5 — far beyond what the replicas can serve.
  {
    Scenario s = base_scenario(
        "load-spike-100x",
        "100x client request spike; the admission valve sheds the excess "
        "while the probe stays served");
    s.horizon = 30;
    s.testbed.attacker.start_probability = 0.0;
    s.node_params.p_attack = 0.02;
    s.admission_control = true;
    ScenarioEvent e;
    e.step = 6;
    e.kind = Kind::RequestFlood;
    e.count = 20;
    e.duration = 25;
    e.magnitude = 25.0;
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // 11. Synchronized retry storm: a smaller offered load, but every flood
  // client retransmits on a 1 s timer, so without backpressure the storm
  // feeds on its own queueing delay.  The jittered exponential backoff must
  // desynchronize and calm it.
  {
    Scenario s = base_scenario(
        "retry-storm",
        "synchronized 1 s client retransmissions amplify a spike; jittered "
        "backoff must calm the storm");
    s.horizon = 30;
    s.testbed.attacker.start_probability = 0.0;
    s.node_params.p_attack = 0.02;
    s.admission_control = true;
    ScenarioEvent e;
    e.step = 6;
    e.kind = Kind::RetryStorm;
    e.count = 20;
    e.duration = 20;
    e.magnitude = 10.0;
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // 12. Slow-loris request flood: many clients, each parking a few requests
  // with a retry timeout beyond the horizon.  The lingering requests tie up
  // queue slots instead of completing-and-leaving; the valve must keep the
  // backlog bounded so the probe still meets its per-cycle deadline.
  {
    Scenario s = base_scenario(
        "slow-loris-flood",
        "lingering no-retry request flood ties up queue slots; the valve "
        "bounds the backlog");
    s.horizon = 30;
    s.testbed.attacker.start_probability = 0.0;
    s.node_params.p_attack = 0.02;
    s.admission_control = true;
    ScenarioEvent e;
    e.step = 6;
    e.kind = Kind::SlowLorisFlood;
    e.count = 40;
    e.duration = 20;
    e.magnitude = 10.0;  // 400 lingering requests per cycle, ~2x capacity
    s.events.push_back(e);
    catalog.push_back(s);
  }

  // --- Controller-fault family (PR 9). -----------------------------------
  // All four run the level-2 CMDP re-solver asynchronously
  // (controller.async = true) and script faults against the *controller*
  // rather than the replicas.  They keep the crash-wave style elevated
  // crash rates so the level-2 loop (evict crashed, add replacements)
  // actually matters: the inline/no-failsafe baseline — which freezes the
  // level-2 step for the fault window — measurably degrades, while the
  // FRESH/HOLD/FALLBACK ladder keeps deciding every cycle.

  auto controller_base = [](std::string name, std::string description) {
    Scenario s = base_scenario(std::move(name), std::move(description));
    s.initial_nodes = 5;
    s.max_nodes = 9;
    s.horizon = 80;
    s.controller.async = true;
    s.testbed.p_crash_healthy = 2e-3;
    s.testbed.p_crash_compromised = 2e-2;
    s.node_params.p_crash_healthy = 2e-3;
    s.node_params.p_crash_compromised = 2e-2;
    return s;
  };

  // 13. Controller crash in the middle of an intrusion: the re-solver dies
  // for 30 cycles just before a forced compromise, long past the fallback
  // deadline — the Thm. 2 threshold failsafe must carry the loop until the
  // cold restart re-flips a fresh epoch.
  {
    Scenario s = controller_base(
        "controller-crash-mid-intrusion",
        "re-solver crashes for 30 cycles across a forced compromise; the "
        "threshold failsafe must engage until the cold restart");
    ScenarioEvent crash;
    crash.step = 18;
    crash.kind = Kind::ControllerCrash;
    crash.duration = 30;
    s.events.push_back(crash);
    ScenarioEvent compromise;
    compromise.step = 22;
    compromise.kind = Kind::ForceCompromise;
    compromise.count = 2;
    compromise.behavior = CompromisedBehavior::Participate;
    s.events.push_back(compromise);
    catalog.push_back(s);
  }

  // 14. GC pause: solves freeze for 24 cycles (they park, nothing publishes,
  // nothing launches).  Staleness climbs through HOLD into FALLBACK; the
  // parked solve flips in the moment the pause lifts.
  {
    Scenario s = controller_base(
        "controller-gc-pause",
        "24-cycle GC pause stalls every re-solve; HOLD then FALLBACK, with "
        "recovery on the first post-pause flip");
    ScenarioEvent stall;
    stall.step = 15;
    stall.kind = Kind::ControllerStall;
    stall.duration = 24;
    s.events.push_back(stall);
    ScenarioEvent compromise;
    compromise.step = 25;
    compromise.kind = Kind::ForceCompromise;
    compromise.count = 1;
    compromise.behavior = CompromisedBehavior::Participate;
    s.events.push_back(compromise);
    catalog.push_back(s);
  }

  // 15. Repeated solver failure: five consecutive re-solves come back
  // poisoned (infeasible).  The guard must reject every one (epoch never
  // flips to garbage) and the jittered backoff must still converge to a
  // good solve before the fallback deadline would be a steady state.
  {
    Scenario s = controller_base(
        "controller-solver-failures",
        "five consecutive poisoned re-solves; the guard rejects them all "
        "and jittered retries recover the epoch flow");
    // Cap the exponential backoff low enough that the sixth (good) solve
    // lands well inside the horizon even on the unluckiest jitter draws.
    s.controller.max_retry_backoff_cycles = 6;
    ScenarioEvent failure;
    failure.step = 5;
    failure.kind = Kind::SolverFailure;
    failure.count = 5;
    failure.duration = 25;  // inline-baseline freeze window equivalent
    s.events.push_back(failure);
    catalog.push_back(s);
  }

  // 16. Slow solve under churn: the LP takes 4 cycles against a 4-cycle
  // staleness budget while crashes churn the membership, so the loop
  // oscillates FRESH <-> HOLD without ever reaching FALLBACK.
  {
    Scenario s = controller_base(
        "controller-slow-solve-churn",
        "4-cycle solve latency vs a 4-cycle staleness budget under crash "
        "churn; HOLD cycles without fallback");
    s.controller.resolve_period = 6;
    s.controller.solve_latency_cycles = 4;
    s.controller.staleness_budget = 4;
    for (int step : {20, 21, 45}) {
      ScenarioEvent e;
      e.step = step;
      e.kind = Kind::ForceCrash;
      e.count = 1;
      s.events.push_back(e);
    }
    catalog.push_back(s);
  }

  return catalog;
}

}  // namespace

bool is_flood_event(ScenarioEvent::Kind kind) {
  return kind == ScenarioEvent::Kind::RequestFlood ||
         kind == ScenarioEvent::Kind::RetryStorm ||
         kind == ScenarioEvent::Kind::SlowLorisFlood;
}

bool has_flood_events(const Scenario& s) {
  for (const ScenarioEvent& e : s.events) {
    if (is_flood_event(e.kind)) return true;
  }
  return false;
}

bool is_controller_event(ScenarioEvent::Kind kind) {
  return kind == ScenarioEvent::Kind::ControllerCrash ||
         kind == ScenarioEvent::Kind::ControllerStall ||
         kind == ScenarioEvent::Kind::SolverFailure;
}

bool has_controller_events(const Scenario& s) {
  for (const ScenarioEvent& e : s.events) {
    if (is_controller_event(e.kind)) return true;
  }
  return false;
}

const std::vector<Scenario>& scenario_catalog() {
  static const std::vector<Scenario> catalog = build_catalog();
  return catalog;
}

const Scenario& find_scenario(const std::string& name) {
  for (const Scenario& s : scenario_catalog()) {
    if (s.name == name) return s;
  }
  ensure_failed("name in scenario_catalog()", __FILE__, __LINE__,
                "unknown scenario: " + name);
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_catalog().size());
  for (const Scenario& s : scenario_catalog()) names.push_back(s.name);
  return names;
}

}  // namespace tolerance::emulation
