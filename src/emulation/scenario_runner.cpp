#include "tolerance/emulation/scenario_runner.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "tolerance/consensus/minbft_cluster.hpp"
#include "tolerance/core/async_controller.hpp"
#include "tolerance/core/node_controller.hpp"
#include "tolerance/core/system_controller.hpp"
#include "tolerance/pomdp/system_model.hpp"
#include "tolerance/util/ensure.hpp"
#include "tolerance/util/parallel.hpp"

namespace tolerance::emulation {

namespace {

using consensus::MinBftCluster;
using consensus::ReplicaId;
using pomdp::NodeState;

consensus::ByzantineMode mode_for(const EmulatedNode& node) {
  if (node.state != NodeState::Compromised) {
    return consensus::ByzantineMode::Honest;
  }
  switch (node.behavior) {
    case CompromisedBehavior::Participate:
      return consensus::ByzantineMode::Honest;
    case CompromisedBehavior::Silent:
      return consensus::ByzantineMode::Silent;
    case CompromisedBehavior::RandomMessages:
      return consensus::ByzantineMode::Random;
  }
  return consensus::ByzantineMode::Honest;
}

std::string join_ids(const std::vector<int>& ids) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i > 0) os << ',';
    os << ids[i];
  }
  os << ']';
  return os.str();
}

}  // namespace

bool identical(const ScenarioResult& a, const ScenarioResult& b) {
  return a.availability == b.availability &&
         a.service_availability == b.service_availability &&
         a.time_to_recovery == b.time_to_recovery &&
         a.avg_nodes == b.avg_nodes && a.recoveries == b.recoveries &&
         a.evictions == b.evictions && a.additions == b.additions &&
         a.compromises == b.compromises && a.crashes == b.crashes &&
         a.quorum_stalls == b.quorum_stalls &&
         a.deferred_evictions == b.deferred_evictions &&
         a.min_membership == b.min_membership &&
         a.max_membership == b.max_membership &&
         a.final_view == b.final_view &&
         a.flood_submitted == b.flood_submitted &&
         a.flood_completed == b.flood_completed &&
         a.flood_rejections == b.flood_rejections &&
         a.flood_backoffs == b.flood_backoffs &&
         a.admitted_availability == b.admitted_availability &&
         a.max_queue_depth == b.max_queue_depth &&
         a.policy_epoch == b.policy_epoch &&
         a.controller_resolves == b.controller_resolves &&
         a.controller_rejected == b.controller_rejected &&
         a.controller_hold_cycles == b.controller_hold_cycles &&
         a.controller_fallback_cycles == b.controller_fallback_cycles &&
         a.controller_frozen_cycles == b.controller_frozen_cycles &&
         a.controller_max_staleness == b.controller_max_staleness &&
         a.controller_mode == b.controller_mode && a.trace == b.trace;
}

ScenarioRunner::ScenarioRunner(Scenario scenario, FittedDetector detector,
                               std::optional<solvers::CmdpSolution> replication,
                               Options options,
                               std::optional<pomdp::SystemCmdp> cmdp)
    : scenario_(std::move(scenario)), detector_(std::move(detector)),
      replication_(std::move(replication)), options_(options),
      cmdp_(std::move(cmdp)) {
  TOL_ENSURE(scenario_.horizon > 0, "horizon must be positive");
  TOL_ENSURE(scenario_.f >= 1, "tolerance threshold f must be >= 1");
  TOL_ENSURE(scenario_.initial_nodes >= 2 * scenario_.f + 1,
             "need N1 >= 2f + 1 for the BFT quorum");
  TOL_ENSURE(scenario_.max_nodes >= scenario_.initial_nodes,
             "hardware pool smaller than initial allocation");
  for (const ScenarioEvent& e : scenario_.events) {
    TOL_ENSURE(e.step >= 1 && e.step <= scenario_.horizon,
               "scenario event outside the horizon");
    TOL_ENSURE(e.count >= 1 && e.duration >= 1, "malformed scenario event");
  }
  if (options_.async_controller.value_or(scenario_.controller.async)) {
    TOL_ENSURE(replication_.has_value() && cmdp_.has_value(),
               "async controller needs the CMDP strategy and model to "
               "re-solve in the background");
  }
}

ScenarioResult ScenarioRunner::run(std::uint64_t seed) const {
  // --- Environment. ---
  TestbedConfig tb_config = scenario_.testbed;
  tb_config.initial_nodes = scenario_.initial_nodes;
  tb_config.max_nodes = scenario_.max_nodes;
  Testbed testbed(tb_config, seed);

  // --- Local level: one belief-threshold controller per node. ---
  const pomdp::NodeModel model(scenario_.node_params);
  const int dim = solvers::ThresholdPolicy::dimension(solvers::kNoBtr);
  const solvers::ThresholdPolicy policy(
      std::vector<double>(static_cast<std::size_t>(dim),
                          scenario_.recovery_threshold),
      solvers::kNoBtr);
  std::vector<core::NodeController> controllers;
  for (int i = 0; i < testbed.num_nodes(); ++i) {
    controllers.emplace_back(model, detector_, policy);
  }

  // --- Global level: CMDP policy under the BFT safety limits. ---
  core::SystemLimits limits;
  limits.f = scenario_.f;
  limits.min_nodes = 2 * scenario_.f + 1;
  core::SystemController system(replication_, scenario_.max_nodes,
                                seed ^ 0xabcd, limits);

  // --- Asynchronous level-2 controller: the CMDP re-solve off the decision
  // path behind the FRESH/HOLD/FALLBACK staleness ladder.  Inline mode (the
  // legacy default) keeps acting on the solution computed at training time;
  // when a scenario scripts controller faults against inline mode, the
  // level-2 step freezes outright for the fault window — the no-failsafe
  // baseline the controller bench degrades against.
  const bool use_async =
      options_.async_controller.value_or(scenario_.controller.async);
  const bool has_ctrl_events = has_controller_events(scenario_);
  std::unique_ptr<core::AsyncCmdpController> async;
  if (use_async) {
    core::AsyncControllerConfig acfg;
    acfg.resolve_period = scenario_.controller.resolve_period;
    acfg.solve_latency_cycles = scenario_.controller.solve_latency_cycles;
    acfg.staleness_budget = scenario_.controller.staleness_budget;
    acfg.fallback_deadline = scenario_.controller.fallback_deadline;
    acfg.retry_backoff_cycles = scenario_.controller.retry_backoff_cycles;
    acfg.max_retry_backoff_cycles =
        scenario_.controller.max_retry_backoff_cycles;
    // Deterministic lane: publishes land at fixed simulated cycles so
    // episodes stay bit-identical at any thread count.
    acfg.deterministic = true;
    async = std::make_unique<core::AsyncCmdpController>(
        *replication_,
        [cmdp = *cmdp_](const lp::SimplexBasis* warm) {
          return solvers::solve_replication_lp(cmdp, {}, warm);
        },
        acfg, seed ^ 0x51a1eULL);
    system.attach_async(async.get());
  }
  long frozen_until = 0;  // inline baseline: level-2 frozen while t < this

  // --- Consensus layer: live MinBFT cluster mirroring the testbed. ---
  consensus::MinBftConfig cfg;
  cfg.f = scenario_.f;
  cfg.checkpoint_period = 10;
  cfg.view_change_timeout = 8.0;
  cfg.request_retry_timeout = 4.0;
  cfg.batch_size = options_.consensus_batch_size;
  cfg.pipeline_depth = options_.consensus_pipeline_depth;
  const bool has_flood = has_flood_events(scenario_);
  if (has_flood) {
    // Flood scenarios use a heavier crypto cost model so the scripted
    // request volumes are genuinely past serving capacity: 0.2 s batch
    // signatures and 0.25 s per-reply authentication put one replica's
    // ceiling near 200 requests per 60 s cycle.  A rejection costs only a
    // cheap authenticator (see send_overloaded), keeping shedding cheaper
    // than serving — the property the valve depends on.
    cfg.crypto_cost_sign = 0.2;
    cfg.crypto_cost_verify = 0.01;
    cfg.crypto_cost_reply = 0.25;
  }
  if (scenario_.admission_control) {
    cfg.admission.enabled = true;
    cfg.admission.queue_capacity = 64.0;
    cfg.admission.latency_ref = 5.0;
    // Release half a cycle long: the replica's inbound queue drains to zero
    // between serving bursts even mid-storm, and a fast-release filter would
    // reopen the valve at every trough.  Holding the peak for ~30 s keeps
    // the valve closed across troughs while still reopening within a cycle
    // or two after the flood really stops.
    cfg.admission.release_tau = 30.0;
    // Token rates target ~30% serving utilization (capacity is ~200
    // requests per cycle): the headroom is what keeps rejections cheap and
    // prompt, so backoff quorums form before clients' flat retries fire.
    cfg.admission.soft_rate = 1.0;   // tokens/s: ~60 admits per 60 s cycle
    cfg.admission.soft_burst = 10.0;
    cfg.admission.hard_rate = 0.25;  // ~15 admits per cycle under storms
    cfg.admission.hard_burst = 5.0;
    // Bands sit below the w_queue weight (0.5) on purpose: a spike's FIRST
    // wave arrives with err* = 0 and lat* = 0, so queue saturation alone
    // must be able to close the valve — with the default soft_enter of
    // 0.55 every replica would admit the entire onset burst in NORMAL mode
    // and spend whole cycles paying that serving debt.  Sustained-storm
    // pressure then plateaus near 0.7, so the default hard_enter of 0.85
    // would never engage HARD's trickle budget either.
    cfg.admission.soft_enter = 0.45;
    cfg.admission.soft_exit = 0.30;
    cfg.admission.hard_enter = 0.65;
    cfg.admission.hard_exit = 0.50;
    // Hints sized to the 60 s control cycle: the client backoff cap scales
    // with the hint, so shed requests re-probe roughly once a cycle instead
    // of pounding the valve on the flat retransmission timer.
    cfg.admission.retry_after_soft_ms = 8000;
    cfg.admission.retry_after_hard_ms = 30000;
  }
  net::LinkConfig link;
  link.loss = 0.0;  // loss resilience is covered by the consensus suite
  MinBftCluster cluster(scenario_.initial_nodes, cfg, seed ^ 0x5eed, link);
  consensus::MinBftClient& probe = cluster.add_client();
  // Flood clients, one pool per flood event, created lazily at the event's
  // first active cycle.  RetryStorm pools retransmit aggressively (1 s),
  // SlowLorisFlood pools effectively never (their requests just linger).
  std::vector<std::vector<consensus::MinBftClient*>> flood_pools(
      scenario_.events.size());
  // Stable testbed node id -> consensus replica id.
  std::map<int, ReplicaId> node_to_replica;
  {
    const auto ids = cluster.replica_ids();
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      node_to_replica[testbed.nodes()[static_cast<std::size_t>(i)].id] =
          ids[static_cast<std::size_t>(i)];
    }
  }

  ScenarioResult result;
  result.min_membership = static_cast<int>(cluster.membership().size());
  result.max_membership = result.min_membership;

  // T(R) bookkeeping, as in core::Evaluator: per node id, the step the
  // current compromise started.
  std::map<int, int> open_compromise;
  double total_ttr = 0.0;
  int ttr_samples = 0;
  long available_cycles = 0;
  long service_cycles = 0;
  double node_sum = 0.0;

  const auto close_compromise = [&](int node_id, int now) {
    const auto it = open_compromise.find(node_id);
    if (it == open_compromise.end()) return;
    total_ttr += now - it->second;
    ++ttr_samples;
    ++result.compromises;
    open_compromise.erase(it);
  };

  int storm_until = 0;
  double storm_magnitude = 0.0;
  int spike_until = 0;
  std::set<int> counted_crashes;  // node ids whose crash was already counted

  for (int t = 1; t <= scenario_.horizon; ++t) {
    // --- Scripted adversarial events. ---
    if (t > spike_until && testbed.extra_load() > 0) testbed.set_extra_load(0);
    for (const ScenarioEvent& e : scenario_.events) {
      if (e.step != t) continue;
      switch (e.kind) {
        case ScenarioEvent::Kind::ForceCompromise: {
          int remaining = e.count;
          for (int i = 0; i < testbed.num_nodes() && remaining > 0; ++i) {
            if (testbed.nodes()[static_cast<std::size_t>(i)].state !=
                NodeState::Healthy) {
              continue;
            }
            testbed.force_compromise(i, e.behavior);
            --remaining;
          }
          break;
        }
        case ScenarioEvent::Kind::ForceCrash: {
          int remaining = e.count;
          for (int i = 0; i < testbed.num_nodes() && remaining > 0; ++i) {
            if (testbed.nodes()[static_cast<std::size_t>(i)].state ==
                NodeState::Crashed) {
              continue;
            }
            testbed.force_crash(i);
            --remaining;
          }
          break;
        }
        case ScenarioEvent::Kind::AlertStorm:
          storm_until = t + e.duration - 1;
          storm_magnitude = e.magnitude;
          break;
        case ScenarioEvent::Kind::LoadSpike:
          spike_until = t + e.duration - 1;
          testbed.set_extra_load(static_cast<int>(e.magnitude));
          break;
        case ScenarioEvent::Kind::RequestFlood:
        case ScenarioEvent::Kind::RetryStorm:
        case ScenarioEvent::Kind::SlowLorisFlood:
          break;  // handled below: floods act every active cycle, not once
        case ScenarioEvent::Kind::ControllerCrash:
          if (async) {
            async->inject_crash(t, e.duration);
          } else {
            frozen_until = std::max<long>(frozen_until, t + e.duration);
          }
          break;
        case ScenarioEvent::Kind::ControllerStall:
          if (async) {
            async->inject_stall(t, e.duration);
          } else {
            frozen_until = std::max<long>(frozen_until, t + e.duration);
          }
          break;
        case ScenarioEvent::Kind::SolverFailure:
          if (async) {
            async->inject_solver_failure(e.count);
          } else {
            // Inline equivalent: the solver keeps failing on the decision
            // path for the event's duration.
            frozen_until = std::max<long>(frozen_until, t + e.duration);
          }
          break;
      }
    }
    const bool storm_active = t <= storm_until;

    // --- Environment dynamics + IDS sampling. ---
    testbed.step();

    // --- Mirror node states onto the consensus layer. ---
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      const EmulatedNode& node = testbed.nodes()[static_cast<std::size_t>(i)];
      const ReplicaId rid = node_to_replica.at(node.id);
      if (node.state == NodeState::Crashed) {
        if (counted_crashes.insert(node.id).second) ++result.crashes;
        if (cluster.has_replica(rid)) {
          cluster.crash_replica(rid);  // idempotent host unregistration
        }
      } else if (cluster.has_replica(rid)) {
        cluster.replica(rid).set_mode(mode_for(node));
      }
    }

    // --- Track compromises / crashes from the environment. ---
    for (const EmulatedNode& node : testbed.nodes()) {
      if (node.state == NodeState::Compromised) {
        open_compromise.emplace(node.id, node.compromised_since);
      } else if (open_compromise.count(node.id) > 0) {
        close_compromise(node.id, t);
      }
    }

    // --- Local level: belief updates and recovery arbitration (at most
    // k = max(1, N - 2f - 1) simultaneous recoveries, Prop. 1). ---
    const int k_slots =
        std::max(1, testbed.num_nodes() - 2 * scenario_.f - 1);
    std::vector<std::pair<double, int>> candidates;
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const EmulatedNode& node = testbed.nodes()[idx];
      if (node.state == NodeState::Crashed) continue;
      const double raw = node.last_metrics.alerts_weighted +
                         (storm_active ? storm_magnitude : 0.0);
      controllers[idx].observe(raw);
      if (controllers[idx].decide() == pomdp::NodeAction::Recover) {
        candidates.push_back(
            {controllers[idx].btr_due() ? 2.0 : controllers[idx].belief(), i});
      }
    }
    std::sort(candidates.rbegin(), candidates.rend());
    if (static_cast<int>(candidates.size()) > k_slots) {
      candidates.resize(static_cast<std::size_t>(k_slots));
    }
    std::vector<bool> granted(static_cast<std::size_t>(testbed.num_nodes()),
                              false);
    for (const auto& [priority, i] : candidates) {
      (void)priority;
      granted[static_cast<std::size_t>(i)] = true;
    }
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      if (testbed.nodes()[idx].state == NodeState::Crashed) continue;
      controllers[idx].commit(granted[idx] ? pomdp::NodeAction::Recover
                                           : pomdp::NodeAction::Wait);
    }
    std::vector<int> recovered_ids;
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      if (!granted[static_cast<std::size_t>(i)]) continue;
      const EmulatedNode& node = testbed.nodes()[static_cast<std::size_t>(i)];
      close_compromise(node.id, t);
      recovered_ids.push_back(node.id);
      testbed.recover(i);
      // Fig. 17d: fresh container, same id, bumped USIG epoch, state
      // transfer from peers; the fresh replica starts Honest.
      cluster.recover_replica(node_to_replica.at(node.id));
      ++result.recoveries;
    }

    // --- Global level: the CMDP decision, executed through consensus. ---
    if (async) async->begin_cycle(t);
    std::vector<double> beliefs;
    std::vector<bool> reported;
    for (int i = 0; i < testbed.num_nodes(); ++i) {
      const auto idx = static_cast<std::size_t>(i);
      const bool alive = testbed.nodes()[idx].state != NodeState::Crashed;
      reported.push_back(alive);
      beliefs.push_back(alive ? controllers[idx].belief() : 1.0);
    }
    const bool frozen = !async && t < frozen_until;
    core::SystemDecision decision;
    if (frozen) {
      // Inline/no-failsafe baseline under a scripted controller fault: the
      // solve sits on the decision path, so a crashed or hung solver takes
      // the whole level-2 step with it — no evictions, no additions.  Only
      // the aggregated state remains observable for the trace.
      double expected_healthy = 0.0;
      for (std::size_t i = 0; i < beliefs.size(); ++i) {
        if (reported[i]) expected_healthy += 1.0 - beliefs[i];
      }
      decision.state = static_cast<int>(std::floor(expected_healthy));
      ++result.controller_frozen_cycles;
    } else {
      decision = system.step(beliefs, reported);
    }
    result.deferred_evictions += decision.deferred_evictions;
    std::vector<int> evicted_ids;
    for (auto it = decision.evict.rbegin(); it != decision.evict.rend();
         ++it) {
      const EmulatedNode& node =
          testbed.nodes()[static_cast<std::size_t>(*it)];
      const ReplicaId rid = node_to_replica.at(node.id);
      if (!cluster.try_evict_replica(rid, options_.membership_event_budget)) {
        ++result.quorum_stalls;  // node stays; re-qualifies next cycle
        continue;
      }
      close_compromise(node.id, t);
      evicted_ids.push_back(node.id);
      node_to_replica.erase(node.id);
      testbed.evict(*it);
      controllers.erase(controllers.begin() + *it);
      ++result.evictions;
    }
    // Reconcile operations that were ordered after their budget expired:
    // (a) an evict that timed out but executed later — the id left the
    // membership while the node/replica objects remain; finalize it so the
    // testbed and the cluster stay in lockstep;
    // (b) a rolled-back join that executed later — an id in the membership
    // with no live replica behind it; evict the ghost.
    {
      const auto membership = cluster.membership();
      const std::set<ReplicaId> member_set(membership.begin(),
                                           membership.end());
      for (int i = testbed.num_nodes() - 1; i >= 0; --i) {
        const int node_id = testbed.nodes()[static_cast<std::size_t>(i)].id;
        const ReplicaId rid = node_to_replica.at(node_id);
        if (member_set.count(rid) > 0) continue;
        close_compromise(node_id, t);
        evicted_ids.push_back(node_id);
        cluster.finalize_evict(rid);
        node_to_replica.erase(node_id);
        testbed.evict(i);
        controllers.erase(controllers.begin() + i);
        ++result.evictions;
      }
      std::set<ReplicaId> known;
      for (const auto& [node_id, rid] : node_to_replica) {
        (void)node_id;
        known.insert(rid);
      }
      for (const ReplicaId rid : membership) {
        if (known.count(rid) > 0) continue;
        if (!cluster.try_evict_replica(rid,
                                       options_.membership_event_budget)) {
          ++result.quorum_stalls;
        }
      }
    }
    int added = 0;
    if (decision.add_node && testbed.num_nodes() < scenario_.max_nodes) {
      const auto joined =
          cluster.try_join_new_replica(options_.membership_event_budget);
      if (joined.has_value()) {
        const auto idx = testbed.add_node();
        TOL_ENSURE(idx.has_value(), "pool capacity checked above");
        node_to_replica[testbed.nodes()[static_cast<std::size_t>(*idx)].id] =
            *joined;
        controllers.emplace_back(model, detector_, policy);
        ++result.additions;
        added = 1;
      } else {
        ++result.quorum_stalls;
      }
    }

    // --- Service-boundary floods: each active flood event's clients offer
    // `magnitude` requests apiece this cycle, before the probe so the probe
    // contends with the spike like any legitimate request. ---
    for (std::size_t ei = 0; ei < scenario_.events.size(); ++ei) {
      const ScenarioEvent& e = scenario_.events[ei];
      if (!is_flood_event(e.kind)) continue;
      if (t < e.step || t >= e.step + e.duration) continue;
      auto& pool = flood_pools[ei];
      if (pool.empty()) {
        const double retry =
            e.kind == ScenarioEvent::Kind::RetryStorm ? 1.0
            : e.kind == ScenarioEvent::Kind::SlowLorisFlood
                ? 1.0e9  // beyond any horizon: submit once, linger
                : cfg.request_retry_timeout;
        for (int c = 0; c < e.count; ++c) {
          pool.push_back(&cluster.add_client(retry));
        }
      }
      const bool legit = e.kind != ScenarioEvent::Kind::SlowLorisFlood;
      for (consensus::MinBftClient* client : pool) {
        client->set_replicas(cluster.membership());
        for (int k = 0; k < static_cast<int>(e.magnitude); ++k) {
          std::ostringstream fop;
          fop << "flood:" << t << ':' << client->id() << ':' << k;
          if (legit) {
            ++result.flood_submitted;
            client->submit(fop.str(),
                           [&result](std::uint64_t, const std::string&,
                                     double) { ++result.flood_completed; });
          } else {
            client->submit(fop.str(), nullptr);
          }
        }
      }
    }

    // --- Service probe: one client operation with a one-cycle deadline. ---
    probe.set_replicas(cluster.membership());
    bool service_ok = false;
    std::ostringstream op;
    op << "probe:" << t;
    const std::uint64_t rid = probe.submit(
        op.str(),
        [&service_ok](std::uint64_t, const std::string&, double) {
          service_ok = true;
        });
    cluster.network().run_until(cluster.network().now() +
                                options_.cycle_seconds);
    if (!service_ok) probe.cancel(rid);
    if (service_ok) ++service_cycles;

    // --- Overload telemetry: per-replica queue depth at cycle end, plus
    // cumulative rejection/backoff counters from the flood clients. ---
    int cycle_queue_depth = 0;
    for (const ReplicaId replica_id : cluster.replica_ids()) {
      const int depth = static_cast<int>(
          cluster.replica(replica_id).pending_request_count() +
          cluster.network().queue_depth(replica_id));
      cycle_queue_depth = std::max(cycle_queue_depth, depth);
    }
    result.max_queue_depth = std::max(result.max_queue_depth, cycle_queue_depth);
    if (has_flood) {
      std::uint64_t rejections = 0;
      std::uint64_t backoffs = 0;
      for (const auto& pool : flood_pools) {
        for (const consensus::MinBftClient* client : pool) {
          rejections += client->overloaded_replies();
          backoffs += client->overload_backoffs();
        }
      }
      result.flood_rejections = rejections;
      result.flood_backoffs = backoffs;
    }

    // --- Metrics + trace. ---
    const int membership_size = static_cast<int>(cluster.membership().size());
    result.min_membership = std::min(result.min_membership, membership_size);
    result.max_membership = std::max(result.max_membership, membership_size);
    node_sum += testbed.num_nodes();
    const bool available = testbed.failed_count() <= scenario_.f;
    if (available) ++available_cycles;
    if (options_.record_trace) {
      std::ostringstream line;
      line << "t=" << t << " s=" << decision.state
           << " N=" << testbed.num_nodes() << " H=" << testbed.healthy_count()
           << " M=" << membership_size << " svc=" << (service_ok ? 1 : 0)
           << " rec=" << join_ids(recovered_ids)
           << " evt=" << join_ids(evicted_ids) << " add=" << added
           << " defer=" << decision.deferred_evictions
           << " stall=" << result.quorum_stalls;
      if (has_flood) {
        // Overload suffix only for flood scenarios, so the golden traces of
        // every pre-existing scenario stay byte-for-byte unchanged.
        line << " fs=" << result.flood_submitted
             << " fc=" << result.flood_completed
             << " fr=" << result.flood_rejections << " q=" << cycle_queue_depth;
      }
      if (use_async || has_ctrl_events) {
        // Controller suffix only when the async controller or a scripted
        // controller fault is in play — same golden-trace rationale.
        // md: F(resh) / H(old) / B (fallback) / I(nline) / Z (frozen).
        line << " ep=" << decision.policy_epoch
             << " st=" << decision.staleness_cycles
             << " md=" << (frozen ? 'Z' : core::mode_letter(decision.mode));
      }
      result.trace.push_back(line.str());
    }
  }

  // Unresolved compromises at the horizon count T(R) = horizon (Table 7).
  for (const auto& [node_id, since] : open_compromise) {
    (void)node_id;
    (void)since;
    total_ttr += scenario_.horizon;
    ++ttr_samples;
    ++result.compromises;
  }

  for (const ReplicaId id : cluster.replica_ids()) {
    result.final_view = std::max(result.final_view, cluster.replica(id).view());
  }
  if (async) {
    const core::AsyncControllerStats ctrl = async->stats();
    result.policy_epoch = ctrl.policy_epoch;
    result.controller_resolves = ctrl.resolves;
    result.controller_rejected = ctrl.rejected;
    result.controller_hold_cycles = ctrl.hold_cycles;
    result.controller_fallback_cycles = ctrl.fallback_cycles;
    result.controller_max_staleness = ctrl.max_staleness;
    result.controller_mode = core::to_string(async->mode());
  }
  if (result.flood_submitted > 0) {
    // Shed requests (an f+1 rejection quorum put them into backoff custody)
    // are the valve doing its job: subtract them from the offered load so
    // admitted_availability measures how the *admitted* traffic fared.
    std::uint64_t shed = 0;
    for (std::size_t ei = 0; ei < scenario_.events.size(); ++ei) {
      if (scenario_.events[ei].kind == ScenarioEvent::Kind::SlowLorisFlood) {
        continue;  // adversarial load, excluded from flood_submitted too
      }
      for (const consensus::MinBftClient* client : flood_pools[ei]) {
        shed += client->shed_pending_count();
      }
    }
    shed = std::min(shed, result.flood_submitted);
    const double denom =
        static_cast<double>(result.flood_submitted - shed);
    result.admitted_availability =
        denom > 0.0
            ? static_cast<double>(result.flood_completed) / denom
            : 1.0;
  }
  result.availability =
      static_cast<double>(available_cycles) / scenario_.horizon;
  result.service_availability =
      static_cast<double>(service_cycles) / scenario_.horizon;
  result.time_to_recovery = ttr_samples > 0 ? total_ttr / ttr_samples : 0.0;
  result.avg_nodes = node_sum / scenario_.horizon;
  return result;
}

std::vector<ScenarioResult> ScenarioRunner::run_many(
    const std::vector<std::uint64_t>& seeds, int threads) const {
  std::vector<ScenarioResult> results(seeds.size());
  const util::ParallelRunner runner(threads);
  runner.for_each(static_cast<std::int64_t>(seeds.size()),
                  [&](std::int64_t i) {
                    const auto idx = static_cast<std::size_t>(i);
                    results[idx] = run(seeds[idx]);
                  });
  return results;
}

ScenarioRunner make_scenario_runner(const Scenario& scenario,
                                    std::uint64_t seed, int detector_samples,
                                    ScenarioRunner::Options options) {
  Rng rng(seed);
  FittedDetector detector = fit_pooled_detector(
      detector_samples, 11, scenario.testbed.background_arrival_rate *
                                scenario.testbed.background_mean_session,
      rng);
  // The system CMDP over the hardware pool: survival/recovery rates follow
  // from the node kernel (the parametric route of §V-B; the estimated route
  // is exercised by bench_fig16).
  const auto& p = scenario.node_params;
  const double q_healthy =
      (1.0 - p.p_attack) * (1.0 - p.p_crash_healthy);
  const double q_recover = p.p_update + scenario.recovery_threshold * 0.2;
  const auto cmdp = pomdp::SystemCmdp::parametric(
      scenario.max_nodes, scenario.f, scenario.epsilon_a, q_healthy,
      std::min(q_recover, 0.95));
  auto replication = solvers::solve_replication_lp(cmdp);
  std::optional<solvers::CmdpSolution> strategy;
  if (replication.status == lp::LpStatus::Optimal) {
    strategy = std::move(replication);
  }
  return ScenarioRunner(scenario, std::move(detector), std::move(strategy),
                        options, cmdp);
}

}  // namespace tolerance::emulation
