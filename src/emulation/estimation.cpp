#include "tolerance/emulation/estimation.hpp"

#include "tolerance/emulation/ids.hpp"
#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {
namespace {

FittedDetector fit_from_samples(std::vector<double> healthy,
                                std::vector<double> compromised,
                                int num_bins) {
  std::vector<double> pooled;
  pooled.reserve(healthy.size() + compromised.size());
  pooled.insert(pooled.end(), healthy.begin(), healthy.end());
  pooled.insert(pooled.end(), compromised.begin(), compromised.end());
  auto binner = stats::QuantileBinner::fit(std::move(pooled), num_bins);

  std::vector<int> h_binned, c_binned;
  h_binned.reserve(healthy.size());
  c_binned.reserve(compromised.size());
  for (double v : healthy) h_binned.push_back(binner.bin(v));
  for (double v : compromised) c_binned.push_back(binner.bin(v));
  auto model = std::make_shared<pomdp::EmpiricalObservationModel>(
      pomdp::EmpiricalObservationModel::estimate(h_binned, c_binned,
                                                 binner.num_bins(), 0.5));
  FittedDetector detector{std::move(binner), std::move(model), 0.0};
  detector.kl_healthy_compromised = detector.model->kl(false, true);
  return detector;
}

}  // namespace

AlertSamples collect_alert_samples(const ContainerProfile& profile,
                                   int samples, double background_load,
                                   Rng& rng) {
  TOL_ENSURE(samples > 0, "need a positive sample budget");
  const IdsModel ids(profile);
  AlertSamples out;
  out.healthy.reserve(static_cast<std::size_t>(samples));
  out.compromised.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    // Healthy condition: background only.
    out.healthy.push_back(
        ids.sample(nullptr, false, background_load, rng).alerts_weighted);
    // Intrusion condition: mix of attack steps and post-compromise noise, as
    // in the testbed's labeled traces.
    const bool during_attack = rng.bernoulli(0.5);
    const IntrusionStep* step = nullptr;
    if (during_attack && !profile.intrusion_steps.empty()) {
      step = &profile.intrusion_steps[static_cast<std::size_t>(rng.uniform_int(
          static_cast<int>(profile.intrusion_steps.size())))];
    }
    out.compromised.push_back(
        ids.sample(step, !during_attack, background_load, rng)
            .alerts_weighted);
  }
  return out;
}

FittedDetector fit_detector(const ContainerProfile& profile, int samples,
                            int num_bins, double background_load, Rng& rng) {
  auto s = collect_alert_samples(profile, samples, background_load, rng);
  return fit_from_samples(std::move(s.healthy), std::move(s.compromised),
                          num_bins);
}

FittedDetector fit_pooled_detector(int samples_per_container, int num_bins,
                                   double background_load, Rng& rng) {
  std::vector<double> healthy, compromised;
  for (const ContainerProfile& profile : container_catalog()) {
    auto s = collect_alert_samples(profile, samples_per_container,
                                   background_load, rng);
    healthy.insert(healthy.end(), s.healthy.begin(), s.healthy.end());
    compromised.insert(compromised.end(), s.compromised.begin(),
                       s.compromised.end());
  }
  return fit_from_samples(std::move(healthy), std::move(compromised),
                          num_bins);
}

}  // namespace tolerance::emulation
