#include "tolerance/emulation/profiles.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {
namespace {

// Alert-burst calibration: brute-force attacks trip vastly more SNORT rules
// than single-shot CVE exploits (cf. the x-axis ranges in Fig. 11: the
// brute-force panel extends to ~20000 weighted alerts, CVE panels to ~8000).
constexpr double kScanBurst = 1200.0;
constexpr double kBruteForceBurst = 9000.0;
constexpr double kExploitBurst = 3000.0;

std::vector<ContainerProfile> build_catalog() {
  std::vector<ContainerProfile> catalog;
  auto add = [&](int id, std::string os, std::vector<std::string> vulns,
                 std::vector<std::string> services,
                 std::vector<IntrusionStep> steps) {
    ContainerProfile p;
    p.replica_id = id;
    p.os = std::move(os);
    p.vulnerabilities = std::move(vulns);
    p.background_services = std::move(services);
    p.intrusion_steps = std::move(steps);
    catalog.push_back(std::move(p));
  };
  const IntrusionStep tcp_scan{"TCP SYN scan", kScanBurst, 2.0};
  const IntrusionStep icmp_scan{"ICMP scan", kScanBurst * 0.6, 2.0};
  auto brute = [](const std::string& svc) {
    return IntrusionStep{svc + " brute force", kBruteForceBurst, 1.5};
  };
  auto exploit = [](const std::string& cve) {
    return IntrusionStep{"exploit of " + cve, kExploitBurst, 2.0};
  };

  add(1, "UBUNTU 14", {"FTP weak password"},
      {"FTP", "SSH", "MONGODB", "HTTP", "TEAMSPEAK"},
      {tcp_scan, brute("FTP")});
  add(2, "UBUNTU 20", {"SSH weak password"}, {"SSH", "DNS", "HTTP"},
      {tcp_scan, brute("SSH")});
  add(3, "UBUNTU 20", {"TELNET weak password"}, {"SSH", "TELNET", "HTTP"},
      {tcp_scan, brute("TELNET")});
  add(4, "DEBIAN 10.2", {"CVE-2017-7494"}, {"SSH", "SAMBA", "NTP"},
      {icmp_scan, exploit("CVE-2017-7494")});
  add(5, "UBUNTU 20", {"CVE-2014-6271"}, {"SSH"},
      {icmp_scan, exploit("CVE-2014-6271")});
  add(6, "DEBIAN 10.2", {"CWE-89 on DVWA"}, {"DVWA", "IRC", "SSH"},
      {icmp_scan, exploit("CWE-89 on DVWA")});
  add(7, "DEBIAN 10.2", {"CVE-2015-3306"}, {"SSH"},
      {icmp_scan, exploit("CVE-2015-3306")});
  add(8, "DEBIAN 10.2", {"CVE-2016-10033"}, {"SSH"},
      {icmp_scan, exploit("CVE-2016-10033")});
  add(9, "DEBIAN 10.2", {"CVE-2010-0426", "SSH weak password"},
      {"TEAMSPEAK", "HTTP", "SSH"},
      {icmp_scan, brute("SSH"), exploit("CVE-2010-0426")});
  add(10, "DEBIAN 10.2", {"CVE-2015-5602", "SSH weak password"}, {"SSH"},
      {icmp_scan, brute("SSH"), exploit("CVE-2015-5602")});
  return catalog;
}

}  // namespace

const std::vector<ContainerProfile>& container_catalog() {
  static const std::vector<ContainerProfile> catalog = build_catalog();
  return catalog;
}

const ContainerProfile& container(int replica_id) {
  const auto& catalog = container_catalog();
  TOL_ENSURE(replica_id >= 1 &&
                 replica_id <= static_cast<int>(catalog.size()),
             "replica id out of range (Table 4 has 10 containers)");
  return catalog[static_cast<std::size_t>(replica_id - 1)];
}

}  // namespace tolerance::emulation
