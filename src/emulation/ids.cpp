#include "tolerance/emulation/ids.hpp"

#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {

double metric_value(const MetricSample& s, int metric_index) {
  switch (metric_index) {
    case 0: return s.alerts_weighted;
    case 1: return s.failed_logins;
    case 2: return s.new_processes;
    case 3: return s.tcp_connections;
    case 4: return s.blocks_written;
    case 5: return s.blocks_read;
    default:
      TOL_ENSURE(false, "metric index out of range");
  }
  return 0.0;
}

namespace {

/// Gamma-Poisson (negative-binomial) burst: heavy-tailed counts like the
/// empirical SNORT histograms in Fig. 11.
double burst(double mean, double shape, Rng& rng) {
  if (mean <= 0.0) return 0.0;
  const double intensity = rng.gamma(shape, mean / shape);
  return static_cast<double>(rng.poisson(intensity));
}

}  // namespace

MetricSample IdsModel::sample(const IntrusionStep* intrusion_step,
                              bool compromised, double background_load,
                              Rng& rng) const {
  MetricSample s;
  const double load = std::max(0.0, background_load);

  // --- Priority-weighted IDS alerts (the strongest signal, KL ~ 0.49). ---
  s.alerts_weighted =
      burst(profile_->baseline_alerts_per_load * load, 4.0, rng);
  if (intrusion_step != nullptr) {
    s.alerts_weighted += burst(intrusion_step->alert_burst_mean,
                               intrusion_step->alert_burst_shape, rng);
  }
  if (compromised) {
    s.alerts_weighted += burst(profile_->compromised_alert_mean, 2.0, rng);
  }

  // --- Failed logins: spikes only during brute-force steps (KL ~ 0.07). ---
  s.failed_logins = burst(0.5 * load, 2.0, rng);
  if (intrusion_step != nullptr &&
      intrusion_step->name.find("brute force") != std::string::npos) {
    s.failed_logins += burst(120.0, 2.0, rng);
  }

  // --- New processes: weak signal (KL ~ 0.01). ---
  s.new_processes = burst(5.0 * load, 3.0, rng);
  if (compromised) s.new_processes += burst(6.0, 2.0, rng);

  // --- New TCP connections: weak signal (KL ~ 0.01). ---
  s.tcp_connections = burst(8.0 * load, 3.0, rng);
  if (intrusion_step != nullptr) s.tcp_connections += burst(10.0, 2.0, rng);

  // --- Blocks written: moderate signal (KL ~ 0.12), e.g. dropped tooling. ---
  s.blocks_written = burst(6.0, 3.0, rng);
  if (compromised || intrusion_step != nullptr) {
    s.blocks_written += burst(14.0, 2.0, rng);
  }

  // --- Blocks read: no signal (KL ~ 0). ---
  s.blocks_read = burst(12.0, 3.0, rng);
  return s;
}

}  // namespace tolerance::emulation
