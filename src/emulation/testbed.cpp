#include "tolerance/emulation/testbed.hpp"

#include <algorithm>

#include "tolerance/util/ensure.hpp"

namespace tolerance::emulation {

using pomdp::NodeState;

Testbed::Testbed(TestbedConfig config, std::uint64_t seed)
    : config_(config), rng_(seed),
      background_(config.background_arrival_rate,
                  config.background_mean_session),
      attacker_(config.attacker) {
  TOL_ENSURE(config.initial_nodes >= 1, "need at least one node");
  TOL_ENSURE(config.max_nodes >= config.initial_nodes,
             "pool smaller than initial allocation");
  for (int i = 0; i < config.initial_nodes; ++i) {
    nodes_.push_back(make_node());
  }
}

EmulatedNode Testbed::make_node() {
  EmulatedNode node;
  node.id = next_node_id_++;
  node.container_id =
      rng_.uniform_int(static_cast<int>(container_catalog().size())) + 1;
  node.state = NodeState::Healthy;
  return node;
}

void Testbed::step() {
  ++time_;
  background_.step(rng_);
  const double load_per_node =
      nodes_.empty()
          ? 0.0
          : static_cast<double>(background_.load() + extra_load_) /
                static_cast<double>(nodes_.size());

  // --- Attacker: engage a new target or advance the current intrusion. ---
  if (!attacker_.target().has_value()) {
    // Pick a random healthy node to probe.
    std::vector<int> healthy;
    for (int i = 0; i < num_nodes(); ++i) {
      if (nodes_[static_cast<std::size_t>(i)].state == NodeState::Healthy) {
        healthy.push_back(i);
      }
    }
    if (!healthy.empty()) {
      const int candidate =
          healthy[static_cast<std::size_t>(rng_.uniform_int(
              static_cast<int>(healthy.size())))];
      if (attacker_.maybe_engage(candidate, rng_)) {
        nodes_[static_cast<std::size_t>(candidate)].under_attack = true;
      }
    }
  }

  // --- Node dynamics + IDS sampling. ---
  for (int i = 0; i < num_nodes(); ++i) {
    auto& node = nodes_[static_cast<std::size_t>(i)];
    const ContainerProfile& profile = container(node.container_id);

    const IntrusionStep* active_step = nullptr;
    if (attacker_.attacking(i)) {
      active_step = attacker_.current_step(profile);
    }

    // Crashes (2b)-(2c).
    if (node.state != NodeState::Crashed) {
      const double p_crash = node.state == NodeState::Healthy
                                 ? config_.p_crash_healthy
                                 : config_.p_crash_compromised;
      if (rng_.bernoulli(p_crash)) {
        node.state = NodeState::Crashed;
        node.under_attack = false;
        node.compromised_since = -1;
        attacker_.abort(i);
      }
    }

    // Software update heals a compromised node (2g).
    if (node.state == NodeState::Compromised &&
        rng_.bernoulli(config_.p_update)) {
      node.state = NodeState::Healthy;
      node.compromised_since = -1;
      node.behavior = CompromisedBehavior::Participate;
    }

    // Attacker progress on this node.
    if (attacker_.attacking(i) && node.state == NodeState::Healthy) {
      if (attacker_.advance(profile)) {
        node.state = NodeState::Compromised;
        node.compromised_since = time_;
        node.behavior = Attacker::choose_behavior(rng_);
        node.under_attack = false;
        attacker_.on_compromised();
        active_step = nullptr;  // signature already emitted during the steps
      }
    } else if (attacker_.attacking(i)) {
      // Target crashed or got compromised by other means; move on.
      attacker_.abort(i);
      node.under_attack = false;
    }

    // IDS metrics (crashed nodes emit nothing — they are dark).
    if (node.state == NodeState::Crashed) {
      node.last_metrics = MetricSample{};
    } else {
      IdsModel ids(profile);
      node.last_metrics =
          ids.sample(active_step, node.state == NodeState::Compromised,
                     load_per_node, rng_);
    }
  }
}

void Testbed::recover(int node_index) {
  TOL_ENSURE(node_index >= 0 && node_index < num_nodes(),
             "node index out of range");
  auto& node = nodes_[static_cast<std::size_t>(node_index)];
  TOL_ENSURE(node.state != NodeState::Crashed,
             "crashed nodes are evicted, not recovered");
  attacker_.abort(node_index);
  const int id = node.id;  // identity survives container replacement
  node = make_node();
  node.id = id;
  --next_node_id_;  // make_node consumed an id we do not need
}

void Testbed::evict(int node_index) {
  TOL_ENSURE(node_index >= 0 && node_index < num_nodes(),
             "node index out of range");
  attacker_.abort(node_index);
  // Re-index the attacker's target if it pointed past the erased node.
  const auto target = attacker_.target();
  nodes_.erase(nodes_.begin() + node_index);
  if (target.has_value() && *target > node_index) {
    attacker_.abort(*target);  // conservative: restart targeting next step
  }
}

std::optional<int> Testbed::add_node() {
  if (num_nodes() >= config_.max_nodes) return std::nullopt;
  nodes_.push_back(make_node());
  return num_nodes() - 1;
}

void Testbed::force_compromise(int node_index, CompromisedBehavior behavior) {
  TOL_ENSURE(node_index >= 0 && node_index < num_nodes(),
             "node index out of range");
  auto& node = nodes_[static_cast<std::size_t>(node_index)];
  TOL_ENSURE(node.state != NodeState::Crashed,
             "cannot compromise a crashed node");
  attacker_.abort(node_index);
  node.state = NodeState::Compromised;
  node.behavior = behavior;
  node.under_attack = false;
  // Scripted events are applied between steps; the compromise takes effect
  // in the upcoming time-step, matching the stamp a stochastic compromise
  // gets inside step() (keeps T(R) comparable between the two).
  node.compromised_since = time_ + 1;
}

void Testbed::force_crash(int node_index) {
  TOL_ENSURE(node_index >= 0 && node_index < num_nodes(),
             "node index out of range");
  auto& node = nodes_[static_cast<std::size_t>(node_index)];
  attacker_.abort(node_index);
  node.state = NodeState::Crashed;
  node.under_attack = false;
  node.compromised_since = -1;
  node.last_metrics = MetricSample{};  // crashed nodes are dark
}

void Testbed::set_extra_load(int sessions) {
  TOL_ENSURE(sessions >= 0, "extra load must be non-negative");
  extra_load_ = sessions;
}

int Testbed::healthy_count() const {
  int count = 0;
  for (const auto& node : nodes_) {
    if (node.state == NodeState::Healthy) ++count;
  }
  return count;
}

int Testbed::failed_count() const {
  return num_nodes() - healthy_count();
}

}  // namespace tolerance::emulation
