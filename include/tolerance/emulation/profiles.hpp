// Container profiles of the paper's testbed: operating systems and
// vulnerabilities (Table 4), background services (Table 5) and the attacker's
// intrusion steps (Table 6).  The alert-signature parameters are calibrated
// so that the empirical alert distributions reproduce the shapes of Fig. 11
// (scans and brute-force steps generate thousands of priority-weighted
// alerts; CVE exploits generate moderate bursts).
#pragma once

#include <string>
#include <vector>

namespace tolerance::emulation {

/// One attacker action from Table 6 (e.g. "TCP SYN scan", "SSH brute force",
/// "exploit of CVE-2017-7494").  While the step executes, the IDS observes a
/// burst of alerts with the given gamma-distributed intensity.
struct IntrusionStep {
  std::string name;
  double alert_burst_mean = 0.0;   ///< mean priority-weighted alerts
  double alert_burst_shape = 2.0;  ///< gamma shape (dispersion control)
};

struct ContainerProfile {
  int replica_id = 0;  ///< 1..10, matching Table 4
  std::string os;
  std::vector<std::string> vulnerabilities;
  std::vector<std::string> background_services;  ///< Table 5
  std::vector<IntrusionStep> intrusion_steps;    ///< Table 6
  /// Baseline priority-weighted alerts per step caused by background
  /// clients (per unit of load).
  double baseline_alerts_per_load = 2.0;
  /// Residual alert intensity while compromised (post-intrusion C2 traffic).
  double compromised_alert_mean = 900.0;
};

/// The ten containers of Table 4.
const std::vector<ContainerProfile>& container_catalog();

/// Lookup by replica id (1-based, as in the paper).
const ContainerProfile& container(int replica_id);

}  // namespace tolerance::emulation
