// Detector fitting — the training phase of §VIII-A: collect M = 25,000
// labeled metric samples per container, bin the raw priority-weighted alert
// counts into the observation alphabet O by quantiles, and estimate the
// empirical channel Ẑ by maximum likelihood (Fig. 11).  By Glivenko-Cantelli
// Ẑ -> Z almost surely as M grows.
#pragma once

#include <memory>

#include "tolerance/emulation/profiles.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/stats/empirical.hpp"

namespace tolerance::emulation {

struct FittedDetector {
  stats::QuantileBinner binner;                      ///< raw alerts -> O
  std::shared_ptr<pomdp::EmpiricalObservationModel> model;  ///< Ẑ over O
  double kl_healthy_compromised = 0.0;  ///< DKL(Ẑ(.|H) || Ẑ(.|C)), Fig. 14/18

  /// Map a raw alert count to an observation symbol.
  int observe(double raw_alerts) const { return binner.bin(raw_alerts); }
};

/// Fit a detector for one container profile.
FittedDetector fit_detector(const ContainerProfile& profile, int samples,
                            int num_bins, double background_load, Rng& rng);

/// Fit a pooled detector across the whole Table 4 catalog — what the node
/// controllers use in the evaluation (recoveries draw random containers, so
/// the controller cannot specialize per container).
FittedDetector fit_pooled_detector(int samples_per_container, int num_bins,
                                   double background_load, Rng& rng);

/// Raw (unbinned) alert samples for a container — Fig. 11's histograms.
struct AlertSamples {
  std::vector<double> healthy;
  std::vector<double> compromised;
};
AlertSamples collect_alert_samples(const ContainerProfile& profile,
                                   int samples, double background_load,
                                   Rng& rng);

}  // namespace tolerance::emulation
