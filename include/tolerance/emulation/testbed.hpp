// The emulated testbed of §VIII-A: N_t nodes running randomly-drawn
// containers from Table 4, a background-client population, an attacker
// executing Table 6 intrusions, per-node IDS metric streams, and the
// response actions of §II: recover, evict, add.
//
// Evaluation runs evolve in 60-second time-steps with horizon 10^3 and the
// node dynamics of kernel (2): crashes with pC1/pC2, software updates with
// pU, compromises driven by the attacker.
#pragma once

#include <optional>
#include <vector>

#include "tolerance/emulation/attacker.hpp"
#include "tolerance/emulation/background.hpp"
#include "tolerance/emulation/ids.hpp"
#include "tolerance/emulation/profiles.hpp"
#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::emulation {

struct TestbedConfig {
  int initial_nodes = 3;                 ///< N1
  int max_nodes = 13;                    ///< smax (the Table 3 pool size)
  double p_crash_healthy = 1e-5;         ///< pC1
  double p_crash_compromised = 1e-3;     ///< pC2
  double p_update = 2e-2;                ///< pU
  Attacker::Config attacker;             ///< intrusion-start rate
  double background_arrival_rate = 20.0; ///< lambda (Poisson)
  double background_mean_session = 4.0;  ///< mu (exponential, in steps)
};

struct EmulatedNode {
  int id = 0;               ///< stable identity (grows monotonically)
  int container_id = 0;     ///< index into Table 4
  pomdp::NodeState state = pomdp::NodeState::Healthy;
  CompromisedBehavior behavior = CompromisedBehavior::Participate;
  bool under_attack = false;       ///< Table 6 steps in progress
  int compromised_since = -1;      ///< time-step of compromise, -1 if healthy
  MetricSample last_metrics;       ///< this step's IDS observation
};

class Testbed {
 public:
  Testbed(TestbedConfig config, std::uint64_t seed);

  const TestbedConfig& config() const { return config_; }
  const std::vector<EmulatedNode>& nodes() const { return nodes_; }
  int time() const { return time_; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  /// Advance the environment by one time-step: background load, attacker
  /// progress, crashes, software updates, IDS sampling.
  void step();

  /// Response action (i): replace the node's container with a fresh one
  /// drawn at random from Table 4 (§VIII-A); aborts in-progress intrusions.
  void recover(int node_index);

  /// Response action (ii): evict a node (typically crashed).
  void evict(int node_index);

  /// Response action (iii): add a new node (fresh random container), if the
  /// hardware pool (Table 3) has capacity.  Returns the new node's index.
  std::optional<int> add_node();

  int healthy_count() const;
  /// Number of compromised or crashed nodes (the Prop. 1 budget).
  int failed_count() const;
  int background_load() const { return background_.load(); }

  // --- Scenario hooks (emulation/scenarios.hpp): scripted events outside
  // the stochastic dynamics, used to construct adversarial situations the
  // attacker model alone reaches only with vanishing probability. ---

  /// Compromise a healthy node instantly with the given post-compromise
  /// behaviour (a zero-step intrusion, e.g. a supply-chain backdoor).
  void force_compromise(int node_index, CompromisedBehavior behavior);

  /// Crash a node instantly (power loss, kernel panic).
  void force_crash(int node_index);

  /// Additional background sessions applied on top of the M/M/inf load in
  /// subsequent step()s — a slow-loris style load injection.  Sticky until
  /// changed; pass 0 to clear.
  void set_extra_load(int sessions);
  int extra_load() const { return extra_load_; }

 private:
  EmulatedNode make_node();

  TestbedConfig config_;
  Rng rng_;
  BackgroundWorkload background_;
  Attacker attacker_;
  std::vector<EmulatedNode> nodes_;
  int time_ = 0;
  int next_node_id_ = 0;
  int extra_load_ = 0;
};

}  // namespace tolerance::emulation
