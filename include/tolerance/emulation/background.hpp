// Background client population of §VIII-A: clients arrive with Poisson rate
// lambda = 20 and hold sessions with exponentially distributed durations of
// mean mu = 4 time-steps (an M/M/inf queue).  The instantaneous load drives
// the baseline levels of every IDS metric.
#pragma once

#include <vector>

#include "tolerance/util/rng.hpp"

namespace tolerance::emulation {

class BackgroundWorkload {
 public:
  BackgroundWorkload(double arrival_rate, double mean_session_steps)
      : arrival_rate_(arrival_rate), mean_session_(mean_session_steps) {}

  /// Advance one time-step; returns the load (active sessions) after it.
  int step(Rng& rng);

  int load() const { return static_cast<int>(remaining_.size()); }

  /// Long-run expected load (Little's law: lambda * mu).
  double expected_load() const { return arrival_rate_ * mean_session_; }

 private:
  double arrival_rate_;
  double mean_session_;
  std::vector<double> remaining_;  ///< residual session durations
};

}  // namespace tolerance::emulation
