// Scenario description layer for the end-to-end system-controller harness.
//
// A Scenario bundles everything one closed-loop episode needs — the node
// model parameters, the testbed/attacker configuration, the tolerance
// threshold f and hardware pool, and a script of timed adversarial events
// that push the cluster into situations the stochastic attacker of §VIII-A
// alone reaches only with vanishing probability: staggered multi-node
// intrusions, flapping IDS false-positive storms, correlated compromise
// bursts exceeding f, slow-loris background load, crash waves.
//
// scenario_catalog() is the library of named scenarios the integration test
// battery, the churn-sweep bench and the README all refer to; every entry is
// runnable via ScenarioRunner::run_many with bit-identical results at any
// thread count.
#pragma once

#include <string>
#include <vector>

#include "tolerance/emulation/attacker.hpp"
#include "tolerance/emulation/testbed.hpp"
#include "tolerance/pomdp/node_model.hpp"

namespace tolerance::emulation {

/// One scripted event, applied at the start of control cycle `step`
/// (1-based, before the testbed dynamics run).
struct ScenarioEvent {
  enum class Kind {
    ForceCompromise,  ///< compromise `count` healthy nodes instantly
    ForceCrash,       ///< crash `count` nodes instantly
    AlertStorm,       ///< add `magnitude` false-positive alerts per node for
                      ///< `duration` cycles (IDS noise on healthy nodes)
    LoadSpike,        ///< add `magnitude` background sessions for `duration`
                      ///< cycles (slow-loris style)
  };

  int step = 1;
  Kind kind = Kind::ForceCompromise;
  int count = 1;         ///< nodes affected (ForceCompromise / ForceCrash)
  int duration = 1;      ///< cycles the condition lasts (storm / spike)
  double magnitude = 0.0;  ///< extra alerts per cycle, or extra sessions
  /// Post-compromise behaviour for ForceCompromise (§VIII-A a/b/c).
  CompromisedBehavior behavior = CompromisedBehavior::Participate;
};

/// A named, self-contained closed-loop experiment.
struct Scenario {
  std::string name;
  std::string description;

  int horizon = 100;      ///< control cycles (60 s each in the paper)
  int initial_nodes = 3;  ///< N1; must be >= 2f + 1
  int f = 1;              ///< tolerance threshold (Prop. 1)
  int max_nodes = 7;      ///< hardware pool (Table 3)
  double recovery_threshold = 0.76;  ///< alpha* (Fig. 13b)
  double epsilon_a = 0.9;            ///< availability target for Alg. 2
  pomdp::NodeParams node_params;     ///< belief-model parameters (Table 8)
  TestbedConfig testbed;             ///< environment parameters
  std::vector<ScenarioEvent> events;
};

/// The library of named adversarial scenarios (see README "Scenarios").
const std::vector<Scenario>& scenario_catalog();

/// Lookup by name; aborts on an unknown name (the catalog is closed).
const Scenario& find_scenario(const std::string& name);

/// All catalog names, in catalog order.
std::vector<std::string> scenario_names();

}  // namespace tolerance::emulation
