// Scenario description layer for the end-to-end system-controller harness.
//
// A Scenario bundles everything one closed-loop episode needs — the node
// model parameters, the testbed/attacker configuration, the tolerance
// threshold f and hardware pool, and a script of timed adversarial events
// that push the cluster into situations the stochastic attacker of §VIII-A
// alone reaches only with vanishing probability: staggered multi-node
// intrusions, flapping IDS false-positive storms, correlated compromise
// bursts exceeding f, slow-loris background load, crash waves.
//
// scenario_catalog() is the library of named scenarios the integration test
// battery, the churn-sweep bench and the README all refer to; every entry is
// runnable via ScenarioRunner::run_many with bit-identical results at any
// thread count.
#pragma once

#include <string>
#include <vector>

#include "tolerance/emulation/attacker.hpp"
#include "tolerance/emulation/testbed.hpp"
#include "tolerance/pomdp/node_model.hpp"

namespace tolerance::emulation {

/// One scripted event, applied at the start of control cycle `step`
/// (1-based, before the testbed dynamics run).
struct ScenarioEvent {
  enum class Kind {
    ForceCompromise,  ///< compromise `count` healthy nodes instantly
    ForceCrash,       ///< crash `count` nodes instantly
    AlertStorm,       ///< add `magnitude` false-positive alerts per node for
                      ///< `duration` cycles (IDS noise on healthy nodes)
    LoadSpike,        ///< add `magnitude` background sessions for `duration`
                      ///< cycles (slow-loris style)
    // --- service-boundary overload events (PR 8) --------------------------
    // These flood the MinBFT service itself with client requests, not the
    // IDS/background layer: `count` flood clients each submit `magnitude`
    // requests per control cycle for `duration` cycles.  They differ only
    // in the flood clients' retransmission discipline.
    RequestFlood,    ///< plain spike: default client retry timeout
    RetryStorm,      ///< aggressive 1 s retry timeout — synchronized
                     ///< retransmission storms amplify the offered load
    SlowLorisFlood,  ///< retry timeout beyond the horizon: requests are
                     ///< submitted once and linger, tying up queue slots
    // --- level-2 controller faults (PR 9) ---------------------------------
    // These target the CMDP re-solver itself (core/async_controller.hpp),
    // not the replicas: the decision loop must degrade through the
    // FRESH/HOLD/FALLBACK ladder instead of freezing.
    ControllerCrash,  ///< re-solver crashes for `duration` cycles; the
                      ///< in-flight solve is lost and the restart is cold
    ControllerStall,  ///< GC pause: solves neither complete nor launch for
                      ///< `duration` cycles (the results park until it ends)
    SolverFailure,    ///< the next `count` re-solves return poisoned
                      ///< (infeasible) tables the guard must reject
  };

  int step = 1;
  Kind kind = Kind::ForceCompromise;
  int count = 1;         ///< nodes affected, or flood clients (floods)
  int duration = 1;      ///< cycles the condition lasts (storm / spike / flood)
  double magnitude = 0.0;  ///< extra alerts per cycle, extra sessions, or
                           ///< requests per flood client per cycle
  /// Post-compromise behaviour for ForceCompromise (§VIII-A a/b/c).
  CompromisedBehavior behavior = CompromisedBehavior::Participate;
};

/// Level-2 controller configuration for a scenario: whether the CMDP
/// re-solve runs asynchronously (core/async_controller.hpp) and the
/// staleness-ladder knobs.  Defaults mirror AsyncControllerConfig; `async`
/// is false so the legacy catalog keeps its inline-solve (and byte-identical
/// golden-trace) behaviour, and the controller-fault family switches it on.
struct ScenarioController {
  bool async = false;
  int resolve_period = 5;
  int solve_latency_cycles = 1;
  int staleness_budget = 8;
  int fallback_deadline = 16;
  int retry_backoff_cycles = 2;
  int max_retry_backoff_cycles = 16;
};

/// A named, self-contained closed-loop experiment.
struct Scenario {
  std::string name;
  std::string description;

  int horizon = 100;      ///< control cycles (60 s each in the paper)
  int initial_nodes = 3;  ///< N1; must be >= 2f + 1
  int f = 1;              ///< tolerance threshold (Prop. 1)
  int max_nodes = 7;      ///< hardware pool (Table 3)
  double recovery_threshold = 0.76;  ///< alpha* (Fig. 13b)
  double epsilon_a = 0.9;            ///< availability target for Alg. 2
  pomdp::NodeParams node_params;     ///< belief-model parameters (Table 8)
  TestbedConfig testbed;             ///< environment parameters
  /// Enable the replicas' admission-control valve (EWMA pressure, token
  /// budgets, typed Overloaded rejections).  The overload catalog entries
  /// set this; the bench's no-admission baselines clear it on a copy.
  bool admission_control = false;
  /// Level-2 controller wiring (async re-solver + staleness failsafe).
  ScenarioController controller;
  std::vector<ScenarioEvent> events;
};

/// True for the service-boundary overload kinds (RequestFlood / RetryStorm /
/// SlowLorisFlood) — the events that make a scenario's timing depend on the
/// consensus batching knobs (so the batched-vs-unbatched equivalence suite
/// skips it) and that extend its trace with overload telemetry.
bool is_flood_event(ScenarioEvent::Kind kind);

/// True when any event in `s` is a flood event.
bool has_flood_events(const Scenario& s);

/// True for the controller-fault kinds (ControllerCrash / ControllerStall /
/// SolverFailure) — events that target the level-2 re-solver rather than
/// the replicas, and that extend a scenario's trace with controller
/// epoch/staleness/mode telemetry.
bool is_controller_event(ScenarioEvent::Kind kind);

/// True when any event in `s` is a controller-fault event.
bool has_controller_events(const Scenario& s);

/// The library of named adversarial scenarios (see README "Scenarios").
const std::vector<Scenario>& scenario_catalog();

/// Lookup by name; aborts on an unknown name (the catalog is closed).
const Scenario& find_scenario(const std::string& name);

/// All catalog names, in catalog order.
std::vector<std::string> scenario_names();

}  // namespace tolerance::emulation
