// Stochastic IDS / infrastructure-metric generator.
//
// Replaces the SNORT v2.9.17.1 deployment of §VII-A.  Per node and time-step
// it emits the metric vector of Appendix H (Fig. 18): priority-weighted IDS
// alerts, failed login attempts, new processes, new TCP connections, disk
// blocks written and read.  The per-metric signal strengths are calibrated so
// the KL divergences between the intrusion and no-intrusion distributions
// reproduce the ordering the paper measured (alerts 0.49 >> blocks written
// 0.12 > failed logins 0.07 > processes ~ tcp 0.01 > blocks read ~ 0).
#pragma once

#include "tolerance/emulation/profiles.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::emulation {

struct MetricSample {
  double alerts_weighted = 0.0;
  double failed_logins = 0.0;
  double new_processes = 0.0;
  double tcp_connections = 0.0;
  double blocks_written = 0.0;
  double blocks_read = 0.0;
};

/// Metric channel names in Fig. 18 order.
inline constexpr const char* kMetricNames[] = {
    "alerts_weighted", "failed_logins",  "new_processes",
    "tcp_connections", "blocks_written", "blocks_read"};
inline constexpr int kNumMetrics = 6;

double metric_value(const MetricSample& s, int metric_index);

class IdsModel {
 public:
  explicit IdsModel(const ContainerProfile& profile) : profile_(&profile) {}

  /// Sample one step of metrics.
  /// `intrusion_step` — the attacker step executing this step, or nullptr.
  /// `compromised` — node currently compromised (residual C2 noise).
  /// `background_load` — number of active background-client sessions.
  MetricSample sample(const IntrusionStep* intrusion_step, bool compromised,
                      double background_load, Rng& rng) const;

  const ContainerProfile& profile() const { return *profile_; }

 private:
  const ContainerProfile* profile_;
};

}  // namespace tolerance::emulation
