// The attacker of §II / §VIII-A: intrudes through the gateways, executes the
// per-container intrusion steps of Table 6 (scan, then brute force or CVE
// exploit), and after compromising a replica picks one of three behaviours:
// (a) participate in the consensus protocol, (b) not participate, or
// (c) participate with randomly selected messages.
//
// The attacker works on one target at a time (it wants to avoid detection);
// each Table 6 step occupies one 60-second evaluation time-step and produces
// its alert signature on the target node.
#pragma once

#include <optional>

#include "tolerance/emulation/profiles.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::emulation {

enum class CompromisedBehavior { Participate, Silent, RandomMessages };

class Attacker {
 public:
  struct Config {
    /// Probability per time-step of starting an intrusion against a healthy
    /// node when idle (drives the compromise rate; the pA analogue).
    double start_probability = 0.1;
  };

  explicit Attacker(Config config) : config_(config) {}

  /// Is an intrusion currently in progress against `node_index`?
  bool attacking(int node_index) const {
    return target_.has_value() && *target_ == node_index;
  }

  /// The Table 6 step executing against the target this time-step, if any.
  const IntrusionStep* current_step(const ContainerProfile& profile) const;

  /// Called each step while idle: decide whether to engage `node_index`.
  bool maybe_engage(int node_index, Rng& rng);

  /// Advance the intrusion by one step; returns true when the final step
  /// completed, i.e. the target is now compromised.
  bool advance(const ContainerProfile& profile);

  /// The target was recovered/evicted mid-intrusion: abort.
  void abort(int node_index);

  /// Reset after a successful compromise (move on to the next victim).
  void on_compromised();

  /// Behaviour choice after compromise (uniform among a/b/c, §VIII-A).
  static CompromisedBehavior choose_behavior(Rng& rng);

  std::optional<int> target() const { return target_; }

 private:
  Config config_;
  std::optional<int> target_;
  std::size_t step_index_ = 0;
};

}  // namespace tolerance::emulation
