// End-to-end closed loop for the second feedback level (§IV-V): each control
// cycle, the per-node belief estimates computed from the IdsModel metric
// streams feed the CMDP replication policy (Algorithm 2), and the resulting
// recover / evict / add decisions mutate BOTH the emulated testbed and a
// live MinBFT cluster — container replacement with USIG epoch bump and state
// transfer for recoveries, consensus-ordered membership operations for
// evictions and joins, view changes when scripted compromises silence the
// leader.  Service availability is measured end-to-end by submitting a probe
// operation through a MinBFT client every cycle.
//
// Episodes are seeded independently, so run_many shards across the PR-2
// parallel engine with bit-identical results at any thread count.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tolerance/emulation/estimation.hpp"
#include "tolerance/emulation/scenarios.hpp"
#include "tolerance/pomdp/system_model.hpp"
#include "tolerance/solvers/cmdp_lp.hpp"

namespace tolerance::emulation {

/// Per-episode outcome: the §III-C metrics plus the consensus-level view of
/// the same episode and (optionally) the full decision/membership trace.
struct ScenarioResult {
  double availability = 0.0;          ///< T(A): fraction of cycles failed <= f
  double service_availability = 0.0;  ///< probe-based: consensus answered
  double time_to_recovery = 0.0;      ///< T(R) over closed compromises
  double avg_nodes = 0.0;             ///< mean N_t (operational cost)
  int recoveries = 0;
  int evictions = 0;
  int additions = 0;
  int compromises = 0;
  int crashes = 0;
  int quorum_stalls = 0;     ///< membership ops consensus could not order
  int deferred_evictions = 0;  ///< evictions clamped by SystemLimits
  int min_membership = 0;    ///< smallest consensus membership observed
  int max_membership = 0;
  std::uint64_t final_view = 0;  ///< max view over live replicas at the end
  // --- overload telemetry (flood scenarios; defaults elsewhere) -----------
  std::uint64_t flood_submitted = 0;  ///< legitimate flood requests offered
  std::uint64_t flood_completed = 0;  ///< ... of those, completed by horizon
  std::uint64_t flood_rejections = 0;  ///< verified Overloaded replies seen
  std::uint64_t flood_backoffs = 0;    ///< f+1 rejection quorums -> backoff
  /// completed / (submitted - shed-at-horizon) over the legitimate flood
  /// clients (RequestFlood / RetryStorm; slow-loris clients are adversarial
  /// load and excluded).  Shed requests — those an f+1 rejection quorum put
  /// into backoff custody — are the valve working as designed, so they do
  /// not count against the traffic the valve admitted.  1.0 with no floods.
  double admitted_availability = 1.0;
  /// Max over cycles and replicas of the per-replica queue depth (leader
  /// backlog + undelivered transport inbox), sampled at each cycle end.
  int max_queue_depth = 0;
  // --- controller-health telemetry (async level-2 controller; inline runs
  // report mode "inline" with zero epochs) ---------------------------------
  std::uint64_t policy_epoch = 0;  ///< last published policy epoch
  long controller_resolves = 0;    ///< accepted background re-solves
  long controller_rejected = 0;    ///< poisoned re-solves the guard rejected
  long controller_hold_cycles = 0;
  long controller_fallback_cycles = 0;
  /// Inline/no-failsafe baseline only: cycles where a scripted controller
  /// fault froze the level-2 step outright (no evictions, no additions).
  long controller_frozen_cycles = 0;
  int controller_max_staleness = 0;
  std::string controller_mode = "inline";  ///< mode at the horizon
  /// One line per control cycle (integer fields only, so the golden-trace
  /// regression is robust): "t=3 s=4 N=5 H=4 M=5 svc=1 rec=[2] evt=[] add=0
  /// defer=0 stall=0" — flood scenarios append " fs=.. fc=.. fr=.. q=.."
  /// (cumulative submitted/completed/rejections + this cycle's max depth).
  std::vector<std::string> trace;
};

/// Field-exact equality including the trace — the determinism predicate the
/// thread-count tests assert.
bool identical(const ScenarioResult& a, const ScenarioResult& b);

struct ScenarioOptions {
  /// Simulated seconds per control cycle (the paper's 60 s time-step);
  /// also the probe deadline.
  double cycle_seconds = 60.0;
  /// Network-event budget for one consensus-ordered membership operation.
  std::size_t membership_event_budget = 120000;
  bool record_trace = true;
  /// Consensus batching knobs, forwarded to MinBftConfig: requests bound to
  /// one USIG counter and sealed-but-unexecuted batches in flight.  The
  /// scenario workload is sequential (one probe / membership op at a time),
  /// so batched and unbatched runs are bit-identical — which the batching
  /// equivalence suite asserts across the whole catalog.
  int consensus_batch_size = 16;
  int consensus_pipeline_depth = 4;
  /// Override the scenario's ScenarioController::async flag: true forces the
  /// asynchronous level-2 controller on (requires the runner to hold the
  /// system CMDP for re-solving), false forces the legacy inline solve (the
  /// bench uses this as the no-failsafe baseline for the controller-fault
  /// family).  nullopt follows the scenario.
  std::optional<bool> async_controller;
};

class ScenarioRunner {
 public:
  using Options = ScenarioOptions;

  /// `replication` is the Algorithm 2 strategy; std::nullopt runs a static
  /// replication factor (evictions still happen, nodes are never added).
  /// `cmdp` is the system CMDP behind `replication` — required when the
  /// asynchronous controller is enabled (scenario or options), because the
  /// background re-solver needs the model to re-solve.
  ScenarioRunner(Scenario scenario, FittedDetector detector,
                 std::optional<solvers::CmdpSolution> replication,
                 Options options = {},
                 std::optional<pomdp::SystemCmdp> cmdp = std::nullopt);

  const Scenario& scenario() const { return scenario_; }

  /// One closed-loop episode.
  ScenarioResult run(std::uint64_t seed) const;

  /// One episode per seed, sharded across `threads` workers (<= 0 resolves
  /// via util::resolve_threads).  Episodes are seeded independently, so
  /// entry i equals run(seeds[i]) bit-for-bit at any thread count.
  std::vector<ScenarioResult> run_many(const std::vector<std::uint64_t>& seeds,
                                       int threads = 0) const;

 private:
  Scenario scenario_;
  FittedDetector detector_;
  std::optional<solvers::CmdpSolution> replication_;
  Options options_;
  std::optional<pomdp::SystemCmdp> cmdp_;
};

/// Convenience: fit a pooled detector and solve the replication LP for
/// `scenario` — the training phase shared by the test battery and the bench
/// (deterministic given `seed`).
ScenarioRunner make_scenario_runner(const Scenario& scenario,
                                    std::uint64_t seed,
                                    int detector_samples = 60,
                                    ScenarioRunner::Options options = {});

}  // namespace tolerance::emulation
