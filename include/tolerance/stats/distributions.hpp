// Parametric discrete distributions used by the node observation model (3)
// and the emulation workload generators.
//
// The paper instantiates the observation channel Z(.|s) as Beta-Binomial
// distributions (Table 8): Z(.|H) = BetaBin(n=10, a=0.7, b=3) and
// Z(.|C) = BetaBin(n=10, a=1, b=0.7).
#pragma once

#include <vector>

#include "tolerance/util/rng.hpp"

namespace tolerance::stats {

/// Beta-Binomial distribution on {0, ..., n}.
class BetaBinomial {
 public:
  BetaBinomial(int n, double alpha, double beta);

  int n() const { return n_; }
  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

  double pmf(int k) const;
  double log_pmf(int k) const;
  double mean() const;

  /// Full pmf vector over {0, ..., n}.
  std::vector<double> pmf_vector() const;

  int sample(Rng& rng) const;

 private:
  int n_;
  double alpha_;
  double beta_;
};

/// Poisson distribution (workload arrivals, §VIII-A uses lambda = 20).
class PoissonDist {
 public:
  explicit PoissonDist(double mean);
  double mean() const { return mean_; }
  double pmf(int k) const;
  int sample(Rng& rng) const;

 private:
  double mean_;
};

/// Geometric distribution on {1, 2, ...}: number of trials to first success.
/// The node failure time under kernel (2) is geometric (§V-A, Fig. 5).
class GeometricDist {
 public:
  explicit GeometricDist(double p);
  double p() const { return p_; }
  double pmf(int k) const;         // P[X = k], k >= 1
  double cdf(int k) const;         // P[X <= k]
  double mean() const { return 1.0 / p_; }
  int sample(Rng& rng) const;

 private:
  double p_;
};

/// Binomial distribution on {0, ..., n}; used by the parametric system
/// kernel fS (8) where healthy nodes survive independently.
class BinomialDist {
 public:
  BinomialDist(int n, double p);
  double pmf(int k) const;
  std::vector<double> pmf_vector() const;
  int sample(Rng& rng) const;

 private:
  int n_;
  double p_;
};

}  // namespace tolerance::stats
