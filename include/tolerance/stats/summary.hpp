// Sample summaries and Student-t confidence intervals.  The paper reports
// every number as "mean ± 95% CI based on the Student-t distribution"
// (Appendix E); MeanCi reproduces that convention.
#pragma once

#include <vector>

namespace tolerance::stats {

double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double sample_variance(const std::vector<double>& xs);

double sample_stddev(const std::vector<double>& xs);

struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

/// Student-t confidence interval for the mean at the given confidence level.
MeanCi mean_ci(const std::vector<double>& xs, double confidence = 0.95);

/// Empirical quantile (linear interpolation between order statistics).
double quantile(std::vector<double> xs, double q);

/// Mergeable sample accumulator for parallel Monte-Carlo reductions.
///
/// Keeps the samples themselves (a figure sweep is at most a few thousand
/// doubles), so merging per-shard accumulators *in shard order* reproduces
/// the serial accumulation bit-for-bit — no floating-point reassociation,
/// which summed-moment accumulators cannot guarantee.
class SummaryAccumulator {
 public:
  void reserve(std::size_t n) { xs_.reserve(n); }
  void add(double x) { xs_.push_back(x); }

  /// Append another accumulator's samples.  Merging shards in index order
  /// yields exactly the sample sequence of a serial sweep.
  void merge(const SummaryAccumulator& other) {
    xs_.insert(xs_.end(), other.xs_.begin(), other.xs_.end());
  }

  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  MeanCi ci(double confidence = 0.95) const;
  const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
};

}  // namespace tolerance::stats
