// Sample summaries and Student-t confidence intervals.  The paper reports
// every number as "mean ± 95% CI based on the Student-t distribution"
// (Appendix E); MeanCi reproduces that convention.
#pragma once

#include <vector>

namespace tolerance::stats {

double mean(const std::vector<double>& xs);

/// Unbiased sample variance (n-1 denominator); 0 for fewer than 2 samples.
double sample_variance(const std::vector<double>& xs);

double sample_stddev(const std::vector<double>& xs);

struct MeanCi {
  double mean = 0.0;
  double half_width = 0.0;
  double lo() const { return mean - half_width; }
  double hi() const { return mean + half_width; }
};

/// Student-t confidence interval for the mean at the given confidence level.
MeanCi mean_ci(const std::vector<double>& xs, double confidence = 0.95);

/// Empirical quantile (linear interpolation between order statistics).
double quantile(std::vector<double> xs, double q);

}  // namespace tolerance::stats
