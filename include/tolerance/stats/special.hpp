// Special functions needed for the statistical substrate: regularized
// incomplete beta (Student-t CDF), normal/Student-t quantiles, log-beta.
// Implemented from scratch (no external dependencies).
#pragma once

namespace tolerance::stats {

/// Thread-safe log Gamma(x) for x > 0 (Lanczos approximation, g = 7).
/// glibc's lgamma writes the global `signgam` — a data race when belief
/// updates run on parallel episode workers (TSan flags it) — so every
/// internal consumer goes through this reentrant, libc-independent version.
double log_gamma(double x);

/// log Beta(a, b) = log_gamma(a) + log_gamma(b) - log_gamma(a+b).
double log_beta(double a, double b);

/// Regularized incomplete beta function I_x(a, b) for x in [0, 1].
double regularized_incomplete_beta(double a, double b, double x);

/// Standard normal CDF.
double norm_cdf(double x);

/// Standard normal quantile (inverse CDF) for p in (0, 1).
double norm_quantile(double p);

/// Student-t CDF with `df` degrees of freedom.
double t_cdf(double x, double df);

/// Student-t quantile with `df` degrees of freedom, p in (0, 1).
double t_quantile(double p, double df);

/// log n-choose-k via log_gamma.
double log_choose(int n, int k);

}  // namespace tolerance::stats
