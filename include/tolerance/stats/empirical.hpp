// Empirical distributions and divergence measures.
//
// §VIII-A of the paper estimates the observation channel Z-hat from M=25,000
// testbed samples per container (Fig. 11), and Appendix H ranks candidate
// metrics by the Kullback-Leibler divergence between their intrusion and
// no-intrusion distributions (Fig. 18).  EmpiricalPmf + kl_divergence +
// QuantileBinner implement that pipeline.
#pragma once

#include <cstdint>
#include <vector>

#include "tolerance/util/rng.hpp"

namespace tolerance::stats {

/// A probability mass function over {0, ..., K-1} estimated from counts.
class EmpiricalPmf {
 public:
  /// Uniform pmf over `support_size` symbols.
  explicit EmpiricalPmf(int support_size);

  /// Build from raw counts with additive (Laplace) smoothing.
  static EmpiricalPmf from_counts(const std::vector<std::int64_t>& counts,
                                  double smoothing = 0.0);

  /// Build from integer samples clamped to {0, ..., support_size-1}.
  static EmpiricalPmf from_samples(const std::vector<int>& samples,
                                   int support_size, double smoothing = 0.0);

  int support_size() const { return static_cast<int>(p_.size()); }
  double prob(int k) const;
  const std::vector<double>& probs() const { return p_; }
  double mean() const;
  int sample(Rng& rng) const;

 private:
  explicit EmpiricalPmf(std::vector<double> p);
  std::vector<double> p_;
};

/// KL divergence D(p || q) between two pmfs on the same support.  Terms with
/// p_k = 0 contribute 0; a term with p_k > 0 and q_k = 0 yields +infinity.
double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q);
double kl_divergence(const EmpiricalPmf& p, const EmpiricalPmf& q);

/// Maps raw metric values (e.g. weighted IDS alert counts, which can reach
/// thousands) onto a small observation alphabet O = {0, ..., bins-1} using
/// quantile bin edges fitted on training samples.  This is how the emulated
/// controllers turn SNORT-like alert counts into POMDP observations.
class QuantileBinner {
 public:
  /// Fit `bins` bins whose edges are quantiles of the pooled samples.
  static QuantileBinner fit(std::vector<double> samples, int bins);

  int bin(double value) const;
  int num_bins() const { return static_cast<int>(edges_.size()) + 1; }
  const std::vector<double>& edges() const { return edges_; }

 private:
  explicit QuantileBinner(std::vector<double> edges);
  std::vector<double> edges_;  // ascending; value <= edges_[i] => bin i
};

}  // namespace tolerance::stats
