// Small dense linear algebra used by the Markov-chain analysis (Appendix F),
// the Gaussian-process surrogate in Bayesian optimization, and the simplex
// solver.  Row-major, value-semantic, bounds-checked via TOL_ENSURE.
#pragma once

#include <cstddef>
#include <vector>

#include "tolerance/util/ensure.hpp"

namespace tolerance::la {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t i, std::size_t j) {
    TOL_ENSURE(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    TOL_ENSURE(i < rows_ && j < cols_, "matrix index out of range");
    return data_[i * cols_ + j];
  }

  /// Raw row access (contiguous) for hot loops.
  double* row(std::size_t i) { return data_.data() + i * cols_; }
  const double* row(std::size_t i) const { return data_.data() + i * cols_; }

  Matrix transpose() const;

  /// True if every row sums to 1 (within tol) and entries are in [0,1].
  bool is_row_stochastic(double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// y = M x
std::vector<double> matvec(const Matrix& m, const std::vector<double>& x);

/// y = x^T M  (row vector times matrix), returned as a vector.
std::vector<double> vecmat(const std::vector<double>& x, const Matrix& m);

Matrix matmul(const Matrix& a, const Matrix& b);

double dot(const std::vector<double>& a, const std::vector<double>& b);

}  // namespace tolerance::la
