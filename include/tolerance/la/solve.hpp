// Dense linear solvers: Gaussian elimination with partial pivoting (MTTF
// hitting-time systems, Appendix F) and Cholesky factorization (Gaussian
// process regression inside Bayesian optimization).
#pragma once

#include <vector>

#include "tolerance/la/matrix.hpp"

namespace tolerance::la {

/// Solve A x = b; throws std::invalid_argument if A is (numerically) singular.
std::vector<double> gauss_solve(Matrix a, std::vector<double> b);

/// Matrix inverse via Gauss-Jordan; throws if singular.
Matrix invert(const Matrix& a);

/// Cholesky factor L (lower triangular) with A = L L^T; throws if A is not
/// positive definite.
Matrix cholesky(const Matrix& a);

/// Solve A x = b given the Cholesky factor L of A (forward + back substitution).
std::vector<double> cholesky_solve(const Matrix& l, std::vector<double> b);

}  // namespace tolerance::la
