// Monte-Carlo simulator for the node POMDP (Prob. 1).  Drives kernel (2),
// observation channel (3) and the belief recursion under an arbitrary
// recovery policy and reports the metrics of §III-C: average cost J_i (5),
// average time-to-recovery T(R) and recovery frequency F(R).
#pragma once

#include <functional>

#include "tolerance/pomdp/belief.hpp"
#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::pomdp {

/// A recovery policy maps (belief, absolute time step t = 1, 2, ...) to an
/// action.  The BTR constraint (6b) forces recovery at the periodic times
/// t = k*DeltaR and is the policy's responsibility (the ThresholdPolicy in
/// tolerance/solvers enforces it from t).
using NodePolicy = std::function<NodeAction(double belief, int t)>;

struct NodeRunStats {
  double avg_cost = 0.0;           ///< J_i estimate, eq. (5)
  double avg_time_to_recovery = 0.0;  ///< T(R): compromise -> recovery start
  double recovery_frequency = 0.0;    ///< F(R): recoveries per time-step
  double availability = 0.0;       ///< fraction of steps spent healthy
  int steps = 0;
  int num_compromises = 0;
  int num_recoveries = 0;
  int num_crashes = 0;
};

class NodeSimulator {
 public:
  NodeSimulator(NodeModel model, const ObservationModel& obs)
      : model_(model), updater_(model_, obs), obs_(&obs) {}

  /// Run one trajectory of `horizon` steps.  A crashed node is replaced by a
  /// fresh node (state resampled from the initial distribution b_1 = pA, the
  /// paper's convention in §V-A).  Compromises that are never recovered
  /// contribute the remaining horizon to T(R), matching how Table 7 reports
  /// T(R) = 10^3 for NO-RECOVERY with horizon 10^3.
  NodeRunStats run(const NodePolicy& policy, int horizon, Rng& rng) const;

  /// Average of `episodes` independent runs (objective evaluation in Alg. 1).
  NodeRunStats run_many(const NodePolicy& policy, int horizon, int episodes,
                        Rng& rng) const;

  const NodeModel& model() const { return model_; }
  const BeliefUpdater& updater() const { return updater_; }

 private:
  NodeModel model_;
  BeliefUpdater updater_;
  const ObservationModel* obs_;
};

}  // namespace tolerance::pomdp
