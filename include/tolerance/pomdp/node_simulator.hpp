// Monte-Carlo simulator for the node POMDP (Prob. 1).  Drives kernel (2),
// observation channel (3) and the belief recursion under an arbitrary
// recovery policy and reports the metrics of §III-C: average cost J_i (5),
// average time-to-recovery T(R) and recovery frequency F(R).
#pragma once

#include <functional>
#include <vector>

#include "tolerance/pomdp/belief.hpp"
#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::pomdp {

/// A recovery policy maps (belief, absolute time step t = 1, 2, ...) to an
/// action.  The BTR constraint (6b) forces recovery at the periodic times
/// t = k*DeltaR and is the policy's responsibility (the ThresholdPolicy in
/// tolerance/solvers enforces it from t).
using NodePolicy = std::function<NodeAction(double belief, int t)>;

struct NodeRunStats {
  double avg_cost = 0.0;           ///< J_i estimate, eq. (5)
  double avg_time_to_recovery = 0.0;  ///< T(R): compromise -> recovery start
  double recovery_frequency = 0.0;    ///< F(R): recoveries per time-step
  double availability = 0.0;       ///< fraction of steps spent healthy
  int steps = 0;
  int num_compromises = 0;
  int num_recoveries = 0;
  int num_crashes = 0;

  /// Episode-order reduction used by run_many: means of the per-episode
  /// averages, sums of the counters.  Always fold the full per-episode
  /// vector in index order — that keeps the floating-point accumulation
  /// identical no matter how the episodes were sharded across workers.
  static NodeRunStats reduce(const std::vector<NodeRunStats>& per_episode);
};

class NodeSimulator {
 public:
  NodeSimulator(NodeModel model, const ObservationModel& obs)
      : model_(model), updater_(model_, obs), obs_(&obs) {}

  /// Run one trajectory of `horizon` steps.  A crashed node is replaced by a
  /// fresh node (state resampled from the initial distribution b_1 = pA, the
  /// paper's convention in §V-A).  Compromises that are never recovered
  /// contribute the remaining horizon to T(R), matching how Table 7 reports
  /// T(R) = 10^3 for NO-RECOVERY with horizon 10^3.
  NodeRunStats run(const NodePolicy& policy, int horizon, Rng& rng) const;

  /// Average of `episodes` independent runs (objective evaluation in Alg. 1),
  /// sharded across `threads` workers.
  ///
  /// Seed derivation: one 64-bit base seed is drawn from `rng` (advancing it
  /// exactly once), and episode e then runs on the independent child stream
  /// Rng::stream(base, e).  Because each episode's stream depends only on
  /// (base, e) and per-episode statistics are reduced in episode order
  /// (NodeRunStats::reduce), the result is bit-identical for every `threads`
  /// value — including 1, the serial path — and every worker interleaving.
  ///
  /// `threads` <= 0 resolves via util::resolve_threads (TOLERANCE_THREADS
  /// env var, else hardware concurrency).  When the resolved count exceeds
  /// 1, `policy` is called concurrently and must be thread-safe — a pure
  /// function of (belief, t), as ThresholdPolicy::as_policy and
  /// PpoSolver::policy are.
  NodeRunStats run_many(const NodePolicy& policy, int horizon, int episodes,
                        Rng& rng, int threads = 0) const;

  const NodeModel& model() const { return model_; }
  const BeliefUpdater& updater() const { return updater_; }

 private:
  NodeModel model_;
  BeliefUpdater updater_;
  const ObservationModel* obs_;
};

}  // namespace tolerance::pomdp
