// Belief-state recursion of Appendix A.
//
// The belief b_t = P[S_t = C | history] is a sufficient statistic for the
// node POMDP.  Because a crash is observable (the node stops responding and
// is evicted, §V-B), the recursion runs on the two-state kernel conditioned
// on survival; BeliefUpdater implements exactly the recursion (e) of
// Appendix A restricted to {H, C}.
#pragma once

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"

namespace tolerance::pomdp {

class BeliefUpdater {
 public:
  BeliefUpdater(const NodeModel& model, const ObservationModel& obs)
      : model_(&model), obs_(&obs) {}

  /// Prediction step: m(C) = P[S_{t+1} = C | b_t, a_t, no crash].
  double predict(double belief, NodeAction a) const;

  /// Full Bayes update b_{t+1} = P[C | b_t, a_t, o_{t+1}] (Appendix A (e)).
  double update(double belief, NodeAction a, int observation) const;

  const NodeModel& model() const { return *model_; }
  const ObservationModel& observation_model() const { return *obs_; }

 private:
  const NodeModel* model_;
  const ObservationModel* obs_;
};

}  // namespace tolerance::pomdp
