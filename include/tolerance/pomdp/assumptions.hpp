// Checkers for the structural-result assumptions:
//  * Theorem 1 (threshold recovery strategies), assumptions A-E on the node
//    model and observation channel;
//  * Theorem 2 (threshold-mixture replication strategies), assumptions B-D
//    on the system kernel (A — feasibility — is certified by the LP solver).
//
// The benches report these so a user can tell when the threshold structure
// is *guaranteed* versus merely empirically near-optimal (§V discussion).
#pragma once

#include <string>
#include <vector>

#include "tolerance/pomdp/node_model.hpp"
#include "tolerance/pomdp/observation_model.hpp"
#include "tolerance/pomdp/system_model.hpp"

namespace tolerance::pomdp {

struct Theorem1Report {
  bool a_probabilities_interior = false;  ///< pA, pU, pC1, pC2 in (0,1)
  bool b_attack_update_bounded = false;   ///< pA + pU <= 1
  bool c_crash_gap = false;               ///< inequality (C) on pC2
  bool d_observations_positive = false;   ///< Z(o|s) > 0 everywhere
  bool e_tp2 = false;                     ///< Z is TP-2
  bool all() const {
    return a_probabilities_interior && b_attack_update_bounded &&
           c_crash_gap && d_observations_positive && e_tp2;
  }
  std::vector<std::string> violations() const;
};

Theorem1Report check_theorem1(const NodeModel& model,
                              const ObservationModel& obs);

struct Theorem2Report {
  bool b_full_support = false;        ///< f_S(s'|s,a) > 0
  bool c_monotone = false;            ///< first-order stochastic dominance in s
  bool d_tail_supermodular = false;   ///< tail-sum difference increasing
  bool all() const { return b_full_support && c_monotone && d_tail_supermodular; }
  std::vector<std::string> violations() const;
};

Theorem2Report check_theorem2(const SystemCmdp& cmdp, double tol = 1e-9);

}  // namespace tolerance::pomdp
