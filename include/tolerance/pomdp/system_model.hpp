// The global control level: system CMDP of §V-B (Prob. 2), an instance of
// the inventory-replenishment problem.
//
// State s_t in {0,...,smax} is the expected number of healthy nodes; the
// action a_t in {0,1} adds a node.  The kernel f_S (8) can be built
// parametrically (healthy nodes survive independently, compromised nodes are
// recovered by the local level with some per-step probability) or estimated
// from simulations of Prob. 1, which is what the paper does (Appendix E,
// Fig. 16).  The objective (9)-(10) minimizes the average number of nodes
// subject to the availability constraint E[T(A)] >= epsilon_A.
#pragma once

#include "tolerance/la/matrix.hpp"
#include "tolerance/pomdp/node_simulator.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::pomdp {

class SystemCmdp {
 public:
  /// `kernel_wait` / `kernel_add` are (smax+1)x(smax+1) row-stochastic
  /// matrices for a = 0 and a = 1.
  SystemCmdp(int smax, int f, double epsilon_a, la::Matrix kernel_wait,
             la::Matrix kernel_add);

  /// Parametric kernel: from state s, each of the s healthy nodes stays
  /// healthy w.p. `q_healthy`; each of the (smax - s) unhealthy/vacant slots
  /// turns healthy w.p. `q_recover` (local recoveries / node replacements);
  /// action a = 1 adds one healthy node.  Each row is mixed with `mix`
  /// uniform mass so assumption B of Thm. 2 (full support) holds.
  static SystemCmdp parametric(int smax, int f, double epsilon_a,
                               double q_healthy, double q_recover,
                               double mix = 1e-4);

  /// Kernel estimated from Monte-Carlo simulation of Prob. 1 (the paper's
  /// route): runs `episodes` trajectories of `smax` nodes under `policy` and
  /// counts healthy-count transitions; rows are Laplace-smoothed so the
  /// kernel has full support.
  static SystemCmdp estimate_from_node_simulation(
      int smax, int f, double epsilon_a, const NodeModel& model,
      const ObservationModel& obs, const NodePolicy& policy, int episodes,
      int horizon, Rng& rng, double smoothing = 0.1);

  int smax() const { return smax_; }
  int f() const { return f_; }
  double epsilon_a() const { return epsilon_a_; }
  int num_states() const { return smax_ + 1; }

  /// f_S(next | s, a), eq. (8).
  double trans(int s, int a, int next) const;
  const la::Matrix& kernel(int a) const;

  /// Immediate cost (9): the number of nodes.
  double cost(int s) const { return static_cast<double>(s); }

  /// Availability indicator [s >= f+1] (Prop. 1 / eq. (9)).
  bool available(int s) const { return s >= f_ + 1; }

  int step(int s, int a, Rng& rng) const;

 private:
  int smax_;
  int f_;
  double epsilon_a_;
  la::Matrix kernel_[2];
};

}  // namespace tolerance::pomdp
