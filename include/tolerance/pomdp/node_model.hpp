// The local control level: node state model of §V-A.
//
// A node is Healthy (H), Compromised (C) or Crashed (∅); the node controller
// chooses Wait (W) or Recover (R).  The Markovian transition kernel f_{N,i}
// is eq. (2) of the paper and the per-step cost c_N is eq. (5):
//
//   c_N(s, a) = eta*s - a*eta*s + a      with H, C = 0, 1 and W, R = 0, 1,
//
// i.e. waiting while compromised costs eta and every recovery costs 1.
#pragma once

#include "tolerance/la/matrix.hpp"

namespace tolerance::pomdp {

enum class NodeState { Healthy = 0, Compromised = 1, Crashed = 2 };
enum class NodeAction { Wait = 0, Recover = 1 };

/// Parameters of kernel (2).  Defaults follow Table 8 (Appendix E).
struct NodeParams {
  double p_attack = 0.1;               ///< pA: compromise prob per step
  double p_crash_healthy = 1e-5;       ///< pC1: crash prob while healthy
  double p_crash_compromised = 1e-3;   ///< pC2: crash prob while compromised
  double p_update = 2e-2;              ///< pU: software-update prob per step
  double eta = 2.0;                    ///< cost weight between T(R) and F(R)
};

class NodeModel {
 public:
  explicit NodeModel(NodeParams params);

  const NodeParams& params() const { return params_; }

  /// Transition probability f_N(next | s, a), eq. (2).
  double transition(NodeState s, NodeAction a, NodeState next) const;

  /// Full 3x3 transition matrix for an action (rows H, C, ∅).
  la::Matrix transition_matrix(NodeAction a) const;

  /// Probability of crashing this step from state s (eqs. (2a)-(2c)).
  double crash_prob(NodeState s) const;

  /// Transition among {H, C} conditioned on not crashing; this is the kernel
  /// that drives the belief recursion because a crash is observable (the node
  /// stops sending belief reports and is evicted, §V-B).
  double conditional_transition(bool from_compromised, NodeAction a,
                                bool to_compromised) const;

  /// Per-step cost c_N(s, a), eq. (5).  Crashed nodes cost nothing (they are
  /// evicted and handled by the global level).
  double cost(NodeState s, NodeAction a) const;

  /// Expected immediate cost under belief b = P[S = C].
  double expected_cost(double belief, NodeAction a) const;

 private:
  NodeParams params_;
};

}  // namespace tolerance::pomdp
