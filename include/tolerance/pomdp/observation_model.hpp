// Observation channel Z (eq. (3)): the distribution of (priority-weighted)
// IDS-alert observations given the hidden node state.
//
// Two implementations:
//  * BetaBinObservationModel — the parametric family of Table 8,
//    Z(.|H) = BetaBin(n, 0.7, 3), Z(.|C) = BetaBin(n, 1, 0.7).
//  * EmpiricalObservationModel — Ẑ estimated from samples (Fig. 11), the
//    path used by the emulated testbed (§VIII-A).
#pragma once

#include <memory>
#include <vector>

#include "tolerance/stats/distributions.hpp"
#include "tolerance/stats/empirical.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::pomdp {

class ObservationModel {
 public:
  virtual ~ObservationModel() = default;

  virtual int num_observations() const = 0;
  /// Z(o | s) with s encoded as compromised?  (H = false, C = true).
  virtual double prob(int observation, bool compromised) const = 0;
  virtual int sample(bool compromised, Rng& rng) const = 0;

  /// Assumption D of Thm. 1: Z(o|s) > 0 for all o, s.
  bool all_positive() const;
  /// Assumption E of Thm. 1: Z is TP-2, i.e. the likelihood ratio
  /// Z(o|C)/Z(o|H) is non-decreasing in o.
  bool is_tp2(double tol = 1e-12) const;
  /// D_KL(Z(.|a) || Z(.|b)); used by Fig. 14 and Appendix H.
  double kl(bool from_compromised, bool to_compromised) const;

  std::vector<double> pmf(bool compromised) const;
};

class BetaBinObservationModel final : public ObservationModel {
 public:
  BetaBinObservationModel(stats::BetaBinomial healthy,
                          stats::BetaBinomial compromised);

  /// The Table 8 instantiation: BetaBin(n,0.7,3) / BetaBin(n,1,0.7) on
  /// O = {0,...,n}.
  static BetaBinObservationModel paper_default(int n = 10);

  int num_observations() const override;
  double prob(int observation, bool compromised) const override;
  int sample(bool compromised, Rng& rng) const override;

  const stats::BetaBinomial& healthy() const { return healthy_; }
  const stats::BetaBinomial& compromised() const { return compromised_; }

 private:
  stats::BetaBinomial healthy_;
  stats::BetaBinomial compromised_;
};

class EmpiricalObservationModel final : public ObservationModel {
 public:
  /// Both pmfs must share a support size.
  EmpiricalObservationModel(stats::EmpiricalPmf healthy,
                            stats::EmpiricalPmf compromised);

  /// MLE from labeled samples with additive smoothing (guarantees
  /// assumption D when smoothing > 0).
  static EmpiricalObservationModel estimate(
      const std::vector<int>& healthy_samples,
      const std::vector<int>& compromised_samples, int support_size,
      double smoothing = 0.5);

  int num_observations() const override;
  double prob(int observation, bool compromised) const override;
  int sample(bool compromised, Rng& rng) const override;

 private:
  stats::EmpiricalPmf healthy_;
  stats::EmpiricalPmf compromised_;
};

}  // namespace tolerance::pomdp
