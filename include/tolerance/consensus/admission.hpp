// Client-facing admission control at the service boundary — the third, fast
// feedback loop next to the paper's two-level recovery/eviction control.
//
// Each replica runs one AdmissionController.  Every control step it folds a
// normalized pressure sample
//
//     P = W_Q * queue*  +  W_L * lat*  +  W_E * err*
//
// (queue depth, oldest-request wait, and retry/error fraction, each clipped
// to [0, 1]) through a fast-attack / slow-release filter — an EWMA on the
// way up, a wall-clock exponential decay on the way down — and drives an
// explicit mode machine
//
//     NORMAL  ->  SOFT  ->  HARD
//
// with hysteresis bands: a mode is entered when the filtered pressure crosses
// the *enter* threshold and left only when it falls below the lower *exit*
// threshold, so a retry storm oscillating around a single threshold cannot
// flap the valve.  SOFT and HARD carry token budgets (deterministic
// elapsed-time refill); NORMAL admits everything.  Rejected requests are
// answered with a typed Overloaded reply carrying a retry-after hint which
// MinBftClient honors with jittered exponential backoff.
//
// The controller is pure and deterministic: it is fed the transport clock
// (simulated or wall), never reads one itself, so both execution lanes stay
// log-comparable and the sim-lane golden traces remain reproducible.
#pragma once

#include <algorithm>
#include <cstdint>

namespace tolerance::consensus {

enum class AdmissionMode : std::uint8_t {
  kNormal = 0,
  kSoft = 1,
  kHard = 2,
};

const char* to_string(AdmissionMode mode);

struct AdmissionConfig {
  /// Master switch.  Off by default: the valve must not perturb existing
  /// golden traces or benches unless a scenario asks for it.
  bool enabled = false;

  // --- pressure weights (should sum to ~1; they are not renormalized) ------
  double w_queue = 0.5;    ///< W_Q, weight of normalized queue depth
  double w_latency = 0.3;  ///< W_L, weight of normalized oldest-request wait
  double w_error = 0.2;    ///< W_E, weight of the retry/error fraction

  /// EWMA smoothing factor in (0, 1]: weight of the newest sample when
  /// pressure is RISING.  Attack is per-observation: a spike must close the
  /// valve within a handful of arrivals.
  double ewma_alpha = 0.3;
  /// Release time constant (seconds) when pressure is FALLING.  Release is
  /// on the clock, not per-observation: under a sustained storm the inbound
  /// queue oscillates between full and drained as the replica alternates
  /// serving and catching up, and a per-observation filter would track that
  /// oscillation — reopening the valve each trough, admitting a fresh burst,
  /// and re-saturating the replica (a limit cycle).  Decaying toward the raw
  /// sample with a wall-clock time constant holds the peak across troughs;
  /// the valve reopens only after pressure has genuinely been low for ~tau.
  double release_tau = 1.0;

  // --- normalizers ---------------------------------------------------------
  /// Queue depth at which queue* saturates to 1.0 (pending requests plus
  /// unexecuted log entries plus the transport inbound queue).
  double queue_capacity = 64.0;
  /// Oldest-pending wait (seconds) at which lat* saturates to 1.0.
  double latency_ref = 2.0;

  // --- hysteresis bands on the filtered pressure ---------------------------
  double soft_enter = 0.55;  ///< NORMAL -> SOFT when P_ewma >= soft_enter
  double soft_exit = 0.35;   ///< SOFT -> NORMAL when P_ewma < soft_exit
  double hard_enter = 0.85;  ///< SOFT/NORMAL -> HARD when P_ewma >= hard_enter
  double hard_exit = 0.60;   ///< HARD -> SOFT when P_ewma < hard_exit

  // --- per-mode token budgets (tokens/sec, burst cap) ----------------------
  /// NORMAL has no budget.  SOFT sheds the excess of a spike; HARD keeps a
  /// trickle alive so probes and the control plane still get through.
  double soft_rate = 50.0;
  double soft_burst = 16.0;
  double hard_rate = 5.0;
  double hard_burst = 2.0;

  // --- retry-after hints sent with the Overloaded reply --------------------
  std::uint64_t retry_after_soft_ms = 250;
  std::uint64_t retry_after_hard_ms = 1000;
};

/// EWMA pressure filter + hysteresis mode machine + per-mode token buckets.
/// Single-threaded by design: it lives inside a replica, which is already
/// serialized by its event loop in both transport lanes.
class AdmissionController {
 public:
  AdmissionController() = default;
  explicit AdmissionController(const AdmissionConfig& config);

  /// Record an arriving request before the admission decision.  `retry` marks
  /// a request recognized as a client retransmission (already pending or
  /// in-flight); the retry fraction of each sampling window feeds err*.
  void observe_request(bool retry);

  /// Fold one pressure sample at time `now`: normalize the inputs, advance
  /// the EWMA, and step the mode machine (at most one mode level per update,
  /// so recovery from HARD passes through SOFT).
  void update(double now, double queue_depth, double oldest_wait_seconds);

  /// Admission decision for one request at time `now`.  NORMAL always
  /// admits; SOFT/HARD admit while the mode's token bucket (refilled
  /// deterministically from elapsed time) has a whole token left.
  bool try_admit(double now);

  AdmissionMode mode() const { return mode_; }
  double pressure() const { return pressure_; }
  /// Retry-after hint (ms) matching the current mode; 0 in NORMAL.
  std::uint64_t retry_after_ms() const;

  std::uint64_t admitted() const { return admitted_; }
  std::uint64_t rejected() const { return rejected_; }
  std::uint64_t mode_changes() const { return mode_changes_; }

  const AdmissionConfig& config() const { return config_; }

 private:
  void enter(AdmissionMode next, double now);
  void refill(double now);
  double rate() const;
  double burst() const;

  AdmissionConfig config_{};
  AdmissionMode mode_ = AdmissionMode::kNormal;
  double pressure_ = 0.0;
  bool seeded_ = false;       ///< first sample initializes the filter outright
  double last_update_ = 0.0;  ///< clock of the previous sample (release dt)

  // Token bucket for the current (SOFT/HARD) mode.
  double tokens_ = 0.0;
  double last_refill_ = 0.0;

  // Per-window retry accounting for err*.
  std::uint64_t window_requests_ = 0;
  std::uint64_t window_retries_ = 0;

  std::uint64_t admitted_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t mode_changes_ = 0;
};

}  // namespace tolerance::consensus
