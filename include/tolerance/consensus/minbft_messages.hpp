// Message vocabulary of the (reconfigurable) MinBFT protocol, Appendix G /
// Fig. 17 of the paper: REQUEST, PREPARE, COMMIT, REPLY, CHECKPOINT,
// REQ-VIEW-CHANGE, VIEW-CHANGE, NEW-VIEW, plus the JOIN/EVICT reconfiguration
// operations which TOLERANCE's system controller drives through consensus.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tolerance/crypto/keys.hpp"
#include "tolerance/crypto/usig.hpp"
#include "tolerance/net/sim_network.hpp"

namespace tolerance::consensus {

using ReplicaId = net::NodeId;
using ClientId = net::NodeId;
using View = std::uint64_t;
using SeqNum = std::uint64_t;

/// A client operation.  Reconfiguration requests are ordinary operations with
/// a reserved prefix ("join:<id>" / "evict:<id>") issued by the system
/// controller, so membership changes are totally ordered with the workload
/// (the approach of dynamic-BFT reconfiguration, §VII-C).
struct Request {
  ClientId client = 0;
  std::uint64_t request_id = 0;
  std::string operation;
  crypto::Signature signature;  ///< client's signature over the request

  std::string payload() const;
  crypto::Digest digest() const;
};

struct Prepare {
  View view = 0;
  SeqNum seq = 0;  ///< equals the leader's USIG counter value
  Request request;
  crypto::UniqueIdentifier ui;  ///< leader's UI over the prepare digest

  crypto::Digest body_digest() const;
};

struct Commit {
  View view = 0;
  SeqNum seq = 0;
  ReplicaId replica = 0;           ///< the committing replica
  crypto::Digest request_digest{}; ///< digest of the prepared request
  crypto::UniqueIdentifier leader_ui;  ///< copied from the PREPARE
  crypto::UniqueIdentifier ui;     ///< committer's own UI

  crypto::Digest body_digest() const;
};

struct Reply {
  ReplicaId replica = 0;
  ClientId client = 0;
  std::uint64_t request_id = 0;
  std::string result;
  crypto::Signature signature;

  std::string payload() const;
};

struct Checkpoint {
  ReplicaId replica = 0;
  SeqNum last_executed = 0;
  crypto::Digest state_digest{};
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
};

struct ReqViewChange {
  ReplicaId replica = 0;
  View from_view = 0;
  View to_view = 0;
  crypto::Signature signature;  ///< sender's signature over payload()

  std::string payload() const;
};

/// A prepared-but-possibly-undecided entry carried in view changes.
struct PreparedProof {
  Prepare prepare;
};

struct ViewChange {
  ReplicaId replica = 0;
  View to_view = 0;
  SeqNum stable_seq = 0;
  std::vector<PreparedProof> prepared;  ///< log suffix above the checkpoint
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
};

struct NewView {
  ReplicaId leader = 0;
  View view = 0;
  std::vector<ViewChange> proofs;   ///< f+1 view-change messages
  std::vector<Prepare> reproposed;  ///< undecided entries, re-prepared
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
};

/// State-transfer for recovered or joining replicas (Fig. 17 d-e).
struct StateRequest {
  ReplicaId replica = 0;
};

struct StateResponse {
  ReplicaId replica = 0;
  SeqNum last_executed = 0;
  std::vector<std::string> log;  ///< executed operations in order
  crypto::Digest state_digest{};
  crypto::Signature signature;  ///< sender's signature over payload()

  /// Covers (replica, last_executed, state_digest); the log itself is bound
  /// through the chained state digest.
  std::string payload() const;
};

using MinBftMsg =
    std::variant<Request, Prepare, Commit, Reply, Checkpoint, ReqViewChange,
                 ViewChange, NewView, StateRequest, StateResponse>;

using MinBftNet = net::SimNetwork<MinBftMsg>;

}  // namespace tolerance::consensus
