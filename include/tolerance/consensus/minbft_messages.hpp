// Message vocabulary of the (reconfigurable) MinBFT protocol, Appendix G /
// Fig. 17 of the paper: REQUEST, PREPARE, COMMIT, REPLY, CHECKPOINT,
// REQ-VIEW-CHANGE, VIEW-CHANGE, NEW-VIEW, plus the JOIN/EVICT reconfiguration
// operations which TOLERANCE's system controller drives through consensus.
//
// Batching (the Fig. 10 throughput lever): a PREPARE binds an ordered
// *vector* of client requests to a single USIG counter value, so followers
// verify one UI per batch instead of one per request; COMMITs endorse the
// batch digest.  Execution and REPLYs still fan out per request.
//
// Message body digests are memoized (computed once, reused across sign,
// verify and conflict checks) — a message is serialized when it is built,
// not on every crypto call.  Mutating a message after its digest was taken
// requires invalidate_digests(); the only in-tree mutators are the
// Byzantine fault injections.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "tolerance/crypto/keys.hpp"
#include "tolerance/crypto/usig.hpp"
#include "tolerance/net/sim_network.hpp"

namespace tolerance::consensus {

using ReplicaId = net::NodeId;
using ClientId = net::NodeId;
using View = std::uint64_t;
using SeqNum = std::uint64_t;

/// Running totals for the digest memoization (process-wide, for the micro
/// bench and tests): `computed` body digests actually hashed, `saved`
/// digest requests served from the memo without touching SHA-256.
struct DigestMemoStats {
  std::uint64_t computed = 0;
  std::uint64_t saved = 0;
};
DigestMemoStats digest_memo_stats();
void reset_digest_memo_stats();

namespace detail {

/// One-slot digest memo.  Copies carry the cached value along, so a message
/// fanned out to N receivers is hashed once, not N times.
class DigestMemo {
 public:
  template <class Compute>
  const crypto::Digest& get(Compute&& compute) const {
    if (!valid_) {
      value_ = compute();
      valid_ = true;
      note_computed();
    } else {
      note_saved();
    }
    return value_;
  }

  void invalidate() { valid_ = false; }

 private:
  static void note_computed();
  static void note_saved();

  mutable crypto::Digest value_{};
  mutable bool valid_ = false;
};

}  // namespace detail

/// A client operation.  Reconfiguration requests are ordinary operations with
/// a reserved prefix ("join:<id>" / "evict:<id>") issued by the system
/// controller, so membership changes are totally ordered with the workload
/// (the approach of dynamic-BFT reconfiguration, §VII-C).
struct Request {
  ClientId client = 0;
  std::uint64_t request_id = 0;
  std::string operation;
  crypto::Signature signature;  ///< client's signature over the request

  std::string payload() const;
  crypto::Digest digest() const;
  void invalidate_digests() { memo_.invalidate(); }

 private:
  detail::DigestMemo memo_;
};

struct Prepare {
  View view = 0;
  SeqNum seq = 0;  ///< equals the leader's USIG counter value
  /// The ordered request batch bound to this counter value (>= 1 entry).
  std::vector<Request> requests;
  crypto::UniqueIdentifier ui;  ///< leader's UI over the prepare digest

  /// Digest over the ordered request-digest vector — what COMMITs endorse.
  crypto::Digest batch_digest() const;
  crypto::Digest body_digest() const;
  void invalidate_digests() {
    batch_memo_.invalidate();
    body_memo_.invalidate();
    for (Request& r : requests) r.invalidate_digests();
  }

 private:
  detail::DigestMemo batch_memo_;
  detail::DigestMemo body_memo_;
};

struct Commit {
  View view = 0;
  SeqNum seq = 0;
  ReplicaId replica = 0;         ///< the committing replica
  crypto::Digest batch_digest{}; ///< digest of the prepared request batch
  crypto::UniqueIdentifier leader_ui;  ///< copied from the PREPARE
  crypto::UniqueIdentifier ui;   ///< committer's own UI

  crypto::Digest body_digest() const;
  void invalidate_digests() { body_memo_.invalidate(); }

 private:
  detail::DigestMemo body_memo_;
};

struct Reply {
  ReplicaId replica = 0;
  ClientId client = 0;
  std::uint64_t request_id = 0;
  std::string result;
  /// Tentative result, sent at PREPARE before the commit quorum (the
  /// Zyzzyva-style fast path).  A client acts on it only when ALL n replicas
  /// return matching speculative replies; the final (speculative = false)
  /// reply follows once the batch commits.  The flag is part of payload(),
  /// so a speculative reply cannot be replayed as a final one.
  bool speculative = false;
  crypto::Signature signature;

  std::string payload() const;
};

struct Checkpoint {
  ReplicaId replica = 0;
  SeqNum last_executed = 0;
  crypto::Digest state_digest{};
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
  void invalidate_digests() { body_memo_.invalidate(); }

 private:
  detail::DigestMemo body_memo_;
};

struct ReqViewChange {
  ReplicaId replica = 0;
  View from_view = 0;
  View to_view = 0;
  crypto::Signature signature;  ///< sender's signature over payload()

  std::string payload() const;
};

/// A prepared-but-possibly-undecided entry carried in view changes.
struct PreparedProof {
  Prepare prepare;
};

struct ViewChange {
  ReplicaId replica = 0;
  View to_view = 0;
  SeqNum stable_seq = 0;
  /// Checkpoint certificate: the f+1 USIG-certified CHECKPOINT messages that
  /// made `stable_seq` stable.  A stable_seq claim without a valid
  /// certificate is ignored during new-view assembly — otherwise a single
  /// compromised member could inflate it and displace the genuinely
  /// prepared suffix (a claim of 0 needs no certificate).
  std::vector<Checkpoint> checkpoint_cert;
  std::vector<PreparedProof> prepared;  ///< log suffix above the checkpoint
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
  void invalidate_digests() { body_memo_.invalidate(); }

 private:
  detail::DigestMemo body_memo_;
};

struct NewView {
  ReplicaId leader = 0;
  View view = 0;
  std::vector<ViewChange> proofs;   ///< f+1 view-change messages
  std::vector<Prepare> reproposed;  ///< undecided entries, re-prepared
  crypto::UniqueIdentifier ui;

  crypto::Digest body_digest() const;
  void invalidate_digests() { body_memo_.invalidate(); }

 private:
  detail::DigestMemo body_memo_;
};

/// State-transfer for recovered or joining replicas (Fig. 17 d-e).
/// `ops_executed` is the requester's committed operation count: responders
/// ship only the log suffix above it, so a lagging (but not amnesiac)
/// replica on a long-lived cluster is not mailed megabytes of history it
/// already holds.  A freshly restarted replica reports 0 and gets the full
/// committed log.
struct StateRequest {
  ReplicaId replica = 0;
  std::uint64_t ops_executed = 0;
};

/// Ask a peer to relay the PREPARE for `seq`.  Sent when a commit quorum has
/// accumulated for a sequence number whose PREPARE never arrived (the
/// network dropped it) — any committer necessarily holds that prepare.
/// Unauthenticated on purpose: a forgery can only trigger a bounded resend
/// of a message that is already public.
struct FetchPrepare {
  SeqNum seq = 0;
  ReplicaId requester = 0;
};

/// A PREPARE relayed by a non-leader in answer to FetchPrepare.  The leader's
/// USIG identifier inside still authenticates the content; the wrapper only
/// tells the receiver to skip the monotonic-counter window (the counter is
/// old by definition — the original broadcast already advanced it).
struct RelayedPrepare {
  Prepare prepare;
};

struct StateResponse {
  ReplicaId replica = 0;
  SeqNum last_executed = 0;
  /// Operation count of the committed prefix NOT shipped: `log` holds the
  /// sender's committed operations [prefix_ops, end).  The receiver splices
  /// its own first `prefix_ops` committed operations in front and verifies
  /// the chained digest of the whole against `state_digest`, so a truncated
  /// response carries exactly the same integrity guarantee as a full one.
  std::uint64_t prefix_ops = 0;
  std::vector<std::string> log;  ///< committed operations above prefix_ops
  crypto::Digest state_digest{};
  /// Checkpoint-anchored sidecar (anchor_seq == 0 when absent): the
  /// responder's stable checkpoint — an execution boundary every replica
  /// crosses at the same operation count — together with the f+1 checkpoint
  /// certificate that stabilized it.  The head digest above requires f+1
  /// byte-identical responses to install, which under continuous commit
  /// traffic rarely happens (each responder answers at a different live
  /// head); the anchor is self-certifying, so ONE response suffices for the
  /// receiver to recover to the boundary when head matching stalls.  The
  /// anchored prefix is log[0, anchor_ops - prefix_ops) of this response.
  SeqNum anchor_seq = 0;
  std::uint64_t anchor_ops = 0;
  crypto::Digest anchor_digest{};
  std::vector<Checkpoint> anchor_cert;
  crypto::Signature signature;  ///< sender's signature over payload()

  /// Covers (replica, last_executed, prefix_ops, state_digest) plus the
  /// anchor scalars; the log is bound through the chained state digest and
  /// the anchor_cert checkpoints each carry their own USIG identifier.
  std::string payload() const;
};

/// Typed overload rejection: a replica in SOFT/HARD admission mode answers a
/// request it cannot take with this instead of silently dropping it, so the
/// client backs off deliberately (jittered exponential, honoring the hint)
/// rather than retrying into the storm.  The mode and hint are inside
/// payload(), so a forged or replayed Overloaded fails signature
/// verification; clients additionally require f+1 distinct senders before
/// backing off, so one Byzantine replica faking HARD cannot starve them.
struct Overloaded {
  ReplicaId replica = 0;
  ClientId client = 0;
  std::uint64_t request_id = 0;
  std::uint64_t retry_after_ms = 0;
  std::uint8_t mode = 1;  ///< AdmissionMode: 1 = soft, 2 = hard (never 0)
  crypto::Signature signature;

  std::string payload() const;
};

using MinBftMsg =
    std::variant<Request, Prepare, Commit, Reply, Checkpoint, ReqViewChange,
                 ViewChange, NewView, StateRequest, StateResponse,
                 FetchPrepare, RelayedPrepare, Overloaded>;

/// The deterministic simulated-time backend (golden traces, model checking).
using MinBftNet = net::SimNetwork<MinBftMsg>;

/// What replicas and clients actually program against: either backend —
/// SimNetwork above or net::AsyncRuntime (real threads, wall-clock timers) —
/// satisfies this interface, so the protocol logic is written once.
using MinBftTransport = net::Transport<MinBftMsg>;

}  // namespace tolerance::consensus
