// Wall-clock MinBFT harness: the same replica/client logic the simulated
// cluster (minbft_cluster.hpp) drives, wired onto net::AsyncRuntime instead
// of net::SimNetwork — per-replica event loops on a thread pool, messages
// serialized through the wire codec, link shaping from a named
// net::NetworkProfile, and REAL HMAC-SHA256 crypto overlapping real I/O
// (the sim lane's modelled crypto costs are ignored here; the signatures
// themselves are computed either way and dominate for real).
//
// The closed-loop load driver mirrors the paper's §VII throughput
// measurement: each client keeps a fixed number of requests in flight,
// re-submitting from its completion handler (which runs on the client's own
// event loop, so the driver needs no locks around client state).
//
// One harness instance measures one data point: run_closed_loop() may be
// called once; it quiesces the runtime on return.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <vector>

#include "tolerance/consensus/minbft_client.hpp"
#include "tolerance/consensus/minbft_replica.hpp"
#include "tolerance/net/async_runtime.hpp"
#include "tolerance/net/wire.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace tolerance::consensus {

using MinBftRuntime = net::AsyncRuntime<MinBftMsg, net::MinBftCodec>;

/// One closed-loop measurement (the BENCH_runtime.json row).
struct RuntimeLoadStats {
  std::uint64_t completed = 0;    ///< requests completed within the window
  double elapsed_seconds = 0.0;   ///< measurement window length
  double throughput = 0.0;        ///< completed / elapsed (req/s)
  double mean_latency = 0.0;      ///< seconds, over all completions
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  // Transport accounting over the whole run.
  std::uint64_t dropped = 0;         ///< link-loss drops
  std::uint64_t reordered = 0;       ///< reorder-delayed messages
  std::uint64_t overflow_dropped = 0;///< inbound-queue drop-oldest evictions
  std::uint64_t decode_errors = 0;   ///< malformed frames (should be 0)
  std::uint64_t handler_errors = 0;  ///< handler exceptions (should be 0)
  std::uint64_t auth_failures = 0;   ///< bundle-tag rejections (should be 0)
  // Fast-path accounting (MAC batching + speculative execution).
  std::uint64_t macs_computed = 0;   ///< bundle authenticators at senders
  std::uint64_t bundled_frames = 0;  ///< frames those authenticators covered
  std::uint64_t completed_speculative = 0;  ///< n-of-n fast-path completions
  std::uint64_t spec_executions = 0;        ///< entries executed at PREPARE
  std::uint64_t spec_rollbacks = 0;         ///< speculative undo events
};

class MinBftRuntimeCluster {
 public:
  /// `threads` = 0 sizes the pool to the hardware concurrency (at least 4).
  /// Replica links and client links come from `profile`; if the profile
  /// flaps (flap_interval > 0), run_closed_loop periodically isolates a
  /// rotating minority of replicas for flap_duration seconds.
  MinBftRuntimeCluster(int num_replicas, MinBftConfig config,
                       std::uint64_t seed, const net::NetworkProfile& profile,
                       int threads = 0);
  ~MinBftRuntimeCluster();

  MinBftRuntimeCluster(const MinBftRuntimeCluster&) = delete;
  MinBftRuntimeCluster& operator=(const MinBftRuntimeCluster&) = delete;

  MinBftRuntime& runtime() { return runtime_; }
  MinBftReplica& replica(ReplicaId id);
  int replica_count() const { return static_cast<int>(replicas_.size()); }

  /// Drive `num_clients` closed-loop clients for `duration_seconds` of wall
  /// time, each keeping `in_flight_per_client` requests outstanding.
  /// Quiesces the transport before returning; call at most once.
  RuntimeLoadStats run_closed_loop(int num_clients, double duration_seconds,
                                   int in_flight_per_client = 1);

  /// Fence off traffic and drain every event loop (idempotent; the
  /// destructor calls it).
  void stop();

 private:
  struct ClientSlot {
    std::unique_ptr<MinBftClient> client;
    ClientId id = 0;
    std::vector<double> latencies;  ///< touched only by this client's loop
    std::uint64_t serial = 0;
  };

  void submit_next(ClientSlot* slot);

  MinBftConfig config_;
  std::uint64_t seed_;
  net::NetworkProfile profile_;
  util::ThreadPool pool_;
  MinBftRuntime runtime_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::vector<ReplicaId> membership_;
  std::map<ReplicaId, std::unique_ptr<MinBftReplica>> replicas_;
  std::vector<std::unique_ptr<ClientSlot>> clients_;
  std::atomic<bool> load_stopped_{false};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace tolerance::consensus
