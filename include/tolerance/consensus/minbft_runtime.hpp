// Wall-clock MinBFT harness: the same replica/client logic the simulated
// cluster (minbft_cluster.hpp) drives, wired onto net::AsyncRuntime instead
// of net::SimNetwork — per-replica event loops on a thread pool, messages
// serialized through the wire codec, link shaping from a named
// net::NetworkProfile, and REAL HMAC-SHA256 crypto overlapping real I/O
// (the sim lane's modelled crypto costs are ignored here; the signatures
// themselves are computed either way and dominate for real).
//
// The closed-loop load driver mirrors the paper's §VII throughput
// measurement: each client keeps a fixed number of requests in flight,
// re-submitting from its completion handler (which runs on the client's own
// event loop, so the driver needs no locks around client state).
//
// One harness instance measures one data point: run_closed_loop() may be
// called once; it quiesces the runtime on return.
#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "tolerance/consensus/minbft_client.hpp"
#include "tolerance/consensus/minbft_replica.hpp"
#include "tolerance/consensus/watchdog.hpp"
#include "tolerance/net/async_runtime.hpp"
#include "tolerance/net/fault_injector.hpp"
#include "tolerance/net/wire.hpp"
#include "tolerance/util/thread_pool.hpp"

namespace tolerance::consensus {

using MinBftRuntime = net::AsyncRuntime<MinBftMsg, net::MinBftCodec>;

/// One closed-loop measurement (the BENCH_runtime.json row).
struct RuntimeLoadStats {
  std::uint64_t completed = 0;    ///< requests completed within the window
  double elapsed_seconds = 0.0;   ///< measurement window length
  double throughput = 0.0;        ///< completed / elapsed (req/s)
  double mean_latency = 0.0;      ///< seconds, over all completions
  double p50_latency = 0.0;
  double p99_latency = 0.0;
  // Transport accounting over the whole run.
  std::uint64_t dropped = 0;         ///< link-loss drops
  std::uint64_t reordered = 0;       ///< reorder-delayed messages
  std::uint64_t overflow_dropped = 0;///< inbound-queue drop-oldest evictions
  std::uint64_t decode_errors = 0;   ///< malformed frames (should be 0)
  std::uint64_t handler_errors = 0;  ///< handler exceptions (should be 0)
  std::uint64_t auth_failures = 0;   ///< bundle-tag rejections (should be 0)
  // Fast-path accounting (MAC batching + speculative execution).
  std::uint64_t macs_computed = 0;   ///< bundle authenticators at senders
  std::uint64_t bundled_frames = 0;  ///< frames those authenticators covered
  std::uint64_t completed_speculative = 0;  ///< n-of-n fast-path completions
  std::uint64_t spec_executions = 0;        ///< entries executed at PREPARE
  std::uint64_t spec_rollbacks = 0;         ///< speculative undo events
  // Chaos-lane accounting (all zero on a fault-free run).
  std::uint64_t crashes = 0;              ///< crash_replica invocations
  std::uint64_t restarts = 0;             ///< restart_replica invocations
  std::uint64_t injected_drops = 0;       ///< injector directed-pair drops
  std::uint64_t injected_corruptions = 0; ///< injector bit-flipped bundles
  std::uint64_t st_attempts = 0;     ///< state-transfer requests sent
  std::uint64_t st_retries = 0;      ///< re-requests beyond the first attempt
  std::uint64_t st_completions = 0;  ///< successful state installs
  std::uint64_t st_giveups = 0;      ///< cycles abandoned at max_attempts
  std::uint64_t stall_reports = 0;   ///< watchdog no-commit-window flags
  double longest_commit_gap = 0.0;   ///< seconds, watchdog's worst gap
  /// Seconds from each plan-driven restart until the restarted replica's
  /// committed count caught the cluster high-water mark at restart time.
  std::vector<double> recovery_seconds;
};

/// Chaos configuration for one closed-loop run.  The plan's node faults
/// (crash/restart/stall) are executed by the control loop at their `at`
/// offsets; corrupt/drop events toggle injector rules for their durations.
struct ChaosOptions {
  net::FaultPlan plan;
  /// Watchdog stall window in seconds; 0 disables the watchdog.
  double watchdog_window = 0.0;
  /// Control-loop poll period (fault execution + watchdog sampling).
  double poll_interval = 0.005;
};

class MinBftRuntimeCluster {
 public:
  /// `threads` = 0 sizes the pool to the hardware concurrency (at least 4).
  /// Replica links and client links come from `profile`; if the profile
  /// flaps (flap_interval > 0), run_closed_loop periodically isolates a
  /// rotating minority of replicas for flap_duration seconds.
  MinBftRuntimeCluster(int num_replicas, MinBftConfig config,
                       std::uint64_t seed, const net::NetworkProfile& profile,
                       int threads = 0);
  ~MinBftRuntimeCluster();

  MinBftRuntimeCluster(const MinBftRuntimeCluster&) = delete;
  MinBftRuntimeCluster& operator=(const MinBftRuntimeCluster&) = delete;

  MinBftRuntime& runtime() { return runtime_; }
  MinBftReplica& replica(ReplicaId id);
  int replica_count() const { return static_cast<int>(replicas_.size()); }
  /// Key material, for tests that wire auxiliary clients onto the runtime.
  const std::shared_ptr<crypto::KeyRegistry>& registry() const {
    return registry_;
  }

  /// Drive `num_clients` closed-loop clients for `duration_seconds` of wall
  /// time, each keeping `in_flight_per_client` requests outstanding.
  /// Quiesces the transport before returning; call at most once.
  RuntimeLoadStats run_closed_loop(int num_clients, double duration_seconds,
                                   int in_flight_per_client = 1);

  /// Fence off traffic and drain every event loop (idempotent; the
  /// destructor calls it).
  void stop();

  // --- chaos surface -------------------------------------------------------

  /// Install a chaos schedule; call before run_closed_loop.  Re-seeds the
  /// fault injector from plan.seed and normalizes the plan.
  void set_chaos(ChaosOptions chaos);

  /// Crash `id` now: quiesce its event loop (no in-flight dispatch survives)
  /// and destroy the replica object — volatile state, USIG counter included,
  /// is genuinely gone.  Safe while traffic flows; callable from any thread.
  void crash_replica(ReplicaId id);

  /// Bring a crashed replica back with a bumped USIG epoch (its counter
  /// restarts at 1; the epoch ordering keeps peers' monotonicity checks
  /// sound) and kick a state-transfer cycle from its fresh event loop.
  void restart_replica(ReplicaId id);

  bool is_crashed(ReplicaId id) const;
  std::vector<ReplicaId> live_replicas() const;

  /// Lazily-created fault injector (shared with set_chaos).  Rules may be
  /// toggled while traffic flows.
  net::FaultInjector& injector();

  /// Non-null after a run with watchdog_window > 0.
  const LivenessWatchdog* watchdog() const { return watchdog_.get(); }

 private:
  struct ClientSlot {
    std::unique_ptr<MinBftClient> client;
    ClientId id = 0;
    std::vector<double> latencies;  ///< touched only by this client's loop
    std::uint64_t serial = 0;
  };

  /// A plan-driven restart whose catch-up is still being timed.
  struct PendingRecovery {
    ReplicaId id = 0;
    double started = 0.0;       ///< control-loop clock at restart
    std::uint64_t target = 0;   ///< cluster high-water committed at restart
  };

  void submit_next(ClientSlot* slot);
  /// Construct replica `id` at its current USIG epoch and register its
  /// event-loop handler (ctor and restart_replica share this).
  void wire_replica(ReplicaId id);
  /// Snapshot every replica's progress counters (crashed ones keep their
  /// last-published values, marked !alive).  Caller must hold chaos_mu_.
  std::vector<ReplicaDiag> sample_diags_locked();
  std::uint64_t high_water_committed_locked() const;

  MinBftConfig config_;
  std::uint64_t seed_;
  net::NetworkProfile profile_;
  util::ThreadPool pool_;
  MinBftRuntime runtime_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::vector<ReplicaId> membership_;
  /// Guards replicas_, usig_epochs_, last_diag_, chaos counters and the
  /// recovery list: the control loop, test threads and plan execution all
  /// mutate node liveness concurrently with each other (never with the
  /// event loops, which hold raw replica pointers and skip the map).
  mutable std::mutex chaos_mu_;
  std::map<ReplicaId, std::unique_ptr<MinBftReplica>> replicas_;
  std::map<ReplicaId, std::uint64_t> usig_epochs_;
  /// Last published counters per replica; survives the object across a
  /// crash so watchdog reports still show the dead node's final state.
  std::map<ReplicaId, ReplicaDiag> last_diag_;
  std::uint64_t crashes_ = 0;
  std::uint64_t restarts_ = 0;
  std::vector<PendingRecovery> recovering_;
  std::vector<double> recovery_seconds_;
  ChaosOptions chaos_;
  bool chaos_set_ = false;
  std::unique_ptr<net::FaultInjector> injector_;
  std::unique_ptr<LivenessWatchdog> watchdog_;
  std::vector<std::unique_ptr<ClientSlot>> clients_;
  std::atomic<bool> load_stopped_{false};
  std::atomic<std::uint64_t> completed_{0};
};

}  // namespace tolerance::consensus
