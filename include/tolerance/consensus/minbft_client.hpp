// MinBFT client (§VII-B): broadcasts signed requests to all replicas and
// accepts a result once f+1 replicas return identical, correctly signed
// replies — a quorum is required because the client cannot tell which
// replicas are compromised (Prop. 1).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "tolerance/consensus/minbft_messages.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::consensus {

class MinBftClient {
 public:
  using CompletionHandler =
      std::function<void(std::uint64_t request_id, const std::string& result,
                         double latency_seconds)>;

  MinBftClient(ClientId id, int f, std::vector<ReplicaId> replicas,
               MinBftTransport& net, std::shared_ptr<crypto::KeyRegistry> registry,
               std::uint64_t key_seed, double retry_timeout = 30.0,
               double spec_fallback_timeout = 0.0);

  ClientId id() const { return id_; }

  /// Update the replica set after a reconfiguration.
  void set_replicas(std::vector<ReplicaId> replicas);

  /// Submit an operation; `on_complete` fires when f+1 matching replies
  /// arrive.  Returns the request id.
  std::uint64_t submit(const std::string& operation,
                       CompletionHandler on_complete);

  /// Abandon a pending request: cancel its retransmission timer and drop
  /// the completion handler.  Late replies are ignored.  Used by callers
  /// that probe availability with a deadline (the scenario harness).
  void cancel(std::uint64_t request_id);

  std::size_t pending_count() const { return pending_.size(); }

  /// Wire to the network.
  void on_message(net::NodeId from, const MinBftMsg& msg);

  std::uint64_t completed_count() const { return completed_; }
  /// Requests completed via the speculative fast path: ALL n replicas
  /// returned matching tentative replies (any weaker quorum of speculative
  /// replies proves nothing — up to f of them may roll back).  Final-reply
  /// completions still require only f+1 matches.
  std::uint64_t completed_speculative_count() const {
    return completed_speculative_;
  }

  // Overload-backoff telemetry (tests and the overload scenarios).
  /// Signed Overloaded rejections accepted (after signature verification).
  std::uint64_t overloaded_replies() const { return overloaded_replies_; }
  /// Times this client actually backed off (an f+1 rejection quorum formed).
  std::uint64_t overload_backoffs() const { return overload_backoffs_; }
  /// The most recent backoff delay chosen (seconds, jitter included).
  double last_backoff_delay() const { return last_backoff_delay_; }
  /// Pending requests currently in the valve's custody: ever rejected by an
  /// f+1 quorum and not yet completed.  The overload scenarios subtract
  /// these from the offered load when computing admitted-request
  /// availability — shed traffic is the valve doing its job, not a failure.
  std::size_t shed_pending_count() const {
    std::size_t n = 0;
    for (const auto& [rid, p] : pending_) {
      (void)rid;
      if (p.was_shed) ++n;
    }
    return n;
  }

 private:
  struct Pending {
    Request request;
    std::map<std::string, std::set<ReplicaId>> votes;  // result -> replicas
    /// Speculative replies tallied separately: tentative and final replies
    /// for one request never mix into one quorum.
    std::map<std::string, std::set<ReplicaId>> spec_votes;
    CompletionHandler on_complete;
    double submitted_at = 0.0;
    std::uint64_t retry_timer = 0;
    /// One-shot early retransmission armed at the first speculative reply:
    /// if the all-n quorum has not closed by then (a reply was lost or a
    /// replica lags), the retransmission makes replicas resend from their
    /// reply caches — FINAL once committed, completing via the f+1 rule.
    std::uint64_t spec_fallback_timer = 0;
    bool spec_fallback_armed = false;
    // --- overload-backoff state -------------------------------------------
    /// Distinct replicas that rejected this request with a (verified)
    /// Overloaded.  Backoff requires f+1 of them: at least one is honest,
    /// so a single Byzantine replica advertising fake HARD pressure cannot
    /// starve the client while a quorum still serves.
    std::set<ReplicaId> overloaded_from;
    std::uint64_t retry_after_hint_ms = 0;  ///< max hint across rejecters
    int backoff_attempts = 0;               ///< exponent for the next delay
    bool backing_off = false;               ///< a backoff timer is armed
    bool was_shed = false;  ///< an f+1 rejection quorum ever formed (sticky)
  };

  void transmit(const Request& request);
  /// Arm the retransmission timer; `delay` < 0 means the flat
  /// retry_timeout_.  Rejections stretch the delay (see handle_overloaded);
  /// the timer always re-arms itself at the flat timeout afterwards.
  void arm_retry(std::uint64_t request_id, double delay = -1.0);
  void handle_overloaded(const Overloaded& ov);
  /// Flat retry timeout stretched by the rejection hint (bounded multiple):
  /// used for sub-quorum rejections and post-backoff re-probes, where an
  /// overloaded cluster's answer is expected to be slow.
  double stretched_retry_delay(const Pending& p) const;
  /// Replace the flat retry timer with a jittered exponential backoff:
  /// delay = max(hint, floor) * 2^attempts, capped, scaled by a uniform
  /// [0.5, 1.5) draw from this client's private Rng stream so storms
  /// desynchronize instead of re-arriving in lockstep.
  void schedule_backoff(std::uint64_t request_id);
  /// True when every one of the n replicas vouched for `result` — counting a
  /// tentative (speculative) reply and a committed (final) one alike, since
  /// a final is the stronger claim.
  bool all_n_vouched(const Pending& pending, const std::string& result) const;

  ClientId id_;
  int f_;
  std::vector<ReplicaId> replicas_;
  MinBftTransport* net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  double retry_timeout_;
  double spec_fallback_timeout_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t completed_speculative_ = 0;
  std::uint64_t overloaded_replies_ = 0;
  std::uint64_t overload_backoffs_ = 0;
  double last_backoff_delay_ = 0.0;
  Rng rng_;  ///< jitter source, split per client from the key seed
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace tolerance::consensus
