// MinBFT client (§VII-B): broadcasts signed requests to all replicas and
// accepts a result once f+1 replicas return identical, correctly signed
// replies — a quorum is required because the client cannot tell which
// replicas are compromised (Prop. 1).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "tolerance/consensus/minbft_messages.hpp"

namespace tolerance::consensus {

class MinBftClient {
 public:
  using CompletionHandler =
      std::function<void(std::uint64_t request_id, const std::string& result,
                         double latency_seconds)>;

  MinBftClient(ClientId id, int f, std::vector<ReplicaId> replicas,
               MinBftTransport& net, std::shared_ptr<crypto::KeyRegistry> registry,
               std::uint64_t key_seed, double retry_timeout = 30.0);

  ClientId id() const { return id_; }

  /// Update the replica set after a reconfiguration.
  void set_replicas(std::vector<ReplicaId> replicas);

  /// Submit an operation; `on_complete` fires when f+1 matching replies
  /// arrive.  Returns the request id.
  std::uint64_t submit(const std::string& operation,
                       CompletionHandler on_complete);

  /// Abandon a pending request: cancel its retransmission timer and drop
  /// the completion handler.  Late replies are ignored.  Used by callers
  /// that probe availability with a deadline (the scenario harness).
  void cancel(std::uint64_t request_id);

  std::size_t pending_count() const { return pending_.size(); }

  /// Wire to the network.
  void on_message(net::NodeId from, const MinBftMsg& msg);

  std::uint64_t completed_count() const { return completed_; }

 private:
  struct Pending {
    Request request;
    std::map<std::string, std::set<ReplicaId>> votes;  // result -> replicas
    CompletionHandler on_complete;
    double submitted_at = 0.0;
    std::uint64_t retry_timer = 0;
  };

  void transmit(const Request& request);
  void arm_retry(std::uint64_t request_id);

  ClientId id_;
  int f_;
  std::vector<ReplicaId> replicas_;
  MinBftTransport* net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  double retry_timeout_;
  std::uint64_t next_request_id_ = 0;
  std::uint64_t completed_ = 0;
  std::map<std::uint64_t, Pending> pending_;
};

}  // namespace tolerance::consensus
