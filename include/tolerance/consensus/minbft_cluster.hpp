// Harness that wires MinBFT replicas and clients onto a simulated network,
// and drives the reconfiguration flows of Fig. 17 (join, evict, recover).
// Used by the consensus tests, the Fig. 10 throughput bench, and the
// full-stack emulation example.
#pragma once

#include <map>
#include <memory>

#include "tolerance/consensus/minbft_client.hpp"
#include "tolerance/consensus/minbft_replica.hpp"

namespace tolerance::consensus {

class MinBftCluster {
 public:
  MinBftCluster(int num_replicas, MinBftConfig config, std::uint64_t seed,
                net::LinkConfig link = net::LinkConfig{});

  MinBftNet& network() { return net_; }
  MinBftReplica& replica(ReplicaId id);
  bool has_replica(ReplicaId id) const;
  std::vector<ReplicaId> replica_ids() const;
  int f() const { return config_.f; }
  /// The consensus-ordered membership (an arbitrary live replica's view).
  std::vector<ReplicaId> membership() const { return current_membership(); }
  /// Minimum membership that preserves the MinBFT resilience bound 2f + 1.
  int quorum_floor() const { return 2 * config_.f + 1; }

  /// Create a client (ids start at 10000 to avoid clashing with replicas).
  MinBftClient& add_client();
  /// Same, with a per-client retransmission timeout — how the overload
  /// scenarios build retry-storm floods (aggressive timeout) and slow-loris
  /// floods (a timeout beyond the horizon, so requests just linger).
  MinBftClient& add_client(double retry_timeout);

  /// Submit through a client and run the network until completion or the
  /// event budget is exhausted; returns the result if completed.
  std::optional<std::string> submit_and_run(MinBftClient& client,
                                            const std::string& op,
                                            std::size_t max_events = 2000000);

  /// System-controller entry points (§VII-C): ordered via consensus.
  /// `join` spins up the replica object, orders "join:<id>", and triggers
  /// state transfer; `evict` orders "evict:<id>" and detaches the replica.
  ReplicaId join_new_replica();
  void evict_replica(ReplicaId id);

  /// Best-effort membership hooks for the system controller's closed loop:
  /// same flows as join_new_replica / evict_replica, but with a bounded
  /// event budget and a failure return instead of an abort when consensus
  /// cannot order the operation this cycle (e.g. more than f of the live
  /// replicas are silent).  A failed join is rolled back (the speculative
  /// replica is unwired and the request abandoned); if the operation was
  /// already prepared and executes later, the resulting memberless ghost id
  /// is visible via membership() and can be evicted then.
  std::optional<ReplicaId> try_join_new_replica(std::size_t max_events = 200000);
  bool try_evict_replica(ReplicaId id, std::size_t max_events = 200000);

  /// Tear down the local object for a replica whose evict operation was
  /// ordered *after* its try_evict_replica attempt timed out (the request
  /// was already prepared and executed later): the membership no longer
  /// lists it, only the object and host registration remain.  No consensus
  /// round — the eviction was already ordered.
  void finalize_evict(ReplicaId id);

  /// Replace the container of a compromised replica (Fig. 17d): fresh
  /// replica object, same id, state transfer from peers.  The new instance's
  /// USIG epoch is bumped so its restarted counter sequence supersedes the
  /// pre-recovery one at verifiers.
  void recover_replica(ReplicaId id);

  /// Crash a replica (stops handling messages permanently until recovered).
  void crash_replica(ReplicaId id);

  /// Evict `id` through consensus like evict_replica, but hand the detached
  /// replica object back to the caller instead of destroying it.  The host
  /// registration is removed (so nothing routes into the object after the
  /// caller frees it), but the detached replica can still *send*: a test
  /// hook for "evicted node keeps talking" attack scenarios — it can emit
  /// fresh USIG counters, which live members must reject.
  std::unique_ptr<MinBftReplica> evict_and_detach(ReplicaId id);

  /// Run the network for a simulated duration.
  void run_for(double seconds);

 private:
  void wire_replica(ReplicaId id, std::vector<ReplicaId> membership);
  std::vector<ReplicaId> current_membership() const;
  /// Order `op` through the controller client within `max_events` network
  /// events; abandons the request (cancelling its retries) on timeout.
  bool order_with_budget(const std::string& op, std::size_t max_events);

  MinBftConfig config_;
  std::uint64_t seed_;
  MinBftNet net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::map<ReplicaId, std::unique_ptr<MinBftReplica>> replicas_;
  std::map<ReplicaId, std::uint64_t> usig_epochs_;  ///< per-id lifetime count
  std::vector<std::unique_ptr<MinBftClient>> clients_;
  std::unique_ptr<MinBftClient> controller_client_;  ///< issues join/evict
  ReplicaId next_replica_id_ = 0;
  ClientId next_client_id_ = 10000;
};

}  // namespace tolerance::consensus
