// Harness that wires MinBFT replicas and clients onto a simulated network,
// and drives the reconfiguration flows of Fig. 17 (join, evict, recover).
// Used by the consensus tests, the Fig. 10 throughput bench, and the
// full-stack emulation example.
#pragma once

#include <map>
#include <memory>

#include "tolerance/consensus/minbft_client.hpp"
#include "tolerance/consensus/minbft_replica.hpp"

namespace tolerance::consensus {

class MinBftCluster {
 public:
  MinBftCluster(int num_replicas, MinBftConfig config, std::uint64_t seed,
                net::LinkConfig link = net::LinkConfig{});

  MinBftNet& network() { return net_; }
  MinBftReplica& replica(ReplicaId id);
  bool has_replica(ReplicaId id) const;
  std::vector<ReplicaId> replica_ids() const;
  int f() const { return config_.f; }

  /// Create a client (ids start at 10000 to avoid clashing with replicas).
  MinBftClient& add_client();

  /// Submit through a client and run the network until completion or the
  /// event budget is exhausted; returns the result if completed.
  std::optional<std::string> submit_and_run(MinBftClient& client,
                                            const std::string& op,
                                            std::size_t max_events = 2000000);

  /// System-controller entry points (§VII-C): ordered via consensus.
  /// `join` spins up the replica object, orders "join:<id>", and triggers
  /// state transfer; `evict` orders "evict:<id>" and detaches the replica.
  ReplicaId join_new_replica();
  void evict_replica(ReplicaId id);

  /// Replace the container of a compromised replica (Fig. 17d): fresh
  /// replica object, same id, state transfer from peers.
  void recover_replica(ReplicaId id);

  /// Crash a replica (stops handling messages permanently until recovered).
  void crash_replica(ReplicaId id);

  /// Run the network for a simulated duration.
  void run_for(double seconds);

 private:
  void wire_replica(ReplicaId id, std::vector<ReplicaId> membership);
  std::vector<ReplicaId> current_membership() const;

  MinBftConfig config_;
  std::uint64_t seed_;
  MinBftNet net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  std::map<ReplicaId, std::unique_ptr<MinBftReplica>> replicas_;
  std::vector<std::unique_ptr<MinBftClient>> clients_;
  std::unique_ptr<MinBftClient> controller_client_;  ///< issues join/evict
  ReplicaId next_replica_id_ = 0;
  ClientId next_client_id_ = 10000;
};

}  // namespace tolerance::consensus
