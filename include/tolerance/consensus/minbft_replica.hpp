// A MinBFT replica (Veronese et al. [43, §4.2], as used by TOLERANCE).
//
// MinBFT is PBFT restructured around a trusted monotonic counter (USIG):
// two communication steps (PREPARE, COMMIT), f = (N-1)/2 resilience under
// the hybrid failure model, FIFO ordering per leader enforced by counter
// contiguity, equivocation impossible because a counter value can be bound
// to only one message.  This implementation adds the reconfiguration
// operations (join/evict) of §VII-C and state transfer for new replicas.
//
// Byzantine behaviour for experiments is injected via ByzantineMode: the
// protocol logic below is the honest logic; a compromised replica either
// goes silent, or emits garbage COMMITs/REPLYs — but its USIG still refuses
// to equivocate, which is exactly the hybrid-failure assumption.
#pragma once

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "tolerance/consensus/minbft_messages.hpp"

namespace tolerance::consensus {

/// Post-compromise behaviours from §VIII-A: (a) participate correctly,
/// (b) stop participating, (c) participate with random messages.
enum class ByzantineMode { Honest, Silent, Random };

struct MinBftConfig {
  int f = 1;                       ///< tolerated faults; N = 2f + 1 minimum
  SeqNum checkpoint_period = 100;  ///< cp in Table 8
  SeqNum log_watermark = 1000;     ///< L in Table 8
  double view_change_timeout = 280.0;  ///< Tvc in Table 8 (seconds)
  double request_retry_timeout = 30.0; ///< Texec in Table 8
  double crypto_cost_sign = crypto::KeyRegistry::kSignCost;
  double crypto_cost_verify = crypto::KeyRegistry::kVerifyCost;
  /// CPU cost per outgoing message (marshalling + per-link MAC); dominates
  /// the O(N^2) message complexity that bends the Fig. 10 throughput curve.
  double cpu_cost_per_send = 0.0;
};

/// The replicated state machine: an append-only operation log with a chained
/// digest (sufficient for the paper's read/write web service, §VII-B).
class ReplicatedService {
 public:
  std::string execute(const std::string& operation);
  const std::vector<std::string>& log() const { return log_; }
  crypto::Digest state_digest() const { return digest_; }
  void install(std::vector<std::string> log, crypto::Digest digest);

  /// The chained digest a log of operations would produce — lets a state
  /// receiver verify that a claimed log really is the one behind a digest
  /// quorum before installing it.
  static crypto::Digest chain_digest(const std::vector<std::string>& log);

 private:
  std::vector<std::string> log_;
  crypto::Digest digest_{};
};

class MinBftReplica {
 public:
  /// `usig_epoch` is the trusted component's lifetime number: 0 for the
  /// first instantiation, incremented by the cluster each time the replica
  /// is re-created with the same id (recovery).  Receivers order counters by
  /// (epoch, counter), so the fresh USIG supersedes the pre-recovery one.
  MinBftReplica(ReplicaId id, std::vector<ReplicaId> membership,
                MinBftConfig config, MinBftNet& net,
                std::shared_ptr<crypto::KeyRegistry> registry,
                std::uint64_t key_seed, std::uint64_t usig_epoch = 0);

  /// Cancels any pending view-change timer: the timer callback captures
  /// `this`, so a replica destroyed mid-run (evicted or recovered by the
  /// system controller) must not leave it armed in the network queue.
  ~MinBftReplica();

  MinBftReplica(const MinBftReplica&) = delete;
  MinBftReplica& operator=(const MinBftReplica&) = delete;

  ReplicaId id() const { return id_; }
  View view() const { return view_; }
  ReplicaId current_leader() const;
  bool is_leader() const { return current_leader() == id_; }
  const std::vector<ReplicaId>& membership() const { return membership_; }
  SeqNum last_executed() const { return last_executed_; }
  const ReplicatedService& service() const { return service_; }
  ByzantineMode mode() const { return mode_; }

  /// Fault injection for experiments (§VIII-A behaviours).
  void set_mode(ByzantineMode mode) { mode_ = mode; }

  /// Handle any protocol message (wired to the network by MinBftCluster).
  void on_message(net::NodeId from, const MinBftMsg& msg);

  /// Ask peers for the current state (recovery / join, Fig. 17 d-e).
  void request_state_transfer();

  /// Number of executed operations (for tests/benches).
  std::size_t executed_count() const { return service_.log().size(); }

  /// This replica's USIG state (for tests: proves a detached replica really
  /// certified fresh counters that were then rejected by members).
  std::uint64_t usig_counter() const { return usig_.last_counter(); }
  std::uint64_t usig_epoch() const { return usig_.epoch(); }

 private:
  struct PendingEntry {
    Prepare prepare;
    std::set<ReplicaId> commits;  ///< distinct committers (incl. leader)
    bool executed = false;
  };

  void handle_request(const Request& req);
  void handle_prepare(const Prepare& p);
  void handle_commit(const Commit& c);
  void handle_checkpoint(const Checkpoint& c);
  void handle_req_view_change(const ReqViewChange& r);
  void handle_view_change(const ViewChange& vc);
  void handle_new_view(const NewView& nv);
  void handle_state_request(net::NodeId from, const StateRequest& r);
  void handle_state_response(const StateResponse& r);

  void lead_request(const Request& req);
  ReqViewChange make_req_view_change(View to_view);
  void try_execute();
  void execute_entry(PendingEntry& entry);
  void apply_reconfiguration(const std::string& op);
  void emit_checkpoint();
  void garbage_collect(SeqNum stable);
  void start_view_change(View to_view);
  void arm_view_change_timer();
  void disarm_view_change_timer();
  void send_commit(const Prepare& p);
  void broadcast(const MinBftMsg& msg);

  bool verify_request(const Request& req) const;
  bool is_member(ReplicaId replica) const;
  /// Accept `ui` only if it is fresh — strictly above the last (epoch,
  /// counter) pair seen from its issuer — and record it.  Evicted or
  /// replayed identifiers never pass (callers additionally gate on
  /// is_member).
  bool accept_counter(const crypto::UniqueIdentifier& ui);

  ReplicaId id_;
  std::vector<ReplicaId> membership_;
  MinBftConfig config_;
  MinBftNet* net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  crypto::Usig usig_;
  ReplicatedService service_;
  ByzantineMode mode_ = ByzantineMode::Honest;

  View view_ = 0;
  SeqNum last_executed_ = 0;      ///< highest contiguously executed seq
  SeqNum stable_checkpoint_ = 0;
  std::map<SeqNum, PendingEntry> log_;
  /// Last accepted (usig epoch, counter) per replica — FIFO ordering and
  /// replay protection across recoveries.
  std::map<ReplicaId, std::pair<std::uint64_t, std::uint64_t>> last_counter_;
  std::set<std::pair<ClientId, std::uint64_t>> executed_requests_;
  std::map<SeqNum, std::map<crypto::Digest, std::set<ReplicaId>,
                            std::less<crypto::Digest>>>
      checkpoint_votes_;
  std::map<View, std::set<ReplicaId>> view_change_requests_;
  std::map<View, std::vector<ViewChange>> view_changes_;
  bool in_view_change_ = false;
  std::uint64_t vc_timer_ = 0;
  bool vc_timer_armed_ = false;
  std::map<ClientId, std::uint64_t> last_replied_;
  std::map<crypto::Digest, std::set<ReplicaId>> state_votes_;
  std::map<crypto::Digest, StateResponse> pending_state_;
};

}  // namespace tolerance::consensus
