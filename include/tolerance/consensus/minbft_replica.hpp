// A MinBFT replica (Veronese et al. [43, §4.2], as used by TOLERANCE).
//
// MinBFT is PBFT restructured around a trusted monotonic counter (USIG):
// two communication steps (PREPARE, COMMIT), f = (N-1)/2 resilience under
// the hybrid failure model, FIFO ordering per leader enforced by counter
// contiguity, equivocation impossible because a counter value can be bound
// to only one message.  This implementation adds the reconfiguration
// operations (join/evict) of §VII-C, state transfer for new replicas, and
// the throughput levers of the Fig. 10 scale-up:
//
//  * Request batching — the leader accumulates pending client requests and
//    binds a whole ordered batch to ONE USIG counter value; followers verify
//    one UI per batch, COMMITs endorse the batch digest, execution and
//    REPLYs fan out per request.  A batch seals as soon as the pipeline
//    window has room (so an idle system runs at singleton batches with
//    unbatched latency), when it reaches `batch_size`, or when the batch
//    timer fires; batches only *accumulate* under backpressure, which is
//    exactly when amortizing the signature pays.
//  * Pipelined signing/verification — up to `pipeline_depth` sealed batches
//    may be in flight (assigned a counter, not yet executed) at once, and a
//    UsigVerifyCache memoizes verification verdicts per (sender, epoch,
//    counter) so retransmits and view-change proof re-checks are free.
//
// Byzantine behaviour for experiments is injected via ByzantineMode: the
// protocol logic below is the honest logic; a compromised replica either
// goes silent, or emits garbage (corrupted COMMIT digests, garbage REPLYs,
// and — as leader — a corrupted operation smuggled into a sealed batch).
// Its USIG still refuses to equivocate, which is exactly the hybrid-failure
// assumption; a garbage batch is caught by the per-request client-signature
// check and answered with a view change.
#pragma once

#include <atomic>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>

#include "tolerance/consensus/admission.hpp"
#include "tolerance/consensus/minbft_messages.hpp"
#include "tolerance/util/rng.hpp"

namespace tolerance::consensus {

/// Post-compromise behaviours from §VIII-A: (a) participate correctly,
/// (b) stop participating, (c) participate with random messages.
enum class ByzantineMode { Honest, Silent, Random };

struct MinBftConfig {
  int f = 1;                       ///< tolerated faults; N = 2f + 1 minimum
  SeqNum checkpoint_period = 100;  ///< cp in Table 8
  SeqNum log_watermark = 1000;     ///< L in Table 8
  double view_change_timeout = 280.0;  ///< Tvc in Table 8 (seconds)
  double request_retry_timeout = 30.0; ///< Texec in Table 8
  /// Commit votes are fire-and-forget: if the one commit a peer still
  /// needed is lost, that peer wedges on a fully-prepared entry forever —
  /// and with n = 2f+1 its stall freezes the checkpoint quorum for the
  /// whole cluster.  After this many seconds sitting on an unquorate
  /// next-to-execute entry we re-broadcast our own vote; peers answer a
  /// duplicate vote by echoing theirs back (see handle_commit), so the
  /// hole closes from either side.  Zero disables the repair clock: the
  /// wall-clock runtime lane force-enables it (lost frames are a fact of
  /// life there), while the sim emulation lane leaves failure dynamics to
  /// the view-change machinery its scenario calibrations assume.
  double commit_repair_timeout = 0.0;
  /// When true, a replica constructed with usig_epoch > 0 (a post-crash
  /// restart: the trusted counter survived, the log did not) starts
  /// PASSIVE — it only processes checkpoints and state responses until its
  /// first state install, so it cannot re-vote sequences it voted before
  /// the crash or contribute an amnesiac prepared-set to a view change
  /// (either forks the committed log).  The wall-clock runtime lane turns
  /// this on; the sim emulation lane keeps the legacy immediate-rejoin so
  /// controller-driven recovery waves cannot starve the checkpoint quorum.
  bool passive_recovery = false;
  double crypto_cost_sign = crypto::KeyRegistry::kSignCost;
  double crypto_cost_verify = crypto::KeyRegistry::kVerifyCost;
  /// CPU cost per outgoing message (marshalling + per-link MAC); dominates
  /// the O(N^2) message complexity that bends the Fig. 10 throughput curve.
  double cpu_cost_per_send = 0.0;
  /// Per-REPLY authentication cost.  Replies are per-client point-to-point,
  /// so real deployments authenticate them with session MACs instead of
  /// signatures (the PBFT-lineage optimization); < 0 falls back to
  /// crypto_cost_sign, the pre-batching behaviour.
  double crypto_cost_reply = -1.0;
  /// Max requests bound to one USIG counter value (1 = unbatched protocol).
  int batch_size = 16;
  /// Max sealed-but-unexecuted batches the leader keeps in flight.  An
  /// arriving request seals immediately while the window has room;
  /// kUnboundedPipeline reproduces the pre-batching message pattern
  /// (every request its own PREPARE, watermark-bound pipelining).
  int pipeline_depth = 4;
  /// Seal a partial batch after this many (simulated) seconds even if the
  /// pipeline window is full (at most one over-the-window batch per timeout
  /// period) — bounds pending-request latency when execution stalls.
  double batch_timeout = 0.05;
  /// Entries kept by the per-replica USIG verification cache.
  std::size_t usig_cache_capacity = 4096;
  /// Speculative execution (the Zyzzyva-style fast path): execute a batch
  /// tentatively as soon as its PREPARE verifies — before the commit quorum
  /// — and reply with the speculative flag set.  Clients act on a
  /// speculative result only when ALL n replicas return matching tentative
  /// replies; a view change rolls uncommitted speculative state back to the
  /// committed prefix and the re-proposed entries re-execute.  Entries
  /// carrying join:/evict: operations never execute speculatively
  /// (membership changes are not rolled back).
  bool speculative = false;
  /// Client-side safety valve for the speculative fast path: once a request
  /// has gathered at least one speculative reply without completing, wait
  /// this long, then retransmit once.  Replicas answer retransmissions from
  /// their reply cache (FINAL once the entry committed), so a client whose
  /// speculative quorum was spoiled by one lost reply recovers in a round
  /// trip instead of a full request_retry_timeout.  0 disables the valve.
  double spec_fallback_timeout = 0.0;
  /// Grace period before fetching a PREPARE that a commit quorum refers to
  /// but never arrived here.  Commit-before-prepare is usually plain
  /// reordering (the prepare is buffered in a flush window or a slower
  /// bundle) and resolves by itself; only when the prepare is still missing
  /// after this long was it dropped, and a relay is worth the traffic.
  double prepare_fetch_grace = 0.02;
  /// Sim-lane model of the wall-clock lane's outbound authenticator
  /// batching: when > 0, cpu_cost_per_send is charged per destination at
  /// most once per this many (simulated) seconds — one MAC covers every
  /// message flushed to that destination inside the window.  0 keeps the
  /// one-MAC-per-message accounting.  Message *semantics* are unchanged
  /// either way, which is what the batched≡unbatched log gate checks.
  double mac_flush_window = 0.0;
  /// Client-facing admission control (EWMA pressure + NORMAL/SOFT/HARD mode
  /// machine + per-mode token budgets).  Disabled by default — enabling it
  /// changes no protocol semantics, only whether a replica may answer a
  /// REQUEST with a typed Overloaded rejection instead of queueing it.
  AdmissionConfig admission;
  /// Per-attempt deadline for state transfer (seconds): if no f+1 digest
  /// quorum installed within this long of sending a StateRequest, re-request
  /// from a rotated peer window.  The deadline grows by
  /// state_transfer_backoff per attempt (with up to +25% seeded jitter, so
  /// simultaneously recovering replicas do not re-request in lockstep).
  /// Generous by default: on a healthy link the first attempt always wins,
  /// which keeps the sim lane's traces on the one-broadcast path.
  double state_transfer_timeout = 15.0;
  double state_transfer_backoff = 2.0;
  /// Attempts before giving up (telemetry records the give-up; the next
  /// checkpoint that shows this replica behind starts a fresh cycle).
  int state_transfer_max_attempts = 6;

  static constexpr int kUnboundedPipeline = std::numeric_limits<int>::max();

  /// The pre-batching protocol: singleton batches, watermark-bound pipeline.
  MinBftConfig unbatched() const {
    MinBftConfig c = *this;
    c.batch_size = 1;
    c.pipeline_depth = kUnboundedPipeline;
    return c;
  }
};

/// The replicated state machine: an append-only operation log with a chained
/// digest (sufficient for the paper's read/write web service, §VII-B).
class ReplicatedService {
 public:
  std::string execute(const std::string& operation);
  const std::vector<std::string>& log() const { return log_; }
  crypto::Digest state_digest() const { return digest_; }
  void install(std::vector<std::string> log, crypto::Digest digest);

  /// The chained digest a log of operations would produce — lets a state
  /// receiver verify that a claimed log really is the one behind a digest
  /// quorum before installing it.
  static crypto::Digest chain_digest(const std::vector<std::string>& log);

 private:
  std::vector<std::string> log_;
  crypto::Digest digest_{};
};

class MinBftReplica {
 public:
  /// `usig_epoch` is the trusted component's lifetime number: 0 for the
  /// first instantiation, incremented by the cluster each time the replica
  /// is re-created with the same id (recovery).  Receivers order counters by
  /// (epoch, counter), so the fresh USIG supersedes the pre-recovery one.
  MinBftReplica(ReplicaId id, std::vector<ReplicaId> membership,
                MinBftConfig config, MinBftTransport& net,
                std::shared_ptr<crypto::KeyRegistry> registry,
                std::uint64_t key_seed, std::uint64_t usig_epoch = 0);

  /// Cancels any pending view-change / batch timer: the timer callbacks
  /// capture `this`, so a replica destroyed mid-run (evicted or recovered by
  /// the system controller) must not leave one armed in the network queue.
  ~MinBftReplica();

  MinBftReplica(const MinBftReplica&) = delete;
  MinBftReplica& operator=(const MinBftReplica&) = delete;

  ReplicaId id() const { return id_; }
  View view() const { return view_; }
  ReplicaId current_leader() const;
  bool is_leader() const { return current_leader() == id_; }
  const std::vector<ReplicaId>& membership() const { return membership_; }
  SeqNum last_executed() const { return last_executed_; }
  const ReplicatedService& service() const { return service_; }
  ByzantineMode mode() const { return mode_; }

  /// Fault injection for experiments (§VIII-A behaviours).
  void set_mode(ByzantineMode mode) { mode_ = mode; }

  /// Handle any protocol message (wired to the network by MinBftCluster).
  void on_message(net::NodeId from, const MinBftMsg& msg);

  /// Ask peers for the current state (recovery / join, Fig. 17 d-e).
  void request_state_transfer();

  /// Number of executed operations (for tests/benches).
  std::size_t executed_count() const { return service_.log().size(); }

  /// This replica's USIG state (for tests: proves a detached replica really
  /// certified fresh counters that were then rejected by members).
  std::uint64_t usig_counter() const { return usig_.last_counter(); }
  std::uint64_t usig_epoch() const { return usig_.epoch(); }

  // Batching / caching telemetry (tests and the Fig. 10 sweep).
  std::uint64_t batches_proposed() const { return batches_proposed_; }
  std::uint64_t requests_proposed() const { return requests_proposed_; }
  std::size_t max_batch_size_proposed() const { return max_batch_; }
  std::size_t pending_request_count() const {
    return pending_requests_.size();
  }
  std::uint64_t usig_cache_hits() const { return usig_cache_.hits(); }
  std::uint64_t usig_cache_misses() const { return usig_cache_.misses(); }

  // Admission-control telemetry and fault injection (tests, scenarios).
  const AdmissionController& admission() const { return admission_; }
  std::uint64_t requests_admitted() const { return admission_.admitted(); }
  std::uint64_t requests_rejected() const { return admission_.rejected(); }
  /// Replace the admission configuration (and reset the controller state).
  /// Scenario fault injection uses this to make one replica advertise fake
  /// HARD pressure: hard_enter = 0 with a zero token budget rejects every
  /// request with a validly signed Overloaded.
  void set_admission_config(const AdmissionConfig& cfg) {
    config_.admission = cfg;
    admission_ = AdmissionController(cfg);
  }

  // Speculative-execution telemetry (tests and the runtime bench).
  std::uint64_t spec_executions() const { return spec_executions_; }
  std::uint64_t spec_rollbacks() const { return spec_rollbacks_; }
  SeqNum last_speculated() const { return last_speculated_; }
  /// The commit-quorum-backed prefix length of service().log(); anything
  /// beyond it is speculative and may still roll back.
  std::size_t committed_log_size() const { return committed_log_size_; }

  // State-transfer retry telemetry (the chaos lane's recovery gates).
  std::uint64_t state_transfer_attempts() const { return st_attempts_; }
  /// Attempts beyond the first per cycle (re-requests after a deadline).
  std::uint64_t state_transfer_retries() const { return st_retries_; }
  std::uint64_t state_transfer_completions() const { return st_completions_; }
  std::uint64_t state_transfer_giveups() const { return st_giveups_; }
  /// A transfer cycle is running (request sent, no install / give-up yet).
  bool state_transfer_active() const { return st_active_; }
  /// Passive post-restart phase: no votes until the first state install.
  bool recovering() const { return recovering_; }
  // Bookkeeping bounds (tests assert these stay pruned).
  std::size_t state_vote_count() const { return state_votes_.size(); }
  std::size_t pending_state_count() const { return pending_state_.size(); }

  /// Cross-thread progress telemetry for the liveness watchdog: plain
  /// relaxed atomics published from the replica's own event loop after every
  /// message, readable from the chaos control thread while the run is live
  /// (every other accessor on this class is loop-thread-only).
  struct ProgressCounters {
    std::atomic<std::uint64_t> committed_ops{0};
    std::atomic<std::uint64_t> view{0};
    std::atomic<std::uint64_t> st_attempts{0};
    std::atomic<std::uint64_t> st_completions{0};
    std::atomic<std::uint64_t> st_giveups{0};
  };
  const ProgressCounters& progress() const { return progress_; }

 private:
  struct PendingEntry {
    Prepare prepare;
    std::set<ReplicaId> commits;  ///< distinct committers (incl. leader)
    bool executed = false;
    // --- speculative-execution bookkeeping --------------------------------
    /// Tentatively applied to the service before the commit quorum.
    bool spec_executed = false;
    /// Per-request results recorded at speculative execution; at commit the
    /// reply cache flips to FINAL without re-execution (and without a second
    /// reply — replicas reply once, Zyzzyva-style).  Empty string = the
    /// request was a duplicate and was skipped.
    std::vector<std::string> spec_results;
    /// (client, request_id) keys THIS entry inserted into
    /// executed_requests_ — exactly what a rollback must erase.
    std::vector<std::pair<ClientId, std::uint64_t>> spec_applied;
    /// Service state right after this entry applied; becomes the committed
    /// snapshot when the entry commits (checkpoints and rollbacks use it).
    std::size_t post_log_size = 0;
    crypto::Digest post_digest{};
    /// Last time we echoed our commit vote in response to a duplicate
    /// (repair nudge).  Echoes are capped at one per repair window per
    /// entry: two replicas each missing a THIRD party's vote would
    /// otherwise treat each other's echoes as fresh nudges and ping-pong
    /// re-signed commits at network RTT rate forever.
    double last_echo = -1e300;
  };

  void handle_request(const Request& req);
  void handle_prepare(const Prepare& p, bool relayed = false);
  void handle_commit(const Commit& c);
  void handle_fetch_prepare(const FetchPrepare& m);
  void handle_checkpoint(const Checkpoint& c);
  void handle_req_view_change(const ReqViewChange& r);
  void handle_view_change(const ViewChange& vc);
  void handle_new_view(const NewView& nv);
  /// Deterministic reassembly of the undecided log suffix from a view-change
  /// proof set (UIs left unset).  Run by the new leader to build its
  /// NEW-VIEW and by every follower to validate one, so a Byzantine leader
  /// cannot deviate from it — see the definition for the selection rules.
  std::vector<Prepare> assemble_reproposals(
      const std::vector<ViewChange>& proofs, View new_view);
  /// The proof's stable_seq claim if its checkpoint certificate carries f+1
  /// distinct members' valid USIG-certified CHECKPOINTs for it, else 0.
  SeqNum certified_stable(const ViewChange& proof);
  void handle_state_request(net::NodeId from, const StateRequest& r);
  void handle_state_response(const StateResponse& r);

  // --- state-transfer retry machine ---------------------------------------
  /// Send one StateRequest: attempt 1 broadcasts (the fast, common path);
  /// retries target a rotating window of f+1 peers — enough that at least
  /// one is honest, without re-triggering the full response fan-in.
  void send_state_request();
  void arm_state_transfer_timer();
  void disarm_state_transfer_timer();
  /// Deadline expired with no install: back off and re-request, or give up.
  void on_state_transfer_deadline();
  /// Install the stashed certificate-vouched anchor (if any survives the
  /// re-checks) and chase the responder's head.  Returns true if a state
  /// was installed — the current transfer cycle is finished then.
  bool try_install_anchor();
  /// End the cycle (installed or gave up): cancel the deadline timer and
  /// prune ALL transfer bookkeeping — stale digests from slow or Byzantine
  /// responders must not outlive the cycle that solicited them.
  void finish_state_transfer(bool installed);
  /// Drop one candidate digest (failed chain verification) without ending
  /// the cycle.
  void discard_state_candidate(const crypto::Digest& digest);
  /// True when the response's checkpoint-anchored sidecar is usable here:
  /// it advances us, its prefix is spliceable from our own committed log,
  /// and its certificate carries f+1 distinct members' valid USIG-certified
  /// CHECKPOINTs for (anchor_seq, anchor_digest).
  bool anchor_certified(const StateResponse& r);
  /// Splice our committed prefix under `count` shipped operations and, if
  /// the chained digest of the whole matches, install it and end the cycle.
  /// `cert` becomes the new stable certificate (empty for a head install,
  /// whose stable point is vouched by the digest quorum instead).
  bool install_transferred_state(std::uint64_t prefix_ops,
                                 const std::vector<std::string>& shipped,
                                 std::size_t count,
                                 const crypto::Digest& digest, SeqNum seq,
                                 std::vector<Checkpoint> cert);
  /// Publish committed progress / view to the watchdog-visible atomics.
  void publish_progress();

  void enqueue_request(const Request& req);
  /// Seal pending requests into batches while the pipeline window has room.
  void try_seal_batches();
  bool seal_one_batch();
  SeqNum in_flight_batches() const;
  void arm_batch_timer();
  void disarm_batch_timer();
  void drop_pending_requests();
  /// Recompute the pipeline bookkeeping after a view installation.
  void resync_assignment_watermark();
  /// The current leader is provably faulty (conflicting batch at one seq,
  /// or a batch request with a bad client signature): demand a view change.
  void denounce_leader();
  ReqViewChange make_req_view_change(View to_view);
  /// This replica's USIG-certified view-change proof: stable checkpoint plus
  /// the prepared log suffix.  Used both when broadcasting a view change and
  /// when the new leader appends its own proof at assembly time.
  ViewChange make_view_change(View to_view);
  void try_execute();
  void execute_entry(PendingEntry& entry);
  /// Advance the speculative frontier: tentatively execute contiguous logged
  /// entries above it that have no commit quorum yet, sending speculative
  /// replies.  Stops at reconfiguration batches (never speculated).
  void try_speculate();
  /// Apply one entry tentatively: service execution + speculative replies,
  /// with enough bookkeeping recorded to undo it (spec_applied) or finalize
  /// it without re-execution (spec_results).
  void speculate_entry(PendingEntry& entry);
  /// Final replies for an entry that already executed speculatively: replay
  /// the recorded results, touch nothing in the service.
  void confirm_entry(PendingEntry& entry);
  /// Undo every speculatively-executed, uncommitted entry: erase its
  /// executed_requests_ keys and truncate the service back to the committed
  /// prefix.  Called before a view installs or a state transfer lands —
  /// the re-proposed entries then re-execute from the committed state.
  void rollback_speculation();
  void send_reply(const Request& req, std::string result, bool speculative);
  /// The admission gate's verdict on one arriving request.
  enum class AdmissionOutcome {
    kAdmit,      ///< proceed to verification / enqueue
    kReject,     ///< over budget — an Overloaded rejection has been sent
    kDuplicate,  ///< already backlogged or in flight here; dropped silently
  };
  /// The admission gate: feed the pressure loop one arrival and decide.
  /// Retransmissions of requests this replica already carries are signal,
  /// not work: they raise err* but neither burn a token (that would
  /// double-queue) nor draw a rejection (the client would back off a
  /// request that is already on its way).  Always kAdmit when admission is
  /// disabled.
  AdmissionOutcome admit_request(const Request& req);
  void send_overloaded(const Request& req);
  /// queue* input: leader backlog + unexecuted in-flight batch requests +
  /// the transport's undelivered inbound queue for this node.
  double queue_signal() const;
  /// True if any request in the batch is a join:/evict: operation.
  static bool has_reconfiguration(const Prepare& p);
  void apply_reconfiguration(const std::string& op);
  void emit_checkpoint();
  void garbage_collect(SeqNum stable);
  void start_view_change(View to_view);
  void arm_view_change_timer();
  void disarm_view_change_timer();
  void send_commit(const Prepare& p);
  /// Re-sign and re-send our commit vote for a logged entry — to one peer
  /// (a repair echo) or to everyone (a repair nudge).  No-op unless we
  /// voted for the entry in the current view.
  void resend_commit(SeqNum seq, std::optional<ReplicaId> to);
  /// Arm the commit-repair timer when the next-to-execute entry holds our
  /// vote but no quorum (see MinBftConfig::commit_repair_timeout).
  void maybe_arm_commit_repair();
  void on_commit_repair();
  void broadcast(const MinBftMsg& msg);
  double reply_cost() const {
    return config_.crypto_cost_reply < 0.0 ? config_.crypto_cost_sign
                                           : config_.crypto_cost_reply;
  }

  bool verify_request(const Request& req);
  /// USIG verification through the per-replica verdict cache; only a miss
  /// pays the verify CPU cost.
  bool verify_ui(const crypto::Digest& digest,
                 const crypto::UniqueIdentifier& ui);
  bool is_member(ReplicaId replica) const;
  /// Accept `ui` only if it is fresh — strictly above the last (epoch,
  /// counter) pair seen from its issuer — and record it.  Evicted or
  /// replayed identifiers never pass (callers additionally gate on
  /// is_member).
  bool accept_counter(const crypto::UniqueIdentifier& ui);

  ReplicaId id_;
  std::vector<ReplicaId> membership_;
  MinBftConfig config_;
  MinBftTransport* net_;
  std::shared_ptr<crypto::KeyRegistry> registry_;
  crypto::Signer signer_;
  crypto::Usig usig_;
  ReplicatedService service_;
  ByzantineMode mode_ = ByzantineMode::Honest;
  AdmissionController admission_;
  /// Arrival time of the head of the current leader backlog (lat* input):
  /// set when pending_requests_ goes non-empty, cleared when it drains.
  double backlog_since_ = 0.0;
  /// Keys this valve rejected and has not admitted since.  A retransmission
  /// of a rejected request is not carried anywhere in pending/log state, so
  /// without this memory it would look like a fresh arrival and the err*
  /// pressure term would read near zero in the middle of a retry storm —
  /// the valve would flap back to NORMAL and mint admissions far beyond its
  /// token budget.  Bounded like verified_requests_: cleared on overflow.
  std::set<std::pair<ClientId, std::uint64_t>> rejected_keys_;

  View view_ = 0;
  SeqNum last_executed_ = 0;      ///< highest contiguously executed seq
  SeqNum stable_checkpoint_ = 0;
  /// Highest contiguously (speculatively or finally) executed seq; always
  /// >= last_executed_.  Entries in (last_executed_, last_speculated_] hold
  /// tentative state that a view change rolls back.
  SeqNum last_speculated_ = 0;
  /// The service prefix backed by a commit quorum: what checkpoints digest,
  /// state transfers ship, and rollbacks truncate to.  Equals the full
  /// service state whenever no speculative entry is outstanding.
  std::size_t committed_log_size_ = 0;
  crypto::Digest committed_digest_{};
  std::uint64_t spec_executions_ = 0;
  std::uint64_t spec_rollbacks_ = 0;
  /// Sim-lane MAC batching model: last simulated time cpu_cost_per_send was
  /// charged per destination (see MinBftConfig::mac_flush_window).
  std::map<ReplicaId, double> last_mac_charge_;
  std::map<SeqNum, PendingEntry> log_;
  /// UI-verified COMMIT votes that arrived before their PREPARE (reordering,
  /// or the prepare was dropped): (seq -> voter -> endorsed batch digest).
  /// Folded into the log entry when the prepare shows up; when a full f+1
  /// quorum stashes up with still no prepare, the prepare was lost and we
  /// fetch a relay of it from a committer (see handle_commit).
  std::map<SeqNum, std::map<ReplicaId, crypto::Digest>> early_commits_;
  std::set<SeqNum> fetched_;  ///< seqs we already sent a FetchPrepare for
  /// Last accepted (usig epoch, counter) per replica — FIFO ordering and
  /// replay protection across recoveries.
  std::map<ReplicaId, std::pair<std::uint64_t, std::uint64_t>> last_counter_;
  std::set<std::pair<ClientId, std::uint64_t>> executed_requests_;
  /// CHECKPOINT messages per (seq, state digest, voter): the f+1 quorum that
  /// stabilizes a checkpoint doubles as the certificate a view change must
  /// carry to make its stable_seq claim believable.
  std::map<SeqNum, std::map<crypto::Digest, std::map<ReplicaId, Checkpoint>,
                            std::less<crypto::Digest>>>
      checkpoint_votes_;
  /// The certificate behind stable_checkpoint_ (empty while it is 0 or
  /// after a state transfer, whose stable point is vouched by the digest
  /// quorum instead).
  std::vector<Checkpoint> stable_cert_;
  std::map<View, std::set<ReplicaId>> view_change_requests_;
  std::map<View, std::vector<ViewChange>> view_changes_;
  bool in_view_change_ = false;
  std::uint64_t vc_timer_ = 0;
  bool vc_timer_armed_ = false;
  std::uint64_t repair_timer_ = 0;  ///< commit-repair nudge (see config)
  bool repair_timer_armed_ = false;
  /// last_executed_ snapshot taken when the repair timer was armed.  The
  /// nudge only fires if a FULL window passed with zero execution progress
  /// — a true wedge.  Merely-slow progress (CPU overload, deep queues)
  /// re-arms quietly: resending commits into a saturated cluster adds
  /// sign/verify load exactly when there is none to spare, and that
  /// feedback loop can turn a survivable overload into a collapse.
  SeqNum repair_snapshot_ = 0;
  /// Last reply per client, kept so a retransmitted request can be answered
  /// from cache instead of silently dropped (the liveness path for lost
  /// replies — essential under speculation, where a spec-executed entry's
  /// commit sends no second reply).  `committed` flips at the commit quorum;
  /// a cached resend is re-signed with the current status.
  struct CachedReply {
    std::uint64_t request_id = 0;
    /// The reply exactly as last signed and sent (flag + signature).  A
    /// retransmission resends these bytes verbatim — re-signing only when
    /// `committed` has flipped since, so serving a lagging client costs a
    /// signature at most once per status change, not once per probe.
    Reply reply;
    bool committed = false;  ///< current status (may be newer than the flag)
  };
  std::map<ClientId, CachedReply> reply_cache_;
  /// Digest votes / stored responses for the LIVE transfer cycle only.  One
  /// vote per member (a replica's newest response supersedes its older one),
  /// so both maps are bounded by the membership size; finish_state_transfer
  /// clears them outright.
  std::map<crypto::Digest, std::set<ReplicaId>> state_votes_;
  std::map<crypto::Digest, StateResponse> pending_state_;
  /// Best (highest-anchor) certificate-vouched response seen this cycle.
  /// Head-digest matching stays the primary install path; if the deadline
  /// fires first, this candidate recovers us to the checkpoint boundary —
  /// the path that converges when continuous commits keep the live heads
  /// of any two responders from ever matching exactly.
  std::optional<StateResponse> st_anchor_;
  /// (ops, digest) of our committed log at each checkpoint boundary we
  /// emitted, so handle_state_request can vouch for the stable checkpoint
  /// with an exact spliceable slice.  Pruned below stable on GC and bounded
  /// by the watermark; cleared (re-seeded) on install.
  std::map<SeqNum, std::pair<std::uint64_t, crypto::Digest>>
      checkpoint_anchors_;

  // --- state-transfer retry machine ----------------------------------------
  /// True from a recovery restart (usig_epoch > 0) until the first state
  /// install: a recovering replica is passive — it casts no votes, proposes
  /// nothing and joins no view change, because the votes it cast before
  /// crashing are forgotten and contradicting them could fork the committed
  /// log.  See the recovering_ gate at the top of on_message.
  bool recovering_ = false;
  /// View-change quarantine: installing transferred state clears log_, so
  /// the prepared entries this replica voted for above the install point
  /// are forgotten.  A view-change proof with that amnesiac (empty)
  /// prepared set can displace entries a commit quorum including our
  /// pre-wipe votes decided, forking the committed log.  Any vote we could
  /// have cast was bounded by stable + log_watermark, so we withhold
  /// view-change participation until the stable checkpoint passes
  /// install_seq + log_watermark — from then on every forgotten seq is
  /// covered by a checkpoint certificate, not prepared sets.
  SeqNum vc_quarantine_until_ = 0;
  bool vc_quarantined() const {
    return stable_checkpoint_ < vc_quarantine_until_;
  }
  bool st_active_ = false;
  int st_attempt_ = 0;           ///< attempts in the current cycle
  std::size_t st_rotation_ = 0;  ///< retry peer-window cursor
  std::uint64_t st_timer_ = 0;
  bool st_timer_armed_ = false;
  std::uint64_t st_attempts_ = 0;  // telemetry, lifetime totals
  std::uint64_t st_retries_ = 0;
  std::uint64_t st_completions_ = 0;
  std::uint64_t st_giveups_ = 0;
  Rng st_rng_;  ///< deadline jitter only — never the transport's stream
  ProgressCounters progress_;

  // --- batching / pipelining state (leader role) ---------------------------
  std::deque<Request> pending_requests_;  ///< verified, not yet sealed
  std::set<std::pair<ClientId, std::uint64_t>> pending_keys_;
  SeqNum highest_assigned_ = 0;  ///< highest seq this replica proposed
  std::uint64_t batch_timer_ = 0;
  bool batch_timer_armed_ = false;
  std::uint64_t batches_proposed_ = 0;
  std::uint64_t requests_proposed_ = 0;
  std::size_t max_batch_ = 0;

  // --- verification caches -------------------------------------------------
  crypto::UsigVerifyCache usig_cache_;
  /// Digests of requests whose client signature already verified — a batch
  /// whose requests all arrived via REQUEST broadcasts re-verifies nothing.
  std::set<crypto::Digest, std::less<crypto::Digest>> verified_requests_;
};

}  // namespace tolerance::consensus
