// Shared closed-loop workload driver and log-equivalence definition for the
// consensus batching gates: the MinBftBatching unit tests and the Fig. 10 CI
// bench must agree on what "identical operation logs" means, so both consume
// this one implementation instead of keeping copies in sync.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "tolerance/consensus/minbft_cluster.hpp"

namespace tolerance::consensus {

struct TaggedWorkloadResult {
  std::vector<std::string> log;  ///< replica 0's committed log (empty on error)
  double avg_batch = 0.0;        ///< mean sealed-batch size across replicas
  std::string error;             ///< non-empty if the run failed
};

/// Submit `ops_each` uniquely-tagged ("c<client>:<k>") operations from
/// `clients` closed-loop clients over `link`, and return the committed log
/// once every replica converged.  Fails (error set, log empty) if the
/// workload does not complete within `max_events` network events or the
/// replica logs disagree.  The whole run is simulated-time deterministic for
/// a given (cfg, link, seed) — including lossy or reordering links, whose
/// randomness flows entirely from the seed.
inline TaggedWorkloadResult run_tagged_workload_link(
    const MinBftConfig& cfg, int n, int clients, int ops_each,
    std::uint64_t seed, const net::LinkConfig& link,
    std::size_t max_events = 20000000) {
  MinBftCluster cluster(n, cfg, seed, link);
  TaggedWorkloadResult result;
  int done = 0;
  std::vector<MinBftClient*> cs;
  for (int c = 0; c < clients; ++c) cs.push_back(&cluster.add_client());
  std::function<void(int, int)> pump = [&](int c, int k) {
    if (k >= ops_each) {
      ++done;
      return;
    }
    cs[static_cast<std::size_t>(c)]->submit(
        "c" + std::to_string(c) + ":" + std::to_string(k),
        [&, c, k](std::uint64_t, const std::string&, double) {
          pump(c, k + 1);
        });
  };
  for (int c = 0; c < clients; ++c) pump(c, 0);
  std::size_t events = 0;
  while (done < clients && events < max_events && cluster.network().step()) {
    ++events;
  }
  if (done < clients) {
    result.error = "workload did not complete within the event budget";
    return result;
  }
  // Let stragglers converge.  A CPU-backlogged replica drains its deferred
  // deliveries at its simulated crypto rate (deliveries re-defer behind the
  // advancing busy window), so convergence is checked in bounded rounds
  // instead of one fixed grace period; the workload is finite, so a correct
  // run always converges — the cap only bounds a genuinely diverged one.
  const auto ids = cluster.replica_ids();
  const auto converged = [&]() {
    const auto& log0 = cluster.replica(ids.front()).service().log();
    for (const auto id : ids) {
      if (cluster.replica(id).service().log() != log0) return false;
    }
    return true;
  };
  for (int rounds = 0; !converged() && rounds < 50; ++rounds) {
    cluster.run_for(2.0);
  }
  if (!converged()) {
    result.error = "replica logs diverged within one run";
    return result;
  }
  std::uint64_t batches = 0, requests = 0;
  for (const auto id : ids) {
    batches += cluster.replica(id).batches_proposed();
    requests += cluster.replica(id).requests_proposed();
  }
  result.avg_batch = batches > 0 ? static_cast<double>(requests) /
                                       static_cast<double>(batches)
                                 : 0.0;
  result.log = cluster.replica(ids.front()).service().log();
  return result;
}

/// The batching-gate workload: same driver over the deterministic
/// (lossless, jitterless) 1 ms link both gates were pinned against.
inline TaggedWorkloadResult run_tagged_workload(
    const MinBftConfig& cfg, int n, int clients, int ops_each,
    std::uint64_t seed, std::size_t max_events = 20000000) {
  net::LinkConfig link;
  link.base_delay = 1e-3;
  link.jitter = 0.0;
  link.loss = 0.0;
  return run_tagged_workload_link(cfg, n, clients, ops_each, seed, link,
                                  max_events);
}

/// The equivalence both gates assert between batched and unbatched runs:
/// the same multiset of operations, and per client the same order.  (The
/// interleaving across clients legitimately shifts with the CPU schedule.)
inline bool logs_equivalent(const std::vector<std::string>& a,
                            const std::vector<std::string>& b, int clients,
                            std::string* error) {
  if (a.size() != b.size()) {
    *error = "log sizes differ";
    return false;
  }
  std::vector<std::string> sa = a, sb = b;
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  if (sa != sb) {
    *error = "operation multisets differ";
    return false;
  }
  for (int c = 0; c < clients; ++c) {
    const std::string prefix = "c" + std::to_string(c) + ":";
    std::vector<std::string> pa, pb;
    for (const auto& op : a) {
      if (op.rfind(prefix, 0) == 0) pa.push_back(op);
    }
    for (const auto& op : b) {
      if (op.rfind(prefix, 0) == 0) pb.push_back(op);
    }
    if (pa != pb) {
      *error = "per-client order differs for client " + std::to_string(c);
      return false;
    }
  }
  return true;
}

}  // namespace tolerance::consensus
