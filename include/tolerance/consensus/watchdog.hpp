// Cluster liveness watchdog for the wall-clock lane.
//
// The watchdog is pure logic: the chaos control thread samples each
// replica's ProgressCounters (relaxed atomics published from the replica
// event loops) and feeds the totals here; the watchdog decides whether the
// cluster as a whole made commit progress within the stall window and, if
// not, emits a StallReport with per-replica diagnostics so a chaos failure
// names the replica that wedged instead of just "no throughput".
//
// Crash-aware: a replica the harness deliberately crashed is reported as
// such, not counted as a liveness anomaly — a watchdog that pages on its
// own fault plan is noise.  Threading: the watchdog itself has no locks and
// must only be driven from one thread (the harness control loop).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tolerance/net/sim_network.hpp"

namespace tolerance::consensus {

/// One replica's progress sample, as read by the control thread.
struct ReplicaDiag {
  net::NodeId replica = 0;
  bool alive = true;  ///< false while deliberately crashed by the harness
  std::uint64_t committed_ops = 0;
  std::uint64_t view = 0;
  std::uint64_t st_attempts = 0;
  std::uint64_t st_completions = 0;
  std::uint64_t st_giveups = 0;
};

/// Emitted when no live replica advanced its committed count for a full
/// stall window.  `stalled_for` is the time since the last observed advance.
struct StallReport {
  double at = 0.0;           ///< sample timestamp (seconds, harness clock)
  double stalled_for = 0.0;  ///< seconds since the last commit advance
  std::uint64_t max_committed = 0;  ///< cluster-wide high-water mark
  std::vector<ReplicaDiag> replicas;

  /// One-line rendering for logs and bench JSON notes.
  std::string describe() const;
};

class LivenessWatchdog {
 public:
  /// `window` — seconds without any commit advance before flagging a stall.
  /// Each additional full window while still stalled emits another report
  /// (so a long wedge shows up as N reports, not one).
  explicit LivenessWatchdog(double window);

  /// Feed one sample.  `now` is the harness clock in seconds (monotone,
  /// caller-supplied so tests can drive synthetic time); `diags` holds one
  /// entry per replica the harness knows about, crashed ones marked
  /// !alive.  Returns true when this sample crossed a stall threshold and
  /// appended to reports().
  bool sample(double now, const std::vector<ReplicaDiag>& diags);

  const std::vector<StallReport>& reports() const { return reports_; }
  std::uint64_t max_committed() const { return max_committed_; }
  /// Longest observed gap between commit advances, including the tail gap
  /// that never crossed the stall window.
  double longest_gap() const { return longest_gap_; }

 private:
  double window_;
  bool primed_ = false;       ///< first sample seeds the baseline
  double last_advance_ = 0.0; ///< harness time of the last commit advance
  double next_report_ = 0.0;  ///< stall time at which the next report fires
  std::uint64_t max_committed_ = 0;
  double longest_gap_ = 0.0;
  std::vector<StallReport> reports_;
};

}  // namespace tolerance::consensus
