// Raft (Ongaro & Ousterhout) — the crash-tolerant consensus substrate on
// which the TOLERANCE system controller runs (§IV: "it can be deployed on a
// standard crash-tolerant system, e.g., a RAFT-based system").
//
// Implements leader election, log replication and commitment over the
// simulated network.  Nodes fail only by crashing (the privileged-domain
// assumption), so no authentication beyond node ids is required here.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "tolerance/net/sim_network.hpp"

namespace tolerance::consensus::raft {

using NodeId = net::NodeId;
using Term = std::uint64_t;
using Index = std::uint64_t;  // 1-based log indexing

struct LogEntry {
  Term term = 0;
  std::string command;
};

struct RequestVote {
  Term term = 0;
  NodeId candidate = 0;
  Index last_log_index = 0;
  Term last_log_term = 0;
};

struct VoteReply {
  Term term = 0;
  NodeId voter = 0;
  bool granted = false;
};

struct AppendEntries {
  Term term = 0;
  NodeId leader = 0;
  Index prev_log_index = 0;
  Term prev_log_term = 0;
  std::vector<LogEntry> entries;
  Index leader_commit = 0;
};

struct AppendReply {
  Term term = 0;
  NodeId follower = 0;
  bool success = false;
  Index match_index = 0;
};

using RaftMsg = std::variant<RequestVote, VoteReply, AppendEntries, AppendReply>;
using RaftNet = net::SimNetwork<RaftMsg>;

enum class Role { Follower, Candidate, Leader };

struct RaftConfig {
  double election_timeout_min = 0.15;
  double election_timeout_max = 0.30;
  double heartbeat_interval = 0.05;
};

class RaftNode {
 public:
  using ApplyHandler = std::function<void(Index, const std::string&)>;

  RaftNode(NodeId id, std::vector<NodeId> peers, RaftConfig config,
           RaftNet& net, Rng rng);

  NodeId id() const { return id_; }
  Role role() const { return role_; }
  Term term() const { return term_; }
  Index commit_index() const { return commit_index_; }
  const std::vector<LogEntry>& log() const { return log_; }
  bool crashed() const { return crashed_; }

  void set_apply_handler(ApplyHandler handler) { apply_ = std::move(handler); }

  /// Client entry point: returns the assigned index if this node is leader.
  std::optional<Index> propose(const std::string& command);

  void on_message(NodeId from, const RaftMsg& msg);

  /// Crash-stop / restart (volatile state reset; log kept, as with stable
  /// storage).
  void crash();
  void restart();

  /// Start the election timer; call once after construction.
  void start();

 private:
  void become_follower(Term term);
  void become_candidate();
  void become_leader();
  void reset_election_timer();
  void send_heartbeats();
  void replicate_to(NodeId peer);
  void advance_commit();
  void apply_committed();

  Term last_log_term() const {
    return log_.empty() ? 0 : log_.back().term;
  }
  Index last_log_index() const { return static_cast<Index>(log_.size()); }
  int majority() const {
    return static_cast<int>((peers_.size() + 1) / 2 + 1);
  }

  NodeId id_;
  std::vector<NodeId> peers_;
  RaftConfig config_;
  RaftNet* net_;
  Rng rng_;
  ApplyHandler apply_;

  Role role_ = Role::Follower;
  Term term_ = 0;
  std::optional<NodeId> voted_for_;
  std::vector<LogEntry> log_;
  Index commit_index_ = 0;
  Index last_applied_ = 0;
  bool crashed_ = false;

  // Leader state.
  std::map<NodeId, Index> next_index_;
  std::map<NodeId, Index> match_index_;
  int votes_ = 0;

  std::uint64_t election_timer_ = 0;
  bool election_timer_armed_ = false;
  std::uint64_t heartbeat_timer_ = 0;
  bool heartbeat_timer_armed_ = false;
};

/// Convenience harness: a Raft cluster on a simulated network.
class RaftCluster {
 public:
  RaftCluster(int num_nodes, RaftConfig config, std::uint64_t seed,
              net::LinkConfig link = net::LinkConfig{});

  RaftNet& network() { return net_; }
  RaftNode& node(NodeId id);
  std::vector<NodeId> node_ids() const;

  /// Current leader if exactly one non-crashed node believes it leads in the
  /// highest term.
  std::optional<NodeId> leader() const;

  /// Run the network for a simulated duration.
  void run_for(double seconds);

  /// Run until a leader is elected (or the time budget is exhausted).
  std::optional<NodeId> await_leader(double max_seconds = 30.0);

 private:
  RaftConfig config_;
  RaftNet net_;
  std::map<NodeId, std::unique_ptr<RaftNode>> nodes_;
};

}  // namespace tolerance::consensus::raft
