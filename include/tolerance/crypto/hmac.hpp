// HMAC-SHA256 (RFC 2104).  Used for message authentication on network links
// and as the "signature" primitive: under the paper's threat model the
// attacker cannot forge signatures (Prop. 1(a)), which a keyed MAC with a
// registry of pre-shared keys models faithfully in a closed system.
#pragma once

#include <string>
#include <string_view>

#include "tolerance/crypto/sha256.hpp"

namespace tolerance::crypto {

Digest hmac_sha256(std::string_view key, std::string_view message);

/// Convenience: tag equality check (constant time).
bool hmac_verify(std::string_view key, std::string_view message,
                 const Digest& tag);

}  // namespace tolerance::crypto
