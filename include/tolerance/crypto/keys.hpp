// Key registry and signature facade.
//
// The paper assumes an authenticated network and unforgeable digital
// signatures (Prop. 1(a)-(b)); the testbed uses RSA-1024 (Table 8).  In this
// closed-system reproduction every principal registers a secret key with a
// trusted registry, and Sign/Verify are HMACs under the principal's key.
// This preserves the protocol-visible semantics: only the holder of node i's
// key can produce a tag that verifies for node i.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>

#include "tolerance/crypto/hmac.hpp"

namespace tolerance::crypto {

using PrincipalId = std::uint32_t;

struct Signature {
  PrincipalId signer = 0;
  Digest tag{};
  bool operator==(const Signature& other) const {
    return signer == other.signer && digest_equal(tag, other.tag);
  }
};

class KeyRegistry {
 public:
  /// Generates and stores a fresh secret for the principal; returns it so a
  /// Signer can be constructed.  Re-registering with a different seed
  /// rotates the key; re-registering with the same seed is a no-op (no
  /// write), so a restarted node can re-register while other threads read.
  std::string register_principal(PrincipalId id, std::uint64_t seed);

  bool known(PrincipalId id) const;

  /// Verify that `sig` is a valid signature by `sig.signer` over `message`.
  bool verify(std::string_view message, const Signature& sig) const;

  /// Simulated per-operation CPU costs (seconds), calibrated to RSA-1024 on
  /// the paper's hardware; consumed by the simulated-time consensus bench
  /// (Fig. 10).
  static constexpr double kSignCost = 1.0e-3;
  static constexpr double kVerifyCost = 6.0e-5;

 private:
  std::unordered_map<PrincipalId, std::string> secrets_;
};

/// Holds a principal's secret and signs messages with it.
class Signer {
 public:
  Signer(PrincipalId id, std::string secret)
      : id_(id), secret_(std::move(secret)) {}

  PrincipalId id() const { return id_; }

  Signature sign(std::string_view message) const {
    return Signature{id_, hmac_sha256(secret_, message)};
  }

 private:
  PrincipalId id_;
  std::string secret_;
};

}  // namespace tolerance::crypto
