// SHA-256 (FIPS 180-4), implemented from scratch.  Message digests underpin
// the authenticated channels, "digital signatures" (HMAC-based, valid under
// the paper's no-forgery assumption (a) of Prop. 1) and the USIG certificates
// of MinBFT.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tolerance::crypto {

using Digest = std::array<std::uint8_t, 32>;

class Sha256 {
 public:
  Sha256();

  /// Incremental interface.
  void update(const std::uint8_t* data, std::size_t len);
  void update(std::string_view s);
  Digest finalize();

  /// One-shot helpers.
  static Digest hash(std::string_view s);
  static Digest hash(const std::vector<std::uint8_t>& bytes);

  /// Process-wide count of digests computed (finalize() calls).  Lets the
  /// micro bench put a number on work avoided by memoized message digests.
  static std::uint64_t invocations() {
    return invocation_count_.load(std::memory_order_relaxed);
  }
  static void reset_invocations() {
    invocation_count_.store(0, std::memory_order_relaxed);
  }

 private:
  void process_block(const std::uint8_t* block);

  static std::atomic<std::uint64_t> invocation_count_;

  std::array<std::uint32_t, 8> state_;
  std::array<std::uint8_t, 64> buffer_;
  std::size_t buffer_len_ = 0;
  std::uint64_t total_len_ = 0;
};

/// Lowercase hex encoding of a digest.
std::string to_hex(const Digest& d);

/// Constant-time digest comparison.
bool digest_equal(const Digest& a, const Digest& b);

}  // namespace tolerance::crypto
