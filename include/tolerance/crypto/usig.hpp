// USIG — Unique Sequential Identifier Generator (Veronese et al.), the
// trusted component that lets MinBFT tolerate f = (N-1)/2 hybrid faults.
//
// The USIG lives in the privileged domain (provided by the virtualization
// layer in TOLERANCE, §IV / Appendix G): even on a compromised replica it
// keeps assigning strictly monotonic counter values and certifying them,
// which prevents equivocation — a replica cannot assign the same counter to
// two different messages.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "tolerance/crypto/keys.hpp"
#include "tolerance/crypto/sha256.hpp"

namespace tolerance::crypto {

/// A unique identifier: (epoch, counter, certificate) bound to a message
/// digest.  The epoch is bumped by the privileged domain each time the
/// replica's container is replaced (recovery, Fig. 17d): the fresh USIG
/// restarts its counter at zero, and receivers order identifiers by
/// (epoch, counter) lexicographically, so a recovered replica's messages are
/// accepted again while anything replayed from an earlier life is not.
struct UniqueIdentifier {
  PrincipalId replica = 0;
  std::uint64_t epoch = 0;
  std::uint64_t counter = 0;
  Digest certificate{};
};

/// USIG secrets live in a separate key namespace from replica signing keys;
/// principal id of replica r's USIG = r + kUsigPrincipalOffset.
inline constexpr PrincipalId kUsigPrincipalOffset = 1000000u;

class Usig {
 public:
  /// `epoch` identifies this USIG instance's lifetime; the virtualization
  /// layer increments it when it re-instantiates a replica's trusted
  /// component (recover/join), which is what lets the fresh counter sequence
  /// supersede the old one at verifiers.
  Usig(PrincipalId replica, std::string secret, std::uint64_t epoch = 0)
      : replica_(replica), secret_(std::move(secret)), epoch_(epoch) {}

  PrincipalId replica() const { return replica_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t last_counter() const { return counter_; }

  /// createUI: assign the next counter value to the digest and certify it.
  UniqueIdentifier create(const Digest& message_digest);

  /// verifyUI: check the certificate against the registry-managed secret of
  /// the issuing replica.  Stateless: callers enforce counter contiguity.
  static bool verify(const KeyRegistry& registry, const Digest& message_digest,
                     const UniqueIdentifier& ui);

 private:
  static std::string certificate_payload(PrincipalId replica,
                                         std::uint64_t epoch,
                                         std::uint64_t counter,
                                         const Digest& digest);

  PrincipalId replica_;
  std::string secret_;
  std::uint64_t epoch_ = 0;
  std::uint64_t counter_ = 0;
};

}  // namespace tolerance::crypto
