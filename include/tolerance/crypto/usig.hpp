// USIG — Unique Sequential Identifier Generator (Veronese et al.), the
// trusted component that lets MinBFT tolerate f = (N-1)/2 hybrid faults.
//
// The USIG lives in the privileged domain (provided by the virtualization
// layer in TOLERANCE, §IV / Appendix G): even on a compromised replica it
// keeps assigning strictly monotonic counter values and certifying them,
// which prevents equivocation — a replica cannot assign the same counter to
// two different messages.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <tuple>

#include "tolerance/crypto/keys.hpp"
#include "tolerance/crypto/sha256.hpp"

namespace tolerance::crypto {

/// A unique identifier: (epoch, counter, certificate) bound to a message
/// digest.  The epoch is bumped by the privileged domain each time the
/// replica's container is replaced (recovery, Fig. 17d): the fresh USIG
/// restarts its counter at zero, and receivers order identifiers by
/// (epoch, counter) lexicographically, so a recovered replica's messages are
/// accepted again while anything replayed from an earlier life is not.
struct UniqueIdentifier {
  PrincipalId replica = 0;
  std::uint64_t epoch = 0;
  std::uint64_t counter = 0;
  Digest certificate{};
};

/// USIG secrets live in a separate key namespace from replica signing keys;
/// principal id of replica r's USIG = r + kUsigPrincipalOffset.
inline constexpr PrincipalId kUsigPrincipalOffset = 1000000u;

class Usig {
 public:
  /// `epoch` identifies this USIG instance's lifetime; the virtualization
  /// layer increments it when it re-instantiates a replica's trusted
  /// component (recover/join), which is what lets the fresh counter sequence
  /// supersede the old one at verifiers.
  Usig(PrincipalId replica, std::string secret, std::uint64_t epoch = 0)
      : replica_(replica), secret_(std::move(secret)), epoch_(epoch) {}

  PrincipalId replica() const { return replica_; }
  std::uint64_t epoch() const { return epoch_; }
  std::uint64_t last_counter() const { return counter_; }

  /// createUI: assign the next counter value to the digest and certify it.
  UniqueIdentifier create(const Digest& message_digest);

  /// verifyUI: check the certificate against the registry-managed secret of
  /// the issuing replica.  Stateless: callers enforce counter contiguity.
  static bool verify(const KeyRegistry& registry, const Digest& message_digest,
                     const UniqueIdentifier& ui);

 private:
  static std::string certificate_payload(PrincipalId replica,
                                         std::uint64_t epoch,
                                         std::uint64_t counter,
                                         const Digest& digest);

  PrincipalId replica_;
  std::string secret_;
  std::uint64_t epoch_ = 0;
  std::uint64_t counter_ = 0;
};

/// Verification-result cache keyed by (replica, epoch, counter).  A counter
/// value can be bound to only one message (the USIG property), so once a
/// certificate over (counter, digest) has been checked, retransmits and
/// view-change proof re-checks can reuse the verdict instead of recomputing
/// the HMAC — the "pipelined verification" half of the batched consensus
/// path.  An entry only hits when digest AND certificate match what was
/// verified, so a replayed counter with different content always misses.
///
/// Deterministic bounded memory: entries are evicted in insertion order once
/// `capacity` is exceeded.  Not thread-safe; each replica owns one.
class UsigVerifyCache {
 public:
  explicit UsigVerifyCache(std::size_t capacity = 4096)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Cached verdict for `ui` over `digest`, or nullopt on miss.
  std::optional<bool> lookup(const UniqueIdentifier& ui, const Digest& digest) {
    const auto it = entries_.find(key(ui));
    if (it == entries_.end() || !digest_equal(it->second.digest, digest) ||
        !digest_equal(it->second.certificate, ui.certificate)) {
      ++misses_;
      return std::nullopt;
    }
    ++hits_;
    return it->second.ok;
  }

  void insert(const UniqueIdentifier& ui, const Digest& digest, bool ok) {
    const Key k = key(ui);
    const auto it = entries_.find(k);
    if (it != entries_.end()) {
      // An ok=true entry is canonical — the USIG binds one digest per
      // counter, so the successful verification is the one worth keeping;
      // a later forged retransmit (a miss that re-verified and failed) must
      // not evict it.  A failed entry, though, is replaced by the newest
      // verdict, so the legitimate message claims the slot no matter which
      // arrived first.  The entry keeps its original eviction slot.
      if (!it->second.ok) it->second = Entry{digest, ui.certificate, ok};
      return;
    }
    entries_.emplace(k, Entry{digest, ui.certificate, ok});
    order_.push_back(k);
    while (order_.size() > capacity_) {
      entries_.erase(order_.front());
      order_.pop_front();
    }
  }

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::size_t size() const { return entries_.size(); }

 private:
  using Key = std::tuple<PrincipalId, std::uint64_t, std::uint64_t>;
  struct Entry {
    Digest digest;
    Digest certificate;
    bool ok = false;
  };

  static Key key(const UniqueIdentifier& ui) {
    return {ui.replica, ui.epoch, ui.counter};
  }

  std::size_t capacity_;
  std::map<Key, Entry> entries_;
  std::deque<Key> order_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace tolerance::crypto
