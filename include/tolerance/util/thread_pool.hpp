// Fixed-size worker pool backing the parallel simulation engine.
//
// Tasks are arbitrary std::function<void()> callables; submission is
// thread-safe from any thread.  Shutdown drains: every task submitted
// before ~ThreadPool begins is executed before the workers exit and are
// joined, so destroying a pool with a backlog of pending tasks is clean
// (no dropped work, no leaked threads — exercised under TSan/ASan by
// tests/parallel_test.cpp).  Tasks must not throw; wrap fallible work and
// capture the exception yourself (ParallelRunner does exactly that).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tolerance::util {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const;

  /// Grow to at least `num_threads` workers (never shrinks).  Lets the
  /// shared helper pool start small and expand to the largest concurrency
  /// actually requested instead of pre-spawning one thread per core.
  void ensure_workers(int num_threads);

  /// Enqueue one task.  Thread-safe; never blocks on task execution.
  void submit(std::function<void()> task);

  /// Block until every task submitted so far has finished executing.
  void wait_idle();

  /// Bounded wait_idle for callers that must not hang on a stuck task (the
  /// async controller's tests use it to observe a deliberately stalled
  /// solve without deadlocking).  Returns true iff the pool went idle
  /// within the timeout.
  bool wait_idle_for(std::chrono::milliseconds timeout);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;  ///< guarded by mu_ (grow via ensure_workers)
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mu_;
  std::condition_variable task_cv_;  ///< workers sleep here for work
  std::condition_variable idle_cv_;  ///< wait_idle sleeps here for quiescence
  int active_ = 0;                   ///< tasks currently executing
  bool stop_ = false;
};

}  // namespace tolerance::util
