// Deterministic random-number generation for simulations and solvers.
//
// Every stochastic component in the library takes an explicit Rng& so that
// experiments are reproducible from a single seed and sub-streams can be
// split for independent components (nodes, attackers, optimizers).
#pragma once

#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "tolerance/util/ensure.hpp"

namespace tolerance {

class Rng {
 public:
  using engine_type = std::mt19937_64;

  explicit Rng(std::uint64_t seed = 0) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() {
    return std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    TOL_ENSURE(lo <= hi, "uniform bounds must be ordered");
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in {0, ..., n-1}.
  int uniform_int(int n) {
    TOL_ENSURE(n > 0, "uniform_int requires n > 0");
    return std::uniform_int_distribution<int>(0, n - 1)(engine_);
  }

  /// Uniform integer in {lo, ..., hi} (inclusive).
  int uniform_int(int lo, int hi) {
    TOL_ENSURE(lo <= hi, "uniform_int bounds must be ordered");
    return std::uniform_int_distribution<int>(lo, hi)(engine_);
  }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  double normal(double mean = 0.0, double stddev = 1.0) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  double exponential(double rate) {
    TOL_ENSURE(rate > 0.0, "exponential rate must be positive");
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Poisson sampler, implemented in-library because the libstdc++
  /// std::poisson_distribution setup calls lgamma, which writes the global
  /// `signgam` — a data race across parallel episode workers.  Small means
  /// use the exact Knuth product sampler (O(mean) uniform draws); means
  /// above 10 use the PTRS transformed-rejection sampler [Hörmann 1993]
  /// built on the reentrant stats::log_gamma — O(1) expected draws, which
  /// is what keeps large IDS alert-intensity sweeps cheap.
  int poisson(double mean) {
    TOL_ENSURE(mean >= 0.0, "poisson mean must be non-negative");
    if (mean > 10.0) return poisson_ptrs(mean);
    return poisson_knuth(mean);
  }

  /// Sum of n Bernoulli(p) draws — in-library for the same signgam reason
  /// as poisson() (std::binomial_distribution's rejection setup calls
  /// lgamma for large np).  O(n); every use in the library has small n.
  int binomial(int n, double p) {
    TOL_ENSURE(n >= 0, "binomial n must be non-negative");
    if (n == 0 || p <= 0.0) return 0;
    if (p >= 1.0) return n;
    int count = 0;
    for (int i = 0; i < n; ++i) count += uniform() < p ? 1 : 0;
    return count;
  }

  double gamma(double shape, double scale = 1.0) {
    TOL_ENSURE(shape > 0.0 && scale > 0.0, "gamma parameters must be positive");
    return std::gamma_distribution<double>(shape, scale)(engine_);
  }

  /// Beta(a, b) sampled via two gamma draws.
  double beta(double a, double b) {
    const double x = gamma(a);
    const double y = gamma(b);
    return x / (x + y);
  }

  /// Sample an index proportional to the given non-negative weights.
  int categorical(const std::vector<double>& weights) {
    TOL_ENSURE(!weights.empty(), "categorical requires at least one weight");
    double total = 0.0;
    for (double w : weights) {
      TOL_ENSURE(w >= 0.0, "categorical weights must be non-negative");
      total += w;
    }
    TOL_ENSURE(total > 0.0, "categorical weights must not all be zero");
    double u = uniform() * total;
    for (std::size_t i = 0; i + 1 < weights.size(); ++i) {
      u -= weights[i];
      if (u < 0.0) return static_cast<int>(i);
    }
    return static_cast<int>(weights.size() - 1);
  }

  /// Derive an independent sub-stream; deterministic given this stream state.
  Rng split() { return Rng(engine_()); }

  /// Deterministic per-index child stream for parallel episode sharding:
  /// stream(base, i) depends only on (base, i), never on which worker runs
  /// the episode or in what order, so sweeps sharded across threads are
  /// bit-identical to the serial schedule.  The seed is the SplitMix64
  /// finalizer of base + (i+1)*golden-gamma, which decorrelates consecutive
  /// indices into statistically independent mt19937-64 seeds.
  static Rng stream(std::uint64_t base_seed, std::uint64_t index) {
    std::uint64_t z = base_seed + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return Rng(z ^ (z >> 31));
  }

  engine_type& engine() { return engine_; }

 private:
  int poisson_knuth(double mean) {
    if (mean <= 0.0) return 0;
    const double limit = std::exp(-mean);
    int k = 0;
    double prod = uniform();
    while (prod > limit) {
      ++k;
      prod *= uniform();
    }
    return k;
  }

  /// PTRS rejection sampler for mean > 10 (defined in rng.cpp; it needs
  /// stats::log_gamma, which this header must not pull in).
  int poisson_ptrs(double mean);

  engine_type engine_;
};

}  // namespace tolerance
