// Wall-clock stopwatch used by solver benchmarks (compute-time columns).
#pragma once

#include <chrono>

namespace tolerance {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double elapsed_seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double elapsed_minutes() const { return elapsed_seconds() / 60.0; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace tolerance
