// Fixed-width console tables for the benchmark harness.  Every table/figure
// bench prints rows through this class so the output is uniform and easy to
// diff against the paper.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace tolerance {

class ConsoleTable {
 public:
  explicit ConsoleTable(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header row.
  void add_row(std::vector<std::string> cells);

  /// Render with aligned columns and a separator under the header.
  void print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Format helper: fixed-precision double.
  static std::string num(double v, int precision = 2);
  /// Format helper: "mean ±hw" as used throughout the paper's tables.
  static std::string mean_pm(double mean, double half_width, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace tolerance
