// Contract-checking helpers (C++ Core Guidelines I.6/I.8 style).
//
// TOL_ENSURE is used to validate preconditions on public API boundaries.  It
// throws std::invalid_argument so that misuse is observable and testable
// rather than undefined behaviour.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace tolerance {

[[noreturn]] inline void ensure_failed(const char* expr, const char* file,
                                       int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::invalid_argument(os.str());
}

}  // namespace tolerance

#define TOL_ENSURE(expr, msg)                                     \
  do {                                                            \
    if (!(expr)) {                                                \
      ::tolerance::ensure_failed(#expr, __FILE__, __LINE__, msg); \
    }                                                             \
  } while (false)
