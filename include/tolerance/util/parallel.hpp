// ParallelRunner — deterministic index sharding for Monte-Carlo sweeps.
//
// for_each(count, fn) executes fn(0), ..., fn(count-1) across a worker pool
// with the calling thread participating.  Indices are claimed from a shared
// counter, so any assignment of indices to workers is possible;
// callers that need bit-identical results regardless of thread count must
// make fn(i) depend only on i (e.g. seed a per-index Rng with Rng::stream)
// and reduce any per-index outputs in index order (NodeRunStats::reduce and
// stats::SummaryAccumulator::merge do this).
//
// Thread-count resolution (resolve_threads): an explicit positive request
// wins, else the TOLERANCE_THREADS environment variable, else
// std::thread::hardware_concurrency().  A resolved count of 1 runs inline
// on the calling thread — the serial path, no pool is ever created.
#pragma once

#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "tolerance/util/thread_pool.hpp"

namespace tolerance::util {

/// max(1, std::thread::hardware_concurrency()).
int hardware_threads();

/// Resolve a thread-count request: `requested` > 0 is returned as-is;
/// otherwise the TOLERANCE_THREADS environment variable (if it parses to a
/// positive integer); otherwise hardware_threads().
int resolve_threads(int requested = 0);

class ParallelRunner {
 public:
  /// `threads` <= 0 resolves via resolve_threads().  Construction is free:
  /// helpers come from one process-wide lazily-created ThreadPool (sized to
  /// the hardware), so per-call runners — e.g. inside run_many on a hot
  /// optimizer loop — cost no thread spawns.
  explicit ParallelRunner(int threads = 0);

  int threads() const { return threads_; }

  /// Run fn(i) for every i in [0, count).  Blocks until all calls finished;
  /// the first exception thrown by fn is rethrown here (remaining indices
  /// are abandoned).  Safe to call concurrently from multiple threads and
  /// to nest (fn may itself use a ParallelRunner): completion is tracked by
  /// finished indices, and the caller participates in the work, so a batch
  /// never waits on pool capacity.
  void for_each(std::int64_t count,
                const std::function<void(std::int64_t)>& fn) const;

  /// for_each that collects fn(i) into a vector indexed by i — the natural
  /// shape for an episode sweep reduced in episode order afterwards.
  template <typename R>
  std::vector<R> map(std::int64_t count,
                     const std::function<R(std::int64_t)>& fn) const {
    // vector<bool> bit-packs: concurrent writes to distinct indices would
    // touch the same byte.  Use int/char results for predicate sweeps.
    static_assert(!std::is_same_v<R, bool>,
                  "ParallelRunner::map<bool> would race on vector<bool> "
                  "bit-packing; map to int instead");
    std::vector<R> out(static_cast<std::size_t>(count));
    for_each(count, [&](std::int64_t i) {
      out[static_cast<std::size_t>(i)] = fn(i);
    });
    return out;
  }

 private:
  int threads_;
};

}  // namespace tolerance::util
